package hdfs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// DataNodeHandlers is the size of a DataNode's request handler pool.
const DataNodeHandlers = 16

// SeekCost models the positioning cost of one random block read as
// equivalent disk bytes (~3.4 ms on a 150 MB/s disk). Small random reads
// are seek-dominated, which is what saturates the hot DataNodes in the
// §6.1 stress test (Fig 8a/8c).
const SeekCost = 512e3

// DataNode serves block reads and writes from its host's local disk.
type DataNode struct {
	Proc *cluster.Process
	nn   *NameNode
	sem  *simtime.Semaphore

	// offline, when set, makes the DataNode refuse new operations (a
	// restarting or crashed process). Requests fail before any
	// tracepoint fires, so op counts reflect served work only.
	offline atomic.Bool

	tpProto      *tracepoint.Tracepoint // DN.DataTransferProtocol
	tpQueued     *tracepoint.Tracepoint // DN.OpQueued
	tpStart      *tracepoint.Tracepoint // DN.OpStart
	tpXferStart  *tracepoint.Tracepoint // DN.TransferStart
	tpXferEnd    *tracepoint.Tracepoint // DN.TransferEnd
	tpBytesRead  *tracepoint.Tracepoint // DataNodeMetrics.incrBytesRead
	tpBytesWrite *tracepoint.Tracepoint // DataNodeMetrics.incrBytesWritten
}

// NewDataNode starts a DataNode process on the given host and registers it
// with the NameNode.
func NewDataNode(c *cluster.Cluster, host string, nn *NameNode) *DataNode {
	proc := c.Start(host, "DataNode")
	dn := &DataNode{
		Proc: proc,
		nn:   nn,
		sem:  c.Env.NewSemaphore(DataNodeHandlers),
	}
	dn.tpProto = proc.Define("DN.DataTransferProtocol", "op", "size")
	dn.tpQueued = proc.Define("DN.OpQueued", "op")
	dn.tpStart = proc.Define("DN.OpStart", "op")
	dn.tpXferStart = proc.Define("DN.TransferStart", "size", "dest")
	dn.tpXferEnd = proc.Define("DN.TransferEnd", "size", "dest")
	dn.tpBytesRead = proc.Define("DataNodeMetrics.incrBytesRead", "delta")
	dn.tpBytesWrite = proc.Define("DataNodeMetrics.incrBytesWritten", "delta")

	proc.Handle("DataTransferProtocol.ReadBlock", dn.handleReadBlock)
	proc.Handle("DataTransferProtocol.WriteBlock", dn.handleWriteBlock)
	nn.RegisterDataNode(host)
	return dn
}

// NewDataNodes is the bulk-spawn path: one DataNode per host, in order.
// Scenario topologies stand up 1000+ DataNodes through this call.
func NewDataNodes(c *cluster.Cluster, hosts []string, nn *NameNode) []*DataNode {
	out := make([]*DataNode, len(hosts))
	for i, h := range hosts {
		out[i] = NewDataNode(c, h, nn)
	}
	return out
}

// ErrDataNodeOffline is returned (wrapped) for operations against an
// offline DataNode.
var ErrDataNodeOffline = fmt.Errorf("hdfs: datanode offline")

// SetOffline toggles the DataNode's availability (rolling-restart fault
// injection). While offline, every read and write fails immediately;
// clients fall back to another replica.
func (dn *DataNode) SetOffline(off bool) { dn.offline.Store(off) }

// Offline reports whether the DataNode is currently refusing operations.
func (dn *DataNode) Offline() bool { return dn.offline.Load() }

// SetDiskRate changes the DataNode host's disk bandwidth (limplock fault
// injection: the node keeps serving, slowly).
func (dn *DataNode) SetDiskRate(rate float64) { dn.Proc.Host.SetDiskRate(rate) }

// ReadBlockReq reads length bytes of a block and pushes them to the
// requesting host.
type ReadBlockReq struct {
	Block    string
	Length   float64
	DestHost string
	// Pipeline hosts still to receive the data (write path re-uses the
	// read plumbing for replication forwarding).
}

func (dn *DataNode) handleReadBlock(ctx context.Context, req any) (any, error) {
	r := req.(ReadBlockReq)
	if dn.offline.Load() {
		return nil, fmt.Errorf("%w: %s", ErrDataNodeOffline, dn.Proc.Info.Host)
	}
	dn.tpProto.Here(ctx, "READ_BLOCK", r.Length)
	dn.tpQueued.Here(ctx, "READ_BLOCK")
	dn.sem.Acquire()
	defer dn.sem.Release()
	dn.tpStart.Here(ctx, "READ_BLOCK")

	// Read from the local disk (crosses FileInputStream.read); the seek
	// charge contends for the disk but is not part of the byte stream.
	dn.Proc.Host.DiskRead(SeekCost)
	dn.Proc.DiskRead(ctx, r.Length)

	// Push the data to the destination host as an explicit network flow so
	// the transfer time is observable between tracepoints (Fig 9's "DN
	// transfer" span).
	dn.tpXferStart.Here(ctx, r.Length, r.DestHost)
	if dest := dn.Proc.C.Host(r.DestHost); dest != dn.Proc.Host {
		dn.Proc.Host.Send(dest, r.Length)
	}
	dn.tpXferEnd.Here(ctx, r.Length, r.DestHost)

	dn.tpBytesRead.Here(ctx, r.Length)
	return r.Length, nil
}

// WriteBlockReq writes length bytes to a block replica; Pipeline lists the
// downstream replica hosts the data must be forwarded to.
type WriteBlockReq struct {
	Block    string
	Length   float64
	SrcHost  string
	Pipeline []string
}

func (dn *DataNode) handleWriteBlock(ctx context.Context, req any) (any, error) {
	r := req.(WriteBlockReq)
	if dn.offline.Load() {
		return nil, fmt.Errorf("%w: %s", ErrDataNodeOffline, dn.Proc.Info.Host)
	}
	dn.tpProto.Here(ctx, "WRITE_BLOCK", r.Length)
	dn.tpQueued.Here(ctx, "WRITE_BLOCK")
	dn.sem.Acquire()
	defer dn.sem.Release()
	dn.tpStart.Here(ctx, "WRITE_BLOCK")

	// Write to the local disk (crosses FileOutputStream.write).
	dn.Proc.DiskWrite(ctx, r.Length)
	dn.tpBytesWrite.Here(ctx, r.Length)

	// Forward down the replication pipeline. An offline downstream node is
	// dropped and the pipeline continues with the nodes after it (HDFS
	// pipeline recovery: the block stays under-replicated rather than
	// failing the write while healthy replicas remain).
	for i := 0; i < len(r.Pipeline); i++ {
		next := dn.Proc.C.Proc(r.Pipeline[i], "DataNode")
		if next == nil {
			continue
		}
		fwd := WriteBlockReq{
			Block: r.Block, Length: r.Length,
			SrcHost: dn.Proc.Info.Host, Pipeline: r.Pipeline[i+1:],
		}
		_, err := dn.Proc.Call(ctx, next, "DataTransferProtocol.WriteBlock", fwd,
			cluster.Sizes{Request: r.Length, Response: 64})
		if err == nil || !errors.Is(err, ErrDataNodeOffline) {
			return r.Length, err
		}
	}
	return r.Length, nil
}

// Stall simulates a garbage-collection or device pause: the DataNode's
// handler pool is exhausted for the given duration.
func (dn *DataNode) Stall(d time.Duration) {
	for i := 0; i < DataNodeHandlers; i++ {
		dn.sem.Acquire()
	}
	dn.Proc.C.Env.Sleep(d)
	for i := 0; i < DataNodeHandlers; i++ {
		dn.sem.Release()
	}
}
