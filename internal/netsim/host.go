package netsim

import "time"

// Common capacity constants, in bytes per second.
const (
	Gbit        = 1e9 / 8 // 1 Gbit/s NIC in bytes/s
	HundredMbit = 1e8 / 8 // a limping 100 Mbit/s NIC
	DiskRate    = 150e6   // a commodity HDD: 150 MB/s sequential
	SSDRate     = 500e6   // an SSD: 500 MB/s
	MB          = 1e6     // one megabyte
	KB          = 1e3     // one kilobyte
	GB          = 1e9     // one gigabyte
)

// Host bundles the resources of one simulated machine: a full-duplex NIC
// (independent tx and rx links) and a local disk. Hosts built by a
// Topology additionally carry their rack/pod position and the shared
// aggregation links their cross-rack traffic rides.
type Host struct {
	Name string
	net  *Network
	tx   *Link
	rx   *Link
	disk *Link

	// Latency is the fixed one-way message latency from/to this host.
	Latency time.Duration

	// Rack/pod placement, set by BuildTopology. rack is a global rack
	// index (unique across pods); the aggregation links are nil on flat
	// networks, in which case Send is point-to-point as before.
	rack, pod        int
	rackUp, rackDown *Link
	podUp, podDown   *Link
}

// NewHost registers a host's NIC and disk links on the network.
func (n *Network) NewHost(name string, nicRate, diskRate float64) *Host {
	return &Host{
		Name:    name,
		net:     n,
		tx:      n.AddLink(name+".tx", nicRate),
		rx:      n.AddLink(name+".rx", nicRate),
		disk:    n.AddLink(name+".disk", diskRate),
		Latency: 100 * time.Microsecond,
	}
}

// SetNICRate changes both directions of the host's NIC (fault injection).
func (h *Host) SetNICRate(rate float64) {
	h.net.SetRate(h.tx.Name, rate)
	h.net.SetRate(h.rx.Name, rate)
}

// NICRate returns the current transmit capacity of the host's NIC.
func (h *Host) NICRate() float64 { return h.net.Rate(h.tx.Name) }

// SetDiskRate changes the host disk's capacity (fault injection: a
// limplock disk serves reads and writes at a crawl without failing).
func (h *Host) SetDiskRate(rate float64) { h.net.SetRate(h.disk.Name, rate) }

// DiskBandwidth returns the disk's current capacity in bytes/second.
func (h *Host) DiskBandwidth() float64 { return h.net.Rate(h.disk.Name) }

// Rack returns the host's global rack index (0 on flat networks).
func (h *Host) Rack() int { return h.rack }

// Pod returns the host's pod index (0 on flat networks).
func (h *Host) Pod() int { return h.pod }

// Send transfers size bytes from h to dst, blocking until delivered.
// Loopback transfers (h == dst) skip the network. The transfer contends
// for h's transmit link and dst's receive link under max-min fairness;
// on a rack/pod topology, cross-rack traffic additionally rides the
// shared rack uplinks (and pod uplinks across pods), so aggregation
// oversubscription is modeled.
func (h *Host) Send(dst *Host, size float64) {
	if h == dst {
		return
	}
	h.net.env.Sleep(h.Latency)
	if h.rackUp == nil || dst.rackDown == nil || h.rack == dst.rack {
		h.net.Flow(size, h.tx, dst.rx)
		return
	}
	var path [6]*Link
	links := append(path[:0], h.tx, h.rackUp)
	if h.pod != dst.pod && h.podUp != nil && dst.podDown != nil {
		links = append(links, h.podUp, dst.podDown)
	}
	links = append(links, dst.rackDown, dst.rx)
	h.net.Flow(size, links...)
}

// DiskRead reads size bytes from the host's local disk.
func (h *Host) DiskRead(size float64) { h.net.Flow(size, h.disk) }

// DiskWrite writes size bytes to the host's local disk. Reads and writes
// share the disk's bandwidth.
func (h *Host) DiskWrite(size float64) { h.net.Flow(size, h.disk) }
