// Package examples_test smoke-tests every runnable example: each one
// must build, exit cleanly within the timeout, and print the output
// markers that its README-level story depends on.
package examples_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

func TestExamplesRunCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run whole programs; skipped in -short mode")
	}
	cases := []struct {
		dir     string
		markers []string
	}{
		{"quickstart", []string{"installed query; compiled advice:", "OBSERVE"}},
		{"crosstier", []string{"storage bytes by originating application"}},
		{"distributed", []string{"advice woven remotely: gateway=true store=true"}},
		{"latency", []string{"avg latency"}},
		{"replicadebug", []string{"Symptom:", "HDFS-6268"}},
		{"tracing", []string{"request trees:", "(join ×2)", "EXPLAIN ANALYZE",
			"MERGE at frontend", "DOMINANT TIER"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			// The test runs with examples/ as its working directory; the
			// example packages are addressed from the module root.
			cmd := exec.CommandContext(ctx, "go", "run", "./examples/"+tc.dir)
			cmd.Dir = ".."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", tc.dir, err, out)
			}
			for _, m := range tc.markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("output of %s is missing marker %q\n%s", tc.dir, m, out)
				}
			}
		})
	}
}
