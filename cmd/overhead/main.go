// Command overhead reproduces Table 5 (§6.3): application-level latency
// overheads of Pivot Tracing on an HDFS stress test, under six
// instrumentation configurations.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultTable5Config()
	flag.IntVar(&cfg.Hosts, "hosts", cfg.Hosts, "worker host count")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "virtual duration per configuration")
	flag.DurationVar(&cfg.RPCLatency, "rpclatency", cfg.RPCLatency, "one-way RPC latency")
	flag.Parse()

	start := time.Now()
	res, err := experiments.RunTable5(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "overhead:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
	fmt.Printf("\n(%d configurations x %v of virtual time in %v)\n",
		len(experiments.Configs), cfg.Duration, time.Since(start).Round(time.Millisecond))
}
