package pivot

// The differential query-correctness harness: every generated case is a
// causal trace script plus a random valid query. The case is executed
// through the REAL distributed pipeline — parser, planner (optimized and
// unoptimized), advice weaving, baggage propagation across splits/joins
// and serialized process transfers on the simtime/netsim substrate,
// per-process agents with interval reporting, and the frontend's global
// merge — and the result set must be byte-equal to what the reference
// evaluator (internal/oracle) computes from the materialized trace.
//
// Reproduce a failure with the seed printed in the failure message:
//
//	go test ./pivot -run TestDifferentialPipelineMatchesOracle -seed=<N>

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/cluster"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/querygen"
	"repro/internal/randtest"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// diffBaseSeed fixes the deterministic sweep; CI and local runs see the
// same cases. The budgeted sweep uses a disjoint seed range.
const (
	diffBaseSeed   = 1_000_000
	diffBudgetSeed = 2_000_000
)

func TestDifferentialPipelineMatchesOracle(t *testing.T) {
	n := 500
	if s := os.Getenv("PT_DIFF_CASES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad PT_DIFF_CASES=%q", s)
		}
		n = v
	} else if testing.Short() {
		n = 120
	}
	randtest.Check(t, n, diffBaseSeed, runDifferentialCase)
}

// runDifferentialCase executes one generated case through the pipeline
// twice (optimized and unoptimized plans) and against the oracle.
func runDifferentialCase(seed int64) error {
	c := querygen.Generate(seed)

	var gotOpt, gotUnopt []tuple.Tuple
	var runErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		// Short intervals spread the trace over several reporting
		// rounds, exercising the frontend's multi-report merge.
		cfg.ReportInterval = 5 * time.Millisecond
		cl := cluster.New(env, cfg)
		x := cluster.NewScriptExec(cl, c)
		hOpt, err := cl.PT.Install(c.QueryText)
		if err != nil {
			runErr = fmt.Errorf("install optimized: %w", err)
			return
		}
		hUnopt, err := cl.PT.InstallNamed("", c.QueryText, plan.Options{})
		if err != nil {
			runErr = fmt.Errorf("install unoptimized: %w", err)
			return
		}
		if err := x.Run(); err != nil {
			runErr = err
			return
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		gotOpt, gotUnopt = hOpt.Rows(), hUnopt.Rows()
	})
	if runErr != nil {
		return fmt.Errorf("query %q: %w", c.QueryText, runErr)
	}

	want, err := oracleRows(c)
	if err != nil {
		return err
	}

	wantC := oracle.Canonical(want)
	if !bytes.Equal(wantC, oracle.Canonical(gotOpt)) {
		return diffError(c, "optimized plan", want, gotOpt)
	}
	if !bytes.Equal(wantC, oracle.Canonical(gotUnopt)) {
		return diffError(c, "unoptimized plan", want, gotUnopt)
	}
	return nil
}

// oracleRows evaluates the case's query with the reference evaluator
// against the materialized (stamped) trace.
func oracleRows(c *querygen.Case) ([]tuple.Tuple, error) {
	q, err := query.Parse(c.QueryText)
	if err != nil {
		return nil, fmt.Errorf("reparse %q: %w", c.QueryText, err)
	}
	reg := tracepoint.NewRegistry()
	c.Define(reg)
	tr, err := c.OracleTrace()
	if err != nil {
		return nil, err
	}
	want, err := oracle.Evaluate(q, reg, tr)
	if err != nil {
		return nil, fmt.Errorf("oracle %q: %w", c.QueryText, err)
	}
	return want, nil
}

// The budgeted differential mode: the same trace-script interpreter, but
// the query runs under a deliberately tiny baggage budget. Truncation
// must be *accounted*: every reported group is byte-exact against the
// oracle (a surviving group carries its full aggregate, never a
// truncated portion), and reported + dropped reconciles exactly with the
// oracle's group count.
func TestBudgetedDifferentialTruncationAccounted(t *testing.T) {
	n := 150
	if s := os.Getenv("PT_DIFF_CASES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad PT_DIFF_CASES=%q", s)
		}
		n = v
	} else if testing.Short() {
		n = 50
	}
	randtest.Check(t, n, diffBudgetSeed, runBudgetedDifferentialCase)
}

func runBudgetedDifferentialCase(seed int64) error {
	c := querygen.GenerateBudgeted(seed)
	// Small enough to usually truncate a 4–12 key pool, varied enough to
	// also hit the everything-fits path.
	budget := 2 + int(seed%5)

	var got []tuple.Tuple
	var dropped int
	var partial bool
	var runErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := cluster.New(env, cfg)
		x := cluster.NewScriptExec(cl, c)
		h, err := cl.PT.InstallNamed("QB", c.QueryText, plan.Options{
			Optimize: true,
			Safety:   advice.Safety{Budget: baggage.Budget{MaxTuples: budget}},
		})
		if err != nil {
			runErr = fmt.Errorf("install budgeted: %w", err)
			return
		}
		if err := x.Run(); err != nil {
			runErr = err
			return
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		got, dropped, partial = h.Rows(), h.DroppedGroups(), h.Partial()
	})
	if runErr != nil {
		return fmt.Errorf("budget %d, query %q: %w", budget, c.QueryText, runErr)
	}

	want, err := oracleRows(c)
	if err != nil {
		return err
	}

	// Reported ⊆ oracle, byte-exact per row: truncation may lose whole
	// groups but never corrupts a survivor.
	wantRow := map[string]bool{}
	for _, r := range want {
		wantRow[string(oracle.Canonical([]tuple.Tuple{r}))] = true
	}
	for _, r := range got {
		if !wantRow[string(oracle.Canonical([]tuple.Tuple{r}))] {
			return fmt.Errorf("budget %d: reported row %v is not an oracle row\nquery: %s\noracle:\n%s\npipeline:\n%s",
				budget, r, c.QueryText, oracle.Format(want), oracle.Format(got))
		}
	}
	// Exact reconciliation: nothing vanishes unaccounted, nothing is
	// counted twice.
	if len(got)+dropped != len(want) {
		return fmt.Errorf("budget %d: reported %d + dropped %d != oracle %d groups\nquery: %s\noracle:\n%s\npipeline:\n%s",
			budget, len(got), dropped, len(want), c.QueryText, oracle.Format(want), oracle.Format(got))
	}
	if dropped > 0 && !partial {
		return fmt.Errorf("budget %d: %d groups dropped but the query is not flagged partial", budget, dropped)
	}
	if dropped == 0 && !bytes.Equal(oracle.Canonical(want), oracle.Canonical(got)) {
		return diffError(c, "budgeted (nothing dropped)", want, got)
	}
	return nil
}

func diffError(c *querygen.Case, which string, want, got []tuple.Tuple) error {
	return fmt.Errorf("%s diverges from oracle\nquery: %s\nevents: %d  procs: %d  linear: %v\noracle:\n%s\npipeline:\n%s",
		which, c.QueryText, len(c.Events), c.NumProcs, c.Linear,
		oracle.Format(want), oracle.Format(got))
}
