// Package mapreduce implements a simulated Hadoop MapReduce framework on
// top of YARN containers and HDFS: job submission, an ApplicationMaster per
// job, map tasks that read input splits from HDFS and spill sorted output
// to local disk, a per-host shuffle service serving map output over the
// network, and reduce tasks that merge, reduce, and write job output back
// to HDFS. Process naming matches the paper's Fig 1c columns: map tasks run
// in "Map" processes, the shuffle service in "Shuffle", reducers in
// "Reduce", so disk IO attribution by source process reproduces the pivot
// table.
package mapreduce

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/yarn"
)

// CPURate models task CPU cost: bytes processed per second of compute.
const CPURate = 800e6

// Framework wires MapReduce into a cluster.
type Framework struct {
	C  *cluster.Cluster
	RM *yarn.ResourceManager
	NN *hdfs.NameNode

	hdfsCfg hdfs.ClientConfig

	mu        sync.Mutex
	taskProcs map[string]*taskProcs // per host
	nextJob   int
}

// taskProcs are the long-lived container processes on one host.
type taskProcs struct {
	mapProc    *cluster.Process
	reduceProc *cluster.Process
	shuffle    *cluster.Process
	amProc     *cluster.Process
	mapHDFS    *hdfs.Client
	reduceHDFS *hdfs.Client
	amHDFS     *hdfs.Client
}

// New creates the framework. Task processes are created lazily per host.
func New(c *cluster.Cluster, rm *yarn.ResourceManager, nn *hdfs.NameNode, hdfsCfg hdfs.ClientConfig) *Framework {
	// Declare the job-lifecycle tracepoint vocabulary in the master
	// registry up front: the tracepoints are defined on live processes
	// lazily (per AM, per job), but queries over them must be
	// installable before the first job runs.
	reg := c.PT.Registry()
	reg.Define("AM.JobStart", "id")
	reg.Define("AM.MapTaskComplete", "id")
	reg.Define("AM.ReduceTaskComplete", "id")
	reg.Define("JobComplete", "id")
	reg.Define("MapOutputServlet", "size")
	return &Framework{C: c, RM: rm, NN: nn, hdfsCfg: hdfsCfg, taskProcs: make(map[string]*taskProcs)}
}

// procsOn returns (creating if needed) the task processes for a host.
func (fw *Framework) procsOn(host string) *taskProcs {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	tp, ok := fw.taskProcs[host]
	if !ok {
		tp = &taskProcs{
			mapProc:    fw.C.Start(host, "Map"),
			reduceProc: fw.C.Start(host, "Reduce"),
			shuffle:    fw.C.Start(host, "Shuffle"),
			amProc:     fw.C.Start(host, "AppMaster"),
		}
		tp.mapHDFS = hdfs.NewClient(tp.mapProc, fw.NN, fw.hdfsCfg)
		tp.reduceHDFS = hdfs.NewClient(tp.reduceProc, fw.NN, fw.hdfsCfg)
		tp.amHDFS = hdfs.NewClient(tp.amProc, fw.NN, fw.hdfsCfg)
		tp.shuffle.Define("MapOutputServlet", "size")
		sh := tp.shuffle
		sh.Handle("ShuffleService.Fetch", func(ctx context.Context, req any) (any, error) {
			size := req.(float64)
			sh.Reg.Lookup("MapOutputServlet").Here(ctx, size)
			sh.DiskRead(ctx, size)
			return size, nil
		})
		fw.taskProcs[host] = tp
	}
	return tp
}

// JobConfig describes one MapReduce job.
type JobConfig struct {
	Name  string
	Input string // existing HDFS file
	// Reducers is the reduce task count (default 1 per 4 maps, min 1).
	Reducers int
	// MapOutputFactor scales map output size relative to input (1.0 for a
	// sort job).
	MapOutputFactor float64
	// OutputFactor scales job output relative to shuffled data (1.0 for a
	// sort job).
	OutputFactor float64
	// Stragglers makes the first N reduce tasks stragglers: each repeats
	// its merge-spill disk IO StragglerFactor times (a skewed partition
	// or a slow local disk), so the job's tail is dominated by those
	// tasks and a per-host Reduce disk GROUP BY pins them.
	Stragglers      int
	StragglerFactor float64
}

type mapOutput struct {
	host string
	size float64
}

// Submit runs a job to completion: the blocking client-side call. The
// submitting process's identity tags the request (Fig 1b's per-application
// attribution relies on the First(ClientProtocols) crossing here).
func (fw *Framework) Submit(ctx context.Context, from *cluster.Process, job JobConfig) error {
	from.Define("ClientProtocols").Here(ctx)
	fw.mu.Lock()
	fw.nextJob++
	jobID := fmt.Sprintf("job_%d_%s", fw.nextJob, job.Name)
	fw.mu.Unlock()

	// Launch the ApplicationMaster in a container.
	amContainer, err := yarn.Allocate(ctx, from, fw.RM, jobID, "")
	if err != nil {
		return err
	}
	defer amContainer.Release()
	am := fw.procsOn(amContainer.Host)
	return fw.runAppMaster(am.amProc.In(ctx), am, jobID, job)
}

// runAppMaster executes the job's control loop.
func (fw *Framework) runAppMaster(ctx context.Context, am *taskProcs, jobID string, job JobConfig) error {
	env := fw.C.Env
	tpSubmit := am.amProc.Define("AM.JobStart", "id")
	tpMapDone := am.amProc.Define("AM.MapTaskComplete", "id")
	tpRedDone := am.amProc.Define("AM.ReduceTaskComplete", "id")
	tpJobDone := am.amProc.Define("JobComplete", "id")
	tpSubmit.Here(ctx, jobID)

	if job.MapOutputFactor == 0 {
		job.MapOutputFactor = 1
	}
	if job.OutputFactor == 0 {
		job.OutputFactor = 1
	}

	// Input splits = block locations.
	splits, err := am.amHDFS.GetBlockLocations(ctx, job.Input, 0, 1e18)
	if err != nil {
		return fmt.Errorf("mapreduce: input: %w", err)
	}
	if job.Reducers <= 0 {
		job.Reducers = (len(splits) + 3) / 4
		if job.Reducers < 1 {
			job.Reducers = 1
		}
	}

	// ---- Map phase ----
	var mu sync.Mutex
	var outputs []mapOutput
	var firstErr error
	joins := make([]func(), 0, len(splits))
	for i, split := range splits {
		i, split := i, split
		preferred := ""
		if len(split.Replicas) > 0 {
			preferred = split.Replicas[0]
		}
		container, err := yarn.Allocate(ctx, am.amProc, fw.RM, jobID, preferred)
		if err != nil {
			return err
		}
		tp := fw.procsOn(container.Host)
		join := container.Run(ctx, tp.mapProc, func(taskCtx context.Context) {
			defer container.Release()
			offset := float64(i) * hdfs.BlockSize
			if err := tp.mapHDFS.Read(taskCtx, job.Input, offset, split.Size); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			env.Sleep(time.Duration(split.Size / CPURate * float64(time.Second)))
			out := split.Size * job.MapOutputFactor
			tp.mapProc.DiskWrite(taskCtx, out)
			mu.Lock()
			outputs = append(outputs, mapOutput{host: container.Host, size: out})
			mu.Unlock()
			tpMapDone.Here(taskCtx, jobID)
		})
		joins = append(joins, join)
	}
	for _, join := range joins {
		join()
	}
	if firstErr != nil {
		return firstErr
	}

	// ---- Reduce phase (shuffle, merge, reduce, output) ----
	joins = joins[:0]
	for r := 0; r < job.Reducers; r++ {
		r := r
		container, err := yarn.Allocate(ctx, am.amProc, fw.RM, jobID, "")
		if err != nil {
			return err
		}
		tp := fw.procsOn(container.Host)
		join := container.Run(ctx, tp.reduceProc, func(taskCtx context.Context) {
			defer container.Release()
			// Shuffle: fetch this reducer's partition of every map output.
			var fetched float64
			for _, out := range outputs {
				part := out.size / float64(job.Reducers)
				src := fw.procsOn(out.host).shuffle
				if _, err := tp.reduceProc.Call(taskCtx, src, "ShuffleService.Fetch", part,
					cluster.Sizes{Request: 100, Response: part}); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				fetched += part
			}
			// Merge spill: write then re-read locally. Stragglers churn
			// through extra spill rounds.
			spills := 1
			if r < job.Stragglers && job.StragglerFactor > 1 {
				spills = int(job.StragglerFactor)
			}
			for s := 0; s < spills; s++ {
				tp.reduceProc.DiskWrite(taskCtx, fetched)
				tp.reduceProc.DiskRead(taskCtx, fetched)
			}
			env.Sleep(time.Duration(fetched / CPURate * float64(time.Second)))
			// Job output back to HDFS (replication pipeline).
			outFile := fmt.Sprintf("/out/%s/part-r-%05d", jobID, r)
			if err := tp.reduceHDFS.Create(taskCtx, outFile, fetched*job.OutputFactor); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			tpRedDone.Here(taskCtx, jobID)
		})
		joins = append(joins, join)
	}
	for _, join := range joins {
		join()
	}
	if firstErr != nil {
		return firstErr
	}
	tpJobDone.Here(ctx, jobID)
	return nil
}
