package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowTakesSizeOverRate(t *testing.T) {
	env := simtime.NewEnv()
	var elapsed time.Duration
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 100) // 100 B/s
		start := env.Now()
		n.Flow(50, l)
		elapsed = env.Now() - start
	})
	if !almostEqual(elapsed.Seconds(), 0.5, 1e-6) {
		t.Fatalf("elapsed = %v, want 0.5s", elapsed)
	}
}

func TestTwoFlowsShareLinkFairly(t *testing.T) {
	env := simtime.NewEnv()
	var e1, e2 time.Duration
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 100)
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); s := env.Now(); n.Flow(100, l); e1 = env.Now() - s })
		env.Go(func() { defer wg.Done(); s := env.Now(); n.Flow(100, l); e2 = env.Now() - s })
		wg.Wait()
	})
	// Both flows share the link at 50 B/s each, so both take 2s.
	if !almostEqual(e1.Seconds(), 2.0, 1e-6) || !almostEqual(e2.Seconds(), 2.0, 1e-6) {
		t.Fatalf("elapsed = %v, %v; want 2s each", e1, e2)
	}
}

func TestShortFlowFreesBandwidthForLongFlow(t *testing.T) {
	env := simtime.NewEnv()
	var long time.Duration
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 100)
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); n.Flow(50, l) }) // shares 50 B/s for 1s
		env.Go(func() { defer wg.Done(); s := env.Now(); n.Flow(150, l); long = env.Now() - s })
		wg.Wait()
	})
	// Long flow: 1s at 50 B/s (50 B), then 1s at 100 B/s (100 B) = 2s total.
	if !almostEqual(long.Seconds(), 2.0, 1e-6) {
		t.Fatalf("long flow took %v, want 2s", long)
	}
}

func TestMaxMinBottleneckAcrossTwoLinks(t *testing.T) {
	// Flow 1 crosses links A (cap 100) and B (cap 30); flow 2 crosses only A.
	// Max-min: flow 1 is bottlenecked at B = 30; flow 2 gets 70 on A.
	env := simtime.NewEnv()
	var e1, e2 time.Duration
	env.Run(func() {
		n := New(env)
		a := n.AddLink("a", 100)
		b := n.AddLink("b", 30)
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); s := env.Now(); n.Flow(30, a, b); e1 = env.Now() - s })
		env.Go(func() { defer wg.Done(); s := env.Now(); n.Flow(70, a); e2 = env.Now() - s })
		wg.Wait()
	})
	if !almostEqual(e1.Seconds(), 1.0, 1e-3) {
		t.Errorf("flow over bottleneck took %v, want 1s", e1)
	}
	if !almostEqual(e2.Seconds(), 1.0, 1e-3) {
		t.Errorf("flow on free link took %v, want 1s", e2)
	}
}

func TestSetRateMidFlow(t *testing.T) {
	env := simtime.NewEnv()
	var elapsed time.Duration
	env.Run(func() {
		n := New(env)
		n.AddLink("l", 100)
		l := n.Link("l")
		wg := env.NewWaitGroup()
		wg.Add(1)
		env.Go(func() { defer wg.Done(); s := env.Now(); n.Flow(200, l); elapsed = env.Now() - s })
		env.Go(func() {
			env.Sleep(time.Second) // after 100 B served
			n.SetRate("l", 10)     // limplock!
		})
		wg.Wait()
	})
	// 100 B at 100 B/s (1s) + 100 B at 10 B/s (10s) = 11s.
	if !almostEqual(elapsed.Seconds(), 11.0, 1e-3) {
		t.Fatalf("elapsed = %v, want 11s", elapsed)
	}
}

func TestZeroAndEmptyFlowsCompleteInstantly(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 100)
		n.Flow(0, l)
		n.Flow(100)
		if env.Now() != 0 {
			t.Errorf("time advanced to %v for no-op flows", env.Now())
		}
	})
}

func TestHostSendContendsOnSenderTx(t *testing.T) {
	env := simtime.NewEnv()
	var e1, e2 time.Duration
	env.Run(func() {
		n := New(env)
		a := n.NewHost("a", 100, 1000)
		b := n.NewHost("b", 100, 1000)
		c := n.NewHost("c", 100, 1000)
		a.Latency = 0
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); s := env.Now(); a.Send(b, 100); e1 = env.Now() - s })
		env.Go(func() { defer wg.Done(); s := env.Now(); a.Send(c, 100); e2 = env.Now() - s })
		wg.Wait()
	})
	// Both flows share a.tx at 50 B/s: 2s each.
	if !almostEqual(e1.Seconds(), 2.0, 1e-3) || !almostEqual(e2.Seconds(), 2.0, 1e-3) {
		t.Fatalf("sends took %v, %v; want 2s each", e1, e2)
	}
}

func TestHostLoopbackIsFree(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		n := New(env)
		a := n.NewHost("a", 100, 1000)
		a.Send(a, 1e12)
		if env.Now() != 0 {
			t.Errorf("loopback advanced time to %v", env.Now())
		}
	})
}

func TestDiskSharedBetweenReadAndWrite(t *testing.T) {
	env := simtime.NewEnv()
	var e1, e2 time.Duration
	env.Run(func() {
		n := New(env)
		a := n.NewHost("a", 1e9, 100)
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); s := env.Now(); a.DiskRead(100); e1 = env.Now() - s })
		env.Go(func() { defer wg.Done(); s := env.Now(); a.DiskWrite(100); e2 = env.Now() - s })
		wg.Wait()
	})
	if !almostEqual(e1.Seconds(), 2.0, 1e-3) || !almostEqual(e2.Seconds(), 2.0, 1e-3) {
		t.Fatalf("disk ops took %v, %v; want 2s each", e1, e2)
	}
}

func TestManyFlowsThroughputConservation(t *testing.T) {
	// N flows through one link: total service rate must equal capacity, so
	// N flows of size S take N*S/rate regardless of arrival interleaving.
	env := simtime.NewEnv()
	var end time.Duration
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 1000)
		wg := env.NewWaitGroup()
		for i := 0; i < 50; i++ {
			wg.Add(1)
			env.Go(func() { defer wg.Done(); n.Flow(100, l) })
		}
		wg.Wait()
		end = env.Now()
	})
	if !almostEqual(end.Seconds(), 5.0, 1e-3) {
		t.Fatalf("50 flows finished at %v, want 5s", end)
	}
}

func TestStatsCountServedBytes(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 1000)
		wg := env.NewWaitGroup()
		for i := 0; i < 3; i++ {
			wg.Add(1)
			env.Go(func() { defer wg.Done(); n.Flow(10, l) })
		}
		wg.Wait()
		flows, bytes := n.Stats()
		if flows != 3 || !almostEqual(bytes, 30, 1e-9) {
			t.Fatalf("stats = (%d, %v), want (3, 30)", flows, bytes)
		}
	})
}

func TestLimplockSlowsWholeCluster(t *testing.T) {
	// Eight hosts all sending to each other; downgrade one NIC and verify
	// flows touching it slow down ~10x while others are unaffected.
	env := simtime.NewEnv()
	var viaFaulty, healthy time.Duration
	env.Run(func() {
		n := New(env)
		hosts := make([]*Host, 4)
		for i, name := range []string{"a", "b", "c", "d"} {
			hosts[i] = n.NewHost(name, 100, 1e9)
			hosts[i].Latency = 0
		}
		hosts[1].SetNICRate(10) // host b limps
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); s := env.Now(); hosts[0].Send(hosts[1], 100); viaFaulty = env.Now() - s })
		env.Go(func() { defer wg.Done(); s := env.Now(); hosts[2].Send(hosts[3], 100); healthy = env.Now() - s })
		wg.Wait()
	})
	if !almostEqual(viaFaulty.Seconds(), 10.0, 1e-3) {
		t.Errorf("flow via faulty NIC took %v, want 10s", viaFaulty)
	}
	if !almostEqual(healthy.Seconds(), 1.0, 1e-3) {
		t.Errorf("healthy flow took %v, want 1s", healthy)
	}
}

// TestQuickByteConservation: regardless of arrival pattern, total served
// bytes equal total offered bytes, and completion of N equal flows through
// one link takes exactly N*S/rate of virtual time when arrivals are
// simultaneous.
func TestQuickByteConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := simtime.NewEnv()
		ok := true
		env.Run(func() {
			n := New(env)
			l := n.AddLink("l", 1000)
			total := 0.0
			wg := env.NewWaitGroup()
			for i := 0; i < 1+rng.Intn(10); i++ {
				size := float64(1 + rng.Intn(500))
				total += size
				delay := time.Duration(rng.Intn(100)) * time.Millisecond
				wg.Add(1)
				env.Go(func() {
					defer wg.Done()
					env.Sleep(delay)
					n.Flow(size, l)
				})
			}
			wg.Wait()
			flows, bytes := n.Stats()
			if flows == 0 || bytes < total-1e-6 || bytes > total+1e-6 {
				ok = false
			}
			if served := n.LinkServed("l"); served < total-1e-3 || served > total+1e-3 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkServedTracksProgressMidFlow(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 100)
		env.Go(func() { n.Flow(1000, l) })
		env.Sleep(2 * time.Second)
		served := n.LinkServed("l")
		if served < 199 || served > 201 {
			t.Fatalf("served = %v after 2s at 100 B/s, want ~200", served)
		}
		if n.LinkServed("missing") != 0 {
			t.Fatal("unknown link should serve 0")
		}
	})
}
