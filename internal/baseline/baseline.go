// Package baseline implements the unoptimized evaluation strategy of the
// paper's Fig 6a, used as the comparison point for Pivot Tracing's inline
// happened-before join: every crossing of a tracepoint used by the query
// emits its full exported tuple, tagged with X-Trace-style causal metadata
// (a unique event id plus the ids of the execution's current causal
// frontier, carried in constant-size baggage). A central evaluator
// reconstructs the happened-before relation from the event DAG and
// evaluates the join globally, Magpie-style (§7: "such a query ...
// necessitates global evaluation").
package baseline

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"context"

	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// frontierSlot is the baggage slot carrying causal metadata.
const frontierSlot = "__xtrace.frontier"

var frontierSpec = baggage.SetSpec{Kind: baggage.Frontier, Fields: tuple.Schema{"eventId"}}

// event is one recorded tracepoint crossing.
type event struct {
	id      int64
	parents []int64
	vals    tuple.Tuple // full exported tuple
}

// Evaluator collects events for one query and evaluates it centrally.
type Evaluator struct {
	q   *query.Query
	a   *query.Analysis
	reg *tracepoint.Registry

	mu     sync.Mutex
	events map[string][]*event // per tracepoint name
	byID   map[int64]*event
	nextID atomic.Int64

	tuplesEmitted atomic.Int64
	baggageBytes  atomic.Int64
}

// New builds an evaluator for the query against the registry (named
// queries are not supported by the baseline; the paper's comparison
// queries do not use them).
func New(q *query.Query, reg *tracepoint.Registry) (*Evaluator, error) {
	a, err := query.Analyze(q, reg, nil)
	if err != nil {
		return nil, err
	}
	return &Evaluator{
		q: q, a: a, reg: reg,
		events: make(map[string][]*event),
		byID:   make(map[int64]*event),
	}, nil
}

// Probe is the per-tracepoint instrumentation: emit everything, centrally.
// It implements tracepoint.Advice.
type Probe struct {
	ev *Evaluator
	tp string
}

// Probes returns one probe per tracepoint the query touches; weave each
// into the corresponding tracepoint in every process.
func (ev *Evaluator) Probes() map[string]*Probe {
	out := make(map[string]*Probe)
	add := func(src query.Source) {
		if src.Tracepoint != "" {
			out[src.Tracepoint] = &Probe{ev: ev, tp: src.Tracepoint}
		}
	}
	for _, src := range ev.q.From.Sources {
		add(src)
	}
	for _, j := range ev.q.Joins {
		add(j.Source)
	}
	return out
}

// Invoke records the crossing and advances the causal frontier.
func (p *Probe) Invoke(ctx context.Context, vals tuple.Tuple) {
	ev := p.ev
	id := ev.nextID.Add(1)
	e := &event{id: id, vals: vals.Clone()}
	bag := baggage.FromContext(ctx)
	if bag != nil {
		for _, t := range bag.Unpack(frontierSlot) {
			e.parents = append(e.parents, t[0].Int())
		}
		bag.Pack(frontierSlot, frontierSpec, tuple.Tuple{tuple.Int(id)})
		ev.baggageBytes.Add(int64(bag.ByteSize()))
	}
	ev.tuplesEmitted.Add(1)
	ev.mu.Lock()
	ev.events[p.tp] = append(ev.events[p.tp], e)
	ev.byID[id] = e
	ev.mu.Unlock()
}

// Stats returns the traffic metrics: tuples shipped to the central
// evaluator and cumulative baggage bytes observed on the wire.
func (ev *Evaluator) Stats() (tuples int64, baggageBytes int64) {
	return ev.tuplesEmitted.Load(), ev.baggageBytes.Load()
}

// ancestors computes the transitive causal ancestors of an event.
func (ev *Evaluator) ancestors(e *event, memo map[int64]map[int64]bool) map[int64]bool {
	if got, ok := memo[e.id]; ok {
		return got
	}
	out := make(map[int64]bool)
	memo[e.id] = out // break cycles defensively (DAG: none expected)
	for _, pid := range e.parents {
		out[pid] = true
		if pe, ok := ev.byID[pid]; ok {
			for a := range ev.ancestors(pe, memo) {
				out[a] = true
			}
		}
	}
	return out
}

// Evaluate runs the query over all recorded events, returning the result
// rows in group order — equivalent to what the optimized in-baggage plan
// produces, but computed centrally.
func (ev *Evaluator) Evaluate() ([]tuple.Tuple, error) {
	ev.mu.Lock()
	defer ev.mu.Unlock()

	memo := make(map[int64]map[int64]bool)

	// alias -> tracepoint events
	aliasEvents := func(alias string) ([]*event, error) {
		if alias == ev.q.From.Alias {
			var out []*event
			for _, src := range ev.q.From.Sources {
				out = append(out, ev.events[src.Tracepoint]...)
			}
			sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
			return out, nil
		}
		for _, j := range ev.q.Joins {
			if j.Alias == alias {
				return ev.events[j.Source.Tracepoint], nil
			}
		}
		return nil, fmt.Errorf("baseline: unknown alias %q", alias)
	}

	// Recursive binding of aliases in join order.
	type binding = map[string]*event
	bindings := []binding{}
	fromEvents, err := aliasEvents(ev.q.From.Alias)
	if err != nil {
		return nil, err
	}
	for _, e := range fromEvents {
		bindings = append(bindings, binding{ev.q.From.Alias: e})
	}

	// Resolve joins in declaration order; each join's Right alias is
	// already bound (the analyzer guarantees the chain structure).
	for _, j := range ev.q.Joins {
		if j.Source.IsSubquery() {
			return nil, fmt.Errorf("baseline: subquery joins unsupported")
		}
		candidates, err := aliasEvents(j.Alias)
		if err != nil {
			return nil, err
		}
		var next []binding
		for _, b := range bindings {
			right, ok := b[j.Right]
			if !ok {
				return nil, fmt.Errorf("baseline: join alias %q unbound", j.Right)
			}
			anc := ev.ancestors(right, memo)
			var matches []*event
			for _, c := range candidates {
				if anc[c.id] {
					matches = append(matches, c)
				}
			}
			matches = applyTempFilter(matches, j.Source.Filter, j.Source.N)
			for _, m := range matches {
				nb := make(binding, len(b)+1)
				for k, v := range b {
					nb[k] = v
				}
				nb[j.Alias] = m
				next = append(next, nb)
			}
		}
		bindings = next
	}

	// Where, GroupBy, Select via expression evaluation.
	resolve := func(b binding) func(query.FieldRef) tuple.Value {
		return func(f query.FieldRef) tuple.Value {
			e, ok := b[f.Alias]
			if !ok {
				return tuple.Null
			}
			schema := ev.a.Schemas[f.Alias]
			idx := schema.Index(f.Field)
			if idx < 0 || idx >= len(e.vals) {
				return tuple.Null
			}
			return e.vals[idx]
		}
	}

	kept := bindings[:0]
	for _, b := range bindings {
		ok := true
		for _, w := range ev.q.Where {
			if !w.Eval(resolve(b)).Bool() {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, b)
		}
	}

	return ev.project(kept, resolve)
}

// project computes the Select outputs with grouping and aggregation.
func (ev *Evaluator) project(bindings []map[string]*event, resolve func(map[string]*event) func(query.FieldRef) tuple.Value) ([]tuple.Tuple, error) {
	hasAgg := false
	for _, si := range ev.q.Select {
		if si.HasAgg {
			hasAgg = true
		}
	}
	if !hasAgg && len(ev.q.GroupBy) == 0 {
		out := make([]tuple.Tuple, 0, len(bindings))
		for _, b := range bindings {
			row := make(tuple.Tuple, len(ev.q.Select))
			for i, si := range ev.q.Select {
				row[i] = si.Expr.Eval(resolve(b))
			}
			out = append(out, row)
		}
		return out, nil
	}

	type g struct {
		rep    map[string]*event
		states []*agg.State
	}
	groups := map[string]*g{}
	var order []string
	for _, b := range bindings {
		keyVals := make(tuple.Tuple, len(ev.q.GroupBy))
		for i, gb := range ev.q.GroupBy {
			keyVals[i] = gb.Eval(resolve(b))
		}
		key := keyVals.Key(identity(len(keyVals)))
		grp, ok := groups[key]
		if !ok {
			grp = &g{rep: b}
			for _, si := range ev.q.Select {
				if si.HasAgg {
					grp.states = append(grp.states, agg.New(si.Agg))
				}
			}
			groups[key] = grp
			order = append(order, key)
		}
		k := 0
		for _, si := range ev.q.Select {
			if !si.HasAgg {
				continue
			}
			if si.Expr != nil {
				grp.states[k].Add(si.Expr.Eval(resolve(b)))
			} else {
				grp.states[k].Add(tuple.Null)
			}
			k++
		}
	}
	out := make([]tuple.Tuple, 0, len(order))
	for _, key := range order {
		grp := groups[key]
		row := make(tuple.Tuple, len(ev.q.Select))
		k := 0
		for i, si := range ev.q.Select {
			if si.HasAgg {
				row[i] = grp.states[k].Result()
				k++
			} else {
				row[i] = si.Expr.Eval(resolve(grp.rep))
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// applyTempFilter keeps the first/last 1 or N candidates (candidates are
// in event-id order, which is creation order).
func applyTempFilter(matches []*event, f query.TempFilter, n int) []*event {
	sort.Slice(matches, func(i, j int) bool { return matches[i].id < matches[j].id })
	if n < 1 {
		n = 1
	}
	switch f {
	case query.FilterFirst:
		n = 1
		fallthrough
	case query.FilterFirstN:
		if len(matches) > n {
			matches = matches[:n]
		}
	case query.FilterMostRecent:
		n = 1
		fallthrough
	case query.FilterMostRecentN:
		if len(matches) > n {
			matches = matches[len(matches)-n:]
		}
	}
	return matches
}
