package cluster

import (
	"testing"
	"time"

	"repro/internal/querygen"
	"repro/internal/simtime"
)

// TestScriptExecDrivesDemoCase runs the fixed demo case through
// ScriptExec on a simulated cluster with span capture enabled: every
// scripted event must be stamped by the executor, and each Run must
// reconstruct as its own trace.
func TestScriptExecDrivesDemoCase(t *testing.T) {
	c := querygen.DemoCase()
	var (
		runErrs []error
		traces  int
		spans   int64
	)
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := New(env, cfg)
		builder := cl.EnableSpans(0)
		x := NewScriptExec(cl, c)
		for i := 0; i < 2; i++ {
			if err := x.Run(); err != nil {
				runErrs = append(runErrs, err)
				return
			}
			env.Sleep(time.Millisecond)
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		traces = len(builder.TraceIDs())
		for _, p := range x.Procs {
			spans += p.Agent.Stats().SpansCaptured
		}
	})
	for _, err := range runErrs {
		t.Fatal(err)
	}
	for i := range c.Events {
		if !c.Events[i].Stamped {
			t.Fatalf("event %d was never stamped by the executor", i)
		}
		if c.Events[i].Host == "" || c.Events[i].ProcName == "" {
			t.Fatalf("event %d stamped without process identity: %+v", i, c.Events[i])
		}
	}
	if traces != 2 {
		t.Fatalf("want 2 traces (one per Run), got %d", traces)
	}
	// 4 crossings per request × 2 requests, split across the 3 agents.
	if spans != 8 {
		t.Fatalf("want 8 captured spans, got %d", spans)
	}
}
