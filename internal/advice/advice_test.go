package advice

import (
	"context"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/tuple"
)

// collectEmitter records emitted working tuples.
type collectEmitter struct {
	tuples []tuple.Tuple
	progs  []*Program
}

func (c *collectEmitter) EmitTuple(p *Program, w tuple.Tuple) {
	c.progs = append(c.progs, p)
	c.tuples = append(c.tuples, w.Clone())
}

// exported builds a fake full tracepoint tuple:
// host, time, procName, procId, tracepoint, then extras.
func exported(host string, t int64, proc string, extras ...tuple.Value) tuple.Tuple {
	out := tuple.Tuple{
		tuple.String(host), tuple.Int(t), tuple.String(proc),
		tuple.Int(1), tuple.String("tp"),
	}
	return append(out, extras...)
}

func TestObserveEmit(t *testing.T) {
	em := &collectEmitter{}
	a := &Advice{
		Prog: &Program{
			QueryID:       "q",
			Observe:       []int{0, 5},
			ObserveFields: tuple.Schema{"host", "delta"},
			Emit: &EmitOp{
				Cols:    []EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
				GroupBy: []int{0},
				Schema:  tuple.Schema{"host", "SUM(delta)"},
			},
		},
		Emitter: em,
	}
	a.Invoke(context.Background(), exported("h1", 0, "p", tuple.Int(100)))
	if len(em.tuples) != 1 || em.tuples[0][0].Str() != "h1" || em.tuples[0][1].Int() != 100 {
		t.Fatalf("emitted = %v", em.tuples)
	}
}

func TestPackThenUnpackJoins(t *testing.T) {
	// Simulates Q2: advice A1 packs procName at the client protocol
	// tracepoint; A2 unpacks it at the datanode metrics tracepoint.
	a1 := &Advice{Prog: &Program{
		QueryID:       "q2",
		Observe:       []int{2},
		ObserveFields: tuple.Schema{"procName"},
		Pack: &PackOp{
			Slot:   "q2.cl",
			Spec:   baggage.SetSpec{Kind: baggage.First, Fields: tuple.Schema{"procName"}},
			Source: []int{0},
		},
	}}
	em := &collectEmitter{}
	a2 := &Advice{
		Prog: &Program{
			QueryID:       "q2",
			Observe:       []int{5},
			ObserveFields: tuple.Schema{"delta"},
			Unpacks:       []UnpackOp{{Slot: "q2.cl", Fields: tuple.Schema{"procName"}}},
			Emit: &EmitOp{
				Cols:    []EmitCol{{Pos: 1}, {IsAgg: true, Pos: 0, Fn: agg.Sum}},
				GroupBy: []int{1},
				Schema:  tuple.Schema{"procName", "SUM(delta)"},
			},
		},
		Emitter: em,
	}

	ctx := baggage.NewContext(context.Background(), baggage.New())
	a1.Invoke(ctx, exported("client-host", 0, "HGET"))
	a2.Invoke(ctx, exported("dn-host", 1, "DataNode", tuple.Int(4096)))

	if len(em.tuples) != 1 {
		t.Fatalf("emitted = %v", em.tuples)
	}
	w := em.tuples[0]
	if w[0].Int() != 4096 || w[1].Str() != "HGET" {
		t.Fatalf("joined tuple = %v, want (4096, HGET)", w)
	}
}

func TestUnpackEmptyDropsObservation(t *testing.T) {
	em := &collectEmitter{}
	a := &Advice{
		Prog: &Program{
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"host"},
			Unpacks:       []UnpackOp{{Slot: "missing", Fields: tuple.Schema{"x"}}},
			Emit:          &EmitOp{Schema: tuple.Schema{"COUNT"}, Cols: []EmitCol{{IsAgg: true, Pos: -1, Fn: agg.Count}}},
		},
		Emitter: em,
	}
	// With baggage but empty slot: inner join drops.
	ctx := baggage.NewContext(context.Background(), baggage.New())
	a.Invoke(ctx, exported("h", 0, "p"))
	// Without any baggage at all: also drops.
	a.Invoke(context.Background(), exported("h", 0, "p"))
	if len(em.tuples) != 0 {
		t.Fatalf("emitted = %v, want none", em.tuples)
	}
}

func TestUnpackCartesianProduct(t *testing.T) {
	bag := baggage.New()
	spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"r"}}
	bag.Pack("s", spec, tuple.Tuple{tuple.String("r1")}, tuple.Tuple{tuple.String("r2")})
	em := &collectEmitter{}
	a := &Advice{
		Prog: &Program{
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"host"},
			Unpacks:       []UnpackOp{{Slot: "s", Fields: tuple.Schema{"r"}}},
			Emit:          &EmitOp{Cols: []EmitCol{{Pos: 0}, {Pos: 1}}, GroupBy: []int{0, 1}, Schema: tuple.Schema{"host", "r"}},
		},
		Emitter: em,
	}
	a.Invoke(baggage.NewContext(context.Background(), bag), exported("h", 0, "p"))
	if len(em.tuples) != 2 {
		t.Fatalf("emitted %d tuples, want 2", len(em.tuples))
	}
}

func TestFilterDropsNonMatching(t *testing.T) {
	// Q7-style: Where st.host != DNop.host
	bag := baggage.New()
	spec := baggage.SetSpec{Kind: baggage.First, Fields: tuple.Schema{"host"}}
	bag.Pack("st", spec, tuple.Tuple{tuple.String("h1")})

	pred, err := query.Parse(`From DNop In X Where st.host != DNop.host Select COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	em := &collectEmitter{}
	a := &Advice{
		Prog: &Program{
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"host"},
			Unpacks:       []UnpackOp{{Slot: "st", Fields: tuple.Schema{"host"}}},
			Filters: []FilterOp{{
				Expr: pred.Where[0],
				Bindings: map[query.FieldRef]int{
					{Alias: "DNop", Field: "host"}: 0,
					{Alias: "st", Field: "host"}:   1,
				},
			}},
			Emit: &EmitOp{Cols: []EmitCol{{Pos: 0}}, GroupBy: []int{0}, Schema: tuple.Schema{"host"}},
		},
		Emitter: em,
	}
	ctx := baggage.NewContext(context.Background(), bag)
	a.Invoke(ctx, exported("h1", 0, "p")) // same host: filtered out
	a.Invoke(ctx, exported("h2", 0, "p")) // different host: kept
	if len(em.tuples) != 1 || em.tuples[0][0].Str() != "h2" {
		t.Fatalf("emitted = %v", em.tuples)
	}
}

func TestPackWithoutBaggageIsSafeNoop(t *testing.T) {
	a := &Advice{Prog: &Program{
		Observe:       []int{0},
		ObserveFields: tuple.Schema{"host"},
		Pack: &PackOp{
			Slot:   "s",
			Spec:   baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"host"}},
			Source: []int{0},
		},
	}}
	a.Invoke(context.Background(), exported("h", 0, "p")) // must not panic
}

func TestChainedPackCarriesUpstreamFields(t *testing.T) {
	// Q7-style chain: st packs host; getloc unpacks it and packs
	// (replicas, st.host) onward; DNop unpacks the combined tuple.
	bag := baggage.New()
	ctx := baggage.NewContext(context.Background(), bag)

	stAdvice := &Advice{Prog: &Program{
		Observe:       []int{0},
		ObserveFields: tuple.Schema{"host"},
		Pack: &PackOp{
			Slot:   "q.st",
			Spec:   baggage.SetSpec{Kind: baggage.First, Fields: tuple.Schema{"host"}},
			Source: []int{0},
		},
	}}
	getlocAdvice := &Advice{Prog: &Program{
		Observe:       []int{5},
		ObserveFields: tuple.Schema{"replicas"},
		Unpacks:       []UnpackOp{{Slot: "q.st", Fields: tuple.Schema{"host"}}},
		Pack: &PackOp{
			Slot: "q.getloc",
			Spec: baggage.SetSpec{Kind: baggage.All,
				Fields: tuple.Schema{"replicas", "host"}},
			Source: []int{0, 1},
		},
	}}
	em := &collectEmitter{}
	dnopAdvice := &Advice{
		Prog: &Program{
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"host"},
			Unpacks:       []UnpackOp{{Slot: "q.getloc", Fields: tuple.Schema{"replicas", "sthost"}}},
			Emit:          &EmitOp{Cols: []EmitCol{{Pos: 0}, {Pos: 1}, {Pos: 2}}, GroupBy: []int{0, 1, 2}, Schema: tuple.Schema{"host", "replicas", "sthost"}},
		},
		Emitter: em,
	}

	stAdvice.Invoke(ctx, exported("client1", 0, "StressTest"))
	getlocAdvice.Invoke(ctx, exported("nn", 1, "NameNode", tuple.String("dn1,dn2,dn3")))
	dnopAdvice.Invoke(ctx, exported("dn2", 2, "DataNode"))

	if len(em.tuples) != 1 {
		t.Fatalf("emitted = %v", em.tuples)
	}
	w := em.tuples[0]
	if w[0].Str() != "dn2" || w[1].Str() != "dn1,dn2,dn3" || w[2].Str() != "client1" {
		t.Fatalf("chained tuple = %v", w)
	}
}

func TestProgramStringMatchesPaperNotation(t *testing.T) {
	p := &Program{
		Observe:       []int{5},
		ObserveFields: tuple.Schema{"delta"},
		Unpacks:       []UnpackOp{{Slot: "q2.cl", Fields: tuple.Schema{"procName"}}},
		Emit:          &EmitOp{Schema: tuple.Schema{"procName", "SUM(delta)"}},
	}
	s := p.String()
	for _, want := range []string{"OBSERVE delta", "UNPACK procName", "EMIT procName, SUM(delta)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	p2 := &Program{
		Observe:       []int{2},
		ObserveFields: tuple.Schema{"procName"},
		Pack: &PackOp{
			Spec: baggage.SetSpec{Kind: baggage.First, Fields: tuple.Schema{"procName"}},
		},
	}
	if s := p2.String(); !strings.Contains(s, "PACK-FIRST procName") {
		t.Errorf("String() = %q, missing PACK-FIRST", s)
	}
}

func TestWorkingSchema(t *testing.T) {
	p := &Program{
		ObserveFields: tuple.Schema{"a"},
		Unpacks: []UnpackOp{
			{Fields: tuple.Schema{"b"}},
			{Fields: tuple.Schema{"c", "d"}},
		},
	}
	want := tuple.Schema{"a", "b", "c", "d"}
	if !p.WorkingSchema().Equal(want) {
		t.Fatalf("WorkingSchema = %v, want %v", p.WorkingSchema(), want)
	}
}
