package sampling

import (
	"math"
	"testing"
)

func TestClampRate(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0.5, 0.5},
		{1, 1},
		{0.001, 0.001},
		{0, 0},
		{-0.5, 0},
		{1.5, 0},
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{math.MaxFloat64, 0},
		// Subnormal: in (0, 1] but 1/r overflows to +Inf — the weight
		// would poison every aggregate it touches.
		{5e-324, 0},
		{1e-300, 1e-300}, // tiny but usable: the weight 1e300 is finite
	}
	for _, c := range cases {
		if got := ClampRate(c.in); got != c.want {
			t.Errorf("ClampRate(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestControllerBackoffAndRestore(t *testing.T) {
	c := NewController()
	c.SetBase("q", 0.5)
	if got := c.Effective("q"); got != 0.5 {
		t.Fatalf("effective after install = %v, want 0.5", got)
	}
	// Pressure halves per tick, floored at base/64.
	for i := 0; i < 20; i++ {
		c.Tick(true)
	}
	floor := 0.5 / 64
	if got := c.Effective("q"); got != floor {
		t.Fatalf("effective after sustained pressure = %v, want floor %v", got, floor)
	}
	// One pressure tick halves exactly.
	c.SetBase("q2", 0.8)
	c.Tick(true)
	if got := c.Effective("q2"); got != 0.4 {
		t.Fatalf("one pressure tick: effective = %v, want 0.4", got)
	}
	// Idle ticks double back up to the base, never past it.
	for i := 0; i < 20; i++ {
		c.Tick(false)
	}
	if got := c.Effective("q"); got != 0.5 {
		t.Fatalf("effective after recovery = %v, want base 0.5", got)
	}
	if got := c.Effective("q2"); got != 0.8 {
		t.Fatalf("q2 effective after recovery = %v, want base 0.8", got)
	}
}

func TestControllerSetBaseValidation(t *testing.T) {
	c := NewController()
	c.SetBase("bad", math.NaN())
	if got := c.Effective("bad"); got != 0 {
		t.Fatalf("NaN base registered: effective = %v", got)
	}
	c.SetBase("q", 0.25)
	c.Tick(true) // eff = 0.125
	c.SetBase("q", 0.25)
	if got := c.Effective("q"); got != 0.125 {
		t.Fatalf("re-install same base reset backoff: effective = %v, want 0.125", got)
	}
	c.SetBase("q", 0.5) // changed base resets
	if got := c.Effective("q"); got != 0.5 {
		t.Fatalf("changed base: effective = %v, want 0.5", got)
	}
	c.SetBase("q", -1) // invalid base removes
	if got := c.Effective("q"); got != 0 {
		t.Fatalf("invalid base kept query: effective = %v", got)
	}
}

func TestControllerRemove(t *testing.T) {
	c := NewController()
	c.SetBase("q", 0.1)
	c.Remove("q")
	if got := c.Effective("q"); got != 0 {
		t.Fatalf("effective after remove = %v", got)
	}
}

func TestMinEffectiveMilli(t *testing.T) {
	c := NewController()
	if got := c.MinEffectiveMilli(); got != 1000 {
		t.Fatalf("empty controller milli = %d, want 1000", got)
	}
	c.SetBase("a", 1)
	c.SetBase("b", 0.05)
	if got := c.MinEffectiveMilli(); got != 50 {
		t.Fatalf("milli = %d, want 50", got)
	}
	c.Tick(true)
	if got := c.MinEffectiveMilli(); got != 25 {
		t.Fatalf("milli after pressure = %d, want 25", got)
	}
}
