package netsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/simtime"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want panic containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want string", r, r)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q; want it to contain %q", msg, want)
		}
	}()
	fn()
}

func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  TopologyConfig
		want string
	}{
		{"zero racks", TopologyConfig{Racks: 0, HostsPerRack: 4}, "Racks > 0"},
		{"zero hosts per rack", TopologyConfig{Racks: 4, HostsPerRack: 0}, "HostsPerRack > 0"},
		{"negative racks per pod", TopologyConfig{Racks: 4, HostsPerRack: 2, RacksPerPod: -1}, "RacksPerPod"},
		{"negative latency", TopologyConfig{Racks: 1, HostsPerRack: 1, HostLatency: -time.Second}, "HostLatency"},
		{"slash in prefix", TopologyConfig{Racks: 1, HostsPerRack: 1, NamePrefix: "a/b"}, "bad host name prefix"},
		{"space in prefix", TopologyConfig{Racks: 1, HostsPerRack: 1, NamePrefix: "a b"}, "bad host name prefix"},
		{"whitespace-only prefix", TopologyConfig{Racks: 1, HostsPerRack: 1, NamePrefix: "\t"}, "bad host name prefix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := simtime.NewEnv()
			env.Run(func() {
				mustPanic(t, tc.want, func() { BuildTopology(New(env), tc.cfg) })
			})
		})
	}
}

func TestTopologyDuplicateRegistrationPanics(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		n := New(env)
		cfg := TopologyConfig{Racks: 2, HostsPerRack: 2, RackUplink: Gbit}
		BuildTopology(n, cfg)
		// Rebuilding the same topology on the same network collides on
		// the interned link names.
		mustPanic(t, "duplicate link", func() { BuildTopology(n, cfg) })
	})
}

func TestTopologyNamesAndPlacement(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		n := New(env)
		topo := BuildTopology(n, TopologyConfig{
			Racks: 4, HostsPerRack: 3, RacksPerPod: 2,
			RackUplink: Gbit, PodUplink: 4 * Gbit,
		})
		if topo.Size() != 12 {
			t.Fatalf("Size = %d, want 12", topo.Size())
		}
		if got := topo.Name(0); got != "hr000n000" {
			t.Fatalf("Name(0) = %q", got)
		}
		if got := topo.Name(11); got != "hr003n002" {
			t.Fatalf("Name(11) = %q", got)
		}
		if len(topo.Names()) != 12 || topo.Names()[5] != topo.Host(5).Name {
			t.Fatalf("Names() inconsistent with Host()")
		}
		// Host 7 is rack 2 (hosts 6..8), pod 1 (racks 2..3).
		if topo.RackOf(7) != 2 || topo.PodOf(7) != 1 {
			t.Fatalf("host 7 placed at rack %d pod %d, want rack 2 pod 1",
				topo.RackOf(7), topo.PodOf(7))
		}
		if topo.Host(7).Rack() != 2 || topo.Host(7).Pod() != 1 {
			t.Fatalf("Host accessors disagree with topology placement")
		}
	})
}

func TestTopologyZeroLatencyLinks(t *testing.T) {
	env := simtime.NewEnv()
	var elapsed time.Duration
	env.Run(func() {
		n := New(env)
		topo := BuildTopology(n, TopologyConfig{
			Racks: 2, HostsPerRack: 1, NICRate: 100, RackUplink: 100,
			HostLatency: 0,
		})
		start := env.Now()
		topo.Host(0).Send(topo.Host(1), 50)
		elapsed = env.Now() - start
	})
	// No propagation latency: the transfer takes exactly size/rate.
	if !almostEqual(elapsed.Seconds(), 0.5, 1e-6) {
		t.Fatalf("zero-latency send took %v, want 0.5s", elapsed)
	}
}

func TestCrossRackTrafficSharesRackUplink(t *testing.T) {
	env := simtime.NewEnv()
	var e1, e2, same time.Duration
	env.Run(func() {
		n := New(env)
		// Two racks of two hosts; the rack uplink has the same capacity
		// as one NIC, so two concurrent cross-rack senders from rack 0
		// halve each other while a same-rack transfer would not.
		topo := BuildTopology(n, TopologyConfig{
			Racks: 2, HostsPerRack: 2, NICRate: 100, RackUplink: 100,
		})
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() {
			defer wg.Done()
			s := env.Now()
			topo.Host(0).Send(topo.Host(2), 100)
			e1 = env.Now() - s
		})
		env.Go(func() {
			defer wg.Done()
			s := env.Now()
			topo.Host(1).Send(topo.Host(3), 100)
			e2 = env.Now() - s
		})
		wg.Wait()
		s := env.Now()
		topo.Host(0).Send(topo.Host(1), 100)
		same = env.Now() - s
	})
	if !almostEqual(e1.Seconds(), 2.0, 1e-3) || !almostEqual(e2.Seconds(), 2.0, 1e-3) {
		t.Fatalf("cross-rack flows took %v, %v; want ~2s each (shared uplink)", e1, e2)
	}
	if !almostEqual(same.Seconds(), 1.0, 1e-3) {
		t.Fatalf("same-rack flow took %v, want ~1s (no uplink)", same)
	}
}

func TestCrossPodTrafficRidesPodUplink(t *testing.T) {
	env := simtime.NewEnv()
	var elapsed time.Duration
	env.Run(func() {
		n := New(env)
		// Pod uplink is the bottleneck at half a NIC.
		topo := BuildTopology(n, TopologyConfig{
			Racks: 2, HostsPerRack: 1, RacksPerPod: 1,
			NICRate: 100, RackUplink: 100, PodUplink: 50,
		})
		start := env.Now()
		topo.Host(0).Send(topo.Host(1), 100)
		elapsed = env.Now() - start
	})
	if !almostEqual(elapsed.Seconds(), 2.0, 1e-3) {
		t.Fatalf("cross-pod flow took %v, want 2s at the 50 B/s pod uplink", elapsed)
	}
}

func TestSmallFlowCutoffAccountsAndSleeps(t *testing.T) {
	env := simtime.NewEnv()
	var small, large time.Duration
	var flows int64
	var bytes float64
	env.Run(func() {
		n := New(env)
		l := n.AddLink("l", 100)
		n.SetSmallFlowCutoff(10)
		s := env.Now()
		n.Flow(10, l) // at the cutoff: closed-form path
		small = env.Now() - s
		s = env.Now()
		n.Flow(100, l) // above the cutoff: exact path
		large = env.Now() - s
		flows, bytes = n.Stats()
		if served := n.LinkServed("l"); !almostEqual(served, 110, 1e-6) {
			t.Errorf("LinkServed = %v, want 110", served)
		}
	})
	if !almostEqual(small.Seconds(), 0.1, 1e-6) {
		t.Fatalf("small flow took %v, want 0.1s", small)
	}
	if !almostEqual(large.Seconds(), 1.0, 1e-6) {
		t.Fatalf("large flow took %v, want 1s", large)
	}
	if flows != 2 || !almostEqual(bytes, 110, 1e-6) {
		t.Fatalf("Stats = %d flows / %v bytes, want 2 / 110", flows, bytes)
	}
}

func TestIsolatedFlowFastPathMatchesFairShare(t *testing.T) {
	env := simtime.NewEnv()
	var isolated, contended time.Duration
	env.Run(func() {
		n := New(env)
		a := n.AddLink("a", 100)
		b := n.AddLink("b", 50)
		c := n.AddLink("c", 100)
		// Isolated two-link flow: bottleneck capacity outright.
		s := env.Now()
		n.Flow(100, a, b)
		isolated = env.Now() - s
		// Then contended: a second flow joining link c mid-way must
		// trigger the full reshare and halve both.
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go(func() { defer wg.Done(); n.Flow(100, c) })
		env.Go(func() {
			defer wg.Done()
			s := env.Now()
			n.Flow(100, c)
			contended = env.Now() - s
		})
		wg.Wait()
	})
	if !almostEqual(isolated.Seconds(), 2.0, 1e-6) {
		t.Fatalf("isolated flow took %v, want 2s at the 50 B/s bottleneck", isolated)
	}
	if !almostEqual(contended.Seconds(), 2.0, 1e-6) {
		t.Fatalf("contended flow took %v, want 2s at half the link", contended)
	}
}
