// Package baggage implements Pivot Tracing's baggage abstraction (§5 of the
// paper): a per-request container for tuples that is propagated alongside a
// request as it traverses thread, application, and machine boundaries.
// Pack and Unpack store and retrieve tuples; because tuples follow the
// request's execution path they explicitly capture the happened-before
// relation, enabling inline evaluation of the happened-before join.
//
// Baggage handles branching executions with a versioning scheme based on
// interval tree clocks: each branch packs into its own uniquely-identified
// active instance, frozen pre-branch instances are read-only, and rejoining
// merges actives and deduplicates the frozen copies.
package baggage

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// SetKind selects the retention semantics of a packed tuple set, matching
// the paper's Pack special cases (§3): ALL, FIRST, RECENT, FIRSTN, RECENTN,
// plus AGG for pack-time aggregation (the Table 3 rewrites).
type SetKind uint8

// Set kinds.
const (
	All SetKind = iota
	First
	FirstN
	Recent
	RecentN
	Agg
	// Frontier tracks the causal frontier of an execution: Pack replaces
	// the branch's tuple (like Recent), but merging at a branch join keeps
	// the tuples of both branches (deduplicated). Used by the baseline
	// global-evaluation strategy to carry X-Trace-style event identifiers.
	Frontier
)

func (k SetKind) String() string {
	switch k {
	case All:
		return "ALL"
	case First:
		return "FIRST"
	case FirstN:
		return "FIRSTN"
	case Recent:
		return "RECENT"
	case RecentN:
		return "RECENTN"
	case Agg:
		return "AGG"
	case Frontier:
		return "FRONTIER"
	default:
		return fmt.Sprintf("setkind(%d)", uint8(k))
	}
}

// AggField names one aggregated position of a packed tuple.
type AggField struct {
	Pos int      // position in the packed tuple
	Fn  agg.Func // aggregation function
}

// SetSpec configures a packed tuple set: its retention kind, capacity (for
// FIRSTN/RECENTN), field names, and — for AGG sets — which positions are
// group-by keys and which are aggregated.
type SetSpec struct {
	Kind    SetKind
	N       int
	Fields  tuple.Schema
	GroupBy []int
	Aggs    []AggField
}

// Equal reports whether two specs are identical.
func (s SetSpec) Equal(o SetSpec) bool {
	if s.Kind != o.Kind || s.N != o.N || !s.Fields.Equal(o.Fields) {
		return false
	}
	if len(s.GroupBy) != len(o.GroupBy) || len(s.Aggs) != len(o.Aggs) {
		return false
	}
	for i := range s.GroupBy {
		if s.GroupBy[i] != o.GroupBy[i] {
			return false
		}
	}
	for i := range s.Aggs {
		if s.Aggs[i] != o.Aggs[i] {
			return false
		}
	}
	return true
}

// group is one group-by bucket of an AGG set.
type group struct {
	keyVals tuple.Tuple // values at GroupBy positions, in GroupBy order
	states  []*agg.State
}

// Set is a tuple set stored in a baggage instance under one slot.
type Set struct {
	Spec   SetSpec
	tuples []tuple.Tuple     // non-AGG kinds
	groups map[string]*group // AGG kind
	order  []string          // deterministic group iteration order
}

// NewSet returns an empty set with the given spec.
func NewSet(spec SetSpec) *Set {
	s := &Set{Spec: spec}
	if spec.Kind == Agg {
		s.groups = make(map[string]*group)
	}
	return s
}

// Pack folds one tuple into the set according to its retention semantics.
func (s *Set) Pack(t tuple.Tuple) {
	switch s.Spec.Kind {
	case All:
		s.tuples = append(s.tuples, t)
	case First:
		if len(s.tuples) == 0 {
			s.tuples = append(s.tuples, t)
		}
	case FirstN:
		if len(s.tuples) < s.Spec.N {
			s.tuples = append(s.tuples, t)
		}
	case Recent, Frontier:
		s.tuples = append(s.tuples[:0], t)
	case RecentN:
		s.tuples = append(s.tuples, t)
		if excess := len(s.tuples) - s.Spec.N; excess > 0 {
			s.tuples = append(s.tuples[:0:0], s.tuples[excess:]...)
		}
	case Agg:
		key := t.Key(s.Spec.GroupBy)
		g, ok := s.groups[key]
		if !ok {
			g = &group{keyVals: t.Project(s.Spec.GroupBy)}
			for _, af := range s.Spec.Aggs {
				g.states = append(g.states, agg.New(af.Fn))
			}
			s.groups[key] = g
			s.order = append(s.order, key)
		}
		for i, af := range s.Spec.Aggs {
			g.states[i].Add(t[af.Pos])
		}
	}
}

// Merge folds another set with the same spec into s. Used when rejoining
// branched baggage and when combining instances at unpack.
func (s *Set) Merge(o *Set) {
	if !s.Spec.Equal(o.Spec) {
		panic("baggage: merging sets with different specs")
	}
	switch s.Spec.Kind {
	case All:
		s.tuples = append(s.tuples, o.tuples...)
	case First:
		if len(s.tuples) == 0 && len(o.tuples) > 0 {
			s.tuples = append(s.tuples, o.tuples[0])
		}
	case FirstN:
		for _, t := range o.tuples {
			if len(s.tuples) >= s.Spec.N {
				break
			}
			s.tuples = append(s.tuples, t)
		}
	case Recent:
		// Deterministic tie-break across branches: the left (receiver)
		// branch wins if it has a tuple.
		if len(s.tuples) == 0 && len(o.tuples) > 0 {
			s.tuples = append(s.tuples, o.tuples[0])
		}
	case RecentN:
		s.tuples = append(s.tuples, o.tuples...)
		if excess := len(s.tuples) - s.Spec.N; excess > 0 {
			s.tuples = append(s.tuples[:0:0], s.tuples[excess:]...)
		}
	case Frontier:
		// Union the branch frontiers, dropping exact duplicates.
		for _, t := range o.tuples {
			dup := false
			for _, mine := range s.tuples {
				if mine.Equal(t) {
					dup = true
					break
				}
			}
			if !dup {
				s.tuples = append(s.tuples, t)
			}
		}
	case Agg:
		for _, key := range o.order {
			og := o.groups[key]
			g, ok := s.groups[key]
			if !ok {
				g = &group{keyVals: og.keyVals.Clone()}
				for _, st := range og.states {
					g.states = append(g.states, st.Clone())
				}
				s.groups[key] = g
				s.order = append(s.order, key)
				continue
			}
			for i, st := range og.states {
				g.states[i].Merge(st)
			}
		}
	}
}

// Unpack materializes the set's contents as tuples in the packed field
// layout. AGG sets yield one tuple per group, with group-by positions
// holding the key values and aggregated positions holding partial results;
// positions covered by neither hold null.
func (s *Set) Unpack() []tuple.Tuple {
	if s.Spec.Kind != Agg {
		out := make([]tuple.Tuple, len(s.tuples))
		for i, t := range s.tuples {
			out[i] = t.Clone()
		}
		return out
	}
	out := make([]tuple.Tuple, 0, len(s.order))
	for _, key := range s.order {
		g := s.groups[key]
		t := make(tuple.Tuple, len(s.Spec.Fields))
		for i, pos := range s.Spec.GroupBy {
			t[pos] = g.keyVals[i]
		}
		for i, af := range s.Spec.Aggs {
			t[af.Pos] = g.states[i].Result()
		}
		out = append(out, t)
	}
	return out
}

// Len returns the number of stored tuples (groups for AGG sets).
func (s *Set) Len() int {
	if s.Spec.Kind == Agg {
		return len(s.groups)
	}
	return len(s.tuples)
}

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	c := NewSet(s.Spec)
	for _, t := range s.tuples {
		c.tuples = append(c.tuples, t.Clone())
	}
	if s.Spec.Kind == Agg {
		for _, key := range s.order {
			g := s.groups[key]
			ng := &group{keyVals: g.keyVals.Clone()}
			for _, st := range g.states {
				ng.states = append(ng.states, st.Clone())
			}
			c.groups[key] = ng
			c.order = append(c.order, key)
		}
	}
	return c
}
