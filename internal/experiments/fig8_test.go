package experiments

import (
	"strings"
	"testing"
	"time"
)

func smallFig8(fixed bool) Fig8Config {
	return Fig8Config{
		Hosts:          4,
		ClientsPerHost: 2,
		Files:          100,
		Duration:       5 * time.Second,
		Think:          2 * time.Millisecond,
		Fixed:          fixed,
	}
}

// colShare returns each column's share of the total selection mass.
func colShare(m map[string]map[string]float64, hosts []string) map[string]float64 {
	total := 0.0
	col := map[string]float64{}
	for _, r := range hosts {
		for _, c := range hosts {
			v := cell(m, r, c)
			col[c] += v
			total += v
		}
	}
	for c := range col {
		col[c] /= total
	}
	return col
}

func TestFig8BuggySelectionIsSkewed(t *testing.T) {
	res, err := RunFig8(smallFig8(false))
	if err != nil {
		t.Fatal(err)
	}
	shares := colShare(res.SelectFreq, res.Hosts)
	max, min := 0.0, 1.0
	for _, s := range shares {
		if s > max {
			max = s
		}
		if s < min {
			min = s
		}
	}
	// With the bug, the top-priority DataNode absorbs far more than its
	// fair share (0.25 for 4 hosts).
	if max < 0.35 {
		t.Errorf("buggy selection not skewed: shares = %v", shares)
	}

	// 8e: replica locations remain near-uniform regardless of the bug.
	repl := colShare(res.ReplicaFreq, res.Hosts)
	for h, s := range repl {
		if s < 0.15 || s > 0.35 {
			t.Errorf("replica placement skewed at %s: %v", h, repl)
		}
	}

	// 8d: clients read files uniformly (low CV).
	for h, s := range res.ReadCV {
		if s.Files < 10 {
			t.Errorf("client %s read only %d files", h, s.Files)
		}
	}

	// 8g: preference must be strongly asymmetric somewhere (host always
	// preferred over another).
	sawExtreme := false
	for _, a := range res.Hosts {
		for _, b := range res.Hosts {
			if v := cell(res.PrefFreq, a, b); v > 0.97 {
				sawExtreme = true
			}
		}
	}
	if !sawExtreme {
		t.Error("8g: no near-certain preference despite static ordering")
	}

	if res.Q7BaggageBytes <= 0 || res.Q7BaggageBytes > 400 {
		t.Errorf("Q7 baggage = %d bytes, want small positive", res.Q7BaggageBytes)
	}

	out := res.Render()
	for _, want := range []string{"8a", "8b", "8c", "8d", "8e", "8f", "8g", "Q7 baggage"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFig8FixedSelectionIsBalanced(t *testing.T) {
	res, err := RunFig8(smallFig8(true))
	if err != nil {
		t.Fatal(err)
	}
	shares := colShare(res.SelectFreq, res.Hosts)
	for h, s := range shares {
		if s < 0.10 || s > 0.45 {
			t.Errorf("fixed selection skewed at %s: %v", h, shares)
		}
	}
}
