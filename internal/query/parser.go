package query

import (
	"strconv"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// Parse parses a Pivot Tracing query in the surface syntax, e.g.:
//
//	From incr In DataNodeMetrics.incrBytesRead
//	Join cl In First(ClientProtocols) On cl -> incr
//	GroupBy cl.procName
//	Select cl.procName, SUM(incr.delta)
//
// Keywords (From, In, Join, On, Where, GroupBy, Select) are case-sensitive.
// Clauses after From may appear in any order; Where may repeat (the
// predicates are conjoined).
func Parse(input string) (*Query, error) {
	toks, err := lexAll(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	input string
	toks  []token
	pos   int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// acceptIdent consumes the next token if it is the given identifier.
func (p *parser) acceptIdent(text string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectIdentKeyword(text string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != text {
		return errorAt(p.input, t.pos, "expected %q, found %s", text, t)
	}
	return nil
}

func (p *parser) expectKind(kind tokKind, what string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, errorAt(p.input, t.pos, "expected %s, found %s", what, t)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectIdentKeyword("From"); err != nil {
		return nil, err
	}
	alias, err := p.expectKind(tokIdent, "alias")
	if err != nil {
		return nil, err
	}
	q.From.Alias = alias.text
	if err := p.expectIdentKeyword("In"); err != nil {
		return nil, err
	}
	for {
		src, err := p.parseSource()
		if err != nil {
			return nil, err
		}
		q.From.Sources = append(q.From.Sources, src)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}

	seenGroupBy, seenSelect, seenSample := false, false, false
	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, errorAt(p.input, t.pos, "expected clause keyword, found %s", t)
		}
		switch t.text {
		case "Join":
			p.next()
			j, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			q.Joins = append(q.Joins, j)
		case "Where":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, e)
		case "GroupBy":
			if seenGroupBy {
				return nil, errorAt(p.input, t.pos, "duplicate GroupBy clause")
			}
			seenGroupBy = true
			p.next()
			for {
				f, err := p.parseFieldRef()
				if err != nil {
					return nil, err
				}
				q.GroupBy = append(q.GroupBy, f)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		case "Select":
			if seenSelect {
				return nil, errorAt(p.input, t.pos, "duplicate Select clause")
			}
			seenSelect = true
			p.next()
			for {
				si, err := p.parseSelectItem()
				if err != nil {
					return nil, err
				}
				q.Select = append(q.Select, si)
				if p.peek().kind != tokComma {
					break
				}
				p.next()
			}
		case "Sample":
			if seenSample {
				return nil, errorAt(p.input, t.pos, "duplicate Sample clause")
			}
			seenSample = true
			p.next()
			nTok, err := p.expectKind(tokNumber, "sampling rate")
			if err != nil {
				return nil, err
			}
			rate, err := strconv.ParseFloat(nTok.text, 64)
			if err != nil {
				return nil, errorAt(p.input, nTok.pos, "bad sampling rate %q", nTok.text)
			}
			if !(rate > 0 && rate <= 1) {
				return nil, errorAt(p.input, nTok.pos, "sampling rate %v out of range (0, 1]", rate)
			}
			q.Sample = rate
		default:
			return nil, errorAt(p.input, t.pos, "unexpected %s; expected Join, Where, GroupBy, Select, or Sample", t)
		}
	}
	if len(q.Select) == 0 {
		return nil, errorAt(p.input, p.peek().pos, "query has no Select clause")
	}
	return q, nil
}

var tempFilters = map[string]TempFilter{
	"First":       FilterFirst,
	"FirstN":      FilterFirstN,
	"MostRecent":  FilterMostRecent,
	"MostRecentN": FilterMostRecentN,
}

// parseSource parses a tracepoint/query reference, optionally wrapped in a
// temporal filter: Name, Pkg.Name, First(Name), MostRecentN(3, Name).
func (p *parser) parseSource() (Source, error) {
	t, err := p.expectKind(tokIdent, "source name")
	if err != nil {
		return Source{}, err
	}
	if f, ok := tempFilters[t.text]; ok && p.peek().kind == tokLParen {
		p.next() // (
		src := Source{Filter: f, N: 1}
		if f == FilterFirstN || f == FilterMostRecentN {
			nTok, err := p.expectKind(tokNumber, "tuple count")
			if err != nil {
				return Source{}, err
			}
			n, err := strconv.Atoi(nTok.text)
			if err != nil || n < 1 {
				return Source{}, errorAt(p.input, nTok.pos, "bad tuple count %q", nTok.text)
			}
			src.N = n
			if _, err := p.expectKind(tokComma, "','"); err != nil {
				return Source{}, err
			}
		}
		name, err := p.parseDottedName()
		if err != nil {
			return Source{}, err
		}
		src.Tracepoint = name
		if _, err := p.expectKind(tokRParen, "')'"); err != nil {
			return Source{}, err
		}
		return src, nil
	}
	name := t.text
	for p.peek().kind == tokDot {
		p.next()
		part, err := p.expectKind(tokIdent, "name component")
		if err != nil {
			return Source{}, err
		}
		name += "." + part.text
	}
	return Source{Tracepoint: name}, nil
}

func (p *parser) parseDottedName() (string, error) {
	t, err := p.expectKind(tokIdent, "name")
	if err != nil {
		return "", err
	}
	name := t.text
	for p.peek().kind == tokDot {
		p.next()
		part, err := p.expectKind(tokIdent, "name component")
		if err != nil {
			return "", err
		}
		name += "." + part.text
	}
	return name, nil
}

func (p *parser) parseJoin() (Join, error) {
	var j Join
	alias, err := p.expectKind(tokIdent, "join alias")
	if err != nil {
		return j, err
	}
	j.Alias = alias.text
	if err := p.expectIdentKeyword("In"); err != nil {
		return j, err
	}
	j.Source, err = p.parseSource()
	if err != nil {
		return j, err
	}
	if err := p.expectIdentKeyword("On"); err != nil {
		return j, err
	}
	left, err := p.expectKind(tokIdent, "alias")
	if err != nil {
		return j, err
	}
	j.Left = left.text
	if _, err := p.expectKind(tokArrow, "'->'"); err != nil {
		return j, err
	}
	right, err := p.expectKind(tokIdent, "alias")
	if err != nil {
		return j, err
	}
	j.Right = right.text
	return j, nil
}

// parseFieldRef parses alias or alias.field.
func (p *parser) parseFieldRef() (FieldRef, error) {
	t, err := p.expectKind(tokIdent, "field reference")
	if err != nil {
		return FieldRef{}, err
	}
	f := FieldRef{Alias: t.text}
	if p.peek().kind == tokDot {
		p.next()
		field, err := p.expectKind(tokIdent, "field name")
		if err != nil {
			return FieldRef{}, err
		}
		f.Field = field.text
	}
	return f, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if t := p.peek(); t.kind == tokIdent {
		if fn, ok := agg.FromName(t.text); ok {
			p.next()
			si := SelectItem{Agg: fn, HasAgg: true}
			if p.peek().kind == tokLParen {
				p.next()
				e, err := p.parseExpr()
				if err != nil {
					return si, err
				}
				si.Expr = e
				if _, err := p.expectKind(tokRParen, "')'"); err != nil {
					return si, err
				}
			} else if fn != agg.Count {
				return si, errorAt(p.input, t.pos, "%s requires an argument", fn)
			}
			return si, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e}, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or:   and ( "||" and )*
//	and:  cmp ( "&&" cmp )*
//	cmp:  add ( ("="|"!="|"<"|"<="|">"|">=") add )?
//	add:  mul ( ("+"|"-") mul )*
//	mul:  unary ( ("*"|"/") unary )*
//	unary: ("!"|"-") unary | primary
//	primary: literal | fieldref | "(" expr ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "||" {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && p.peek().text == "&&" {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[string]BinOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		op := OpAdd
		if t.text == "-" {
			op = OpSub
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := OpMul
		if t.text == "/" {
			op = OpDiv
		}
		l = Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if t := p.peek(); t.kind == tokOp && (t.text == "!" || t.text == "-") {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: t.text[0], X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return Literal{Value: tuple.Int(i)}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, errorAt(p.input, t.pos, "bad number %q", t.text)
		}
		return Literal{Value: tuple.Float(f)}, nil
	case tokString:
		return Literal{Value: tuple.String(t.text)}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "true":
			return Literal{Value: tuple.Bool(true)}, nil
		case "false":
			return Literal{Value: tuple.Bool(false)}, nil
		}
		f := FieldRef{Alias: t.text}
		if p.peek().kind == tokDot {
			p.next()
			field, err := p.expectKind(tokIdent, "field name")
			if err != nil {
				return nil, err
			}
			f.Field = field.text
		}
		return f, nil
	default:
		return nil, errorAt(p.input, t.pos, "expected expression, found %s", t)
	}
}
