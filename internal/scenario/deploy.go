package scenario

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/hbase"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/yarn"
)

// Topology shape: 16 hosts per rack behind a 4 Gbit ToR uplink, 8 racks
// per pod behind an 8 Gbit pod uplink. Master daemons (NameNode,
// ResourceManager, HBase master, the admin client) live on a flat
// out-of-topology "master" host so control traffic never competes with
// rack uplinks.
const (
	hostsPerRack = 16
	racksPerPod  = 8
	rackUplink   = 4 * netsim.Gbit
	podUplink    = 8 * netsim.Gbit
)

// Deployment is the substrate every scenario starts from: a rack/pod
// topology of worker hosts, the HDFS NameNode, and an admin client on
// the master host.
type Deployment struct {
	C    *cluster.Cluster
	Topo *netsim.Topology
	NN   *hdfs.NameNode

	// Admin is an unmonitored process on the master host used for
	// namespace setup (pre-populating datasets); unmonitored so setup
	// does not perturb query results.
	Admin   *cluster.Process
	AdminFS *hdfs.Client
}

// deploy builds the cluster and topology for a run. interval becomes the
// cluster's agent reporting interval (and r.Interval).
func deploy(env *simtime.Env, r *Run, interval time.Duration) *Deployment {
	racks := (r.Hosts + hostsPerRack - 1) / hostsPerRack
	if racks < 1 {
		racks = 1
	}
	cfg := cluster.DefaultConfig()
	cfg.ReportInterval = interval
	// Scenario reads are 64 kB+; everything below rides the closed-form
	// small-flow path so million-request runs stay fast.
	cfg.SmallFlowCutoff = 32e3
	c := cluster.New(env, cfg)
	topo := c.AdoptTopology(netsim.TopologyConfig{
		Racks:        racks,
		HostsPerRack: hostsPerRack,
		RacksPerPod:  racksPerPod,
		RackUplink:   rackUplink,
		PodUplink:    podUplink,
	})
	r.C, r.Topo, r.Interval = c, topo, interval

	d := &Deployment{C: c, Topo: topo}
	nnCfg := hdfs.DefaultConfig()
	// Replica placement keyed by file path: independent of the arrival
	// order of concurrent Creates, a byte-identical-report requirement.
	nnCfg.DeterministicPlacement = true
	nnCfg.Seed = r.Seed
	d.NN = hdfs.NewNameNode(c, "master", nnCfg)
	d.Admin = c.StartUnmonitored("master", "Admin")
	d.AdminFS = hdfs.NewClient(d.Admin, d.NN, hdfs.ClientConfig{RandomReplicaSelection: true, Seed: r.Seed})
	return d
}

// EnableCombinerTree stands up a 2-tier combiner tree sized to the
// topology — one mid combiner per rack, partitions at rack granularity —
// so agent report traffic aggregates rack-by-rack before reaching the
// frontends. tenantRouting turns on per-tenant delivery at the root.
func (d *Deployment) EnableCombinerTree(tenantRouting bool) *cluster.CombinerTree {
	racks := (d.Topo.Size() + hostsPerRack - 1) / hostsPerRack
	if racks < 1 {
		racks = 1
	}
	return d.C.EnableCombinerTree(cluster.TreeSpec{
		MidCombiners:  racks,
		TenantRouting: tenantRouting,
	})
}

// WorkerNames returns the names of the first n topology hosts (all of
// them if n <= 0 or exceeds the topology).
func (d *Deployment) WorkerNames(n int) []string {
	names := d.Topo.Names()
	if n > 0 && n < len(names) {
		names = names[:n]
	}
	return names
}

// StartDataNodes spawns DataNodes on the given hosts.
func (d *Deployment) StartDataNodes(hosts []string) []*hdfs.DataNode {
	return hdfs.NewDataNodes(d.C, hosts, d.NN)
}

// StartHBase spawns the HBase master (on the master host) plus
// RegionServers on the given hosts, and registers their store files.
func (d *Deployment) StartHBase(hosts []string, storeFileSize float64, seed int64) (*hbase.HBase, []*hbase.RegionServer) {
	hb := hbase.New(d.C, "master", hbase.Config{})
	// First-replica selection: RegionServer handlers share one HDFS
	// client, and a shared rng would make replica choice depend on
	// handler interleaving — the static choice keeps runs byte-identical.
	servers := hb.AddRegionServers(d.C, hosts, d.NN,
		hdfs.ClientConfig{RandomReplicaSelection: false, Seed: seed})
	if err := hb.InitStoreFiles(d.Admin.NewRequest(), d.AdminFS, storeFileSize); err != nil {
		panic("scenario: hbase store files: " + err.Error())
	}
	return hb, servers
}

// StartYARN spawns the ResourceManager (master host) and NodeManagers on
// the given hosts.
func (d *Deployment) StartYARN(hosts []string, containersPerNode int) (*yarn.ResourceManager, []*yarn.NodeManager) {
	rm := yarn.NewResourceManager(d.C, "master")
	nms := yarn.NewNodeManagers(d.C, hosts, rm, containersPerNode)
	return rm, nms
}

// StartMapReduce wires a MapReduce framework over the given RM.
func (d *Deployment) StartMapReduce(rm *yarn.ResourceManager, seed int64) *mapreduce.Framework {
	// First-replica selection, as in StartHBase: task processes share
	// per-host HDFS clients across concurrent tasks.
	return mapreduce.New(d.C, rm, d.NN,
		hdfs.ClientConfig{RandomReplicaSelection: false, Seed: seed})
}

// Dataset registers count HDFS files of the given size (metadata only —
// instant) named "/data/f%06d" and returns their paths.
func (d *Deployment) Dataset(count int, size float64) []string {
	ctx := d.Admin.NewRequest()
	paths := make([]string, count)
	for i := range paths {
		paths[i] = datasetPath(i)
		if err := d.AdminFS.CreateMetadataOnly(ctx, paths[i], size); err != nil {
			panic("scenario: dataset: " + err.Error())
		}
	}
	return paths
}

// StartClients spawns unmonitored client processes spread round-robin
// over the given hosts (unmonitored: scenario assertions count daemon
// work, and a thousand client agents would swamp the report stream).
func (d *Deployment) StartClients(n int, hosts []string) []*cluster.Process {
	procs := make([]*cluster.Process, n)
	for i := range procs {
		// The wave number keeps process names unique when more clients
		// than hosts are requested (the thundering-herd sizing).
		procs[i] = d.C.StartUnmonitored(hosts[i%len(hosts)], fmt.Sprintf("Client%02d", i/len(hosts)))
	}
	return procs
}

func datasetPath(i int) string {
	const digits = "0123456789"
	buf := []byte("/data/f000000")
	for p := len(buf) - 1; i > 0; p-- {
		buf[p] = digits[i%10]
		i /= 10
	}
	return string(buf)
}
