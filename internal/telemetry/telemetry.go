// Package telemetry is the tracer's self-metrics core: the runtime health
// of Pivot Tracing itself (agent report cadence, bus queue depth, baggage
// growth, weave latency) measured with the same discipline the tracer
// applies to the monitored system — near-zero cost when nobody is looking.
//
// The package is stdlib-only and dependency-free so every layer of the
// tracer (tracepoint, baggage, bus, agent, core) can import it. Hot paths
// are allocation-free: counters and gauges are single atomics, histograms
// are lock-striped arrays of atomic buckets with fixed log-scale (power of
// two) boundaries. A Registry names the metrics of one runtime and exports
// point-in-time Snapshots that subtract (Delta) and render as aligned
// text tables — the data behind core.PivotTracing.Status and cmd/ptstat.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (queue depth, connection count).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the number of histogram buckets. Bucket 0 holds values
// <= 0; bucket i (1..64) holds values whose bit length is i, i.e. the
// half-open log-scale range [2^(i-1), 2^i).
const NumBuckets = 65

const (
	numStripes = 8
	// fibMix spreads observations across stripes (Fibonacci hashing) so
	// concurrent writers of different values rarely share a cache line.
	fibMix = 0x9E3779B97F4A7C15
)

// BucketOf returns the bucket index a value falls into.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpper returns the largest value bucket i can hold.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// histStripe is one shard of a histogram. Each stripe spans several cache
// lines, so distinct stripes do not false-share.
type histStripe struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Histogram is a lock-free, lock-striped histogram with fixed log-scale
// buckets. Observe is three atomic adds and never allocates.
type Histogram struct {
	stripes [numStripes]histStripe
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	s := &h.stripes[(uint64(v)*fibMix)>>(64-3)]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[BucketOf(v)].Add(1)
}

// HistValue is a point-in-time histogram snapshot.
type HistValue struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// snapshot folds all stripes.
func (h *Histogram) snapshot() HistValue {
	var out HistValue
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += s.count.Load()
		out.Sum += s.sum.Load()
		for b := range s.buckets {
			out.Buckets[b] += s.buckets[b].Load()
		}
	}
	return out
}

// Mean returns the mean observed value (0 if empty).
func (v HistValue) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.Sum) / float64(v.Count)
}

// Quantile returns the upper bound of the bucket containing the q-th
// quantile observation (0 <= q <= 1). The log-scale buckets make this an
// upper estimate within 2x of the true value.
func (v HistValue) Quantile(q float64) int64 {
	if v.Count == 0 {
		return 0
	}
	rank := int64(q * float64(v.Count-1))
	var seen int64
	for i, n := range v.Buckets {
		seen += n
		if seen > rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket.
func (v HistValue) Max() int64 {
	for i := NumBuckets - 1; i >= 0; i-- {
		if v.Buckets[i] > 0 {
			return BucketUpper(i)
		}
	}
	return 0
}

// Sub returns the histogram delta v - prev (observations since prev).
func (v HistValue) Sub(prev HistValue) HistValue {
	out := HistValue{Count: v.Count - prev.Count, Sum: v.Sum - prev.Sum}
	for i := range v.Buckets {
		out.Buckets[i] = v.Buckets[i] - prev.Buckets[i]
	}
	return out
}

// Registry names the metrics of one tracer runtime. Metric constructors
// are get-or-create, so independent instrumentation sites naming the same
// metric share it; call sites cache the returned pointer and pay no lookup
// on the hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a named point-in-time export of a registry.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]HistValue
}

// Snapshot exports every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]struct {
		name string
		c    *Counter
	}, 0, len(r.counters))
	for name, c := range r.counters {
		counters = append(counters, struct {
			name string
			c    *Counter
		}{name, c})
	}
	gauges := make([]struct {
		name string
		g    *Gauge
	}, 0, len(r.gauges))
	for name, g := range r.gauges {
		gauges = append(gauges, struct {
			name string
			g    *Gauge
		}{name, g})
	}
	hists := make([]struct {
		name string
		h    *Histogram
	}, 0, len(r.hists))
	for name, h := range r.hists {
		hists = append(hists, struct {
			name string
			h    *Histogram
		}{name, h})
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters: make(map[string]int64, len(counters)),
		Gauges:   make(map[string]int64, len(gauges)),
		Hists:    make(map[string]HistValue, len(hists)),
	}
	for _, e := range counters {
		s.Counters[e.name] = e.c.Load()
	}
	for _, e := range gauges {
		s.Gauges[e.name] = e.g.Load()
	}
	for _, e := range hists {
		s.Hists[e.name] = e.h.snapshot()
	}
	return s
}

// Delta returns the change since prev: counters and histograms subtract,
// gauges keep their current (instantaneous) value. Metrics absent from
// prev are treated as starting at zero.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistValue, len(s.Hists)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range s.Hists {
		out.Hists[name] = v.Sub(prev.Hists[name])
	}
	return out
}

// Empty reports whether the snapshot holds no metrics at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Hists) == 0
}

// Render formats the snapshot as aligned text tables: one for scalar
// metrics (counters and gauges, merged and sorted by name), one for
// histograms (count, mean, p50, p99, max).
func (s Snapshot) Render() string {
	var b strings.Builder
	type row struct{ name, val string }
	rows := make([]row, 0, len(s.Counters)+len(s.Gauges))
	for name, v := range s.Counters {
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	for name, v := range s.Gauges {
		rows = append(rows, row{name, fmt.Sprintf("%d", v)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	if len(rows) > 0 {
		w := len("metric")
		for _, r := range rows {
			if len(r.name) > w {
				w = len(r.name)
			}
		}
		fmt.Fprintf(&b, "%-*s  %12s\n", w, "metric", "value")
		for _, r := range rows {
			fmt.Fprintf(&b, "%-*s  %12s\n", w, r.name, r.val)
		}
	}
	names := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		w := len("histogram")
		for _, name := range names {
			if len(name) > w {
				w = len(name)
			}
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%-*s  %9s  %12s  %12s  %12s  %12s\n",
			w, "histogram", "count", "mean", "p50", "p99", "max")
		for _, name := range names {
			h := s.Hists[name]
			fmt.Fprintf(&b, "%-*s  %9d  %12.1f  %12d  %12d  %12d\n",
				w, name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
		}
	}
	return b.String()
}
