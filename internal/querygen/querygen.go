// Package querygen generates random-but-valid differential test cases
// for the Pivot Tracing pipeline: a causal trace script (fires, splits,
// joins, process transfers over fan-out/fan-in topologies) together with
// a query over the trace's tracepoints (projections, happened-before
// joins, temporal and predicate filters, every aggregation function).
// Everything derives deterministically from one int64 seed.
//
// A case is a script, not a materialized trace: Execute interprets the
// op list against an Executor, so the exact same interpretation drives
// both the real cluster substrate (which stamps each event with the
// time and process identity it actually observed) and the abstract
// happened-before materializer that feeds the oracle. The two views
// cannot drift, because there is only one interpreter.
package querygen

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/agg"
	"repro/internal/oracle"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Field is one declared export of a generated tracepoint.
type Field struct {
	Name string
	Kind tuple.Kind
}

// signatures is the schema pool. Tracepoints sharing a signature export
// identical schemas, which makes them union-compatible in a From clause.
var signatures = [][]Field{
	{{"size", tuple.KindInt}, {"cost", tuple.KindFloat}, {"tag", tuple.KindString}},
	{{"n", tuple.KindInt}, {"ok", tuple.KindBool}},
	{{"size", tuple.KindInt}, {"lat", tuple.KindFloat}},
}

// TP is one generated tracepoint definition.
type TP struct {
	Name   string
	Sig    int
	Fields []Field
}

// Event is one tracepoint firing. TP, Proc and Args are fixed at
// generation time; Time and the process identity fields are stamped by
// the executor that realizes the trace, so the oracle sees exactly the
// values the pipeline observed.
type Event struct {
	ID   int
	TP   int
	Proc int
	Args []tuple.Value

	Time     int64
	Host     string
	ProcName string
	ProcID   int64
	Stamped  bool
}

// OpKind enumerates trace-script operations.
type OpKind uint8

// Trace-script operations.
const (
	OpFire OpKind = iota
	OpSplit
	OpJoin
	OpTransfer
)

// Op is one step of the causal trace script. Branch and Other index the
// interpreter's live-branch list at the moment the op executes.
type Op struct {
	Kind   OpKind
	Delay  time.Duration // virtual-time delay before the op
	Branch int
	Other  int // OpJoin: the branch merged away (index, != Branch)
	Event  int // OpFire: index into Events
	Proc   int // OpTransfer: destination process
}

// Case is one generated differential test case.
type Case struct {
	Seed      int64
	TPs       []TP
	NumProcs  int
	Hosts     []string // host name per process
	ProcNames []string // process name per process
	Linear    bool     // no splits/joins: firing order is causal order
	Events    []Event
	Ops       []Op
	QueryText string
	// SampleRate is the request-level sampling rate the case's query
	// declares (GenerateSampled); zero for exact cases.
	SampleRate float64
}

// Executor realizes the trace script on some substrate. Branch ids are
// dense ints minted by Execute; branch 0 is the root request.
type Executor interface {
	// Fire fires event ev on branch, in process ev.Proc.
	Fire(branch int, ev *Event)
	// Split forks branch, minting child with the same causal past.
	Split(branch, child int)
	// Join merges branch src into dst; src is dead afterwards.
	Join(dst, src int)
	// Transfer moves branch across a process boundary into proc
	// (serialize, ship, deserialize).
	Transfer(branch, proc int)
	// Delay advances time; a no-op for abstract executors.
	Delay(d time.Duration)
}

// Execute interprets the case's op script against x. This is the single
// source of truth for what the script means: the cluster driver and the
// happened-before materializer both go through it.
func (c *Case) Execute(x Executor) {
	live := []int{0}
	next := 1
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Delay > 0 {
			x.Delay(op.Delay)
		}
		switch op.Kind {
		case OpFire:
			x.Fire(live[op.Branch], &c.Events[op.Event])
		case OpSplit:
			child := next
			next++
			x.Split(live[op.Branch], child)
			live = append(live, child)
		case OpJoin:
			x.Join(live[op.Branch], live[op.Other])
			live = append(live[:op.Other], live[op.Other+1:]...)
		case OpTransfer:
			x.Transfer(live[op.Branch], op.Proc)
		}
	}
}

// hbExec materializes happened-before sets by abstract interpretation:
// each branch carries the set of events in its causal past.
type hbExec struct {
	anc map[int]map[int]bool
	out []map[int]bool
}

func cloneSet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (x *hbExec) Fire(branch int, ev *Event) {
	x.out[ev.ID] = cloneSet(x.anc[branch])
	x.anc[branch][ev.ID] = true
}
func (x *hbExec) Split(branch, child int) { x.anc[child] = cloneSet(x.anc[branch]) }
func (x *hbExec) Join(dst, src int) {
	for k := range x.anc[src] {
		x.anc[dst][k] = true
	}
	delete(x.anc, src)
}
func (x *hbExec) Transfer(branch, proc int) {}
func (x *hbExec) Delay(d time.Duration)     {}

// HappenedBefore returns, for each event, the set of event IDs in its
// strict causal past.
func (c *Case) HappenedBefore() []map[int]bool {
	x := &hbExec{
		anc: map[int]map[int]bool{0: {}},
		out: make([]map[int]bool, len(c.Events)),
	}
	c.Execute(x)
	return x.out
}

// Define declares the case's tracepoints in reg.
func (c *Case) Define(reg *tracepoint.Registry) {
	for _, tp := range c.TPs {
		names := make([]string, len(tp.Fields))
		for i, f := range tp.Fields {
			names[i] = f.Name
		}
		reg.Define(tp.Name, names...)
	}
}

// OracleTrace materializes the case as an oracle trace. Every event must
// have been stamped by an executor first.
func (c *Case) OracleTrace() (*oracle.Trace, error) {
	hb := c.HappenedBefore()
	tr := &oracle.Trace{Events: make([]oracle.Event, len(c.Events))}
	for i := range c.Events {
		e := &c.Events[i]
		if !e.Stamped {
			return nil, fmt.Errorf("querygen: event %d was never fired by an executor", i)
		}
		tp := &c.TPs[e.TP]
		vals := map[string]tuple.Value{
			"host":       tuple.String(e.Host),
			"time":       tuple.Int(e.Time),
			"procName":   tuple.String(e.ProcName),
			"procId":     tuple.Int(e.ProcID),
			"tracepoint": tuple.String(tp.Name),
		}
		for fi, f := range tp.Fields {
			vals[f.Name] = e.Args[fi]
		}
		tr.Events[i] = oracle.Event{Tracepoint: tp.Name, Values: vals, Before: hb[i]}
	}
	return tr, nil
}

// Generate builds the case for a seed. The same seed always yields the
// same case, byte for byte.
func Generate(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed}

	nTP := 3 + rng.Intn(3)
	for i := 0; i < nTP; i++ {
		sig := rng.Intn(len(signatures))
		c.TPs = append(c.TPs, TP{Name: fmt.Sprintf("Gen.Tp%d", i), Sig: sig, Fields: signatures[sig]})
	}

	c.NumProcs = 1 + rng.Intn(3)
	nHosts := 1 + rng.Intn(c.NumProcs)
	for p := 0; p < c.NumProcs; p++ {
		c.Hosts = append(c.Hosts, fmt.Sprintf("h%d", p%nHosts))
		c.ProcNames = append(c.ProcNames, fmt.Sprintf("p%d", p))
	}
	c.Linear = rng.Intn(2) == 0

	q, qtps := genQuery(rng, c)
	c.QueryText = q.String()
	genOps(rng, c, qtps)
	return c
}

// GenerateBudgeted builds a case tailored to budgeted differential
// testing: many fires of one source tracepoint over a small key pool,
// scattered across branches and processes, every branch folded back into
// one, and exactly one final sink fire whose causal past therefore holds
// every source event — and every eviction tombstone. The query is a
// happened-before join grouped by source key, so under a baggage budget
// the pipeline must either report a group's exact aggregate or count it
// dropped; the oracle knows the full answer either way.
func GenerateBudgeted(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed}
	c.TPs = []TP{
		{Name: "Gen.Src", Fields: []Field{{"key", tuple.KindString}, {"val", tuple.KindInt}}},
		{Name: "Gen.Sink", Fields: []Field{{"n", tuple.KindInt}}},
	}
	const srcTP, sinkTP = 0, 1

	c.NumProcs = 1 + rng.Intn(3)
	nHosts := 1 + rng.Intn(c.NumProcs)
	for p := 0; p < c.NumProcs; p++ {
		c.Hosts = append(c.Hosts, fmt.Sprintf("h%d", p%nHosts))
		c.ProcNames = append(c.ProcNames, fmt.Sprintf("p%d", p))
	}
	c.QueryText = "From b In Gen.Sink Join a In Gen.Src On a -> b GroupBy a.key Select a.key, SUM(a.val)"

	nKeys := 4 + rng.Intn(9)
	nFires := nKeys + rng.Intn(2*nKeys)
	type br struct{ proc int }
	branches := []br{{0}}
	delay := func() time.Duration {
		return time.Duration(rng.Intn(5)) * 700 * time.Microsecond
	}
	fire := func(b, tp int, args ...tuple.Value) {
		ev := Event{ID: len(c.Events), TP: tp, Proc: branches[b].proc, Args: args}
		c.Events = append(c.Events, ev)
		c.Ops = append(c.Ops, Op{Kind: OpFire, Delay: delay(), Branch: b, Event: ev.ID})
	}
	for fired := 0; fired < nFires; {
		k := rng.Intn(100)
		switch {
		case k < 15 && len(branches) < 4:
			b := rng.Intn(len(branches))
			c.Ops = append(c.Ops, Op{Kind: OpSplit, Delay: delay(), Branch: b})
			branches = append(branches, br{branches[b].proc})
		case k < 25 && len(branches) > 1:
			b := rng.Intn(len(branches))
			o := rng.Intn(len(branches))
			if o == b {
				o = (o + 1) % len(branches)
			}
			c.Ops = append(c.Ops, Op{Kind: OpJoin, Delay: delay(), Branch: b, Other: o})
			branches = append(branches[:o], branches[o+1:]...)
		case k < 45 && c.NumProcs > 1:
			b := rng.Intn(len(branches))
			p := rng.Intn(c.NumProcs)
			c.Ops = append(c.Ops, Op{Kind: OpTransfer, Delay: delay(), Branch: b, Proc: p})
			branches[b].proc = p
		default:
			b := rng.Intn(len(branches))
			fire(b, srcTP,
				tuple.String(fmt.Sprintf("k%02d", rng.Intn(nKeys))),
				tuple.Int(int64(1+rng.Intn(16))))
			fired++
		}
	}
	// Fold every branch back so the sink's causal past holds all source
	// events and all tombstones, then fire the sink exactly once.
	for len(branches) > 1 {
		c.Ops = append(c.Ops, Op{Kind: OpJoin, Delay: delay(), Branch: 0, Other: len(branches) - 1})
		branches = branches[:len(branches)-1]
	}
	if c.NumProcs > 1 && rng.Intn(2) == 0 {
		p := rng.Intn(c.NumProcs)
		c.Ops = append(c.Ops, Op{Kind: OpTransfer, Delay: delay(), Branch: 0, Proc: p})
		branches[0].proc = p
	}
	fire(0, sinkTP, tuple.Int(1))
	return c
}

// sampledRates is the pool GenerateSampled draws from: rates low enough
// to exercise real suppression and weights large enough to matter.
var sampledRates = []float64{0.05, 0.1, 0.2, 0.25, 0.5}

// GenerateSampled builds a case tailored to sampled differential testing:
// the same fold-everything-into-one-sink shape as GenerateBudgeted — so
// each replay of the script is exactly one request with one sink fire
// whose causal past holds every source event — but with a query that
// declares a Sample clause and selects COUNT and SUM. Each replay is a
// fresh request, so the minted keep/suppress decision varies per run; the
// differential harness replays the script many times and checks the
// weighted aggregates against the exact oracle within binomial confidence
// bounds, and reconciles reported raw tuples + suppressed requests
// against the oracle's totals.
func GenerateSampled(seed int64) *Case {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed}
	c.TPs = []TP{
		{Name: "Gen.Src", Fields: []Field{{"key", tuple.KindString}, {"val", tuple.KindInt}}},
		{Name: "Gen.Sink", Fields: []Field{{"n", tuple.KindInt}}},
	}
	const srcTP, sinkTP = 0, 1

	c.NumProcs = 1 + rng.Intn(3)
	nHosts := 1 + rng.Intn(c.NumProcs)
	for p := 0; p < c.NumProcs; p++ {
		c.Hosts = append(c.Hosts, fmt.Sprintf("h%d", p%nHosts))
		c.ProcNames = append(c.ProcNames, fmt.Sprintf("p%d", p))
	}
	c.SampleRate = sampledRates[rng.Intn(len(sampledRates))]
	c.QueryText = fmt.Sprintf(
		"From b In Gen.Sink Join a In Gen.Src On a -> b GroupBy a.key Select a.key, COUNT, SUM(a.val) Sample %v",
		c.SampleRate)

	nKeys := 3 + rng.Intn(4)
	nFires := nKeys + rng.Intn(2*nKeys)
	type br struct{ proc int }
	branches := []br{{0}}
	delay := func() time.Duration {
		return time.Duration(rng.Intn(5)) * 700 * time.Microsecond
	}
	fire := func(b, tp int, args ...tuple.Value) {
		ev := Event{ID: len(c.Events), TP: tp, Proc: branches[b].proc, Args: args}
		c.Events = append(c.Events, ev)
		c.Ops = append(c.Ops, Op{Kind: OpFire, Delay: delay(), Branch: b, Event: ev.ID})
	}
	for fired := 0; fired < nFires; {
		k := rng.Intn(100)
		switch {
		case k < 15 && len(branches) < 4:
			b := rng.Intn(len(branches))
			c.Ops = append(c.Ops, Op{Kind: OpSplit, Delay: delay(), Branch: b})
			branches = append(branches, br{branches[b].proc})
		case k < 25 && len(branches) > 1:
			b := rng.Intn(len(branches))
			o := rng.Intn(len(branches))
			if o == b {
				o = (o + 1) % len(branches)
			}
			c.Ops = append(c.Ops, Op{Kind: OpJoin, Delay: delay(), Branch: b, Other: o})
			branches = append(branches[:o], branches[o+1:]...)
		case k < 45 && c.NumProcs > 1:
			b := rng.Intn(len(branches))
			p := rng.Intn(c.NumProcs)
			c.Ops = append(c.Ops, Op{Kind: OpTransfer, Delay: delay(), Branch: b, Proc: p})
			branches[b].proc = p
		default:
			b := rng.Intn(len(branches))
			fire(b, srcTP,
				tuple.String(fmt.Sprintf("k%02d", rng.Intn(nKeys))),
				tuple.Int(int64(1+rng.Intn(16))))
			fired++
		}
	}
	for len(branches) > 1 {
		c.Ops = append(c.Ops, Op{Kind: OpJoin, Delay: delay(), Branch: 0, Other: len(branches) - 1})
		branches = branches[:len(branches)-1]
	}
	if c.NumProcs > 1 && rng.Intn(2) == 0 {
		p := rng.Intn(c.NumProcs)
		c.Ops = append(c.Ops, Op{Kind: OpTransfer, Delay: delay(), Branch: 0, Proc: p})
		branches[0].proc = p
	}
	fire(0, sinkTP, tuple.Int(1))
	return c
}

// fieldInfo is one referenceable field of an alias: the default exports
// plus the alias's declared exports, with its (static) value kind.
type fieldInfo struct {
	ref    query.FieldRef
	kind   tuple.Kind
	isTime bool // high-cardinality; allowed only as an aggregate argument
}

func aliasFields(alias string, tp *TP) []fieldInfo {
	ref := func(f string) query.FieldRef { return query.FieldRef{Alias: alias, Field: f} }
	out := []fieldInfo{
		{ref: ref("host"), kind: tuple.KindString},
		{ref: ref("time"), kind: tuple.KindInt, isTime: true},
		{ref: ref("procName"), kind: tuple.KindString},
		{ref: ref("procId"), kind: tuple.KindInt},
		{ref: ref("tracepoint"), kind: tuple.KindString},
	}
	for _, f := range tp.Fields {
		out = append(out, fieldInfo{ref: ref(f.Name), kind: f.Kind})
	}
	return out
}

// genQuery builds a random valid query over the case's tracepoints and
// returns it with the indexes of the tracepoints it references.
func genQuery(rng *rand.Rand, c *Case) (*query.Query, []int) {
	q := &query.Query{}
	aliasNames := []string{"a", "b", "c"}
	used := map[int]bool{}

	fromTP := rng.Intn(len(c.TPs))
	used[fromTP] = true
	qtps := []int{fromTP}
	q.From = query.From{Alias: "a", Sources: []query.Source{{Tracepoint: c.TPs[fromTP].Name}}}
	if rng.Intn(4) == 0 {
		for _, j := range rng.Perm(len(c.TPs)) {
			if !used[j] && c.TPs[j].Sig == c.TPs[fromTP].Sig {
				q.From.Sources = append(q.From.Sources, query.Source{Tracepoint: c.TPs[j].Name})
				used[j] = true
				qtps = append(qtps, j)
				break
			}
		}
	}

	type aliasInfo struct {
		name string
		tp   int
	}
	aliases := []aliasInfo{{"a", fromTP}}
	anyTemporal := false
	nJoins := rng.Intn(3)
	for j := 0; j < nJoins; j++ {
		cand := -1
		for _, k := range rng.Perm(len(c.TPs)) {
			if !used[k] {
				cand = k
				break
			}
		}
		if cand < 0 {
			break
		}
		used[cand] = true
		alias := aliasNames[len(aliases)]
		src := query.Source{Tracepoint: c.TPs[cand].Name}
		// Temporal filters are order-sensitive, so they are only
		// generated for linear traces, where firing order is causal
		// order and thus deterministic.
		if c.Linear && rng.Intn(3) == 0 {
			switch rng.Intn(4) {
			case 0:
				src.Filter = query.FilterFirst
			case 1:
				src.Filter = query.FilterMostRecent
			case 2:
				src.Filter = query.FilterFirstN
				src.N = 1 + rng.Intn(3)
			case 3:
				src.Filter = query.FilterMostRecentN
				src.N = 1 + rng.Intn(3)
			}
			anyTemporal = true
		}
		right := aliases[rng.Intn(len(aliases))].name
		q.Joins = append(q.Joins, query.Join{Alias: alias, Source: src, Left: alias, Right: right})
		aliases = append(aliases, aliasInfo{alias, cand})
		qtps = append(qtps, cand)
	}

	// Field pools. When any join carries a temporal filter, predicates
	// stay on the From alias: pushing a predicate below a retention
	// point changes which tuples are retained, and the oracle pins the
	// placement-independent semantics.
	var all, predPool []fieldInfo
	for i, ai := range aliases {
		fs := aliasFields(ai.name, &c.TPs[ai.tp])
		all = append(all, fs...)
		if !anyTemporal || i == 0 {
			for _, f := range fs {
				if !f.isTime {
					predPool = append(predPool, f)
				}
			}
		}
	}
	var numeric, groupable []fieldInfo
	for _, f := range all {
		if f.kind == tuple.KindInt || f.kind == tuple.KindFloat {
			numeric = append(numeric, f)
		}
		if !f.isTime {
			groupable = append(groupable, f)
		}
	}
	numericPred := func(pool []fieldInfo) []fieldInfo {
		var out []fieldInfo
		for _, f := range pool {
			if !f.isTime && (f.kind == tuple.KindInt || f.kind == tuple.KindFloat) {
				out = append(out, f)
			}
		}
		return out
	}

	nWhere := rng.Intn(3)
	for w := 0; w < nWhere && len(predPool) > 0; w++ {
		q.Where = append(q.Where, genPred(rng, c, predPool, numericPred(predPool)))
	}

	switch rng.Intn(3) {
	case 0: // grouped aggregation
		ng := 1 + rng.Intn(2)
		perm := rng.Perm(len(groupable))
		for _, gi := range perm[:min(ng, len(perm))] {
			q.GroupBy = append(q.GroupBy, groupable[gi].ref)
		}
		selected := q.GroupBy
		if len(selected) == 2 && rng.Intn(3) == 0 {
			selected = selected[:1] // grouping fields need not all be selected
		}
		for _, g := range selected {
			q.Select = append(q.Select, query.SelectItem{Expr: g})
		}
		na := 1 + rng.Intn(2)
		for i := 0; i < na; i++ {
			q.Select = append(q.Select, genAggItem(rng, numeric))
		}
	case 1: // ungrouped aggregation
		na := 1 + rng.Intn(2)
		for i := 0; i < na; i++ {
			q.Select = append(q.Select, genAggItem(rng, numeric))
		}
	default: // raw projection
		ns := 1 + rng.Intn(3)
		for i := 0; i < ns; i++ {
			if rng.Intn(10) < 7 || len(numeric) == 0 {
				q.Select = append(q.Select, query.SelectItem{Expr: all[rng.Intn(len(all))].ref})
			} else {
				q.Select = append(q.Select, query.SelectItem{Expr: genComputed(rng, numeric)})
			}
		}
	}
	return q, qtps
}

// genPred builds one Where predicate over the allowed field pool.
func genPred(rng *rand.Rand, c *Case, pool, numPool []fieldInfo) query.Expr {
	cmps := []query.BinOp{query.OpEq, query.OpNe, query.OpLt, query.OpLe, query.OpGt, query.OpGe}
	f := pool[rng.Intn(len(pool))]
	switch f.kind {
	case tuple.KindString:
		op := query.OpEq
		if rng.Intn(3) == 0 {
			op = query.OpNe
		}
		return query.Binary{Op: op, L: f.ref, R: query.Literal{Value: tuple.String(stringLit(rng, c, f))}}
	case tuple.KindBool:
		return query.Binary{Op: query.OpEq, L: f.ref, R: query.Literal{Value: tuple.Bool(rng.Intn(2) == 0)}}
	default:
		op := cmps[rng.Intn(len(cmps))]
		if rng.Intn(4) == 0 && len(numPool) > 1 {
			g := numPool[rng.Intn(len(numPool))]
			return query.Binary{Op: op, L: f.ref, R: g.ref}
		}
		var lit tuple.Value
		if f.kind == tuple.KindFloat {
			lit = tuple.Float(float64(rng.Intn(13)) * 0.25)
		} else {
			lit = tuple.Int(int64(rng.Intn(9)))
		}
		return query.Binary{Op: op, L: f.ref, R: query.Literal{Value: lit}}
	}
}

// stringLit picks a literal that has a real chance of matching f.
func stringLit(rng *rand.Rand, c *Case, f fieldInfo) string {
	switch f.ref.Field {
	case "host":
		return c.Hosts[rng.Intn(len(c.Hosts))]
	case "procName":
		return c.ProcNames[rng.Intn(len(c.ProcNames))]
	case "tracepoint":
		return c.TPs[rng.Intn(len(c.TPs))].Name
	default:
		return fmt.Sprintf("s%d", rng.Intn(4))
	}
}

// genAggItem builds one aggregated Select item. Arguments keep a static
// value kind (no division, whose int→float promotion is per-value), so
// MIN/MAX ties cannot resolve to different kinds on different merge
// orders.
func genAggItem(rng *rand.Rand, numeric []fieldInfo) query.SelectItem {
	fns := []agg.Func{agg.Count, agg.Sum, agg.Min, agg.Max, agg.Average}
	fn := fns[rng.Intn(len(fns))]
	if fn == agg.Count && rng.Intn(2) == 0 {
		return query.SelectItem{Agg: fn, HasAgg: true} // bare COUNT
	}
	if len(numeric) == 0 {
		return query.SelectItem{Agg: agg.Count, HasAgg: true}
	}
	var e query.Expr
	if rng.Intn(4) == 0 {
		e = genComputed(rng, numeric)
	} else {
		e = numeric[rng.Intn(len(numeric))].ref
	}
	return query.SelectItem{Agg: fn, HasAgg: true, Expr: e}
}

// genComputed builds a small arithmetic expression over numeric fields
// (+, -, * only: see genAggItem).
func genComputed(rng *rand.Rand, numeric []fieldInfo) query.Expr {
	ops := []query.BinOp{query.OpAdd, query.OpSub, query.OpMul}
	l := numeric[rng.Intn(len(numeric))].ref
	var r query.Expr
	if rng.Intn(2) == 0 {
		r = numeric[rng.Intn(len(numeric))].ref
	} else {
		r = query.Literal{Value: tuple.Int(int64(1 + rng.Intn(4)))}
	}
	return query.Binary{Op: ops[rng.Intn(len(ops))], L: l, R: r}
}

// genOps builds the trace script, mirroring exactly the live-branch
// bookkeeping Execute performs so that every Fire op's pre-assigned
// process matches what the executor will see.
func genOps(rng *rand.Rand, c *Case, qtps []int) {
	nOps := 12 + rng.Intn(28)
	type br struct{ proc int }
	branches := []br{{0}}
	delay := func() time.Duration {
		return time.Duration(rng.Intn(5)) * 700 * time.Microsecond
	}
	for len(c.Ops) < nOps {
		k := rng.Intn(100)
		switch {
		case !c.Linear && k < 12 && len(branches) < 4:
			b := rng.Intn(len(branches))
			c.Ops = append(c.Ops, Op{Kind: OpSplit, Delay: delay(), Branch: b})
			branches = append(branches, br{branches[b].proc})
		case !c.Linear && k < 22 && len(branches) > 1:
			b := rng.Intn(len(branches))
			o := rng.Intn(len(branches))
			if o == b {
				o = (o + 1) % len(branches)
			}
			c.Ops = append(c.Ops, Op{Kind: OpJoin, Delay: delay(), Branch: b, Other: o})
			branches = append(branches[:o], branches[o+1:]...)
		case k < 40 && c.NumProcs > 1:
			b := rng.Intn(len(branches))
			p := rng.Intn(c.NumProcs)
			c.Ops = append(c.Ops, Op{Kind: OpTransfer, Delay: delay(), Branch: b, Proc: p})
			branches[b].proc = p
		default:
			b := rng.Intn(len(branches))
			var tp int
			if rng.Intn(100) < 75 {
				tp = qtps[rng.Intn(len(qtps))]
			} else {
				tp = rng.Intn(len(c.TPs))
			}
			ev := Event{ID: len(c.Events), TP: tp, Proc: branches[b].proc, Args: genArgs(rng, &c.TPs[tp])}
			c.Events = append(c.Events, ev)
			c.Ops = append(c.Ops, Op{Kind: OpFire, Delay: delay(), Branch: b, Event: ev.ID})
		}
	}
}

// genArgs picks export values from small domains, so groupings collide
// and predicates have real selectivity. Floats are exact multiples of
// 0.25, so sums are exact in float64 regardless of summation order and
// byte-equality across evaluation paths is well-defined.
func genArgs(rng *rand.Rand, tp *TP) []tuple.Value {
	out := make([]tuple.Value, len(tp.Fields))
	for i, f := range tp.Fields {
		switch f.Kind {
		case tuple.KindInt:
			out[i] = tuple.Int(int64(rng.Intn(8)))
		case tuple.KindFloat:
			out[i] = tuple.Float(float64(rng.Intn(13)) * 0.25)
		case tuple.KindString:
			out[i] = tuple.String(fmt.Sprintf("s%d", rng.Intn(4)))
		case tuple.KindBool:
			out[i] = tuple.Bool(rng.Intn(2) == 0)
		default:
			out[i] = tuple.Null
		}
	}
	return out
}
