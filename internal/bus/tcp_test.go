package bus

import (
	"strings"
	"testing"
	"time"
)

// stringCodec carries string messages verbatim — enough to exercise the
// relay without dragging the real wire codec into this package.
type stringCodec struct{}

func (stringCodec) Marshal(msg any) ([]byte, error) {
	s, _ := msg.(string)
	return []byte(s), nil
}

func (stringCodec) Unmarshal(data []byte) (any, error) {
	return string(data), nil
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestServerRelaysBetweenLinks(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sender := New()
	sendLink, err := Connect(sender, srv.Addr(), stringCodec{}, []string{"tp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sendLink.Close()

	recver := New()
	var got []string
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	recver.Subscribe("tp", func(msg any) {
		<-mu
		got = append(got, msg.(string))
		mu <- struct{}{}
	})
	recvLink, err := Connect(recver, srv.Addr(), stringCodec{}, nil, []string{"tp"})
	if err != nil {
		t.Fatal(err)
	}
	defer recvLink.Close()

	sender.Publish("tp", "hello")
	sender.Publish("tp", "world")
	waitFor(t, "relayed messages", func() bool {
		<-mu
		n := len(got)
		mu <- struct{}{}
		return n == 2
	})
	if got[0] != "hello" || got[1] != "world" {
		t.Fatalf("got = %v", got)
	}
}

func TestServerTelemetryCountsFramesAndConns(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	b := New()
	link, err := Connect(b, srv.Addr(), stringCodec{}, []string{"tp"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	b.Publish("tp", "x")
	b.Publish("tp", "y")

	tel := srv.Telemetry()
	waitFor(t, "server frame counters", func() bool {
		return tel.Snapshot().Counters["bus.server.frames"] >= 2
	})
	snap := tel.Snapshot()
	if snap.Gauges["bus.server.conns"] != 1 {
		t.Errorf("conns = %d, want 1", snap.Gauges["bus.server.conns"])
	}
	if snap.Counters["bus.server.bytes"] <= 0 {
		t.Errorf("bytes = %d, want > 0", snap.Counters["bus.server.bytes"])
	}
}

func TestFetchServerStatus(t *testing.T) {
	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	text, err := FetchServerStatus(srv.Addr(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{srv.Addr(), "bus.server.conns"} {
		if !strings.Contains(text, want) {
			t.Errorf("status missing %q:\n%s", want, text)
		}
	}
}
