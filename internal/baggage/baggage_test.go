package baggage

import (
	"context"
	"testing"

	"repro/internal/agg"
	"repro/internal/tuple"
)

func allSpec(fields ...string) SetSpec {
	return SetSpec{Kind: All, Fields: fields}
}

func TestPackUnpackRoundtrip(t *testing.T) {
	b := New()
	spec := allSpec("procName")
	b.Pack("q1.0", spec, tuple.Tuple{tuple.String("HGET")})
	b.Pack("q1.0", spec, tuple.Tuple{tuple.String("HSCAN")})
	got := b.Unpack("q1.0")
	if len(got) != 2 || got[0][0].Str() != "HGET" || got[1][0].Str() != "HSCAN" {
		t.Fatalf("Unpack = %v", got)
	}
}

func TestUnpackMissingSlot(t *testing.T) {
	if got := New().Unpack("nope"); got != nil {
		t.Fatalf("Unpack missing slot = %v, want nil", got)
	}
}

func TestFirstSemantics(t *testing.T) {
	b := New()
	spec := SetSpec{Kind: First, Fields: tuple.Schema{"v"}}
	b.Pack("s", spec, tuple.Tuple{tuple.Int(1)}, tuple.Tuple{tuple.Int(2)})
	b.Pack("s", spec, tuple.Tuple{tuple.Int(3)})
	got := b.Unpack("s")
	if len(got) != 1 || got[0][0].Int() != 1 {
		t.Fatalf("FIRST = %v, want [(1)]", got)
	}
}

func TestRecentSemantics(t *testing.T) {
	b := New()
	spec := SetSpec{Kind: Recent, Fields: tuple.Schema{"v"}}
	for i := int64(1); i <= 5; i++ {
		b.Pack("s", spec, tuple.Tuple{tuple.Int(i)})
	}
	got := b.Unpack("s")
	if len(got) != 1 || got[0][0].Int() != 5 {
		t.Fatalf("RECENT = %v, want [(5)]", got)
	}
}

func TestFirstNAndRecentN(t *testing.T) {
	b := New()
	fn := SetSpec{Kind: FirstN, N: 2, Fields: tuple.Schema{"v"}}
	rn := SetSpec{Kind: RecentN, N: 2, Fields: tuple.Schema{"v"}}
	for i := int64(1); i <= 4; i++ {
		b.Pack("f", fn, tuple.Tuple{tuple.Int(i)})
		b.Pack("r", rn, tuple.Tuple{tuple.Int(i)})
	}
	f := b.Unpack("f")
	if len(f) != 2 || f[0][0].Int() != 1 || f[1][0].Int() != 2 {
		t.Fatalf("FIRSTN = %v", f)
	}
	r := b.Unpack("r")
	if len(r) != 2 || r[0][0].Int() != 3 || r[1][0].Int() != 4 {
		t.Fatalf("RECENTN = %v", r)
	}
}

func TestAggPackAggregatesInPlace(t *testing.T) {
	b := New()
	spec := SetSpec{
		Kind:    Agg,
		Fields:  tuple.Schema{"host", "delta"},
		GroupBy: []int{0},
		Aggs:    []AggField{{Pos: 1, Fn: agg.Sum}},
	}
	b.Pack("s", spec, tuple.Tuple{tuple.String("a"), tuple.Int(10)})
	b.Pack("s", spec, tuple.Tuple{tuple.String("b"), tuple.Int(5)})
	b.Pack("s", spec, tuple.Tuple{tuple.String("a"), tuple.Int(7)})
	got := b.Unpack("s")
	if len(got) != 2 {
		t.Fatalf("AGG groups = %v", got)
	}
	if got[0][0].Str() != "a" || got[0][1].Int() != 17 {
		t.Errorf("group a = %v, want (a, 17)", got[0])
	}
	if got[1][0].Str() != "b" || got[1][1].Int() != 5 {
		t.Errorf("group b = %v, want (b, 5)", got[1])
	}
	// Aggregated pack keeps tuple count at #groups, not #packs.
	if b.TupleCount() != 2 {
		t.Errorf("TupleCount = %d, want 2", b.TupleCount())
	}
}

func TestConflictingSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := New()
	b.Pack("s", allSpec("a"), tuple.Tuple{tuple.Int(1)})
	b.Pack("s", SetSpec{Kind: First, Fields: tuple.Schema{"a"}}, tuple.Tuple{tuple.Int(2)})
}

func TestSerializeEmptyIsZeroBytes(t *testing.T) {
	if n := New().ByteSize(); n != 0 {
		t.Fatalf("empty baggage serializes to %d bytes, want 0", n)
	}
	var b *Baggage
	if b.Serialize() != nil || b.ByteSize() != 0 {
		t.Fatal("nil baggage should serialize to nothing")
	}
}

func TestSerializeDeserializeRoundtrip(t *testing.T) {
	b := New()
	b.Pack("q2.0", SetSpec{Kind: First, Fields: tuple.Schema{"procName"}},
		tuple.Tuple{tuple.String("MRSORT10G")})
	b.Pack("q3.0", allSpec("host", "port"),
		tuple.Tuple{tuple.String("h1"), tuple.Int(50010)})
	buf := b.Serialize()
	d := Deserialize(buf)
	got := d.Unpack("q2.0")
	if len(got) != 1 || got[0][0].Str() != "MRSORT10G" {
		t.Fatalf("roundtrip q2.0 = %v", got)
	}
	got = d.Unpack("q3.0")
	if len(got) != 1 || got[0][1].Int() != 50010 {
		t.Fatalf("roundtrip q3.0 = %v", got)
	}
}

func TestLazyDeserializePreservesBytesWithoutDecode(t *testing.T) {
	b := New()
	b.Pack("s", allSpec("v"), tuple.Tuple{tuple.Int(42)})
	buf := b.Serialize()
	d := Deserialize(buf)
	if d.decoded {
		t.Fatal("Deserialize should not eagerly decode")
	}
	out := d.Serialize()
	if d.decoded {
		t.Fatal("Serialize of untouched baggage should not decode")
	}
	if string(out) != string(buf) {
		t.Fatal("lazy round-trip changed bytes")
	}
}

func TestCorruptBaggageDropsSilently(t *testing.T) {
	d := Deserialize([]byte{99, 1, 2, 3})
	if got := d.Unpack("s"); got != nil {
		t.Fatalf("corrupt baggage unpacked %v", got)
	}
}

func TestSplitIsolatesBranches(t *testing.T) {
	b := New()
	b.Pack("pre", allSpec("v"), tuple.Tuple{tuple.Int(1)})
	l, r := b.Split()
	l.Pack("left", allSpec("v"), tuple.Tuple{tuple.Int(2)})
	r.Pack("right", allSpec("v"), tuple.Tuple{tuple.Int(3)})

	// Both branches see pre-branch tuples.
	if got := l.Unpack("pre"); len(got) != 1 {
		t.Fatalf("left lost pre-branch tuples: %v", got)
	}
	if got := r.Unpack("pre"); len(got) != 1 {
		t.Fatalf("right lost pre-branch tuples: %v", got)
	}
	// Branch isolation: left's packs invisible to right and vice versa.
	if got := r.Unpack("left"); got != nil {
		t.Fatalf("right sees left's tuples: %v", got)
	}
	if got := l.Unpack("right"); got != nil {
		t.Fatalf("left sees right's tuples: %v", got)
	}
}

func TestJoinMergesBranchesWithoutDuplicatingPreBranchTuples(t *testing.T) {
	b := New()
	spec := SetSpec{Kind: Agg, Fields: tuple.Schema{"k", "v"},
		GroupBy: []int{0}, Aggs: []AggField{{Pos: 1, Fn: agg.Sum}}}
	b.Pack("sum", spec, tuple.Tuple{tuple.String("x"), tuple.Int(100)})
	l, r := b.Split()
	l.Pack("sum", spec, tuple.Tuple{tuple.String("x"), tuple.Int(10)})
	r.Pack("sum", spec, tuple.Tuple{tuple.String("x"), tuple.Int(1)})
	j := Join(l, r)
	got := j.Unpack("sum")
	if len(got) != 1 || got[0][1].Int() != 111 {
		t.Fatalf("joined sum = %v, want 111 (no double-count of pre-branch 100)", got)
	}
}

func TestNestedSplitJoin(t *testing.T) {
	b := New()
	spec := SetSpec{Kind: Agg, Fields: tuple.Schema{"v"},
		GroupBy: nil, Aggs: []AggField{{Pos: 0, Fn: agg.Count}}}
	b.Pack("c", spec, tuple.Tuple{tuple.Int(0)})
	l, r := b.Split()
	l1, l2 := l.Split()
	l1.Pack("c", spec, tuple.Tuple{tuple.Int(0)})
	l2.Pack("c", spec, tuple.Tuple{tuple.Int(0)})
	l = Join(l1, l2)
	r.Pack("c", spec, tuple.Tuple{tuple.Int(0)})
	j := Join(l, r)
	got := j.Unpack("c")
	if len(got) != 1 || got[0][0].Int() != 4 {
		t.Fatalf("nested join count = %v, want 4", got)
	}
}

func TestJoinWithNilAndEmpty(t *testing.T) {
	b := New()
	b.Pack("s", allSpec("v"), tuple.Tuple{tuple.Int(1)})
	if j := Join(nil, b); j != b {
		t.Error("Join(nil, b) should be b")
	}
	if j := Join(b, nil); j != b {
		t.Error("Join(b, nil) should be b")
	}
	if j := Join(New(), b); len(j.Unpack("s")) != 1 {
		t.Error("Join(empty, b) lost tuples")
	}
}

func TestSplitSerializeAcrossProcessesJoin(t *testing.T) {
	// Simulate branches traveling over the network: split, serialize each
	// half, deserialize remotely, pack, return, join.
	b := New()
	spec := SetSpec{Kind: Agg, Fields: tuple.Schema{"v"},
		Aggs: []AggField{{Pos: 0, Fn: agg.Sum}}}
	b.Pack("s", spec, tuple.Tuple{tuple.Int(1)})
	l, r := b.Split()
	lw := Deserialize(l.Serialize())
	rw := Deserialize(r.Serialize())
	lw.Pack("s", spec, tuple.Tuple{tuple.Int(10)})
	rw.Pack("s", spec, tuple.Tuple{tuple.Int(100)})
	j := Join(Deserialize(lw.Serialize()), Deserialize(rw.Serialize()))
	got := j.Unpack("s")
	if len(got) != 1 || got[0][0].Int() != 111 {
		t.Fatalf("cross-process join = %v, want 111", got)
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("background context should have no baggage")
	}
	ctx, b := Ensure(ctx)
	if FromContext(ctx) != b {
		t.Fatal("Ensure should attach baggage")
	}
	ctx2, b2 := Ensure(ctx)
	if ctx2 != ctx || b2 != b {
		t.Fatal("Ensure should be idempotent")
	}
}

func TestSlotsSorted(t *testing.T) {
	b := New()
	b.Pack("zz", allSpec("v"), tuple.Tuple{tuple.Int(1)})
	b.Pack("aa", allSpec("v"), tuple.Tuple{tuple.Int(2)})
	got := b.Slots()
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Fatalf("Slots = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New()
	b.Pack("s", allSpec("v"), tuple.Tuple{tuple.Int(1)})
	c := b.Clone()
	c.Pack("s", allSpec("v"), tuple.Tuple{tuple.Int(2)})
	if len(b.Unpack("s")) != 1 {
		t.Fatal("Clone aliases receiver")
	}
	if len(c.Unpack("s")) != 2 {
		t.Fatal("Clone lost tuples")
	}
}

func TestByteSizeGrowsLinearly(t *testing.T) {
	prev := 0
	for _, n := range []int{1, 2, 4, 8} {
		b := New()
		for i := 0; i < n; i++ {
			b.Pack("s", allSpec("a", "b"),
				tuple.Tuple{tuple.Int(int64(i)), tuple.Int(int64(i * 2))})
		}
		size := b.ByteSize()
		if size <= prev {
			t.Fatalf("size(%d tuples) = %d, not growing", n, size)
		}
		prev = size
	}
}

func TestQ7StyleBaggageIsSmall(t *testing.T) {
	// §6.3: Q7 packs the stress-test hostname plus 3 replica locations
	// (4 tuples) at ~137 bytes per request. Our encoding should be in the
	// same ballpark (well under 250 bytes).
	b := New()
	b.Pack("q7.st", SetSpec{Kind: First, Fields: tuple.Schema{"host"}},
		tuple.Tuple{tuple.String("stresstest-host-04.cluster.local")})
	b.Pack("q7.nn", allSpec("replicas"),
		tuple.Tuple{tuple.String("datanode-01.cluster.local")},
		tuple.Tuple{tuple.String("datanode-02.cluster.local")},
		tuple.Tuple{tuple.String("datanode-03.cluster.local")})
	if size := b.ByteSize(); size > 250 {
		t.Fatalf("Q7-style baggage = %d bytes, want <= 250", size)
	}
	if b.TupleCount() != 4 {
		t.Fatalf("TupleCount = %d, want 4", b.TupleCount())
	}
}

func TestFirstPrefersPreBranchTuple(t *testing.T) {
	// A FIRST tuple packed before a branch point must win over tuples
	// packed inside branches — this is what keeps Q2's application
	// attribution correct when MapReduce tasks re-cross ClientProtocols.
	spec := SetSpec{Kind: First, Fields: tuple.Schema{"procName"}}
	b := New()
	b.Pack("cl", spec, tuple.Tuple{tuple.String("MRSORT10G")})
	l, r := b.Split()
	l.Pack("cl", spec, tuple.Tuple{tuple.String("Map")})
	if got := l.Unpack("cl"); len(got) != 1 || got[0][0].Str() != "MRSORT10G" {
		t.Fatalf("branch unpack = %v, want pre-branch MRSORT10G", got)
	}
	j := Join(l, r)
	if got := j.Unpack("cl"); len(got) != 1 || got[0][0].Str() != "MRSORT10G" {
		t.Fatalf("joined unpack = %v, want MRSORT10G", got)
	}
}

func TestRecentPrefersBranchLocalTuple(t *testing.T) {
	spec := SetSpec{Kind: Recent, Fields: tuple.Schema{"v"}}
	b := New()
	b.Pack("s", spec, tuple.Tuple{tuple.Int(1)})
	l, _ := b.Split()
	l.Pack("s", spec, tuple.Tuple{tuple.Int(2)})
	if got := l.Unpack("s"); len(got) != 1 || got[0][0].Int() != 2 {
		t.Fatalf("RECENT unpack = %v, want branch-local (2)", got)
	}
}

func TestFirstNOldestFirstAcrossBranch(t *testing.T) {
	spec := SetSpec{Kind: FirstN, N: 3, Fields: tuple.Schema{"v"}}
	b := New()
	b.Pack("s", spec, tuple.Tuple{tuple.Int(1)})
	l, _ := b.Split()
	l.Pack("s", spec, tuple.Tuple{tuple.Int(2)}, tuple.Tuple{tuple.Int(3)}, tuple.Tuple{tuple.Int(4)})
	got := l.Unpack("s")
	if len(got) != 3 || got[0][0].Int() != 1 || got[1][0].Int() != 2 || got[2][0].Int() != 3 {
		t.Fatalf("FIRSTN unpack = %v, want [1 2 3]", got)
	}
}
