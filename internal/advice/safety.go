package advice

import (
	"fmt"
	"sync/atomic"

	"repro/internal/baggage"
	"repro/internal/tuple"
)

// Safety bounds one program's runtime behavior — the enforcement half of
// the paper's §3.3 safety argument. The pipeline structure already rules
// out loops and recursion; Safety additionally caps the damage of a
// pathological (or buggy) query: its baggage footprint, its per-fire
// working-set growth, and how many panics it gets before the circuit
// breaker quarantines it. Zero fields select the defaults; negative
// fields disable that limit.
type Safety struct {
	// Budget caps the query's baggage footprint (enforced at pack time
	// with accounted truncation; see baggage.PackBudgeted).
	Budget baggage.Budget
	// FaultLimit is how many recovered panics quarantine the advice.
	FaultLimit int64
	// CostCeiling caps the working-tuple count of a single fire: an
	// unpack whose cartesian join exceeds it quarantines the advice
	// (runaway join fan-out is a per-fire latency hazard for the traced
	// request, not just a memory one).
	CostCeiling int64
}

// Safety defaults.
const (
	DefaultFaultLimit  = 3
	DefaultCostCeiling = 1 << 16
)

func (s Safety) faultLimit() int64 {
	switch {
	case s.FaultLimit < 0:
		return -1
	case s.FaultLimit == 0:
		return DefaultFaultLimit
	default:
		return s.FaultLimit
	}
}

func (s Safety) costCeiling() int64 {
	switch {
	case s.CostCeiling < 0:
		return -1
	case s.CostCeiling == 0:
		return DefaultCostCeiling
	default:
		return s.CostCeiling
	}
}

// QuarantineNotifier is optionally implemented by an Emitter that wants to
// hear when a program trips its circuit breaker; the agent implements it
// to unweave the advice and publish a pt.quarantine notice. The notifier
// fires exactly once per program.
type QuarantineNotifier interface {
	NoteQuarantine(p *Program, reason string)
}

// DropSink is optionally implemented by an Emitter that wants the baggage
// eviction tombstones observed by advice, so truncated results can be
// flagged partial end-to-end; the agent implements it.
type DropSink interface {
	NoteBaggageDrops(p *Program, recs []baggage.DropRecord)
}

// PackStatsSink is optionally implemented by an Emitter that wants the
// budget-eviction statistics of this process's pack sites. Each eviction
// is reported at exactly one pack site, so per-process sums are exact.
type PackStatsSink interface {
	NotePackStats(p *Program, st baggage.PackStats)
}

// failpoint, when set, runs at the top of every non-quarantined advice
// invocation. The declarative pipeline cannot naturally panic or run
// away, so chaos tests use this hook to inject exactly those faults.
var failpoint atomic.Pointer[func(p *Program, vals tuple.Tuple)]

// SetFailpoint installs a test-only hook run at the top of every advice
// invocation; pass nil to clear. Not for production use.
func SetFailpoint(fn func(p *Program, vals tuple.Tuple)) {
	if fn == nil {
		failpoint.Store(nil)
		return
	}
	failpoint.Store(&fn)
}

// Quarantined reports whether the circuit breaker has tripped. A
// quarantined program's advice is inert: every Invoke returns immediately
// until the program is unwoven.
func (p *Program) Quarantined() bool { return p.quarantined.Load() }

// QuarantineReason returns why the breaker tripped ("" if it has not).
func (p *Program) QuarantineReason() string {
	if r := p.quarantineReason.Load(); r != nil {
		return *r
	}
	return ""
}

// Faults returns how many panics the program's advice has survived.
func (p *Program) Faults() int64 { return p.faults.Load() }

// AdvicePanicked implements tracepoint.PanicSink: the Here boundary calls
// it after recovering a panic from this advice. Once the fault count
// reaches the program's limit the breaker trips.
func (a *Advice) AdvicePanicked(tpName string, recovered any) {
	p := a.Prog
	p.Cost.Panics.Add(1)
	n := p.faults.Add(1)
	if limit := p.Safety.faultLimit(); limit >= 0 && n >= limit {
		a.quarantine(fmt.Sprintf("%d advice panics at %s (last: %v)", n, tpName, recovered))
	}
}

// quarantine trips the breaker and notifies the emitter exactly once.
func (a *Advice) quarantine(reason string) {
	p := a.Prog
	p.quarantined.Store(true)
	if !p.notified.CompareAndSwap(false, true) {
		return
	}
	p.quarantineReason.Store(&reason)
	if qn, ok := a.Emitter.(QuarantineNotifier); ok {
		qn.NoteQuarantine(p, reason)
	}
}
