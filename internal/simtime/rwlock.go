package simtime

import "sync"

// RWLock is a scheduler-aware readers-writer lock. Unlike sync.RWMutex it
// may be held across virtual-time blocking (Sleep, resource waits): waiters
// park through the environment so the clock keeps advancing.
//
// Acquisition is FIFO with reader batching: waiters are granted the lock in
// arrival order, consecutive readers at the head of the queue enter
// together, and a queued writer blocks later-arriving readers. The explicit
// handoff avoids both writer starvation and the thundering-herd unfairness
// of broadcast-based wakeups (which can starve closed-loop clients
// entirely under heavy contention).
type RWLock struct {
	env     *Env
	mu      sync.Mutex
	readers int
	writer  bool
	queue   []*rwWaiter
}

type rwWaiter struct {
	writing bool
	granted bool
	c       *Cond
}

// NewRWLock returns an unlocked RWLock.
func (e *Env) NewRWLock() *RWLock {
	return &RWLock{env: e}
}

// RLock acquires the lock for reading. Readers queue behind any earlier
// writer to avoid writer starvation.
func (l *RWLock) RLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.writer && len(l.queue) == 0 {
		l.readers++
		return
	}
	w := &rwWaiter{c: l.env.NewCond(&l.mu)}
	l.queue = append(l.queue, w)
	for !w.granted {
		w.c.Wait()
	}
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.readers--
	if l.readers < 0 {
		panic("simtime: RUnlock without RLock")
	}
	if l.readers == 0 {
		l.releaseLocked()
	}
}

// Lock acquires the lock exclusively.
func (l *RWLock) Lock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.writer && l.readers == 0 && len(l.queue) == 0 {
		l.writer = true
		return
	}
	w := &rwWaiter{writing: true, c: l.env.NewCond(&l.mu)}
	l.queue = append(l.queue, w)
	for !w.granted {
		w.c.Wait()
	}
}

// Unlock releases an exclusive acquisition.
func (l *RWLock) Unlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.writer {
		panic("simtime: Unlock without Lock")
	}
	l.writer = false
	l.releaseLocked()
}

// releaseLocked hands the lock to the head of the queue: one writer, or a
// batch of consecutive readers. Caller holds l.mu.
func (l *RWLock) releaseLocked() {
	if len(l.queue) == 0 {
		return
	}
	if l.queue[0].writing {
		if l.readers > 0 {
			return // readers still draining
		}
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.writer = true
		w.granted = true
		w.c.Signal()
		return
	}
	for len(l.queue) > 0 && !l.queue[0].writing {
		w := l.queue[0]
		l.queue = l.queue[1:]
		l.readers++
		w.granted = true
		w.c.Signal()
	}
}
