package scenario

import (
	"fmt"
	"io"
	"time"

	"repro/internal/simtime"
)

// Result is the outcome of one scenario execution. Fields with json tags
// are exactly the deterministic ones: two runs with the same (scenario,
// seed, hosts, short) flags must produce byte-identical JSON. Wall time
// and agent report/batch counts vary run to run and stay console-only.
type Result struct {
	ID     string `json:"id"`
	Name   string `json:"name"`
	Seed   int64  `json:"seed"`
	Hosts  int    `json:"hosts"`
	Short  bool   `json:"short,omitempty"`
	Passed bool   `json:"passed"`
	// Err is a scenario-body error (infrastructure failure, not a
	// checkpoint verdict).
	Err string `json:"err,omitempty"`

	VirtualMS    int64 `json:"virtual_ms"`
	Procs        int   `json:"procs"`
	Requests     int64 `json:"requests"`
	ClientErrors int64 `json:"client_errors"`
	Tuples       int64 `json:"tuples"`

	Checkpoints []CheckpointResult `json:"checkpoints"`

	// Console-only: wall time varies by machine, and report batching —
	// hence also flow counts and network byte totals, which include the
	// agent report traffic — depends on how tuples straddle interval
	// boundaries at runtime.
	WallMS   int64 `json:"-"`
	Reports  int64 `json:"-"`
	Flows    int64 `json:"-"`
	NetBytes int64 `json:"-"`
}

// Harness runs scenarios and collects results.
type Harness struct {
	// Seed drives all scenario randomness (every failure replays with
	// the same seed).
	Seed int64
	// Hosts overrides the per-scenario host count when > 0.
	Hosts int
	// Short selects the reduced (CI -race) sizing.
	Short bool
	// Log receives progress lines; nil is quiet.
	Log io.Writer
}

func (h *Harness) logf(format string, args ...any) {
	if h.Log != nil {
		fmt.Fprintf(h.Log, format+"\n", args...)
	}
}

// RunScenario executes one scenario in a fresh simulation and returns
// its result. A panic in the scenario body is captured as a failed
// result, not propagated.
func (h *Harness) RunScenario(s *Scenario) *Result {
	hosts := s.DefaultHosts
	if h.Short {
		hosts = s.ShortHosts
	}
	if h.Hosts > 0 {
		hosts = h.Hosts
	}
	res := &Result{ID: s.ID, Name: s.Name, Seed: h.Seed, Hosts: hosts, Short: h.Short}
	h.logf("=== %s (%s): %d hosts, seed %d", s.ID, s.Name, hosts, h.Seed)
	start := time.Now()

	env := simtime.NewEnv()
	r := &Run{S: s, Seed: h.Seed, Hosts: hosts, Short: h.Short, Env: env}
	if h.Log != nil {
		r.logf = h.logf
	}
	var runErr error
	func() {
		// Env.Run re-raises panics from any managed goroutine; capture
		// them as a failed result rather than killing the harness.
		defer func() {
			if p := recover(); p != nil {
				runErr = fmt.Errorf("scenario panic: %v", p)
			}
		}()
		env.Run(func() {
			// The scenario body runs in the root managed goroutine; a
			// panic there (e.g. a malformed query) must not escape the
			// simulation.
			defer func() {
				if p := recover(); p != nil {
					runErr = fmt.Errorf("scenario panic: %v", p)
				}
			}()
			runErr = s.Run(r)
		})
	}()

	res.VirtualMS = int64(env.Now() / time.Millisecond)
	res.WallMS = time.Since(start).Milliseconds()
	res.Checkpoints = r.checkpoints
	res.Requests = r.Requests()
	res.ClientErrors = r.ClientErrors()
	if r.C != nil {
		for _, p := range r.C.Procs() {
			res.Procs++
			if p.Agent != nil {
				st := p.Agent.Stats()
				res.Tuples += st.TuplesEmitted
				res.Reports += st.Reports
			}
		}
		flows, bytes := r.C.Net.Stats()
		res.Flows = flows
		res.NetBytes = int64(bytes)
	}
	res.Passed = runErr == nil && len(res.Checkpoints) > 0
	for _, cp := range res.Checkpoints {
		if !cp.Passed {
			res.Passed = false
		}
	}
	if runErr != nil {
		res.Err = runErr.Error()
	}
	verdict := "PASS"
	if !res.Passed {
		verdict = "FAIL"
	}
	h.logf("--- %s: %s  virtual %s, wall %s, %d procs, %d requests, %d tuples",
		verdict, s.ID,
		time.Duration(res.VirtualMS)*time.Millisecond,
		time.Duration(res.WallMS)*time.Millisecond,
		res.Procs, res.Requests, res.Tuples)
	return res
}

// RunAll executes the given scenarios in order.
func (h *Harness) RunAll(scenarios []*Scenario) []*Result {
	out := make([]*Result, len(scenarios))
	for i, s := range scenarios {
		out[i] = h.RunScenario(s)
	}
	return out
}

// horizon returns the fixed settle time for the run's sizing.
func (r *Run) horizon() time.Duration {
	h := r.S.Horizon
	if r.Short {
		h /= 2
		if h < 4*time.Second {
			h = 4 * time.Second
		}
	}
	return h
}
