package baseline

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

func newRequest(host, proc string) context.Context {
	ctx := tracepoint.WithProc(context.Background(), tracepoint.ProcInfo{
		Host: host, ProcName: proc, ProcID: 1,
	})
	return baggage.NewContext(ctx, baggage.New())
}

// weaveBaseline installs the evaluator's probes on the registry.
func weaveBaseline(t *testing.T, reg *tracepoint.Registry, text string) *Evaluator {
	t.Helper()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := New(q, reg)
	if err != nil {
		t.Fatal(err)
	}
	for tp, probe := range ev.Probes() {
		if err := reg.Weave(tp, probe); err != nil {
			t.Fatal(err)
		}
	}
	return ev
}

func TestBaselineSimpleJoin(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("Client")
	reg.Define("Server", "bytes")
	ev := weaveBaseline(t, reg,
		`From s In Server
		 Join c In First(Client) On c -> s
		 GroupBy c.procName
		 Select c.procName, SUM(s.bytes)`)

	client := reg.Lookup("Client")
	server := reg.Lookup("Server")
	for i, app := range []string{"appA", "appB", "appA"} {
		ctx := newRequest("h", app)
		client.Here(ctx)
		server.Here(ctx, (i+1)*100)
	}
	// A request never crossing Client contributes nothing (inner join).
	server.Here(newRequest("h", "orphan"), 999)

	rows, err := ev.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r[0].Str()] = r[1].Int()
	}
	if got["appA"] != 400 || got["appB"] != 200 {
		t.Fatalf("rows = %v", rows)
	}
	tuples, _ := ev.Stats()
	if tuples != 7 {
		t.Errorf("baseline emitted %d tuples, want 7 (every crossing)", tuples)
	}
}

func TestBaselineFrontierSurvivesBranches(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("A")
	reg.Define("B")
	ev := weaveBaseline(t, reg,
		`From b In B
		 Join a In A On a -> b
		 GroupBy a.procName
		 Select a.procName, COUNT`)

	a := reg.Lookup("A")
	b := reg.Lookup("B")

	// One request that branches: A fires on both branches, B after join.
	ctx := newRequest("h", "p")
	bag := baggage.FromContext(ctx)
	a.Here(ctx)
	l, r := bag.Split()
	lctx := baggage.NewContext(ctx, l)
	rctx := baggage.NewContext(ctx, r)
	a.Here(lctx)
	a.Here(rctx)
	joined := baggage.Join(l, r)
	b.Here(baggage.NewContext(ctx, joined))

	rows, err := ev.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// All three A events causally precede the B event.
	if len(rows) != 1 || rows[0][1].Int() != 3 {
		t.Fatalf("rows = %v, want count 3", rows)
	}
}

// TestQuickBaselineMatchesOptimizedPlan is the central equivalence
// property (Table 3 correctness): for random linear executions, the
// optimized in-baggage plan and the naive global evaluation produce the
// same results.
func TestQuickBaselineMatchesOptimizedPlan(t *testing.T) {
	text := `From s In Server
	  Join c In First(Client) On c -> s
	  Where s.bytes < 800
	  GroupBy c.procName
	  Select c.procName, SUM(s.bytes), COUNT, MAX(s.bytes)`

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Baseline setup.
		regB := tracepoint.NewRegistry()
		regB.Define("Client")
		regB.Define("Server", "bytes")
		qB, _ := query.Parse(text)
		ev, err := New(qB, regB)
		if err != nil {
			return false
		}
		for tp, probe := range ev.Probes() {
			regB.Weave(tp, probe)
		}

		// Optimized plan setup.
		regO := tracepoint.NewRegistry()
		regO.Define("Client")
		regO.Define("Server", "bytes")
		qO, _ := query.Parse(text)
		qO.Name = "q"
		p, err := plan.Compile(qO, regO, nil, plan.Optimized)
		if err != nil {
			return false
		}
		acc := advice.NewAccumulator(p.Emit.Emit)
		em := emitFunc(func(prog *advice.Program, w tuple.Tuple) { acc.Add(w) })
		for _, prog := range p.Programs {
			regO.Weave(prog.Tracepoint, &advice.Advice{Prog: prog, Emitter: em})
		}

		// Drive identical random executions through both.
		apps := []string{"appA", "appB", "appC"}
		for r := 0; r < 1+rng.Intn(6); r++ {
			app := apps[rng.Intn(len(apps))]
			ctxB := newRequest("h", app)
			ctxO := newRequest("h", app)
			if rng.Intn(4) > 0 { // sometimes skip the client tracepoint
				regB.Lookup("Client").Here(ctxB)
				regO.Lookup("Client").Here(ctxO)
			}
			for i := 0; i < rng.Intn(5); i++ {
				v := rng.Intn(1000)
				regB.Lookup("Server").Here(ctxB, v)
				regO.Lookup("Server").Here(ctxO, v)
			}
		}

		want, err := ev.Evaluate()
		if err != nil {
			return false
		}
		got := acc.Rows()
		sortRows(want)
		sortRows(got)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type emitFunc func(*advice.Program, tuple.Tuple)

func (f emitFunc) EmitTuple(p *advice.Program, w tuple.Tuple) { f(p, w) }

func sortRows(rows []tuple.Tuple) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if c := rows[i][k].Compare(rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func TestBaselineTemporalFilters(t *testing.T) {
	reg := tracepoint.NewRegistry()
	reg.Define("End")
	reg.Define("Evt", "v")
	ev := weaveBaseline(t, reg,
		`From e In End
		 Join m In MostRecent(Evt) On m -> e
		 Select m.v`)

	endTp := reg.Lookup("End")
	evt := reg.Lookup("Evt")
	ctx := newRequest("h", "p")
	evt.Here(ctx, 1)
	evt.Here(ctx, 2)
	evt.Here(ctx, 3)
	endTp.Here(ctx)
	rows, err := ev.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Fatalf("rows = %v, want most recent (3)", rows)
	}
}

func TestBaselineConstantSizeBaggage(t *testing.T) {
	// The baseline's selling point per §4: baggage stays constant-size no
	// matter how many events occur (only the frontier id is carried).
	reg := tracepoint.NewRegistry()
	reg.Define("End")
	reg.Define("Evt", "v")
	weaveBaseline(t, reg,
		`From e In End Join m In Evt On m -> e Select m.v`)

	evt := reg.Lookup("Evt")
	ctx := newRequest("h", "p")
	var sizes []int
	for i := 0; i < 100; i++ {
		evt.Here(ctx, i)
		sizes = append(sizes, baggage.FromContext(ctx).ByteSize())
	}
	if sizes[99] > sizes[4]+2 {
		t.Fatalf("baggage grew: %d -> %d bytes", sizes[4], sizes[99])
	}
}

// TestQuickBranchingEquivalence drives random fork/join request shapes
// through both evaluation strategies and demands identical results — the
// strongest correctness property for baggage's branch versioning plus the
// compiler's rewrites.
func TestQuickBranchingEquivalence(t *testing.T) {
	text := `From s In Server
	  Join c In First(Client) On c -> s
	  GroupBy c.procName
	  Select c.procName, COUNT, SUM(s.bytes)`

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		regB := tracepoint.NewRegistry()
		regB.Define("Client")
		regB.Define("Server", "bytes")
		qB, _ := query.Parse(text)
		ev, err := New(qB, regB)
		if err != nil {
			return false
		}
		for tp, probe := range ev.Probes() {
			regB.Weave(tp, probe)
		}

		regO := tracepoint.NewRegistry()
		regO.Define("Client")
		regO.Define("Server", "bytes")
		qO, _ := query.Parse(text)
		qO.Name = "q"
		p, err := plan.Compile(qO, regO, nil, plan.Optimized)
		if err != nil {
			return false
		}
		acc := advice.NewAccumulator(p.Emit.Emit)
		em := emitFunc(func(prog *advice.Program, w tuple.Tuple) { acc.Add(w) })
		for _, prog := range p.Programs {
			regO.Weave(prog.Tracepoint, &advice.Advice{Prog: prog, Emitter: em})
		}

		apps := []string{"appA", "appB"}
		for r := 0; r < 1+rng.Intn(4); r++ {
			app := apps[rng.Intn(len(apps))]
			ctxB := newRequest("h", app)
			ctxO := newRequest("h", app)
			regB.Lookup("Client").Here(ctxB)
			regO.Lookup("Client").Here(ctxO)

			// Fork into 2 or 3 branches; each branch crosses Server a few
			// times; then rejoin and maybe cross Server once more.
			k := 2 + rng.Intn(2)
			bagB := baggage.FromContext(ctxB)
			bagO := baggage.FromContext(ctxO)
			branchesB := make([]*baggage.Baggage, 0, k)
			branchesO := make([]*baggage.Baggage, 0, k)
			for i := 0; i < k-1; i++ {
				var lB, lO *baggage.Baggage
				lB, bagB = bagB.Split()
				lO, bagO = bagO.Split()
				branchesB = append(branchesB, lB)
				branchesO = append(branchesO, lO)
			}
			branchesB = append(branchesB, bagB)
			branchesO = append(branchesO, bagO)
			for i := range branchesB {
				n := rng.Intn(3)
				for e := 0; e < n; e++ {
					v := rng.Intn(100)
					regB.Lookup("Server").Here(baggage.NewContext(ctxB, branchesB[i]), v)
					regO.Lookup("Server").Here(baggage.NewContext(ctxO, branchesO[i]), v)
				}
			}
			joinedB, joinedO := branchesB[0], branchesO[0]
			for i := 1; i < k; i++ {
				joinedB = baggage.Join(joinedB, branchesB[i])
				joinedO = baggage.Join(joinedO, branchesO[i])
			}
			if rng.Intn(2) == 0 {
				v := rng.Intn(100)
				regB.Lookup("Server").Here(baggage.NewContext(ctxB, joinedB), v)
				regO.Lookup("Server").Here(baggage.NewContext(ctxO, joinedO), v)
			}
		}

		want, err := ev.Evaluate()
		if err != nil {
			return false
		}
		got := acc.Rows()
		sortRows(want)
		sortRows(got)
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if !want[i].Equal(got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
