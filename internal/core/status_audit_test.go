package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/agent"
)

// TestStatColumnsCoverHeartbeat is the ptstat column audit: every field
// of agent.Stats must have an entry in statColumns (an empty column is a
// deliberate, commented no-render decision), and every named column must
// actually appear in the rendered agent-table header. When the heartbeat
// grows a counter, this fails until someone decides how ptstat shows it.
func TestStatColumnsCoverHeartbeat(t *testing.T) {
	st := reflect.TypeOf(agent.Stats{})
	fields := make(map[string]bool, st.NumField())
	for i := 0; i < st.NumField(); i++ {
		fields[st.Field(i).Name] = true
	}
	for name := range fields {
		if _, ok := statColumns[name]; !ok {
			t.Errorf("agent.Stats.%s has no ptstat column decision; add it to statColumns (an empty column with a reason comment is a valid decision)", name)
		}
	}
	for name := range statColumns {
		if !fields[name] {
			t.Errorf("statColumns names %q, which is no longer a field of agent.Stats", name)
		}
	}

	out := RenderStatus(Status{Agents: []AgentHealth{{Host: "h", ProcName: "p"}}})
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Fatalf("RenderStatus output too short:\n%s", out)
	}
	header := make(map[string]bool)
	for _, col := range strings.Fields(lines[1]) {
		header[col] = true
	}
	seen := make(map[string]string) // column -> first field claiming it
	for field, col := range statColumns {
		if col == "" {
			continue
		}
		if !header[col] {
			t.Errorf("statColumns maps agent.Stats.%s to column %q, which is missing from the rendered agent-table header:\n%s", field, col, lines[1])
		}
		if prev, dup := seen[col]; dup {
			t.Errorf("column %q claimed by both agent.Stats.%s and agent.Stats.%s", col, prev, field)
		}
		seen[col] = field
	}
}
