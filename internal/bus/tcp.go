package bus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
)

// This file implements the distributed form of the message bus: the
// paper's central pub/sub server (§5) that connects per-process agents to
// the query frontend across machine boundaries. A Server relays framed
// (topic, payload) messages between connections; a Link bridges a remote
// connection onto a process's local Bus, marshaling messages with a
// caller-supplied codec. Topics flow one direction per process (control:
// frontend -> agents; results: agents -> frontend), so bridging cannot
// loop.

// Codec translates between in-memory bus messages and wire payloads.
type Codec interface {
	Marshal(msg any) ([]byte, error)
	Unmarshal(data []byte) (any, error)
}

// frame layout: uvarint topic length, topic, uvarint payload length,
// payload.
func writeFrame(w *bufio.Writer, topic string, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(topic)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.WriteString(topic); err != nil {
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

const maxFrame = 64 << 20

func readFrame(r *bufio.Reader) (topic string, payload []byte, err error) {
	tlen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if tlen > maxFrame {
		return "", nil, errors.New("bus: oversized topic")
	}
	tbuf := make([]byte, tlen)
	if _, err := io.ReadFull(r, tbuf); err != nil {
		return "", nil, err
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if plen > maxFrame {
		return "", nil, errors.New("bus: oversized payload")
	}
	pbuf := make([]byte, plen)
	if _, err := io.ReadFull(r, pbuf); err != nil {
		return "", nil, err
	}
	return string(tbuf), pbuf, nil
}

// Server is the central pub/sub relay: every frame received from one
// connection is forwarded to all other connections. Subscription filtering
// happens client-side (the deployments are small; the paper's pub/sub
// server is likewise a simple hub).
type Server struct {
	ln net.Listener

	mu    sync.Mutex
	conns map[net.Conn]*bufio.Writer
	done  bool
}

// Serve starts a pub/sub server on addr (e.g. "127.0.0.1:0") and returns
// it; the listener address is available via Addr.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, conns: make(map[net.Conn]*bufio.Writer)}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = bufio.NewWriter(conn)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		topic, payload, err := readFrame(r)
		if err != nil {
			return
		}
		s.mu.Lock()
		for other, w := range s.conns {
			if other == conn {
				continue
			}
			if err := writeFrame(w, topic, payload); err != nil {
				other.Close()
			}
		}
		s.mu.Unlock()
	}
}

// Close shuts the server down and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// Link bridges a process's local Bus to a remote pub/sub server: messages
// published locally on the send topics are marshaled and forwarded;
// frames received for the recv topics are unmarshaled and published
// locally. Close the link to disconnect.
type Link struct {
	conn net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex
	subs []Subscription
	bus  *Bus
	errs chan error
}

// Connect dials the server and starts bridging.
func Connect(b *Bus, addr string, codec Codec, send, recv []string) (*Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Link{conn: conn, w: bufio.NewWriter(conn), bus: b, errs: make(chan error, 1)}

	for _, topic := range send {
		topic := topic
		sub := b.Subscribe(topic, func(msg any) {
			payload, err := codec.Marshal(msg)
			if err != nil {
				return // unmarshalable local-only message
			}
			l.wmu.Lock()
			defer l.wmu.Unlock()
			writeFrame(l.w, topic, payload)
		})
		l.subs = append(l.subs, sub)
	}

	recvSet := make(map[string]bool, len(recv))
	for _, t := range recv {
		recvSet[t] = true
	}
	go func() {
		r := bufio.NewReader(conn)
		for {
			topic, payload, err := readFrame(r)
			if err != nil {
				select {
				case l.errs <- err:
				default:
				}
				return
			}
			if !recvSet[topic] {
				continue
			}
			msg, err := codec.Unmarshal(payload)
			if err != nil {
				continue
			}
			b.Publish(topic, msg)
		}
	}()
	return l, nil
}

// Close stops bridging and closes the connection.
func (l *Link) Close() {
	for _, sub := range l.subs {
		l.bus.Unsubscribe(sub)
	}
	l.conn.Close()
}

// Err reports the first receive-loop error, if any (nil while healthy).
func (l *Link) Err() error {
	select {
	case err := <-l.errs:
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	default:
		return nil
	}
}
