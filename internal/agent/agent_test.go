package agent

import (
	"context"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// q1Program compiles by hand a Q1-style program over tracepoint "Tp".
func q1Program() *advice.Program {
	return &advice.Program{
		QueryID:       "Q",
		Tracepoint:    "Tp",
		Observe:       []int{0, 5},
		ObserveFields: tuple.Schema{"e.host", "e.v"},
		Emit: &advice.EmitOp{
			Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
			GroupBy: []int{0},
			Schema:  tuple.Schema{"host", "SUM(v)"},
		},
	}
}

func info(host string) tracepoint.ProcInfo {
	return tracepoint.ProcInfo{Host: host, ProcName: "p", ProcID: 1}
}

func request(host string) context.Context {
	ctx := tracepoint.WithProc(context.Background(), info(host))
	return baggage.NewContext(ctx, baggage.New())
}

func TestAgentWeavesOnInstallAndReports(t *testing.T) {
	env := simtime.NewEnv()
	var reports []Report
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		New(env, info("h1"), reg, b, time.Second)
		b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, msg.(Report)) })

		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		if !tp.Enabled() {
			t.Error("tracepoint not woven")
		}
		tp.Here(request("h1"), 10)
		tp.Here(request("h1"), 5)
		env.Sleep(1500 * time.Millisecond) // one reporting interval
	})
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	r := reports[0]
	if r.QueryID != "Q" || r.Host != "h1" || len(r.Groups) != 1 {
		t.Fatalf("report = %+v", r)
	}
	if got := r.Groups[0].States[0].Result(); got.Int() != 15 {
		t.Fatalf("partial sum = %v", got)
	}
}

func TestAgentSkipsUnknownTracepoints(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry() // no "Tp" here
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		a.Flush() // nothing to report, no panic
	})
}

func TestAgentWeavesWhenTracepointDefinedLater(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		tp := reg.Define("Tp", "v") // defined after installation
		if !tp.Enabled() {
			t.Error("standing query not woven into late-defined tracepoint")
		}
	})
}

func TestAgentUninstallUnweaves(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		b.Publish(ControlTopic, Uninstall{QueryID: "Q"})
		if tp.Enabled() {
			t.Error("tracepoint still woven after uninstall")
		}
	})
}

func TestAgentEmptyIntervalsProduceNoReports(t *testing.T) {
	env := simtime.NewEnv()
	reports := 0
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		New(env, info("h1"), reg, b, time.Second)
		b.Subscribe(ResultsTopic, func(any) { reports++ })
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		env.Sleep(5 * time.Second)
	})
	if reports != 0 {
		t.Fatalf("reports = %d, want 0 for idle query", reports)
	}
}

func TestAgentStatsCountEmissions(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		for i := 0; i < 50; i++ {
			tp.Here(request("h1"), 1)
		}
		a.Flush()
		st := a.Stats()
		if st.TuplesEmitted != 50 {
			t.Errorf("TuplesEmitted = %d", st.TuplesEmitted)
		}
		if st.RowsReported != 1 {
			t.Errorf("RowsReported = %d (aggregation should collapse to one group)", st.RowsReported)
		}
		if st.Reports != 1 {
			t.Errorf("Reports = %d", st.Reports)
		}
	})
}

func TestAgentCloseUnweavesEverything(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		a.Close()
		if tp.Enabled() {
			t.Error("tracepoint still woven after Close")
		}
		// Control messages after Close are ignored.
		b.Publish(ControlTopic, Install{QueryID: "Q2", Programs: []*advice.Program{q1Program()}})
		if tp.Enabled() {
			t.Error("closed agent still handling control messages")
		}
	})
}

func TestAgentDuplicateInstallIgnored(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		msg := Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}}
		b.Publish(ControlTopic, msg)
		b.Publish(ControlTopic, msg)
		tp.Here(request("h1"), 1)
		a.Flush()
		if st := a.Stats(); st.TuplesEmitted != 1 {
			t.Errorf("duplicate install double-weaved: %d emissions", st.TuplesEmitted)
		}
	})
}

func TestNilEnvAgentManualFlush(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Tp", "v")
	a := New(nil, info("h1"), reg, b, 0)
	var reports []Report
	b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, msg.(Report)) })
	b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
	tp.Here(request("h1"), 3)
	a.Flush()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Time <= 0 {
		t.Error("wall-clock report time expected")
	}
}
