package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Fig1Config sizes the §2.1 motivating experiment: six client applications
// sharing the cluster while three queries apportion disk bandwidth.
type Fig1Config struct {
	Hosts    int
	Duration time.Duration
	// Sort job input sizes (the paper uses 10 GB and 100 GB; the defaults
	// are scaled so several jobs complete within Duration).
	Sort10g, Sort100g float64
	// Files per FSread dataset.
	Files int
}

// DefaultFig1Config returns a configuration that runs in a few seconds of
// real time while preserving the figure's shape.
func DefaultFig1Config() Fig1Config {
	return Fig1Config{
		Hosts:    8,
		Duration: 2 * time.Minute,
		Sort10g:  2e9,
		Sort100g: 20e9,
		Files:    16,
	}
}

// Fig1Result holds the three sub-figures.
type Fig1Result struct {
	Cfg Fig1Config
	// HostSeries is Fig 1a: per-host HDFS DataNode read throughput (Q1).
	HostSeries map[string][]metrics.Point
	// AppSeries is Fig 1b: HDFS read throughput grouped by top-level
	// client application (Q2, the happened-before join).
	AppSeries map[string][]metrics.Point
	// PivotRead/PivotWrite are Fig 1c: disk read/write bytes by host and
	// by source process for the MRsort10g application.
	PivotRead, PivotWrite map[string]map[string]float64 // host -> proc -> bytes
	Q1, Q2                string
}

// queries for Fig 1, as printed in the paper (§2.1).
const (
	fig1Q1 = `From incr In DataNodeMetrics.incrBytesRead
GroupBy incr.host
Select incr.host, SUM(incr.delta)`
	fig1Q2 = `From incr In DataNodeMetrics.incrBytesRead
Join cl In First(ClientProtocols) On cl -> incr
GroupBy cl.procName
Select cl.procName, SUM(incr.delta)`
	// The two Fig 1c queries instrument the file streams, still joining
	// with the client process name.
	fig1QRead = `From fis In FileInputStream.read
Join cl In First(ClientProtocols) On cl -> fis
GroupBy cl.procName, fis.host, fis.procName
Select cl.procName, fis.host, fis.procName, SUM(fis.length)`
	fig1QWrite = `From fos In FileOutputStream.write
Join cl In First(ClientProtocols) On cl -> fos
GroupBy cl.procName, fos.host, fos.procName
Select cl.procName, fos.host, fos.procName, SUM(fos.length)`
)

// RunFig1 executes the experiment.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	env := simtime.NewEnv()
	res := &Fig1Result{Cfg: cfg, Q1: fig1Q1, Q2: fig1Q2}
	var runErr error

	env.Run(func() {
		tbCfg := workload.DefaultTestbedConfig()
		tbCfg.Hosts = cfg.Hosts
		tb := workload.NewTestbed(env, tbCfg)
		if err := tb.InitHBaseStores(2e9); err != nil {
			runErr = err
			return
		}

		q1, err := tb.C.PT.Install(fig1Q1)
		if err != nil {
			runErr = err
			return
		}
		q2, err := tb.C.PT.Install(fig1Q2)
		if err != nil {
			runErr = err
			return
		}
		qr, err := tb.C.PT.Install(fig1QRead)
		if err != nil {
			runErr = err
			return
		}
		qw, err := tb.C.PT.Install(fig1QWrite)
		if err != nil {
			runErr = err
			return
		}

		col1 := metrics.NewCollector(q1.Plan.Emit.Emit, time.Second)
		q1.OnReport(col1.OnReport)
		col2 := metrics.NewCollector(q2.Plan.Emit.Emit, time.Second)
		q2.OnReport(col2.OnReport)

		// The six client applications of §2.1.
		type mk func() (*workload.Workload, error)
		makers := []mk{
			func() (*workload.Workload, error) {
				return tb.NewFSRead(workload.HostName(0), "FSREAD4M", 4e6, cfg.Files, 1)
			},
			func() (*workload.Workload, error) {
				return tb.NewFSRead(workload.HostName(1), "FSREAD64M", 64e6, cfg.Files, 2)
			},
			func() (*workload.Workload, error) { return tb.NewHGet(workload.HostName(2), 3), nil },
			func() (*workload.Workload, error) { return tb.NewHScan(workload.HostName(3), 4), nil },
			func() (*workload.Workload, error) {
				return tb.NewMRSort(workload.HostName(4), "MRSORT10G", cfg.Sort10g)
			},
			func() (*workload.Workload, error) {
				return tb.NewMRSort(workload.HostName(5), "MRSORT100G", cfg.Sort100g)
			},
		}
		for _, m := range makers {
			w, err := m()
			if err != nil {
				runErr = err
				return
			}
			w.Start()
		}

		env.Sleep(cfg.Duration)
		tb.C.FlushAgents()

		res.HostSeries = col1.Series([]int{0}, 1, true)
		res.AppSeries = col2.Series([]int{0}, 1, true)

		res.PivotRead = pivotRows(qr.Rows(), "MRSORT10G")
		res.PivotWrite = pivotRows(qw.Rows(), "MRSORT10G")
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// pivotRows builds host -> proc -> bytes for one application from the
// Fig 1c query rows (app, host, proc, bytes).
func pivotRows(rows []tuple.Tuple, app string) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for _, r := range rows {
		if r[0].Str() != app {
			continue
		}
		host, proc := r[1].Str(), r[2].Str()
		if out[host] == nil {
			out[host] = make(map[string]float64)
		}
		out[host][proc] += r[3].Float()
	}
	return out
}

// Render produces the three sub-figures as terminal text.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Fig 1a: HDFS DataNode throughput per machine (Q1) ===\n")
	b.WriteString(renderSeries("", r.HostSeries, fmtBytesRate))
	b.WriteString("\n=== Fig 1b: HDFS throughput by client application (Q2) ===\n")
	b.WriteString(renderSeries("", r.AppSeries, fmtBytesRate))
	b.WriteString("\n=== Fig 1c: disk IO pivot table for MRSORT10G (host x source process) ===\n")
	b.WriteString(r.renderPivot())
	return b.String()
}

// renderPivot renders the Fig 1c pivot table with per-row/column totals.
func (r *Fig1Result) renderPivot() string {
	procSet := map[string]bool{}
	hostSet := map[string]bool{}
	for host, m := range r.PivotRead {
		hostSet[host] = true
		for p := range m {
			procSet[p] = true
		}
	}
	for host, m := range r.PivotWrite {
		hostSet[host] = true
		for p := range m {
			procSet[p] = true
		}
	}
	var hosts, procs []string
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	for p := range procSet {
		procs = append(procs, p)
	}
	sort.Strings(hosts)
	sort.Strings(procs)

	get := func(m map[string]map[string]float64, h, p string) float64 {
		if row, ok := m[h]; ok {
			return row[p]
		}
		return 0
	}
	header := append([]string{"host"}, procs...)
	header = append(header, "Σmachine")
	var rows [][]string
	colTotals := make([]float64, len(procs))
	grand := 0.0
	for _, h := range hosts {
		row := []string{h}
		rowTotal := 0.0
		for j, p := range procs {
			rd := get(r.PivotRead, h, p)
			wr := get(r.PivotWrite, h, p)
			row = append(row, fmt.Sprintf("r%.0fM w%.0fM", rd/1e6, wr/1e6))
			colTotals[j] += rd + wr
			rowTotal += rd + wr
		}
		row = append(row, fmt.Sprintf("%.0fM", rowTotal/1e6))
		grand += rowTotal
		rows = append(rows, row)
	}
	totalRow := []string{"Σcluster"}
	for _, t := range colTotals {
		totalRow = append(totalRow, fmt.Sprintf("%.0fM", t/1e6))
	}
	totalRow = append(totalRow, fmt.Sprintf("%.0fM", grand/1e6))
	rows = append(rows, totalRow)
	return metrics.RenderTable(header, rows)
}
