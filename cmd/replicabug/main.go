// Command replicabug reproduces the §6.1 case study: diagnosing the
// HDFS-6268 replica selection bug with the paper's queries Q3-Q7. Run it
// with the bug active (default) and with -fixed to see uniform selection
// after both fixes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig8Config()
	flag.IntVar(&cfg.Hosts, "hosts", cfg.Hosts, "DataNode host count")
	flag.IntVar(&cfg.ClientsPerHost, "clients", cfg.ClientsPerHost, "stress clients per host")
	flag.IntVar(&cfg.Files, "files", cfg.Files, "stress dataset file count")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "virtual experiment duration")
	flag.BoolVar(&cfg.Fixed, "fixed", cfg.Fixed, "apply both HDFS-6268 fixes")
	flag.Parse()

	start := time.Now()
	res, err := experiments.RunFig8(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replicabug:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
	fmt.Printf("\n(%v of virtual time simulated in %v)\n",
		cfg.Duration, time.Since(start).Round(time.Millisecond))
}
