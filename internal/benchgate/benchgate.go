// Package benchgate locks in the hot-path overhaul with a benchmark
// regression gate. It parses `go test -bench` output, folds repeated
// counts into a best-of summary (min ns/op — the least-noisy estimator of
// a benchmark's true cost on a busy machine), and compares a fresh run
// against a committed baseline (BENCH_5.json, named for the paper's
// Table 5 overhead study). Time regressions beyond a tolerance fail the
// gate; allocation-count regressions fail at any size, because allocs/op
// is deterministic and every new steady-state allocation is a hot-path
// bug, not noise.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's summarized cost.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline maps a full benchmark name (including the -cpu suffix, e.g.
// "BenchmarkHereParallel/sharded-8") to its recorded cost. The -cpu
// suffix is part of the key on purpose: the gate pins the cpu list, so
// keys are stable across machines even though the numbers are not.
type Baseline map[string]Result

// Parse reads `go test -bench -benchmem` output and summarizes repeated
// runs of the same benchmark: min ns/op, and min B/op and allocs/op to
// match (warm-up iterations can only inflate those).
func Parse(r io.Reader) (Baseline, error) {
	out := Baseline{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[name]; seen {
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.BytesPerOp < res.BytesPerOp {
				res.BytesPerOp = prev.BytesPerOp
			}
			if prev.AllocsPerOp < res.AllocsPerOp {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine decodes one result line of the form
//
//	BenchmarkName-8  	 1234567	   229.5 ns/op	   0 B/op	   0 allocs/op
//
// extra metrics (frames/flush, MB/s) are ignored. Lines that are not
// benchmark results report ok=false.
func parseLine(line string) (string, Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", Result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Result{}, false
	}
	name := fields[0]
	res := Result{BytesPerOp: -1, AllocsPerOp: -1}
	haveNs := false
	for i := 2; i+1 < len(fields); i++ {
		v := fields[i]
		switch fields[i+1] {
		case "ns/op":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.NsPerOp = f
			haveNs = true
		case "B/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.BytesPerOp = n
		case "allocs/op":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return "", Result{}, false
			}
			res.AllocsPerOp = n
		}
	}
	if !haveNs {
		return "", Result{}, false
	}
	return name, res, true
}

// Regression is one gate violation.
type Regression struct {
	Name   string
	Metric string // "ns/op" or "allocs/op"
	Base   float64
	Got    float64
}

func (r Regression) String() string {
	if r.Metric == "allocs/op" {
		return fmt.Sprintf("%s: allocs/op regressed %d -> %d (any increase fails: "+
			"a new steady-state allocation is a hot-path bug, not noise)",
			r.Name, int64(r.Base), int64(r.Got))
	}
	return fmt.Sprintf("%s: ns/op regressed %.1f -> %.1f (%+.1f%%)",
		r.Name, r.Base, r.Got, 100*(r.Got-r.Base)/r.Base)
}

// allocSlackFloor separates the two allocation regimes. At or below it,
// allocs/op is fully deterministic (the paths the overhaul drove to zero)
// and any increase fails. Above it — amortized whole-pipeline benchmarks
// like a 64-query flush — a GC pass that empties a sync.Pool mid-run
// perturbs the count by a handful, so those get 1% slack instead of an
// exact match. 0 stays 0 either way.
const allocSlackFloor = 32

func allocCap(base int64) int64 {
	if base <= allocSlackFloor {
		return base
	}
	return base + base/100
}

// Compare gates current against base: ns/op may grow by at most tolPct
// percent; allocs/op may not grow at all (see allocSlackFloor for the
// one carve-out on amortized pipelines). Benchmarks present in only one
// of the two sets are reported via missing/extra so a silently-deleted
// benchmark cannot pass the gate.
func Compare(base, current Baseline, tolPct float64) (regs []Regression, missing, extra []string) {
	for name, b := range base {
		c, ok := current[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tolPct/100) {
			regs = append(regs, Regression{Name: name, Metric: "ns/op", Base: b.NsPerOp, Got: c.NsPerOp})
		}
		if b.AllocsPerOp >= 0 && c.AllocsPerOp > allocCap(b.AllocsPerOp) {
			regs = append(regs, Regression{Name: name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), Got: float64(c.AllocsPerOp)})
		}
	}
	for name := range current {
		if _, ok := base[name]; !ok {
			extra = append(extra, name)
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	sort.Strings(missing)
	sort.Strings(extra)
	return regs, missing, extra
}

// Load reads a baseline file. A missing file returns (nil, nil): the
// caller decides whether that seeds a new baseline or fails the gate.
func Load(path string) (Baseline, error) {
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return b, nil
}

// Write stores a baseline with stable key order so diffs stay reviewable.
func Write(path string, b Baseline) error {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
