// Package cluster wires a complete simulated deployment: hosts with NICs
// and disks (netsim), processes with per-process tracepoint registries and
// Pivot Tracing agents, a baggage-propagating RPC layer, and the Pivot
// Tracing frontend — the substrate the Hadoop-stack systems (hdfs, hbase,
// yarn, mapreduce) run on.
package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/spans"
	"repro/internal/tracepoint"
)

// Config sets cluster-wide parameters.
type Config struct {
	// NICRate and DiskRate are per-host resource capacities in bytes/s.
	NICRate  float64
	DiskRate float64
	// ReportInterval is the agent reporting interval.
	ReportInterval time.Duration
	// RPCLatency is the fixed one-way message latency.
	RPCLatency time.Duration
	// BaggageFixedCost and BaggageByteCost model the CPU cost of
	// serializing/deserializing non-empty baggage at each process
	// boundary crossing (the overheads Table 5 measures). Empty baggage
	// costs nothing — the paper's zero-byte default.
	BaggageFixedCost time.Duration
	BaggageByteCost  time.Duration
	// SmallFlowCutoff, when > 0, routes network transfers of at most
	// that many bytes through netsim's closed-form small-flow path
	// (see netsim.Network.SetSmallFlowCutoff). Large scenario runs set
	// this just below their data-read size so control RPCs stay cheap;
	// zero preserves the exact model everywhere.
	SmallFlowCutoff float64
}

// DefaultConfig models the paper's testbed: 1 Gbit NICs, commodity disks,
// one-second agent reports.
func DefaultConfig() Config {
	return Config{
		NICRate:          netsim.Gbit,
		DiskRate:         netsim.DiskRate,
		ReportInterval:   agent.DefaultInterval,
		RPCLatency:       200 * time.Microsecond,
		BaggageFixedCost: 500 * time.Nanosecond,
		BaggageByteCost:  2 * time.Nanosecond,
	}
}

// Cluster is one simulated deployment.
type Cluster struct {
	Env *simtime.Env
	Net *netsim.Network
	Bus *bus.Bus
	// PT is the Pivot Tracing frontend for this deployment.
	PT  *core.PivotTracing
	cfg Config

	mu      sync.Mutex
	hosts   map[string]*netsim.Host
	procs   []*Process
	byName  map[string]*Process // "host/proc"
	nextID  int64
	spansOn bool
	spanCap int
	tenants []*core.PivotTracing // additional tenant frontends (tree.go)
	tree    *CombinerTree        // hierarchical aggregation tiers, if enabled
}

// New creates an empty cluster.
func New(env *simtime.Env, cfg Config) *Cluster {
	c := &Cluster{
		Env:    env,
		Net:    netsim.New(env),
		Bus:    bus.New(),
		cfg:    cfg,
		hosts:  make(map[string]*netsim.Host),
		byName: make(map[string]*Process),
	}
	c.PT = core.New(c.Bus, tracepoint.NewRegistry())
	if cfg.SmallFlowCutoff > 0 {
		c.Net.SetSmallFlowCutoff(cfg.SmallFlowCutoff)
	}
	// Renew query leases on the virtual clock, as a live frontend would;
	// lease expiry (a dead frontend) is exercised by the chaos tests over
	// the TCP bus, where the frontend really can disappear.
	env.Go(func() {
		for !env.Done() {
			env.Sleep(agent.DefaultLease / 3)
			c.RenewLeases()
		}
	})
	return c
}

// EnableSpans turns on causal span capture across the deployment: every
// monitored process records spans at tracepoint crossings (ring capacity
// per agent; <= 0 selects the agent default) and the frontend
// reconstructs per-request DAGs, returned here as the builder. Processes
// started after this call are enabled as they start.
func (c *Cluster) EnableSpans(capacity int) *spans.Builder {
	c.mu.Lock()
	c.spansOn = true
	c.spanCap = capacity
	procs := append([]*Process(nil), c.procs...)
	c.mu.Unlock()
	for _, p := range procs {
		if p.Agent != nil {
			p.Agent.EnableSpans(uint64(p.Info.ProcID)<<32, capacity)
		}
	}
	return c.PT.EnableTraceCollection()
}

// clock adapts the simulation environment to the tracepoint.Clock
// interface so tracepoints export virtual time.
type clock struct{ env *simtime.Env }

func (c clock) Now() time.Duration { return c.env.Now() }

// Host returns (creating if needed) the named host.
func (c *Cluster) Host(name string) *netsim.Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hosts[name]
	if !ok {
		h = c.Net.NewHost(name, c.cfg.NICRate, c.cfg.DiskRate)
		h.Latency = c.cfg.RPCLatency
		c.hosts[name] = h
	}
	return h
}

// AdoptHosts registers externally built hosts (typically a
// netsim.BuildTopology fabric constructed on c.Net) so Host and Start
// resolve them by name instead of lazily creating flat replacements.
// Panics if a name is already taken.
func (c *Cluster) AdoptHosts(hosts ...*netsim.Host) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range hosts {
		if _, dup := c.hosts[h.Name]; dup {
			panic(fmt.Sprintf("cluster: duplicate host %q", h.Name))
		}
		c.hosts[h.Name] = h
	}
}

// AdoptTopology builds a rack/pod topology on the cluster's network and
// adopts every host, returning the topology for name/placement lookups.
// This is the bulk host-creation path scenario runs use: one call stands
// up a 1000-host fabric with interned names.
func (c *Cluster) AdoptTopology(cfg netsim.TopologyConfig) *netsim.Topology {
	if cfg.NICRate == 0 {
		cfg.NICRate = c.cfg.NICRate
	}
	if cfg.DiskRate == 0 {
		cfg.DiskRate = c.cfg.DiskRate
	}
	if cfg.HostLatency == 0 {
		cfg.HostLatency = c.cfg.RPCLatency
	}
	topo := netsim.BuildTopology(c.Net, cfg)
	c.AdoptHosts(topo.Hosts()...)
	return topo
}

// StartAll launches one monitored process named procName on every listed
// host, in order — the bulk-spawn path for scenario topologies (1000
// DataNodes in one call).
func (c *Cluster) StartAll(procName string, hosts []string) []*Process {
	out := make([]*Process, len(hosts))
	for i, h := range hosts {
		out[i] = c.Start(h, procName)
	}
	return out
}

// Hosts returns all host names in creation order... map order is not
// stable, so callers that need ordering should track their own lists.
func (c *Cluster) Hosts() []*netsim.Host {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*netsim.Host, 0, len(c.hosts))
	for _, h := range c.hosts {
		out = append(out, h)
	}
	return out
}

// Process is one simulated OS process: an identity, a host, a private
// tracepoint registry, a Pivot Tracing agent, and a set of RPC handlers.
type Process struct {
	C    *Cluster
	Info tracepoint.ProcInfo
	Host *netsim.Host
	Reg  *tracepoint.Registry
	// Agent is the process's Pivot Tracing agent; nil if the process was
	// started without one (unmonitored).
	Agent *agent.Agent

	mu       sync.Mutex
	handlers map[string]Handler

	fileIn, fileOut  *tracepoint.Tracepoint
	rpcRecv, rpcResp *tracepoint.Tracepoint
}

// Handler serves one RPC method.
type Handler func(ctx context.Context, req any) (any, error)

// Start launches a process on a host with a Pivot Tracing agent.
func (c *Cluster) Start(hostName, procName string) *Process {
	return c.start(hostName, procName, true)
}

// StartUnmonitored launches a process without a Pivot Tracing agent
// (baggage still propagates through it — the paper's §8 note that systems
// without agents still forward baggage).
func (c *Cluster) StartUnmonitored(hostName, procName string) *Process {
	return c.start(hostName, procName, false)
}

func (c *Cluster) start(hostName, procName string, monitored bool) *Process {
	host := c.Host(hostName)
	c.mu.Lock()
	c.nextID++
	p := &Process{
		C: c,
		Info: tracepoint.ProcInfo{
			Host: hostName, ProcName: procName, ProcID: c.nextID,
		},
		Host:     host,
		Reg:      tracepoint.NewRegistry(),
		handlers: make(map[string]Handler),
	}
	key := hostName + "/" + procName
	if _, dup := c.byName[key]; dup {
		c.mu.Unlock()
		panic(fmt.Sprintf("cluster: duplicate process %s", key))
	}
	c.byName[key] = p
	c.procs = append(c.procs, p)
	spansOn, spanCap := c.spansOn, c.spanCap
	parts := 0
	if c.tree != nil {
		parts = c.tree.Partitions
	}
	tenants := append([]*core.PivotTracing(nil), c.tenants...)
	c.mu.Unlock()
	if monitored {
		p.Agent = agent.New(c.Env, p.Info, p.Reg, c.Bus, c.cfg.ReportInterval)
		if spansOn {
			p.Agent.EnableSpans(uint64(p.Info.ProcID)<<32, spanCap)
		}
		if parts > 0 {
			p.Agent.SetReportTopic(agentPartitionTopic(hostName, procName, parts))
		}
		// Replay standing queries so late-started processes participate —
		// the primary's and every tenant frontend's.
		for _, msg := range c.PT.Installs() {
			p.Agent.Deliver(msg)
		}
		for _, t := range tenants {
			for _, msg := range t.Installs() {
				p.Agent.Deliver(msg)
			}
		}
	}
	// Every process has the file-stream tracepoints (the paper instruments
	// Java's FileInputStream/FileOutputStream via the boot classpath to
	// capture all direct disk IO — Fig 1c).
	p.fileIn = p.Define("FileInputStream.read", "length")
	p.fileOut = p.Define("FileOutputStream.write", "length")
	// Every server also has generic RPC boundary tracepoints, the natural
	// home of the paper's Q8 latency query.
	p.rpcRecv = p.Define("RPC.Receive", "method")
	p.rpcResp = p.Define("RPC.Respond", "method")
	return p
}

// DiskRead reads n bytes from the process's local disk, contending with
// other disk users on the host and crossing the FileInputStream tracepoint.
func (p *Process) DiskRead(ctx context.Context, n float64) {
	p.fileIn.Here(ctx, n)
	p.Host.DiskRead(n)
}

// DiskWrite writes n bytes to the process's local disk.
func (p *Process) DiskWrite(ctx context.Context, n float64) {
	p.fileOut.Here(ctx, n)
	p.Host.DiskWrite(n)
}

// Proc returns the process named "procName" on hostName, or nil.
func (c *Cluster) Proc(hostName, procName string) *Process {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byName[hostName+"/"+procName]
}

// Procs returns all processes in start order.
func (c *Cluster) Procs() []*Process {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Process(nil), c.procs...)
}

// FlushAgents forces every agent to report immediately (used at experiment
// shutdown so the final interval is not lost). With a combiner tree
// enabled, the tiers are flushed afterwards in dataflow order so the
// agents' final reports reach the frontends too.
func (c *Cluster) FlushAgents() {
	for _, p := range c.Procs() {
		if p.Agent != nil {
			p.Agent.Flush()
		}
	}
	c.FlushTree()
}

// WeaveAll weaves advice into the named tracepoint in every process that
// defines it, returning the number of weaves. Used by the baseline
// global-evaluation strategy, which bypasses agents.
func (c *Cluster) WeaveAll(tpName string, adv tracepoint.Advice) int {
	n := 0
	for _, p := range c.Procs() {
		if p.Reg.Lookup(tpName) != nil {
			if p.Reg.Weave(tpName, adv) == nil {
				n++
			}
		}
	}
	return n
}

// Define declares a tracepoint in this process and mirrors the definition
// into the cluster's master registry (the query vocabulary).
func (p *Process) Define(name string, exports ...string) *tracepoint.Tracepoint {
	p.C.PT.Registry().Define(name, exports...)
	return p.Reg.Define(name, exports...)
}

// Context returns the base context for code executing in this process:
// process identity and the virtual clock, but no request baggage.
func (p *Process) Context() context.Context {
	ctx := tracepoint.WithProc(context.Background(), p.Info)
	return tracepoint.WithClock(ctx, clock{env: p.C.Env})
}

// NewRequest returns a context for a fresh request originating in this
// process: identity, clock, and new empty baggage. The process's agent
// mints the request's sampling decision here — once, before the request
// can split — so every tracepoint on its causal path sees one verdict.
func (p *Process) NewRequest() context.Context {
	bag := baggage.New()
	if p.Agent != nil {
		p.Agent.MintSampleDecision(bag)
	}
	return baggage.NewContext(p.Context(), bag)
}

// In adapts a context to this process: the same request baggage, but this
// process's identity and clock. Used when an execution logically moves into
// another process without an RPC (e.g. a task launching in a container).
func (p *Process) In(ctx context.Context) context.Context {
	ctx = tracepoint.WithProc(ctx, p.Info)
	return tracepoint.WithClock(ctx, clock{env: p.C.Env})
}

// reenter adapts an inbound context to this process: same baggage and
// deadline, this process's identity.
func (p *Process) reenter(ctx context.Context, bag *baggage.Baggage) context.Context {
	ctx = tracepoint.WithProc(ctx, p.Info)
	ctx = tracepoint.WithClock(ctx, clock{env: p.C.Env})
	return baggage.NewContext(ctx, bag)
}
