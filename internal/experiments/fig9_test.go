package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig9LimplockDiagnosis(t *testing.T) {
	cfg := Fig9Config{
		Hosts:     4,
		Duration:  20 * time.Second,
		FaultAt:   10 * time.Second,
		FaultHost: 1,
		Scanners:  3,
		Getters:   2,
	}
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) == 0 {
		t.Fatal("no request latencies recorded")
	}

	// The diagnosis: DN transfer spans for flows touching the faulty host
	// must blow up after the fault, far beyond flows between healthy
	// hosts. Keys are "src/dst" pairs.
	faulty := res.FaultHost
	afterXfer := res.After["DN transfer"]
	var worstFaulty, worstHealthy float64
	for key, v := range afterXfer {
		if strings.Contains(key, faulty) {
			if v > worstFaulty {
				worstFaulty = v
			}
		} else if v > worstHealthy {
			worstHealthy = v
		}
	}
	if worstFaulty <= 0 {
		t.Fatalf("no DN transfer spans touching faulty host: %v", afterXfer)
	}
	if worstFaulty < 3*worstHealthy {
		t.Errorf("faulty-host transfers (%.3fs) not clearly worse than healthy (%.3fs): %v",
			worstFaulty, worstHealthy, afterXfer)
	}

	// 9c: the faulty host's network throughput must drop after the fault.
	pts := res.NetworkTx[faulty]
	var before, after float64
	var nb, na int
	for _, p := range pts {
		if p.T <= cfg.FaultAt {
			before += p.V
			nb++
		} else {
			after += p.V
			na++
		}
	}
	if nb > 0 && na > 0 && after/float64(na) > before/float64(nb) {
		t.Errorf("faulty host tx did not drop: before=%.0f after=%.0f",
			before/float64(nb), after/float64(na))
	}

	out := res.Render()
	for _, want := range []string{"9a", "9b", "9c", "faulty host"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
