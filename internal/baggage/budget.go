package baggage

import (
	"strings"

	"repro/internal/tuple"
)

// This file implements per-request baggage budgets: a byte/tuple cap
// enforced at pack time with merge-safe, accounted truncation.
//
// Eviction must commute with Split/Join to keep accounting exact: a group
// evicted on one branch could otherwise re-enter the merged result from a
// pre-split frozen instance, or be re-packed after the eviction, silently
// undoing the drop (or worse, double-counting it). Both holes are closed
// with tombstones: every eviction records a (slot, groupKey) tuple — or
// (slot, "") for a whole-slot eviction — in a reserved UNION slot. Union
// sets are monotonic (a tombstone survives every join), tombstoned keys
// refuse re-packs, and Unpack suppresses tombstoned groups from the merged
// view. The result is that each group key is exclusively either fully
// reported (byte-exact) or tombstoned, so reported + dropped reconciles
// exactly against an unbudgeted oracle.
//
// Evictions take whole groups, never partial state, and only from the
// active (branch-private) instance; frozen instances are read-only by
// construction. Budgets are scoped per query (slot-name prefix up to the
// first '.'), so one query exhausting its budget cannot evict another
// query's tuples.

// DropSlot is the reserved slot carrying eviction tombstones. The leading
// '!' keeps it outside every query's slot namespace (query slots are
// "<queryID>.<alias>"), and it is excluded from budget accounting and
// eviction so recording drops can never cascade into more drops.
const DropSlot = "!pt.drops"

// dropSpec stores tombstones as (slot, groupKey) string pairs in a UNION
// set: Pack dedups, Join unions, and nothing ever evicts or replaces them.
var dropSpec = SetSpec{Kind: Union, Fields: tuple.Schema{"slot", "key"}}

// TraceSlot is the reserved slot carrying the causal span frontier (a
// trace id plus the ids of the execution's current frontier spans, see
// internal/spans). Like DropSlot it lives outside the query namespace via
// the leading '!', and it is explicitly excluded from budget accounting
// and victim selection: a query exhausting its budget must evict its own
// data, never the request's causal identity, and an evicted trace slot
// must never surface in a query's drop accounting. The slot is intrinsically
// tiny — FRONTIER retention keeps one (trace, span) pair per live branch.
const TraceSlot = "!pt.trace"

// TraceSpec stores the span frontier: FRONTIER retention replaces the
// branch's tuple on every pack and unions distinct tuples at joins —
// X-Trace-style event identifiers. Each tuple is (trace id, span id,
// virtual-time start of that span's crossing); carrying the start lets the
// next crossing compute its segment duration locally, keeping span records
// fixed-size with no cross-process clock exchange.
var TraceSpec = SetSpec{Kind: Frontier, Fields: tuple.Schema{"trace", "span", "start"}}

// Default budget: generous enough that well-behaved queries (the paper's
// fixed-size AGG rewrites) never hit it, small enough to bound the in-band
// metadata overhead of a pathological one.
const (
	DefaultMaxBytes  = 64 << 10 // 64 KiB of encoded tuple content per query
	DefaultMaxTuples = 1024     // stored tuples (groups for AGG) per query
)

// Budget caps one query's baggage footprint. Zero fields select the
// defaults above; negative fields disable that cap.
type Budget struct {
	MaxBytes  int
	MaxTuples int
}

// maxBytes resolves the byte cap: -1 means unlimited.
func (b Budget) maxBytes() int {
	switch {
	case b.MaxBytes < 0:
		return -1
	case b.MaxBytes == 0:
		return DefaultMaxBytes
	default:
		return b.MaxBytes
	}
}

// maxTuples resolves the tuple cap: -1 means unlimited.
func (b Budget) maxTuples() int {
	switch {
	case b.MaxTuples < 0:
		return -1
	case b.MaxTuples == 0:
		return DefaultMaxTuples
	default:
		return b.MaxTuples
	}
}

// DropRecord is one eviction tombstone: the slot it applies to and the
// evicted group key ("" for a whole-slot eviction of a non-AGG set). Keys
// are the set's internal encoded group identity — opaque, but stable
// across processes, which is all exact accounting needs.
type DropRecord struct {
	Slot string
	Key  string
}

// PackStats accounts one PackBudgeted call. Every tuple offered is either
// packed or refused; every eviction is counted in groups, tuples, and
// bytes. Nothing is dropped silently.
type PackStats struct {
	Packed        int64 // tuples stored
	RefusedTuples int64 // tuples refused because their slot/group is tombstoned
	EvictedGroups int64 // tombstones written (whole slots count as one)
	EvictedTuples int64 // stored tuples removed by eviction
	EvictedBytes  int64 // content bytes removed by eviction
}

// Add accumulates o into s.
func (s *PackStats) Add(o PackStats) {
	s.Packed += o.Packed
	s.RefusedTuples += o.RefusedTuples
	s.EvictedGroups += o.EvictedGroups
	s.EvictedTuples += o.EvictedTuples
	s.EvictedBytes += o.EvictedBytes
}

// PackBudgeted packs tuples like Pack but enforces the budget over the
// slot's query (all slots sharing the slot-name prefix up to the first
// '.'): tombstoned slots/groups refuse the pack, and after packing, whole
// lowest-priority groups are evicted — largest slot first, oldest group
// first — until the query is back under budget. All outcomes are counted
// in the returned PackStats.
func (b *Baggage) PackBudgeted(slot string, spec SetSpec, budget Budget, tuples ...tuple.Tuple) PackStats {
	var st PackStats
	set := b.active().set(slot, spec)
	whole, keys := b.evictions(slot)
	// Group keys are only needed to honor per-group tombstones; the common
	// case — no eviction has ever hit this slot — skips key construction
	// entirely, keeping the steady-state budgeted pack allocation-free.
	var ks *scratch
	if len(keys) > 0 && spec.Kind == Agg {
		ks = getScratch()
	}
	for _, t := range tuples {
		if whole {
			st.RefusedTuples++
			continue
		}
		if ks != nil {
			ks.buf = t.AppendKey(ks.buf[:0], spec.GroupBy)
			if keys[string(ks.buf)] {
				st.RefusedTuples++
				continue
			}
		}
		set.Pack(t)
		st.Packed++
	}
	if ks != nil {
		putScratch(ks)
	}
	b.raw = nil
	st.EvictedGroups, st.EvictedTuples, st.EvictedBytes = b.enforce(budget, queryPrefix(slot))
	if m := meters.Load(); m != nil {
		m.TuplesPacked.Add(st.Packed)
		m.PackRefused.Add(st.RefusedTuples)
		m.EvictedGroups.Add(st.EvictedGroups)
		m.EvictedTuples.Add(st.EvictedTuples)
		m.EvictedBytes.Add(st.EvictedBytes)
	}
	return st
}

// enforce evicts whole groups from the active instance until the query's
// usage fits the budget or no evictable content remains (frozen instances
// are read-only; their contribution can only be suppressed by tombstones
// already written on this branch).
func (b *Baggage) enforce(budget Budget, prefix string) (groups, tuples, bytes int64) {
	maxB, maxT := budget.maxBytes(), budget.maxTuples()
	if maxB < 0 && maxT < 0 {
		return
	}
	for {
		ub, ut := b.usage(prefix)
		if (maxB < 0 || ub <= maxB) && (maxT < 0 || ut <= maxT) {
			return
		}
		slot, victim := b.victim(prefix)
		if victim == nil {
			return
		}
		if victim.Spec.Kind == Agg {
			key := victim.order[0] // oldest group first
			cost := victim.removeGroup(key)
			b.recordDrop(slot, key)
			groups++
			tuples++
			bytes += int64(cost)
		} else {
			by, tu := victim.clear()
			b.recordDrop(slot, "")
			groups++
			tuples += int64(tu)
			bytes += int64(by)
		}
	}
}

// usage sums the query's content cost and stored-tuple count across every
// instance (active and frozen) — the same contents a serialize would ship.
// The drop slot is excluded so accounting never triggers eviction, the
// trace slot is excluded so span capture never charges a query's budget,
// and the sample slot is excluded so a request's sampling identity never
// competes with query data for space.
func (b *Baggage) usage(prefix string) (bytes, tuples int) {
	b.ensureDecoded()
	for _, in := range b.insts {
		for _, slot := range in.order {
			if slot == DropSlot || slot == TraceSlot || slot == SampleSlot || queryPrefix(slot) != prefix {
				continue
			}
			s := in.slots[slot]
			bytes += s.CostBytes()
			tuples += s.Len()
		}
	}
	return
}

// victim picks the next slot to evict from: an active-instance slot of the
// query with the largest content cost (ties go to the earliest-created
// slot). Only the active instance is eligible — frozen instances are
// shared with sibling branches and must stay immutable.
func (b *Baggage) victim(prefix string) (string, *Set) {
	act := b.active()
	var bestSlot string
	var best *Set
	for _, slot := range act.order {
		if slot == DropSlot || slot == TraceSlot || slot == SampleSlot || queryPrefix(slot) != prefix {
			continue
		}
		s := act.slots[slot]
		if s.Len() == 0 {
			continue
		}
		if best == nil || s.CostBytes() > best.CostBytes() {
			best, bestSlot = s, slot
		}
	}
	return bestSlot, best
}

// recordDrop writes one tombstone into the active instance's drop slot.
func (b *Baggage) recordDrop(slot, key string) {
	b.active().set(DropSlot, dropSpec).Pack(tuple.Tuple{tuple.String(slot), tuple.String(key)})
}

// evictions collects the tombstones targeting slot across every instance:
// whether the whole slot is tombstoned, and the set of tombstoned group
// keys.
func (b *Baggage) evictions(slot string) (whole bool, keys map[string]bool) {
	b.ensureDecoded()
	for _, in := range b.insts {
		ds, ok := in.slots[DropSlot]
		if !ok {
			continue
		}
		for _, t := range ds.tuples {
			if len(t) != 2 || t[0].Str() != slot {
				continue
			}
			k := t[1].Str()
			if k == "" {
				return true, nil
			}
			if keys == nil {
				keys = make(map[string]bool)
			}
			keys[k] = true
		}
	}
	return false, keys
}

// HasDrops reports whether any eviction tombstones are present.
func (b *Baggage) HasDrops() bool {
	if b == nil {
		return false
	}
	b.ensureDecoded()
	for _, in := range b.insts {
		if s, ok := in.slots[DropSlot]; ok && s.Len() > 0 {
			return true
		}
	}
	return false
}

// DropRecords returns the deduplicated eviction tombstones for the given
// query prefix ("" for all queries), in first-recorded order. Advice reads
// these at the final tracepoint of a request so agents and the frontend
// can reconcile reported groups + dropped groups against the true total.
func (b *Baggage) DropRecords(prefix string) []DropRecord {
	if b == nil {
		return nil
	}
	b.ensureDecoded()
	var acc *Set
	for _, in := range b.insts {
		s, ok := in.slots[DropSlot]
		if !ok || s.Len() == 0 {
			continue
		}
		if acc == nil {
			acc = s.Clone()
		} else {
			acc.Merge(s)
		}
	}
	if acc == nil {
		return nil
	}
	var out []DropRecord
	for _, t := range acc.tuples {
		if len(t) != 2 {
			continue
		}
		slot := t[0].Str()
		if prefix != "" && queryPrefix(slot) != prefix {
			continue
		}
		out = append(out, DropRecord{Slot: slot, Key: t[1].Str()})
	}
	return out
}

// queryPrefix is the query-scoping portion of a slot name: the text before
// the first '.'. Compiled plans name slots "<queryID>.<alias>", so slots
// of one query share a prefix and budgets never cross queries.
func queryPrefix(slot string) string {
	if i := strings.IndexByte(slot, '.'); i >= 0 {
		return slot[:i]
	}
	return slot
}
