// Command limplock reproduces the §6.2 end-to-end latency case studies:
//
//	limplock          network limplock (Fig 9): one NIC degrades 1G -> 100M
//	limplock -gc      rogue garbage collection in an HBase RegionServer
//	limplock -nnlock  NameNode overload from exclusive write locking
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	gc := flag.Bool("gc", false, "run the rogue-GC replication instead")
	nnlock := flag.Bool("nnlock", false, "run the NameNode locking replication instead")
	hosts := flag.Int("hosts", 8, "worker host count")
	duration := flag.Duration("duration", 0, "virtual experiment duration (0 = default)")
	flag.Parse()

	start := time.Now()
	var render string
	var dur time.Duration
	switch {
	case *gc:
		cfg := experiments.DefaultGCConfig()
		cfg.Hosts = *hosts
		if *duration > 0 {
			cfg.Duration = *duration
		}
		dur = cfg.Duration
		res, err := experiments.RunGC(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "limplock:", err)
			os.Exit(1)
		}
		render = res.Render()
	case *nnlock:
		cfg := experiments.DefaultNNLockConfig()
		cfg.Hosts = *hosts
		if *duration > 0 {
			cfg.Duration = *duration
		}
		dur = 2 * cfg.Duration
		res, err := experiments.RunNNLock(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "limplock:", err)
			os.Exit(1)
		}
		render = res.Render()
	default:
		cfg := experiments.DefaultFig9Config()
		cfg.Hosts = *hosts
		if *duration > 0 {
			cfg.Duration = *duration
		}
		dur = cfg.Duration
		res, err := experiments.RunFig9(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "limplock:", err)
			os.Exit(1)
		}
		render = res.Render()
	}
	fmt.Print(render)
	fmt.Printf("\n(%v of virtual time simulated in %v)\n",
		dur, time.Since(start).Round(time.Millisecond))
}
