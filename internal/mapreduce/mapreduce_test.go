package mapreduce

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/simtime"
	"repro/internal/yarn"
)

func testFramework(env *simtime.Env, hosts int) (*cluster.Cluster, *Framework, *cluster.Process) {
	cfg := cluster.DefaultConfig()
	cfg.RPCLatency = 0
	c := cluster.New(env, cfg)
	nn := hdfs.NewNameNode(c, "master", hdfs.DefaultConfig())
	rm := yarn.NewResourceManager(c, "master")
	for i := 0; i < hosts; i++ {
		h := hostName(i)
		hdfs.NewDataNode(c, h, nn)
		yarn.NewNodeManager(c, h, rm, 0)
	}
	fw := New(c, rm, nn, hdfs.ClientConfig{})
	client := c.Start("edge", "MRCLIENT")
	return c, fw, client
}

func hostName(i int) string { return string(rune('a'+i)) + "-host" }

// prepareInput registers a job input file.
func prepareInput(c *cluster.Cluster, fw *Framework, size float64) string {
	admin := c.Start("master", "mradmin")
	fs := hdfs.NewClient(admin, fw.NN, hdfs.ClientConfig{})
	if err := fs.CreateMetadataOnly(admin.NewRequest(), "/in", size); err != nil {
		panic(err)
	}
	return "/in"
}

func TestJobRunsToCompletion(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, fw, client := testFramework(env, 3)
		input := prepareInput(c, fw, 300e6) // 3 splits
		err := fw.Submit(client.NewRequest(), client, JobConfig{Name: "sort", Input: input})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestJobMissingInputErrors(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, fw, client := testFramework(env, 2)
		err := fw.Submit(client.NewRequest(), client, JobConfig{Name: "bad", Input: "/missing"})
		if err == nil {
			t.Fatal("expected error for missing input")
		}
	})
}

func TestJobTaskCountsMatchSplits(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, fw, client := testFramework(env, 4)
		input := prepareInput(c, fw, 512e6) // 4 splits
		c.PT.Registry().Define("AM.MapTaskComplete", "id")
		c.PT.Registry().Define("AM.ReduceTaskComplete", "id")
		h, err := c.PT.Install(
			`From m In AM.MapTaskComplete GroupBy m.id Select m.id, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := c.PT.Install(
			`From r In AM.ReduceTaskComplete GroupBy r.id Select r.id, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.Submit(client.NewRequest(), client, JobConfig{
			Name: "sort", Input: input, Reducers: 2,
		}); err != nil {
			t.Fatal(err)
		}
		c.FlushAgents()
		maps := h.Rows()
		if len(maps) != 1 || maps[0][1].Int() != 4 {
			t.Errorf("map completions = %v, want 4", maps)
		}
		reds := hr.Rows()
		if len(reds) != 1 || reds[0][1].Int() != 2 {
			t.Errorf("reduce completions = %v, want 2", reds)
		}
	})
}

func TestJobCompleteJoinableWithClient(t *testing.T) {
	// The Fig 1b property at the MapReduce level: JobComplete events are
	// attributable to the submitting client via the happened-before join.
	env := simtime.NewEnv()
	env.Run(func() {
		c, fw, client := testFramework(env, 3)
		input := prepareInput(c, fw, 256e6)
		c.PT.Registry().Define("JobComplete", "id")
		c.PT.Registry().Define("ClientProtocols")
		h, err := c.PT.Install(
			`From j In JobComplete
			 Join cl In First(ClientProtocols) On cl -> j
			 GroupBy cl.procName
			 Select cl.procName, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.Submit(client.NewRequest(), client, JobConfig{Name: "s", Input: input}); err != nil {
			t.Fatal(err)
		}
		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 1 || rows[0][0].Str() != "MRCLIENT" || rows[0][1].Int() != 1 {
			t.Fatalf("rows = %v, want (MRCLIENT, 1)", rows)
		}
	})
}

func TestConcurrentJobsShareCluster(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, fw, _ := testFramework(env, 3)
		input := prepareInput(c, fw, 256e6)
		clients := []*cluster.Process{
			c.Start("edge", "JOB-A"),
			c.Start("edge", "JOB-B"),
		}
		wg := env.NewWaitGroup()
		errs := make([]error, len(clients))
		for i, cl := range clients {
			i, cl := i, cl
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				errs[i] = fw.Submit(cl.NewRequest(), cl, JobConfig{Name: "j", Input: input})
			})
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Errorf("job %d: %v", i, err)
			}
		}
	})
}

func TestShuffleMovesDataOverNetwork(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, fw, client := testFramework(env, 3)
		input := prepareInput(c, fw, 256e6)
		// The shuffle-service tracepoint is defined lazily with the task
		// processes; declare it in the vocabulary first.
		c.PT.Registry().Define("MapOutputServlet", "size")
		h, err := c.PT.Install(
			`From f In MapOutputServlet
			 GroupBy f.procName
			 Select f.procName, SUM(f.size)`)
		if err != nil {
			t.Fatal(err)
		}
		if err := fw.Submit(client.NewRequest(), client, JobConfig{Name: "s", Input: input}); err != nil {
			t.Fatal(err)
		}
		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 1 {
			t.Fatalf("rows = %v", rows)
		}
		// A sort job shuffles its full input.
		if got := rows[0][1].Float(); got < 255e6 || got > 257e6 {
			t.Errorf("shuffled bytes = %v, want ~256e6", got)
		}
	})
}

func TestJobDurationScalesWithInput(t *testing.T) {
	run := func(size float64) time.Duration {
		env := simtime.NewEnv()
		var dur time.Duration
		env.Run(func() {
			c, fw, client := testFramework(env, 4)
			input := prepareInput(c, fw, size)
			start := env.Now()
			if err := fw.Submit(client.NewRequest(), client, JobConfig{Name: "s", Input: input}); err != nil {
				t.Error(err)
				return
			}
			dur = env.Now() - start
		})
		return dur
	}
	small := run(128e6)
	big := run(1024e6)
	if big < 2*small {
		t.Fatalf("8x input: %v vs %v — duration did not scale", small, big)
	}
}
