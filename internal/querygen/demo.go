package querygen

import (
	"time"

	"repro/internal/tuple"
)

// DemoCase is the fixed, hand-built case shared by the cmd demo tools
// (pttrace -demo, ptq -explain-analyze) and the tracing acceptance
// tests: a storage-style request with a known split/join shape, so the
// reconstructed span DAG can be checked node by node.
//
// Virtual timeline (delays accumulate on one clock; transfers add small
// simulated network time on top):
//
//	t≈1ms   Demo.Request  fires at h0/api      (root span)
//	        split; both branches transfer to the datanodes
//	t≈3ms   Demo.Read     fires at h1/dn1      (parent: Request)
//	t≈6ms   Demo.Read     fires at h2/dn2      (parent: Request)
//	        join; transfer back to the api tier
//	t≈10ms  Demo.Respond  fires at h0/api      (parents: both Reads)
//
// The query is a raw happened-before join — no grouping, no aggregation —
// so the pipeline emits exactly one tuple per (Read -> Respond) pair and
// the EMIT counter must equal the oracle's row count exactly: the
// reconciliation the EXPLAIN ANALYZE acceptance test pins.
func DemoCase() *Case {
	c := &Case{Seed: -1}
	c.TPs = []TP{
		{Name: "Demo.Request", Fields: []Field{{"size", tuple.KindInt}}},
		{Name: "Demo.Read", Fields: []Field{{"bytes", tuple.KindInt}}},
		{Name: "Demo.Respond", Fields: []Field{{"status", tuple.KindString}}},
	}
	const reqTP, readTP, respTP = 0, 1, 2
	c.NumProcs = 3
	c.Hosts = []string{"h0", "h1", "h2"}
	c.ProcNames = []string{"api", "dn1", "dn2"}
	c.QueryText = "From r In Demo.Respond Join rd In Demo.Read On rd -> r Select rd.host, rd.bytes"

	fire := func(branch, tp, proc int, delay time.Duration, args ...tuple.Value) {
		ev := Event{ID: len(c.Events), TP: tp, Proc: proc, Args: args}
		c.Events = append(c.Events, ev)
		c.Ops = append(c.Ops, Op{Kind: OpFire, Delay: delay, Branch: branch, Event: ev.ID})
	}
	fire(0, reqTP, 0, time.Millisecond, tuple.Int(4096))
	c.Ops = append(c.Ops,
		Op{Kind: OpSplit, Branch: 0},
		Op{Kind: OpTransfer, Branch: 0, Proc: 1},
		Op{Kind: OpTransfer, Branch: 1, Proc: 2},
	)
	fire(0, readTP, 1, 2*time.Millisecond, tuple.Int(1024))
	fire(1, readTP, 2, 3*time.Millisecond, tuple.Int(2048))
	c.Ops = append(c.Ops,
		Op{Kind: OpJoin, Branch: 0, Other: 1},
		Op{Kind: OpTransfer, Branch: 0, Proc: 0},
	)
	fire(0, respTP, 0, 4*time.Millisecond, tuple.String("ok"))
	return c
}
