package plan

import (
	"fmt"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/tuple"
)

// layout describes the working tuple at one alias's advice: the qualified
// field names, the reference-to-position bindings used by filters and
// computes, and the positions of pushed-down partial aggregates.
type layout struct {
	schema     tuple.Schema
	bindings   map[query.FieldRef]int
	partialPos map[int]int // Select index -> working-tuple position
	observed   []query.FieldRef
}

func qualified(r query.FieldRef) string { return r.Alias + "." + r.Field }

// observedRefs returns the references originating at this alias, in
// reference-list order, plus any pushed-aggregate arguments observed here.
func (qc *queryCompiler) observedRefs(node *aliasNode) []query.FieldRef {
	var out []query.FieldRef
	have := map[query.FieldRef]bool{}
	for _, r := range qc.refList {
		if r.Alias == node.name {
			out = append(out, r)
			have[r] = true
		}
	}
	for i := 0; i < len(qc.q.Select); i++ {
		if qc.pushed[i] != node.name {
			continue
		}
		arg := qc.q.Select[i].Expr.(query.FieldRef)
		if !have[arg] {
			out = append(out, arg)
			have[arg] = true
		}
	}
	return out
}

// buildLayout computes the working-tuple layout at node's advice.
func (qc *queryCompiler) buildLayout(node *aliasNode) *layout {
	l := &layout{
		bindings:   map[query.FieldRef]int{},
		partialPos: map[int]int{},
	}
	l.observed = qc.observedRefs(node)
	for _, r := range l.observed {
		l.bindings[r] = len(l.schema)
		l.schema = append(l.schema, qualified(r))
	}
	for _, uname := range node.upstreams {
		u := qc.nodes[uname]
		for _, pf := range u.packFields {
			pos := len(l.schema)
			l.schema = append(l.schema, pf.name)
			if pf.isPartial {
				l.partialPos[pf.selIdx] = pos
				continue
			}
			l.bindings[pf.ref] = pos
			// Single-column subqueries are also referenceable by their
			// bare alias (Q9's AVERAGE(latencyMeasurement)).
			if sub, ok := qc.a.Subqueries[pf.ref.Alias]; ok && len(query.OutputSchema(sub)) == 1 {
				l.bindings[query.FieldRef{Alias: pf.ref.Alias}] = pos
			}
		}
	}
	return l
}

// carryFields computes the pack columns for a join alias: every reference
// available here that some strictly-shallower alias still needs, plus the
// partial aggregates pushed to this alias.
func (qc *queryCompiler) carryFields(node *aliasNode) []packField {
	av := qc.avail(node.name)
	var pfs []packField
	for _, r := range qc.refList {
		if av[r.Alias] && qc.sinkDepth[r] < node.depth {
			pfs = append(pfs, packField{name: qualified(r), ref: r})
		}
	}
	for i := 0; i < len(qc.q.Select); i++ {
		if qc.pushed[i] != node.name {
			continue
		}
		si := qc.q.Select[i]
		arg := si.Expr.(query.FieldRef)
		pfs = append(pfs, packField{
			name:      fmt.Sprintf("%s.%s(%s)", node.name, si.Agg, arg.Field),
			ref:       arg,
			isPartial: true,
			selIdx:    i,
			fn:        si.Agg,
		})
	}
	return pfs
}

// setKind maps a join's temporal filter to the baggage retention kind.
func setKind(f query.TempFilter) baggage.SetKind {
	switch f {
	case query.FilterFirst:
		return baggage.First
	case query.FilterFirstN:
		return baggage.FirstN
	case query.FilterMostRecent:
		return baggage.Recent
	case query.FilterMostRecentN:
		return baggage.RecentN
	default:
		return baggage.All
	}
}

// buildPack constructs the PackOp for a join alias from its pack fields.
func buildPack(node *aliasNode, l *layout) *advice.PackOp {
	spec := baggage.SetSpec{Kind: setKind(node.filter), N: node.n}
	op := &advice.PackOp{Slot: node.slot}
	raws := 0
	hasPartial := false
	for _, pf := range node.packFields {
		spec.Fields = append(spec.Fields, pf.name)
		op.Source = append(op.Source, l.bindings[pf.ref])
		if pf.isPartial {
			hasPartial = true
		} else {
			raws++
		}
	}
	if hasPartial {
		spec.Kind = baggage.Agg
		spec.N = 0
		for i := 0; i < raws; i++ {
			spec.GroupBy = append(spec.GroupBy, i)
		}
		k := raws
		for _, pf := range node.packFields {
			if pf.isPartial {
				spec.Aggs = append(spec.Aggs, baggage.AggField{Pos: k, Fn: pf.fn})
				k++
			}
		}
	}
	op.Spec = spec
	return op
}

// newProgram builds the common Observe/Unpack/Filter scaffolding of the
// advice at node for the given tracepoint.
func (qc *queryCompiler) newProgram(node *aliasNode, tpName string, l *layout) (*advice.Program, error) {
	tp := qc.c.reg.Lookup(tpName)
	if tp == nil {
		return nil, fmt.Errorf("plan: unknown tracepoint %q", tpName)
	}
	prog := &advice.Program{
		QueryID:    qc.c.rootID,
		Tracepoint: tpName,
		Safety:     qc.c.opts.Safety,
	}
	for _, r := range l.observed {
		pos := tp.Schema().Index(r.Field)
		if pos < 0 {
			return nil, fmt.Errorf("plan: %s does not export %q", tpName, r.Field)
		}
		prog.Observe = append(prog.Observe, pos)
		prog.ObserveFields = append(prog.ObserveFields, qualified(r))
	}
	for _, uname := range node.upstreams {
		u := qc.nodes[uname]
		var fields tuple.Schema
		for _, pf := range u.packFields {
			fields = append(fields, pf.name)
		}
		prog.Unpacks = append(prog.Unpacks, advice.UnpackOp{Slot: u.slot, Fields: fields})
	}
	for _, w := range qc.filtersAt[node.name] {
		prog.Filters = append(prog.Filters, advice.FilterOp{Expr: w, Bindings: l.bindings})
	}
	return prog, nil
}

// compileJoinAlias emits the advice program for one joined tracepoint
// alias: observe, unpack upstream slots, filter, pack onward.
func (qc *queryCompiler) compileJoinAlias(node *aliasNode) error {
	l := qc.buildLayout(node)
	node.packFields = qc.carryFields(node)
	prog, err := qc.newProgram(node, node.tracepoints[0], l)
	if err != nil {
		return err
	}
	prog.Pack = buildPack(node, l)
	qc.p.Programs = append(qc.p.Programs, prog)
	return nil
}

// compileSubquery inline-compiles a named query used as a join source: the
// subquery's own advice chain is generated with this query's slot as the
// pack target.
func (qc *queryCompiler) compileSubquery(node *aliasNode) error {
	subA, err := query.Analyze(node.sub, qc.c.reg, qc.c.named)
	if err != nil {
		return fmt.Errorf("plan: subquery %s: %w", node.name, err)
	}
	if len(node.sub.GroupBy) > 0 {
		return fmt.Errorf("plan: subquery %q must not use GroupBy", node.sub.Name)
	}
	for _, si := range node.sub.Select {
		if si.HasAgg {
			return fmt.Errorf("plan: subquery %q must not aggregate", node.sub.Name)
		}
	}
	target := &packTarget{slot: node.slot, filter: node.filter, n: node.n, prefix: node.name}
	if err := qc.c.compileQuery(qc.p, subA, qc.qid+"."+node.name, target); err != nil {
		return err
	}
	for _, col := range query.OutputSchema(node.sub) {
		node.packFields = append(node.packFields, packField{
			name: node.name + "." + col,
			ref:  query.FieldRef{Alias: node.name, Field: col},
		})
	}
	return nil
}

// compileFrom emits the program(s) for the From alias: the Emit operation
// for a top-level query, or the output Pack for a subquery.
func (qc *queryCompiler) compileFrom(target *packTarget) error {
	node := qc.nodes[qc.q.From.Alias]
	l := qc.buildLayout(node)

	// Column positions per Select item; computed expressions append
	// columns to the working tuple.
	var computes []advice.ComputeOp
	colPos := make([]int, len(qc.q.Select))
	for i, si := range qc.q.Select {
		switch {
		case qc.pushed[i] != "":
			colPos[i] = l.partialPos[i]
		case si.HasAgg && si.Expr == nil: // bare COUNT
			colPos[i] = -1
		default:
			if f, ok := si.Expr.(query.FieldRef); ok {
				colPos[i] = l.bindings[qc.canon(f)]
				continue
			}
			colPos[i] = len(l.schema) + len(computes)
			computes = append(computes, advice.ComputeOp{Expr: si.Expr, Bindings: l.bindings})
		}
	}

	build := func(tpName string) (*advice.Program, error) {
		prog, err := qc.newProgram(node, tpName, l)
		if err != nil {
			return nil, err
		}
		prog.Computes = computes
		if target != nil {
			// Subquery: pack the output columns to the outer slot.
			spec := baggage.SetSpec{Kind: setKind(target.filter), N: target.n}
			op := &advice.PackOp{Slot: target.slot}
			for i, col := range query.OutputSchema(qc.q) {
				spec.Fields = append(spec.Fields, target.prefix+"."+col)
				op.Source = append(op.Source, colPos[i])
			}
			op.Spec = spec
			prog.Pack = op
			return prog, nil
		}
		emit := &advice.EmitOp{Schema: qc.p.Schema}
		hasAgg := false
		for i, si := range qc.q.Select {
			col := advice.EmitCol{Pos: colPos[i]}
			if si.HasAgg {
				hasAgg = true
				col.IsAgg = true
				col.Fn = si.Agg
				if qc.pushed[i] != "" {
					col.Fn = si.Agg.Combiner()
				}
			}
			emit.Cols = append(emit.Cols, col)
		}
		for _, g := range qc.q.GroupBy {
			emit.GroupBy = append(emit.GroupBy, l.bindings[qc.canon(g)])
		}
		emit.Raw = !hasAgg && len(qc.q.GroupBy) == 0
		prog.Emit = emit
		return prog, nil
	}

	for i, tpName := range node.tracepoints {
		prog, err := build(tpName)
		if err != nil {
			return err
		}
		if target == nil && qc.c.opts.SampleEvery > 1 {
			prog.SampleEvery = qc.c.opts.SampleEvery
		}
		qc.p.Programs = append(qc.p.Programs, prog)
		if target == nil && i == 0 {
			qc.p.Emit = prog
		}
	}
	return nil
}
