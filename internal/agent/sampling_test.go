package agent

import (
	"context"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// sampledProgram is q1Program with request-level sampling enabled.
func sampledProgram(rate float64) *advice.Program {
	p := q1Program()
	p.SampleRate = rate
	return p
}

// sampledRequest builds a request context the way a monitored process's
// NewRequest does: fresh baggage with the agent's minted decision.
func sampledRequest(a *Agent, host string) (context.Context, *baggage.Baggage) {
	ctx := tracepoint.WithProc(context.Background(), info(host))
	bag := baggage.New()
	a.MintSampleDecision(bag)
	return baggage.NewContext(ctx, bag), bag
}

// TestMintedDecisionSuppressesOrWeighs drives many requests through an
// agent with a sampled query installed: every request gets exactly one
// minted decision, suppressed crossings land in SampledOut, and the
// reported aggregate is the Horvitz-Thompson estimate — inexact, with
// weighted count and sum equal to kept/rate.
func TestMintedDecisionSuppressesOrWeighs(t *testing.T) {
	const (
		rate     = 0.5
		requests = 200
	)
	env := simtime.NewEnv()
	var reports []Report
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, resultReports(msg)...) })
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{sampledProgram(rate)}})

		kept := 0
		for i := 0; i < requests; i++ {
			ctx, bag := sampledRequest(a, "h1")
			r, ok := bag.SampleRate("Q")
			if !ok {
				t.Fatalf("request %d: no decision minted", i)
			}
			if r != 0 && r != rate {
				t.Fatalf("request %d: decision rate %v, want 0 or %v", i, r, rate)
			}
			if r > 0 {
				kept++
			}
			tp.Here(ctx, 1)
		}
		if kept == 0 || kept == requests {
			t.Fatalf("degenerate draw: kept %d of %d requests at rate %v", kept, requests, rate)
		}
		a.Flush()

		st := a.Stats()
		if st.SampledOut != int64(requests-kept) {
			t.Errorf("SampledOut = %d, want %d", st.SampledOut, requests-kept)
		}
		if st.SampleRateMilli != 500 {
			t.Errorf("SampleRateMilli = %d, want 500", st.SampleRateMilli)
		}
		if len(reports) != 1 || len(reports[0].Groups) != 1 {
			t.Fatalf("reports = %+v", reports)
		}
		s := reports[0].Groups[0].States[0]
		if s.Exact() {
			t.Error("weighted partial claims exact")
		}
		want := float64(kept) / rate // each kept crossing: one v=1 tuple at weight 1/rate
		if wc, ws := s.Weighted(); wc != want || ws != want {
			t.Errorf("Weighted() = (%v, %v), want (%v, %v)", wc, ws, want, want)
		}
		if got := s.Result().Float(); got != want {
			t.Errorf("weighted SUM = %v, want %v", got, want)
		}
	})
}

// TestMintedDecisionRateOneIsExact: rate 1 engages the decision path
// (every request is admitted at weight 1) yet the reported state stays
// on the exact path — no suppression, no approximate flag.
func TestMintedDecisionRateOneIsExact(t *testing.T) {
	env := simtime.NewEnv()
	var reports []Report
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, resultReports(msg)...) })
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{sampledProgram(1)}})

		for i := 0; i < 20; i++ {
			ctx, bag := sampledRequest(a, "h1")
			if r, ok := bag.SampleRate("Q"); !ok || r != 1 {
				t.Fatalf("request %d: decision = (%v, %v), want (1, true)", i, r, ok)
			}
			tp.Here(ctx, 2)
		}
		a.Flush()

		if st := a.Stats(); st.SampledOut != 0 {
			t.Errorf("SampledOut = %d, want 0 at rate 1", st.SampledOut)
		}
		if len(reports) != 1 || len(reports[0].Groups) != 1 {
			t.Fatalf("reports = %+v", reports)
		}
		s := reports[0].Groups[0].States[0]
		if !s.Exact() {
			t.Error("rate-1 partial flagged approximate")
		}
		if got := s.Result().Int(); got != 40 {
			t.Errorf("SUM = %v, want 40", got)
		}
	})
}

// TestMintWithoutSampledQueries: with no sampled query installed the
// mint is a no-op (and nil baggage must not panic), so requests carry
// no decision and the unsampled query runs exactly.
func TestMintWithoutSampledQueries(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})

		a.MintSampleDecision(nil)
		bag := baggage.New()
		a.MintSampleDecision(bag)
		if r, ok := bag.SampleRate("Q"); ok {
			t.Fatalf("decision (%v) minted for unsampled query", r)
		}
	})
}

// TestUninstallRemovesSampledQuery: uninstalling a sampled query drops
// it from the adaptive controller, so later requests mint no decision
// and the heartbeat rate returns to "exact" (1000 milli).
func TestUninstallRemovesSampledQuery(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{sampledProgram(0.25)}})
		if st := a.Stats(); st.SampleRateMilli != 250 {
			t.Fatalf("SampleRateMilli = %d, want 250 while installed", st.SampleRateMilli)
		}
		b.Publish(ControlTopic, Uninstall{QueryID: "Q"})
		bag := baggage.New()
		a.MintSampleDecision(bag)
		if _, ok := bag.SampleRate("Q"); ok {
			t.Fatal("decision minted for uninstalled query")
		}
		if st := a.Stats(); st.SampleRateMilli != 1000 {
			t.Errorf("SampleRateMilli = %d, want 1000 after uninstall", st.SampleRateMilli)
		}
	})
}
