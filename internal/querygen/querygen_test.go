package querygen

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/randtest"
	"repro/internal/tracepoint"
)

func TestGenerateIsDeterministic(t *testing.T) {
	randtest.Check(t, 50, 7000, func(seed int64) error {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			return fmt.Errorf("two generations from the same seed differ")
		}
		return nil
	})
}

func TestGeneratedQueriesParseAnalyzeAndCompile(t *testing.T) {
	randtest.Check(t, 300, 8000, func(seed int64) error {
		c := Generate(seed)
		reg := tracepoint.NewRegistry()
		c.Define(reg)
		q, err := query.Parse(c.QueryText)
		if err != nil {
			return fmt.Errorf("parse %q: %w", c.QueryText, err)
		}
		if _, err := plan.Compile(q, reg, nil, plan.Optimized); err != nil {
			return fmt.Errorf("compile optimized %q: %w", c.QueryText, err)
		}
		q2, err := query.Parse(c.QueryText)
		if err != nil {
			return fmt.Errorf("reparse %q: %w", c.QueryText, err)
		}
		if _, err := plan.Compile(q2, reg, nil, plan.Options{}); err != nil {
			return fmt.Errorf("compile unoptimized %q: %w", c.QueryText, err)
		}
		return nil
	})
}

func TestGenerateSampledCasesAreWellFormed(t *testing.T) {
	rates := map[float64]bool{}
	for _, r := range sampledRates {
		rates[r] = true
	}
	randtest.Check(t, 100, 11000, func(seed int64) error {
		c := GenerateSampled(seed)
		if !rates[c.SampleRate] {
			return fmt.Errorf("SampleRate %v not drawn from the sampled pool", c.SampleRate)
		}
		reg := tracepoint.NewRegistry()
		c.Define(reg)
		q, err := query.Parse(c.QueryText)
		if err != nil {
			return fmt.Errorf("parse %q: %w", c.QueryText, err)
		}
		if q.Sample != c.SampleRate {
			return fmt.Errorf("query text declares Sample %v, case says %v", q.Sample, c.SampleRate)
		}
		if _, err := plan.Compile(q, reg, nil, plan.Optimized); err != nil {
			return fmt.Errorf("compile %q: %w", c.QueryText, err)
		}
		if c2 := GenerateSampled(seed); !reflect.DeepEqual(c, c2) {
			return fmt.Errorf("two sampled generations from seed %d differ", seed)
		}
		// The script must replay: every event fired, on the right branch.
		x := &recExec{proc: map[int]int{0: 0}}
		c.Execute(x)
		if x.err != nil {
			return x.err
		}
		if x.fires != len(c.Events) {
			return fmt.Errorf("executed %d fires for %d events", x.fires, len(c.Events))
		}
		return nil
	})
}

// recExec records what Execute feeds it and cross-checks the generator's
// per-event process assignment against its own transfer bookkeeping.
type recExec struct {
	proc  map[int]int // branch → current process
	fires int
	err   error
}

func (x *recExec) Fire(branch int, ev *Event) {
	x.fires++
	if x.proc[branch] != ev.Proc && x.err == nil {
		x.err = fmt.Errorf("event %d generated for proc %d but branch %d is in proc %d",
			ev.ID, ev.Proc, branch, x.proc[branch])
	}
}
func (x *recExec) Split(branch, child int) { x.proc[child] = x.proc[branch] }
func (x *recExec) Join(dst, src int)       { delete(x.proc, src) }
func (x *recExec) Transfer(branch, p int)  { x.proc[branch] = p }
func (x *recExec) Delay(d time.Duration)   {}

func TestExecuteMirrorsGeneratorBookkeeping(t *testing.T) {
	randtest.Check(t, 200, 9000, func(seed int64) error {
		c := Generate(seed)
		x := &recExec{proc: map[int]int{0: 0}}
		c.Execute(x)
		if x.err != nil {
			return x.err
		}
		if x.fires != len(c.Events) {
			return fmt.Errorf("executed %d fires for %d events", x.fires, len(c.Events))
		}
		return nil
	})
}

func TestHappenedBeforeOnLinearTraces(t *testing.T) {
	// On a linear trace every earlier event causally precedes every
	// later one — the happened-before sets must be exactly the prefixes.
	randtest.Check(t, 100, 10000, func(seed int64) error {
		c := Generate(seed)
		if !c.Linear {
			return nil
		}
		hb := c.HappenedBefore()
		for i, set := range hb {
			if len(set) != i {
				return fmt.Errorf("linear trace: event %d has %d predecessors, want %d", i, len(set), i)
			}
			for j := 0; j < i; j++ {
				if !set[j] {
					return fmt.Errorf("linear trace: event %d missing predecessor %d", i, j)
				}
			}
		}
		return nil
	})
}

func TestHappenedBeforeExcludesConcurrentBranches(t *testing.T) {
	// Hand-built script: split, fire on both branches, join, fire after.
	c := &Case{
		TPs:       []TP{{Name: "Gen.Tp0", Fields: signatures[1]}},
		NumProcs:  1,
		Hosts:     []string{"h0"},
		ProcNames: []string{"p0"},
		Events: []Event{
			{ID: 0, TP: 0}, {ID: 1, TP: 0}, {ID: 2, TP: 0}, {ID: 3, TP: 0},
		},
		Ops: []Op{
			{Kind: OpFire, Branch: 0, Event: 0},
			{Kind: OpSplit, Branch: 0},
			{Kind: OpFire, Branch: 0, Event: 1}, // left branch
			{Kind: OpFire, Branch: 1, Event: 2}, // right branch, concurrent with 1
			{Kind: OpJoin, Branch: 0, Other: 1},
			{Kind: OpFire, Branch: 0, Event: 3}, // after the join: sees all
		},
	}
	hb := c.HappenedBefore()
	if !hb[1][0] || !hb[2][0] {
		t.Fatalf("both branches must inherit the pre-split event: %v", hb)
	}
	if hb[1][2] || hb[2][1] {
		t.Fatalf("concurrent branch events must not order: %v", hb)
	}
	for j := 0; j < 3; j++ {
		if !hb[3][j] {
			t.Fatalf("post-join event must see event %d: %v", j, hb)
		}
	}
}
