// Package repro's benchmark suite regenerates the paper's evaluation
// artifacts (see DESIGN.md for the experiment index):
//
//	Fig 1  - BenchmarkFig1 (per-machine / per-application throughput)
//	Fig 3  - BenchmarkFig3 (happened-before join example execution)
//	Fig 6  - BenchmarkFig6Traffic (optimized vs global evaluation)
//	Fig 8  - BenchmarkFig8ReplicaBug
//	Fig 9  - BenchmarkFig9Limplock
//	Fig 10 - BenchmarkFig10{Pack,Unpack,Serialize,Deserialize}
//	Tbl 3  - BenchmarkTable3Rewrites (ablation: optimizations on/off)
//	Tbl 5  - BenchmarkTable5Overhead
//	§6.3   - BenchmarkWeave (dynamic weave/unweave, the class-reload analog)
//
// Wall-clock numbers for the simulated experiments measure the simulator,
// not the monitored system; the *reported metrics* (tuples/s, overhead %,
// bytes) are the reproduction targets.
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/simtime"
	"repro/internal/telemetry"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// tupleCounts are the x-axis of Fig 10.
var tupleCounts = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// fig10Baggage builds baggage holding n randomly-valued 8-byte tuples.
func fig10Baggage(n int) *baggage.Baggage {
	b := baggage.New()
	spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"v"}}
	for i := 0; i < n; i++ {
		b.Pack("bench", spec, tuple.Tuple{tuple.Int(int64(i) * 0x1E3779B97F4A7C15)})
	}
	return b
}

// BenchmarkFig10Pack measures packing 1 tuple into baggage already holding
// N tuples (Fig 10a).
func BenchmarkFig10Pack(b *testing.B) {
	spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"v"}}
	for _, n := range tupleCounts {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			bag := fig10Baggage(n)
			t := tuple.Tuple{tuple.Int(42)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bag.Pack("bench2", spec, t)
			}
		})
	}
}

// BenchmarkFig10Unpack measures unpacking all N tuples (Fig 10b).
func BenchmarkFig10Unpack(b *testing.B) {
	for _, n := range tupleCounts {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			bag := fig10Baggage(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := bag.Unpack("bench"); len(got) != n {
					b.Fatalf("unpacked %d", len(got))
				}
			}
		})
	}
}

// BenchmarkFig10Serialize measures serializing baggage with N tuples
// (Fig 10c).
func BenchmarkFig10Serialize(b *testing.B) {
	for _, n := range tupleCounts {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			bag := fig10Baggage(n)
			size := len(bag.Serialize())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := bag.Serialize(); len(out) != size {
					b.Fatal("size changed")
				}
			}
			b.ReportMetric(float64(size), "wire-bytes")
		})
	}
}

// BenchmarkFig10Deserialize measures deserializing baggage with N tuples,
// forcing the lazy decode by unpacking (Fig 10d).
func BenchmarkFig10Deserialize(b *testing.B) {
	for _, n := range tupleCounts {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			wire := fig10Baggage(n).Serialize()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bag := baggage.Deserialize(wire)
				if got := bag.Unpack("bench"); len(got) != n {
					b.Fatalf("unpacked %d", len(got))
				}
			}
		})
	}
}

// BenchmarkBaggageLazyForwarding is the laziness ablation (§5): a process
// that merely forwards baggage (serialize what it received) pays no decode
// cost, unlike an eager implementation.
func BenchmarkBaggageLazyForwarding(b *testing.B) {
	wire := fig10Baggage(64).Serialize()
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bag := baggage.Deserialize(wire)
			if out := bag.Serialize(); len(out) != len(wire) {
				b.Fatal("roundtrip changed size")
			}
		}
	})
	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bag := baggage.Deserialize(wire)
			bag.TupleCount() // force the decode
			if out := bag.Serialize(); len(out) != len(wire) {
				b.Fatal("roundtrip changed size")
			}
		}
	})
}

// BenchmarkBudgetPressure measures the safety-valve tax on one request
// that packs 32 AGG groups: plain Pack, PackBudgeted with the (ample)
// default budget — the pure accounting cost — and PackBudgeted under a
// 4-tuple budget, where 28 of the packs churn through whole-group
// eviction, tombstone writes, and refusal of re-packs.
func BenchmarkBudgetPressure(b *testing.B) {
	spec := baggage.SetSpec{
		Kind: baggage.Agg, Fields: tuple.Schema{"k", "v"},
		GroupBy: []int{0}, Aggs: []baggage.AggField{{Pos: 1, Fn: agg.Sum}},
	}
	rows := make([]tuple.Tuple, 32)
	for i := range rows {
		rows[i] = tuple.Tuple{tuple.String(fmt.Sprintf("k%02d", i)), tuple.Int(int64(i))}
	}
	b.Run("unbudgeted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bag := baggage.New()
			for _, t := range rows {
				bag.Pack("q.a", spec, t)
			}
		}
	})
	b.Run("default-budget", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bag := baggage.New()
			for _, t := range rows {
				bag.PackBudgeted("q.a", spec, baggage.Budget{}, t)
			}
		}
	})
	b.Run("budget=4", func(b *testing.B) {
		budget := baggage.Budget{MaxTuples: 4}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bag := baggage.New()
			for _, t := range rows {
				bag.PackBudgeted("q.a", spec, budget, t)
			}
		}
	})
}

// BenchmarkTracepoint measures the zero-overhead-when-disabled claim and
// the per-crossing cost with advice woven.
func BenchmarkTracepoint(b *testing.B) {
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Bench.Tracepoint", "v")
	ctx := tracepoint.WithProc(context.Background(),
		tracepoint.ProcInfo{Host: "h", ProcName: "p"})
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tp.Here(ctx, i)
		}
	})
	b.Run("woven-q1-style", func(b *testing.B) {
		q, _ := query.Parse(`From e In Bench.Tracepoint GroupBy e.host Select e.host, SUM(e.v)`)
		q.Name = "bench"
		p, err := plan.Compile(q, reg, nil, plan.Optimized)
		if err != nil {
			b.Fatal(err)
		}
		acc := advice.NewAccumulator(p.Emit.Emit)
		adv := &advice.Advice{Prog: p.Programs[0], Emitter: emitterFunc(func(prog *advice.Program, w tuple.Tuple) {
			acc.Add(w)
		})}
		reg.Weave("Bench.Tracepoint", adv)
		defer reg.Unweave("Bench.Tracepoint", adv)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tp.Here(ctx, i)
		}
	})
}

// BenchmarkTracepointTelemetry bounds the self-telemetry tax on the
// disabled fast path. "plain" is the seed behavior: Here is one atomic
// load. "telemetry" attaches a registry, so every crossing also bumps the
// tracepoint's hit counter: one extra atomic load plus one atomic add,
// which must stay within ~2x of plain (the ISSUE's acceptance bound).
func BenchmarkTracepointTelemetry(b *testing.B) {
	ctx := tracepoint.WithProc(context.Background(),
		tracepoint.ProcInfo{Host: "h", ProcName: "p"})
	b.Run("disabled-plain", func(b *testing.B) {
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Bench.Tracepoint", "v")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tp.Here(ctx, i)
		}
	})
	b.Run("disabled-telemetry", func(b *testing.B) {
		reg := tracepoint.NewRegistry()
		reg.SetTelemetry(telemetry.NewRegistry())
		tp := reg.Define("Bench.Tracepoint", "v")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tp.Here(ctx, i)
		}
	})
}

// BenchmarkHereWithSpans bounds the span-capture tax on the woven
// crossing. "spans-off" is the shipped default — no sink attached — and
// must stay at the BenchmarkTracepoint/woven-q1-style floor with zero
// allocs/op: span capture's existence may not tax deployments that never
// enable it. "sink-no-baggage" attaches the recorder but crosses without
// baggage, so the sink loads, sees nil baggage, and bails — one extra
// atomic load, still zero allocations. "spans-on" is the paid path:
// every crossing unpacks the trace frontier, records a span into the
// ring, and advances the slot.
func BenchmarkHereWithSpans(b *testing.B) {
	for _, mode := range []struct {
		name    string
		spans   bool
		baggage bool
	}{
		{"spans-off", false, true},
		{"sink-no-baggage", true, false},
		{"spans-on", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			a, _, tp := benchInstall(b, 1)
			defer a.Close()
			if mode.spans {
				a.EnableSpans(1<<32, 0)
			}
			ctx := tracepoint.WithProc(context.Background(),
				tracepoint.ProcInfo{Host: "h", ProcName: "p"})
			if mode.baggage {
				ctx = baggage.NewContext(ctx, baggage.New())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.Here(ctx, i)
			}
			b.StopTimer()
			a.Flush()
		})
	}
}

// BenchmarkHereSampled prices request-level sampling on the woven hot
// path. "suppressed" is the sampled-out fast path: the decision minted
// into the request's baggage says skip, so the crossing must return
// before acquiring fire scratch — zero allocs, at or below the plain
// woven crossing's cost. "kept" pays the full path plus the weighted
// fold (weight 1/rate), and "no-decision" is a request from an
// unmonitored origin, processed exactly at weight 1 — both also 0
// allocs/op, pinned by the bench gate.
func BenchmarkHereSampled(b *testing.B) {
	for _, mode := range []struct {
		name     string
		decision float64 // rate packed into baggage; < 0 packs none
	}{
		{"suppressed", 0},
		{"kept", 0.5},
		{"no-decision", -1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			bb := bus.New()
			reg := tracepoint.NewRegistry()
			tp := reg.Define("Bench.Tracepoint", "v")
			a := agent.New(nil, tracepoint.ProcInfo{Host: "h", ProcName: "p"}, reg, bb, 0)
			defer a.Close()
			q, err := query.Parse(`From e In Bench.Tracepoint GroupBy e.host Select e.host, SUM(e.v) Sample 0.5`)
			if err != nil {
				b.Fatal(err)
			}
			q.Name = "bench"
			p, err := plan.Compile(q, reg, nil, plan.Optimized)
			if err != nil {
				b.Fatal(err)
			}
			a.Deliver(agent.Install{QueryID: "bench", Programs: p.Programs})
			ctx := tracepoint.WithProc(context.Background(),
				tracepoint.ProcInfo{Host: "h", ProcName: "p"})
			bag := baggage.New()
			if mode.decision >= 0 {
				bag.PackSampleDecision("bench", mode.decision)
			}
			ctx = baggage.NewContext(ctx, bag)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.Here(ctx, 1)
			}
			b.StopTimer()
			a.Flush()
		})
	}
}

type emitterFunc func(*advice.Program, tuple.Tuple)

func (f emitterFunc) EmitTuple(p *advice.Program, w tuple.Tuple) { f(p, w) }

// benchInstall stands up a real agent with n woven Q1-style queries on one
// tracepoint and returns the pieces the hot-path benchmarks drive.
func benchInstall(b *testing.B, n int) (*agent.Agent, *bus.Bus, *tracepoint.Tracepoint) {
	b.Helper()
	bb := bus.New()
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Bench.Tracepoint", "v")
	a := agent.New(nil, tracepoint.ProcInfo{Host: "h", ProcName: "p"}, reg, bb, 0)
	for i := 0; i < n; i++ {
		q, err := query.Parse(`From e In Bench.Tracepoint GroupBy e.host Select e.host, SUM(e.v)`)
		if err != nil {
			b.Fatal(err)
		}
		q.Name = fmt.Sprintf("q%02d", i)
		p, err := plan.Compile(q, reg, nil, plan.Optimized)
		if err != nil {
			b.Fatal(err)
		}
		a.Deliver(agent.Install{QueryID: q.Name, Programs: p.Programs})
	}
	return a, bb, tp
}

// BenchmarkHereParallel measures the multicore hot path end to end —
// tracepoint fire, advice, agent EmitTuple, accumulator fold — under
// RunParallel at the -cpu list (the bench gate pins 1, 4, and 8).
// "sharded" is the shipped configuration (per-P accumulator stripes);
// "unsharded" forces one shard, the Table 5-era single-mutex baseline, so
// the scaling claim is an in-tree ablation rather than a git archaeology
// exercise.
func BenchmarkHereParallel(b *testing.B) {
	for _, mode := range []struct {
		name   string
		shards int
	}{
		{"sharded", 0},
		{"unsharded", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			bb := bus.New()
			reg := tracepoint.NewRegistry()
			tp := reg.Define("Bench.Tracepoint", "v")
			a := agent.New(nil, tracepoint.ProcInfo{Host: "h", ProcName: "p"}, reg, bb, 0)
			defer a.Close()
			a.SetAccumulatorShards(mode.shards)
			q, err := query.Parse(`From e In Bench.Tracepoint GroupBy e.host Select e.host, SUM(e.v)`)
			if err != nil {
				b.Fatal(err)
			}
			q.Name = "bench"
			p, err := plan.Compile(q, reg, nil, plan.Optimized)
			if err != nil {
				b.Fatal(err)
			}
			a.Deliver(agent.Install{QueryID: "bench", Programs: p.Programs})
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := tracepoint.WithProc(context.Background(),
					tracepoint.ProcInfo{Host: "h", ProcName: "p"})
				ctx = baggage.NewContext(ctx, baggage.New())
				for pb.Next() {
					tp.Here(ctx, 1)
				}
			})
			b.StopTimer()
			a.Flush()
		})
	}
}

// BenchmarkReportBatch measures one flush interval of a 64-query agent:
// drain, snapshot-encode, and publication. "batched" ships the interval as
// one size-capped ReportBatch frame (the default); "frame-per-report"
// forces the cap to one byte so every report pays its own frame, the
// pre-batching behavior.
func BenchmarkReportBatch(b *testing.B) {
	const queries = 64
	for _, mode := range []struct {
		name       string
		batchBytes int
	}{
		{"batched", 0},
		{"frame-per-report", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			a, bb, tp := benchInstall(b, queries)
			defer a.Close()
			a.SetBatchBytes(mode.batchBytes)
			frames := 0
			bb.Subscribe(agent.ResultsTopic, func(any) { frames++ })
			ctx := tracepoint.WithProc(context.Background(),
				tracepoint.ProcInfo{Host: "h", ProcName: "p"})
			ctx = baggage.NewContext(ctx, baggage.New())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp.Here(ctx, 1) // one crossing feeds all 64 queries
				a.Flush()
			}
			b.ReportMetric(float64(frames)/float64(b.N), "frames/flush")
		})
	}
}

// BenchmarkWeave measures dynamic weave + unweave of a compiled query —
// the analog of the paper's ~100 ms JVM class reload (§6.3). The Go
// implementation swaps an atomic pointer instead of rewriting bytecode.
func BenchmarkWeave(b *testing.B) {
	reg := tracepoint.NewRegistry()
	reg.Define("Bench.Tracepoint", "v")
	q, _ := query.Parse(`From e In Bench.Tracepoint GroupBy e.host Select e.host, SUM(e.v)`)
	q.Name = "bench"
	p, err := plan.Compile(q, reg, nil, plan.Optimized)
	if err != nil {
		b.Fatal(err)
	}
	adv := &advice.Advice{Prog: p.Programs[0]}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Weave("Bench.Tracepoint", adv)
		reg.Unweave("Bench.Tracepoint", adv)
	}
}

// BenchmarkCompile measures query-to-advice compilation (install path).
func BenchmarkCompile(b *testing.B) {
	reg := tracepoint.NewRegistry()
	reg.Define("DN.DataTransferProtocol")
	reg.Define("NN.GetBlockLocations", "replicas")
	reg.Define("StressTest.DoNextOp")
	text := `From DNop In DN.DataTransferProtocol
	  Join getloc In NN.GetBlockLocations On getloc -> DNop
	  Join st In StressTest.DoNextOp On st -> getloc
	  Where st.host != DNop.host
	  GroupBy DNop.host, getloc.replicas
	  Select DNop.host, getloc.replicas, COUNT`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := query.Parse(text)
		if err != nil {
			b.Fatal(err)
		}
		q.Name = "q7"
		if _, err := plan.Compile(q, reg, nil, plan.Optimized); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Rewrites is the optimization ablation: evaluate the same
// chained query with the Table 3 rewrites on and off and report the
// baggage bytes a request carries.
func BenchmarkTable3Rewrites(b *testing.B) {
	text := `From DNop In DN.DataTransferProtocol
	  Join getloc In NN.GetBlockLocations On getloc -> DNop
	  Join st In StressTest.DoNextOp On st -> getloc
	  Where st.host != DNop.host
	  GroupBy DNop.host
	  Select DNop.host, COUNT`
	for _, mode := range []struct {
		name string
		opts plan.Options
	}{
		{"optimized", plan.Options{Optimize: true}},
		{"unoptimized", plan.Options{Optimize: false}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			reg := tracepoint.NewRegistry()
			reg.Define("DN.DataTransferProtocol")
			reg.Define("NN.GetBlockLocations", "replicas")
			reg.Define("StressTest.DoNextOp")
			q, _ := query.Parse(text)
			q.Name = "q"
			p, err := plan.Compile(q, reg, nil, mode.opts)
			if err != nil {
				b.Fatal(err)
			}
			acc := advice.NewAccumulator(p.Emit.Emit)
			em := emitterFunc(func(prog *advice.Program, w tuple.Tuple) { acc.Add(w) })
			for _, prog := range p.Programs {
				reg.Weave(prog.Tracepoint, &advice.Advice{Prog: prog, Emitter: em})
			}
			st := reg.Lookup("StressTest.DoNextOp")
			nn := reg.Lookup("NN.GetBlockLocations")
			dn := reg.Lookup("DN.DataTransferProtocol")

			var bytes int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctx := tracepoint.WithProc(context.Background(),
					tracepoint.ProcInfo{Host: "client", ProcName: "StressTest"})
				ctx = baggage.NewContext(ctx, baggage.New())
				st.Here(ctx)
				nn.Here(ctx, "r1,r2,r3")
				bytes += int64(baggage.FromContext(ctx).ByteSize())
				dn.Here(ctx)
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "baggage-bytes/req")
		})
	}
}

// BenchmarkPartialAggregation is the process-local aggregation ablation:
// accumulating emitted tuples into groups versus buffering them raw.
func BenchmarkPartialAggregation(b *testing.B) {
	op := &advice.EmitOp{
		Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
		GroupBy: []int{0},
		Schema:  tuple.Schema{"host", "SUM(v)"},
	}
	w := tuple.Tuple{tuple.String("host-1"), tuple.Int(8192)}
	b.Run("aggregated", func(b *testing.B) {
		acc := advice.NewAccumulator(op)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc.Add(w)
		}
		b.ReportMetric(float64(len(acc.Groups())), "rows-to-report")
	})
	b.Run("raw-buffered", func(b *testing.B) {
		buf := make([]tuple.Tuple, 0, b.N)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = append(buf, w.Clone())
		}
		b.ReportMetric(float64(len(buf)), "rows-to-report")
	})
}

// BenchmarkFig3 evaluates the example-execution queries of Figure 3.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1 runs a scaled Fig 1 experiment and reports the
// per-application attribution (Fig 1b's reproduction target).
func BenchmarkFig1(b *testing.B) {
	cfg := experiments.Fig1Config{
		Hosts: 4, Duration: 10 * time.Second,
		Sort10g: 512e6, Sort100g: 1e9, Files: 8,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.AppSeries) == 0 {
			b.Fatal("no per-application series")
		}
	}
}

// BenchmarkFig6Traffic runs the evaluation-strategy comparison and reports
// the tuple traffic of both strategies.
func BenchmarkFig6Traffic(b *testing.B) {
	cfg := experiments.TrafficConfig{Hosts: 4, Readers: 3, OpsPerReader: 100, Files: 8}
	var last *experiments.TrafficResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTraffic(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ResultsMatch {
			b.Fatal("strategies disagree")
		}
		last = res
	}
	b.ReportMetric(last.OptReportedPerDNPerSec, "opt-rows/s/dn")
	b.ReportMetric(last.OptEmittedPerDNPerSec, "opt-emitted/s/dn")
	b.ReportMetric(last.BaseEmittedPerDNPerSec, "base-tuples/s/dn")
}

// BenchmarkFig8ReplicaBug runs the scaled §6.1 case study and reports the
// selection skew (max column share of Q6's matrix).
func BenchmarkFig8ReplicaBug(b *testing.B) {
	cfg := experiments.Fig8Config{
		Hosts: 4, ClientsPerHost: 2, Files: 100,
		Duration: 5 * time.Second, Think: 2 * time.Millisecond,
	}
	var maxShare float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		total, col := 0.0, map[string]float64{}
		for _, row := range res.SelectFreq {
			for c, v := range row {
				col[c] += v
				total += v
			}
		}
		maxShare = 0
		for _, v := range col {
			if s := v / total; s > maxShare {
				maxShare = s
			}
		}
	}
	b.ReportMetric(maxShare, "max-selection-share")
}

// BenchmarkFig9Limplock runs the scaled network limplock case study and
// reports the worst faulty-host transfer span.
func BenchmarkFig9Limplock(b *testing.B) {
	cfg := experiments.Fig9Config{
		Hosts: 4, Duration: 20 * time.Second, FaultAt: 10 * time.Second,
		FaultHost: 1, Scanners: 3, Getters: 2,
	}
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for key, v := range res.After["DN transfer"] {
			if v > worst && containsHost(key, res.FaultHost) {
				worst = v
			}
		}
	}
	b.ReportMetric(worst, "faulty-xfer-sec")
}

func containsHost(key, host string) bool {
	return len(key) >= len(host) && (key[:len(host)] == host || key[len(key)-len(host):] == host)
}

// BenchmarkTable5Overhead runs the scaled overhead experiment and reports
// the Open-op overhead with 60 packed tuples (the paper's worst case).
func BenchmarkTable5Overhead(b *testing.B) {
	cfg := experiments.Table5Config{
		Hosts: 2, Duration: 5 * time.Second,
		RPCLatency: 20 * time.Microsecond, Think: time.Millisecond,
	}
	var open60 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		open60 = res.Overhead[experiments.CfgBaggage60]["Open"]
	}
	b.ReportMetric(open60, "open-60tuple-overhead-pct")
}

// BenchmarkNetsimEventQueue measures raw event-queue throughput of the
// network simulator: 64 hosts on a racked topology send flows large
// enough to ride the shared max-min machinery, so every completion and
// reshare goes through the engine's timer queue. ns/op here is wall time
// per simulated flow — the budget that bounds how many requests a
// thousand-host ptbench scenario can push per second of real time.
func BenchmarkNetsimEventQueue(b *testing.B) {
	const hosts = 64
	b.ReportAllocs()
	env := simtime.NewEnv()
	env.Run(func() {
		net := netsim.New(env)
		topo := netsim.BuildTopology(net, netsim.TopologyConfig{
			Racks: 4, HostsPerRack: 16,
			RackUplink: 4 * netsim.Gbit,
		})
		wg := env.NewWaitGroup()
		per := (b.N + hosts - 1) / hosts
		for i := 0; i < hosts; i++ {
			i := i
			wg.Add(1)
			env.Go(func() {
				defer wg.Done()
				src := topo.Host(i)
				dst := topo.Host((i + 17) % hosts)
				for k := 0; k < per; k++ {
					// Vary sizes so completions interleave and force
					// reshares instead of draining in lockstep.
					src.Send(dst, 64e3+float64((i+k)%7)*16e3)
				}
			})
		}
		wg.Wait()
	})
}
