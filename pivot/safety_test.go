package pivot

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/faultinject"
	"repro/internal/plan"
	"repro/internal/tuple"
)

// Safety-valve chaos suite: the governance layer protecting the traced
// application from its own tracer. A panicking query is quarantined
// without disturbing the workload; a frontend that dies stops renewing
// its leases and every agent sheds its queries within two TTLs; a query
// that exhausts its baggage budget reports exactly which groups it lost.
// Deterministic under -race -count=N.

func TestPanickingAdviceIsQuarantined(t *testing.T) {
	pt := New("app")
	tel := pt.EnableSelfTelemetry()
	tp := pt.Define("Work.Do", "n")

	q, err := pt.Frontend.InstallNamed("QP",
		`From w In Work.Do GroupBy w.host Select w.host, COUNT`,
		plan.Options{Optimize: true, Safety: advice.Safety{FaultLimit: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !tp.Enabled() {
		t.Fatal("advice not woven")
	}

	advice.SetFailpoint(func(p *advice.Program, _ tuple.Tuple) {
		if p.QueryID == "QP" {
			panic("injected advice bug")
		}
	})
	defer advice.SetFailpoint(nil)

	// The workload must be undisturbed: every crossing returns normally
	// whether the advice panics, is quarantined, or is already unwoven.
	for i := 0; i < 10; i++ {
		tp.Here(pt.NewRequest(context.Background()), int64(i))
	}

	notices := q.Quarantines()
	if len(notices) != 1 {
		t.Fatalf("quarantine notices = %d, want 1", len(notices))
	}
	n := notices[0]
	if n.QueryID != "QP" || n.Tracepoint != "Work.Do" || !strings.Contains(n.Reason, "3 advice panics") {
		t.Fatalf("notice = %+v", n)
	}
	if !q.Partial() {
		t.Fatal("quarantined query not flagged partial")
	}
	if tp.Enabled() {
		t.Fatal("quarantined advice still woven")
	}
	// Quarantined within FaultLimit fires: the breaker tripped at the
	// third panic and every later crossing found the advice inert.
	if f := q.Plan.Emit.Faults(); f != 3 {
		t.Fatalf("program faults = %d, want exactly FaultLimit=3", f)
	}

	snap := tel.Snapshot()
	if snap.Counters["agent.quarantines"] != 1 || snap.Counters["core.quarantines"] != 1 {
		t.Fatalf("quarantine telemetry = agent:%d core:%d",
			snap.Counters["agent.quarantines"], snap.Counters["core.quarantines"])
	}
	if snap.Counters["tracepoint.panics.Work.Do"] != 3 {
		t.Fatalf("tracepoint panic meter = %d, want 3", snap.Counters["tracepoint.panics.Work.Do"])
	}

	// The status surface reports the quarantine against the query.
	var qs string
	for _, s := range pt.Status().Queries {
		if s.Name == "QP" {
			qs = fmt.Sprintf("quarant=%d", s.Quarantines)
		}
	}
	if qs != "quarant=1" {
		t.Fatalf("status query quarantines = %q, want quarant=1", qs)
	}
}

// TestKilledFrontendLeaseExpiry kills the frontend's bus link mid-query
// (no reconnect — the frontend is "dead") and asserts every agent sheds
// the orphaned query within two lease TTLs.
func TestKilledFrontendLeaseExpiry(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The frontend dials through the injector so the test can sever its
	// link at a chosen moment; Reconnect:false models a dead process.
	inj := faultinject.New(faultinject.Faults{Seed: 11})
	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(srv.Addr(), BusOptions{
		Reconnect: false,
		Dial:      inj.Dialer(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	wkDisconnect, err := worker.ConnectBusWith(srv.Addr(), chaosBusOptions(12, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	const ttl = 1 * time.Second
	if _, err := frontend.Frontend.InstallNamed("QL",
		`From w In Work.Do GroupBy w.host Select w.host, COUNT`,
		plan.Options{Optimize: true, Lease: ttl}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", func() bool {
		return worker.Agent.Installed("QL") && tp.Enabled()
	})

	// Healthy: the frontend renews well inside the TTL and the worker's
	// flushes (which check expiry) keep finding a live lease.
	stopRenew := frontend.StartReporting(100 * time.Millisecond)
	defer stopRenew()
	stopFlush := worker.StartReporting(100 * time.Millisecond)
	defer stopFlush()
	time.Sleep(2 * ttl)
	if !worker.Agent.Installed("QL") {
		t.Fatal("query expired while the frontend was renewing")
	}

	// The frontend dies: its link is cut and never redialed. Renewals
	// stop; within two TTLs the worker must uninstall the orphan.
	killed := time.Now()
	inj.CutAll()
	waitFor(t, "orphaned query to be shed", func() bool {
		return !worker.Agent.Installed("QL")
	})
	if took := time.Since(killed); took > 2*ttl {
		t.Fatalf("lease expiry took %v, want <= 2 TTLs (%v)", took, 2*ttl)
	}
	if tp.Enabled() {
		t.Fatal("expired query's advice still woven")
	}
	if st := worker.Agent.Stats(); st.LeasesExpired != 1 {
		t.Fatalf("LeasesExpired = %d, want 1", st.LeasesExpired)
	}
}

// TestQuarantineNoticeCrossesBus runs the panicking-advice scenario with
// the faulty process connected as a TCP worker and asserts the
// pt.quarantine notice reaches the frontend over the bus — the worker
// trips the breaker locally, but the operator watches the frontend.
func TestQuarantineNoticeCrossesBus(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(srv.Addr(), DefaultBusOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	wkDisconnect, err := worker.ConnectBus(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	q, err := frontend.Frontend.InstallNamed("QP",
		`From w In Work.Do GroupBy w.host Select w.host, COUNT`,
		plan.Options{Optimize: true, Safety: advice.Safety{FaultLimit: 2}})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", func() bool {
		return worker.Agent.Installed("QP") && tp.Enabled()
	})

	advice.SetFailpoint(func(p *advice.Program, _ tuple.Tuple) {
		if p.QueryID == "QP" {
			panic("injected advice bug")
		}
	})
	defer advice.SetFailpoint(nil)

	for i := 0; i < 5; i++ {
		tp.Here(worker.NewRequest(context.Background()), int64(i))
	}
	if st := worker.Agent.Stats(); st.Quarantines != 1 {
		t.Fatalf("worker quarantines = %d, want 1", st.Quarantines)
	}
	if tp.Enabled() {
		t.Fatal("quarantined advice still woven on the worker")
	}

	// The notice must cross the TCP bus to the frontend's query handle
	// and status surface.
	waitFor(t, "quarantine notice to reach the frontend", func() bool {
		return len(q.Quarantines()) == 1
	})
	n := q.Quarantines()[0]
	if n.QueryID != "QP" || n.Tracepoint != "Work.Do" || n.ProcName != "worker" {
		t.Fatalf("notice = %+v", n)
	}
	if !q.Partial() {
		t.Fatal("quarantined query not flagged partial at the frontend")
	}
	qs := -1
	for _, s := range frontend.Status().Queries {
		if s.Name == "QP" {
			qs = s.Quarantines
		}
	}
	if qs != 1 {
		t.Fatalf("frontend status quarantines = %d, want 1", qs)
	}
}

// TestBudgetExhaustionAccounted runs a happened-before join whose source
// groups overflow a tiny baggage budget, and reconciles: every group is
// either reported with an exact aggregate or counted dropped — nothing
// vanishes, nothing is partially merged.
func TestBudgetExhaustionAccounted(t *testing.T) {
	pt := New("app")
	src := pt.Define("Src.Emit", "key", "val")
	sink := pt.Define("Sink.Done")

	const total, budget = 10, 4
	q, err := pt.Frontend.InstallNamed("QB",
		`From b In Sink.Done
		 Join a In Src.Emit On a -> b
		 GroupBy a.key Select a.key, SUM(a.val)`,
		plan.Options{Optimize: true, Safety: advice.Safety{
			Budget: baggage.Budget{MaxTuples: budget},
		}})
	if err != nil {
		t.Fatal(err)
	}

	ctx := pt.NewRequest(context.Background())
	want := map[string]int64{}
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("k%02d", i)
		val := int64(10 + i)
		want[key] = val
		src.Here(ctx, key, val)
	}
	sink.Here(ctx)
	pt.Flush()

	rows := q.Rows()
	if len(rows) != budget {
		t.Fatalf("reported rows = %d, want the %d in budget", len(rows), budget)
	}
	for _, r := range rows {
		key := r[0].Str()
		wantSum, ok := want[key]
		if !ok {
			t.Fatalf("reported group %q was never produced", key)
		}
		// Byte-exact on the reported subset: a surviving group carries
		// its full aggregate, never a truncated portion.
		if got := r[1].Int(); got != wantSum {
			t.Fatalf("SUM(%s) = %d, want %d", key, got, wantSum)
		}
	}
	if dropped := q.DroppedGroups(); len(rows)+dropped != total {
		t.Fatalf("reported %d + dropped %d != %d produced groups", len(rows), dropped, total)
	}
	if !q.Partial() {
		t.Fatal("truncated query not flagged partial")
	}
	if st := pt.Agent.Stats(); st.BaggageGroupsDropped != int64(total-budget) || st.BaggageBytesDropped <= 0 {
		t.Fatalf("agent baggage drop stats = %+v", st)
	}

	// The status tables roll the accounting up.
	text := pt.StatusText()
	if !strings.Contains(text, "dropped") || !strings.Contains(text, "bagdrop") {
		t.Fatalf("status text missing governance columns:\n%s", text)
	}
	var found bool
	for _, s := range pt.Status().Queries {
		if s.Name == "QB" && s.DroppedGroups == total-budget {
			found = true
		}
	}
	if !found {
		t.Fatalf("status DroppedGroups != %d:\n%s", total-budget, text)
	}
}

// TestLeaseRenewalKeepsInProcessQueryAlive covers the benign path: an
// embedded runtime whose StartReporting tick both renews and flushes
// never sheds its own queries.
func TestLeaseRenewalKeepsInProcessQueryAlive(t *testing.T) {
	pt := New("app")
	pt.Define("Work.Do", "n")
	q, err := pt.Frontend.InstallNamed("QK",
		`From w In Work.Do GroupBy w.host Select w.host, COUNT`,
		plan.Options{Optimize: true, Lease: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if q.Lease() != 200*time.Millisecond {
		t.Fatalf("Lease = %v", q.Lease())
	}
	stop := pt.StartReporting(50 * time.Millisecond)
	defer stop()
	time.Sleep(600 * time.Millisecond)
	if !pt.Agent.Installed("QK") {
		t.Fatal("renewed in-process query expired")
	}
	// Uninstall still works with leases in play.
	q.Uninstall()
	if pt.Agent.Installed("QK") {
		t.Fatal("uninstall did not remove the query")
	}
}
