package itc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeed(t *testing.T) {
	s := Seed()
	if !s.id.isOne() {
		t.Errorf("seed id = %v, want 1", s.id)
	}
	if !s.ev.Leaf || s.ev.N != 0 {
		t.Errorf("seed event = %v, want 0", s.ev)
	}
}

func TestForkProducesDisjointIDs(t *testing.T) {
	a, b := Seed().Fork()
	if overlap(a.id, b.id) {
		t.Fatalf("forked IDs overlap: %v and %v", a.id, b.id)
	}
}

// overlap reports whether two IDs claim any common interval.
func overlap(a, b *ID) bool {
	switch {
	case a.isZero() || b.isZero():
		return false
	case a.isOne() || b.isOne():
		return true
	default:
		return overlap(a.L, b.L) || overlap(a.R, b.R)
	}
}

func TestJoinOfForkRestoresID(t *testing.T) {
	s := Seed()
	a, b := s.Fork()
	j := Join(a, b)
	if !j.id.Equal(s.id) {
		t.Fatalf("join(fork(s)).id = %v, want %v", j.id, s.id)
	}
}

func TestEventAdvancesCausality(t *testing.T) {
	s := Seed()
	s2 := s.Event()
	if !s.Leq(s2) {
		t.Error("s should be <= s.Event()")
	}
	if s2.Leq(s) {
		t.Error("s.Event() should not be <= s")
	}
}

func TestConcurrentEventsAreIncomparable(t *testing.T) {
	a, b := Seed().Fork()
	a2 := a.Event()
	b2 := b.Event()
	if a2.Leq(b2) || b2.Leq(a2) {
		t.Errorf("concurrent events compare: a=%v b=%v", a2, b2)
	}
}

func TestJoinDominatesBothInputs(t *testing.T) {
	a, b := Seed().Fork()
	a = a.Event().Event()
	b = b.Event()
	j := Join(a, b)
	if !a.Leq(j) || !b.Leq(j) {
		t.Errorf("join %v does not dominate inputs %v, %v", j, a, b)
	}
}

func TestEventAfterJoinSeesAllHistory(t *testing.T) {
	a, b := Seed().Fork()
	a = a.Event()
	b = b.Event()
	j := Join(a, b).Event()
	if !a.Leq(j) || !b.Leq(j) {
		t.Error("post-join event must dominate both branch histories")
	}
}

func TestPeekIsAnonymous(t *testing.T) {
	s := Seed().Event()
	p := s.Peek()
	if !p.id.isZero() {
		t.Errorf("peek id = %v, want 0", p.id)
	}
	if !s.Leq(p) || !p.Leq(s) {
		t.Error("peek should carry the same history")
	}
}

func TestDeepForkTree(t *testing.T) {
	// Fork 64 ways; all pairwise disjoint; join-all restores seed ID.
	stamps := []*Stamp{Seed()}
	for len(stamps) < 64 {
		s := stamps[0]
		stamps = stamps[1:]
		a, b := s.Fork()
		stamps = append(stamps, a, b)
	}
	for i := 0; i < len(stamps); i++ {
		for j := i + 1; j < len(stamps); j++ {
			if overlap(stamps[i].id, stamps[j].id) {
				t.Fatalf("stamps %d and %d overlap", i, j)
			}
		}
	}
	j := stamps[0]
	for _, s := range stamps[1:] {
		j = Join(j, s)
	}
	if !j.id.isOne() {
		t.Fatalf("join of all forks = %v, want 1", j.id)
	}
}

func TestEventOnAnonymousStampPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Seed().Peek().Event()
}

func TestStampStringRendering(t *testing.T) {
	s := Seed()
	if got := s.String(); got != "(1, 0)" {
		t.Errorf("String() = %q, want %q", got, "(1, 0)")
	}
	a, _ := s.Fork()
	if got := a.String(); got != "((1,0), 0)" {
		t.Errorf("String() = %q, want %q", got, "((1,0), 0)")
	}
}

// randomWalk produces a stamp by a random sequence of forks/events/joins.
func randomWalk(seed int64, steps int) []*Stamp {
	rng := rand.New(rand.NewSource(seed))
	stamps := []*Stamp{Seed()}
	for i := 0; i < steps; i++ {
		k := rng.Intn(len(stamps))
		switch rng.Intn(3) {
		case 0: // fork
			a, b := stamps[k].Fork()
			stamps[k] = a
			stamps = append(stamps, b)
		case 1: // event
			stamps[k] = stamps[k].Event()
		case 2: // join
			if len(stamps) > 1 {
				j := rng.Intn(len(stamps))
				if j != k {
					stamps[k] = Join(stamps[k], stamps[j])
					stamps = append(stamps[:j], stamps[j+1:]...)
				}
			}
		}
	}
	return stamps
}

func TestQuickForkEventJoinInvariants(t *testing.T) {
	f := func(seed int64) bool {
		stamps := randomWalk(seed, 40)
		// Invariant 1: all live stamps have pairwise disjoint IDs.
		for i := 0; i < len(stamps); i++ {
			for j := i + 1; j < len(stamps); j++ {
				if overlap(stamps[i].id, stamps[j].id) {
					return false
				}
			}
		}
		// Invariant 2: joining everything restores the full ID space.
		j := stamps[0]
		for _, s := range stamps[1:] {
			j = Join(j, s)
		}
		return j.id.isOne()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEventMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		stamps := randomWalk(seed, 30)
		for _, s := range stamps {
			s2 := s.Event()
			if !s.Leq(s2) || s2.Leq(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeDecodeRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		for _, s := range randomWalk(seed, 30) {
			buf := AppendStamp(nil, s)
			got, rest, err := DecodeStamp(buf)
			if err != nil || len(rest) != 0 || !got.Equal(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeID(nil); err == nil {
		t.Error("DecodeID(nil) should fail")
	}
	if _, _, err := DecodeID([]byte{9}); err == nil {
		t.Error("DecodeID(bad tag) should fail")
	}
	if _, _, err := DecodeEvent([]byte{1, 5}); err == nil {
		t.Error("DecodeEvent(truncated) should fail")
	}
	if _, _, err := DecodeStamp([]byte{tagIDOne}); err == nil {
		t.Error("DecodeStamp(missing event) should fail")
	}
}

func TestKeyIDDistinguishesForks(t *testing.T) {
	a, b := Seed().Fork()
	if KeyID(a.ID()) == KeyID(b.ID()) {
		t.Error("fork halves should have distinct keys")
	}
}

func TestEncodingIsCompact(t *testing.T) {
	s := Seed()
	for i := 0; i < 10; i++ {
		s = s.Event()
	}
	if n := len(AppendStamp(nil, s)); n > 8 {
		t.Errorf("normalized 10-event stamp encodes to %d bytes, want <= 8", n)
	}
}
