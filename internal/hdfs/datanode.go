package hdfs

import (
	"context"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// DataNodeHandlers is the size of a DataNode's request handler pool.
const DataNodeHandlers = 16

// SeekCost models the positioning cost of one random block read as
// equivalent disk bytes (~3.4 ms on a 150 MB/s disk). Small random reads
// are seek-dominated, which is what saturates the hot DataNodes in the
// §6.1 stress test (Fig 8a/8c).
const SeekCost = 512e3

// DataNode serves block reads and writes from its host's local disk.
type DataNode struct {
	Proc *cluster.Process
	nn   *NameNode
	sem  *simtime.Semaphore

	tpProto      *tracepoint.Tracepoint // DN.DataTransferProtocol
	tpQueued     *tracepoint.Tracepoint // DN.OpQueued
	tpStart      *tracepoint.Tracepoint // DN.OpStart
	tpXferStart  *tracepoint.Tracepoint // DN.TransferStart
	tpXferEnd    *tracepoint.Tracepoint // DN.TransferEnd
	tpBytesRead  *tracepoint.Tracepoint // DataNodeMetrics.incrBytesRead
	tpBytesWrite *tracepoint.Tracepoint // DataNodeMetrics.incrBytesWritten
}

// NewDataNode starts a DataNode process on the given host and registers it
// with the NameNode.
func NewDataNode(c *cluster.Cluster, host string, nn *NameNode) *DataNode {
	proc := c.Start(host, "DataNode")
	dn := &DataNode{
		Proc: proc,
		nn:   nn,
		sem:  c.Env.NewSemaphore(DataNodeHandlers),
	}
	dn.tpProto = proc.Define("DN.DataTransferProtocol", "op", "size")
	dn.tpQueued = proc.Define("DN.OpQueued", "op")
	dn.tpStart = proc.Define("DN.OpStart", "op")
	dn.tpXferStart = proc.Define("DN.TransferStart", "size", "dest")
	dn.tpXferEnd = proc.Define("DN.TransferEnd", "size", "dest")
	dn.tpBytesRead = proc.Define("DataNodeMetrics.incrBytesRead", "delta")
	dn.tpBytesWrite = proc.Define("DataNodeMetrics.incrBytesWritten", "delta")

	proc.Handle("DataTransferProtocol.ReadBlock", dn.handleReadBlock)
	proc.Handle("DataTransferProtocol.WriteBlock", dn.handleWriteBlock)
	nn.RegisterDataNode(host)
	return dn
}

// ReadBlockReq reads length bytes of a block and pushes them to the
// requesting host.
type ReadBlockReq struct {
	Block    string
	Length   float64
	DestHost string
	// Pipeline hosts still to receive the data (write path re-uses the
	// read plumbing for replication forwarding).
}

func (dn *DataNode) handleReadBlock(ctx context.Context, req any) (any, error) {
	r := req.(ReadBlockReq)
	dn.tpProto.Here(ctx, "READ_BLOCK", r.Length)
	dn.tpQueued.Here(ctx, "READ_BLOCK")
	dn.sem.Acquire()
	defer dn.sem.Release()
	dn.tpStart.Here(ctx, "READ_BLOCK")

	// Read from the local disk (crosses FileInputStream.read); the seek
	// charge contends for the disk but is not part of the byte stream.
	dn.Proc.Host.DiskRead(SeekCost)
	dn.Proc.DiskRead(ctx, r.Length)

	// Push the data to the destination host as an explicit network flow so
	// the transfer time is observable between tracepoints (Fig 9's "DN
	// transfer" span).
	dn.tpXferStart.Here(ctx, r.Length, r.DestHost)
	if dest := dn.Proc.C.Host(r.DestHost); dest != dn.Proc.Host {
		dn.Proc.Host.Send(dest, r.Length)
	}
	dn.tpXferEnd.Here(ctx, r.Length, r.DestHost)

	dn.tpBytesRead.Here(ctx, r.Length)
	return r.Length, nil
}

// WriteBlockReq writes length bytes to a block replica; Pipeline lists the
// downstream replica hosts the data must be forwarded to.
type WriteBlockReq struct {
	Block    string
	Length   float64
	SrcHost  string
	Pipeline []string
}

func (dn *DataNode) handleWriteBlock(ctx context.Context, req any) (any, error) {
	r := req.(WriteBlockReq)
	dn.tpProto.Here(ctx, "WRITE_BLOCK", r.Length)
	dn.tpQueued.Here(ctx, "WRITE_BLOCK")
	dn.sem.Acquire()
	defer dn.sem.Release()
	dn.tpStart.Here(ctx, "WRITE_BLOCK")

	// Write to the local disk (crosses FileOutputStream.write).
	dn.Proc.DiskWrite(ctx, r.Length)
	dn.tpBytesWrite.Here(ctx, r.Length)

	// Forward down the replication pipeline.
	if len(r.Pipeline) > 0 {
		next := dn.Proc.C.Proc(r.Pipeline[0], "DataNode")
		if next != nil {
			fwd := WriteBlockReq{
				Block: r.Block, Length: r.Length,
				SrcHost: dn.Proc.Info.Host, Pipeline: r.Pipeline[1:],
			}
			if _, err := dn.Proc.Call(ctx, next, "DataTransferProtocol.WriteBlock", fwd,
				cluster.Sizes{Request: r.Length, Response: 64}); err != nil {
				return nil, err
			}
		}
	}
	return r.Length, nil
}

// Stall simulates a garbage-collection or device pause: the DataNode's
// handler pool is exhausted for the given duration.
func (dn *DataNode) Stall(d time.Duration) {
	for i := 0; i < DataNodeHandlers; i++ {
		dn.sem.Acquire()
	}
	dn.Proc.C.Env.Sleep(d)
	for i := 0; i < DataNodeHandlers; i++ {
		dn.sem.Release()
	}
}
