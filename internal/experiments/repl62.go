package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/simtime"
	"repro/internal/workload"
)

// GCConfig sizes the §6.2 rogue-GC replication: one RegionServer suffers
// periodic stop-the-world pauses; latency-decomposition queries identify
// it.
type GCConfig struct {
	Hosts      int
	Duration   time.Duration
	GCHost     int
	GCInterval time.Duration
	GCPause    time.Duration
}

// DefaultGCConfig mirrors the VScope scenario replicated in §6.2.
func DefaultGCConfig() GCConfig {
	return GCConfig{
		Hosts:      8,
		Duration:   30 * time.Second,
		GCHost:     2,
		GCInterval: 3 * time.Second,
		GCPause:    1500 * time.Millisecond,
	}
}

// The GC span query: pack the GC start time, unpack at GC end.
const replQGC = `From g2 In RS.GCEnd
Join g1 In MostRecent(RS.GCStart) On g1 -> g2
GroupBy g2.host
Select g2.host, COUNT, AVERAGE(g2.time - g1.time)`

// GCResult identifies the rogue RegionServer.
type GCResult struct {
	Cfg    GCConfig
	GCHost string
	// GCSpans: host -> (pauses, mean pause seconds).
	GCSpans map[string][2]float64
	// RSLatency: host/proc -> mean RPC handler latency in seconds.
	RSLatency map[string]float64
}

// RunGC executes the rogue-GC replication.
func RunGC(cfg GCConfig) (*GCResult, error) {
	env := simtime.NewEnv()
	res := &GCResult{Cfg: cfg, GCSpans: map[string][2]float64{}, RSLatency: map[string]float64{}}
	var runErr error
	env.Run(func() {
		tbCfg := workload.DefaultTestbedConfig()
		tbCfg.Hosts = cfg.Hosts
		tbCfg.MapReduce = false
		tb := workload.NewTestbed(env, tbCfg)
		if err := tb.InitHBaseStores(2e9); err != nil {
			runErr = err
			return
		}
		res.GCHost = tb.Hosts[cfg.GCHost%len(tb.Hosts)]

		qGC, err := tb.C.PT.Install(replQGC)
		if err != nil {
			runErr = err
			return
		}
		qLat, err := tb.C.PT.Install(fig9QRPC)
		if err != nil {
			runErr = err
			return
		}

		tb.RSs[cfg.GCHost%len(tb.RSs)].EnableRogueGC(cfg.GCInterval, cfg.GCPause)

		for i := 0; i < 4; i++ {
			tb.NewHGet(tb.Hosts[i%len(tb.Hosts)], int64(i+10)).Start()
		}
		env.Sleep(cfg.Duration)
		tb.C.FlushAgents()

		for _, r := range qGC.Rows() {
			res.GCSpans[r[0].Str()] = [2]float64{
				r[1].Float(),
				r[2].Float() / float64(time.Second),
			}
		}
		for _, r := range qLat.Rows() {
			if r[1].Str() != "RegionServer" {
				continue
			}
			res.RSLatency[r[0].Str()] = r[2].Float() / float64(time.Second)
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// Render summarizes the diagnosis.
func (r *GCResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== §6.2 replication: rogue GC in a RegionServer (on %s) ===\n", r.GCHost)
	b.WriteString("GC pauses observed (RS.GCStart -> RS.GCEnd):\n")
	for host, v := range r.GCSpans {
		fmt.Fprintf(&b, "  %-10s %3.0f pauses, mean %s\n", host, v[0], fmtSeconds(v[1]))
	}
	b.WriteString("RegionServer mean handler latency:\n")
	for host, v := range r.RSLatency {
		marker := ""
		if host == r.GCHost {
			marker = "   <-- rogue GC host"
		}
		fmt.Fprintf(&b, "  %-10s %s%s\n", host, fmtSeconds(v), marker)
	}
	return b.String()
}

// NNLockConfig sizes the §6.2 NameNode exclusive-locking replication.
type NNLockConfig struct {
	Hosts    int
	Clients  int
	Duration time.Duration
	OpDelay  time.Duration
}

// DefaultNNLockConfig uses enough concurrent clients for lock contention
// to dominate.
func DefaultNNLockConfig() NNLockConfig {
	return NNLockConfig{Hosts: 4, Clients: 16, Duration: 10 * time.Second, OpDelay: 200 * time.Microsecond}
}

// NNLockResult compares read-op latency under shared vs exclusive locking.
type NNLockResult struct {
	Cfg                  NNLockConfig
	SharedMean, ExclMean float64 // seconds
}

// RunNNLock executes both locking configurations.
func RunNNLock(cfg NNLockConfig) (*NNLockResult, error) {
	run := func(exclusive bool) (float64, error) {
		env := simtime.NewEnv()
		var mean float64
		var runErr error
		env.Run(func() {
			tbCfg := workload.DefaultTestbedConfig()
			tbCfg.Hosts = cfg.Hosts
			tbCfg.HBase = false
			tbCfg.MapReduce = false
			tbCfg.NameNode.ExclusiveLocking = exclusive
			tbCfg.NameNode.OpDelay = cfg.OpDelay
			tb := workload.NewTestbed(env, tbCfg)
			tb.C.PT.Registry().Define("StressTest.DoNextOp", "op")
			var ws []*workload.Workload
			for i := 0; i < cfg.Clients; i++ {
				w, err := tb.NewNNBench(workload.HostName(i%cfg.Hosts), workload.OpOpen, int64(i+1))
				if err != nil {
					runErr = err
					return
				}
				ws = append(ws, w)
				w.Start()
			}
			env.Sleep(cfg.Duration)
			sum, n := 0.0, 0
			for _, w := range ws {
				if w.Rec.Count() > 0 {
					sum += w.Rec.Mean()
					n++
				}
			}
			if n > 0 {
				mean = sum / float64(n)
			}
		})
		return mean, runErr
	}
	shared, err := run(false)
	if err != nil {
		return nil, err
	}
	excl, err := run(true)
	if err != nil {
		return nil, err
	}
	return &NNLockResult{Cfg: cfg, SharedMean: shared, ExclMean: excl}, nil
}

// Render summarizes the comparison.
func (r *NNLockResult) Render() string {
	return fmt.Sprintf(`=== §6.2 replication: overloaded NameNode, exclusive write locking ===
Open latency, %d concurrent clients:
  shared (RW) locking:    %s
  exclusive locking:      %s   (%.1fx slower)
`, r.Cfg.Clients, fmtSeconds(r.SharedMean), fmtSeconds(r.ExclMean),
		safeDiv(r.ExclMean, r.SharedMean))
}
