package cluster

import (
	"fmt"
	"time"

	"repro/internal/combiner"
	"repro/internal/core"
)

// This file wires the hierarchical-aggregation and multi-tenant layers
// over a simulated cluster: a 2-tier combiner tree (agents → partitioned
// mid combiners → root combiner → frontends) and additional tenant
// frontends sharing the deployment's bus and master registry.

// TreeSpec configures a combiner tree for EnableCombinerTree.
type TreeSpec struct {
	// MidCombiners is the mid-tier width (rack/pod aggregators); <= 0
	// selects 4.
	MidCombiners int
	// Partitions is how many partition topics agent report traffic is
	// sharded across; <= 0 selects 4 * MidCombiners (several partitions
	// per combiner keeps rendezvous rebalancing granular).
	Partitions int
	// TenantRouting makes the root tier deliver each tenant's queries on
	// that tenant's own results topic.
	TenantRouting bool
	// Interval is the combiner flush cadence; <= 0 selects the cluster's
	// agent reporting interval.
	Interval time.Duration
}

// CombinerTree is a running 2-tier aggregation tree.
type CombinerTree struct {
	Mid        []*combiner.Combiner
	Root       *combiner.Combiner
	Partitions int
}

// Stats sums merge/forward accounting across all tiers.
func (t *CombinerTree) Stats() (reportsMerged, framesOut int64) {
	for _, m := range t.Mid {
		s := m.Stats()
		reportsMerged += s.CombinerReportsMerged
		framesOut += s.CombinerFramesOut
	}
	s := t.Root.Stats()
	return reportsMerged + s.CombinerReportsMerged, framesOut + s.CombinerFramesOut
}

// EnableCombinerTree stands up a 2-tier combiner tree on the cluster bus
// and re-points every agent (current and future) at its partition topic.
// Agent reports then flow partition → owning mid combiner → root →
// frontend(s), so no frontend subscription scales with agent count. Call
// once, before or after starting processes.
func (c *Cluster) EnableCombinerTree(spec TreeSpec) *CombinerTree {
	if spec.MidCombiners <= 0 {
		spec.MidCombiners = 4
	}
	if spec.Partitions <= 0 {
		spec.Partitions = 4 * spec.MidCombiners
	}
	if spec.Interval <= 0 {
		spec.Interval = c.cfg.ReportInterval
	}

	members := make([]string, spec.MidCombiners)
	for i := range members {
		members[i] = fmt.Sprintf("combiner-mid-%d", i)
	}
	topics := combiner.PartitionTopics(spec.Partitions)
	tree := &CombinerTree{Partitions: spec.Partitions}
	for _, name := range members {
		tree.Mid = append(tree.Mid, combiner.New(c.Env, "combiners", name, c.Bus, combiner.Config{
			Interval:  spec.Interval,
			Subscribe: combiner.Owned(topics, members, name),
			Upstream:  combiner.RootTopic,
		}))
	}
	tree.Root = combiner.New(c.Env, "combiners", "combiner-root", c.Bus, combiner.Config{
		Interval:      spec.Interval,
		Subscribe:     []string{combiner.RootTopic},
		TenantRouting: spec.TenantRouting,
	})

	c.mu.Lock()
	c.tree = tree
	procs := append([]*Process(nil), c.procs...)
	c.mu.Unlock()
	for _, p := range procs {
		if p.Agent != nil {
			p.Agent.SetReportTopic(agentPartitionTopic(p.Info.Host, p.Info.ProcName, spec.Partitions))
		}
	}
	return tree
}

// Tree returns the cluster's combiner tree, or nil if none was enabled.
func (c *Cluster) Tree() *CombinerTree {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tree
}

func agentPartitionTopic(host, proc string, parts int) string {
	return combiner.PartitionTopic(combiner.Partition(host, proc, parts), parts)
}

// FlushTree flushes the tree tiers in dataflow order (mids, then root) so
// everything agents have already published reaches the frontends. Safe to
// call with no tree enabled.
func (c *Cluster) FlushTree() {
	tree := c.Tree()
	if tree == nil {
		return
	}
	for _, m := range tree.Mid {
		m.Flush()
	}
	tree.Root.Flush()
}

// NewTenantFrontend creates an additional frontend for the named tenant
// on the cluster's bus, sharing the master tracepoint registry. share is
// the fair-share divisor applied to the tenant's install budgets
// (normally the planned tenant count). The cluster renews the tenant's
// leases alongside the primary's, and processes started later replay the
// tenant's installs like the primary's.
func (c *Cluster) NewTenantFrontend(tenant string, share int) *core.PivotTracing {
	pt := core.NewWithOptions(c.Bus, c.PT.Registry(), core.Options{Tenant: tenant, Share: share})
	c.mu.Lock()
	c.tenants = append(c.tenants, pt)
	c.mu.Unlock()
	return pt
}

// TenantFrontends returns the live tenant frontends in creation order.
func (c *Cluster) TenantFrontends() []*core.PivotTracing {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*core.PivotTracing(nil), c.tenants...)
}

// DropTenantFrontend disconnects a tenant frontend: it stops receiving
// results and the cluster stops renewing its leases, so agents shed its
// queries at lease expiry — the tenant-death story.
func (c *Cluster) DropTenantFrontend(pt *core.PivotTracing) {
	c.mu.Lock()
	for i, t := range c.tenants {
		if t == pt {
			c.tenants = append(c.tenants[:i], c.tenants[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	pt.Close()
}

// RenewLeases renews the primary's and every tenant frontend's query
// leases. The cluster's renewal loop calls this on the virtual clock.
func (c *Cluster) RenewLeases() {
	c.PT.RenewLeases()
	for _, t := range c.TenantFrontends() {
		t.RenewLeases()
	}
}
