package wire

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// paperQueryTexts exercises the codec against realistic compiled plans.
var paperQueryTexts = []string{
	`From incr In DataNodeMetrics.incrBytesRead
	 GroupBy incr.host Select incr.host, SUM(incr.delta)`,
	`From incr In DataNodeMetrics.incrBytesRead
	 Join cl In First(ClientProtocols) On cl -> incr
	 GroupBy cl.procName Select cl.procName, SUM(incr.delta)`,
	`From DNop In DN.DataTransferProtocol
	 Join getloc In NN.GetBlockLocations On getloc -> DNop
	 Join st In StressTest.DoNextOp On st -> getloc
	 Where st.host != DNop.host
	 GroupBy DNop.host, getloc.replicas
	 Select DNop.host, getloc.replicas, COUNT`,
	`From response In SendResponse
	 Join request In MostRecent(ReceiveRequest) On request -> response
	 Select response.time - request.time`,
}

func codecRegistry() *tracepoint.Registry {
	reg := tracepoint.NewRegistry()
	reg.Define("DataNodeMetrics.incrBytesRead", "delta")
	reg.Define("ClientProtocols")
	reg.Define("DN.DataTransferProtocol", "op", "size")
	reg.Define("NN.GetBlockLocations", "src", "replicas")
	reg.Define("StressTest.DoNextOp", "op")
	reg.Define("SendResponse")
	reg.Define("ReceiveRequest")
	return reg
}

func TestProgramCodecRoundtripsPaperPlans(t *testing.T) {
	reg := codecRegistry()
	for i, text := range paperQueryTexts {
		q, err := query.Parse(text)
		if err != nil {
			t.Fatalf("q%d: %v", i, err)
		}
		q.Name = "q"
		p, err := plan.Compile(q, reg, nil, plan.Optimized)
		if err != nil {
			t.Fatalf("q%d: %v", i, err)
		}
		for _, prog := range p.Programs {
			buf := AppendProgram(nil, prog)
			got, rest, err := DecodeProgram(buf)
			if err != nil {
				t.Fatalf("q%d %s: %v", i, prog.Tracepoint, err)
			}
			if len(rest) != 0 {
				t.Fatalf("q%d %s: %d trailing bytes", i, prog.Tracepoint, len(rest))
			}
			// The paper-notation rendering covers every field that affects
			// behaviour except emit/bindings details; compare it plus key
			// fields directly.
			if got.String() != prog.String() {
				t.Errorf("q%d %s:\nwant %s\ngot  %s", i, prog.Tracepoint, prog, got)
			}
			if got.QueryID != prog.QueryID || got.Tracepoint != prog.Tracepoint {
				t.Errorf("q%d: identity fields differ", i)
			}
			if (got.Emit == nil) != (prog.Emit == nil) {
				t.Fatalf("q%d: emit presence differs", i)
			}
			if got.Emit != nil && len(got.Emit.Cols) != len(prog.Emit.Cols) {
				t.Errorf("q%d: emit cols differ", i)
			}
			if len(got.Filters) != len(prog.Filters) {
				t.Errorf("q%d: filters differ", i)
			}
			for fi := range got.Filters {
				if len(got.Filters[fi].Bindings) != len(prog.Filters[fi].Bindings) {
					t.Errorf("q%d: filter bindings differ", i)
				}
			}
		}
	}
}

func TestExprCodecRoundtrip(t *testing.T) {
	q, err := query.Parse(`From e In Tp Where (e.a + 2) * e.b >= 10 && !(e.s = "x") || e.t - 1.5 < 0 Select COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	expr := q.Where[0]
	buf := AppendExpr(nil, expr)
	got, rest, err := DecodeExpr(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (%d trailing)", err, len(rest))
	}
	if got.String() != expr.String() {
		t.Fatalf("expr roundtrip: %s != %s", got, expr)
	}
}

func TestMessageCodecRoundtrip(t *testing.T) {
	// Install.
	prog := &advice.Program{
		QueryID: "Q1", Tracepoint: "Tp",
		Observe: []int{0}, ObserveFields: tuple.Schema{"e.host"},
		Emit: &advice.EmitOp{
			Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: -1, Fn: agg.Count}},
			GroupBy: []int{0}, Schema: tuple.Schema{"host", "COUNT"},
		},
	}
	in := agent.Install{QueryID: "Q1", Programs: []*advice.Program{prog}}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	gi, ok := got.(agent.Install)
	if !ok || gi.QueryID != "Q1" || len(gi.Programs) != 1 {
		t.Fatalf("install roundtrip = %#v", got)
	}

	// Uninstall.
	buf, _ = Marshal(agent.Uninstall{QueryID: "Q9"})
	got, err = Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gu, ok := got.(agent.Uninstall); !ok || gu.QueryID != "Q9" {
		t.Fatalf("uninstall roundtrip = %#v", got)
	}

	// Report with groups and raws.
	st := agg.New(agg.Sum)
	st.Add(tuple.Int(42))
	rep := agent.Report{
		QueryID: "Q1", Host: "h", ProcName: "p", Time: 5 * time.Second,
		Groups: []*advice.Group{{
			Key: "k", Rep: tuple.Tuple{tuple.String("h"), tuple.Int(1)},
			States: []*agg.State{st},
		}},
		Raws: []tuple.Tuple{{tuple.Float(1.5)}},
	}
	buf, err = Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	gr, ok := got.(agent.Report)
	if !ok || gr.Time != 5*time.Second || len(gr.Groups) != 1 || len(gr.Raws) != 1 {
		t.Fatalf("report roundtrip = %#v", got)
	}
	if gr.Groups[0].States[0].Result().Int() != 42 {
		t.Fatalf("state roundtrip = %v", gr.Groups[0].States[0].Result())
	}

	// ReportBatch: reports coalesced into one frame survive intact and in
	// order.
	batch := agent.ReportBatch{
		Host: "h", ProcName: "p", Time: 6 * time.Second,
		Reports: []agent.Report{rep, {QueryID: "Q2", Host: "h", ProcName: "p", Time: 6 * time.Second}},
	}
	buf, err = Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err = Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	gb, ok := got.(agent.ReportBatch)
	if !ok || gb.Host != "h" || gb.Time != 6*time.Second || len(gb.Reports) != 2 {
		t.Fatalf("batch roundtrip = %#v", got)
	}
	if gb.Reports[0].QueryID != "Q1" || gb.Reports[1].QueryID != "Q2" {
		t.Fatalf("batch order lost: %q, %q", gb.Reports[0].QueryID, gb.Reports[1].QueryID)
	}
	if gb.Reports[0].Groups[0].States[0].Result().Int() != 42 {
		t.Fatalf("batched state roundtrip = %v", gb.Reports[0].Groups[0].States[0].Result())
	}

	// Unknown type.
	if _, err := Marshal(struct{}{}); err == nil {
		t.Error("unknown type should fail to marshal")
	}
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Error("bad tag should fail to unmarshal")
	}
}

// TestGovernanceCodecRoundtrip covers the safety-valve additions to the
// wire format: install leases and accumulator limits, per-program safety
// bounds, lease renewals, quarantine notices, report drop records, and
// the governance counters in heartbeat stats.
func TestGovernanceCodecRoundtrip(t *testing.T) {
	roundtrip := func(msg any) any {
		t.Helper()
		buf, err := Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	prog := &advice.Program{
		QueryID: "Q1", Tracepoint: "Tp",
		Observe: []int{0}, ObserveFields: tuple.Schema{"e.host"},
		Safety: advice.Safety{
			Budget:      baggage.Budget{MaxBytes: 4096, MaxTuples: -1},
			FaultLimit:  5,
			CostCeiling: -1,
		},
		Emit: &advice.EmitOp{
			Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: -1, Fn: agg.Count}},
			GroupBy: []int{0}, Schema: tuple.Schema{"host", "COUNT"},
		},
	}
	in := agent.Install{
		QueryID:  "Q1",
		Programs: []*advice.Program{prog},
		TTL:      45 * time.Second,
		Limits:   advice.Limits{MaxGroups: 128, MaxRaws: -1},
	}
	gi := roundtrip(in).(agent.Install)
	if gi.TTL != in.TTL || gi.Limits != in.Limits {
		t.Fatalf("install lease/limits roundtrip = %+v", gi)
	}
	if got := gi.Programs[0].Safety; got != prog.Safety {
		t.Fatalf("program safety roundtrip = %+v, want %+v", got, prog.Safety)
	}

	rn := agent.Renew{QueryIDs: []string{"Q1", "Q2"}, TTL: 9 * time.Second}
	gr := roundtrip(rn).(agent.Renew)
	if gr.TTL != rn.TTL || len(gr.QueryIDs) != 2 || gr.QueryIDs[0] != "Q1" || gr.QueryIDs[1] != "Q2" {
		t.Fatalf("renew roundtrip = %+v", gr)
	}

	qn := agent.Quarantine{
		QueryID: "Q1", Tracepoint: "Tp", Host: "h3", ProcName: "dn",
		Reason: "3 advice panics at Tp (last: boom)", Time: 11 * time.Second,
	}
	if gq := roundtrip(qn).(agent.Quarantine); gq != qn {
		t.Fatalf("quarantine roundtrip = %+v, want %+v", gq, qn)
	}

	rep := agent.Report{
		QueryID: "Q1", Host: "h", ProcName: "p", Time: time.Second,
		Drops: []baggage.DropRecord{
			{Slot: "Q1.a", Key: "\x02k1"},
			{Slot: "Q1.b"}, // whole-slot tombstone
		},
	}
	grep := roundtrip(rep).(agent.Report)
	if len(grep.Drops) != 2 || grep.Drops[0] != rep.Drops[0] || grep.Drops[1] != rep.Drops[1] {
		t.Fatalf("report drops roundtrip = %+v", grep.Drops)
	}

	// Fill every Stats field with a distinct value via reflection so the
	// test fails the moment a counter is added to agent.Stats without a
	// matching wire encode/decode pair: the new field would round-trip to
	// zero and the struct comparison below would catch it.
	hb := agent.Heartbeat{
		Host: "h", ProcName: "p", Time: time.Second, Interval: time.Second, Queries: 2,
	}
	sv := reflect.ValueOf(&hb.Stats).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetInt(int64(i + 1))
	}
	ghb := roundtrip(hb).(agent.Heartbeat)
	if ghb.Stats != hb.Stats {
		gv := reflect.ValueOf(ghb.Stats)
		for i := 0; i < sv.NumField(); i++ {
			if gv.Field(i).Int() != sv.Field(i).Int() {
				t.Errorf("heartbeat stats field %s: got %d, want %d (missing wire codec support?)",
					sv.Type().Field(i).Name, gv.Field(i).Int(), sv.Field(i).Int())
			}
		}
	}
}

// TestDistributedDeployment is the full multi-process flow over real TCP:
// a frontend process and a monitored "worker" process, each with its own
// local bus, connected through the central pub/sub server. A query
// installed at the frontend weaves advice in the worker; baggage crosses
// the process boundary via serialized bytes; reports flow back and
// aggregate at the frontend.
func TestDistributedDeployment(t *testing.T) {
	const (
		controlTopic = agent.ControlTopic
		resultsTopic = agent.ResultsTopic
	)
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Frontend process.
	feBus := bus.New()
	feReg := tracepoint.NewRegistry()
	feReg.Define("API.Receive", "app")
	feReg.Define("Storage.Read", "bytes")
	frontend := core.New(feBus, feReg)
	feLink, err := bus.Connect(feBus, srv.Addr(), BusCodec{},
		[]string{controlTopic}, []string{resultsTopic})
	if err != nil {
		t.Fatal(err)
	}
	defer feLink.Close()

	// Worker process: its own registry and agent, bridged the other way.
	wBus := bus.New()
	wReg := tracepoint.NewRegistry()
	apiTp := wReg.Define("API.Receive", "app")
	readTp := wReg.Define("Storage.Read", "bytes")
	ag := agent.New(nil, tracepoint.ProcInfo{Host: "worker-1", ProcName: "storage"}, wReg, wBus, 0)
	wLink, err := bus.Connect(wBus, srv.Addr(), BusCodec{},
		[]string{resultsTopic}, []string{controlTopic})
	if err != nil {
		t.Fatal(err)
	}
	defer wLink.Close()

	// Install at the frontend; the advice must arrive and weave remotely.
	h, err := frontend.Install(`From r In Storage.Read
		Join api In First(API.Receive) On api -> r
		GroupBy api.app
		Select api.app, SUM(r.bytes), COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(func() bool { return readTp.Enabled() }, 3*time.Second) {
		t.Fatal("advice did not weave in the worker within 3s")
	}

	// Drive requests in the worker, with an explicit baggage wire hop
	// between the "api" and "storage" moments of each request.
	for i := 0; i < 10; i++ {
		ctx := tracepoint.WithProc(context.Background(),
			tracepoint.ProcInfo{Host: "api-1", ProcName: "api"})
		ctx = baggage.NewContext(ctx, baggage.New())
		apiTp.Here(ctx, "batch")
		hop := baggage.FromContext(ctx).Serialize()

		sctx := tracepoint.WithProc(context.Background(),
			tracepoint.ProcInfo{Host: "worker-1", ProcName: "storage"})
		sctx = baggage.NewContext(sctx, baggage.Deserialize(hop))
		readTp.Here(sctx, 1000)
	}
	ag.Flush()

	if !waitFor(func() bool { return len(h.Rows()) == 1 }, 3*time.Second) {
		t.Fatalf("no rows at the frontend; rows = %v", h.Rows())
	}
	row := h.Rows()[0]
	if row[0].Str() != "batch" || row[1].Int() != 10000 || row[2].Int() != 10 {
		t.Fatalf("row = %v, want (batch, 10000, 10)", row)
	}

	// Uninstall travels too.
	h.Uninstall()
	if !waitFor(func() bool { return !readTp.Enabled() }, 3*time.Second) {
		t.Fatal("uninstall did not unweave in the worker")
	}
}

func waitFor(cond func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}
