package baggage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/agg"
	"repro/internal/randtest"
	"repro/internal/tuple"
)

// branchTree drives a random sequence of pack/split/join/serialize
// operations over a set of live baggage branches, tracking the expected
// total count packed into an AGG(COUNT) slot. The invariant: after joining
// everything back together, the count equals the number of packs — every
// tuple delivered exactly once, across any branching topology and any
// number of wire round-trips.
func branchTree(seed int64, steps int) (got, want int64) {
	rng := rand.New(rand.NewSource(seed))
	spec := SetSpec{Kind: Agg, Fields: tuple.Schema{"v"},
		Aggs: []AggField{{Pos: 0, Fn: agg.Count}}}
	live := []*Baggage{New()}
	var packs int64
	for i := 0; i < steps; i++ {
		k := rng.Intn(len(live))
		switch rng.Intn(5) {
		case 0, 1: // pack
			live[k].Pack("c", spec, tuple.Tuple{tuple.Int(int64(i))})
			packs++
		case 2: // split
			a, b := live[k].Split()
			live[k] = a
			live = append(live, b)
		case 3: // join two branches
			if len(live) > 1 {
				j := rng.Intn(len(live))
				if j != k {
					merged := Join(live[k], live[j])
					live[k] = merged
					live = append(live[:j], live[j+1:]...)
				}
			}
		case 4: // wire round-trip
			live[k] = Deserialize(live[k].Serialize())
		}
	}
	all := live[0]
	for _, b := range live[1:] {
		all = Join(all, b)
	}
	rows := all.Unpack("c")
	if len(rows) == 0 {
		return 0, packs
	}
	return rows[0][0].Int(), packs
}

func TestQuickExactlyOnceAcrossBranchTopologies(t *testing.T) {
	randtest.Check(t, 300, 100, func(seed int64) error {
		got, want := branchTree(seed, 40)
		if got != want {
			return fmt.Errorf("count = %d after rejoining all branches, want %d packs", got, want)
		}
		return nil
	})
}

// allKinds is one SetSpec per set kind, for round-trip and merge checks.
var allKinds = []SetSpec{
	{Kind: All, Fields: tuple.Schema{"a", "b"}},
	{Kind: First, Fields: tuple.Schema{"a", "b"}},
	{Kind: FirstN, N: 3, Fields: tuple.Schema{"a", "b"}},
	{Kind: Recent, Fields: tuple.Schema{"a", "b"}},
	{Kind: RecentN, N: 2, Fields: tuple.Schema{"a", "b"}},
	{Kind: Frontier, Fields: tuple.Schema{"a", "b"}},
	{Kind: Agg, Fields: tuple.Schema{"a", "b"},
		GroupBy: []int{0}, Aggs: []AggField{{Pos: 1, Fn: agg.Sum}}},
}

// TestQuickSerializeRoundtripPreservesEverything: serialize/deserialize is
// lossless for random baggage contents across all set kinds.
func TestQuickSerializeRoundtripPreservesEverything(t *testing.T) {
	randtest.Check(t, 200, 200, func(seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		b := New()
		for s, spec := range allKinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			for i := 0; i < 1+rng.Intn(5); i++ {
				b.Pack(slot, spec, tuple.Tuple{
					tuple.String(string(rune('x' + rng.Intn(3)))),
					tuple.Int(int64(rng.Intn(100))),
				})
			}
		}
		d := Deserialize(b.Serialize())
		for s, spec := range allKinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			want := b.Unpack(slot)
			got := d.Unpack(slot)
			if len(want) != len(got) {
				return fmt.Errorf("slot %s: %d rows after round-trip, want %d", slot, len(got), len(want))
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					return fmt.Errorf("slot %s row %d: %v after round-trip, want %v", slot, i, got[i], want[i])
				}
			}
		}
		if d.ByteSize() != b.ByteSize() {
			return fmt.Errorf("ByteSize %d after round-trip, want %d", d.ByteSize(), b.ByteSize())
		}
		return nil
	})
}

// TestQuickSplitNeverLeaksAcrossSiblings: tuples packed in one branch are
// never visible in a concurrent sibling, for random nested splits.
func TestQuickSplitNeverLeaksAcrossSiblings(t *testing.T) {
	spec := SetSpec{Kind: All, Fields: tuple.Schema{"v"}}
	randtest.Check(t, 200, 300, func(seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		root := New()
		a, b := root.Split()
		// Randomly nest splits under a; pack only in the a-subtree.
		branches := []*Baggage{a}
		for i := 0; i < rng.Intn(4); i++ {
			k := rng.Intn(len(branches))
			l, r := branches[k].Split()
			branches[k] = l
			branches = append(branches, r)
		}
		for _, br := range branches {
			br.Pack("s", spec, tuple.Tuple{tuple.Int(1)})
		}
		if rows := b.Unpack("s"); rows != nil {
			return fmt.Errorf("sibling branch sees %d leaked rows", len(rows))
		}
		return nil
	})
}

// TestQuickMergeCommutesWithWireRoundtrip: joining two branches gives the
// same result whether or not each branch first crossed the wire — i.e. the
// Set merge/union semantics of every kind (append, left-wins, capacity
// clamps, frontier dedup, AGG group merge) survive the varint codec.
func TestQuickMergeCommutesWithWireRoundtrip(t *testing.T) {
	randtest.Check(t, 200, 400, func(seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		left, right := New().Split()
		for s, spec := range allKinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			for _, br := range []*Baggage{left, right} {
				for i := 0; i < rng.Intn(5); i++ {
					br.Pack(slot, spec, tuple.Tuple{
						tuple.String(string(rune('x' + rng.Intn(3)))),
						tuple.Int(int64(rng.Intn(100))),
					})
				}
			}
		}
		direct := Join(left, right)
		wired := Join(Deserialize(left.Serialize()), Deserialize(right.Serialize()))
		for s, spec := range allKinds {
			slot := spec.Kind.String() + string(rune('0'+s))
			want := direct.Unpack(slot)
			got := wired.Unpack(slot)
			if len(want) != len(got) {
				return fmt.Errorf("slot %s: wired join has %d rows, direct has %d", slot, len(got), len(want))
			}
			for i := range want {
				if !want[i].Equal(got[i]) {
					return fmt.Errorf("slot %s row %d: wired %v, direct %v", slot, i, got[i], want[i])
				}
			}
			// Kind-specific merge invariants.
			switch spec.Kind {
			case First, Recent:
				if len(got) > 1 {
					return fmt.Errorf("slot %s: %d rows, capacity is 1", slot, len(got))
				}
			case FirstN, RecentN:
				if len(got) > spec.N {
					return fmt.Errorf("slot %s: %d rows, capacity is %d", slot, len(got), spec.N)
				}
			case Frontier:
				for i := range got {
					for j := i + 1; j < len(got); j++ {
						if got[i].Equal(got[j]) {
							return fmt.Errorf("slot %s: duplicate frontier rows %d and %d", slot, i, j)
						}
					}
				}
			}
		}
		return nil
	})
}
