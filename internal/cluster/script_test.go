package cluster

import (
	"strings"
	"testing"
	"time"

	"repro/internal/querygen"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// TestScriptExecDrivesDemoCase runs the fixed demo case through
// ScriptExec on a simulated cluster with span capture enabled: every
// scripted event must be stamped by the executor, and each Run must
// reconstruct as its own trace.
func TestScriptExecDrivesDemoCase(t *testing.T) {
	c := querygen.DemoCase()
	var (
		runErrs []error
		traces  int
		spans   int64
	)
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := New(env, cfg)
		builder := cl.EnableSpans(0)
		x := NewScriptExec(cl, c)
		for i := 0; i < 2; i++ {
			if err := x.Run(); err != nil {
				runErrs = append(runErrs, err)
				return
			}
			env.Sleep(time.Millisecond)
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		traces = len(builder.TraceIDs())
		for _, p := range x.Procs {
			spans += p.Agent.Stats().SpansCaptured
		}
	})
	for _, err := range runErrs {
		t.Fatal(err)
	}
	for i := range c.Events {
		if !c.Events[i].Stamped {
			t.Fatalf("event %d was never stamped by the executor", i)
		}
		if c.Events[i].Host == "" || c.Events[i].ProcName == "" {
			t.Fatalf("event %d stamped without process identity: %+v", i, c.Events[i])
		}
	}
	if traces != 2 {
		t.Fatalf("want 2 traces (one per Run), got %d", traces)
	}
	// 4 crossings per request × 2 requests, split across the 3 agents.
	if spans != 8 {
		t.Fatalf("want 8 captured spans, got %d", spans)
	}
}

// miniCase builds a two-process case with one tracepoint, one event per
// process, and the given op script — small enough for table-driven
// error-path tests.
func miniCase(ops []querygen.Op) *querygen.Case {
	return &querygen.Case{
		TPs:       []querygen.TP{{Name: "MiniTP", Fields: []querygen.Field{{Name: "v", Kind: tuple.KindInt}}}},
		NumProcs:  2,
		Hosts:     []string{"h0", "h1"},
		ProcNames: []string{"P0", "P1"},
		Events: []querygen.Event{
			{ID: 0, TP: 0, Proc: 0, Args: []tuple.Value{tuple.Int(1)}},
			{ID: 1, TP: 0, Proc: 1, Args: []tuple.Value{tuple.Int(2)}},
		},
		Ops: ops,
	}
}

// TestScriptExecErrorPaths exercises the executor's script/substrate
// consistency checks: a fire whose branch sits in the wrong process must
// record exactly one (the first) descriptive error, while consistent
// scripts — including ones routed through splits and transfers — run
// clean.
func TestScriptExecErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		ops     []querygen.Op
		wantErr string
	}{
		{
			name: "fire in untransferred branch",
			ops: []querygen.Op{
				{Kind: querygen.OpFire, Branch: 0, Event: 1},
			},
			wantErr: "branch 0 is in proc 0 but event 1 was generated for proc 1",
		},
		{
			name: "first error latches",
			ops: []querygen.Op{
				{Kind: querygen.OpFire, Branch: 0, Event: 1}, // wrong proc
				{Kind: querygen.OpTransfer, Branch: 0, Proc: 1},
				{Kind: querygen.OpFire, Branch: 0, Event: 0}, // also wrong: now in proc 1
			},
			wantErr: "event 1 was generated for proc 1",
		},
		{
			name: "split child stays in parent proc",
			ops: []querygen.Op{
				{Kind: querygen.OpSplit, Branch: 0},
				{Kind: querygen.OpTransfer, Branch: 0, Proc: 1}, // parent moves, child does not
				{Kind: querygen.OpFire, Branch: 1, Event: 1},    // child is still in proc 0
			},
			wantErr: "branch 1 is in proc 0 but event 1 was generated for proc 1",
		},
		{
			name: "transfer then fire is consistent",
			ops: []querygen.Op{
				{Kind: querygen.OpFire, Branch: 0, Event: 0},
				{Kind: querygen.OpTransfer, Branch: 0, Proc: 1},
				{Kind: querygen.OpFire, Branch: 0, Event: 1},
			},
		},
		{
			name: "split transfer join round trip",
			ops: []querygen.Op{
				{Kind: querygen.OpSplit, Branch: 0},
				{Kind: querygen.OpTransfer, Branch: 1, Proc: 1},
				{Kind: querygen.OpFire, Branch: 1, Event: 1},
				{Kind: querygen.OpTransfer, Branch: 1, Proc: 0},
				{Kind: querygen.OpJoin, Branch: 0, Other: 1},
				{Kind: querygen.OpFire, Branch: 0, Event: 0},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := miniCase(tc.ops)
			var err error
			env := simtime.NewEnv()
			env.Run(func() {
				cl := New(env, DefaultConfig())
				err = NewScriptExec(cl, c).Run()
			})
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
