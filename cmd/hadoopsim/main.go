// Command hadoopsim runs the paper's §2.1 motivating experiment (Fig 1):
// six client applications — FSread4m, FSread64m, Hget, Hscan, MRsort10g,
// MRsort100g — share a simulated Hadoop cluster while three Pivot Tracing
// queries apportion disk bandwidth per machine, per application, and per
// (machine, source process) for the MRsort10g pivot table.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig1Config()
	flag.IntVar(&cfg.Hosts, "hosts", cfg.Hosts, "worker host count")
	flag.DurationVar(&cfg.Duration, "duration", cfg.Duration, "virtual experiment duration")
	flag.Float64Var(&cfg.Sort10g, "sort10g", cfg.Sort10g, "MRsort10g input bytes")
	flag.Float64Var(&cfg.Sort100g, "sort100g", cfg.Sort100g, "MRsort100g input bytes")
	flag.Parse()

	start := time.Now()
	res, err := experiments.RunFig1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hadoopsim:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
	fmt.Printf("\n(%v of virtual time simulated in %v)\n",
		cfg.Duration, time.Since(start).Round(time.Millisecond))
}
