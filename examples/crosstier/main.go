// Crosstier: the paper's headline capability on a toy two-tier system —
// group a low-level storage metric by the top-level application that
// caused the work, across a process boundary.
//
// An API tier receives requests from several client applications and calls
// a storage tier. Baggage crosses the "network" via pivot.Inject /
// pivot.Extract (in a real system: an RPC header). The query observes
// bytes at the storage tier but groups by the client application name
// recorded at the API tier — exactly Q2 of the paper.
//
//	go run ./examples/crosstier
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/pivot"
)

// storageTier is a separate logical process with its own tracepoints.
type storageTier struct {
	pt     *pivot.PT
	tpRead *pivot.Tracepoint
}

// handle processes one wire request: extract baggage, do the read.
func (s *storageTier) handle(wire []byte, size int) {
	ctx := pivot.Extract(context.Background(), wire)
	ctx = pivot.WithProcess(ctx, "storage-1", "storage")
	s.tpRead.Here(ctx, size)
}

func main() {
	// A single runtime stands in for the shared tracepoint vocabulary and
	// message bus of a distributed deployment.
	pt := pivot.New("demo")
	tpAPI := pt.Define("API.Receive", "app")
	storage := &storageTier{pt: pt, tpRead: pt.Define("Storage.Read", "bytes")}

	q, err := pt.Install(`
		From r In Storage.Read
		Join api In First(API.Receive) On api -> r
		GroupBy api.app
		Select api.app, SUM(r.bytes), COUNT`)
	if err != nil {
		panic(err)
	}

	apps := []struct {
		name string
		size int
	}{
		{"mobile-app", 4 << 10},
		{"batch-export", 4 << 20},
		{"dashboard", 64 << 10},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 600; i++ {
		app := apps[rng.Intn(len(apps))]

		// API tier: record the application, then call storage with the
		// baggage serialized into the request "header".
		ctx := pivot.WithProcess(pt.NewRequest(context.Background()), "api-1", "api")
		tpAPI.Here(ctx, app.name)
		wire := pivot.Inject(ctx)

		storage.handle(wire, app.size)
	}

	pt.Flush()
	fmt.Println("storage bytes by originating application (happened-before join):")
	fmt.Printf("%-14s %14s %8s\n", "app", "bytes", "reads")
	for _, row := range q.Rows() {
		fmt.Printf("%-14s %14s %8s\n", row[0], row[1], row[2])
	}
}
