// Package agg implements Pivot Tracing's aggregators — Count, Sum, Min, Max,
// Average — as mergeable partial states. The same state type is used at
// every aggregation stage: pack-time aggregation in baggage (Table 3's
// Combine rewrites), process-local aggregation in agents, and global
// aggregation at the query frontend. Merge is associative and commutative,
// so the stages compose.
package agg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/tuple"
)

// Func identifies an aggregation function.
type Func uint8

// Supported aggregators.
const (
	Count Func = iota
	Sum
	Min
	Max
	Average
)

// FromName parses an aggregator name as written in queries (COUNT, SUM...).
func FromName(name string) (Func, bool) {
	switch name {
	case "COUNT":
		return Count, true
	case "SUM":
		return Sum, true
	case "MIN":
		return Min, true
	case "MAX":
		return Max, true
	case "AVERAGE", "AVG":
		return Average, true
	default:
		return 0, false
	}
}

func (f Func) String() string {
	switch f {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Average:
		return "AVERAGE"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Combiner returns the aggregator that merges partial results of f across
// stages: COUNT partials are summed, everything else merges with itself.
// (Table 3 of the paper calls this the aggregator's combiner.)
func (f Func) Combiner() Func {
	if f == Count {
		return Sum
	}
	return f
}

// State is a mergeable partial aggregate. The zero value is not usable;
// construct with New.
//
// A state fed only unit-weight values (Add) is exact and carries no
// extra bytes on the wire. Folding any value with a weight != 1
// (AddWeighted — inverse-sampling-rate scaling) marks the state
// inexact; the flag and the weighted sums survive every pairwise Merge,
// so a sampled contribution anywhere in a combiner tree labels the
// final result approximate end to end.
type State struct {
	fn       Func
	count    int64
	sumI     int64
	sumF     float64
	anyFloat bool
	minmax   tuple.Value // current MIN or MAX value
	seen     bool

	// Weighted (Horvitz-Thompson) companions to count/sum. Exact states
	// maintain the invariant wcount == float64(count), wsum == sumF, so
	// exact and inexact partials merge without special cases.
	inexact bool
	wcount  float64 // Σ weight
	wsum    float64 // Σ weight·value (Sum/Average)
}

// New returns an empty partial state for fn.
func New(fn Func) *State { return &State{fn: fn} }

// Fn returns the state's aggregator.
func (s *State) Fn() Func { return s.fn }

// Add folds one observed value into the state with unit weight.
func (s *State) Add(v tuple.Value) { s.AddWeighted(v, 1) }

// AddWeighted folds one observed value carrying the given weight
// (1/sampling-rate for sampled observations). A weight other than 1
// marks the state inexact: COUNT and SUM become weighted estimates,
// MIN/MAX/AVERAGE keep their natural fold but are labeled approximate.
func (s *State) AddWeighted(v tuple.Value, w float64) {
	s.count++
	if w != 1 {
		s.inexact = true
	}
	s.wcount += w
	switch s.fn {
	case Count:
		// nothing but the counts
	case Sum, Average:
		if v.Kind() == tuple.KindFloat {
			s.anyFloat = true
		}
		s.sumI += v.Int()
		s.sumF += v.Float()
		s.wsum += w * v.Float()
	case Min:
		if !s.seen || v.Compare(s.minmax) < 0 {
			s.minmax = v
		}
	case Max:
		if !s.seen || v.Compare(s.minmax) > 0 {
			s.minmax = v
		}
	}
	s.seen = true
}

// Merge folds another partial state (same aggregator) into s.
func (s *State) Merge(o *State) {
	if s.fn != o.fn {
		panic(fmt.Sprintf("agg: merging %v into %v", o.fn, s.fn))
	}
	if !o.seen {
		return
	}
	s.count += o.count
	s.inexact = s.inexact || o.inexact
	s.wcount += o.wcount
	s.wsum += o.wsum
	switch s.fn {
	case Count:
	case Sum, Average:
		s.anyFloat = s.anyFloat || o.anyFloat
		s.sumI += o.sumI
		s.sumF += o.sumF
	case Min:
		if !s.seen || o.minmax.Compare(s.minmax) < 0 {
			s.minmax = o.minmax
		}
	case Max:
		if !s.seen || o.minmax.Compare(s.minmax) > 0 {
			s.minmax = o.minmax
		}
	}
	s.seen = true
}

// Result returns the aggregate value for the state. Inexact states
// report the weighted (inverse-rate-scaled) estimate for COUNT and SUM
// and the weighted mean for AVERAGE; MIN/MAX report the observed
// extremum (a lower bound on coverage — see Exact).
func (s *State) Result() tuple.Value {
	switch s.fn {
	case Count:
		if s.inexact {
			return tuple.Float(s.wcount)
		}
		return tuple.Int(s.count)
	case Sum:
		if s.inexact {
			return tuple.Float(s.wsum)
		}
		if s.anyFloat {
			return tuple.Float(s.sumF)
		}
		return tuple.Int(s.sumI)
	case Average:
		if s.count == 0 {
			return tuple.Null
		}
		if s.inexact {
			if s.wcount == 0 {
				return tuple.Null
			}
			return tuple.Float(s.wsum / s.wcount)
		}
		return tuple.Float(s.sumF / float64(s.count))
	case Min, Max:
		if !s.seen {
			return tuple.Null
		}
		return s.minmax
	default:
		return tuple.Null
	}
}

// Count returns the raw number of values folded into the state,
// regardless of weights.
func (s *State) Count() int64 { return s.count }

// Exact reports whether the state saw only unit-weight contributions:
// false means some input was sampled and Result is an estimate (for
// MIN/MAX: an extremum over the sampled subset only).
func (s *State) Exact() bool { return !s.inexact }

// Weighted returns the weighted count and weighted sum accumulated so
// far (for exact states these equal the raw count and sum).
func (s *State) Weighted() (count, sum float64) { return s.wcount, s.wsum }

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := *s
	return &c
}

var errTruncated = errors.New("agg: truncated encoding")

// Append serializes the state to buf (for baggage and bus transport).
// The weighted fields are appended only for inexact states (flag bit
// 4), so exact states — including every state produced at sampling
// rate 1.0 — encode byte-identically to the pre-sampling format.
func (s *State) Append(buf []byte) []byte {
	buf = append(buf, byte(s.fn))
	var flags byte
	if s.anyFloat {
		flags |= 1
	}
	if s.seen {
		flags |= 2
	}
	if s.inexact {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, s.count)
	buf = binary.AppendVarint(buf, s.sumI)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], floatBits(s.sumF))
	buf = append(buf, tmp[:]...)
	buf = tuple.AppendValue(buf, s.minmax)
	if s.inexact {
		binary.LittleEndian.PutUint64(tmp[:], floatBits(s.wcount))
		buf = append(buf, tmp[:]...)
		binary.LittleEndian.PutUint64(tmp[:], floatBits(s.wsum))
		buf = append(buf, tmp[:]...)
	}
	return buf
}

// EncodedSize returns the number of bytes Append would write, computed
// arithmetically so budget cost models never allocate a scratch encoding.
func (s *State) EncodedSize() int {
	n := 2 + // fn + flags
		tuple.VarintLen(s.count) + tuple.VarintLen(s.sumI) +
		8 + // sumF fixed64
		tuple.EncodedSize(s.minmax)
	if s.inexact {
		n += 16 // wcount + wsum fixed64s
	}
	return n
}

// Decode deserializes one state from the front of buf.
func Decode(buf []byte) (*State, []byte, error) {
	if len(buf) < 2 {
		return nil, nil, errTruncated
	}
	s := &State{fn: Func(buf[0])}
	flags := buf[1]
	s.anyFloat = flags&1 != 0
	s.seen = flags&2 != 0
	s.inexact = flags&4 != 0
	rest := buf[2:]
	var k int
	s.count, k = binary.Varint(rest)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	rest = rest[k:]
	s.sumI, k = binary.Varint(rest)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	rest = rest[k:]
	if len(rest) < 8 {
		return nil, nil, errTruncated
	}
	s.sumF = floatFromBits(binary.LittleEndian.Uint64(rest))
	rest = rest[8:]
	var err error
	s.minmax, rest, err = tuple.DecodeValue(rest)
	if err != nil {
		return nil, nil, err
	}
	if s.inexact {
		if len(rest) < 16 {
			return nil, nil, errTruncated
		}
		s.wcount = floatFromBits(binary.LittleEndian.Uint64(rest))
		s.wsum = floatFromBits(binary.LittleEndian.Uint64(rest[8:]))
		rest = rest[16:]
	} else {
		// Exact states never ship the weighted fields; rebuild the
		// exact-state invariant so later weighted merges stay correct.
		s.wcount = float64(s.count)
		s.wsum = s.sumF
	}
	return s, rest, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
