package itc

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding: pre-order traversal with one tag byte per node.
// ID nodes: 0 = leaf zero, 1 = leaf one, 2 = interior.
// Event nodes: 0 = leaf (followed by uvarint counter), 1 = interior
// (followed by uvarint base then both children).

const (
	tagIDZero = 0
	tagIDOne  = 1
	tagIDNode = 2
)

var errTruncated = errors.New("itc: truncated encoding")

// AppendID appends the binary encoding of i to buf.
func AppendID(buf []byte, i *ID) []byte {
	if i.Leaf {
		if i.Val == 0 {
			return append(buf, tagIDZero)
		}
		return append(buf, tagIDOne)
	}
	buf = append(buf, tagIDNode)
	buf = AppendID(buf, i.L)
	return AppendID(buf, i.R)
}

// DecodeID decodes an ID from the front of buf, returning the remainder.
func DecodeID(buf []byte) (*ID, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, errTruncated
	}
	tag, rest := buf[0], buf[1:]
	switch tag {
	case tagIDZero:
		return leafID(0), rest, nil
	case tagIDOne:
		return leafID(1), rest, nil
	case tagIDNode:
		l, rest, err := DecodeID(rest)
		if err != nil {
			return nil, nil, err
		}
		r, rest, err := DecodeID(rest)
		if err != nil {
			return nil, nil, err
		}
		return nodeID(l, r), rest, nil
	default:
		return nil, nil, fmt.Errorf("itc: bad ID tag %d", tag)
	}
}

// AppendEvent appends the binary encoding of e to buf.
func AppendEvent(buf []byte, e *Event) []byte {
	if e.Leaf {
		buf = append(buf, 0)
		return binary.AppendUvarint(buf, e.N)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, e.N)
	buf = AppendEvent(buf, e.L)
	return AppendEvent(buf, e.R)
}

// DecodeEvent decodes an Event from the front of buf.
func DecodeEvent(buf []byte) (*Event, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, errTruncated
	}
	tag, rest := buf[0], buf[1:]
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	rest = rest[k:]
	switch tag {
	case 0:
		return leafEv(n), rest, nil
	case 1:
		l, rest, err := DecodeEvent(rest)
		if err != nil {
			return nil, nil, err
		}
		r, rest, err := DecodeEvent(rest)
		if err != nil {
			return nil, nil, err
		}
		return nodeEv(n, l, r), rest, nil
	default:
		return nil, nil, fmt.Errorf("itc: bad event tag %d", tag)
	}
}

// AppendStamp appends the binary encoding of s to buf.
func AppendStamp(buf []byte, s *Stamp) []byte {
	buf = AppendID(buf, s.id)
	return AppendEvent(buf, s.ev)
}

// DecodeStamp decodes a Stamp from the front of buf.
func DecodeStamp(buf []byte) (*Stamp, []byte, error) {
	id, rest, err := DecodeID(buf)
	if err != nil {
		return nil, nil, err
	}
	ev, rest, err := DecodeEvent(rest)
	if err != nil {
		return nil, nil, err
	}
	return &Stamp{id: id, ev: ev}, rest, nil
}

// KeyID returns a compact string form of an ID usable as a map key.
func KeyID(i *ID) string { return string(AppendID(nil, i)) }
