// Package tuple defines the typed tuples that flow through Pivot Tracing:
// the unit of data produced at tracepoints, packed into baggage, emitted to
// agents, and aggregated into query results.
package tuple

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types Pivot Tracing tuples can carry.
type Kind uint8

// Supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a compact tagged union. The zero Value is null.
type Value struct {
	kind Kind
	num  uint64
	str  string
}

// Null is the absent value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: uint64(v)} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, num: math.Float64bits(v)} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n uint64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Of converts a native Go value to a Value. Unsupported types map to a
// string via fmt.
func Of(v any) Value {
	switch x := v.(type) {
	case nil:
		return Null
	case Value:
		return x
	case int:
		return Int(int64(x))
	case int32:
		return Int(int64(x))
	case int64:
		return Int(x)
	case uint:
		return Int(int64(x))
	case uint64:
		return Int(int64(x))
	case float32:
		return Float(float64(x))
	case float64:
		return Float(x)
	case string:
		return String(x)
	case bool:
		return Bool(x)
	case fmt.Stringer:
		return String(x.String())
	default:
		return String(fmt.Sprint(x))
	}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload (0 for non-integers, truncating floats).
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt:
		return int64(v.num)
	case KindFloat:
		return int64(math.Float64frombits(v.num))
	case KindBool:
		return int64(v.num)
	default:
		return 0
	}
}

// Float returns the numeric payload as a float64.
func (v Value) Float() float64 {
	switch v.kind {
	case KindInt:
		return float64(int64(v.num))
	case KindFloat:
		return math.Float64frombits(v.num)
	case KindBool:
		return float64(v.num)
	default:
		return 0
	}
}

// Str returns the string payload ("" for non-strings).
func (v Value) Str() string {
	if v.kind == KindString {
		return v.str
	}
	return ""
}

// Bool returns the boolean payload.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.num != 0
	case KindFloat:
		return math.Float64frombits(v.num) != 0
	default:
		return false
	}
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality, with int/float numeric cross-comparison.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		return v.num == o.num && v.str == o.str
	}
	if v.IsNumeric() && o.IsNumeric() {
		return v.Float() == o.Float()
	}
	return false
}

// Compare returns -1, 0, or +1 ordering v relative to o. Values of
// different non-numeric kinds order by kind.
func (v Value) Compare(o Value) int {
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		switch {
		case v.kind < o.kind:
			return -1
		default:
			return 1
		}
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.str, o.str)
	case KindBool:
		switch {
		case v.num == o.num:
			return 0
		case v.num < o.num:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return v.str
	case KindBool:
		return strconv.FormatBool(v.num != 0)
	default:
		return "?"
	}
}

// Tuple is an ordered list of values. Field names live in the Schema.
type Tuple []Value

// Schema names the fields of a tuple, by position.
type Schema []string

// Index returns the position of field name, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s {
		if f == name {
			return i
		}
	}
	return -1
}

// Concat returns a schema with o's fields appended.
func (s Schema) Concat(o Schema) Schema {
	out := make(Schema, 0, len(s)+len(o))
	out = append(out, s...)
	return append(out, o...)
}

// Equal reports whether two schemas have identical field lists.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

func (s Schema) String() string { return strings.Join(s, ", ") }

// Clone deep-copies a tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns a tuple with o's values appended (the joined tuple t1·t2
// of the paper's happened-before join).
func (t Tuple) Concat(o Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(o))
	out = append(out, t...)
	return append(out, o...)
}

// Equal reports pointwise equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// Project returns the tuple restricted to the given positions.
func (t Tuple) Project(idx []int) Tuple {
	return t.AppendProject(nil, idx)
}

// AppendProject appends the projected columns to dst and returns it,
// reusing dst's capacity. Callers that recycle dst own its lifetime; the
// values themselves are shared with t, not copied.
func (t Tuple) AppendProject(dst Tuple, idx []int) Tuple {
	for _, j := range idx {
		dst = append(dst, t[j])
	}
	return dst
}

// String renders the tuple for display.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key builds a group-by key from the values at the given positions. The
// encoding is injective so distinct groups never collide.
func (t Tuple) Key(idx []int) string {
	return string(t.AppendKey(nil, idx))
}

// AppendKey appends the group-by key encoding (see Key) to buf and returns
// the extended buffer. Callers that look groups up by key can build the key
// in a reused scratch buffer and index their map with string(buf) — the Go
// compiler elides that conversion's allocation for map access — so the
// steady-state lookup path allocates nothing.
func (t Tuple) AppendKey(buf []byte, idx []int) []byte {
	for _, j := range idx {
		buf = AppendValue(buf, t[j])
	}
	return buf
}
