package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkHereParallel/sharded         	 1511832	       229.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkHereParallel/sharded-8       	 1492728	       252.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkHereParallel/sharded         	 1500000	       224.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkHereParallel/sharded-8       	 1400000	       242.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkReportBatch/batched-8        	    1082	    363129 ns/op	         1.000 frames/flush	  107548 B/op	     984 allocs/op
BenchmarkReportBatch/batched-8        	    1100	    360100 ns/op	         1.000 frames/flush	  107000 B/op	     980 allocs/op
PASS
ok  	repro	4.349s
`

func TestParseSummarizesBestOf(t *testing.T) {
	b, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(b), b)
	}
	got := b["BenchmarkHereParallel/sharded-8"]
	if got.NsPerOp != 242.5 || got.AllocsPerOp != 0 || got.BytesPerOp != 0 {
		t.Errorf("sharded-8 best-of = %+v, want min ns/op 242.5 with 0 allocs", got)
	}
	if got := b["BenchmarkHereParallel/sharded"]; got.NsPerOp != 224.1 {
		t.Errorf("sharded best-of ns/op = %v, want 224.1 (min of repeats)", got.NsPerOp)
	}
	batch := b["BenchmarkReportBatch/batched-8"]
	if batch.NsPerOp != 360100 || batch.AllocsPerOp != 980 || batch.BytesPerOp != 107000 {
		t.Errorf("batched-8 = %+v, extra frames/flush metric must not break parsing", batch)
	}
}

func TestParseIgnoresNonResultLines(t *testing.T) {
	b, err := Parse(strings.NewReader("goos: linux\nBenchmarkBroken\nok repro 1s\nFAIL\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 0 {
		t.Fatalf("parsed %d benchmarks from junk, want 0: %v", len(b), b)
	}
}

func TestCompareGatesTimeAtTolerance(t *testing.T) {
	base := Baseline{"BenchmarkX-8": {NsPerOp: 100, AllocsPerOp: 0}}
	within := Baseline{"BenchmarkX-8": {NsPerOp: 119, AllocsPerOp: 0}}
	if regs, _, _ := Compare(base, within, 20); len(regs) != 0 {
		t.Errorf("+19%% ns/op within 20%% tolerance flagged: %v", regs)
	}
	beyond := Baseline{"BenchmarkX-8": {NsPerOp: 121, AllocsPerOp: 0}}
	regs, _, _ := Compare(base, beyond, 20)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("+21%% ns/op not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "ns/op regressed") {
		t.Errorf("regression message %q does not name the metric", regs[0])
	}
}

func TestCompareGatesAnyAllocRegression(t *testing.T) {
	base := Baseline{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 0}}
	cur := Baseline{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 1}}
	regs, _, _ := Compare(base, cur, 20)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("0 -> 1 allocs/op not flagged: %v", regs)
	}
	if !strings.Contains(regs[0].String(), "allocs/op regressed 0 -> 1") {
		t.Errorf("regression message %q does not name the alloc counts", regs[0])
	}
	// Improvements never flag.
	better := Baseline{"BenchmarkX": {NsPerOp: 50, AllocsPerOp: 0}}
	if regs, _, _ := Compare(Baseline{"BenchmarkX": {NsPerOp: 100, AllocsPerOp: 3}}, better, 20); len(regs) != 0 {
		t.Errorf("improvement flagged as regression: %v", regs)
	}
}

// Above allocSlackFloor the gate tolerates 1% jitter (GC emptying a
// sync.Pool mid-run on amortized pipeline benchmarks) but still catches
// real growth; at or below the floor any increase fails.
func TestCompareAllocSlackAboveFloor(t *testing.T) {
	base := Baseline{"BenchmarkFlush": {NsPerOp: 100, AllocsPerOp: 1000}}
	jitter := Baseline{"BenchmarkFlush": {NsPerOp: 100, AllocsPerOp: 1005}}
	if regs, _, _ := Compare(base, jitter, 20); len(regs) != 0 {
		t.Errorf("1000 -> 1005 allocs/op (GC pool jitter) flagged: %v", regs)
	}
	growth := Baseline{"BenchmarkFlush": {NsPerOp: 100, AllocsPerOp: 1011}}
	if regs, _, _ := Compare(base, growth, 20); len(regs) != 1 {
		t.Errorf("1000 -> 1011 allocs/op (>1%%) not flagged: %v", regs)
	}
	atFloor := Baseline{"BenchmarkHot": {NsPerOp: 100, AllocsPerOp: allocSlackFloor}}
	bump := Baseline{"BenchmarkHot": {NsPerOp: 100, AllocsPerOp: allocSlackFloor + 1}}
	if regs, _, _ := Compare(atFloor, bump, 20); len(regs) != 1 {
		t.Errorf("+1 alloc at the exactness floor not flagged: %v", regs)
	}
}

func TestCompareReportsMissingAndExtra(t *testing.T) {
	base := Baseline{"BenchmarkGone": {NsPerOp: 1}}
	cur := Baseline{"BenchmarkNew": {NsPerOp: 1}}
	_, missing, extra := Compare(base, cur, 20)
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Errorf("missing = %v, want [BenchmarkGone]: a deleted benchmark must not silently pass", missing)
	}
	if len(extra) != 1 || extra[0] != "BenchmarkNew" {
		t.Errorf("extra = %v, want [BenchmarkNew]", extra)
	}
}

func TestBaselineRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_5.json")
	want := Baseline{
		"BenchmarkHereParallel/sharded-8": {NsPerOp: 242.5, BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkReportBatch/batched":    {NsPerOp: 119120, BytesPerOp: 104329, AllocsPerOp: 978},
	}
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("roundtrip lost entries: %v", got)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("roundtrip %s = %+v, want %+v", k, got[k], w)
		}
	}
}

func TestLoadMissingBaselineIsNil(t *testing.T) {
	b, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || b != nil {
		t.Fatalf("Load(absent) = %v, %v; want nil, nil (seed mode)", b, err)
	}
}
