// Package experiments regenerates the paper's evaluation: every figure and
// table has a Run function returning structured results plus a Render
// method producing terminal output. The cmd/ tools and the repository's
// benchmark suite are thin wrappers around this package; DESIGN.md maps
// each experiment to its paper artifact.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// fmtBytesRate renders a bytes/second rate as MB/s.
func fmtBytesRate(v float64) string {
	return fmt.Sprintf("%.1f MB/s", v/1e6)
}

// fmtDuration renders seconds compactly.
func fmtSeconds(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// renderSeries renders one line per key: name, mean rate, sparkline.
func renderSeries(title string, series map[string][]metrics.Point, unit func(float64) string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	keys := make([]string, 0, len(series))
	w := 0
	for k := range series {
		keys = append(keys, k)
		if len(k) > w {
			w = len(k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pts := series[k]
		vals := make([]float64, len(pts))
		sum := 0.0
		for i, p := range pts {
			vals[i] = p.V
			sum += p.V
		}
		mean := 0.0
		if len(pts) > 0 {
			mean = sum / float64(len(pts))
		}
		fmt.Fprintf(&b, "  %-*s %12s  %s\n", w, k, unit(mean), metrics.Sparkline(vals))
	}
	return b.String()
}

// seriesMeans returns the mean sample value per key.
func seriesMeans(series map[string][]metrics.Point) map[string]float64 {
	out := make(map[string]float64, len(series))
	for k, pts := range series {
		if len(pts) == 0 {
			continue
		}
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		out[k] = sum / float64(len(pts))
	}
	return out
}
