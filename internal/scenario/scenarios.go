package scenario

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hbase"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
	"repro/internal/yarn"
)

// All returns the scenario library in its fixed run order.
func All() []*Scenario {
	return []*Scenario{
		Limplock(),
		HotRegion(),
		StragglerReducers(),
		CascadingFailover(),
		RebalancingStorm(),
		ThunderingHerd(),
		RollingRestarts(),
		MultiTenantStorm(),
		SamplingStorm(),
	}
}

// ByID returns the scenario with the given ID, or nil.
func ByID(id string) *Scenario {
	for _, s := range All() {
		if s.ID == id {
			return s
		}
	}
	return nil
}

// ---- row helpers ------------------------------------------------------

// groupVals maps each row's first column (the group key) to its last
// column's numeric value.
func groupVals(rows []tuple.Tuple) map[string]float64 {
	out := make(map[string]float64, len(rows))
	for _, row := range rows {
		if len(row) < 2 {
			continue
		}
		out[row[0].Str()] = row[len(row)-1].Float()
	}
	return out
}

func sumVals(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// maxVal returns the largest value and its key.
func maxVal(m map[string]float64) (string, float64) {
	var bk string
	var bv float64
	first := true
	for k, v := range m {
		if first || v > bv || (v == bv && k < bk) {
			bk, bv, first = k, v, false
		}
	}
	return bk, bv
}

// growth subtracts a snapshot from the current values (missing keys = 0).
func growth(cur, snap map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(cur))
	for k, v := range cur {
		out[k] = v - snap[k]
	}
	return out
}

// ---- 1. limplock ------------------------------------------------------

const qDNCount = `From dnop In DN.DataTransferProtocol
GroupBy dnop.host
Select dnop.host, COUNT`

const qDNBytes = `From incr In DataNodeMetrics.incrBytesRead
GroupBy incr.host
Select incr.host, SUM(incr.delta)`

// qDiskLatency spans exactly the local disk work of one DataNode op:
// DN.OpStart fires before the seek + read, DN.TransferStart after.
const qDiskLatency = `From x In DN.TransferStart
Join s In MostRecent(DN.OpStart) On s -> x
GroupBy x.host
Select x.host, AVERAGE(x.time - s.time)`

// Limplock reproduces a limplock disk: one DataNode's disk degrades to
// a tenth of its bandwidth without failing, and the per-host disk-latency
// GROUP BY pins the limping host while op counts stay unremarkable.
func Limplock() *Scenario {
	return &Scenario{
		ID:           "limplock",
		Name:         "Limplock disk",
		Description:  "one DataNode disk at 1/10 speed; disk-latency GROUP BY pins the host",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      12 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 500*time.Millisecond)
			hosts := d.WorkerNames(0)
			dns := d.StartDataNodes(hosts)
			const readSize = 64e3
			files := d.Dataset(2*len(hosts), readSize)

			qCount := r.Query(qDNCount)
			qBytes := r.Query(qDNBytes)

			nClients, ops := len(hosts)/4, 80
			if r.Short {
				nClients = 16
			}
			clients := d.StartClients(nClients, hosts)
			fsClients := make([]*hdfs.Client, len(clients))
			for i, p := range clients {
				fsClients[i] = hdfs.NewClient(p, d.NN, hdfs.ClientConfig{RandomReplicaSelection: true, Seed: r.Seed})
			}
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
				return fsClients[i].Read(ctx, files[rng.Intn(len(files))], 0, readSize)
			})

			r.Await("cluster-serving", qCount, 3, func(rows []tuple.Tuple) error {
				if n := len(groupVals(rows)); n < len(hosts)/2 {
					return fmt.Errorf("only %d of %d DataNodes reporting", n, len(hosts))
				}
				return nil
			})

			// Fault: the disk limps at 1/10 on the host holding the first
			// replica of files[0]. Choosing the limping host from the
			// placement (rather than the other way around) lets dedicated
			// probe readers hit it deterministically: on a thousand-host
			// topology each DataNode holds only a handful of replicas, so
			// uniform random traffic cannot be relied on to exercise the
			// limping disk before the checkpoint deadline.
			locs, err := d.AdminFS.GetBlockLocations(d.Admin.NewRequest(), files[0], 0, readSize)
			if err != nil || len(locs) == 0 || len(locs[0].Replicas) == 0 {
				return fmt.Errorf("limplock: block locations for %s: %v", files[0], err)
			}
			limpHost := locs[0].Replicas[0]
			var limp *hdfs.DataNode
			for _, dn := range dns {
				if dn.Proc.Info.Host == limpHost {
					limp = dn
				}
			}
			// 1/10, not an even harsher cut: the disk is processor-shared,
			// so at 1/100 the pile-up of concurrent reads would delay the
			// FIRST completion (and hence the first latency tuple) beyond
			// any reasonable checkpoint deadline.
			limp.SetDiskRate(netsim.DiskRate / 10)
			r.Logf("  fault: %s disk -> %.0f B/s at t=%s", limpHost, netsim.DiskRate/10, r.Env.Now())

			// Install the latency query only now: it aggregates purely
			// post-fault ops (pre-fault reads at baseline latency would
			// otherwise dilute the limping host's average below the
			// dominance threshold on large topologies, where each host
			// serves only a handful of reads).
			qLat := r.Query(qDiskLatency)

			// Two probe readers with first-replica selection read files[0]
			// back to back: guaranteed post-fault ops on the limping disk.
			// Two, not more — concurrent reads share the crippled disk's
			// bandwidth, and a larger herd would push the first completion
			// (and hence the first latency tuple) past the deadline.
			probes := make([]*cluster.Process, 2)
			fsProbes := make([]*hdfs.Client, len(probes))
			for i := range probes {
				probes[i] = d.C.StartUnmonitored(hosts[len(hosts)-1-i], fmt.Sprintf("Probe%d", i))
				fsProbes[i] = hdfs.NewClient(probes[i], d.NN, hdfs.ClientConfig{RandomReplicaSelection: false, Seed: r.Seed})
			}
			probeJoin := r.DriveAsync(probes, 6, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				return fsProbes[i].Read(ctx, files[0], 0, readSize)
			})

			r.Await("limp-disk-dominates", qLat, 4, func(rows []tuple.Tuple) error {
				lats := groupVals(rows)
				limpLat := lats[limpHost]
				delete(lats, limpHost)
				_, other := maxVal(lats)
				if limpLat < 5*other || other == 0 {
					return fmt.Errorf("limp host %s at %.2fms vs max other %.2fms", limpHost, limpLat/1e6, other/1e6)
				}
				return nil
			})

			join()
			probeJoin()
			total := float64(r.Requests())
			r.Await("ops-conserved", qCount, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != total {
					return fmt.Errorf("DN ops %v != reads issued %v", got, total)
				}
				return nil
			})
			r.Await("bytes-conserved", qBytes, 1, func(rows []tuple.Tuple) error {
				if got, want := sumVals(groupVals(rows)), total*readSize; got != want {
					return fmt.Errorf("bytes read %v != %v", got, want)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

// ---- 2. hot region ----------------------------------------------------

const qRSCount = `From op In RS.ClientService
GroupBy op.host
Select op.host, COUNT`

// HotRegion skews 80% of HBase gets onto rows owned by one RegionServer;
// the per-host RS.ClientService GROUP BY exposes the hotspot.
func HotRegion() *Scenario {
	return &Scenario{
		ID:           "hot-region",
		Name:         "Hot HBase region",
		Description:  "80% of gets hit one RegionServer; per-host op GROUP BY exposes it",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      10 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 500*time.Millisecond)
			hosts := d.WorkerNames(0)
			d.StartDataNodes(hosts)
			nRS := 64
			if r.Short {
				nRS = 12
			}
			hb, servers := d.StartHBase(hosts[:nRS], 8e6, r.Seed)
			hotHost := servers[0].Proc.Info.Host

			// Partition candidate rows by owner so the workload can aim.
			var hotRows, allRows []string
			for i := 0; len(hotRows) < 48 || len(allRows) < 4*nRS; i++ {
				row := fmt.Sprintf("row-%05d", i)
				allRows = append(allRows, row)
				if hb.HostFor(row) == hotHost {
					hotRows = append(hotRows, row)
				}
			}

			q := r.Query(qRSCount)

			nClients, ops := 192, 100
			if r.Short {
				nClients = 24
			}
			clients := d.StartClients(nClients, hosts)
			hbClients := make([]*hbase.Client, len(clients))
			for i, p := range clients {
				hbClients[i] = hbase.NewClient(p, hb)
			}
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
				row := allRows[rng.Intn(len(allRows))]
				if rng.Float64() < 0.8 {
					row = hotRows[rng.Intn(len(hotRows))]
				}
				return hbClients[i].Get(ctx, row, 8e3)
			})

			// The floor is absolute, not a fraction of issued ops: the hot
			// server's disk serializes its gets, so early-interval
			// throughput is capped by disk bandwidth regardless of how
			// many gets are queued behind it.
			r.Await("hot-server-dominates", q, 4, func(rows []tuple.Tuple) error {
				counts := groupVals(rows)
				hot := counts[hotHost]
				delete(counts, hotHost)
				_, second := maxVal(counts)
				if hot < 200 || hot < 8*second {
					return fmt.Errorf("hot %s=%v vs next %v", hotHost, hot, second)
				}
				return nil
			})

			join()
			total := float64(r.Requests())
			r.Await("gets-conserved", q, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != total {
					return fmt.Errorf("served %v != issued %v", got, total)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

// ---- 3. straggler reducers --------------------------------------------

const qReduceIO = `From w In FileOutputStream.write
Where w.procName == "Reduce"
GroupBy w.host
Select w.host, SUM(w.length)`

const qReduceDone = `From t In AM.ReduceTaskComplete
GroupBy t.id
Select t.id, COUNT`

// StragglerReducers runs a MapReduce job whose first reducers churn
// through 6x merge-spill IO; the per-host Reduce disk GROUP BY pins the
// straggler hosts.
func StragglerReducers() *Scenario {
	return &Scenario{
		ID:           "stragglers",
		Name:         "Straggler reducers",
		Description:  "2 reducers spill 6x; per-host Reduce disk SUM pins them",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      60 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, time.Second)
			hosts := d.WorkerNames(0)
			d.StartDataNodes(hosts)
			nMR := 32
			if r.Short {
				nMR = 8
			}
			rm, _ := d.StartYARN(hosts[:nMR], 8)
			fw := d.StartMapReduce(rm, r.Seed)

			maps, reducers, stragglers := 8, 8, 2
			if r.Short {
				maps, reducers, stragglers = 4, 4, 1
			}
			input := "/data/mr-input"
			ctx := d.Admin.NewRequest()
			if err := d.AdminFS.CreateMetadataOnly(ctx, input, float64(maps)*hdfs.BlockSize); err != nil {
				return err
			}

			qIO := r.Query(qReduceIO)
			qDone := r.Query(qReduceDone)

			submitter := d.C.Start("master", "JobClient")
			err := fw.Submit(submitter.NewRequest(), submitter, mapreduce.JobConfig{
				Name:            "sort",
				Input:           input,
				Reducers:        reducers,
				Stragglers:      stragglers,
				StragglerFactor: 6,
			})
			r.AddRequests(1)
			r.Expect("job-completes", err)

			r.Await("stragglers-dominate", qIO, 2, func(rows []tuple.Tuple) error {
				io := groupVals(rows)
				if len(io) < 2 {
					return fmt.Errorf("only %d reduce hosts reported", len(io))
				}
				_, max := maxVal(io)
				if min := minVal(io); max < 3*min {
					return fmt.Errorf("max reduce IO %v < 3x min %v", max, min)
				}
				return nil
			})
			r.Await("reducers-complete", qDone, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != float64(reducers) {
					return fmt.Errorf("%v reduce completions != %d", got, reducers)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

func minVal(m map[string]float64) float64 {
	first := true
	var mv float64
	for _, v := range m {
		if first || v < mv {
			mv, first = v, false
		}
	}
	return mv
}

// ---- 4. cascading failover --------------------------------------------

// CascadingFailover drains two RegionServers in sequence under load; the
// per-host GROUP BY shows each one's counts freezing while its key range
// reappears on the next live server, with zero client errors.
func CascadingFailover() *Scenario {
	return &Scenario{
		ID:           "failover",
		Name:         "Cascading failover",
		Description:  "two RegionServers drain back-to-back; load reroutes, zero errors",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      12 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 500*time.Millisecond)
			hosts := d.WorkerNames(0)
			d.StartDataNodes(hosts)
			nRS := 48
			if r.Short {
				nRS = 12
			}
			hb, servers := d.StartHBase(hosts[:nRS], 8e6, r.Seed)

			rows := make([]string, 4*nRS)
			for i := range rows {
				rows[i] = fmt.Sprintf("key-%05d", i)
			}

			q := r.Query(qRSCount)

			nClients, ops := 160, 120
			if r.Short {
				nClients = 24
			}
			clients := d.StartClients(nClients, hosts)
			hbClients := make([]*hbase.Client, len(clients))
			for i, p := range clients {
				hbClients[i] = hbase.NewClient(p, hb)
			}
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(10+rng.Intn(10)) * time.Millisecond)
				return hbClients[i].Get(ctx, rows[rng.Intn(len(rows))], 8e3)
			})

			r.Await("pre-fault-coverage", q, 3, func(rowsT []tuple.Tuple) error {
				if n := len(groupVals(rowsT)); n < 2*nRS/3 {
					return fmt.Errorf("only %d of %d RegionServers reporting", n, nRS)
				}
				return nil
			})

			// For each victim, a row it currently owns, to verify rerouting.
			victims := [2]*regionVictim{
				{host: servers[0].Proc.Info.Host},
				{host: servers[1].Proc.Info.Host},
			}
			for _, row := range rows {
				for v := range victims {
					if victims[v].row == "" && hb.HostFor(row) == victims[v].host {
						victims[v].row = row
					}
				}
			}

			for v := range victims {
				vic := victims[v]
				r.C.FlushAgents()
				snap := groupVals(q.Rows())
				servers[v].SetDraining(true)
				r.Logf("  fault: draining %s at t=%s", vic.host, r.Env.Now())
				name := fmt.Sprintf("failover-%d-freezes", v+1)
				r.Await(name, q, 3, func(rowsT []tuple.Tuple) error {
					g := growth(groupVals(rowsT), snap)
					frozen := g[vic.host]
					if total := sumVals(g); frozen > 8 || total < 200 {
						return fmt.Errorf("drained %s grew %v of total growth %v", vic.host, frozen, sumVals(g))
					}
					return nil
				})
				if vic.row != "" {
					now := hb.HostFor(vic.row)
					var err error
					if now == vic.host || now == "" {
						err = fmt.Errorf("row %s still routed to drained %s", vic.row, now)
					}
					r.Expect(fmt.Sprintf("failover-%d-reroutes", v+1), err)
				}
			}

			join()
			total := float64(r.Requests())
			var errCount error
			if n := r.ClientErrors(); n != 0 {
				errCount = fmt.Errorf("%d client errors during failover", n)
			}
			r.Expect("zero-client-errors", errCount)
			r.Await("gets-conserved", q, 1, func(rowsT []tuple.Tuple) error {
				if got := sumVals(groupVals(rowsT)); got != total {
					return fmt.Errorf("served %v != issued %v", got, total)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

type regionVictim struct {
	host string
	row  string
}

// ---- 5. rebalancing storm ---------------------------------------------

// RebalancingStorm rotates the row-to-server routing repeatedly under
// load (a region rebalance storm), then settles on a shifted assignment;
// the GROUP BY shows load spreading across nearly every server.
func RebalancingStorm() *Scenario {
	return &Scenario{
		ID:           "rebalance",
		Name:         "Rebalancing storm",
		Description:  "routing rotates every 400ms under load, then settles shifted",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      10 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 500*time.Millisecond)
			hosts := d.WorkerNames(0)
			d.StartDataNodes(hosts)
			nRS := 40
			if r.Short {
				nRS = 10
			}
			hb, _ := d.StartHBase(hosts[:nRS], 8e6, r.Seed)

			rows := make([]string, 4*nRS)
			for i := range rows {
				rows[i] = fmt.Sprintf("key-%05d", i)
			}

			q := r.Query(qRSCount)

			nClients, ops := 128, 140
			if r.Short {
				nClients = 24
			}
			clients := d.StartClients(nClients, hosts)
			hbClients := make([]*hbase.Client, len(clients))
			for i, p := range clients {
				hbClients[i] = hbase.NewClient(p, hb)
			}
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(8+rng.Intn(8)) * time.Millisecond)
				return hbClients[i].Get(ctx, rows[rng.Intn(len(rows))], 8e3)
			})

			probe := rows[0]
			preHost := hb.HostFor(probe)
			r.SettleTo(800 * time.Millisecond)
			r.C.FlushAgents()
			snap := groupVals(q.Rows())

			// The storm: rotate every row's owner four times, 400ms apart,
			// ending on a fixed shifted assignment.
			for k := 1; k <= 4; k++ {
				shift := k * 7
				hb.SetRouting(func(row string, n int) int {
					return (defaultRouteHash(row) + shift) % n
				})
				r.Logf("  rebalance: shift=%d at t=%s", shift, r.Env.Now())
				r.Env.Sleep(400 * time.Millisecond)
			}

			r.Await("storm-spreads-load", q, 3, func(rowsT []tuple.Tuple) error {
				g := growth(groupVals(rowsT), snap)
				grew := 0
				for _, v := range g {
					if v > 0 {
						grew++
					}
				}
				if grew < 3*nRS/4 {
					return fmt.Errorf("only %d of %d servers grew during the storm", grew, nRS)
				}
				return nil
			})

			var moved error
			if now := hb.HostFor(probe); now == "" || now == preHost {
				moved = fmt.Errorf("probe row %s still on %s", probe, preHost)
			}
			r.Expect("routing-shifted", moved)

			join()
			total := float64(r.Requests())
			r.Await("gets-conserved", q, 1, func(rowsT []tuple.Tuple) error {
				if got := sumVals(groupVals(rowsT)); got != total {
					return fmt.Errorf("served %v != issued %v", got, total)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

// defaultRouteHash mirrors hbase's row hash so shifted routing stays a
// deterministic rotation of the default assignment.
func defaultRouteHash(row string) int {
	h := 0
	for _, c := range row {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h
}

// ---- 6. thundering herd -----------------------------------------------

const qNNOpen = `From o In NN.Open
GroupBy o.host
Select o.host, COUNT`

const qNNRename = `From o In NN.Rename
GroupBy o.host
Select o.host, COUNT`

// ThunderingHerd slams the NameNode with over a thousand clients issuing
// metadata operations back to back — the scale carrier: a million-plus
// requests through one process, with exact op conservation at the end.
func ThunderingHerd() *Scenario {
	return &Scenario{
		ID:           "herd",
		Name:         "Thundering herd",
		Description:  "1000+ clients hammer the NameNode; exact op conservation",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      20 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 100*time.Millisecond)
			hosts := d.WorkerNames(0)
			d.StartDataNodes(hosts)

			nClients, ops := 1152, 880
			if r.Short {
				nClients, ops = 96, 120
			}

			// Each client owns a private file it opens and renames, so
			// concurrent renames never invalidate another client's ops.
			ctx := d.Admin.NewRequest()
			for i := 0; i < nClients; i++ {
				if err := d.AdminFS.CreateMetadataOnly(ctx, fmt.Sprintf("/priv/c%04d", i), 1e3); err != nil {
					return err
				}
			}

			qOpen := r.Query(qNNOpen)
			qRen := r.Query(qNNRename)

			clients := d.StartClients(nClients, hosts)
			fsClients := make([]*hdfs.Client, len(clients))
			for i, p := range clients {
				fsClients[i] = hdfs.NewClient(p, d.NN, hdfs.ClientConfig{RandomReplicaSelection: true, Seed: r.Seed})
			}
			// Every 10th op renames the private file back and forth; the
			// rest open it under whichever name it currently has. Totals
			// are exact functions of (nClients, ops).
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				a := fmt.Sprintf("/priv/c%04d", i)
				b := a + "x"
				// k/10 renames have completed before op k (they happen at
				// k%10 == 9), so the file is at b after an odd number.
				cur, other := a, b
				if (k/10)%2 == 1 {
					cur, other = b, a
				}
				if k%10 == 9 {
					return fsClients[i].Rename(ctx, cur, other)
				}
				return fsClients[i].Open(ctx, cur)
			})

			wantRenames := float64(nClients * (ops / 10))
			wantOpens := float64(nClients*ops) - wantRenames

			// The herd must be visibly underway early; /20 (not a higher
			// fraction) because the single NameNode's throughput bounds
			// how many of the million-plus ops can have completed within
			// the first second.
			r.Await("herd-observed", qOpen, 10, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got < wantOpens/20 {
					return fmt.Errorf("only %v opens observed", got)
				}
				return nil
			})

			join()
			var errCount error
			if n := r.ClientErrors(); n != 0 {
				errCount = fmt.Errorf("%d failed metadata ops", n)
			}
			r.Expect("zero-client-errors", errCount)
			r.Await("opens-conserved", qOpen, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != wantOpens {
					return fmt.Errorf("opens %v != %v", got, wantOpens)
				}
				return nil
			})
			r.Await("renames-conserved", qRen, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != wantRenames {
					return fmt.Errorf("renames %v != %v", got, wantRenames)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

// ---- 7. multi-tenant storm --------------------------------------------

// MultiTenantStorm stands up dozens of tenant frontends over one cluster
// behind a rack-granularity combiner tree with tenant routing: every
// tenant installs its own query under a fair-share budget split, results
// arrive on per-tenant topics with exact isolation and conservation, one
// tenant is torn down and replaced mid-storm, and the per-frontend
// inbound frame load stays flat — the tree, not the tenant count or the
// host count, determines what each frontend reads off the bus.
func MultiTenantStorm() *Scenario {
	return &Scenario{
		ID:           "multi-tenant-storm",
		Name:         "Multi-tenant storm",
		Description:  "64 tenant frontends over a combiner tree; isolation, churn, flat per-frontend load",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      12 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 500*time.Millisecond)
			d.EnableCombinerTree(true)
			hosts := d.WorkerNames(0)
			d.StartDataNodes(hosts)
			const readSize = 64e3
			files := d.Dataset(len(hosts), readSize)

			nTenants := 64
			if r.Short {
				nTenants = 8
			}
			// Half the tenants count DataNode ops, half sum bytes read:
			// distinct answers per tenant make cross-tenant leakage (a
			// report merged into the wrong frontend) break an exact
			// conservation checkpoint instead of passing silently.
			type tenantRun struct {
				fe    *core.PivotTracing
				q     *core.Installed
				bytes bool
			}
			tenants := make([]*tenantRun, nTenants)
			var installErr error
			for i := range tenants {
				tr := &tenantRun{
					fe:    d.C.NewTenantFrontend(fmt.Sprintf("t%02d", i), nTenants),
					bytes: i%2 == 1,
				}
				text := qDNCount
				if tr.bytes {
					text = qDNBytes
				}
				q, err := tr.fe.Install(text)
				if err != nil && installErr == nil {
					installErr = fmt.Errorf("tenant %d install: %w", i, err)
				}
				tr.q = q
				tenants[i] = tr
			}
			r.Expect("tenants-installed", installErr)
			qPrim := r.Query(qDNCount)

			nClients, ops := 128, 60
			if r.Short {
				nClients = 16
			}
			clients := d.StartClients(nClients, hosts)
			fsClients := make([]*hdfs.Client, len(clients))
			for i, p := range clients {
				fsClients[i] = hdfs.NewClient(p, d.NN, hdfs.ClientConfig{RandomReplicaSelection: true, Seed: r.Seed})
			}
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(5+rng.Intn(10)) * time.Millisecond)
				return fsClients[i].Read(ctx, files[rng.Intn(len(files))], 0, readSize)
			})

			r.Await("storm-observed", tenants[1].q, 4, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got <= 0 {
					return fmt.Errorf("tenant t01 has no rows yet")
				}
				return nil
			})

			// Churn: tenant 0's frontend is torn down mid-storm (its lease
			// renewals stop; its handle freezes) and a replacement tenant
			// joins, installs afresh, and starts seeing post-install load.
			d.C.DropTenantFrontend(tenants[0].fe)
			reFE := d.C.NewTenantFrontend("t00r", nTenants)
			reQ, reErr := reFE.Install(qDNCount)
			r.Expect("churned-tenant-reinstalls", reErr)
			r.Await("churned-tenant-rejoins", reQ, 4, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got <= 0 {
					return fmt.Errorf("replacement tenant has no rows yet")
				}
				return nil
			})

			join()
			total := float64(r.Requests())
			r.Await("primary-conserved", qPrim, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != total {
					return fmt.Errorf("primary DN ops %v != reads issued %v", got, total)
				}
				return nil
			})

			// Exact per-tenant isolation: every surviving tenant's answer
			// is exactly its own query over the full load — no missing
			// frames (a routing gap) and no foreign rows (a leak). Tenant
			// 0 is excluded: its handle froze at teardown.
			var isoErr error
			for i, tr := range tenants[1:] {
				want := total
				if tr.bytes {
					want = total * readSize
				}
				if got := sumVals(groupVals(tr.q.Rows())); got != want {
					isoErr = fmt.Errorf("tenant t%02d: %v != %v", i+1, got, want)
					break
				}
			}
			r.Expect("tenant-isolation-exact", isoErr)

			// Flat per-frontend load: every long-lived tenant frontend read
			// the same order of frames off the bus — its own per-interval
			// tree output plus the shared results feed — regardless of how
			// many hosts are reporting underneath the tree.
			var loF, hiF int64 = -1, -1
			for _, tr := range tenants[1:] {
				f := tr.fe.FramesIn()
				if loF < 0 || f < loF {
					loF = f
				}
				if f > hiF {
					hiF = f
				}
			}
			var flatErr error
			if loF <= 0 || hiF > 2*loF {
				flatErr = fmt.Errorf("per-frontend frames in [%d, %d] spread beyond 2x", loF, hiF)
			}
			r.Expect("per-frontend-load-flat", flatErr)
			secs := r.Env.Now().Seconds()
			r.Logf("  load: %d hosts, %d tenants, per-frontend frames in [%d, %d] over %.1fs virtual (max %.1f frames/s)",
				len(hosts), nTenants, loF, hiF, secs, float64(hiF)/secs)

			// The primary's status view aggregates every tenant's quota
			// usage from the agents' TenantUsage heartbeats.
			st := d.C.PT.StatusAt(r.Env.Now())
			var usageErr error
			if len(st.Tenants) < nTenants {
				usageErr = fmt.Errorf("status shows %d tenants, want >= %d", len(st.Tenants), nTenants)
			}
			r.Expect("tenant-usage-visible", usageErr)

			r.SettleTo(r.horizon())
			return nil
		},
	}
}

// ---- 8. rolling restarts ----------------------------------------------

// RollingRestarts cycles workers through restart windows (DataNode
// offline + NodeManager draining) under HDFS read load and a stream of
// MapReduce jobs; replica fallback and pipeline recovery keep client
// errors at zero.
func RollingRestarts() *Scenario {
	return &Scenario{
		ID:           "rolling",
		Name:         "Rolling restarts",
		Description:  "workers restart one by one; fallback paths keep errors at zero",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      20 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 200*time.Millisecond)
			hosts := d.WorkerNames(0)
			dns := d.StartDataNodes(hosts)
			nNM, nRestart := 24, 8
			if r.Short {
				nNM, nRestart = 8, 4
			}
			rm, nms := d.StartYARN(hosts[:nNM], 8)
			fw := d.StartMapReduce(rm, r.Seed)

			const readSize = 64e3
			files := d.Dataset(len(hosts), readSize)
			input := "/data/mr-input"
			adminCtx := d.Admin.NewRequest()
			if err := d.AdminFS.CreateMetadataOnly(adminCtx, input, 2*hdfs.BlockSize); err != nil {
				return err
			}

			qDN := r.Query(qDNCount)
			qJob := r.Query(`From j In JobComplete
GroupBy j.id
Select j.id, COUNT`)

			nClients, ops := 96, 100
			if r.Short {
				nClients = 24
			}
			clients := d.StartClients(nClients, hosts)
			fsClients := make([]*hdfs.Client, len(clients))
			for i, p := range clients {
				fsClients[i] = hdfs.NewClient(p, d.NN, hdfs.ClientConfig{RandomReplicaSelection: true, Seed: r.Seed})
			}
			join := r.DriveAsync(clients, ops, func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(8+rng.Intn(8)) * time.Millisecond)
				return fsClients[i].Read(ctx, files[rng.Intn(len(files))], 0, readSize)
			})

			// Job stream in the background (sequential, small jobs).
			jobs := 3
			if r.Short {
				jobs = 2
			}
			submitter := d.C.Start("master", "JobClient")
			var jobErr error
			jobsDone := r.Env.NewWaitGroup()
			jobsDone.Add(1)
			r.Env.Go(func() {
				defer jobsDone.Done()
				for j := 0; j < jobs; j++ {
					err := fw.Submit(submitter.NewRequest(), submitter, mapreduce.JobConfig{
						Name:            fmt.Sprintf("etl%d", j),
						Input:           input,
						Reducers:        2,
						MapOutputFactor: 0.1,
						OutputFactor:    0.1,
					})
					r.AddRequests(1)
					if err != nil && jobErr == nil {
						jobErr = err
					}
				}
			})

			// Rolling restarts: DataNodes on a range disjoint from the NM
			// hosts, NodeManagers from the tail of the NM range.
			restartBase := nNM + 16
			if r.Short {
				restartBase = nNM + 4
			}
			for w := 0; w < nRestart; w++ {
				dn := dns[restartBase+w]
				nm := nms[nNM-1-(w%nNM)]
				dnHost := dn.Proc.Info.Host
				r.C.FlushAgents()
				snap := groupVals(qDN.Rows())
				dn.SetOffline(true)
				nm.SetDraining(true)
				r.Logf("  restart window: DN %s offline, NM %s draining at t=%s",
					dnHost, nm.Proc.Info.Host, r.Env.Now())
				if w == 0 {
					r.Await("offline-dn-freezes", qDN, 3, func(rows []tuple.Tuple) error {
						g := growth(groupVals(rows), snap)
						if frozen, total := g[dnHost], sumVals(g); frozen > 2 || total < 50 {
							return fmt.Errorf("offline %s grew %v of %v", dnHost, frozen, total)
						}
						return nil
					})
					// The RM must place around the draining node even when
					// it is the preferred host.
					cont, err := yarn.Allocate(submitter.NewRequest(), submitter, rm, "probe", nm.Proc.Info.Host)
					if err == nil && cont.Host == nm.Proc.Info.Host {
						err = fmt.Errorf("container granted on draining %s", cont.Host)
					}
					if err == nil {
						cont.Release()
					}
					r.Expect("rm-avoids-draining", err)
				} else {
					r.Env.Sleep(500 * time.Millisecond)
				}
				dn.SetOffline(false)
				nm.SetDraining(false)
				r.Env.Sleep(100 * time.Millisecond)
			}

			// Recovery probe: the first restarted DataNode serves again.
			r.C.FlushAgents()
			snap := groupVals(qDN.Rows())
			probeDN := dns[restartBase]
			probeHost := probeDN.Proc.Info.Host
			probeCtx := clients[0].NewRequest()
			for i := 0; i < 5; i++ {
				if _, err := clients[0].Call(probeCtx, probeDN.Proc, "DataTransferProtocol.ReadBlock",
					hdfs.ReadBlockReq{Block: "probe", Length: readSize, DestHost: clients[0].Info.Host},
					cluster.Sizes{Request: 200, Response: 64}); err != nil {
					return fmt.Errorf("recovery probe: %w", err)
				}
				r.AddRequests(1)
			}
			r.Await("restarted-dn-recovers", qDN, 2, func(rows []tuple.Tuple) error {
				g := growth(groupVals(rows), snap)
				if g[probeHost] < 5 {
					return fmt.Errorf("restarted %s served %v probe reads", probeHost, g[probeHost])
				}
				return nil
			})

			join()
			jobsDone.Wait()
			var errCount error
			if n := r.ClientErrors(); n != 0 {
				errCount = fmt.Errorf("%d client errors during restarts", n)
			}
			r.Expect("zero-client-errors", errCount)
			r.Expect("jobs-complete", jobErr)
			r.Await("jobs-observed", qJob, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(groupVals(rows)); got != float64(jobs) {
					return fmt.Errorf("%v job completions != %d", got, jobs)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}

// ---- 9. sampling storm ------------------------------------------------

const qStormOps = `From o In Storm.Op
GroupBy o.key
Select o.key, COUNT, SUM(o.val)`

const qStormOpsSampled = qStormOps + `
Sample 0.05`

// qStormSqueeze exists purely to generate baggage-budget pressure: the
// happened-before join packs per-key Storm.Op groups, and under a
// MaxTuples budget of 1 nearly every pack evicts — the drop stream that
// drives the agents' adaptive sampling controllers into backoff.
const qStormSqueeze = `From d In Storm.Done
Join o In Storm.Op On o -> d
GroupBy o.key
Select o.key, COUNT`

// countVals maps each row's group key to its COUNT column (the middle
// column of the key, COUNT, SUM(...) selects above). For a sampled query
// the value is the weighted Horvitz-Thompson estimate.
func countVals(rows []tuple.Tuple) map[string]float64 {
	out := make(map[string]float64, len(rows))
	for _, row := range rows {
		if len(row) < 3 {
			continue
		}
		out[row[0].Str()] = row[1].Float()
	}
	return out
}

// SamplingStorm runs a thundering herd of monitored request generators
// under an exact query and its Sample 0.05 twin, then squeezes the
// baggage budget mid-run: the adaptive controllers back the effective
// rate off toward the floor, and releasing the squeeze restores it.
// Checkpoints pin the statistical contract (weighted estimate within a
// 5-sigma relative-error bound of the exact answer, drop accounting
// reconciling kept + suppressed to requests issued) and the exactness
// flag flip (exact rows exact, sampled rows flagged approximate).
func SamplingStorm() *Scenario {
	return &Scenario{
		ID:           "sampling-storm",
		Name:         "Sampling storm",
		Description:  "herd at rate 0.05; budget squeeze backs the rate off, release restores it",
		DefaultHosts: 1024,
		ShortHosts:   64,
		Horizon:      20 * time.Second,
		Run: func(r *Run) error {
			d := deploy(r.Env, r, 500*time.Millisecond)
			d.EnableCombinerTree(false)
			hosts := d.WorkerNames(0)

			nGen, ops1, ops2 := 384, 75, 60
			if r.Short {
				nGen = 32
			}
			const (
				rate       = 0.05
				baseMilli  = 50 // rate in thousandths, as agents gauge it
				firesPerOp = 6  // Storm.Op crossings per request
				nKeys      = 8
			)
			// The generators are MONITORED processes: the sampling decision
			// is minted by the agent of the process that originates the
			// request, so unmonitored client procs (StartClients) would run
			// every request down the exact path.
			gens := make([]*cluster.Process, nGen)
			opTPs := make([]*tracepoint.Tracepoint, nGen)
			doneTPs := make([]*tracepoint.Tracepoint, nGen)
			for i := range gens {
				p := d.C.Start(hosts[i%len(hosts)], fmt.Sprintf("Storm%02d", i/len(hosts)))
				gens[i] = p
				opTPs[i] = p.Define("Storm.Op", "key", "val")
				doneTPs[i] = p.Define("Storm.Done", "n")
			}
			stormRates := func() (lo, hi int64) {
				lo, hi = -1, -1
				for _, p := range gens {
					m := p.Agent.Stats().SampleRateMilli
					if lo < 0 || m < lo {
						lo = m
					}
					if m > hi {
						hi = m
					}
				}
				return
			}
			suppressed := func() int64 {
				var n int64
				for _, p := range gens {
					n += p.Agent.Stats().SampledOut
				}
				return n
			}

			qExact := r.Query(qStormOps)
			qSampled := r.Query(qStormOpsSampled)

			stormOp := func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error {
				r.Env.Sleep(time.Duration(20+rng.Intn(16)) * time.Millisecond)
				for f := 0; f < firesPerOp; f++ {
					opTPs[i].Here(ctx, fmt.Sprintf("k%02d", rng.Intn(nKeys)), int64(1+rng.Intn(9)))
				}
				doneTPs[i].Here(ctx, int64(firesPerOp))
				return nil
			}

			// Phase 1: the herd at a steady effective rate (no pressure
			// source exists yet, so the controllers sit at the base).
			join := r.DriveAsync(gens, ops1, stormOp)
			want1 := float64(nGen * ops1 * firesPerOp)
			r.Await("storm-observed", qExact, 4, func(rows []tuple.Tuple) error {
				if got := sumVals(countVals(rows)); got < want1/20 {
					return fmt.Errorf("only %v exact ops observed", got)
				}
				return nil
			})
			join()
			requests1 := float64(nGen * ops1)

			r.Await("exact-conserved-p1", qExact, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(countVals(rows)); got != want1 {
					return fmt.Errorf("exact COUNT %v != %v fired", got, want1)
				}
				return nil
			})
			// Every phase-1 request was minted at the fixed base rate, so
			// the weighted COUNT is a Horvitz-Thompson estimate whose
			// relative error concentrates within 5 sigma of the binomial
			// request-count estimate (the 6 tuples of one request share its
			// keep/suppress verdict, so they add no independent variance).
			errBound := 5 * math.Sqrt((1-rate)/(requests1*rate))
			var est1 float64
			r.Await("estimate-within-bound", qSampled, 1, func(rows []tuple.Tuple) error {
				est1 = sumVals(countVals(rows))
				relErr := math.Abs(est1-want1) / want1
				if est1 <= 0 || relErr > errBound {
					return fmt.Errorf("sampled estimate %v vs exact %v: relative error %.3f > bound %.3f",
						est1, want1, relErr, errBound)
				}
				return nil
			})

			// Drop accounting reconciles: suppression is all-or-nothing per
			// request (firesPerOp crossings at a time), and kept requests —
			// recovered from the weighted estimate at the known fixed rate —
			// plus suppressed requests account for every request issued.
			sup1 := suppressed()
			var recErr error
			kept := math.Round(est1 * rate / firesPerOp)
			switch {
			case sup1%firesPerOp != 0:
				recErr = fmt.Errorf("%d suppressed crossings not divisible by %d per request", sup1, firesPerOp)
			case kept+float64(sup1/firesPerOp) != requests1:
				recErr = fmt.Errorf("kept %v + suppressed %d != %v requests", kept, sup1/firesPerOp, requests1)
			}
			r.Expect("drops-reconcile", recErr)

			// Exactness flags flip: the exact query's groups stay exact, the
			// sampled twin's are all flagged approximate.
			var flagErr error
			exGroups, saGroups := qExact.Groups(), qSampled.Groups()
			if len(exGroups) == 0 || len(saGroups) == 0 {
				flagErr = fmt.Errorf("no groups to check (%d exact, %d sampled)", len(exGroups), len(saGroups))
			}
			for _, g := range exGroups {
				for _, st := range g.States {
					if !st.Exact() {
						flagErr = fmt.Errorf("exact query group %q flagged approximate", g.Key)
					}
				}
			}
			for _, g := range saGroups {
				for _, st := range g.States {
					if st.Exact() {
						flagErr = fmt.Errorf("sampled query group %q not flagged approximate", g.Key)
					}
				}
			}
			r.Expect("flags-flip", flagErr)

			// Phase 2: the budget squeeze. More herd load runs while the
			// squeeze query's evictions feed the pressure signal.
			squeeze, sqErr := d.C.PT.InstallNamed("", qStormSqueeze, plan.Options{
				Optimize: true,
				Safety:   advice.Safety{Budget: baggage.Budget{MaxTuples: 1}},
			})
			r.Expect("squeeze-installs", sqErr)
			join2 := r.DriveAsync(gens, ops2, stormOp)

			// Backoff detection deliberately avoids FlushAgents: a manual
			// flush with no new drops since the report-loop flush an instant
			// earlier reads as an idle tick and doubles the rate straight
			// back, masking the backoff it is trying to observe. Only the
			// agents' own report loops tick the controllers here.
			// Requiring < baseMilli/2 demands at least two halvings, so the
			// restore leg below exercises more than a single doubling.
			backedOff := int64(-1)
			for i := 0; i < 8 && backedOff < 0; i++ {
				r.sleepToNextInterval()
				if lo, _ := stormRates(); lo < baseMilli/2 {
					backedOff = lo
				}
			}
			var boErr error
			if backedOff < 0 {
				boErr = fmt.Errorf("no generator backed off below %d milli under budget pressure", baseMilli/2)
			}
			r.Expect("rate-backs-off", boErr)
			r.Logf("  squeeze: min effective rate %d milli at t=%s", backedOff, r.Env.Now())

			// Release: uninstalling the squeeze stops the drop stream, and
			// idle ticks double every controller back to the base.
			squeeze.Uninstall()
			join2()
			restored := false
			for i := 0; i < 14 && !restored; i++ {
				r.sleepToNextInterval()
				lo, hi := stormRates()
				restored = lo == baseMilli && hi == baseMilli
			}
			var resErr error
			if !restored {
				lo, hi := stormRates()
				resErr = fmt.Errorf("rates stuck in [%d, %d] milli after squeeze release, want %d", lo, hi, baseMilli)
			}
			r.Expect("rate-restores", resErr)

			want2 := want1 + float64(nGen*ops2*firesPerOp)
			r.Await("exact-conserved-final", qExact, 1, func(rows []tuple.Tuple) error {
				if got := sumVals(countVals(rows)); got != want2 {
					return fmt.Errorf("exact COUNT %v != %v fired", got, want2)
				}
				return nil
			})
			r.SettleTo(r.horizon())
			return nil
		},
	}
}
