// Package metrics collects Pivot Tracing query reports into time series
// and renders experiment output: aligned tables, heatmaps, and sparkline
// pivot tables — the presentation layer for regenerating the paper's
// figures in a terminal.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/tuple"
)

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Collector bins per-interval query reports, merging partial aggregates
// from all processes that reported within the same bin.
type Collector struct {
	op  *advice.EmitOp
	bin time.Duration

	mu   sync.Mutex
	bins map[int64]*advice.Accumulator
}

// NewCollector returns a collector for a query's emit operation with the
// given bin width (typically the agent reporting interval).
func NewCollector(op *advice.EmitOp, bin time.Duration) *Collector {
	if bin <= 0 {
		bin = time.Second
	}
	return &Collector{op: op, bin: bin, bins: make(map[int64]*advice.Accumulator)}
}

// binOf maps a report time to its bin index with floor division, so
// negative times (reports stamped before the collector's epoch, or from
// a skewed clock) land in distinct negative bins instead of colliding
// with bin 0 — integer division alone truncates toward zero, folding
// [-bin, bin) into one bin of double width.
func (c *Collector) binOf(t time.Duration) int64 {
	b := int64(t / c.bin)
	if t < 0 && t%c.bin != 0 {
		b--
	}
	return b
}

// OnReport folds one agent report; register it with Installed.OnReport.
// Reports may arrive out of order and several reports may land in the
// same bin: each bin's accumulator merges whatever arrives for it,
// whenever it arrives, and Series orders bins by index at read time.
func (c *Collector) OnReport(r agent.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.binOf(r.Time)
	acc, ok := c.bins[b]
	if !ok {
		acc = advice.NewAccumulator(c.op)
		c.bins[b] = acc
	}
	for _, g := range r.Groups {
		acc.MergeGroup(g)
	}
	for _, raw := range r.Raws {
		acc.MergeRaw(raw)
	}
}

// Series extracts one time series per group: the group key is the
// concatenation of the key columns' values, the sample is the value
// column. Rate divides each sample by the bin width in seconds (turning
// per-interval sums into per-second throughput).
func (c *Collector) Series(keyCols []int, valCol int, rate bool) map[string][]Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	binIdx := make([]int64, 0, len(c.bins))
	for b := range c.bins {
		binIdx = append(binIdx, b)
	}
	sort.Slice(binIdx, func(i, j int) bool { return binIdx[i] < binIdx[j] })

	out := make(map[string][]Point)
	div := c.bin.Seconds()
	for _, b := range binIdx {
		for _, row := range c.bins[b].Rows() {
			parts := make([]string, len(keyCols))
			for i, k := range keyCols {
				parts[i] = row[k].String()
			}
			key := strings.Join(parts, "/")
			v := row[valCol].Float()
			if rate {
				v /= div
			}
			out[key] = append(out[key], Point{T: time.Duration(b) * c.bin, V: v})
		}
	}
	return out
}

// Totals sums the value column per group key over the whole run.
func (c *Collector) Totals(keyCols []int, valCol int) map[string]float64 {
	out := make(map[string]float64)
	for key, pts := range c.Series(keyCols, valCol, false) {
		for _, p := range pts {
			out[key] += p.V
		}
	}
	return out
}

// RenderTable renders rows as an aligned ASCII table.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// TupleRows converts query result tuples to table cells.
func TupleRows(rows []tuple.Tuple) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		out[i] = cells
	}
	return out
}

var sparkChars = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode sparkline scaled to the maximum.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	max := vals[0]
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkChars)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkChars) {
			idx = len(sparkChars) - 1
		}
		b.WriteRune(sparkChars[idx])
	}
	return b.String()
}

// shortLabel abbreviates a column name to two characters, preferring the
// suffix after the last dash ("host-A" -> "A").
func shortLabel(s string) string {
	if i := strings.LastIndexByte(s, '-'); i >= 0 && i+1 < len(s) {
		s = s[i+1:]
	}
	if len(s) > 2 {
		s = s[:2]
	}
	return s
}

var shadeChars = []rune(" ░▒▓█")

// Heatmap renders a matrix with unicode shading, scaled to the matrix
// maximum — the presentation of Fig 8d-8g.
func Heatmap(rowNames, colNames []string, val func(r, c int) float64) string {
	max := 0.0
	for r := range rowNames {
		for c := range colNames {
			if v := val(r, c); v > max {
				max = v
			}
		}
	}
	rowW := 0
	for _, n := range rowNames {
		if len(n) > rowW {
			rowW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s ", rowW, "")
	for _, cn := range colNames {
		fmt.Fprintf(&b, "%-2s ", shortLabel(cn))
	}
	b.WriteByte('\n')
	for r, rn := range rowNames {
		fmt.Fprintf(&b, "%-*s ", rowW, rn)
		for c := range colNames {
			v := val(r, c)
			idx := 0
			if max > 0 {
				idx = int(v / max * float64(len(shadeChars)-1))
			}
			if idx >= len(shadeChars) {
				idx = len(shadeChars) - 1
			}
			ch := shadeChars[idx]
			b.WriteRune(ch)
			b.WriteRune(ch)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LatencyRecorder accumulates per-operation latencies and completion
// times for client-side workload statistics (Fig 8a, Fig 9a, Table 5).
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []Point // T = completion time, V = latency seconds
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record adds one completed operation.
func (lr *LatencyRecorder) Record(completedAt time.Duration, latency time.Duration) {
	lr.mu.Lock()
	lr.samples = append(lr.samples, Point{T: completedAt, V: latency.Seconds()})
	lr.mu.Unlock()
}

// Count returns the number of recorded operations.
func (lr *LatencyRecorder) Count() int {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return len(lr.samples)
}

// Mean returns the mean latency in seconds (0 if empty).
func (lr *LatencyRecorder) Mean() float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if len(lr.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range lr.samples {
		sum += s.V
	}
	return sum / float64(len(lr.samples))
}

// Percentile returns the p-th percentile latency in seconds (0 <= p <= 100).
func (lr *LatencyRecorder) Percentile(p float64) float64 {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if len(lr.samples) == 0 {
		return 0
	}
	vals := make([]float64, len(lr.samples))
	for i, s := range lr.samples {
		vals[i] = s.V
	}
	sort.Float64s(vals)
	idx := int(p / 100 * float64(len(vals)-1))
	return vals[idx]
}

// Throughput bins completions into a per-second ops/sec series.
func (lr *LatencyRecorder) Throughput(bin time.Duration) []Point {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	if len(lr.samples) == 0 {
		return nil
	}
	counts := map[int64]int{}
	maxBin := int64(0)
	for _, s := range lr.samples {
		b := int64(s.T / bin)
		counts[b]++
		if b > maxBin {
			maxBin = b
		}
	}
	out := make([]Point, 0, maxBin+1)
	for b := int64(0); b <= maxBin; b++ {
		out = append(out, Point{
			T: time.Duration(b) * bin,
			V: float64(counts[b]) / bin.Seconds(),
		})
	}
	return out
}

// Latencies returns all samples (completion time, latency seconds).
func (lr *LatencyRecorder) Latencies() []Point {
	lr.mu.Lock()
	defer lr.mu.Unlock()
	return append([]Point(nil), lr.samples...)
}
