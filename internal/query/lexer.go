package query

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokArrow // ->
	tokOp    // = != < <= > >= + - * / && || !
)

type token struct {
	kind tokKind
	text string
	pos  int // byte offset in input, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer splits a query string into tokens.
type lexer struct {
	input string
	pos   int
}

func newLexer(input string) *lexer { return &lexer{input: input} }

// errorAt formats a lexical/syntax error with line context.
func errorAt(input string, pos int, format string, args ...any) error {
	line := 1
	col := 1
	for i, r := range input {
		if i >= pos {
			break
		}
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("query: %s (line %d, col %d)", fmt.Sprintf(format, args...), line, col)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		r, size := utf8.DecodeRuneInString(l.input[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += size
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	r, size := utf8.DecodeRuneInString(l.input[l.pos:])
	switch {
	case unicode.IsLetter(r) || r == '_':
		for l.pos < len(l.input) {
			r, size := utf8.DecodeRuneInString(l.input[l.pos:])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			l.pos += size
		}
		return token{kind: tokIdent, text: l.input[start:l.pos], pos: start}, nil
	case unicode.IsDigit(r):
		seenDot := false
		for l.pos < len(l.input) {
			r, size := utf8.DecodeRuneInString(l.input[l.pos:])
			if r == '.' && !seenDot {
				// Lookahead: a digit must follow for this to be a decimal
				// point rather than a field access on a number (invalid
				// anyway, but give the parser the cleaner error).
				next := l.pos + size
				nr, _ := utf8.DecodeRuneInString(l.input[next:])
				if !unicode.IsDigit(nr) {
					break
				}
				seenDot = true
				l.pos += size
				continue
			}
			if !unicode.IsDigit(r) {
				break
			}
			l.pos += size
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
	case r == '"':
		l.pos += size
		var b strings.Builder
		for l.pos < len(l.input) {
			r, size := utf8.DecodeRuneInString(l.input[l.pos:])
			l.pos += size
			if r == '"' {
				return token{kind: tokString, text: b.String(), pos: start}, nil
			}
			if r == '\\' && l.pos < len(l.input) {
				esc, esize := utf8.DecodeRuneInString(l.input[l.pos:])
				l.pos += esize
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteRune(esc)
				}
				continue
			}
			b.WriteRune(r)
		}
		return token{}, errorAt(l.input, start, "unterminated string literal")
	}
	l.pos += size
	two := ""
	if l.pos < len(l.input) {
		two = l.input[start : l.pos+1]
	}
	switch r {
	case ',':
		return token{kind: tokComma, text: ",", pos: start}, nil
	case '.':
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '(':
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '-':
		if two == "->" {
			l.pos++
			return token{kind: tokArrow, text: "->", pos: start}, nil
		}
		return token{kind: tokOp, text: "-", pos: start}, nil
	case '−': // unicode minus, as typeset in the paper
		return token{kind: tokOp, text: "-", pos: start}, nil
	case '=':
		if two == "==" {
			l.pos++
		}
		return token{kind: tokOp, text: "=", pos: start}, nil
	case '!':
		if two == "!=" {
			l.pos++
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{kind: tokOp, text: "!", pos: start}, nil
	case '<':
		if two == "<=" {
			l.pos++
			return token{kind: tokOp, text: "<=", pos: start}, nil
		}
		return token{kind: tokOp, text: "<", pos: start}, nil
	case '>':
		if two == ">=" {
			l.pos++
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		return token{kind: tokOp, text: ">", pos: start}, nil
	case '+', '*', '/':
		return token{kind: tokOp, text: string(r), pos: start}, nil
	case '&':
		if two == "&&" {
			l.pos++
			return token{kind: tokOp, text: "&&", pos: start}, nil
		}
	case '|':
		if two == "||" {
			l.pos++
			return token{kind: tokOp, text: "||", pos: start}, nil
		}
	}
	return token{}, errorAt(l.input, start, "unexpected character %q", r)
}

// lexAll tokenizes the whole input.
func lexAll(input string) ([]token, error) {
	l := newLexer(input)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
