package baggage

import "repro/internal/tuple"

// SampleSlot is the reserved slot carrying per-request sampling
// decisions. Like DropSlot and TraceSlot the leading '!' keeps it
// outside every query's slot namespace, and it is excluded from budget
// accounting and victim selection: the decision IS the request's
// sampling identity — evicting it would let different tracepoints on
// one causal path disagree about whether the request is sampled, which
// is exactly the half-request inconsistency the slot exists to prevent.
const SampleSlot = "!pt.sample"

// SampleSpec stores one (query, rate) decision tuple per sampled query:
// rate > 0 means the request is sampled for that query at the recorded
// effective rate (observations carry weight 1/rate); rate == 0 means
// the request is suppressed for that query. UNION retention makes the
// decision monotone: minted once before any split, the identical tuple
// deduplicates at every join, so a decision can never be lost or forked
// into disagreement.
var SampleSpec = SetSpec{Kind: Union, Fields: tuple.Schema{"q", "r"}}

// PackSampleDecision records the request-level decision for one query.
// It must be called at most once per (request, query), before the
// request's baggage first splits.
func (b *Baggage) PackSampleDecision(queryID string, rate float64) {
	b.active().set(SampleSlot, SampleSpec).Pack(tuple.Tuple{tuple.String(queryID), tuple.Float(rate)})
	b.raw = nil
}

// SampleRate looks up the request's decision for queryID: (rate, true)
// when a decision was minted — rate 0 meaning "suppressed" — and
// (0, false) when the request carries no decision for the query, which
// callers must treat as "not sampled: process exactly". The lookup
// allocates nothing; it runs on the advice hot path at every crossing
// of a sampled query.
func (b *Baggage) SampleRate(queryID string) (float64, bool) {
	if b == nil {
		return 0, false
	}
	b.ensureDecoded()
	for _, in := range b.insts {
		s, ok := in.slots[SampleSlot]
		if !ok {
			continue
		}
		for _, t := range s.tuples {
			if len(t) == 2 && t[0].Str() == queryID {
				return t[1].Float(), true
			}
		}
	}
	return 0, false
}
