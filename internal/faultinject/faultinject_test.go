package faultinject

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// pipe returns a wrapped client end and the raw server end of an
// in-memory connection.
func pipe(in *Injector) (*Conn, net.Conn) {
	c, s := net.Pipe()
	return in.Wrap(c), s
}

func TestCutAfterWritesSeversWithTruncation(t *testing.T) {
	in := New(Faults{Seed: 1, CutAfterWrites: 2, TruncateFinalWrite: 3})
	client, server := pipe(in)
	defer server.Close()

	read := make(chan []byte, 2)
	go func() {
		for {
			buf := make([]byte, 64)
			n, err := server.Read(buf)
			if err != nil {
				close(read)
				return
			}
			read <- buf[:n]
		}
	}()

	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if got := string(<-read); got != "hello" {
		t.Fatalf("first write delivered %q", got)
	}
	// Second write hits the cut: only the 3-byte prefix leaks through,
	// the writer sees ErrInjected, and the peer then sees EOF.
	if _, err := client.Write([]byte("world")); !errors.Is(err, ErrInjected) {
		t.Fatalf("cut write err = %v, want ErrInjected", err)
	}
	if got := string(<-read); got != "wor" {
		t.Fatalf("truncated prefix = %q, want \"wor\"", got)
	}
	if _, ok := <-read; ok {
		t.Fatal("peer did not observe the cut")
	}
	if in.Cuts() != 1 {
		t.Errorf("cuts = %d, want 1", in.Cuts())
	}
	// The severed conn stays dead.
	if _, err := client.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-cut write err = %v, want ErrInjected", err)
	}
}

func TestCutAfterReadsSevers(t *testing.T) {
	in := New(Faults{Seed: 1, CutAfterReads: 1})
	client, server := pipe(in)
	defer server.Close()
	buf := make([]byte, 8)
	if _, err := client.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	if in.Cuts() != 1 {
		t.Errorf("cuts = %d, want 1", in.Cuts())
	}
}

func TestDialerFailsScheduledDialsThenSucceeds(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()

	in := New(Faults{Seed: 1, FailDials: 2})
	dial := in.Dialer(nil)
	for i := 0; i < 2; i++ {
		if _, err := dial(ln.Addr().String()); !errors.Is(err, ErrInjected) {
			t.Fatalf("dial %d err = %v, want ErrInjected", i, err)
		}
	}
	c, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("third dial: %v", err)
	}
	c.Close()
	total, failed := in.Dials()
	if total != 3 || failed != 2 {
		t.Errorf("dials = (%d, %d), want (3, 2)", total, failed)
	}
}

func TestBlackholedWritesAreDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (delivered string, dropped int64) {
		in := New(Faults{Seed: seed, DropWriteProb: 0.5})
		client, server := pipe(in)
		defer client.Close()
		defer server.Close()
		done := make(chan string, 1)
		go func() {
			var got []byte
			buf := make([]byte, 16)
			for {
				n, err := server.Read(buf)
				got = append(got, buf[:n]...)
				if err != nil {
					done <- string(got)
					return
				}
			}
		}()
		for i := 0; i < 10; i++ {
			if _, err := client.Write([]byte{byte('a' + i)}); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		client.Close()
		return <-done, in.DroppedWrites()
	}

	d1, n1 := run(42)
	d2, n2 := run(42)
	if d1 != d2 || n1 != n2 {
		t.Fatalf("same seed diverged: (%q, %d) vs (%q, %d)", d1, n1, d2, n2)
	}
	if n1 == 0 || n1 == 10 {
		t.Fatalf("dropped = %d, want some but not all of 10", n1)
	}
	if len(d1)+int(n1) != 10 {
		t.Errorf("delivered %d + dropped %d != 10 written", len(d1), n1)
	}
}

func TestCutAllSeversEveryLiveConn(t *testing.T) {
	in := New(Faults{Seed: 1})
	c1, s1 := pipe(in)
	c2, s2 := pipe(in)
	defer s1.Close()
	defer s2.Close()
	if n := in.CutAll(); n != 2 {
		t.Fatalf("CutAll = %d, want 2", n)
	}
	for i, c := range []*Conn{c1, c2} {
		if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Errorf("conn %d write err = %v, want ErrInjected", i, err)
		}
	}
	// Severing is idempotent and orderly Close still works.
	if n := in.CutAll(); n != 0 {
		t.Errorf("second CutAll = %d, want 0", n)
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Faults{Seed: 1, CutAfterReads: 1})
	wrapped := in.Listener(ln)
	defer wrapped.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := wrapped.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	if _, err := server.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Errorf("accepted conn read err = %v, want ErrInjected", err)
	}
}

func TestWriteDelayApplies(t *testing.T) {
	in := New(Faults{Seed: 1, WriteDelay: 20 * time.Millisecond})
	client, server := pipe(in)
	defer client.Close()
	defer server.Close()
	go io.Copy(io.Discard, server)
	start := time.Now()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("write took %v, want >= 20ms", d)
	}
}

func TestScheduleAppliesLinkFaultsInVirtualTime(t *testing.T) {
	env := simtime.NewEnv()
	var beforeFault, afterFault, afterRepair float64
	env.Run(func() {
		n := netsim.New(env)
		n.AddLink("nic", 1000)
		Schedule(env, n, []LinkFault{
			// Declared out of order; applied in At order.
			{At: 2 * time.Second, Link: "nic", Rate: 1000},
			{At: 1 * time.Second, Link: "nic", Rate: 10},
		})
		env.Sleep(500 * time.Millisecond)
		beforeFault = n.Rate("nic")
		env.Sleep(1 * time.Second) // t = 1.5s: limplock active
		afterFault = n.Rate("nic")
		env.Sleep(1 * time.Second) // t = 2.5s: repaired
		afterRepair = n.Rate("nic")
	})
	if beforeFault != 1000 || afterFault != 10 || afterRepair != 1000 {
		t.Errorf("rates = (%v, %v, %v), want (1000, 10, 1000)",
			beforeFault, afterFault, afterRepair)
	}
}
