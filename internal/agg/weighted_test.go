package agg

import (
	"bytes"
	"testing"

	"repro/internal/tuple"
)

func TestWeightedCountSum(t *testing.T) {
	c := New(Count)
	c.AddWeighted(tuple.Null, 20) // one sampled observation at rate 0.05
	c.AddWeighted(tuple.Null, 20)
	if c.Exact() {
		t.Fatal("weighted COUNT state claims exact")
	}
	if got := c.Result(); got.Float() != 40 {
		t.Fatalf("weighted COUNT = %v, want 40", got)
	}
	if c.Count() != 2 {
		t.Fatalf("raw count = %d, want 2", c.Count())
	}

	s := New(Sum)
	s.AddWeighted(tuple.Int(3), 10)
	s.AddWeighted(tuple.Int(5), 10)
	if got := s.Result(); got.Float() != 80 {
		t.Fatalf("weighted SUM = %v, want 80", got)
	}

	a := New(Average)
	a.AddWeighted(tuple.Int(2), 10)
	a.AddWeighted(tuple.Int(6), 10)
	if got := a.Result(); got.Float() != 4 {
		t.Fatalf("weighted AVERAGE = %v, want 4", got)
	}

	m := New(Max)
	m.AddWeighted(tuple.Int(7), 10)
	if m.Exact() {
		t.Fatal("sampled MAX state claims exact")
	}
	if got := m.Result(); got.Int() != 7 {
		t.Fatalf("sampled MAX = %v, want 7 (value unscaled)", got)
	}

	if wc, ws := s.Weighted(); wc != 20 || ws != 80 {
		t.Fatalf("Weighted() = (%v, %v), want (20, 80)", wc, ws)
	}
	// For an exact state the weighted accessors mirror the raw fold.
	e := New(Sum)
	e.Add(tuple.Int(3))
	e.Add(tuple.Int(4))
	if wc, ws := e.Weighted(); wc != 2 || ws != 7 {
		t.Fatalf("exact Weighted() = (%v, %v), want (2, 7)", wc, ws)
	}
}

func TestUnitWeightStaysExact(t *testing.T) {
	s := New(Sum)
	s.AddWeighted(tuple.Int(3), 1)
	s.Add(tuple.Int(4))
	if !s.Exact() {
		t.Fatal("unit-weight state marked inexact")
	}
	if got := s.Result(); got.Int() != 7 {
		t.Fatalf("exact SUM = %v, want int 7", got)
	}
}

// TestExactEncodingUnchanged pins the rate=1.0 degenerate case: a state
// that never saw a non-unit weight must encode byte-identically to one
// built through the plain Add path.
func TestExactEncodingUnchanged(t *testing.T) {
	a, b := New(Sum), New(Sum)
	a.Add(tuple.Int(5))
	a.Add(tuple.Float(2.5))
	b.AddWeighted(tuple.Int(5), 1)
	b.AddWeighted(tuple.Float(2.5), 1)
	ea, eb := a.Append(nil), b.Append(nil)
	if !bytes.Equal(ea, eb) {
		t.Fatalf("exact encodings differ: %x vs %x", ea, eb)
	}
	if len(ea) != a.EncodedSize() {
		t.Fatalf("EncodedSize %d != appended %d", a.EncodedSize(), len(ea))
	}
}

// TestInexactSurvivesMergeAndWire checks the Exact flag and the
// weighted sums through encode/decode round trips and pairwise merges
// in both directions — the combiner-tree path.
func TestInexactSurvivesMergeAndWire(t *testing.T) {
	exact := New(Sum)
	exact.Add(tuple.Int(10))
	sampled := New(Sum)
	sampled.AddWeighted(tuple.Int(3), 4)

	// Round-trip both through the wire first (agents encode partials).
	roundtrip := func(s *State) *State {
		buf := s.Append(nil)
		if len(buf) != s.EncodedSize() {
			t.Fatalf("EncodedSize %d != appended %d", s.EncodedSize(), len(buf))
		}
		d, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: err=%v rest=%d", err, len(rest))
		}
		return d
	}
	e2, s2 := roundtrip(exact), roundtrip(sampled)
	if !e2.Exact() || s2.Exact() {
		t.Fatalf("flags lost in round trip: exact=%v sampled=%v", e2.Exact(), s2.Exact())
	}

	mergeAB := e2.Clone()
	mergeAB.Merge(s2)
	mergeBA := s2.Clone()
	mergeBA.Merge(e2)
	for _, m := range []*State{mergeAB, mergeBA} {
		if m.Exact() {
			t.Fatal("merge of exact+sampled claims exact")
		}
		// Weighted sum: 10·1 + 3·4 = 22, both merge orders.
		if got := m.Result(); got.Float() != 22 {
			t.Fatalf("merged weighted SUM = %v, want 22", got)
		}
	}
	// The inexact flag survives a further wire hop (tier-2 combiner).
	if roundtrip(mergeAB).Exact() {
		t.Fatal("inexact flag lost re-encoding a merged state")
	}
}

func TestDecodeTruncatedWeighted(t *testing.T) {
	s := New(Count)
	s.AddWeighted(tuple.Null, 2)
	buf := s.Append(nil)
	for i := range buf {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("truncated decode at %d bytes succeeded", i)
		}
	}
}
