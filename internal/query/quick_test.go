package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics throws random byte soup at the parser: it may
// reject the input, but it must never panic.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTokenSoupNeverPanics does the same with strings built from the
// language's own tokens — more likely to reach deep parser states.
func TestQuickTokenSoupNeverPanics(t *testing.T) {
	tokens := []string{
		"From", "In", "Join", "On", "Where", "GroupBy", "Select",
		"First", "MostRecent", "FirstN", "MostRecentN",
		"COUNT", "SUM", "MIN", "MAX", "AVERAGE",
		"e", "incr", "cl", "a.b", "->", ",", "(", ")", "=", "!=",
		"<", "<=", ">", ">=", "+", "-", "*", "/", "&&", "||", "!",
		"42", "3.5", `"str"`, "true", "false", ".",
	}
	f := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < rng.Intn(30); i++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		Parse(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// randomQuery generates a random well-formed query AST as surface text.
func randomQuery(rng *rand.Rand) string {
	var b strings.Builder
	alias := func(i int) string { return fmt.Sprintf("a%d", i) }
	fmt.Fprintf(&b, "From %s In Tp%d", alias(0), rng.Intn(4))
	nJoins := rng.Intn(3)
	for j := 1; j <= nJoins; j++ {
		src := fmt.Sprintf("Tp%d", 4+j)
		switch rng.Intn(4) {
		case 0:
			src = "First(" + src + ")"
		case 1:
			src = "MostRecent(" + src + ")"
		case 2:
			src = fmt.Sprintf("FirstN(%d, %s)", 1+rng.Intn(5), src)
		}
		fmt.Fprintf(&b, " Join %s In %s On %s -> %s", alias(j), src, alias(j), alias(rng.Intn(j)))
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, " Where %s.x < %d", alias(rng.Intn(nJoins+1)), rng.Intn(100))
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, " GroupBy %s.host", alias(0))
		fmt.Fprintf(&b, " Select %s.host, COUNT", alias(0))
	} else {
		fmt.Fprintf(&b, " Select SUM(%s.x)", alias(rng.Intn(nJoins+1)))
	}
	return b.String()
}

// TestQuickPrintParseFixpoint: parse(print(parse(q))) == parse(q) for
// random well-formed queries.
func TestQuickPrintParseFixpoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		text := randomQuery(rng)
		q1, err := Parse(text)
		if err != nil {
			t.Logf("generator produced invalid query %q: %v", text, err)
			return false
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Logf("reparse of %q failed: %v", printed, err)
			return false
		}
		return q2.String() == printed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
