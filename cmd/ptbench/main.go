// Command ptbench runs the scenario mega-harness: pre-built failure
// scenarios (limplock disks, hot regions, straggler reducers, cascading
// failovers, ...) on thousand-host simulated topologies, with every
// checkpoint asserted through real Pivot Tracing queries.
//
// Usage:
//
//	go run ./cmd/ptbench -all                # full library, 1024-host topologies
//	go run ./cmd/ptbench -run limplock -v    # one scenario, verbose
//	go run ./cmd/ptbench -all -short -seed 7 # reduced CI sizing
//	go run ./cmd/ptbench -all -json out.json # deterministic JSON report
//
// The JSON report is byte-identical across runs with the same seed,
// scenario set, and host count; exit status is nonzero if any checkpoint
// fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run the full scenario library")
		run      = flag.String("run", "", "comma-separated scenario IDs to run")
		list     = flag.Bool("list", false, "list scenarios and exit")
		seed     = flag.Int64("seed", 1, "seed for all scenario randomness")
		hosts    = flag.Int("hosts", 0, "override topology host count (0 = per-scenario default)")
		short    = flag.Bool("short", false, "reduced sizing (CI / -race subsets)")
		jsonPath = flag.String("json", "", "write the deterministic JSON report to this file (- for stdout)")
		verbose  = flag.Bool("v", false, "per-checkpoint progress on stderr")
	)
	flag.Parse()

	if *list {
		for _, s := range scenario.All() {
			def := s.DefaultHosts
			fmt.Printf("%-12s %5d hosts  %s\n", s.ID, def, s.Description)
		}
		return
	}

	var set []*scenario.Scenario
	switch {
	case *all:
		set = scenario.All()
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			s := scenario.ByID(id)
			if s == nil {
				fmt.Fprintf(os.Stderr, "ptbench: unknown scenario %q (try -list)\n", id)
				os.Exit(2)
			}
			set = append(set, s)
		}
	default:
		fmt.Fprintln(os.Stderr, "ptbench: pass -all, -run <ids>, or -list")
		os.Exit(2)
	}

	h := &scenario.Harness{Seed: *seed, Hosts: *hosts, Short: *short}
	if *verbose {
		h.Log = os.Stderr
	}
	results := h.RunAll(set)
	rep := scenario.NewReport(*seed, *short, results)
	rep.Console(os.Stdout)

	if *jsonPath != "" {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonPath == "-" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "ptbench: %v\n", err)
			os.Exit(1)
		}
	}

	if !rep.Passed {
		ids := make([]string, 0, len(results))
		for _, res := range results {
			if !res.Passed {
				ids = append(ids, res.ID)
			}
		}
		fmt.Fprintf(os.Stderr, "ptbench: FAILED %s\nreplay: go run ./cmd/ptbench -run %s -seed %d%s\n",
			strings.Join(ids, ","), strings.Join(ids, ","), *seed, shortFlag(*short))
		os.Exit(1)
	}
}

func shortFlag(short bool) string {
	if short {
		return " -short"
	}
	return ""
}
