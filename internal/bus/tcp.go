package bus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// This file implements the distributed form of the message bus: the
// paper's central pub/sub server (§5) that connects per-process agents to
// the query frontend across machine boundaries. A Server relays framed
// (topic, payload) messages between connections; a Link bridges a remote
// connection onto a process's local Bus, marshaling messages with a
// caller-supplied codec. Topics flow one direction per process (control:
// frontend -> agents; results: agents -> frontend), so bridging cannot
// loop.

// Codec translates between in-memory bus messages and wire payloads.
type Codec interface {
	Marshal(msg any) ([]byte, error)
	Unmarshal(data []byte) (any, error)
}

// frame layout: uvarint topic length, topic, uvarint payload length,
// payload.
func writeFrame(w *bufio.Writer, topic string, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(topic)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.WriteString(topic); err != nil {
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

const maxFrame = 64 << 20

func readFrame(r *bufio.Reader) (topic string, payload []byte, err error) {
	tlen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if tlen > maxFrame {
		return "", nil, errors.New("bus: oversized topic")
	}
	tbuf := make([]byte, tlen)
	if _, err := io.ReadFull(r, tbuf); err != nil {
		return "", nil, err
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if plen > maxFrame {
		return "", nil, errors.New("bus: oversized payload")
	}
	pbuf := make([]byte, plen)
	if _, err := io.ReadFull(r, pbuf); err != nil {
		return "", nil, err
	}
	return string(tbuf), pbuf, nil
}

// StatusTopic is reserved on the server: a frame sent to it is answered —
// to the sending connection only — with a frame on the same topic whose
// payload is the server's StatusText. It gives every deployment a text
// introspection endpoint on the port it already has open.
const StatusTopic = "pt.bus.status"

// maxQueuedBytes is the per-connection outbound queue limit; a subscriber
// lagging further than this is disconnected rather than allowed to stall
// the whole relay (slow-consumer cutoff).
const maxQueuedBytes = 64 << 20

// frame is one queued outbound message. depth is the per-topic depth
// gauge the frame was counted into, decremented when the frame drains.
type frame struct {
	topic   string
	payload []byte
	depth   *telemetry.Gauge
}

// serverConn is one relay connection: frames relayed to it are queued and
// drained by a dedicated writer goroutine, so one slow subscriber delays
// only itself. queuedBytes is the connection's lag in bytes.
type serverConn struct {
	conn net.Conn

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []frame
	queuedBytes int64
	closed      bool
}

// enqueue appends a frame, disconnecting the consumer if its lag exceeds
// maxQueuedBytes. Reports whether the frame was accepted.
func (sc *serverConn) enqueue(f frame) bool {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return false
	}
	if sc.queuedBytes+int64(len(f.payload)) > maxQueuedBytes {
		sc.closed = true
		sc.cond.Signal()
		sc.mu.Unlock()
		sc.conn.Close()
		return false
	}
	sc.queue = append(sc.queue, f)
	sc.queuedBytes += int64(len(f.payload))
	sc.cond.Signal()
	sc.mu.Unlock()
	return true
}

// Server is the central pub/sub relay: every frame received from one
// connection is forwarded to all other connections, asynchronously via
// per-connection outbound queues. Subscription filtering happens
// client-side (the deployments are small; the paper's pub/sub server is
// likewise a simple hub).
type Server struct {
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]*serverConn
	depths map[string]*telemetry.Gauge // per-topic queued-frame gauges
	done   bool

	tel     *telemetry.Registry
	frames  *telemetry.Counter // frames received
	bytes   *telemetry.Counter // payload bytes received
	queued  *telemetry.Gauge   // outbound frames queued across all conns
	lag     *telemetry.Gauge   // outbound bytes queued across all conns
	connsG  *telemetry.Gauge   // live connections
	dropped *telemetry.Counter // slow-consumer disconnects
}

// Serve starts a pub/sub server on addr (e.g. "127.0.0.1:0") and returns
// it; the listener address is available via Addr.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	tel := telemetry.NewRegistry()
	s := &Server{
		ln:      ln,
		conns:   make(map[net.Conn]*serverConn),
		depths:  make(map[string]*telemetry.Gauge),
		tel:     tel,
		frames:  tel.Counter("bus.server.frames"),
		bytes:   tel.Counter("bus.server.bytes"),
		queued:  tel.Gauge("bus.server.queued.frames"),
		lag:     tel.Gauge("bus.server.queued.bytes"),
		connsG:  tel.Gauge("bus.server.conns"),
		dropped: tel.Counter("bus.server.dropped.conns"),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Telemetry returns the server's metric registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// StatusText renders the server's health as an aligned text table.
func (s *Server) StatusText() string {
	return fmt.Sprintf("bus server %s\n\n%s", s.Addr(), s.tel.Snapshot().Render())
}

// topicDepth returns the queued-frame gauge for a topic.
func (s *Server) topicDepth(topic string) *telemetry.Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.depths[topic]
	if !ok {
		g = s.tel.Gauge("bus.server.depth." + topic)
		s.depths[topic] = g
	}
	return g
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		sc := &serverConn{conn: conn}
		sc.cond = sync.NewCond(&sc.mu)
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = sc
		s.mu.Unlock()
		s.connsG.Add(1)
		go s.writeLoop(sc)
		go s.serveConn(sc)
	}
}

// writeLoop drains one connection's outbound queue.
func (s *Server) writeLoop(sc *serverConn) {
	w := bufio.NewWriter(sc.conn)
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && !sc.closed {
			sc.cond.Wait()
		}
		if len(sc.queue) == 0 { // closed and drained
			sc.mu.Unlock()
			return
		}
		batch := sc.queue
		sc.queue = nil
		sc.mu.Unlock()
		for i, f := range batch {
			err := writeFrame(w, f.topic, f.payload)
			s.dequeued(sc, batch[i:i+1])
			if err != nil {
				sc.mu.Lock()
				sc.closed = true
				rest := sc.queue
				sc.queue = nil
				sc.mu.Unlock()
				sc.conn.Close()
				s.dequeued(sc, batch[i+1:])
				s.dequeued(sc, rest)
				return
			}
		}
	}
}

// dequeued retires frames from a connection's queue accounting.
func (s *Server) dequeued(sc *serverConn, frames []frame) {
	if len(frames) == 0 {
		return
	}
	var bytes int64
	for _, f := range frames {
		bytes += int64(len(f.payload))
		f.depth.Add(-1)
	}
	sc.mu.Lock()
	sc.queuedBytes -= bytes
	sc.mu.Unlock()
	s.queued.Add(-int64(len(frames)))
	s.lag.Add(-bytes)
}

func (s *Server) serveConn(sc *serverConn) {
	conn := sc.conn
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connsG.Add(-1)
		sc.mu.Lock()
		sc.closed = true
		sc.cond.Signal()
		sc.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		topic, payload, err := readFrame(r)
		if err != nil {
			return
		}
		s.frames.Inc()
		s.bytes.Add(int64(len(payload)))
		if topic == StatusTopic {
			s.relay(topic, []byte(s.StatusText()), []*serverConn{sc})
			continue
		}
		s.mu.Lock()
		targets := make([]*serverConn, 0, len(s.conns))
		for other, osc := range s.conns {
			if other == conn {
				continue
			}
			targets = append(targets, osc)
		}
		s.mu.Unlock()
		s.relay(topic, payload, targets)
	}
}

// relay enqueues one frame onto each target connection, maintaining queue
// depth and lag accounting.
func (s *Server) relay(topic string, payload []byte, targets []*serverConn) {
	depth := s.topicDepth(topic)
	f := frame{topic: topic, payload: payload, depth: depth}
	for _, sc := range targets {
		depth.Add(1)
		s.queued.Add(1)
		s.lag.Add(int64(len(payload)))
		if !sc.enqueue(f) {
			depth.Add(-1)
			s.queued.Add(-1)
			s.lag.Add(-int64(len(payload)))
			s.dropped.Inc()
		}
	}
}

// Close shuts the server down and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, sc := range conns {
		sc.mu.Lock()
		sc.closed = true
		sc.cond.Signal()
		sc.mu.Unlock()
		sc.conn.Close()
	}
}

// FetchServerStatus dials a pub/sub server, requests its status text, and
// returns it. It is the client side of the StatusTopic endpoint, used by
// cmd/ptstat.
func FetchServerStatus(addr string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	w := bufio.NewWriter(conn)
	if err := writeFrame(w, StatusTopic, nil); err != nil {
		return "", err
	}
	r := bufio.NewReader(conn)
	for {
		topic, payload, err := readFrame(r)
		if err != nil {
			return "", err
		}
		if topic == StatusTopic {
			return string(payload), nil
		}
	}
}

// Link bridges a process's local Bus to a remote pub/sub server: messages
// published locally on the send topics are marshaled and forwarded;
// frames received for the recv topics are unmarshaled and published
// locally. Close the link to disconnect.
type Link struct {
	conn net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex
	subs []Subscription
	bus  *Bus
	errs chan error
}

// Connect dials the server and starts bridging.
func Connect(b *Bus, addr string, codec Codec, send, recv []string) (*Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	l := &Link{conn: conn, w: bufio.NewWriter(conn), bus: b, errs: make(chan error, 1)}

	for _, topic := range send {
		topic := topic
		sub := b.Subscribe(topic, func(msg any) {
			payload, err := codec.Marshal(msg)
			if err != nil {
				return // unmarshalable local-only message
			}
			l.wmu.Lock()
			defer l.wmu.Unlock()
			writeFrame(l.w, topic, payload)
		})
		l.subs = append(l.subs, sub)
	}

	recvSet := make(map[string]bool, len(recv))
	for _, t := range recv {
		recvSet[t] = true
	}
	go func() {
		r := bufio.NewReader(conn)
		for {
			topic, payload, err := readFrame(r)
			if err != nil {
				select {
				case l.errs <- err:
				default:
				}
				return
			}
			if !recvSet[topic] {
				continue
			}
			msg, err := codec.Unmarshal(payload)
			if err != nil {
				continue
			}
			b.Publish(topic, msg)
		}
	}()
	return l, nil
}

// Close stops bridging and closes the connection.
func (l *Link) Close() {
	for _, sub := range l.subs {
		l.bus.Unsubscribe(sub)
	}
	l.conn.Close()
}

// Err reports the first receive-loop error, if any (nil while healthy).
func (l *Link) Err() error {
	select {
	case err := <-l.errs:
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	default:
		return nil
	}
}
