package bus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// This file implements the distributed form of the message bus: the
// paper's central pub/sub server (§5) that connects per-process agents to
// the query frontend across machine boundaries. A Server relays framed
// (topic, payload) messages between connections; a Link bridges a remote
// connection onto a process's local Bus, marshaling messages with a
// caller-supplied codec. Topics flow one direction per process (control:
// frontend -> agents; results: agents -> frontend), so bridging cannot
// loop.

// Codec translates between in-memory bus messages and wire payloads.
type Codec interface {
	Marshal(msg any) ([]byte, error)
	Unmarshal(data []byte) (any, error)
}

// Frame protocol errors. A frame error poisons only the connection it
// arrived on; the server drops that connection and keeps relaying for
// everyone else.
var (
	errEmptyTopic       = errors.New("bus: zero-length topic")
	errOversizedTopic   = errors.New("bus: oversized topic")
	errOversizedPayload = errors.New("bus: oversized payload")
)

// frame layout: uvarint topic length, topic, uvarint payload length,
// payload.
func writeFrame(w *bufio.Writer, topic string, payload []byte) error {
	if len(topic) == 0 {
		return errEmptyTopic
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(topic)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.WriteString(topic); err != nil {
		return err
	}
	n = binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

const maxFrame = 64 << 20

func readFrame(r *bufio.Reader) (topic string, payload []byte, err error) {
	tlen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if tlen == 0 {
		return "", nil, errEmptyTopic
	}
	if tlen > maxFrame {
		return "", nil, errOversizedTopic
	}
	tbuf := make([]byte, tlen)
	if _, err := io.ReadFull(r, tbuf); err != nil {
		return "", nil, err
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return "", nil, err
	}
	if plen > maxFrame {
		return "", nil, errOversizedPayload
	}
	pbuf := make([]byte, plen)
	if _, err := io.ReadFull(r, pbuf); err != nil {
		return "", nil, err
	}
	return string(tbuf), pbuf, nil
}

// StatusTopic is reserved on the server: a frame sent to it is answered —
// to the sending connection only — with a frame on the same topic whose
// payload is the server's StatusText. It gives every deployment a text
// introspection endpoint on the port it already has open.
const StatusTopic = "pt.bus.status"

// SubscribeTopic is reserved on the server: a link announces its receive
// topics by sending one frame to it (payload: newline-separated topic
// list, empty for none). The server then relays only matching topics to
// that connection, and parks frames that currently have no live
// subscriber in a bounded per-topic retention buffer flushed to the next
// matching subscriber — so a report replayed while the frontend is itself
// still reconnecting is parked, not lost. Connections that never announce
// (raw protocol peers) receive everything, as before.
const SubscribeTopic = "pt.bus.sub"

// retainPerTopic bounds the per-topic retention buffer of frames parked
// while no subscriber is connected; overflow evicts the oldest frame and
// counts it in bus.server.retained.dropped.
const retainPerTopic = 64

// maxQueuedBytes is the per-connection outbound queue limit; a subscriber
// lagging further than this is disconnected rather than allowed to stall
// the whole relay (slow-consumer cutoff).
const maxQueuedBytes = 64 << 20

// frame is one queued outbound message. depth is the per-topic depth
// gauge the frame was counted into, decremented when the frame drains.
type frame struct {
	topic   string
	payload []byte
	depth   *telemetry.Gauge
}

// serverConn is one relay connection: frames relayed to it are queued and
// drained by a dedicated writer goroutine, so one slow subscriber delays
// only itself. queuedBytes is the connection's lag in bytes.
type serverConn struct {
	conn net.Conn

	// subs is the connection's announced receive-topic set, nil until the
	// peer sends a SubscribeTopic frame (nil = receive everything).
	// Guarded by the Server's mu, not the connection's.
	subs map[string]bool

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []frame
	queuedBytes int64
	closed      bool
}

// enqueue appends a frame, disconnecting the consumer if its lag exceeds
// maxQueuedBytes. Reports whether the frame was accepted.
func (sc *serverConn) enqueue(f frame) bool {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return false
	}
	if sc.queuedBytes+int64(len(f.payload)) > maxQueuedBytes {
		sc.closed = true
		sc.cond.Signal()
		sc.mu.Unlock()
		sc.conn.Close()
		return false
	}
	sc.queue = append(sc.queue, f)
	sc.queuedBytes += int64(len(f.payload))
	sc.cond.Signal()
	sc.mu.Unlock()
	return true
}

// Server is the central pub/sub relay: every frame received from one
// connection is forwarded to all other connections, asynchronously via
// per-connection outbound queues. Subscription filtering happens
// client-side (the deployments are small; the paper's pub/sub server is
// likewise a simple hub).
type Server struct {
	ln net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]*serverConn
	depths   map[string]*telemetry.Gauge // per-topic queued-frame gauges
	retained map[string][][]byte         // parked frames awaiting a subscriber
	done     bool

	tel         *telemetry.Registry
	frames      *telemetry.Counter // frames received
	bytes       *telemetry.Counter // payload bytes received
	queued      *telemetry.Gauge   // outbound frames queued across all conns
	lag         *telemetry.Gauge   // outbound bytes queued across all conns
	connsG      *telemetry.Gauge   // live connections
	dropped     *telemetry.Counter // slow-consumer disconnects
	badFrames   *telemetry.Counter // malformed/truncated inbound frames
	retainedG   *telemetry.Gauge   // frames parked awaiting a subscriber
	retainDrops *telemetry.Counter // parked frames evicted by the cap
}

// Serve starts a pub/sub server on addr (e.g. "127.0.0.1:0") and returns
// it; the listener address is available via Addr.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	tel := telemetry.NewRegistry()
	s := &Server{
		ln:          ln,
		conns:       make(map[net.Conn]*serverConn),
		depths:      make(map[string]*telemetry.Gauge),
		retained:    make(map[string][][]byte),
		tel:         tel,
		frames:      tel.Counter("bus.server.frames"),
		bytes:       tel.Counter("bus.server.bytes"),
		queued:      tel.Gauge("bus.server.queued.frames"),
		lag:         tel.Gauge("bus.server.queued.bytes"),
		connsG:      tel.Gauge("bus.server.conns"),
		dropped:     tel.Counter("bus.server.dropped.conns"),
		badFrames:   tel.Counter("bus.server.badframes"),
		retainedG:   tel.Gauge("bus.server.retained"),
		retainDrops: tel.Counter("bus.server.retained.dropped"),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Telemetry returns the server's metric registry.
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// StatusText renders the server's health as an aligned text table.
func (s *Server) StatusText() string {
	return fmt.Sprintf("bus server %s\n\n%s", s.Addr(), s.tel.Snapshot().Render())
}

// topicDepth returns the queued-frame gauge for a topic.
func (s *Server) topicDepth(topic string) *telemetry.Gauge {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.depths[topic]
	if !ok {
		g = s.tel.Gauge("bus.server.depth." + topic)
		s.depths[topic] = g
	}
	return g
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		sc := &serverConn{conn: conn}
		sc.cond = sync.NewCond(&sc.mu)
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = sc
		s.mu.Unlock()
		s.connsG.Add(1)
		go s.writeLoop(sc)
		go s.serveConn(sc)
	}
}

// writeLoop drains one connection's outbound queue.
func (s *Server) writeLoop(sc *serverConn) {
	w := bufio.NewWriter(sc.conn)
	for {
		sc.mu.Lock()
		for len(sc.queue) == 0 && !sc.closed {
			sc.cond.Wait()
		}
		if len(sc.queue) == 0 { // closed and drained
			sc.mu.Unlock()
			return
		}
		batch := sc.queue
		sc.queue = nil
		sc.mu.Unlock()
		for i, f := range batch {
			err := writeFrame(w, f.topic, f.payload)
			s.dequeued(sc, batch[i:i+1])
			if err != nil {
				sc.mu.Lock()
				sc.closed = true
				rest := sc.queue
				sc.queue = nil
				sc.mu.Unlock()
				sc.conn.Close()
				s.dequeued(sc, batch[i+1:])
				s.dequeued(sc, rest)
				return
			}
		}
	}
}

// dequeued retires frames from a connection's queue accounting.
func (s *Server) dequeued(sc *serverConn, frames []frame) {
	if len(frames) == 0 {
		return
	}
	var bytes int64
	for _, f := range frames {
		bytes += int64(len(f.payload))
		f.depth.Add(-1)
	}
	sc.mu.Lock()
	sc.queuedBytes -= bytes
	sc.mu.Unlock()
	s.queued.Add(-int64(len(frames)))
	s.lag.Add(-bytes)
}

func (s *Server) serveConn(sc *serverConn) {
	conn := sc.conn
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connsG.Add(-1)
		sc.mu.Lock()
		sc.closed = true
		sc.cond.Signal()
		sc.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReader(conn)
	for {
		topic, payload, err := readFrame(r)
		if err != nil {
			// A clean EOF is an orderly disconnect; anything else is a
			// malformed or truncated frame. Either way only this
			// connection dies — the relay keeps serving everyone else.
			if !errors.Is(err, io.EOF) {
				s.badFrames.Inc()
			}
			return
		}
		s.frames.Inc()
		s.bytes.Add(int64(len(payload)))
		if topic == StatusTopic {
			s.relay(topic, []byte(s.StatusText()), []*serverConn{sc})
			continue
		}
		if topic == SubscribeTopic {
			s.subscribe(sc, payload)
			continue
		}
		s.mu.Lock()
		targets := make([]*serverConn, 0, len(s.conns))
		for other, osc := range s.conns {
			if other == conn {
				continue
			}
			if osc.subs != nil && !osc.subs[topic] {
				continue
			}
			targets = append(targets, osc)
		}
		if len(targets) == 0 {
			s.retainLocked(topic, payload)
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		s.relay(topic, payload, targets)
	}
}

// retainLocked parks a frame that currently has no subscriber, evicting
// the oldest parked frame when the per-topic cap is hit. Caller holds mu.
func (s *Server) retainLocked(topic string, payload []byte) {
	q := s.retained[topic]
	if len(q) >= retainPerTopic {
		q = append(q[:0:0], q[1:]...)
		s.retainDrops.Inc()
		s.retainedG.Add(-1)
	}
	s.retained[topic] = append(q, payload)
	s.retainedG.Add(1)
}

// subscribe records a connection's announced receive topics and flushes
// any frames parked for them, oldest first.
func (s *Server) subscribe(sc *serverConn, payload []byte) {
	subs := make(map[string]bool)
	for _, t := range strings.Split(string(payload), "\n") {
		if t != "" {
			subs[t] = true
		}
	}
	type parked struct {
		topic    string
		payloads [][]byte
	}
	var backlog []parked
	s.mu.Lock()
	sc.subs = subs
	for t := range subs {
		if q := s.retained[t]; len(q) > 0 {
			delete(s.retained, t)
			backlog = append(backlog, parked{topic: t, payloads: q})
		}
	}
	s.mu.Unlock()
	for _, p := range backlog {
		s.retainedG.Add(-int64(len(p.payloads)))
		for _, pl := range p.payloads {
			s.relay(p.topic, pl, []*serverConn{sc})
		}
	}
}

// relay enqueues one frame onto each target connection, maintaining queue
// depth and lag accounting.
func (s *Server) relay(topic string, payload []byte, targets []*serverConn) {
	depth := s.topicDepth(topic)
	f := frame{topic: topic, payload: payload, depth: depth}
	for _, sc := range targets {
		depth.Add(1)
		s.queued.Add(1)
		s.lag.Add(int64(len(payload)))
		if !sc.enqueue(f) {
			depth.Add(-1)
			s.queued.Add(-1)
			s.lag.Add(-int64(len(payload)))
			s.dropped.Inc()
		}
	}
}

// Close shuts the server down and drops all connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	conns := make([]*serverConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.ln.Close()
	for _, sc := range conns {
		sc.mu.Lock()
		sc.closed = true
		sc.cond.Signal()
		sc.mu.Unlock()
		sc.conn.Close()
	}
}

// FetchServerStatus dials a pub/sub server, requests its status text, and
// returns it. It is the client side of the StatusTopic endpoint, used by
// cmd/ptstat. The connection is closed on every exit path, including a
// read that times out after a successful dial.
func FetchServerStatus(addr string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return "", err
	}
	w := bufio.NewWriter(conn)
	if err := writeFrame(w, StatusTopic, nil); err != nil {
		return "", err
	}
	r := bufio.NewReader(conn)
	for {
		topic, payload, err := readFrame(r)
		if err != nil {
			return "", err
		}
		if topic == StatusTopic {
			return string(payload), nil
		}
	}
}

// ErrLinkDown is returned by Link.Send while the link is disconnected.
var ErrLinkDown = errors.New("bus: link down")

// Backoff and retention defaults for reconnecting links.
const (
	DefaultBackoffBase = 20 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// LinkOptions configures a Link's resilience behavior. The zero value is
// the original fail-fast link: the first I/O error kills it permanently.
type LinkOptions struct {
	// Reconnect enables automatic redial with exponential backoff and
	// seeded jitter after the connection fails. Local subscriptions are
	// kept across outages, so bridging resumes (resubscription) as soon
	// as a dial succeeds.
	Reconnect bool

	// BackoffBase/BackoffMax bound the redial schedule: the nth attempt
	// waits base*2^n plus up to 50% jitter, capped at max. Zero values
	// take the defaults above.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// JitterSeed fixes the jitter RNG so chaos tests replay exactly.
	JitterSeed int64

	// Dial overrides the dialer (fault injectors wrap connections here).
	// Nil dials plain TCP.
	Dial func(addr string) (net.Conn, error)

	// OnUp is called (from the reconnect goroutine) after each successful
	// reconnect, with the total reconnect count. Callers replay buffered
	// traffic here.
	OnUp func(reconnects int64)

	// OnDown is called once per connection loss with the causing error.
	OnDown func(err error)

	// OnDrop is called for each locally published message on a send topic
	// that could not be forwarded (link down, or the write failed).
	// Callers use it to retain reports for replay.
	OnDrop func(topic string, msg any)

	// Telemetry, when set, records "bus.link.reconnects" and
	// "bus.link.drops" counters and a "bus.link.connected" gauge.
	Telemetry *telemetry.Registry
}

// Link bridges a process's local Bus to a remote pub/sub server: messages
// published locally on the send topics are marshaled and forwarded;
// frames received for the recv topics are unmarshaled and published
// locally. With LinkOptions.Reconnect the link survives server outages:
// it redials with exponential backoff + jitter, resumes bridging, and
// reports messages lost meanwhile via OnDrop. Close the link to
// disconnect.
type Link struct {
	addr    string
	codec   Codec
	bus     *Bus
	opts    LinkOptions
	recv    []string // announced to the server on every (re)connect
	recvSet map[string]bool
	subs    []Subscription

	mu           sync.Mutex
	conn         net.Conn
	w            *bufio.Writer
	gen          int // connection generation; stale recv loops no-op
	closed       bool
	reconnecting bool

	reconnects atomic.Int64
	drops      atomic.Int64
	errs       chan error

	mReconnects *telemetry.Counter
	mDrops      *telemetry.Counter
	mConnected  *telemetry.Gauge
}

// Connect dials the server and starts bridging with fail-fast semantics
// (no reconnection) — the historical behavior.
func Connect(b *Bus, addr string, codec Codec, send, recv []string) (*Link, error) {
	return ConnectOptions(b, addr, codec, send, recv, LinkOptions{})
}

// ConnectOptions dials the server and starts bridging with the given
// resilience options. The initial dial must succeed; reconnection applies
// to failures after that.
func ConnectOptions(b *Bus, addr string, codec Codec, send, recv []string, opts LinkOptions) (*Link, error) {
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.BackoffMax < opts.BackoffBase {
		opts.BackoffMax = DefaultBackoffMax
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := opts.Dial(addr)
	if err != nil {
		return nil, err
	}
	l := &Link{
		addr:    addr,
		codec:   codec,
		bus:     b,
		opts:    opts,
		recv:    append([]string(nil), recv...),
		recvSet: make(map[string]bool, len(recv)),
		conn:    conn,
		w:       bufio.NewWriter(conn),
		errs:    make(chan error, 1),
	}
	for _, t := range recv {
		l.recvSet[t] = true
	}
	if err := l.announce(l.w); err != nil {
		conn.Close()
		return nil, err
	}
	if tel := opts.Telemetry; tel != nil {
		l.mReconnects = tel.Counter("bus.link.reconnects")
		l.mDrops = tel.Counter("bus.link.drops")
		l.mConnected = tel.Gauge("bus.link.connected")
		l.mConnected.Set(1)
	}

	for _, topic := range send {
		topic := topic
		sub := b.Subscribe(topic, func(msg any) {
			if err := l.Send(topic, msg); err != nil && !errors.Is(err, errUnmarshalable) {
				l.noteDrop(topic, msg)
			}
		})
		l.subs = append(l.subs, sub)
	}
	go l.recvLoop(conn, 0)
	return l, nil
}

// announce tells the server which topics this link wants relayed, so
// frames published while no subscriber is connected are parked for the
// next one instead of vanishing.
func (l *Link) announce(w *bufio.Writer) error {
	return writeFrame(w, SubscribeTopic, []byte(strings.Join(l.recv, "\n")))
}

// errUnmarshalable marks local-only messages the codec cannot carry; they
// are not link losses.
var errUnmarshalable = errors.New("bus: message not marshalable")

// Send marshals and forwards one message to the server immediately,
// bypassing the local bus. It returns ErrLinkDown (or the write error) if
// the message did not reach the socket; callers replaying buffered
// traffic use the error to re-buffer. Send does not invoke OnDrop.
func (l *Link) Send(topic string, msg any) error {
	payload, err := l.codec.Marshal(msg)
	if err != nil {
		return errUnmarshalable
	}
	l.mu.Lock()
	if l.closed || l.conn == nil {
		l.mu.Unlock()
		return ErrLinkDown
	}
	conn := l.conn
	err = writeFrame(l.w, topic, payload)
	if err != nil {
		l.connDownLocked(conn, err)
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()
	return nil
}

// noteDrop records one undeliverable send-topic message.
func (l *Link) noteDrop(topic string, msg any) {
	l.drops.Add(1)
	if l.mDrops != nil {
		l.mDrops.Inc()
	}
	if l.opts.OnDrop != nil {
		l.opts.OnDrop(topic, msg)
	}
}

// recvLoop reads frames from one connection until it fails, then triggers
// reconnection. gen identifies the connection so a stale loop cannot tear
// down its successor.
func (l *Link) recvLoop(conn net.Conn, gen int) {
	r := bufio.NewReader(conn)
	for {
		topic, payload, err := readFrame(r)
		if err != nil {
			select {
			case l.errs <- err:
			default:
			}
			l.mu.Lock()
			if l.gen == gen {
				l.connDownLocked(conn, err)
			}
			l.mu.Unlock()
			return
		}
		if !l.recvSet[topic] {
			continue
		}
		msg, err := l.codec.Unmarshal(payload)
		if err != nil {
			continue
		}
		l.bus.Publish(topic, msg)
	}
}

// connDownLocked transitions the link to disconnected (if conn is still
// current) and starts the reconnect loop when enabled. Caller holds l.mu.
func (l *Link) connDownLocked(conn net.Conn, err error) {
	if l.conn != conn || l.conn == nil {
		return // already superseded
	}
	l.conn.Close()
	l.conn = nil
	l.w = nil
	l.gen++
	if l.mConnected != nil {
		l.mConnected.Set(0)
	}
	if l.opts.OnDown != nil {
		down := l.opts.OnDown
		go down(err)
	}
	if l.opts.Reconnect && !l.closed && !l.reconnecting {
		l.reconnecting = true
		go l.reconnectLoop()
	}
}

// reconnectLoop redials with exponential backoff and seeded jitter until
// a dial succeeds or the link is closed.
func (l *Link) reconnectLoop() {
	rng := rand.New(rand.NewSource(l.opts.JitterSeed))
	backoff := l.opts.BackoffBase
	for {
		wait := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		time.Sleep(wait)
		l.mu.Lock()
		if l.closed {
			l.reconnecting = false
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()

		conn, err := l.opts.Dial(l.addr)
		if err != nil {
			if backoff *= 2; backoff > l.opts.BackoffMax {
				backoff = l.opts.BackoffMax
			}
			continue
		}
		w := bufio.NewWriter(conn)
		if err := l.announce(w); err != nil {
			conn.Close()
			if backoff *= 2; backoff > l.opts.BackoffMax {
				backoff = l.opts.BackoffMax
			}
			continue
		}
		l.mu.Lock()
		if l.closed {
			l.reconnecting = false
			l.mu.Unlock()
			conn.Close()
			return
		}
		l.conn = conn
		l.w = w
		l.gen++
		gen := l.gen
		l.reconnecting = false
		l.mu.Unlock()

		l.reconnects.Add(1)
		if l.mReconnects != nil {
			l.mReconnects.Inc()
		}
		if l.mConnected != nil {
			l.mConnected.Set(1)
		}
		go l.recvLoop(conn, gen)
		if l.opts.OnUp != nil {
			l.opts.OnUp(l.reconnects.Load())
		}
		return
	}
}

// Connected reports whether the link currently has a live connection.
func (l *Link) Connected() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn != nil && !l.closed
}

// Reconnects returns how many times the link has reconnected.
func (l *Link) Reconnects() int64 { return l.reconnects.Load() }

// Drops returns how many send-topic messages were lost to outages.
func (l *Link) Drops() int64 { return l.drops.Load() }

// Close stops bridging, disables reconnection, and closes the connection.
func (l *Link) Close() {
	for _, sub := range l.subs {
		l.bus.Unsubscribe(sub)
	}
	l.mu.Lock()
	l.closed = true
	conn := l.conn
	l.conn = nil
	l.w = nil
	l.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	if l.mConnected != nil {
		l.mConnected.Set(0)
	}
}

// Err reports the first receive-loop error, if any (nil while healthy).
func (l *Link) Err() error {
	select {
	case err := <-l.errs:
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	default:
		return nil
	}
}
