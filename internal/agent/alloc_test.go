//go:build !race

package agent

// Allocation-regression tests for the woven end-to-end hot path. Excluded
// under -race: the race detector's instrumentation adds bookkeeping
// allocations that would fail these assertions for reasons unrelated to
// the code under test.

import (
	"context"
	"testing"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/tracepoint"
)

// TestAllocWovenEmitPathIsAllocationFree drives the full production path —
// tracepoint fire, advice projection, agent EmitTuple, sharded accumulator
// fold — and requires it to be allocation-free once the group exists.
func TestAllocWovenEmitPathIsAllocationFree(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Stress.Tracepoint", "v")
	a := New(nil, info("h1"), reg, b, 0)
	defer a.Close()
	b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{stressProgram("Q")}})

	ctx := tracepoint.WithProc(context.Background(), info("h1"))
	ctx = baggage.NewContext(ctx, baggage.New())
	tp.Here(ctx, 1) // create the group and warm every pool (cold)
	if n := testing.AllocsPerRun(1000, func() {
		tp.Here(ctx, 1)
	}); n != 0 {
		t.Errorf("steady-state woven Here through agent EmitTuple allocates "+
			"%.1f objects/op, want 0 (regression in the fire-scratch, emit, "+
			"or sharded accumulator path)", n)
	}
}
