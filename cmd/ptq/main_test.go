package main

import (
	"strings"
	"testing"
)

// TestVocabularyDefinesHadoopTracepoints spot-checks the simulated
// stack's tracepoint vocabulary that queries resolve against.
func TestVocabularyDefinesHadoopTracepoints(t *testing.T) {
	reg := vocabulary()
	for _, name := range []string{
		"NN.GetBlockLocations", "DN.DataTransferProtocol", "StressTest.DoNextOp",
	} {
		if reg.Lookup(name) == nil {
			t.Errorf("vocabulary missing %s", name)
		}
	}
}

// TestRunExplainAnalyzeDefaultQuery runs the demo workload through the
// demo case's own happened-before join and checks the measured plan has
// the operator annotations, the frontend merge line, and the per-process
// breakdown.
func TestRunExplainAnalyzeDefaultQuery(t *testing.T) {
	out, err := runExplainAnalyze("", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE", "MERGE at frontend", "per-process agent breakdown:", "emitted=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain-analyze output missing %q\n%s", want, out)
		}
	}
}

// TestRunExplainAnalyzeRejectsBadQuery: a query over an undefined
// tracepoint fails at install, surfaced as an error.
func TestRunExplainAnalyzeRejectsBadQuery(t *testing.T) {
	if _, err := runExplainAnalyze("From x In Nowhere.Defined Select x.host", 1); err == nil {
		t.Fatal("want install error for unknown tracepoint")
	}
}
