package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{math.MinInt64, 0},
		{-1, 0},
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every positive value must satisfy BucketUpper(i-1) < v <= BucketUpper(i).
	for _, v := range []int64{1, 2, 3, 4, 5, 1000, 1 << 20, math.MaxInt64} {
		i := BucketOf(v)
		if v > BucketUpper(i) {
			t.Errorf("value %d above upper bound %d of its bucket %d", v, BucketUpper(i), i)
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("value %d fits in the previous bucket %d (upper %d)", v, i-1, BucketUpper(i-1))
		}
	}
}

func TestBucketUpper(t *testing.T) {
	if got := BucketUpper(0); got != 0 {
		t.Errorf("BucketUpper(0) = %d", got)
	}
	if got := BucketUpper(1); got != 1 {
		t.Errorf("BucketUpper(1) = %d, want 1", got)
	}
	if got := BucketUpper(10); got != 1023 {
		t.Errorf("BucketUpper(10) = %d, want 1023", got)
	}
	if got := BucketUpper(63); got != math.MaxInt64 {
		t.Errorf("BucketUpper(63) = %d, want MaxInt64", got)
	}
	if got := BucketUpper(64); got != math.MaxInt64 {
		t.Errorf("BucketUpper(64) = %d, want MaxInt64", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 1, 3, 100, -5, 0} {
		h.Observe(v)
	}
	v := h.snapshot()
	if v.Count != 6 {
		t.Fatalf("count = %d, want 6", v.Count)
	}
	if v.Sum != 100 {
		t.Fatalf("sum = %d, want 100", v.Sum)
	}
	if v.Buckets[0] != 2 { // -5 and 0
		t.Errorf("bucket 0 = %d, want 2", v.Buckets[0])
	}
	if v.Buckets[1] != 2 { // two 1s
		t.Errorf("bucket 1 = %d, want 2", v.Buckets[1])
	}
	if v.Buckets[2] != 1 { // 3
		t.Errorf("bucket 2 = %d, want 1", v.Buckets[2])
	}
	if v.Buckets[7] != 1 { // 100 in [64,128)
		t.Errorf("bucket 7 = %d, want 1", v.Buckets[7])
	}
	if v.Max() != 127 {
		t.Errorf("max = %d, want 127", v.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	v := h.snapshot()
	// p50 of 1..100 is ~50; bucket upper bound gives 63.
	if got := v.Quantile(0.50); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	if got := v.Quantile(0.99); got != 127 {
		t.Errorf("p99 = %d, want 127", got)
	}
	if got := v.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	if got := (HistValue{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	g := r.Gauge("depth")
	h := r.Histogram("lat")

	c.Add(10)
	g.Set(3)
	h.Observe(5)
	prev := r.Snapshot()

	c.Add(7)
	g.Set(9)
	h.Observe(6)
	h.Observe(7)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if d.Counters["ops"] != 7 {
		t.Errorf("counter delta = %d, want 7", d.Counters["ops"])
	}
	if d.Gauges["depth"] != 9 { // gauges are instantaneous
		t.Errorf("gauge delta = %d, want 9", d.Gauges["depth"])
	}
	hv := d.Hists["lat"]
	if hv.Count != 2 || hv.Sum != 13 {
		t.Errorf("hist delta count=%d sum=%d, want 2/13", hv.Count, hv.Sum)
	}

	// Metric born after prev: treated as starting from zero.
	r.Counter("new").Add(4)
	d2 := r.Snapshot().Delta(prev)
	if d2.Counters["new"] != 4 {
		t.Errorf("new counter delta = %d, want 4", d2.Counters["new"])
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c := r.Counter("hits")
			g := r.Gauge("net")
			h := r.Histogram("vals")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(seed + int64(i))
			}
		}(int64(w * 1000))
	}
	wg.Wait()

	s := r.Snapshot()
	if s.Counters["hits"] != workers*perWorker {
		t.Errorf("counter = %d, want %d", s.Counters["hits"], workers*perWorker)
	}
	if s.Gauges["net"] != 0 {
		t.Errorf("gauge = %d, want 0", s.Gauges["net"])
	}
	if s.Hists["vals"].Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", s.Hists["vals"].Count, workers*perWorker)
	}
}

func TestRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("bus.published").Add(42)
	r.Gauge("bus.conns").Set(3)
	r.Histogram("weave.ns").Observe(1500)
	out := r.Snapshot().Render()
	for _, want := range []string{"metric", "bus.published", "42", "bus.conns", "3", "histogram", "weave.ns", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// All scalar table lines align to the same width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("render produced %d lines:\n%s", len(lines), out)
	}
	if (Snapshot{}).Render() != "" {
		t.Error("empty snapshot should render to empty string")
	}
}

func BenchmarkCounter(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			v++
			h.Observe(v)
		}
	})
}
