package tuple

import (
	"bytes"
	"testing"

	"repro/internal/randtest"
)

// valueSeeds covers every kind tag plus malformed shapes: a huge string
// length, a bad kind tag, and truncations.
func valueSeeds() map[string][]byte {
	return map[string][]byte{
		"null":        AppendValue(nil, Null),
		"int":         AppendValue(nil, Int(-42)),
		"float":       AppendValue(nil, Float(3.25)),
		"string":      AppendValue(nil, String("hello")),
		"bool":        AppendValue(nil, Bool(true)),
		"huge-len":    {byte(KindString), 0xff, 0xff, 0xff, 0xff, 0x0f},
		"bad-kind":    {0x7f, 0x01},
		"trunc-float": {byte(KindFloat), 1, 2, 3},
	}
}

func tupleSeeds() map[string][]byte {
	return map[string][]byte{
		"mixed": AppendTuple(nil, Tuple{Int(1), Float(2.5), String("s"), Bool(false), Null}),
		"empty": AppendTuple(nil, Tuple{}),
		// Count claims 2^28 elements but the buffer holds one byte: the
		// decoder must fail without preallocating for the claimed count.
		"huge-count": {0xff, 0xff, 0xff, 0x7f, 0x00},
		// Count of 2^63 goes negative through a plain int conversion —
		// the capacity clamp must compare in uint64 (found by fuzzing).
		"overflow-count": {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
	}
}

// FuzzDecodeValue: decoding arbitrary bytes must never panic, and any
// successfully decoded value must re-encode to a stable canonical form.
func FuzzDecodeValue(f *testing.F) {
	for _, s := range valueSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decode returned more bytes than it was given")
		}
		enc := AppendValue(nil, v)
		v2, tail, err := DecodeValue(enc)
		if err != nil || len(tail) != 0 {
			t.Fatalf("re-decode of re-encoded value: err=%v trailing=%d", err, len(tail))
		}
		if v2.Kind() != v.Kind() || !v2.Equal(v) {
			t.Fatalf("re-decode changed the value: %v (%v) != %v (%v)", v2, v2.Kind(), v, v.Kind())
		}
		if enc2 := AppendValue(nil, v2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixpoint: %x != %x", enc2, enc)
		}
	})
}

// FuzzDecodeTuple: same contract at the tuple level.
func FuzzDecodeTuple(f *testing.F) {
	for _, s := range tupleSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, rest, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decode returned more bytes than it was given")
		}
		enc := AppendTuple(nil, tup)
		tup2, tail, err := DecodeTuple(enc)
		if err != nil || len(tail) != 0 {
			t.Fatalf("re-decode of re-encoded tuple: err=%v trailing=%d", err, len(tail))
		}
		if !tup2.Equal(tup) {
			t.Fatalf("re-decode changed the tuple: %v != %v", tup2, tup)
		}
		if enc2 := AppendTuple(nil, tup2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixpoint: %x != %x", enc2, enc)
		}
	})
}

// FuzzValueRoundTrip drives the codec with structured inputs: every
// constructed value must survive encode/decode exactly, bit-for-bit for
// floats (NaN payloads included).
func FuzzValueRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(0), 0.0, "", false)
	f.Add(uint8(1), int64(-1), 1.5, "x", true)
	f.Add(uint8(2), int64(1<<62), -0.0, "héllo\x00", false)
	f.Add(uint8(3), int64(7), 2.5, "quoted \"string\"", true)
	f.Add(uint8(4), int64(0), 3.25, "", true)
	f.Fuzz(func(t *testing.T, kind uint8, i int64, fl float64, s string, b bool) {
		var v Value
		switch kind % 5 {
		case 0:
			v = Null
		case 1:
			v = Int(i)
		case 2:
			v = Float(fl)
		case 3:
			v = String(s)
		case 4:
			v = Bool(b)
		}
		enc := AppendValue(nil, v)
		got, rest, err := DecodeValue(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("round-trip decode of %v: err=%v trailing=%d", v, err, len(rest))
		}
		if got.Kind() != v.Kind() || !got.Equal(v) {
			t.Fatalf("round-trip changed %v (%v) into %v (%v)", v, v.Kind(), got, got.Kind())
		}
	})
}

func TestRegenTupleFuzzCorpus(t *testing.T) {
	randtest.RegenCorpus(t, "FuzzDecodeValue", valueSeeds())
	randtest.RegenCorpus(t, "FuzzDecodeTuple", tupleSeeds())
}
