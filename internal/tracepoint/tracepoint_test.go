package tracepoint

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/tuple"
)

// recorder is test advice capturing invocations.
type recorder struct {
	mu    sync.Mutex
	calls []tuple.Tuple
}

func (r *recorder) Invoke(_ context.Context, vals tuple.Tuple) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, vals.Clone())
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.calls)
}

func TestDefineAndLookup(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("DataNodeMetrics.incrBytesRead", "delta")
	if reg.Lookup("DataNodeMetrics.incrBytesRead") != tp {
		t.Fatal("Lookup should return the defined tracepoint")
	}
	if reg.Lookup("missing") != nil {
		t.Fatal("Lookup of undefined tracepoint should be nil")
	}
	want := tuple.Schema{"host", "time", "procName", "procId", "tracepoint", "delta"}
	if !tp.Schema().Equal(want) {
		t.Fatalf("Schema = %v, want %v", tp.Schema(), want)
	}
}

func TestDefineIdempotentAndConflictPanics(t *testing.T) {
	reg := NewRegistry()
	a := reg.Define("tp", "x")
	if b := reg.Define("tp", "x"); b != a {
		t.Fatal("re-define with same exports should return existing")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-define should panic")
		}
	}()
	reg.Define("tp", "y")
}

func TestHereIsNoOpWithoutAdvice(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	tp.Here(context.Background(), 42)
	if tp.Invocations() != 0 {
		t.Fatal("disabled tracepoint should not count invocations")
	}
	if tp.Enabled() {
		t.Fatal("tracepoint with no advice should be disabled")
	}
}

func TestWeaveInvokeUnweave(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	rec := &recorder{}
	if err := reg.Weave("tp", rec); err != nil {
		t.Fatal(err)
	}
	if !tp.Enabled() {
		t.Fatal("woven tracepoint should be enabled")
	}
	tp.Here(context.Background(), 42)
	if rec.count() != 1 {
		t.Fatalf("advice invoked %d times, want 1", rec.count())
	}
	reg.Unweave("tp", rec)
	tp.Here(context.Background(), 43)
	if rec.count() != 1 {
		t.Fatal("unwoven advice still invoked")
	}
	if tp.Enabled() {
		t.Fatal("tracepoint should be disabled after unweave")
	}
}

func TestWeaveUndefinedErrors(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Weave("missing", &recorder{}); err == nil {
		t.Fatal("weaving into undefined tracepoint should error")
	}
}

func TestMultipleAdviceAllInvoked(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	r1, r2 := &recorder{}, &recorder{}
	reg.Weave("tp", r1)
	reg.Weave("tp", r2)
	tp.Here(context.Background(), 1)
	if r1.count() != 1 || r2.count() != 1 {
		t.Fatalf("advice counts = %d, %d; want 1, 1", r1.count(), r2.count())
	}
}

func TestExportedTupleContents(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("DN.DataTransferProtocol", "op", "size")
	rec := &recorder{}
	reg.Weave("DN.DataTransferProtocol", rec)

	ctx := WithProc(context.Background(), ProcInfo{
		Host: "host-a", ProcName: "DataNode", ProcID: 77,
	})
	ctx = WithClock(ctx, fixedClock(5*time.Second))
	tp.Here(ctx, "READ_BLOCK", 8192)

	got := rec.calls[0]
	if got[0].Str() != "host-a" {
		t.Errorf("host = %v", got[0])
	}
	if got[1].Int() != int64(5*time.Second) {
		t.Errorf("time = %v", got[1])
	}
	if got[2].Str() != "DataNode" || got[3].Int() != 77 {
		t.Errorf("proc = %v/%v", got[2], got[3])
	}
	if got[4].Str() != "DN.DataTransferProtocol" {
		t.Errorf("tracepoint = %v", got[4])
	}
	if got[5].Str() != "READ_BLOCK" || got[6].Int() != 8192 {
		t.Errorf("exports = %v, %v", got[5], got[6])
	}
}

func TestMissingTrailingExportsAreNull(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("tp", "a", "b")
	rec := &recorder{}
	reg.Weave("tp", rec)
	tp.Here(context.Background(), 1)
	got := rec.calls[0]
	if !got[6].IsNull() {
		t.Fatalf("missing export = %v, want null", got[6])
	}
}

func TestNamesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Define("zz")
	reg.Define("aa")
	names := reg.Names()
	if len(names) != 2 || names[0] != "aa" || names[1] != "zz" {
		t.Fatalf("Names = %v", names)
	}
}

func TestConcurrentWeaveAndInvoke(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tp.Here(context.Background(), 1)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		rec := &recorder{}
		reg.Weave("tp", rec)
		reg.Unweave("tp", rec)
	}
	close(stop)
	wg.Wait()
}

type fixedClock time.Duration

func (c fixedClock) Now() time.Duration { return time.Duration(c) }

func TestNowFallsBackToWallClock(t *testing.T) {
	before := time.Now().UnixNano()
	got := int64(Now(context.Background()))
	after := time.Now().UnixNano()
	if got < before || got > after {
		t.Fatalf("Now() = %d outside [%d, %d]", got, before, after)
	}
}

func TestProcFromContextZeroDefault(t *testing.T) {
	info := ProcFromContext(context.Background())
	if info.Host != "" || info.ProcName != "" || info.ProcID != 0 {
		t.Fatalf("zero ProcInfo expected, got %+v", info)
	}
}

func BenchmarkTracepointDisabled(b *testing.B) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Here(ctx, i)
	}
}

func BenchmarkTracepointWovenNoopAdvice(b *testing.B) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	reg.Weave("tp", noopAdvice{})
	ctx := WithProc(context.Background(), ProcInfo{Host: "h", ProcName: "p"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tp.Here(ctx, i)
	}
}

type noopAdvice struct{}

func (noopAdvice) Invoke(context.Context, tuple.Tuple) {}

// panicker is test advice that always panics; it optionally records the
// PanicSink callbacks the Here boundary delivers.
type panicker struct {
	mu       sync.Mutex
	sank     []any
	sankFrom []string
}

func (p *panicker) Invoke(context.Context, tuple.Tuple) { panic("advice bug") }

func (p *panicker) AdvicePanicked(tpName string, recovered any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sank = append(p.sank, recovered)
	p.sankFrom = append(p.sankFrom, tpName)
}

// A panicking advice must never unwind into the traced application: the
// Here boundary recovers, counts, and reports to the advice's PanicSink,
// and other advice at the same tracepoint still runs.
func TestAdvicePanicIsRecoveredAtHereBoundary(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("tp", "v")
	bad := &panicker{}
	good := &recorder{}
	if err := reg.Weave("tp", bad); err != nil {
		t.Fatal(err)
	}
	if err := reg.Weave("tp", good); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped the tracepoint boundary: %v", r)
		}
	}()
	tp.Here(context.Background(), 1)
	tp.Here(context.Background(), 2)
	if good.count() != 2 {
		t.Fatalf("well-behaved advice invoked %d times, want 2", good.count())
	}
	if tp.Panics() != 2 {
		t.Fatalf("Panics = %d, want 2", tp.Panics())
	}
	bad.mu.Lock()
	defer bad.mu.Unlock()
	if len(bad.sank) != 2 || bad.sank[0] != "advice bug" || bad.sankFrom[0] != "tp" {
		t.Fatalf("PanicSink got %v from %v", bad.sank, bad.sankFrom)
	}
}
