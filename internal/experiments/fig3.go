package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Fig3Result reproduces Figure 3: an execution triggering tracepoints A, B
// and C several times (with branching), and the tuples produced by the
// queries A, A->B, B->C, and (A->B)->C.
type Fig3Result struct {
	Results map[string][]tuple.Tuple
}

// fig3Queries are evaluated against the example execution.
var fig3Queries = []struct{ Name, Text string }{
	{"A", `From a In A Select a.a`},
	{"A->B", `From b In B Join a In A On a -> b Select a.a, b.b`},
	{"B->C", `From c In C Join b In B On b -> c Select b.b, c.c`},
	{"(A->B)->C", `From c In C Join ab In QAB On ab -> end Select ab.a, ab.b, c.c`},
}

// RunFig3 builds the execution of Figure 3 and evaluates the queries.
//
// The execution: the request forks at the start; one branch crosses
// b1 then c1; the other crosses a1, a2 then b2; the branches rejoin and
// cross c2; finally a3. This yields exactly the paper's result sets.
func RunFig3() (*Fig3Result, error) {
	reg := tracepoint.NewRegistry()
	tpA := reg.Define("A", "a")
	tpB := reg.Define("B", "b")
	tpC := reg.Define("C", "c")

	qab, err := query.Parse(`From b In B Join a In A On a -> b Select a.a, b.b`)
	if err != nil {
		return nil, err
	}
	qab.Name = "QAB"
	named := map[string]*query.Query{"QAB": qab}

	res := &Fig3Result{Results: make(map[string][]tuple.Tuple)}
	type installed struct {
		name string
		acc  *advice.Accumulator
	}
	var accs []installed
	for i, qdef := range fig3Queries {
		q, err := query.Parse(qdef.Text)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", qdef.Name, err)
		}
		q.Name = fmt.Sprintf("F3Q%d", i)
		p, err := plan.Compile(q, reg, named, plan.Optimized)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", qdef.Name, err)
		}
		acc := advice.NewAccumulator(p.Emit.Emit)
		em := accEmitter{acc}
		for _, prog := range p.Programs {
			if err := reg.Weave(prog.Tracepoint, &advice.Advice{Prog: prog, Emitter: em}); err != nil {
				return nil, err
			}
		}
		accs = append(accs, installed{name: qdef.Name, acc: acc})
	}

	// Drive the execution.
	ctx := tracepoint.WithProc(context.Background(), tracepoint.ProcInfo{Host: "h", ProcName: "p"})
	bag := baggage.New()
	left, right := bag.Split()

	lctx := baggage.NewContext(ctx, left)
	tpB.Here(lctx, "b1")
	tpC.Here(lctx, "c1")

	rctx := baggage.NewContext(ctx, right)
	tpA.Here(rctx, "a1")
	tpA.Here(rctx, "a2")
	tpB.Here(rctx, "b2")

	joined := baggage.Join(left, right)
	jctx := baggage.NewContext(ctx, joined)
	tpC.Here(jctx, "c2")
	tpA.Here(jctx, "a3")

	for _, in := range accs {
		res.Results[in.name] = in.acc.Rows()
	}
	return res, nil
}

type accEmitter struct{ acc *advice.Accumulator }

func (e accEmitter) EmitTuple(p *advice.Program, w tuple.Tuple) { e.acc.Add(w) }

// Render prints the query/result table of Figure 3.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Fig 3: happened-before join on a branching execution ===\n")
	b.WriteString("execution: fork { b1, c1 } || { a1, a2, b2 }; join; c2; a3\n\n")
	for _, q := range fig3Queries {
		fmt.Fprintf(&b, "  %-10s ", q.Name)
		var parts []string
		for _, row := range r.Results[q.Name] {
			parts = append(parts, row.String())
		}
		b.WriteString(strings.Join(parts, "  "))
		b.WriteByte('\n')
	}
	return b.String()
}
