// Package workload implements the paper's testbed and client applications:
// the eight-machine Hadoop stack deployment (§2, §6) and the closed-loop
// workloads FSread4m, FSread64m, Hget, Hscan, MRsort10g/100g, the §6.1
// StressTest clients, and the NNBench-derived Read8k/Open/Create/Rename
// stress operations of Table 5.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/hbase"
	"repro/internal/hdfs"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/yarn"
)

// TestbedConfig sizes a deployment.
type TestbedConfig struct {
	Hosts      int // worker hosts (default 8)
	Cluster    cluster.Config
	NameNode   hdfs.Config
	HDFSClient hdfs.ClientConfig
	HBase      bool
	MapReduce  bool
}

// DefaultTestbedConfig mirrors the paper's cluster: 8 worker machines with
// 1 Gbit NICs, plus a master host.
func DefaultTestbedConfig() TestbedConfig {
	return TestbedConfig{
		Hosts:     8,
		Cluster:   cluster.DefaultConfig(),
		NameNode:  hdfs.DefaultConfig(),
		HBase:     true,
		MapReduce: true,
	}
}

// Testbed is an assembled deployment.
type Testbed struct {
	C     *cluster.Cluster
	Cfg   TestbedConfig
	Hosts []string // worker host names, "host-A".."host-H"

	NN  *hdfs.NameNode
	DNs []*hdfs.DataNode
	HB  *hbase.HBase
	RSs []*hbase.RegionServer
	RM  *yarn.ResourceManager
	NMs []*yarn.NodeManager
	MR  *mapreduce.Framework

	adminProc *cluster.Process
	AdminFS   *hdfs.Client
}

// HostName returns the i-th worker host name ("host-A" for 0).
func HostName(i int) string { return fmt.Sprintf("host-%c", 'A'+i) }

// NewTestbed assembles the deployment on a fresh cluster.
func NewTestbed(env *simtime.Env, cfg TestbedConfig) *Testbed {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 8
	}
	c := cluster.New(env, cfg.Cluster)
	tb := &Testbed{C: c, Cfg: cfg}

	tb.NN = hdfs.NewNameNode(c, "master", cfg.NameNode)
	for i := 0; i < cfg.Hosts; i++ {
		host := HostName(i)
		tb.Hosts = append(tb.Hosts, host)
		tb.DNs = append(tb.DNs, hdfs.NewDataNode(c, host, tb.NN))
	}
	tb.adminProc = c.Start("master", "admin")
	tb.AdminFS = hdfs.NewClient(tb.adminProc, tb.NN, cfg.HDFSClient)

	if cfg.HBase {
		tb.HB = hbase.New(c, "master", hbase.Config{Regions: 4 * cfg.Hosts})
		for _, host := range tb.Hosts {
			tb.RSs = append(tb.RSs, tb.HB.AddRegionServer(c, host, tb.NN, cfg.HDFSClient))
		}
	}
	if cfg.MapReduce {
		tb.RM = yarn.NewResourceManager(c, "master")
		for _, host := range tb.Hosts {
			tb.NMs = append(tb.NMs, yarn.NewNodeManager(c, host, tb.RM, 0))
		}
		tb.MR = mapreduce.New(c, tb.RM, tb.NN, cfg.HDFSClient)
	}
	return tb
}

// InitHBaseStores registers the HBase region store files.
func (tb *Testbed) InitHBaseStores(storeSize float64) error {
	return tb.HB.InitStoreFiles(tb.adminProc.NewRequest(), tb.AdminFS, storeSize)
}

// Workload is one closed-loop client application.
type Workload struct {
	Name string
	Proc *cluster.Process
	Rec  *metrics.LatencyRecorder

	// Prepare, if set, runs on each fresh request context before the
	// operation — the Table 5 overhead experiment uses it to pre-pack
	// tuples into the request baggage.
	Prepare func(ctx context.Context)

	// Err records the error that terminated the closed loop, if any.
	Err error

	think time.Duration
	op    func(ctx context.Context, i int) error
}

// Start launches the closed loop: op, record latency, optional think
// time, repeat until the simulation ends. Errors terminate the loop.
func (w *Workload) Start() {
	env := w.Proc.C.Env
	env.Go(func() {
		for i := 0; !env.Done(); i++ {
			start := env.Now()
			ctx := w.Proc.NewRequest()
			if w.Prepare != nil {
				w.Prepare(ctx)
			}
			if err := w.op(ctx, i); err != nil {
				w.Err = err
				return
			}
			w.Rec.Record(env.Now(), env.Now()-start)
			if w.think > 0 {
				env.Sleep(w.think)
			}
		}
	})
}

// SetThink sets the closed-loop think time between operations.
func (w *Workload) SetThink(d time.Duration) { w.think = d }

// RunOnce executes a single operation synchronously (used by overhead
// benchmarks that measure per-op latency without a background loop).
func (w *Workload) RunOnce(i int) error {
	env := w.Proc.C.Env
	start := env.Now()
	ctx := w.Proc.NewRequest()
	if w.Prepare != nil {
		w.Prepare(ctx)
	}
	if err := w.op(ctx, i); err != nil {
		return err
	}
	w.Rec.Record(env.Now(), env.Now()-start)
	return nil
}

func (tb *Testbed) newWorkload(host, name string, think time.Duration, op func(ctx context.Context, i int) error) *Workload {
	return &Workload{
		Name:  name,
		Proc:  tb.C.Start(host, name),
		Rec:   metrics.NewLatencyRecorder(),
		think: think,
		op:    op,
	}
}

// NewFSRead builds the FSread4m / FSread64m workloads: closed-loop random
// reads of readSize from a private dataset of fileCount files.
func (tb *Testbed) NewFSRead(host, name string, readSize float64, fileCount int, seed int64) (*Workload, error) {
	w := tb.newWorkload(host, name, 0, nil)
	fs := hdfs.NewClient(w.Proc, tb.NN, tb.Cfg.HDFSClient)
	rng := rand.New(rand.NewSource(seed))
	files := make([]string, fileCount)
	ctx := w.Proc.NewRequest()
	for i := range files {
		files[i] = fmt.Sprintf("/data/%s/f%04d", name, i)
		if err := fs.CreateMetadataOnly(ctx, files[i], readSize); err != nil {
			return nil, err
		}
	}
	w.op = func(ctx context.Context, i int) error {
		return fs.Read(ctx, files[rng.Intn(len(files))], 0, readSize)
	}
	return w, nil
}

// NewHGet builds the Hget workload: closed-loop 10 kB row lookups.
func (tb *Testbed) NewHGet(host string, seed int64) *Workload {
	w := tb.newWorkload(host, "HGET", 0, nil)
	hc := hbase.NewClient(w.Proc, tb.HB)
	rng := rand.New(rand.NewSource(seed))
	w.op = func(ctx context.Context, i int) error {
		return hc.Get(ctx, fmt.Sprintf("row-%08d", rng.Intn(1<<20)), 10e3)
	}
	return w
}

// NewHScan builds the Hscan workload: closed-loop 4 MB table scans.
func (tb *Testbed) NewHScan(host string, seed int64) *Workload {
	w := tb.newWorkload(host, "HSCAN", 0, nil)
	hc := hbase.NewClient(w.Proc, tb.HB)
	rng := rand.New(rand.NewSource(seed))
	w.op = func(ctx context.Context, i int) error {
		return hc.Scan(ctx, fmt.Sprintf("row-%08d", rng.Intn(1<<20)), 4e6)
	}
	return w
}

// NewMRSort builds the MRsort workloads: repeatedly sort inputGB of data.
func (tb *Testbed) NewMRSort(host, name string, inputBytes float64) (*Workload, error) {
	w := tb.newWorkload(host, name, 0, nil)
	input := "/data/" + name + "/input"
	if err := tb.AdminFS.CreateMetadataOnly(tb.adminProc.NewRequest(), input, inputBytes); err != nil {
		return nil, err
	}
	w.op = func(ctx context.Context, i int) error {
		return tb.MR.Submit(ctx, w.Proc, mapreduce.JobConfig{Name: name, Input: input})
	}
	return w, nil
}

// StressDataset pre-creates the §6.1 shared dataset: fileCount files of
// fileSize bytes with the configured replication.
func (tb *Testbed) StressDataset(fileCount int, fileSize float64) ([]string, error) {
	files := make([]string, fileCount)
	ctx := tb.adminProc.NewRequest()
	for i := range files {
		files[i] = fmt.Sprintf("/stress/f%05d", i)
		if err := tb.AdminFS.CreateMetadataOnly(ctx, files[i], fileSize); err != nil {
			return nil, err
		}
	}
	return files, nil
}

// NewStressTest builds one §6.1 StressTest client on a host: closed-loop
// random 8 kB reads from the shared dataset, crossing the
// StressTest.DoNextOp tracepoint.
func (tb *Testbed) NewStressTest(host string, id int, files []string, think time.Duration, seed int64) *Workload {
	name := "StressTest"
	if id > 0 {
		name = fmt.Sprintf("StressTest-%d", id)
	}
	w := tb.newWorkload(host, name, think, nil)
	fs := hdfs.NewClient(w.Proc, tb.NN, tb.Cfg.HDFSClient)
	tpNext := w.Proc.Define("StressTest.DoNextOp", "op")
	rng := rand.New(rand.NewSource(seed))
	w.op = func(ctx context.Context, i int) error {
		tpNext.Here(ctx, "read8k")
		f := files[rng.Intn(len(files))]
		offset := float64(rng.Intn(int(hdfs.BlockSize - 8e3)))
		return fs.Read(ctx, f, offset, 8e3)
	}
	return w
}

// NNBench-derived operations for the Table 5 overhead stress test.
const (
	OpRead8k = "Read8k"
	OpOpen   = "Open"
	OpCreate = "Create"
	OpRename = "Rename"
)

// NewNNBench builds one Table 5 stress workload performing the named
// operation in a closed loop.
func (tb *Testbed) NewNNBench(host, op string, seed int64) (*Workload, error) {
	w := tb.newWorkload(host, fmt.Sprintf("NNBench-%s-%d", op, seed), 0, nil)
	fs := hdfs.NewClient(w.Proc, tb.NN, tb.Cfg.HDFSClient)
	// §6.3 derives these stress clients from NNBench; like the §6.1
	// stress test they cross DoNextOp, so the §6.1 queries observe them.
	tpNext := w.Proc.Define("StressTest.DoNextOp", "op")
	rng := rand.New(rand.NewSource(seed))
	base := fmt.Sprintf("/bench/%s/%s", host, op)
	ctx := w.Proc.NewRequest()
	// Seed files for read/open/rename.
	for i := 0; i < 16; i++ {
		if err := fs.CreateMetadataOnly(ctx, fmt.Sprintf("%s/f%02d", base, i), 8e3); err != nil {
			return nil, err
		}
	}
	switch op {
	case OpRead8k:
		w.op = func(ctx context.Context, i int) error {
			tpNext.Here(ctx, op)
			return fs.Read(ctx, fmt.Sprintf("%s/f%02d", base, rng.Intn(16)), 0, 8e3)
		}
	case OpOpen:
		w.op = func(ctx context.Context, i int) error {
			tpNext.Here(ctx, op)
			return fs.Open(ctx, fmt.Sprintf("%s/f%02d", base, rng.Intn(16)))
		}
	case OpCreate:
		w.op = func(ctx context.Context, i int) error {
			tpNext.Here(ctx, op)
			return fs.CreateMetadataOnly(ctx, fmt.Sprintf("%s/new-%09d", base, i), 8e3)
		}
	case OpRename:
		w.op = func(ctx context.Context, i int) error {
			tpNext.Here(ctx, op)
			src := fmt.Sprintf("%s/f%02d", base, i%16)
			dst := fmt.Sprintf("%s/r-%09d", base, i)
			if err := fs.Rename(ctx, src, dst); err != nil {
				return err
			}
			return fs.Rename(ctx, dst, src)
		}
	default:
		return nil, fmt.Errorf("workload: unknown NNBench op %q", op)
	}
	return w, nil
}
