package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Report is the top-level ptbench output: one run of a scenario set.
// Everything serialized here is deterministic — two runs with the same
// seed, host count, and scenario list must produce byte-identical JSON
// (the harness's acceptance criterion); wall-clock timings are printed
// to the console only.
type Report struct {
	Seed      int64     `json:"seed"`
	Short     bool      `json:"short,omitempty"`
	Scenarios []*Result `json:"scenarios"`
	Passed    bool      `json:"passed"`
}

// NewReport assembles results into a report.
func NewReport(seed int64, short bool, results []*Result) *Report {
	rep := &Report{Seed: seed, Short: short, Scenarios: results, Passed: true}
	for _, res := range results {
		if !res.Passed {
			rep.Passed = false
		}
	}
	return rep
}

// JSON renders the deterministic report.
func (rep *Report) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Console writes the human summary table, including the
// non-deterministic wall-clock columns.
func (rep *Report) Console(w io.Writer) {
	fmt.Fprintf(w, "\n%-12s %-7s %6s %9s %9s %10s %8s %6s  %s\n",
		"scenario", "verdict", "hosts", "virtual", "wall", "requests", "tuples", "procs", "checkpoints")
	var wall, reqs, tuples int64
	for _, res := range rep.Scenarios {
		verdict := "pass"
		if !res.Passed {
			verdict = "FAIL"
		}
		passedCPs := 0
		for _, cp := range res.Checkpoints {
			if cp.Passed {
				passedCPs++
			}
		}
		fmt.Fprintf(w, "%-12s %-7s %6d %9s %9s %10d %8d %6d  %d/%d\n",
			res.ID, verdict, res.Hosts,
			time.Duration(res.VirtualMS)*time.Millisecond,
			time.Duration(res.WallMS)*time.Millisecond,
			res.Requests, res.Tuples, res.Procs,
			passedCPs, len(res.Checkpoints))
		wall += res.WallMS
		reqs += res.Requests
		tuples += res.Tuples
		if res.Err != "" {
			fmt.Fprintf(w, "%12s   error: %s\n", "", res.Err)
		}
		for _, cp := range res.Checkpoints {
			if !cp.Passed {
				fmt.Fprintf(w, "%12s   FAIL %s: %s\n", "", cp.Name, cp.Detail)
			}
		}
	}
	verdict := "PASS"
	if !rep.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "\n%s: %d scenarios, %d requests, %d tuples, %s wall\n",
		verdict, len(rep.Scenarios), reqs, tuples, time.Duration(wall)*time.Millisecond)
	fmt.Fprintf(w, "replay: go run ./cmd/ptbench -seed %d\n", rep.Seed)
}
