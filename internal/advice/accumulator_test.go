package advice

import (
	"context"
	"strings"
	"testing"

	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/tuple"
)

func groupedOp() *EmitOp {
	return &EmitOp{
		Cols: []EmitCol{
			{Pos: 0},
			{IsAgg: true, Pos: 1, Fn: agg.Sum},
			{IsAgg: true, Pos: -1, Fn: agg.Count},
		},
		GroupBy: []int{0},
		Schema:  tuple.Schema{"k", "SUM(v)", "COUNT"},
	}
}

func TestAccumulatorGroupsAndRows(t *testing.T) {
	acc := NewAccumulator(groupedOp())
	if !acc.Empty() {
		t.Fatal("new accumulator should be empty")
	}
	acc.Add(tuple.Tuple{tuple.String("a"), tuple.Int(5)})
	acc.Add(tuple.Tuple{tuple.String("a"), tuple.Int(7)})
	acc.Add(tuple.Tuple{tuple.String("b"), tuple.Int(1)})
	rows := acc.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "a" || rows[0][1].Int() != 12 || rows[0][2].Int() != 2 {
		t.Errorf("row a = %v", rows[0])
	}
	if rows[1][0].Str() != "b" || rows[1][1].Int() != 1 || rows[1][2].Int() != 1 {
		t.Errorf("row b = %v", rows[1])
	}
}

func TestAccumulatorMergeGroupAcrossProcesses(t *testing.T) {
	// Two process-local accumulators merge into a global one with correct
	// combined aggregates.
	a1 := NewAccumulator(groupedOp())
	a1.Add(tuple.Tuple{tuple.String("k"), tuple.Int(10)})
	a2 := NewAccumulator(groupedOp())
	a2.Add(tuple.Tuple{tuple.String("k"), tuple.Int(20)})
	a2.Add(tuple.Tuple{tuple.String("other"), tuple.Int(1)})

	global := NewAccumulator(groupedOp())
	for _, g := range a1.Groups() {
		global.MergeGroup(g)
	}
	for _, g := range a2.Groups() {
		global.MergeGroup(g)
	}
	rows := global.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1].Int() != 30 || rows[0][2].Int() != 2 {
		t.Errorf("merged row = %v", rows[0])
	}
}

func TestAccumulatorRawMode(t *testing.T) {
	op := &EmitOp{
		Cols:   []EmitCol{{Pos: 1}, {Pos: 0}},
		Raw:    true,
		Schema: tuple.Schema{"b", "a"},
	}
	acc := NewAccumulator(op)
	acc.Add(tuple.Tuple{tuple.Int(1), tuple.Int(2)})
	acc.MergeRaw(tuple.Tuple{tuple.Int(9), tuple.Int(8)})
	rows := acc.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int() != 2 || rows[0][1].Int() != 1 {
		t.Errorf("raw projection = %v", rows[0])
	}
	if len(acc.Raws()) != 2 {
		t.Errorf("raws = %v", acc.Raws())
	}
	acc.Reset()
	if !acc.Empty() {
		t.Error("reset should empty the accumulator")
	}
}

func TestGroupClone(t *testing.T) {
	acc := NewAccumulator(groupedOp())
	acc.Add(tuple.Tuple{tuple.String("k"), tuple.Int(3)})
	g := acc.Groups()[0]
	c := g.Clone()
	c.States[0].Add(tuple.Int(100))
	if g.States[0].Result().Int() != 3 {
		t.Error("Clone aliases aggregate state")
	}
	c.Rep[0] = tuple.String("mutated")
	if g.Rep[0].Str() != "k" {
		t.Error("Clone aliases rep tuple")
	}
}

func TestFilterEvalMissingBinding(t *testing.T) {
	// A filter referencing an unbound field evaluates it as null; the
	// predicate "x.y = 1" is then false rather than panicking.
	q, err := query.Parse(`From e In Tp Where x.y = 1 Select COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	f := &FilterOp{Expr: q.Where[0], Bindings: nil}
	if f.Eval(tuple.Tuple{}) {
		t.Error("unbound comparison should be false")
	}
	q2, _ := query.Parse(`From e In Tp Where true Select COUNT`)
	f2 := &FilterOp{Expr: q2.Where[0], Bindings: nil}
	if !f2.Eval(tuple.Tuple{}) {
		t.Error("constant-true filter failed")
	}
}

func TestProgramStringAllOps(t *testing.T) {
	p := &Program{
		Observe:       []int{0},
		ObserveFields: tuple.Schema{"x"},
		Unpacks:       []UnpackOp{{Slot: "s", Fields: tuple.Schema{"y"}}},
		Pack: &PackOp{
			Slot: "out",
			Spec: baggage.SetSpec{
				Kind:    baggage.Agg,
				Fields:  tuple.Schema{"y", "sum"},
				GroupBy: []int{0},
				Aggs:    []baggage.AggField{{Pos: 1, Fn: agg.Sum}},
			},
		},
	}
	s := p.String()
	for _, want := range []string{"OBSERVE x", "UNPACK y", "PACK-AGG", "SUM(sum)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	// Kind variants.
	kinds := map[baggage.SetKind]string{
		baggage.FirstN:  "PACK-FIRST2",
		baggage.Recent:  "PACK-RECENT",
		baggage.RecentN: "PACK-RECENT2",
	}
	for k, want := range kinds {
		p.Pack.Spec = baggage.SetSpec{Kind: k, N: 2, Fields: tuple.Schema{"y"}}
		if s := p.String(); !strings.Contains(s, want) {
			t.Errorf("kind %v: String() = %q, missing %q", k, s, want)
		}
	}
	// Empty observe renders a placeholder.
	p2 := &Program{Emit: &EmitOp{Schema: tuple.Schema{"COUNT"}}}
	if s := p2.String(); !strings.Contains(s, "OBSERVE -") {
		t.Errorf("empty observe: %q", s)
	}
}

func TestSamplingCounters(t *testing.T) {
	emitted := 0
	a := &Advice{
		Prog: &Program{
			Observe:       []int{0},
			ObserveFields: tuple.Schema{"host"},
			Emit:          &EmitOp{Raw: true, Cols: []EmitCol{{Pos: 0}}, Schema: tuple.Schema{"host"}},
			SampleEvery:   4,
		},
		Emitter: emitFn(func(*Program, tuple.Tuple) { emitted++ }),
	}
	for i := 0; i < 16; i++ {
		a.Invoke(context.Background(), exported("h", 0, "p"))
	}
	if emitted != 4 {
		t.Errorf("emitted = %d with 1-in-4 sampling of 16, want 4", emitted)
	}
	if got := a.Prog.Cost.Sampled.Load(); got != 12 {
		t.Errorf("sampled = %d, want 12", got)
	}
	if got := a.Prog.Cost.TuplesEmitted.Load(); got != 4 {
		t.Errorf("emitted counter = %d, want 4", got)
	}
}

type emitFn func(*Program, tuple.Tuple)

func (f emitFn) EmitTuple(p *Program, w tuple.Tuple) { f(p, w) }
