//go:build !race

package baggage

// Allocation-regression tests. Excluded under -race: the race detector's
// instrumentation adds bookkeeping allocations that would fail these
// assertions for reasons unrelated to the code under test.

import (
	"testing"

	"repro/internal/tuple"
)

// aggSpec (GroupBy key, SUM) is shared with budget_test.go.

func TestAllocSteadyStatePackBudgetedIsAllocationFree(t *testing.T) {
	spec := aggSpec()
	bag := New()
	row := tuple.Tuple{tuple.String("host-1"), tuple.Int(1)}
	bag.PackBudgeted("q.a", spec, Budget{}, row) // create the group (cold)
	if n := testing.AllocsPerRun(1000, func() {
		bag.PackBudgeted("q.a", spec, Budget{}, row)
	}); n != 0 {
		t.Errorf("steady-state PackBudgeted into an existing AGG group allocates "+
			"%.1f objects/op, want 0 (regression in the pooled pack path)", n)
	}
}

func TestAllocSteadyStatePackIsAllocationFree(t *testing.T) {
	spec := aggSpec()
	bag := New()
	row := tuple.Tuple{tuple.String("host-1"), tuple.Int(1)}
	bag.Pack("q.a", spec, row) // create the group (cold)
	if n := testing.AllocsPerRun(1000, func() {
		bag.Pack("q.a", spec, row)
	}); n != 0 {
		t.Errorf("steady-state Pack into an existing AGG group allocates "+
			"%.1f objects/op, want 0 (regression in the pooled pack path)", n)
	}
}

func TestAllocByteSizeIsSingleBufferFree(t *testing.T) {
	bag := New()
	spec := aggSpec()
	for i := 0; i < 8; i++ {
		bag.Pack("q.a", spec, tuple.Tuple{tuple.String("h"), tuple.Int(int64(i))})
	}
	bag.ByteSize() // warm the scratch pool
	if n := testing.AllocsPerRun(200, func() {
		bag.ByteSize()
	}); n != 0 {
		t.Errorf("ByteSize on decoded baggage allocates %.1f objects/op, want 0 "+
			"(regression in the pooled sizing path)", n)
	}
}
