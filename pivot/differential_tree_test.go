package pivot

// Tree-topology differential mode: every generated case from the flat
// sweep also runs through a 2-tier combiner tree (agents → partitioned mid
// combiners → root → frontend), and the result set must be byte-identical
// to both the flat pipeline and the oracle. This is the load-bearing proof
// that reassociating the merge tree cannot corrupt aggregation: agg.State
// merging is associative and commutative, raw rows union, and drop
// tombstones stay exact through the extra union at each tier.
//
// Reproduce a failure with the seed printed in the failure message:
//
//	go test ./pivot -run TestDifferentialTreeMatchesFlat -seed=<N>

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/cluster"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/querygen"
	"repro/internal/randtest"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// diffCases resolves the per-sweep case count: PT_DIFF_CASES wins, then
// -short, then the full default.
func diffCases(t *testing.T, full, short int) int {
	if s := os.Getenv("PT_DIFF_CASES"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad PT_DIFF_CASES=%q", s)
		}
		return v
	}
	if testing.Short() {
		return short
	}
	return full
}

// treeCluster builds a differential-case cluster with a 2-tier combiner
// tree: 3 mid combiners over 12 partition topics (several per combiner, so
// rendezvous ownership is non-trivial even with few agents), flushing on
// the same 5ms cadence as the agents.
func treeCluster(env *simtime.Env, cfg cluster.Config) *cluster.Cluster {
	cl := cluster.New(env, cfg)
	cl.EnableCombinerTree(cluster.TreeSpec{MidCombiners: 3})
	return cl
}

// TestDifferentialTreeMatchesFlat runs the SAME seeded cases as
// TestDifferentialPipelineMatchesOracle through the combiner tree and
// demands byte-equality with both the flat pipeline and the oracle.
func TestDifferentialTreeMatchesFlat(t *testing.T) {
	n := diffCases(t, 500, 120)
	randtest.Check(t, n, diffBaseSeed, runTreeDifferentialCase)
}

func runTreeDifferentialCase(seed int64) error {
	c := querygen.Generate(seed)

	runCase := func(tree bool) ([]tuple.Tuple, error) {
		var got []tuple.Tuple
		var runErr error
		env := simtime.NewEnv()
		env.Run(func() {
			cfg := cluster.DefaultConfig()
			cfg.ReportInterval = 5 * time.Millisecond
			var cl *cluster.Cluster
			if tree {
				cl = treeCluster(env, cfg)
			} else {
				cl = cluster.New(env, cfg)
			}
			x := cluster.NewScriptExec(cl, c)
			h, err := cl.PT.Install(c.QueryText)
			if err != nil {
				runErr = fmt.Errorf("install: %w", err)
				return
			}
			if err := x.Run(); err != nil {
				runErr = err
				return
			}
			env.Sleep(3 * cfg.ReportInterval)
			cl.FlushAgents()
			got = h.Rows()
		})
		return got, runErr
	}

	gotFlat, err := runCase(false)
	if err != nil {
		return fmt.Errorf("flat: query %q: %w", c.QueryText, err)
	}
	gotTree, err := runCase(true)
	if err != nil {
		return fmt.Errorf("tree: query %q: %w", c.QueryText, err)
	}

	want, err := oracleRows(c)
	if err != nil {
		return err
	}
	wantC := oracle.Canonical(want)
	if !bytes.Equal(wantC, oracle.Canonical(gotTree)) {
		return diffError(c, "combiner tree", want, gotTree)
	}
	if !bytes.Equal(oracle.Canonical(gotFlat), oracle.Canonical(gotTree)) {
		return fmt.Errorf("flat and tree topologies diverge\nquery: %s\nflat:\n%s\ntree:\n%s",
			c.QueryText, oracle.Format(gotFlat), oracle.Format(gotTree))
	}
	return nil
}

// TestBudgetedDifferentialTreeTruncationAccounted runs the budgeted sweep
// through the tree: reported groups stay byte-exact against the oracle and
// reported + dropped reconciles exactly, i.e. the tiers' extra tombstone
// unions neither lose nor double-count an eviction.
func TestBudgetedDifferentialTreeTruncationAccounted(t *testing.T) {
	n := diffCases(t, 150, 50)
	randtest.Check(t, n, diffBudgetSeed, runBudgetedTreeDifferentialCase)
}

func runBudgetedTreeDifferentialCase(seed int64) error {
	c := querygen.GenerateBudgeted(seed)
	budget := 2 + int(seed%5) // same budgets as the flat budgeted sweep

	var got []tuple.Tuple
	var dropped int
	var partial bool
	var runErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := treeCluster(env, cfg)
		x := cluster.NewScriptExec(cl, c)
		h, err := cl.PT.InstallNamed("QB", c.QueryText, plan.Options{
			Optimize: true,
			Safety:   advice.Safety{Budget: baggage.Budget{MaxTuples: budget}},
		})
		if err != nil {
			runErr = fmt.Errorf("install budgeted: %w", err)
			return
		}
		if err := x.Run(); err != nil {
			runErr = err
			return
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		got, dropped, partial = h.Rows(), h.DroppedGroups(), h.Partial()
	})
	if runErr != nil {
		return fmt.Errorf("tree budget %d, query %q: %w", budget, c.QueryText, runErr)
	}

	want, err := oracleRows(c)
	if err != nil {
		return err
	}
	wantRow := map[string]bool{}
	for _, r := range want {
		wantRow[string(oracle.Canonical([]tuple.Tuple{r}))] = true
	}
	for _, r := range got {
		if !wantRow[string(oracle.Canonical([]tuple.Tuple{r}))] {
			return fmt.Errorf("tree budget %d: reported row %v is not an oracle row\nquery: %s\noracle:\n%s\npipeline:\n%s",
				budget, r, c.QueryText, oracle.Format(want), oracle.Format(got))
		}
	}
	if len(got)+dropped != len(want) {
		return fmt.Errorf("tree budget %d: reported %d + dropped %d != oracle %d groups\nquery: %s\noracle:\n%s\npipeline:\n%s",
			budget, len(got), dropped, len(want), c.QueryText, oracle.Format(want), oracle.Format(got))
	}
	if dropped > 0 && !partial {
		return fmt.Errorf("tree budget %d: %d groups dropped but the query is not flagged partial", budget, dropped)
	}
	if dropped == 0 && !bytes.Equal(oracle.Canonical(want), oracle.Canonical(got)) {
		return diffError(c, "tree budgeted (nothing dropped)", want, got)
	}
	return nil
}
