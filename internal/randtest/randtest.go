// Package randtest centralizes seed handling for the repo's randomized
// tests. Every randomized test derives its cases from explicit int64
// seeds so that a failure is always reproducible: the failing seed is
// printed with a ready-to-run replay command, and an explicit seed can be
// supplied with -seed (or the PT_SEED environment variable) to run just
// that one case deterministically.
package randtest

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

var seedFlag = flag.Int64("seed", 0, "replay a single randomized test case by seed (0 = run the full deterministic sweep); PT_SEED is equivalent")

// Explicit returns the explicitly requested seed, if one was given via
// -seed or PT_SEED. Seed 0 means "no explicit seed".
func Explicit() (int64, bool) {
	if *seedFlag != 0 {
		return *seedFlag, true
	}
	if env := os.Getenv("PT_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil && v != 0 {
			return v, true
		}
	}
	return 0, false
}

// Seeds returns the seeds a randomized test should iterate: the single
// explicit seed when one was given, or [base, base+n) for a full sweep.
// The sweep is deterministic — CI and local runs see the same cases.
func Seeds(n int, base int64) []int64 {
	if s, ok := Explicit(); ok {
		return []int64{s}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Check runs prop once per seed from Seeds(n, base). A returned error
// fails the test with the seed and a replay command; the sweep continues
// so one run reports every failing seed.
func Check(t *testing.T, n int, base int64, prop func(seed int64) error) {
	t.Helper()
	for _, seed := range Seeds(n, base) {
		if err := prop(seed); err != nil {
			t.Errorf("seed %d: %v\n%s", seed, err, Replay(t, seed))
		}
	}
}

// Replay formats the one-command reproduction line for a failing seed.
func Replay(t testing.TB, seed int64) string {
	return fmt.Sprintf("replay: go test ./... -run '^%s$' -seed=%d", t.Name(), seed)
}

// RegenCorpus rewrites the checked-in seed corpus for a fuzz target in
// the native "go test fuzz v1" format, under testdata/fuzz/<target>/ in
// the calling package's directory. It is a no-op unless PT_REGEN_CORPUS
// is set, so the corpus stays stable in normal runs and can be rebuilt
// with:
//
//	PT_REGEN_CORPUS=1 go test <pkg> -run TestRegen
func RegenCorpus(t *testing.T, target string, entries map[string][]byte) {
	t.Helper()
	if os.Getenv("PT_REGEN_CORPUS") == "" {
		t.Skip("set PT_REGEN_CORPUS=1 to rewrite the checked-in fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range entries {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
