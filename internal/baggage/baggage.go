package baggage

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/itc"
	"repro/internal/telemetry"
	"repro/internal/tuple"
)

// Meters are the package's self-telemetry instruments, attached with
// SetTelemetry. Baggage values are context-scoped and have no registry of
// their own, so the meters are process-global and gated behind one atomic
// pointer load; while unattached (the default) every hook is a single
// predictable branch.
type Meters struct {
	Serializations  *telemetry.Counter   // Serialize calls
	SerializedBytes *telemetry.Counter   // total bytes produced by Serialize
	TuplesPacked    *telemetry.Counter   // tuples stored via Pack
	TuplesUnpacked  *telemetry.Counter   // tuples returned by Unpack
	Splits          *telemetry.Counter   // Split calls
	Joins           *telemetry.Counter   // Joins that actually merged two sides
	Bytes           *telemetry.Histogram // per-Serialize size distribution
	PackRefused     *telemetry.Counter   // tuples refused by tombstones (PackBudgeted)
	EvictedGroups   *telemetry.Counter   // budget evictions (tombstones written)
	EvictedTuples   *telemetry.Counter   // stored tuples removed by budget evictions
	EvictedBytes    *telemetry.Counter   // content bytes removed by budget evictions
	MergeConflicts  *telemetry.Counter   // same-slot merges dropped for mismatched specs
	PoolReuses      *telemetry.Counter   // pack/serialize scratch buffers served from the pool
}

var meters atomic.Pointer[Meters]

// SetTelemetry attaches process-wide baggage telemetry under "baggage.*"
// names. Pass nil to detach.
func SetTelemetry(t *telemetry.Registry) {
	if t == nil {
		meters.Store(nil)
		return
	}
	meters.Store(&Meters{
		Serializations:  t.Counter("baggage.serializations"),
		SerializedBytes: t.Counter("baggage.serialized.bytes"),
		TuplesPacked:    t.Counter("baggage.tuples.packed"),
		TuplesUnpacked:  t.Counter("baggage.tuples.unpacked"),
		Splits:          t.Counter("baggage.splits"),
		Joins:           t.Counter("baggage.joins"),
		Bytes:           t.Histogram("baggage.bytes"),
		PackRefused:     t.Counter("baggage.budget.refused"),
		EvictedGroups:   t.Counter("baggage.budget.evicted.groups"),
		EvictedTuples:   t.Counter("baggage.budget.evicted.tuples"),
		EvictedBytes:    t.Counter("baggage.budget.evicted.bytes"),
		MergeConflicts:  t.Counter("baggage.merge.conflicts"),
		PoolReuses:      t.Counter("baggage.pool.reuses"),
	})
}

// nonceBase randomizes instance nonces per process so that instances
// created in different processes never collide; the counter makes them
// unique within a process.
var (
	nonceBase    = func() uint64 { return uint64(time.Now().UnixNano()) * 0x9E3779B97F4A7C15 }()
	nonceCounter atomic.Uint64
)

func newNonce() uint64 { return nonceBase ^ nonceCounter.Add(1) }

// instance is one versioned baggage instance (§5). The first instance of a
// Baggage is the active one for the current branch; the rest are frozen
// read-only copies inherited from before branch points. The nonce is the
// instance's globally unique identity: frozen copies propagated down both
// sides of a branch share it (so they deduplicate at the rejoin), while
// distinct instances — even ones that coincidentally share an interval
// tree ID and contents — never do.
type instance struct {
	stamp *itc.Stamp
	nonce uint64
	slots map[string]*Set
	order []string // deterministic slot iteration
}

func newInstance(stamp *itc.Stamp) *instance {
	return &instance{stamp: stamp, nonce: newNonce(), slots: make(map[string]*Set)}
}

func (in *instance) set(slot string, spec SetSpec) *Set {
	s, ok := in.slots[slot]
	if !ok {
		s = NewSet(spec)
		in.slots[slot] = s
		in.order = append(in.order, slot)
	} else if !s.Spec.Equal(spec) {
		panic("baggage: conflicting specs for slot " + slot)
	}
	return s
}

func (in *instance) clone() *instance {
	c := &instance{
		stamp: in.stamp.Clone(),
		nonce: in.nonce,
		slots: make(map[string]*Set),
	}
	for _, slot := range in.order {
		c.slots[slot] = in.slots[slot].Clone()
		c.order = append(c.order, slot)
	}
	return c
}

// Baggage is the per-request tuple container. The zero value (or New()) is
// empty baggage that serializes to zero bytes. Baggage is lazily
// deserialized: a Baggage constructed by Deserialize keeps the raw bytes
// and only decodes them when a Pack/Unpack/Split/Join touches the contents,
// so processes that merely forward baggage pay no decode cost.
//
// Baggage is not safe for concurrent use; an execution branching into
// parallel work must call Split and give each branch its own Baggage.
type Baggage struct {
	raw     []byte // lazily-decoded serialized form (nil once decoded)
	insts   []*instance
	decoded bool
}

// New returns empty baggage.
func New() *Baggage {
	return &Baggage{decoded: true}
}

func (b *Baggage) ensureDecoded() {
	if b.decoded {
		return
	}
	insts, err := decodeInstances(b.raw)
	if err != nil {
		// Corrupt baggage is dropped rather than poisoning the request;
		// monitoring must never break the application.
		insts = nil
	}
	b.insts = insts
	b.raw = nil
	b.decoded = true
}

// active returns the active instance, creating it (with a fresh seed stamp)
// if the baggage is empty.
func (b *Baggage) active() *instance {
	b.ensureDecoded()
	if len(b.insts) == 0 {
		b.insts = append(b.insts, newInstance(itc.Seed()))
	}
	return b.insts[0]
}

// Pack stores tuples into the active instance under the given slot,
// applying the spec's retention/aggregation semantics.
func (b *Baggage) Pack(slot string, spec SetSpec, tuples ...tuple.Tuple) {
	set := b.active().set(slot, spec)
	for _, t := range tuples {
		set.Pack(t)
	}
	b.raw = nil
	if m := meters.Load(); m != nil {
		m.TuplesPacked.Add(int64(len(tuples)))
	}
}

// Unpack retrieves the tuples packed under slot, merging contributions from
// every instance (active and frozen) according to the slot's semantics.
// Instances are ordered newest (active) to oldest (earliest frozen), so
// RECENT kinds merge in that order while FIRST kinds merge oldest-first:
// a FIRST tuple packed before a branch point wins over one packed inside a
// branch, preserving the paper's "first event of the execution" semantics.
func (b *Baggage) Unpack(slot string) []tuple.Tuple {
	b.ensureDecoded()
	sets := make([]*Set, 0, len(b.insts))
	for _, in := range b.insts {
		if s, ok := in.slots[slot]; ok {
			sets = append(sets, s)
		}
	}
	if len(sets) == 0 {
		return nil
	}
	if k := sets[0].Spec.Kind; k == First || k == FirstN {
		for i, j := 0, len(sets)-1; i < j; i, j = i+1, j-1 {
			sets[i], sets[j] = sets[j], sets[i]
		}
	}
	acc := sets[0].Clone()
	for _, s := range sets[1:] {
		acc.Merge(s)
	}
	// Budget tombstones suppress evicted content from the merged view:
	// without this, a group evicted on one branch would resurface from a
	// pre-split frozen copy and be double-counted against its tombstone.
	if slot != DropSlot {
		whole, keys := b.evictions(slot)
		if whole {
			return nil
		}
		if len(keys) > 0 && acc.Spec.Kind == Agg {
			for key := range keys {
				acc.removeGroup(key)
			}
		}
	}
	out := acc.Unpack()
	if m := meters.Load(); m != nil {
		m.TuplesUnpacked.Add(int64(len(out)))
	}
	return out
}

// Slots returns the slot names present in any instance, sorted.
func (b *Baggage) Slots() []string {
	b.ensureDecoded()
	seen := map[string]bool{}
	var out []string
	for _, in := range b.insts {
		for _, slot := range in.order {
			if !seen[slot] {
				seen[slot] = true
				out = append(out, slot)
			}
		}
	}
	sort.Strings(out)
	return out
}

// TupleCount returns the total number of stored tuples (groups for AGG
// sets) across all instances — the paper's cost metric for propagation.
func (b *Baggage) TupleCount() int {
	b.ensureDecoded()
	n := 0
	for _, in := range b.insts {
		for _, s := range in.slots {
			n += s.Len()
		}
	}
	return n
}

// Split divides the baggage for a branching execution. The receiver's
// active instance is frozen and copied to both sides; each side gets a new
// empty active instance tagged with half of the divided interval tree ID,
// so tuples packed by one branch are invisible to the other until Join.
// The receiver must not be used after Split.
func (b *Baggage) Split() (*Baggage, *Baggage) {
	if m := meters.Load(); m != nil {
		m.Splits.Inc()
	}
	b.ensureDecoded()
	act := b.active()
	s1, s2 := act.stamp.Fork()

	frozen := make([]*instance, 0, len(b.insts))
	for _, in := range b.insts {
		frozen = append(frozen, in)
	}

	mk := func(stamp *itc.Stamp) *Baggage {
		nb := New()
		nb.insts = append(nb.insts, newInstance(stamp))
		for _, in := range frozen {
			nb.insts = append(nb.insts, in.clone())
		}
		return nb
	}
	return mk(s1), mk(s2)
}

// Join merges the baggage of two rejoining branches: the active instances'
// contents merge into a new active instance whose ID joins the two halves,
// and frozen instances from both sides are kept with duplicates discarded.
// The arguments must not be used after Join. Join(nil, b) == b.
func Join(a, b *Baggage) *Baggage {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	a.ensureDecoded()
	b.ensureDecoded()
	if len(a.insts) == 0 {
		return b
	}
	if len(b.insts) == 0 {
		return a
	}
	if m := meters.Load(); m != nil {
		m.Joins.Inc()
	}
	actA, actB := a.insts[0], b.insts[0]
	merged := newInstance(itc.Join(actA.stamp, actB.stamp))
	for _, src := range []*instance{actA, actB} {
		for _, slot := range src.order {
			set := src.slots[slot]
			dst, ok := merged.slots[slot]
			if !ok {
				merged.slots[slot] = set.Clone()
				merged.order = append(merged.order, slot)
				continue
			}
			dst.Merge(set)
		}
	}
	out := New()
	out.insts = append(out.insts, merged)
	seen := map[uint64]bool{}
	for _, in := range append(a.insts[1:], b.insts[1:]...) {
		if seen[in.nonce] {
			continue
		}
		seen[in.nonce] = true
		out.insts = append(out.insts, in)
	}
	return out
}

// Adopt replaces b's contents with o's. RPC layers use it to propagate
// baggage back along a synchronous call: the response baggage (which
// causally extends the request baggage) overwrites the caller's copy while
// existing context references to b stay valid.
func (b *Baggage) Adopt(o *Baggage) {
	if o == nil {
		return
	}
	b.raw = o.raw
	b.insts = o.insts
	b.decoded = o.decoded
}

// Clone deep-copies the baggage (undecoded baggage stays lazy).
func (b *Baggage) Clone() *Baggage {
	if b == nil {
		return nil
	}
	if !b.decoded {
		raw := make([]byte, len(b.raw))
		copy(raw, b.raw)
		return &Baggage{raw: raw}
	}
	c := New()
	for _, in := range b.insts {
		c.insts = append(c.insts, in.clone())
	}
	return c
}

// ctxKey is the context key type for baggage propagation.
type ctxKey struct{}

// NewContext returns a context carrying b. This is the Go analog of the
// paper's thread-local baggage storage.
func NewContext(ctx context.Context, b *Baggage) context.Context {
	return context.WithValue(ctx, ctxKey{}, b)
}

// FromContext extracts the baggage from ctx, or nil if none is attached.
func FromContext(ctx context.Context) *Baggage {
	b, _ := ctx.Value(ctxKey{}).(*Baggage)
	return b
}

// Ensure returns the context's baggage, attaching fresh empty baggage if
// the context has none, along with the possibly-updated context.
func Ensure(ctx context.Context) (context.Context, *Baggage) {
	if b := FromContext(ctx); b != nil {
		return ctx, b
	}
	b := New()
	return NewContext(ctx, b), b
}
