// Command benchgate runs the repo's key hot-path benchmarks and gates
// them against a committed baseline (BENCH_5.json, named for the paper's
// Table 5 overhead study).
//
// The gate runs each benchmark -count times at a pinned -cpu list and
// keeps the best (minimum) ns/op per benchmark — the least-noisy
// estimator of true cost on a shared machine. It then compares against
// the baseline: ns/op may regress by at most -tolerance percent, and
// allocs/op may not regress at all, because steady-state allocation
// counts are deterministic and every new one is a hot-path bug.
//
// Usage:
//
//	benchgate                     gate against BENCH_5.json (seeds it if absent)
//	benchgate -write              re-record the baseline after an intentional change
//	benchgate -tolerance 20       ns/op tolerance in percent
//	benchgate -parallel <regex>   RunParallel benchmarks, swept across -cpu
//	benchgate -serial <regex>     sequential benchmarks, pinned to -cpu 1
//	benchgate -cpu 1,4,8          GOMAXPROCS points for the scaling curve
//
// Baseline numbers are machine-dependent; re-seed with -write when moving
// the gate to new hardware. Keys (benchmark name plus -cpu suffix) are
// machine-independent, so allocs/op gating survives hardware moves even
// when timings must be re-recorded.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/benchgate"
)

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_5.json", "baseline file to gate against")
		write     = flag.Bool("write", false, "re-record the baseline instead of gating")
		tolerance = flag.Float64("tolerance", 20, "allowed ns/op regression in percent")
		parallel  = flag.String("parallel", "HereParallel",
			"RunParallel benchmarks, swept across the -cpu list for the scaling curve")
		serial = flag.String("serial", "ReportBatch|Tracepoint$|HereWithSpans|HereSampled|Fig10Pack|Fig10Serialize|PartialAggregation|NetsimEventQueue",
			"sequential benchmarks, run at -cpu 1 only (extra GOMAXPROCS adds scheduler noise, not information)")
		cpu       = flag.String("cpu", "1,4,8", "go test -cpu list for the -parallel set")
		count     = flag.Int("count", 4, "runs per benchmark; the gate keeps the best")
		benchtime = flag.String("benchtime", "0.5s", "go test -benchtime per run")
		pkg       = flag.String("pkg", ".", "package holding the benchmarks")
	)
	flag.Parse()

	current := benchgate.Baseline{}
	for _, set := range []struct{ bench, cpu string }{
		{*parallel, *cpu},
		{*serial, "1"},
	} {
		if set.bench == "" {
			continue
		}
		args := []string{"test", "-run", "^$", "-bench", set.bench, "-benchmem",
			"-cpu", set.cpu, "-count", fmt.Sprint(*count), "-benchtime", *benchtime, *pkg}
		fmt.Fprintf(os.Stderr, "benchgate: go %s\n", argsString(args))
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			os.Stdout.Write(out.Bytes())
			fatalf("benchmark run failed: %v", err)
		}
		parsed, err := benchgate.Parse(&out)
		if err != nil {
			fatalf("parse benchmark output: %v", err)
		}
		if len(parsed) == 0 {
			fatalf("no benchmark results matched -bench %q", set.bench)
		}
		for k, v := range parsed {
			current[k] = v
		}
	}

	base, err := benchgate.Load(*baseline)
	if err != nil {
		fatalf("%v", err)
	}
	if *write || base == nil {
		if err := benchgate.Write(*baseline, current); err != nil {
			fatalf("write baseline: %v", err)
		}
		verb := "re-recorded"
		if base == nil {
			verb = "seeded"
		}
		fmt.Printf("benchgate: %s %s with %d benchmarks (commit it to arm the gate)\n",
			verb, *baseline, len(current))
		return
	}

	regs, missing, extra := benchgate.Compare(base, current, *tolerance)
	for _, name := range extra {
		fmt.Printf("benchgate: note: %s not in baseline (run with -write to record it)\n", name)
	}
	failed := false
	for _, name := range missing {
		fmt.Printf("benchgate: FAIL %s: in baseline but produced no result (deleted or renamed?)\n", name)
		failed = true
	}
	for _, r := range regs {
		fmt.Printf("benchgate: FAIL %s\n", r)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — %d benchmarks within %.0f%% ns/op of %s, no allocs/op regressions\n",
		len(base), *tolerance, *baseline)
}

func argsString(args []string) string {
	var b bytes.Buffer
	for i, a := range args {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(a)
	}
	return b.String()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
