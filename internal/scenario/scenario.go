// Package scenario is the repo's failure-scenario harness: a library of
// pre-built production pathologies (limplock disks, hot HBase regions,
// straggler reducers, cascading failovers, ...) replayed on 1000+-host
// simulated topologies, where every checkpoint installs real Pivot
// Tracing queries through the cluster frontend and asserts on their
// reported rows — the paper's §6 evaluations turned into one reusable,
// checkpointed test subsystem.
//
// Determinism rules (see DESIGN.md "Scenario harness"):
//   - every random choice derives from the run seed (per-client rngs are
//     seeded from it; no wall-clock, no global rand);
//   - load is fixed-op-count, not duration-bounded, so totals are exact;
//   - runs settle to a fixed virtual horizon, so virtual durations are
//     constants of (scenario, seed, hosts);
//   - mid-run checkpoints use threshold assertions (robust to the ±1-op
//     scheduling jitter at interval boundaries); exact conservation
//     assertions run only after all load has joined and agents flushed.
package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// Scenario is one pre-built failure scenario.
type Scenario struct {
	// ID is the stable kebab-case identifier (ptbench -run takes it).
	ID string
	// Name is the human-readable display name.
	Name string
	// Description is a one-line summary of the pathology and assertion.
	Description string
	// DefaultHosts and ShortHosts size the topology for full (ptbench)
	// and reduced (-short / CI -race) runs.
	DefaultHosts int
	ShortHosts   int
	// Horizon is the fixed virtual end time of a full run; runs settle
	// to it so the virtual duration is deterministic. Halved (at least
	// 4s) for short runs.
	Horizon time.Duration
	// Run executes the scenario body inside a fresh simulation.
	Run func(r *Run) error
}

// CheckpointResult is one checkpoint verdict.
type CheckpointResult struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	// Intervals is how many reporting intervals the checkpoint waited
	// before its predicate held (0 = immediate assertion).
	Intervals int `json:"intervals"`
	// VirtualMS is when the verdict was reached (console only: its last
	// digits can carry scheduling jitter, so it stays out of the
	// byte-identical JSON report).
	VirtualMS int64  `json:"-"`
	Detail    string `json:"detail,omitempty"`
}

// Run is the per-execution context handed to a scenario body: the fresh
// simulation, the deployed cluster, seeded randomness, and the
// checkpoint recorder.
type Run struct {
	S     *Scenario
	Seed  int64
	Hosts int
	Short bool

	Env  *simtime.Env
	C    *cluster.Cluster
	Topo *netsim.Topology

	// Interval is the agent reporting interval checkpoints are clocked
	// against.
	Interval time.Duration

	logf func(format string, args ...any)

	mu          sync.Mutex
	checkpoints []CheckpointResult
	requests    int64
	clientErrs  int64
	firstErr    error
}

// Logf emits a progress line to the harness console (no-op when quiet).
func (r *Run) Logf(format string, args ...any) {
	if r.logf != nil {
		r.logf(format, args...)
	}
}

// Rand returns a new deterministic rng derived from the run seed and tag.
func (r *Run) Rand(tag int64) *rand.Rand {
	return rand.New(rand.NewSource(r.Seed*-0x61C8864680B583EB + tag))
}

// AddRequests counts completed simulated requests toward the run metrics.
func (r *Run) AddRequests(n int64) {
	r.mu.Lock()
	r.requests += n
	r.mu.Unlock()
}

// Requests returns the requests counted so far.
func (r *Run) Requests() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.requests
}

// ClientErrors returns the number of failed client operations so far.
func (r *Run) ClientErrors() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clientErrs
}

// Query installs a Pivot Tracing query through the deployment's frontend.
// Scenario queries are structural, so a parse/install error is a scenario
// bug and panics.
func (r *Run) Query(text string) *core.Installed {
	q, err := r.C.PT.Install(text)
	if err != nil {
		panic(fmt.Sprintf("scenario %s: bad query %q: %v", r.S.ID, text, err))
	}
	return q
}

// record appends a checkpoint verdict.
func (r *Run) record(cr CheckpointResult) {
	r.mu.Lock()
	r.checkpoints = append(r.checkpoints, cr)
	r.mu.Unlock()
	status := "pass"
	if !cr.Passed {
		status = "FAIL"
	}
	detail := ""
	if cr.Detail != "" {
		detail = ": " + cr.Detail
	}
	r.Logf("  checkpoint %-28s %s (interval %d, t=%s)%s",
		cr.Name, status, cr.Intervals, time.Duration(cr.VirtualMS)*time.Millisecond, detail)
}

// Expect records an immediate (non-query) checkpoint: err == nil passes.
func (r *Run) Expect(name string, err error) bool {
	cr := CheckpointResult{
		Name:      name,
		Passed:    err == nil,
		VirtualMS: int64(r.Env.Now() / time.Millisecond),
	}
	if err != nil {
		cr.Detail = err.Error()
	}
	r.record(cr)
	return cr.Passed
}

// Await evaluates check against the query's reported rows at successive
// reporting-interval boundaries, up to within intervals, and records the
// verdict: it passes as soon as check returns nil. Agents are flushed
// before each evaluation so the frontend sees the current interval. The
// boundaries are aligned to absolute multiples of the reporting interval,
// keeping checkpoint times deterministic.
func (r *Run) Await(name string, q *core.Installed, within int, check func(rows []tuple.Tuple) error) bool {
	if within < 1 {
		within = 1
	}
	var lastErr error
	for i := 1; i <= within; i++ {
		r.sleepToNextInterval()
		r.C.FlushAgents()
		lastErr = check(q.Rows())
		if lastErr == nil {
			r.record(CheckpointResult{
				Name: name, Passed: true, Intervals: i,
				VirtualMS: int64(r.Env.Now() / time.Millisecond),
			})
			return true
		}
	}
	r.record(CheckpointResult{
		Name: name, Passed: false, Intervals: within,
		VirtualMS: int64(r.Env.Now() / time.Millisecond),
		Detail:    lastErr.Error(),
	})
	return false
}

// sleepToNextInterval sleeps to the next absolute multiple of the
// reporting interval (strictly in the future).
func (r *Run) sleepToNextInterval() {
	now := r.Env.Now()
	next := (now/r.Interval + 1) * r.Interval
	r.Env.Sleep(next - now)
}

// SettleTo sleeps until the fixed virtual time t, making run durations
// deterministic. A no-op if t has already passed.
func (r *Run) SettleTo(t time.Duration) {
	if now := r.Env.Now(); now < t {
		r.Env.Sleep(t - now)
	}
}

// Drive runs a fixed-op-count closed loop over the given client
// processes and blocks until every client finishes: each client performs
// opsEach operations of op(client index, op index, request context, rng).
// Clients are staggered by a few microseconds to break virtual-time
// ties, and each gets its own seeded rng. Operation errors are counted
// (and the first kept); they do not stop the remaining operations.
func (r *Run) Drive(procs []*cluster.Process, opsEach int, op func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error) {
	r.DriveAsync(procs, opsEach, op)()
}

// DriveAsync starts Drive's clients and returns a join function that
// blocks until all of them finish.
func (r *Run) DriveAsync(procs []*cluster.Process, opsEach int, op func(i, k int, ctx context.Context, p *cluster.Process, rng *rand.Rand) error) (join func()) {
	wg := r.Env.NewWaitGroup()
	wg.Add(len(procs))
	for i, p := range procs {
		i, p := i, p
		r.Env.Go(func() {
			defer wg.Done()
			rng := r.Rand(int64(i) + 1)
			r.Env.Sleep(time.Duration(i+1) * 3 * time.Microsecond)
			for k := 0; k < opsEach; k++ {
				ctx := p.NewRequest()
				err := op(i, k, ctx, p, rng)
				r.mu.Lock()
				r.requests++
				if err != nil {
					r.clientErrs++
					if r.firstErr == nil {
						r.firstErr = fmt.Errorf("client %d op %d: %w", i, k, err)
					}
				}
				r.mu.Unlock()
			}
		})
	}
	return wg.Wait
}
