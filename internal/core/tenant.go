package core

import (
	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/tracepoint"
)

// Multi-tenant control plane: many concurrent frontends share one bus and
// one agent fleet, each owning a disjoint query set. A tenant frontend
// prefixes its query names with its tenant ID (so namespaces can never
// collide), stamps its installs with the tenant and the fleet-wide share
// divisor (so agents and combiners can attribute and route), and
// subscribes only to its own results topic plus the shared fallback — not
// to fleet health or status traffic — so its inbound frame rate tracks its
// own query activity, not cluster size. Budgets are fair-share split: with
// N tenants declared, each install's accumulator limits and baggage budget
// are the resolved single-tenant defaults divided by N, so no tenant can
// starve the fleet past its slice.

// Options configures a frontend's tenancy.
type Options struct {
	// Tenant names this frontend's tenant; "" is the primary (fleet
	// operator) frontend with the classic single-frontend behavior.
	Tenant string
	// Share is the fair-share divisor applied to every install's
	// accumulator limits and baggage budget — normally the number of
	// tenant frontends sharing the agent fleet. 0 or 1 leaves budgets
	// whole.
	Share int
}

// NewWithOptions creates a frontend with explicit tenancy options.
// NewWithOptions(b, reg, Options{}) is New(b, reg).
func NewWithOptions(b *bus.Bus, reg *tracepoint.Registry, o Options) *PivotTracing {
	pt := newFrontend(b, reg)
	pt.tenant = o.Tenant
	pt.share = o.Share
	if o.Tenant == "" {
		// Primary frontend: full fleet surface.
		pt.resultsSub = b.Subscribe(agent.ResultsTopic, pt.onReport)
		pt.healthSub = b.Subscribe(agent.HealthTopic, pt.onHeartbeat)
		pt.statusSub = b.Subscribe(agent.StatusRequestTopic, pt.onStatusRequest)
		pt.quarantineSub = b.Subscribe(agent.QuarantineTopic, pt.onQuarantine)
		pt.traceSub = b.Subscribe(agent.TraceTopic, pt.onTrace)
		return pt
	}
	// Tenant frontend: its own results topic (where a tenant-routing
	// combiner tier delivers its queries' frames), the shared results
	// topic (flat deployments with no tree publish everything there), and
	// quarantine notices. Deliberately NOT health/status/trace: those
	// scale with fleet size and belong to the primary.
	pt.tenantSub = b.Subscribe(agent.TenantResultsTopic(o.Tenant), pt.onReport)
	pt.resultsSub = b.Subscribe(agent.ResultsTopic, pt.onReport)
	pt.quarantineSub = b.Subscribe(agent.QuarantineTopic, pt.onQuarantine)
	return pt
}

// Tenant returns the frontend's tenant ID ("" for the primary).
func (pt *PivotTracing) Tenant() string { return pt.tenant }

// FramesIn returns how many result frames (Report or ReportBatch bus
// messages) this frontend has received, including frames for queries it
// does not own. It is the frontend's inbound-load meter: the
// multi-tenant-storm scenario asserts it stays flat per frontend as the
// agent fleet grows.
func (pt *PivotTracing) FramesIn() int64 { return pt.framesIn.Load() }

// FairShare splits a per-query budget across share tenants: the result is
// total/share, floored at 1 so a huge fleet of tenants still makes
// progress. Non-positive totals (unlimited / unset sentinels) and share
// <= 1 pass through unchanged.
func FairShare(total, share int) int {
	if share <= 1 || total <= 0 {
		return total
	}
	if s := total / share; s > 1 {
		return s
	}
	return 1
}

// fairLimit resolves a limit field (0 = def, negative = unlimited) and
// then fair-shares it.
func fairLimit(v, def, share int) int {
	if v < 0 {
		return v
	}
	if v == 0 {
		v = def
	}
	return FairShare(v, share)
}

// applyFairShare scales an install's accumulator limits and baggage
// budget to this frontend's tenant slice. Explicit negative (unlimited)
// settings are respected; zero (default) fields are resolved to their
// single-tenant defaults first so the split is exact and visible on the
// wire rather than re-derived per agent.
func (pt *PivotTracing) applyFairShare(limits *advice.Limits, budget *baggage.Budget) {
	if pt.share <= 1 {
		return
	}
	limits.MaxGroups = fairLimit(limits.MaxGroups, advice.DefaultMaxGroups, pt.share)
	limits.MaxRaws = fairLimit(limits.MaxRaws, advice.DefaultMaxRaws, pt.share)
	budget.MaxBytes = fairLimit(budget.MaxBytes, baggage.DefaultMaxBytes, pt.share)
	budget.MaxTuples = fairLimit(budget.MaxTuples, baggage.DefaultMaxTuples, pt.share)
}

// TenantStatus is one tenant's fleet-wide quota usage, aggregated from
// the per-agent TenantUsage frames that ride the health topic.
type TenantStatus struct {
	Tenant  string
	Agents  int   // agents reporting usage for this tenant
	Queries int   // installed queries (max across agents = distinct set)
	Tuples  int64 // tuples emitted for this tenant, summed across agents
}
