package agent

// Concurrency-stress tests for the agent hot path: many goroutines firing
// tracepoints across several queries while installs, uninstalls, and
// flushes race. Counts are asserted exactly — sharding and batching must
// never lose or duplicate a tuple. Run via `make stress` (and CI) with
// -race -count=2.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agg"
	"repro/internal/bus"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// stressProgram is a q1-style program with its own identity and Cost
// counters (programs are stateful; each query needs a private instance).
func stressProgram(queryID string) *advice.Program {
	return &advice.Program{
		QueryID:       queryID,
		Tracepoint:    "Tp",
		Observe:       []int{0, 5},
		ObserveFields: tuple.Schema{"e.host", "e.v"},
		Emit: &advice.EmitOp{
			Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
			GroupBy: []int{0},
			Schema:  tuple.Schema{"host", "SUM(v)"},
		},
	}
}

func TestStressEmitInstallUninstallFlushRace(t *testing.T) {
	const (
		firers   = 8
		firesPer = 1500
		standing = 4
		churns   = 200
	)
	b := bus.New()
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Tp", "v")
	a := New(nil, info("h1"), reg, b, 0)
	defer a.Close()

	// Standing queries are installed before any fire and never removed, so
	// every one of the firers*firesPer crossings must emit exactly one
	// tuple into each.
	progs := make(map[string]*advice.Program, standing)
	var reportMu sync.Mutex
	sums := map[string]int64{}
	b.Subscribe(ResultsTopic, func(msg any) {
		reportMu.Lock()
		defer reportMu.Unlock()
		for _, r := range resultReports(msg) {
			for _, g := range r.Groups {
				sums[r.QueryID] += g.States[0].Result().Int()
			}
		}
	})
	for i := 0; i < standing; i++ {
		id := string(rune('A' + i))
		p := stressProgram(id)
		progs[id] = p
		b.Publish(ControlTopic, Install{QueryID: id, Programs: []*advice.Program{p}})
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Firing goroutines: the hot path under test.
	for w := 0; w < firers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := request("h1")
			for i := 0; i < firesPer; i++ {
				tp.Here(ctx, 1)
			}
		}()
	}
	// Churner: victim queries install/uninstall concurrently with fires.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < churns; i++ {
			b.Publish(ControlTopic, Install{QueryID: "victim", Programs: []*advice.Program{stressProgram("victim")}})
			b.Publish(ControlTopic, Uninstall{QueryID: "victim"})
		}
	}()
	// Flusher: drains mid-stream, racing the adds.
	flushDone := make(chan struct{})
	go func() {
		defer close(flushDone)
		for {
			select {
			case <-stop:
				return
			default:
				a.Flush()
			}
		}
	}()

	wg.Wait()
	<-churnDone
	close(stop)
	<-flushDone
	a.Flush() // final drain: everything still buffered must ship

	const want = int64(firers * firesPer)
	reportMu.Lock()
	defer reportMu.Unlock()
	for id, p := range progs {
		if got := p.Cost.TuplesEmitted.Load(); got != want {
			t.Errorf("query %s emitted %d tuples, want %d", id, got, want)
		}
		if sums[id] != want {
			t.Errorf("query %s reported SUM = %d, want %d (tuples lost or duplicated)",
				id, sums[id], want)
		}
	}
}

func TestStressFlushSlowBusLinkDoesNotStallHere(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Tp", "v")
	a := New(nil, info("h1"), reg, b, 0)
	defer a.Close()

	entered := make(chan struct{})
	gate := make(chan struct{})
	b.Subscribe(ResultsTopic, func(msg any) {
		// Simulate a slow bus link: the first publish blocks until the
		// test has proven that concurrent fires still complete.
		close(entered)
		<-gate
	})
	b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{stressProgram("Q")}})

	tp.Here(request("h1"), 1)
	flushed := make(chan struct{})
	go func() {
		defer close(flushed)
		a.Flush()
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("flush never reached the bus")
	}

	// The flush is wedged inside the bus publish. Fires must still land:
	// the agent encodes a drained snapshot outside its locks, and EmitTuple
	// takes none at all.
	const fires = 500
	fired := make(chan struct{})
	go func() {
		defer close(fired)
		ctx := request("h1")
		for i := 0; i < fires; i++ {
			tp.Here(ctx, 1)
		}
	}()
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatal("Here fires stalled behind a slow bus link during Flush")
	}
	close(gate)
	<-flushed
	if got := a.Stats().TuplesEmitted; got != fires+1 {
		t.Errorf("TuplesEmitted = %d, want %d", got, fires+1)
	}
}
