package cluster

import (
	"testing"
	"time"

	"repro/internal/combiner"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// TestCombinerTreeEndToEnd: with a 2-tier tree enabled, agent reports flow
// partition topic → mid combiner → root → frontend, results match the flat
// answer, and the tiers' merge/forward accounting is non-trivial.
func TestCombinerTreeEndToEnd(t *testing.T) {
	env := simtime.NewEnv()
	var rows []tuple.Tuple
	var merged, frames int64
	env.Run(func() {
		c := testCluster(env)
		tree := c.EnableCombinerTree(TreeSpec{MidCombiners: 2, TenantRouting: true})

		// One process started before a second after EnableCombinerTree:
		// both must report via their partition topics.
		p1 := c.Start("h1", "svc")
		tp1 := p1.Define("Work.Do", "n")
		p2 := c.Start("h2", "svc")
		tp2 := p2.Define("Work.Do", "n")

		h, err := c.PT.Install(`From e In Work.Do GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			tp1.Here(p1.NewRequest())
		}
		tp2.Here(p2.NewRequest())

		env.Sleep(3 * c.cfg.ReportInterval)
		c.FlushAgents()
		rows = h.Rows()
		merged, frames = tree.Stats()

		// The frontend must not have seen any direct agent frames: agents
		// publish on partition topics only.
		for _, p := range c.Procs() {
			if p.Agent != nil && p.Agent.ReportTopic() == "pt.results" {
				t.Errorf("agent %s still reports on the flat results topic", p.Info.Host)
			}
		}
	})
	if len(rows) != 2 || rows[0][1].Int() != 3 || rows[1][1].Int() != 1 {
		t.Fatalf("rows = %v, want (h1,3),(h2,1)", rows)
	}
	if merged == 0 || frames == 0 {
		t.Fatalf("tree accounting empty: merged=%d frames=%d", merged, frames)
	}
}

// TestTenantFrontendOverTree: a tenant frontend's query rides the tree and
// is delivered on the tenant's own topic by the tenant-routing root, while
// the primary's query still lands on the shared results topic. Both see
// exactly their own rows, and late-started processes replay the tenant's
// installs.
func TestTenantFrontendOverTree(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		c.EnableCombinerTree(TreeSpec{MidCombiners: 2, TenantRouting: true})
		ten := c.NewTenantFrontend("acme", 2)

		p1 := c.Start("h1", "svc")
		tp1 := p1.Define("Work.Do", "n")

		hTen, err := ten.Install(`From e In Work.Do GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		hPri, err := c.PT.Install(`From e In Work.Do GroupBy e.host Select e.host, SUM(e.n)`)
		if err != nil {
			t.Fatal(err)
		}

		// A process started after the installs must weave both queries.
		p2 := c.Start("h2", "svc")
		tp2 := p2.Define("Work.Do", "n")

		tp1.Here(p1.NewRequest(), 10)
		tp2.Here(p2.NewRequest(), 32)

		env.Sleep(3 * c.cfg.ReportInterval)
		c.FlushAgents()

		tenRows, priRows := hTen.Rows(), hPri.Rows()
		if len(tenRows) != 2 || tenRows[0][1].Int() != 1 || tenRows[1][1].Int() != 1 {
			t.Errorf("tenant rows = %v, want counts (h1,1),(h2,1)", tenRows)
		}
		if len(priRows) != 2 || priRows[0][1].Int() != 10 || priRows[1][1].Int() != 32 {
			t.Errorf("primary rows = %v, want sums (h1,10),(h2,32)", priRows)
		}

		// Dropping the tenant closes its subscriptions; its results stop.
		c.DropTenantFrontend(ten)
		if got := len(c.TenantFrontends()); got != 0 {
			t.Errorf("TenantFrontends() = %d after drop, want 0", got)
		}
		tp1.Here(p1.NewRequest(), 1)
		env.Sleep(3 * c.cfg.ReportInterval)
		c.FlushAgents()
		if got := hTen.Rows(); got[0][1].Int() != 1 {
			t.Errorf("dropped tenant still receiving: %v", got)
		}
	})
}

// TestTreeRebalanceOwnership: the partition topics of a tree's members
// cover the topic set disjointly (sanity of the cluster wiring against the
// combiner package's rendezvous assignment).
func TestTreeRebalanceOwnership(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		tree := c.EnableCombinerTree(TreeSpec{MidCombiners: 3, Interval: time.Second})
		owned := map[string]int{}
		for _, m := range tree.Mid {
			for _, topic := range m.Topics() {
				owned[topic]++
			}
		}
		if len(owned) != tree.Partitions {
			t.Fatalf("mids own %d topics, want %d", len(owned), tree.Partitions)
		}
		for _, topic := range combiner.PartitionTopics(tree.Partitions) {
			if owned[topic] != 1 {
				t.Errorf("topic %q owned by %d mids, want exactly 1", topic, owned[topic])
			}
		}
	})
}
