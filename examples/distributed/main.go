// Distributed: a real multi-runtime deployment over TCP. A frontend
// runtime serves the central pub/sub bus; two worker runtimes connect to
// it. A query installed at the frontend is compiled to advice, shipped
// over the wire, and woven into both workers' tracepoints; their
// per-interval reports stream back and aggregate globally. Baggage crosses
// between the workers as serialized bytes, exactly as it would ride an RPC
// header — so the happened-before join spans the two workers.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/pivot"
)

func main() {
	// The frontend: owns the query and the pub/sub server.
	frontend := pivot.New("frontend")
	frontend.Define("Gateway.Receive", "tenant")
	frontend.Define("Store.Write", "bytes")
	addr, shutdown, err := frontend.ServeBus("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer shutdown()

	// Worker 1: the gateway tier.
	gateway := pivot.New("gateway")
	tpRecv := gateway.Define("Gateway.Receive", "tenant")
	gwDisconnect, err := gateway.ConnectBus(addr)
	if err != nil {
		panic(err)
	}
	defer gwDisconnect()

	// Worker 2: the storage tier.
	store := pivot.New("store")
	tpWrite := store.Define("Store.Write", "bytes")
	stDisconnect, err := store.ConnectBus(addr)
	if err != nil {
		panic(err)
	}
	defer stDisconnect()

	// Install the cross-tier query at the frontend: bytes written at the
	// storage tier, grouped by the tenant recorded at the gateway tier.
	q, err := frontend.Install(`
		From w In Store.Write
		Join g In First(Gateway.Receive) On g -> w
		GroupBy g.tenant
		Select g.tenant, SUM(w.bytes), COUNT`)
	if err != nil {
		panic(err)
	}

	// Give the weave instructions a moment to propagate over TCP.
	for i := 0; i < 200 && !tpWrite.Enabled(); i++ {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("advice woven remotely: gateway=%v store=%v\n",
		tpRecv.Enabled(), tpWrite.Enabled())

	// Traffic: each request enters at the gateway, hops to the store with
	// its baggage serialized into the message.
	tenants := []string{"acme", "globex", "initech"}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		tenant := tenants[rng.Intn(len(tenants))]
		ctx := gateway.NewRequest(context.Background())
		tpRecv.Here(ctx, tenant)
		wireBytes := pivot.Inject(ctx) // rides the RPC to the store tier

		storeCtx := pivot.Extract(store.Context(context.Background()), wireBytes)
		tpWrite.Here(storeCtx, 512*(1+rng.Intn(8)))
	}

	// Workers report; results aggregate at the frontend.
	gateway.Flush()
	store.Flush()
	deadline := time.Now().Add(2 * time.Second)
	for len(q.Rows()) < len(tenants) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Printf("\n%-10s %12s %8s\n", "tenant", "bytes", "writes")
	for _, row := range q.Rows() {
		fmt.Printf("%-10s %12s %8s\n", row[0], row[1], row[2])
	}
	fmt.Println("\nper-tracepoint cost at the store worker (live counters):")
	fmt.Print(store.Agent.CostReport())
}
