package workload

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

func smallTestbed(env *simtime.Env, hosts int) *Testbed {
	cfg := DefaultTestbedConfig()
	cfg.Hosts = hosts
	return NewTestbed(env, cfg)
}

func TestTestbedAssembles(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		tb := smallTestbed(env, 4)
		if len(tb.DNs) != 4 || len(tb.RSs) != 4 || len(tb.NMs) != 4 {
			t.Errorf("testbed sizes: DNs=%d RSs=%d NMs=%d", len(tb.DNs), len(tb.RSs), len(tb.NMs))
		}
		if tb.C.Proc("host-A", "DataNode") == nil {
			t.Error("DataNode process missing on host-A")
		}
		if tb.C.Proc("master", "NameNode") == nil {
			t.Error("NameNode missing on master")
		}
	})
}

func TestFSReadWorkloadProducesThroughput(t *testing.T) {
	env := simtime.NewEnv()
	var ops int
	env.Run(func() {
		tb := smallTestbed(env, 4)
		w, err := tb.NewFSRead("host-A", "FSREAD4M", 4e6, 8, 42)
		if err != nil {
			t.Error(err)
			return
		}
		w.Start()
		env.Sleep(3 * time.Second)
		ops = w.Rec.Count()
	})
	if ops < 10 {
		t.Fatalf("FSread4m completed %d ops in 3s, want >= 10", ops)
	}
}

func TestHBaseWorkloads(t *testing.T) {
	env := simtime.NewEnv()
	var gets, scans int
	env.Run(func() {
		tb := smallTestbed(env, 4)
		if err := tb.InitHBaseStores(1e9); err != nil {
			t.Error(err)
			return
		}
		g := tb.NewHGet("host-B", 1)
		s := tb.NewHScan("host-C", 2)
		g.Start()
		s.Start()
		env.Sleep(2 * time.Second)
		gets, scans = g.Rec.Count(), s.Rec.Count()
	})
	if gets < 20 {
		t.Errorf("Hget ops = %d, want >= 20", gets)
	}
	if scans < 5 {
		t.Errorf("Hscan ops = %d, want >= 5", scans)
	}
}

func TestMRSortCompletesJobs(t *testing.T) {
	env := simtime.NewEnv()
	var jobs int
	env.Run(func() {
		tb := smallTestbed(env, 4)
		// A small sort: 512 MB input = 4 map tasks.
		w, err := tb.NewMRSort("host-D", "MRSORT", 512e6)
		if err != nil {
			t.Error(err)
			return
		}
		w.Start()
		env.Sleep(60 * time.Second)
		jobs = w.Rec.Count()
	})
	if jobs < 1 {
		t.Fatalf("MRsort completed %d jobs in 60s, want >= 1", jobs)
	}
}

func TestFig1bCrossTierAttribution(t *testing.T) {
	// The headline experiment shape: per-application HDFS throughput via
	// the happened-before join, attributing DataNode-level reads to the
	// high-level client application that caused them.
	env := simtime.NewEnv()
	totals := map[string]float64{}
	env.Run(func() {
		tb := smallTestbed(env, 4)
		if err := tb.InitHBaseStores(1e9); err != nil {
			t.Error(err)
			return
		}
		h, err := tb.C.PT.Install(
			`From incr In DataNodeMetrics.incrBytesRead
			 Join cl In First(ClientProtocols) On cl -> incr
			 GroupBy cl.procName
			 Select cl.procName, SUM(incr.delta)`)
		if err != nil {
			t.Error(err)
			return
		}
		col := metrics.NewCollector(h.Plan.Emit.Emit, time.Second)
		h.OnReport(col.OnReport)

		w1, err := tb.NewFSRead("host-A", "FSREAD4M", 4e6, 8, 1)
		if err != nil {
			t.Error(err)
			return
		}
		w2, err := tb.NewFSRead("host-B", "FSREAD64M", 64e6, 8, 2)
		if err != nil {
			t.Error(err)
			return
		}
		g := tb.NewHGet("host-C", 3)
		w1.Start()
		w2.Start()
		g.Start()
		env.Sleep(5 * time.Second)
		tb.C.FlushAgents()
		for k, v := range col.Totals([]int{0}, 1) {
			totals[k] = v
		}
	})
	for _, app := range []string{"FSREAD4M", "FSREAD64M", "HGET"} {
		if totals[app] <= 0 {
			t.Errorf("no bytes attributed to %s: %v", app, totals)
		}
	}
	// Bulk readers move far more data than the 10 kB getter (Fig 1b shape).
	if totals["FSREAD4M"] < totals["HGET"] || totals["FSREAD64M"] < totals["HGET"] {
		t.Errorf("attribution shape wrong: %v", totals)
	}
}

func TestStressTestWorkload(t *testing.T) {
	env := simtime.NewEnv()
	var ops int
	env.Run(func() {
		tb := smallTestbed(env, 4)
		files, err := tb.StressDataset(50, 128e6)
		if err != nil {
			t.Error(err)
			return
		}
		w := tb.NewStressTest("host-A", 0, files, time.Millisecond, 7)
		w.Start()
		env.Sleep(2 * time.Second)
		ops = w.Rec.Count()
	})
	if ops < 100 {
		t.Fatalf("StressTest ops = %d, want >= 100", ops)
	}
}

func TestNNBenchWorkloads(t *testing.T) {
	env := simtime.NewEnv()
	counts := map[string]int{}
	env.Run(func() {
		tb := smallTestbed(env, 2)
		for i, op := range []string{OpRead8k, OpOpen, OpCreate, OpRename} {
			w, err := tb.NewNNBench(HostName(i%2), op, int64(i))
			if err != nil {
				t.Error(err)
				return
			}
			op := op
			w.Start()
			defer func(w *Workload, op string) { counts[op] = w.Rec.Count() }(w, op)
		}
		env.Sleep(2 * time.Second)
	})
	for _, op := range []string{OpRead8k, OpOpen, OpCreate, OpRename} {
		if counts[op] < 50 {
			t.Errorf("%s ops = %d, want >= 50", op, counts[op])
		}
	}
}

func TestNNBenchUnknownOp(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		tb := smallTestbed(env, 2)
		if _, err := tb.NewNNBench("host-A", "Bogus", 0); err == nil {
			t.Error("expected error for unknown op")
		}
	})
}
