//go:build !race

package tracepoint

// Allocation-regression tests. Excluded under -race: the race detector's
// instrumentation adds bookkeeping allocations that would fail these
// assertions for reasons unrelated to the code under test.

import (
	"context"
	"testing"

	"repro/internal/tuple"
)

func TestAllocDisabledHereIsAllocationFree(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("Alloc.Tp", "v")
	ctx := WithProc(context.Background(), ProcInfo{Host: "h", ProcName: "p"})
	if n := testing.AllocsPerRun(1000, func() {
		tp.Here(ctx, 7)
	}); n != 0 {
		t.Errorf("disabled tracepoint.Here allocates %.1f objects/op, want 0 "+
			"(regression on the zero-overhead-when-disabled fast path)", n)
	}
}

func TestAllocWovenHereSteadyStateIsAllocationFree(t *testing.T) {
	reg := NewRegistry()
	tp := reg.Define("Alloc.Tp", "v")
	ctx := WithProc(context.Background(), ProcInfo{Host: "h", ProcName: "p"})
	var fires int
	adv := noCaptureAdvice{fires: &fires}
	if err := reg.Weave("Alloc.Tp", adv); err != nil {
		t.Fatal(err)
	}
	tp.Here(ctx, 1) // warm the fire-tuple pool
	if n := testing.AllocsPerRun(1000, func() {
		tp.Here(ctx, 1)
	}); n != 0 {
		t.Errorf("woven tracepoint.Here allocates %.1f objects/op before advice "+
			"runs, want 0 (regression in the pooled fire-tuple path)", n)
	}
	if fires == 0 {
		t.Fatal("advice never fired")
	}
}

// noCaptureAdvice honors the Advice contract (vals are only valid for the
// duration of the call) without copying, so the measurement isolates the
// tracepoint's own allocations.
type noCaptureAdvice struct{ fires *int }

func (a noCaptureAdvice) Invoke(ctx context.Context, vals tuple.Tuple) { *a.fires++ }
