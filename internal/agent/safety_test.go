package agent

import (
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

func TestLeaseExpiresWithoutRenewal(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)

		b.Publish(ControlTopic, Install{
			QueryID: "Q", Programs: []*advice.Program{q1Program()}, TTL: 3 * time.Second,
		})
		if !a.Installed("Q") || !tp.Enabled() {
			t.Fatal("query not installed")
		}
		if dl := a.LeaseDeadline("Q"); dl != 3*time.Second {
			t.Fatalf("LeaseDeadline = %v, want 3s", dl)
		}
		// The report loop flushes each second; the third flush lands at
		// the lease deadline and sheds the query.
		env.Sleep(3500 * time.Millisecond)
		if a.Installed("Q") {
			t.Fatal("query survived an expired lease")
		}
		if tp.Enabled() {
			t.Fatal("expired query's advice still woven")
		}
		if got := a.Stats().LeasesExpired; got != 1 {
			t.Fatalf("LeasesExpired = %d, want 1", got)
		}
	})
}

func TestRenewKeepsLeaseAlive(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)

		b.Publish(ControlTopic, Install{
			QueryID: "Q", Programs: []*advice.Program{q1Program()}, TTL: 3 * time.Second,
		})
		// Renew (TTL 0 keeps the installed duration) every 2 virtual
		// seconds: the query outlives several would-be expiries.
		for i := 0; i < 4; i++ {
			env.Sleep(2 * time.Second)
			b.Publish(ControlTopic, Renew{QueryIDs: []string{"Q"}})
		}
		env.Sleep(2 * time.Second)
		if !a.Installed("Q") {
			t.Fatal("renewed query expired")
		}
		// Expected deadline: last renewal at t=8s + the installed 3s TTL.
		if dl := a.LeaseDeadline("Q"); dl != 11*time.Second {
			t.Fatalf("LeaseDeadline = %v, want 11s", dl)
		}
		// Stop renewing; the lease lapses.
		env.Sleep(4 * time.Second)
		if a.Installed("Q") {
			t.Fatal("query survived after renewals stopped")
		}
	})
}

func TestRenewWithExplicitTTLRetimes(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Hour) // no flushes during the test

		// Installed immortal: no expiry until a renewal assigns a TTL.
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		b.Publish(ControlTopic, Renew{QueryIDs: []string{"Q"}})
		if dl := a.LeaseDeadline("Q"); dl != 0 {
			t.Fatalf("immortal query gained a deadline: %v", dl)
		}
		b.Publish(ControlTopic, Renew{QueryIDs: []string{"Q"}, TTL: 5 * time.Second})
		if dl := a.LeaseDeadline("Q"); dl != 5*time.Second {
			t.Fatalf("LeaseDeadline = %v, want 5s", dl)
		}
		// Unknown query IDs in a renewal are ignored.
		b.Publish(ControlTopic, Renew{QueryIDs: []string{"nope"}, TTL: time.Second})
	})
}

func TestImmortalInstallNeverExpires(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		env.Sleep(time.Hour)
		if !a.Installed("Q") {
			t.Fatal("immortal query expired")
		}
	})
}

func TestQuarantinePublishesNoticeAndUnweaves(t *testing.T) {
	env := simtime.NewEnv()
	var notices []Quarantine
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Hour)
		b.Subscribe(QuarantineTopic, func(msg any) {
			notices = append(notices, msg.(Quarantine))
		})

		prog := q1Program()
		prog.Safety = advice.Safety{FaultLimit: 2}
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{prog}})

		// Make every fire of this program panic, as a buggy advice would.
		advice.SetFailpoint(func(p *advice.Program, _ tuple.Tuple) {
			if p == prog {
				panic("injected advice bug")
			}
		})
		defer advice.SetFailpoint(nil)

		for i := 0; i < 5; i++ {
			tp.Here(request("h1"), 1) // must not panic the caller
		}
		if !prog.Quarantined() {
			t.Fatal("breaker did not trip")
		}
		if tp.Enabled() {
			t.Fatal("quarantined advice still woven")
		}
		if got := a.Stats().Quarantines; got != 1 {
			t.Fatalf("Stats.Quarantines = %d, want 1", got)
		}
		// Re-delivering the install (e.g. a frontend reconnect replay)
		// must not re-weave the quarantined program.
		b.Publish(ControlTopic, Uninstall{QueryID: "Q"})
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{prog}})
		if tp.Enabled() {
			t.Fatal("quarantined program re-woven by install replay")
		}
	})
	if len(notices) != 1 {
		t.Fatalf("quarantine notices = %d, want 1", len(notices))
	}
	n := notices[0]
	if n.QueryID != "Q" || n.Tracepoint != "Tp" || n.Host != "h1" || n.Reason == "" {
		t.Fatalf("notice = %+v", n)
	}
}

func TestReportCarriesDedupedDropRecords(t *testing.T) {
	env := simtime.NewEnv()
	var reports []Report
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Hour)
		b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, resultReports(msg)...) })
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})

		prog := q1Program()
		// The same tombstone observed at several crossings reports once.
		recs := []baggage.DropRecord{{Slot: "Q.a", Key: "k2"}, {Slot: "Q.a", Key: "k1"}}
		a.NoteBaggageDrops(prog, recs)
		a.NoteBaggageDrops(prog, recs[:1])
		a.Flush()
		// Drained with the interval: the next flush reports nothing.
		a.Flush()
	})
	if len(reports) != 1 {
		t.Fatalf("reports = %d, want 1 (drops alone must flush)", len(reports))
	}
	drops := reports[0].Drops
	if len(drops) != 2 || drops[0].Key != "k1" || drops[1].Key != "k2" {
		t.Fatalf("drops = %v, want deduped sorted [k1 k2]", drops)
	}
}
