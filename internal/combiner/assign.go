package combiner

import "fmt"

// Topic partitioning: agent report traffic is sharded across a fixed set
// of partition topics by a stable hash of the agent's identity, so each
// combiner owns a disjoint subscription set and no single process — bus
// server aside — sees every agent's frames. Partition count is fixed per
// deployment (it names the topics); combiner membership is not: ownership
// of partitions rebalances with rendezvous hashing, which moves only the
// partitions of the member that joined or left.

// partitionPrefix prefixes every partition topic name.
const partitionPrefix = "pt.report.p"

// fnv1a is the 64-bit FNV-1a hash — dependency-free, stable across runs
// and platforms, and mixed enough to spread sequential host names.
func fnv1a(parts ...string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, s := range parts {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // separator so ("ab","c") and ("a","bc") differ
		h *= prime
	}
	return h
}

// Partition returns which of parts partitions the agent identified by
// host/proc publishes on. The hash is stable: the same agent always lands
// on the same partition, so mid-tier state for its queries never splits
// across combiners within one deployment.
func Partition(host, proc string, parts int) int {
	if parts <= 1 {
		return 0
	}
	return int(fnv1a(host, proc) % uint64(parts))
}

// PartitionTopic names partition part of a parts-way sharding. The total
// is baked into the name so differently-sized deployments on one bus can
// never cross-subscribe.
func PartitionTopic(part, parts int) string {
	return fmt.Sprintf("%s%dof%d", partitionPrefix, part, parts)
}

// PartitionTopics returns all parts partition topic names, in order.
func PartitionTopics(parts int) []string {
	if parts <= 0 {
		parts = 1
	}
	out := make([]string, parts)
	for i := range out {
		out[i] = PartitionTopic(i, parts)
	}
	return out
}

// Assign maps a partition topic to the combiner that owns it, by
// rendezvous (highest-random-weight) hashing over the member names: each
// member scores the topic and the highest score wins. When a member
// leaves, only the partitions it owned move; when one joins, it steals
// only the partitions it now scores highest on — no global reshuffle
// either way. Returns "" for an empty membership.
func Assign(topic string, members []string) string {
	best, bestScore := "", uint64(0)
	for _, m := range members {
		score := fnv1a(m, topic)
		if best == "" || score > bestScore || (score == bestScore && m < best) {
			best, bestScore = m, score
		}
	}
	return best
}

// Owned filters topics down to those Assign gives to member.
func Owned(topics []string, members []string, member string) []string {
	var out []string
	for _, t := range topics {
		if Assign(t, members) == member {
			out = append(out, t)
		}
	}
	return out
}
