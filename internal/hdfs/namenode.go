// Package hdfs implements a simulated Hadoop Distributed File System: a
// NameNode managing the namespace and block map, DataNodes serving block
// reads and writes from local disks, and a client library with the replica
// selection logic — including the HDFS-6268 replica-ordering bug the paper
// diagnoses in §6.1, reproduced here behind configuration switches.
package hdfs

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
)

// BlockSize is the HDFS block size (128 MB, as in the paper's experiments).
const BlockSize = 128e6

// DefaultReplication is the block replication factor.
const DefaultReplication = 3

// Config controls NameNode behaviour, in particular the two halves of
// HDFS-6268 and the locking discipline of §6.2's NameNode overload case.
type Config struct {
	// RandomizeReplicaOrder, when false, reproduces the NameNode half of
	// HDFS-6268: non-local replicas are returned in a fixed static order
	// instead of being shuffled.
	RandomizeReplicaOrder bool
	// Replication is the block replication factor (default 3).
	Replication int
	// ExclusiveLocking, when true, makes every namespace operation take
	// the write lock — the overloaded-NameNode behaviour of §6.2.
	ExclusiveLocking bool
	// OpDelay is the CPU cost of one namespace operation under the lock.
	OpDelay time.Duration
	// Seed drives replica placement and ordering.
	Seed int64
	// DeterministicPlacement keys replica placement on the file path and
	// block index instead of a shared rng, making placement independent
	// of the order concurrent Create operations reach the NameNode. The
	// scenario harness requires it for byte-identical reports; the
	// default preserves the historical shared-rng placement.
	DeterministicPlacement bool
}

// DefaultConfig returns the buggy-ordering configuration used by the §6.1
// case study.
func DefaultConfig() Config {
	return Config{Replication: DefaultReplication, OpDelay: 30 * time.Microsecond, Seed: 1}
}

type fileInfo struct {
	blocks []string
	size   float64
}

// NameNode is the HDFS metadata server.
type NameNode struct {
	Proc *cluster.Process
	cfg  Config

	lock *simtime.RWLock // namespace lock (held across simulated CPU work)
	mu   sync.Mutex      // protects the maps below (never held across blocking)

	files       map[string]*fileInfo
	blocks      map[string][]string // block -> replica DataNode hosts
	dataNodes   []string
	staticOrder map[string]int // the HDFS-6268 static priority of each host
	nextBlock   int64
	rng         *rand.Rand

	tpGetLoc, tpCreate, tpOpen, tpRename, tpComplete *tracepoint.Tracepoint
}

// NewNameNode starts a NameNode process on the given host.
func NewNameNode(c *cluster.Cluster, host string, cfg Config) *NameNode {
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.OpDelay <= 0 {
		cfg.OpDelay = 30 * time.Microsecond
	}
	proc := c.Start(host, "NameNode")
	nn := &NameNode{
		Proc:        proc,
		cfg:         cfg,
		lock:        c.Env.NewRWLock(),
		files:       make(map[string]*fileInfo),
		blocks:      make(map[string][]string),
		staticOrder: make(map[string]int),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	nn.tpGetLoc = proc.Define("NN.GetBlockLocations", "src", "replicas")
	nn.tpCreate = proc.Define("NN.Create", "src")
	nn.tpOpen = proc.Define("NN.Open", "src")
	nn.tpRename = proc.Define("NN.Rename", "src", "dst")
	nn.tpComplete = proc.Define("NN.Complete", "src")

	proc.Handle("ClientProtocol.GetBlockLocations", nn.handleGetBlockLocations)
	proc.Handle("ClientProtocol.Create", nn.handleCreate)
	proc.Handle("ClientProtocol.Open", nn.handleOpen)
	proc.Handle("ClientProtocol.Rename", nn.handleRename)
	proc.Handle("ClientProtocol.Complete", nn.handleComplete)
	return nn
}

// RegisterDataNode adds a DataNode host to the placement pool. The static
// ordering position reproduces HDFS-6268: when ordering is not randomized,
// replicas are returned sorted by this fixed priority.
func (nn *NameNode) RegisterDataNode(host string) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	nn.dataNodes = append(nn.dataNodes, host)
	// A deterministic pseudo-random permutation: the priority is the hash
	// order the buggy comparator happened to produce.
	nn.staticOrder[host] = len(nn.dataNodes)*7919%10007 + len(nn.dataNodes)
}

// readLock acquires the namespace lock for a read operation, honouring the
// exclusive-locking misconfiguration.
func (nn *NameNode) readLock() func() {
	if nn.cfg.ExclusiveLocking {
		nn.lock.Lock()
		return nn.lock.Unlock
	}
	nn.lock.RLock()
	return nn.lock.RUnlock
}

// GetBlockLocationsReq asks for the replica locations of a byte range.
type GetBlockLocationsReq struct {
	Src        string
	ClientHost string
	Offset     float64
	Length     float64
}

// BlockLocation is one block with its replica hosts in selection order.
type BlockLocation struct {
	Block    string
	Replicas []string
	Size     float64
}

func (nn *NameNode) handleGetBlockLocations(ctx context.Context, req any) (any, error) {
	r := req.(GetBlockLocationsReq)
	unlock := nn.readLock()
	nn.Proc.C.Env.Sleep(nn.cfg.OpDelay)

	nn.mu.Lock()
	fi, ok := nn.files[r.Src]
	var out []BlockLocation
	if ok {
		first := int(r.Offset / BlockSize)
		last := int((r.Offset + r.Length - 1) / BlockSize)
		if last >= len(fi.blocks) {
			last = len(fi.blocks) - 1
		}
		for i := first; i <= last && i >= 0; i++ {
			b := fi.blocks[i]
			replicas := nn.orderReplicas(r.ClientHost, nn.blocks[b])
			size := BlockSize
			if i == len(fi.blocks)-1 {
				if rem := fi.size - float64(i)*BlockSize; rem < size {
					size = rem
				}
			}
			out = append(out, BlockLocation{Block: b, Replicas: replicas, Size: size})
		}
	}
	nn.mu.Unlock()
	unlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", r.Src)
	}
	for _, bl := range out {
		nn.tpGetLoc.Here(ctx, r.Src, strings.Join(bl.Replicas, ","))
	}
	return out, nil
}

// orderReplicas sorts replica hosts for a client: a local replica first,
// then the rest — shuffled when RandomizeReplicaOrder is set, otherwise in
// the fixed static order (the HDFS-6268 bug). Caller holds nn.mu.
func (nn *NameNode) orderReplicas(clientHost string, replicas []string) []string {
	out := make([]string, 0, len(replicas))
	rest := make([]string, 0, len(replicas))
	for _, h := range replicas {
		if h == clientHost {
			out = append(out, h)
		} else {
			rest = append(rest, h)
		}
	}
	if nn.cfg.RandomizeReplicaOrder {
		nn.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	} else {
		// Static priority sort: the bug.
		for i := 1; i < len(rest); i++ {
			for k := i; k > 0 && nn.staticOrder[rest[k]] < nn.staticOrder[rest[k-1]]; k-- {
				rest[k], rest[k-1] = rest[k-1], rest[k]
			}
		}
	}
	return append(out, rest...)
}

// CreateReq creates a file of the given size; blocks are allocated and
// placed immediately (the simulation does not model incremental writes to
// the namespace).
type CreateReq struct {
	Src  string
	Size float64
}

func (nn *NameNode) handleCreate(ctx context.Context, req any) (any, error) {
	r := req.(CreateReq)
	nn.lock.Lock()
	nn.Proc.C.Env.Sleep(nn.cfg.OpDelay)
	locs := nn.createLocked(r.Src, r.Size)
	nn.lock.Unlock()
	nn.tpCreate.Here(ctx, r.Src)
	return locs, nil
}

// createLocked allocates blocks with uniform random placement.
func (nn *NameNode) createLocked(src string, size float64) []BlockLocation {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	fi := &fileInfo{size: size}
	var out []BlockLocation
	nBlocks := int((size + BlockSize - 1) / BlockSize)
	if nBlocks == 0 {
		nBlocks = 1
	}
	for i := 0; i < nBlocks; i++ {
		nn.nextBlock++
		b := fmt.Sprintf("blk_%d", nn.nextBlock)
		replicas := nn.placeReplicas(src, i)
		nn.blocks[b] = replicas
		fi.blocks = append(fi.blocks, b)
		bs := BlockSize
		if i == nBlocks-1 {
			if rem := size - float64(i)*BlockSize; rem < bs && rem > 0 {
				bs = rem
			}
		}
		out = append(out, BlockLocation{Block: b, Replicas: replicas, Size: bs})
	}
	nn.files[src] = fi
	return out
}

// placeReplicas picks Replication distinct DataNodes uniformly at random.
// Under DeterministicPlacement the choice is a pure function of (src,
// block index, seed); otherwise it consumes the shared placement rng.
func (nn *NameNode) placeReplicas(src string, idx int) []string {
	n := nn.cfg.Replication
	if n > len(nn.dataNodes) {
		n = len(nn.dataNodes)
	}
	var rng *rand.Rand
	if nn.cfg.DeterministicPlacement {
		h := int64(1469598103934665603)
		for _, c := range src {
			h = (h ^ int64(c)) * 1099511628211
		}
		rng = rand.New(rand.NewSource(nn.cfg.Seed ^ h ^ int64(idx)*-0x61C8864680B583EB))
	} else {
		rng = nn.rng
	}
	// Rejection-sample n distinct datanodes: O(n) for the thousand-host
	// pools the scenario harness builds, where a full Perm is O(hosts)
	// per block.
	out := make([]string, 0, n)
	used := make(map[int]bool, n)
	for len(out) < n {
		i := rng.Intn(len(nn.dataNodes))
		if used[i] {
			continue
		}
		used[i] = true
		out = append(out, nn.dataNodes[i])
	}
	return out
}

func (nn *NameNode) handleOpen(ctx context.Context, req any) (any, error) {
	src := req.(string)
	unlock := nn.readLock()
	nn.Proc.C.Env.Sleep(nn.cfg.OpDelay)
	nn.mu.Lock()
	_, ok := nn.files[src]
	nn.mu.Unlock()
	unlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", src)
	}
	nn.tpOpen.Here(ctx, src)
	return true, nil
}

// RenameReq renames a file.
type RenameReq struct{ Src, Dst string }

func (nn *NameNode) handleRename(ctx context.Context, req any) (any, error) {
	r := req.(RenameReq)
	nn.lock.Lock()
	nn.Proc.C.Env.Sleep(nn.cfg.OpDelay)
	nn.mu.Lock()
	fi, ok := nn.files[r.Src]
	if ok {
		delete(nn.files, r.Src)
		nn.files[r.Dst] = fi
	}
	nn.mu.Unlock()
	nn.lock.Unlock()
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", r.Src)
	}
	nn.tpRename.Here(ctx, r.Src, r.Dst)
	return true, nil
}

func (nn *NameNode) handleComplete(ctx context.Context, req any) (any, error) {
	src := req.(string)
	nn.lock.Lock()
	nn.Proc.C.Env.Sleep(nn.cfg.OpDelay)
	nn.lock.Unlock()
	nn.tpComplete.Here(ctx, src)
	return true, nil
}

// FileSize returns the size of a file, for tests.
func (nn *NameNode) FileSize(src string) (float64, bool) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	fi, ok := nn.files[src]
	if !ok {
		return 0, false
	}
	return fi.size, true
}
