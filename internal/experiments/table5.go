package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baggage"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/tuple"
	"repro/internal/workload"
)

// Table5Config sizes the §6.3 application-level overhead experiment: HDFS
// stress operations (derived from NNBench) measured under six
// instrumentation configurations.
type Table5Config struct {
	Hosts    int
	Duration time.Duration
	// RPCLatency trades absolute op latency against instrumentation cost
	// visibility; the paper's testbed had sub-millisecond NameNode ops.
	RPCLatency time.Duration
	// Think bounds the closed-loop rate (latency measurements are
	// unaffected; only the number of samples changes).
	Think time.Duration
}

// DefaultTable5Config mirrors the paper's stress test scale.
func DefaultTable5Config() Table5Config {
	return Table5Config{Hosts: 8, Duration: 20 * time.Second, RPCLatency: 20 * time.Microsecond, Think: time.Millisecond}
}

// Table5 configurations, in paper row order.
const (
	CfgUnmodified = "Unmodified"
	CfgPTEnabled  = "PivotTracing Enabled"
	CfgBaggage1   = "Baggage - 1 Tuple"
	CfgBaggage60  = "Baggage - 60 Tuples"
	CfgQueries61  = "Queries - 6.1"
	CfgQueries62  = "Queries - 6.2"
)

// Configs lists the experiment configurations in order.
var Configs = []string{CfgUnmodified, CfgPTEnabled, CfgBaggage1, CfgBaggage60, CfgQueries61, CfgQueries62}

// Ops lists the measured operations in paper column order.
var Ops = []string{workload.OpRead8k, workload.OpOpen, workload.OpCreate, workload.OpRename}

// Table5Result holds mean latencies (seconds) per config per op, plus
// derived overhead percentages relative to the unmodified configuration.
type Table5Result struct {
	Cfg      Table5Config
	Latency  map[string]map[string]float64 // config -> op -> mean seconds
	Overhead map[string]map[string]float64 // config -> op -> percent
	OpsRun   map[string]map[string]int
}

// RunTable5 executes all configurations.
func RunTable5(cfg Table5Config) (*Table5Result, error) {
	res := &Table5Result{
		Cfg:      cfg,
		Latency:  map[string]map[string]float64{},
		Overhead: map[string]map[string]float64{},
		OpsRun:   map[string]map[string]int{},
	}
	for _, config := range Configs {
		lat, counts, err := runTable5Config(cfg, config)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", config, err)
		}
		res.Latency[config] = lat
		res.OpsRun[config] = counts
	}
	base := res.Latency[CfgUnmodified]
	for _, config := range Configs {
		res.Overhead[config] = map[string]float64{}
		for _, op := range Ops {
			if base[op] > 0 {
				res.Overhead[config][op] = (res.Latency[config][op] - base[op]) / base[op] * 100
			}
		}
	}
	return res, nil
}

// padTuples builds the pre-packed baggage contents for the baggage
// configurations: n 8-byte tuples, as in the paper's microbenchmarks.
func padTuples(n int) []tuple.Tuple {
	out := make([]tuple.Tuple, n)
	for i := range out {
		out[i] = tuple.Tuple{tuple.Int(int64(0x0102030405060708 + i))}
	}
	return out
}

func runTable5Config(cfg Table5Config, config string) (map[string]float64, map[string]int, error) {
	env := simtime.NewEnv()
	lat := map[string]float64{}
	counts := map[string]int{}
	var runErr error

	env.Run(func() {
		tbCfg := workload.DefaultTestbedConfig()
		tbCfg.Hosts = cfg.Hosts
		tbCfg.HBase = false
		tbCfg.MapReduce = false
		tbCfg.Cluster.RPCLatency = cfg.RPCLatency
		tb := workload.NewTestbed(env, tbCfg)
		tb.C.PT.Registry().Define("StressTest.DoNextOp", "op")

		// One workload per op, spread over hosts.
		ws := map[string]*workload.Workload{}
		for i, op := range Ops {
			w, err := tb.NewNNBench(workload.HostName(i%cfg.Hosts), op, int64(i+1))
			if err != nil {
				runErr = err
				return
			}
			w.SetThink(cfg.Think)
			ws[op] = w
		}

		padSpec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"pad"}}
		switch config {
		case CfgUnmodified, CfgPTEnabled:
			// PT enabled is the default state of this testbed; unmodified
			// differs only by the (zero-cost) idle agents.
		case CfgBaggage1:
			pad := padTuples(1)
			for _, w := range ws {
				w.Prepare = func(ctx context.Context) {
					baggage.FromContext(ctx).Pack("pad", padSpec, pad...)
				}
			}
		case CfgBaggage60:
			pad := padTuples(60)
			for _, w := range ws {
				w.Prepare = func(ctx context.Context) {
					baggage.FromContext(ctx).Pack("pad", padSpec, pad...)
				}
			}
		case CfgQueries61:
			for _, q := range []string{fig8Q3, fig8Q4, fig8Q5, fig8Q6, fig8Q7} {
				if _, err := tb.C.PT.Install(q); err != nil {
					runErr = err
					return
				}
			}
		case CfgQueries62:
			for _, q := range []string{fig9QRPC, fig9QDNQueue, fig9QDNXfer} {
				if _, err := tb.C.PT.Install(q); err != nil {
					runErr = err
					return
				}
			}
		}

		for _, w := range ws {
			w.Start()
		}
		env.Sleep(cfg.Duration)
		for op, w := range ws {
			lat[op] = w.Rec.Mean()
			counts[op] = w.Rec.Count()
		}
	})
	if runErr != nil {
		return nil, nil, runErr
	}
	return lat, counts, nil
}

// Render produces the Table 5 analog: overhead percentages per config/op.
func (r *Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("=== Table 5: latency overheads for the HDFS stress test ===\n")
	header := append([]string{"configuration"}, Ops...)
	var rows [][]string
	for _, config := range Configs {
		row := []string{config}
		for _, op := range Ops {
			row = append(row, fmt.Sprintf("%+.1f%%", r.Overhead[config][op]))
		}
		rows = append(rows, row)
	}
	b.WriteString(metrics.RenderTable(header, rows))
	b.WriteString("\nmean op latency (unmodified): ")
	for _, op := range Ops {
		fmt.Fprintf(&b, "%s=%s ", op, fmtSeconds(r.Latency[CfgUnmodified][op]))
	}
	b.WriteString("\n")
	return b.String()
}
