// Package spans implements causal span capture and request-DAG
// reconstruction: the observability companion to Pivot Tracing's
// happened-before joins.
//
// Every tracepoint crossing of a request (when capture is enabled) emits one
// fixed-size span record. Causality rides in the baggage's reserved trace
// slot (baggage.TraceSlot) as a FRONTIER set of (trace, span, start) tuples:
// a crossing unpacks the frontier to learn its parents, mints its own span
// id, and packs itself as the new frontier. Split freezes the frontier per
// branch and Join unions the branch frontiers, so fan-out and fan-in are
// preserved in the recorded parent edges — the reconstruction below recovers
// the request's causal DAG, not just a chain.
//
// Span ids are minted locally (no coordination): a splitmix64 finalizer over
// a per-recorder seed plus a counter. The finalizer is a bijection on
// uint64, so recorders with disjoint (seed + counter) ranges — the agent
// seeds each recorder with procID<<32 — can never collide.
package spans

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/baggage"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Span is one tracepoint crossing of one request: a fixed-size record.
// Start is the crossing's virtual-time instant; Duration is the elapsed
// virtual time since the causally-latest parent crossing — the cost of the
// execution segment that ended here, attributable to this span's process.
type Span struct {
	TraceID    uint64
	SpanID     uint64
	Parents    []uint64 // parent span ids (the baggage frontier at crossing)
	Tracepoint string
	Host       string
	ProcName   string
	Start      time.Duration
	Duration   time.Duration
}

// mix is the splitmix64 finalizer: a bijection on uint64 with good
// avalanche, so sequential counters become well-distributed unique ids.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Recorder captures spans at tracepoint crossings into a bounded ring. It
// implements tracepoint.SpanSink; the agent attaches it via
// Registry.SetSpanSink and drains it on every flush. When the ring is full
// the oldest span is overwritten and counted dropped — capture is strictly
// best-effort and must never grow without bound.
type Recorder struct {
	seed    uint64
	counter atomic.Uint64

	mu      sync.Mutex
	ring    []Span
	head    int // oldest element when the ring is full
	dropped int64

	captured atomic.Int64
}

// NewRecorder returns a recorder minting ids from seed with a ring of the
// given capacity (minimum 1).
func NewRecorder(seed uint64, capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{seed: seed, ring: make([]Span, 0, capacity)}
}

// TracepointCrossed records one span for the crossing. Crossings without
// baggage are skipped: spans are request-scoped, and an execution that
// carries no baggage has no causal identity to record.
func (r *Recorder) TracepointCrossed(ctx context.Context, tpName string) {
	bag := baggage.FromContext(ctx)
	if bag == nil {
		return
	}
	now := tracepoint.Now(ctx)
	id := mix(r.seed + r.counter.Add(1))

	var (
		traceID uint64
		parents []uint64
		latest  = time.Duration(-1)
	)
	frontier := bag.Unpack(baggage.TraceSlot)
	if len(frontier) == 0 {
		// Root crossing: the first span's id names the trace.
		traceID = id
	} else {
		for _, t := range frontier {
			if len(t) != 3 {
				continue
			}
			traceID = uint64(t[0].Int())
			parents = append(parents, uint64(t[1].Int()))
			if s := time.Duration(t[2].Int()); s > latest {
				latest = s
			}
		}
		if traceID == 0 && len(parents) == 0 {
			traceID = id
		}
	}
	var dur time.Duration
	if latest >= 0 && now > latest {
		dur = now - latest
	}
	// Advance the frontier: this span becomes the branch's causal tip. The
	// pack goes through the budget machinery for uniformity, but the trace
	// slot is excluded from budget accounting so it can never evict (or be
	// evicted by) query data.
	bag.PackBudgeted(baggage.TraceSlot, baggage.TraceSpec, baggage.Budget{},
		tuple.Tuple{tuple.Int(int64(traceID)), tuple.Int(int64(id)), tuple.Int(int64(now))})

	info := tracepoint.ProcFromContext(ctx)
	r.push(Span{
		TraceID:    traceID,
		SpanID:     id,
		Parents:    parents,
		Tracepoint: tpName,
		Host:       info.Host,
		ProcName:   info.ProcName,
		Start:      now,
		Duration:   dur,
	})
}

func (r *Recorder) push(sp Span) {
	r.captured.Add(1)
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, sp)
	} else {
		r.ring[r.head] = sp
		r.head = (r.head + 1) % len(r.ring)
		r.dropped++
	}
	r.mu.Unlock()
}

// Drain removes and returns all buffered spans in arrival order.
func (r *Recorder) Drain() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) == 0 {
		return nil
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	r.ring = r.ring[:0]
	r.head = 0
	return out
}

// Captured returns the total spans recorded (including ones later
// overwritten in the ring).
func (r *Recorder) Captured() int64 { return r.captured.Load() }

// Dropped returns the spans overwritten before a drain could ship them.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Builder accumulates spans (from any process, in any order, with
// duplicates) and reconstructs per-request DAGs on demand. Add is
// idempotent by (trace, span) id, so retention replay of a batch is
// harmless, and reconstruction tolerates missing parents — orphaned spans
// are adopted under a synthetic root rather than lost.
type Builder struct {
	mu     sync.Mutex
	traces map[uint64]map[uint64]Span
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{traces: make(map[uint64]map[uint64]Span)}
}

// Add records one span. Duplicate (trace, span) ids are ignored: the first
// copy wins, making replayed batches idempotent.
func (b *Builder) Add(sp Span) {
	b.mu.Lock()
	defer b.mu.Unlock()
	tr, ok := b.traces[sp.TraceID]
	if !ok {
		tr = make(map[uint64]Span)
		b.traces[sp.TraceID] = tr
	}
	if _, dup := tr[sp.SpanID]; dup {
		return
	}
	tr[sp.SpanID] = sp
}

// AddBatch records every span in the batch.
func (b *Builder) AddBatch(sps []Span) {
	for _, sp := range sps {
		b.Add(sp)
	}
}

// TraceIDs returns the known trace ids, sorted.
func (b *Builder) TraceIDs() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]uint64, 0, len(b.traces))
	for id := range b.traces {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of known traces.
func (b *Builder) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.traces)
}

// Node is one span in a reconstructed DAG, with resolved parent and child
// edges (after transitive reduction).
type Node struct {
	Span
	Parents  []*Node
	Children []*Node
}

// Finish returns the crossing instant — spans measure the segment *ending*
// at the crossing, so a node finishes at its Start.
func (n *Node) Finish() time.Duration { return n.Start }

// Trace is one request's reconstructed causal DAG.
type Trace struct {
	ID uint64
	// Root is the tree/DAG entry point. When the true root span was lost
	// (or the trace has several independent roots), Root is a synthetic
	// node with SpanID 0 adopting them, and Synthetic is set.
	Root      *Node
	Synthetic bool
	// Nodes holds every real span's node, ordered by (Start, SpanID).
	Nodes []*Node
	// Orphans counts spans whose recorded parents were all missing — they
	// were adopted under the synthetic root.
	Orphans int
}

// Trace reconstructs the DAG for one trace id, or returns nil if unknown.
//
// Reconstruction invariants:
//   - idempotent: duplicates were already dropped by Add, and the result is
//     a pure function of the stored span set (arrival order is irrelevant);
//   - loss-tolerant: parent ids that never arrived are ignored; a span left
//     with no resolvable parent but a non-empty parent list is an orphan
//     and is adopted under a synthetic root;
//   - transitively reduced: the baggage frontier can name an ancestor
//     alongside the true parent (a frozen pre-split instance survives the
//     join merge), so an edge u→v is dropped when u is an ancestor of
//     another parent of v.
func (b *Builder) Trace(id uint64) *Trace {
	b.mu.Lock()
	stored, ok := b.traces[id]
	if !ok {
		b.mu.Unlock()
		return nil
	}
	spans := make([]Span, 0, len(stored))
	for _, sp := range stored {
		spans = append(spans, sp)
	}
	b.mu.Unlock()

	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].SpanID < spans[j].SpanID
	})
	nodes := make(map[uint64]*Node, len(spans))
	tr := &Trace{ID: id, Nodes: make([]*Node, 0, len(spans))}
	for _, sp := range spans {
		n := &Node{Span: sp}
		nodes[sp.SpanID] = n
		tr.Nodes = append(tr.Nodes, n)
	}

	// Resolve parent edges, applying transitive reduction over the ids
	// (ancestor sets are memoized over the raw recorded edges).
	anc := newAncestry(stored)
	var roots, orphans []*Node
	for _, n := range tr.Nodes {
		for _, pid := range n.Span.Parents {
			p, ok := nodes[pid]
			if !ok {
				continue // parent span lost: tolerate
			}
			if redundant(n.Span.Parents, pid, anc) {
				continue
			}
			n.Parents = append(n.Parents, p)
			p.Children = append(p.Children, n)
		}
		if len(n.Parents) == 0 {
			if len(n.Span.Parents) > 0 {
				orphans = append(orphans, n)
			} else {
				roots = append(roots, n)
			}
		}
	}
	tr.Orphans = len(orphans)

	entry := append(roots, orphans...)
	if len(entry) == 1 && len(orphans) == 0 {
		tr.Root = entry[0]
		return tr
	}
	// Lost root, multiple roots, or orphaned subtrees: adopt everything
	// parentless under a synthetic root so nothing is dropped from view.
	syn := &Node{Span: Span{TraceID: id, Tracepoint: "(root)"}}
	if len(entry) > 0 {
		syn.Span.Start = entry[0].Start
	}
	for _, n := range entry {
		n.Parents = append(n.Parents, syn)
		syn.Children = append(syn.Children, n)
	}
	tr.Root = syn
	tr.Synthetic = true
	return tr
}

// ancestry memoizes transitive ancestor sets over recorded parent edges.
type ancestry struct {
	spans map[uint64]Span
	memo  map[uint64]map[uint64]bool
}

func newAncestry(spans map[uint64]Span) *ancestry {
	return &ancestry{spans: spans, memo: make(map[uint64]map[uint64]bool)}
}

// ancestors returns the transitive ancestors of id (excluding id itself).
func (a *ancestry) ancestors(id uint64) map[uint64]bool {
	if s, ok := a.memo[id]; ok {
		return s
	}
	s := make(map[uint64]bool)
	a.memo[id] = s // break cycles defensively; recorded edges are acyclic
	sp, ok := a.spans[id]
	if !ok {
		return s
	}
	for _, pid := range sp.Parents {
		s[pid] = true
		for anc := range a.ancestors(pid) {
			s[anc] = true
		}
	}
	return s
}

// redundant reports whether the edge pid→child is implied by another parent
// (pid is an ancestor of a sibling parent).
func redundant(parents []uint64, pid uint64, anc *ancestry) bool {
	for _, other := range parents {
		if other == pid {
			continue
		}
		if anc.ancestors(other)[pid] {
			return true
		}
	}
	return false
}

// CriticalPath returns the trace's longest causal chain by finish time:
// starting from the node with the latest finish, walk back through the
// latest-finishing parent to a root. The path is returned root-first, and
// excludes a synthetic root.
func (t *Trace) CriticalPath() []*Node {
	if len(t.Nodes) == 0 {
		return nil
	}
	last := t.Nodes[0]
	for _, n := range t.Nodes[1:] {
		if n.Finish() > last.Finish() {
			last = n
		}
	}
	var rev []*Node
	for n := last; n != nil && n.SpanID != 0; {
		rev = append(rev, n)
		var next *Node
		for _, p := range n.Parents {
			if p.SpanID == 0 {
				continue
			}
			if next == nil || p.Finish() > next.Finish() {
				next = p
			}
		}
		n = next
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// TierLatency attributes the critical path's time to process tiers: each
// critical-path span's Duration — the segment ending at its crossing — is
// charged to its own process. The map's values sum to (approximately) the
// end-to-end critical-path latency; time before the root crossing is not
// observable and not charged.
func (t *Trace) TierLatency() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, n := range t.CriticalPath() {
		out[n.ProcName] += n.Duration
	}
	return out
}

// Latency returns the end-to-end virtual-time latency of the trace: latest
// finish minus earliest start.
func (t *Trace) Latency() time.Duration {
	if len(t.Nodes) == 0 {
		return 0
	}
	min, max := t.Nodes[0].Start, t.Nodes[0].Finish()
	for _, n := range t.Nodes[1:] {
		if n.Start < min {
			min = n.Start
		}
		if f := n.Finish(); f > max {
			max = f
		}
	}
	return max - min
}

// RenderTree renders the trace as an indented tree with per-span timings:
//
//	trace 00000000deadbeef · 5 spans · 3 tiers · 1.2ms
//	└─ client.request  [client@host-0]  @0s
//	   ├─ server.recv  [server@host-1]  @200µs +200µs
//	   ...
//
// A node reached by several parents (a join) is rendered under its first
// parent and referenced by id elsewhere. Timestamps are relative to the
// trace's earliest crossing, so wall-clock and virtual-clock traces read
// the same way.
func (t *Trace) RenderTree() string {
	var b strings.Builder
	procs := map[string]bool{}
	var t0 time.Duration
	for i, n := range t.Nodes {
		procs[n.ProcName] = true
		if i == 0 || n.Start < t0 {
			t0 = n.Start
		}
	}
	fmt.Fprintf(&b, "trace %016x · %d spans · %d tiers · %s\n",
		t.ID, len(t.Nodes), len(procs), t.Latency())
	if t.Root == nil {
		return b.String()
	}
	seen := map[uint64]bool{}
	var walk func(n *Node, prefix string, isLast bool)
	walk = func(n *Node, prefix string, isLast bool) {
		branch, childPrefix := "├─ ", prefix+"│  "
		if isLast {
			branch, childPrefix = "└─ ", prefix+"   "
		}
		if seen[n.SpanID] {
			fmt.Fprintf(&b, "%s%s(join → %s #%x)\n", prefix, branch, n.Tracepoint, n.SpanID&0xffff)
			return
		}
		seen[n.SpanID] = true
		if n.SpanID == 0 {
			fmt.Fprintf(&b, "%s%s%s\n", prefix, branch, n.Tracepoint)
		} else {
			fmt.Fprintf(&b, "%s%s%s  [%s@%s]  @%s", prefix, branch, n.Tracepoint, n.ProcName, n.Host, n.Start-t0)
			if n.Duration > 0 {
				fmt.Fprintf(&b, " +%s", n.Duration)
			}
			if len(n.Parents) > 1 {
				fmt.Fprintf(&b, "  (join ×%d)", len(n.Parents))
			}
			b.WriteByte('\n')
		}
		kids := append([]*Node(nil), n.Children...)
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Start != kids[j].Start {
				return kids[i].Start < kids[j].Start
			}
			return kids[i].SpanID < kids[j].SpanID
		})
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1)
		}
	}
	walk(t.Root, "", true)
	return b.String()
}

// Summary renders a one-line-per-trace table over the builder's traces:
// trace id, span count, tier count, end-to-end latency, critical-path
// time, and the dominant tier with its share of the critical path.
func (b *Builder) Summary() string {
	ids := b.TraceIDs()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %6s %6s %12s %12s  %s\n", "TRACE", "SPANS", "TIERS", "LATENCY", "CRIT", "DOMINANT TIER")
	for _, id := range ids {
		t := b.Trace(id)
		if t == nil {
			continue
		}
		procs := map[string]bool{}
		for _, n := range t.Nodes {
			procs[n.ProcName] = true
		}
		var domTier string
		var domLat, total time.Duration
		for tier, lat := range t.TierLatency() {
			total += lat
			if lat > domLat || (lat == domLat && (domTier == "" || tier < domTier)) {
				domTier, domLat = tier, lat
			}
		}
		dom := "-"
		if domTier != "" && total > 0 {
			dom = fmt.Sprintf("%s (%d%%)", domTier, int(100*domLat/total))
		}
		fmt.Fprintf(&sb, "%016x %6d %6d %12s %12s  %s\n",
			t.ID, len(t.Nodes), len(procs), t.Latency(), total, dom)
	}
	return sb.String()
}
