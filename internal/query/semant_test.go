package query

import (
	"strings"
	"testing"

	"repro/internal/tracepoint"
)

// testRegistry defines the tracepoints used by the paper queries.
func testRegistry() *tracepoint.Registry {
	reg := tracepoint.NewRegistry()
	reg.Define("DataNodeMetrics.incrBytesRead", "delta")
	reg.Define("ClientProtocols") // procName is a default export
	reg.Define("DN.DataTransferProtocol", "op", "size")
	reg.Define("NN.GetBlockLocations", "src", "replicas")
	reg.Define("StressTest.DoNextOp", "op")
	reg.Define("SendResponse")
	reg.Define("ReceiveRequest")
	reg.Define("JobComplete", "id")
	return reg
}

func mustParse(t *testing.T, text string) *Query {
	t.Helper()
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestAnalyzePaperQueries(t *testing.T) {
	reg := testRegistry()
	named := map[string]*Query{}
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9"} {
		q := mustParse(t, paperQueries[name])
		q.Name = name
		if _, err := Analyze(q, reg, named); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		named[name] = q // Q9 references Q8
	}
}

func TestAnalyzeResolvesSubquery(t *testing.T) {
	reg := testRegistry()
	q8 := mustParse(t, paperQueries["Q8"])
	q8.Name = "Q8"
	named := map[string]*Query{"Q8": q8}
	q9 := mustParse(t, paperQueries["Q9"])
	a, err := Analyze(q9, reg, named)
	if err != nil {
		t.Fatal(err)
	}
	if q9.Joins[0].Source.Subquery != "Q8" || q9.Joins[0].Source.Tracepoint != "" {
		t.Errorf("source not resolved to subquery: %+v", q9.Joins[0].Source)
	}
	if a.Subqueries["latencyMeasurement"] != q8 {
		t.Error("analysis should record the subquery binding")
	}
	// Q9's "-> end" resolves to the From alias.
	if q9.Joins[0].Right != "job" {
		t.Errorf("end resolved to %q, want job", q9.Joins[0].Right)
	}
}

func TestAnalyzeUnknownTracepoint(t *testing.T) {
	q := mustParse(t, `From e In NoSuch.Tracepoint Select e.host`)
	_, err := Analyze(q, testRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "unknown tracepoint") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeUnknownField(t *testing.T) {
	q := mustParse(t, `From e In ClientProtocols Select e.bogus`)
	_, err := Analyze(q, testRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "does not export") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeDefaultExportsResolve(t *testing.T) {
	q := mustParse(t, `From e In ClientProtocols GroupBy e.host Select e.host, COUNT`)
	if _, err := Analyze(q, testRegistry(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeUnknownAliasInJoin(t *testing.T) {
	q := mustParse(t, `From e In ClientProtocols Join d In SendResponse On d -> zzz Select COUNT`)
	_, err := Analyze(q, testRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "unknown alias") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeWrongJoinDirection(t *testing.T) {
	// "On e -> d" says the new alias d happens after e, which baggage
	// cannot evaluate — the analyzer explains how to fix it.
	q := mustParse(t, `From e In ClientProtocols Join d In SendResponse On e -> d Select COUNT`)
	_, err := Analyze(q, testRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "causally precede") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeDuplicateAlias(t *testing.T) {
	q := mustParse(t, `From e In ClientProtocols Join e In SendResponse On e -> e Select COUNT`)
	if _, err := Analyze(q, testRegistry(), nil); err == nil {
		t.Fatal("duplicate alias should fail")
	}
}

func TestAnalyzeNonGroupedOutput(t *testing.T) {
	q := mustParse(t, `From e In DN.DataTransferProtocol GroupBy e.host Select e.op, COUNT`)
	_, err := Analyze(q, testRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "GroupBy field") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeUnionSchemaMismatch(t *testing.T) {
	q := mustParse(t, `From e In ClientProtocols, DN.DataTransferProtocol Select COUNT`)
	_, err := Analyze(q, testRegistry(), nil)
	if err == nil || !strings.Contains(err.Error(), "different variables") {
		t.Fatalf("err = %v", err)
	}
}

func TestAnalyzeUnionOK(t *testing.T) {
	reg := testRegistry()
	reg.Define("DataRPCs", "size")
	reg.Define("ControlRPCs", "size")
	q := mustParse(t, `From e In DataRPCs, ControlRPCs Where e.size < 10 GroupBy e.host Select e.host, COUNT`)
	if _, err := Analyze(q, reg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeTemporalFilterOnFromRejected(t *testing.T) {
	q := mustParse(t, `From e In First(ClientProtocols) Select COUNT`)
	if _, err := Analyze(q, testRegistry(), nil); err == nil {
		t.Fatal("temporal filter on From source should fail")
	}
}

func TestAnalyzeQueryAsFromSourceRejected(t *testing.T) {
	q8 := mustParse(t, paperQueries["Q8"])
	named := map[string]*Query{"Q8": q8}
	q := mustParse(t, `From e In Q8 Select COUNT`)
	if _, err := Analyze(q, testRegistry(), named); err == nil {
		t.Fatal("query as From source should fail")
	}
}

func TestAnalyzeBareAliasNeedsSingleColumnSubquery(t *testing.T) {
	reg := testRegistry()
	q8 := mustParse(t, paperQueries["Q8"])
	q8.Name = "Q8"
	named := map[string]*Query{"Q8": q8}

	// OK: Q8 has one output column.
	ok := mustParse(t, `From job In JobComplete Join m In Q8 On m -> end GroupBy job.id Select job.id, AVERAGE(m)`)
	if _, err := Analyze(ok, reg, named); err != nil {
		t.Fatal(err)
	}
	// Bad: bare reference to a tracepoint alias.
	bad := mustParse(t, `From job In JobComplete Select AVERAGE(job)`)
	if _, err := Analyze(bad, reg, named); err == nil {
		t.Fatal("bare tracepoint alias should fail")
	}
}

func TestOutputSchemaNames(t *testing.T) {
	q := mustParse(t, `From e In DN.DataTransferProtocol GroupBy e.host Select e.host, COUNT, SUM(e.size)`)
	got := OutputSchema(q)
	want := []string{"host", "COUNT", "SUM(size)"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OutputSchema = %v, want %v", got, want)
		}
	}
	q8 := mustParse(t, paperQueries["Q8"])
	if s := OutputSchema(q8); len(s) != 1 || s[0] != "_1" {
		t.Fatalf("Q8 OutputSchema = %v", s)
	}
}

func TestResolveRef(t *testing.T) {
	reg := testRegistry()
	q := mustParse(t, paperQueries["Q2"])
	a, err := Analyze(q, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// procName is a default export, at position 2.
	if pos := a.ResolveRef(FieldRef{Alias: "cl", Field: "procName"}); pos != 2 {
		t.Errorf("procName pos = %d, want 2", pos)
	}
	if pos := a.ResolveRef(FieldRef{Alias: "incr", Field: "host"}); pos != 0 {
		t.Errorf("host pos = %d, want 0", pos)
	}
	if pos := a.ResolveRef(FieldRef{Alias: "sub"}); pos != 0 {
		t.Errorf("bare ref pos = %d, want 0", pos)
	}
}
