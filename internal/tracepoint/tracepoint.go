// Package tracepoint implements Pivot Tracing's tracepoints: named locations
// in system code where instrumentation (advice) can be woven and unwoven at
// runtime.
//
// The paper's Java prototype rewrites method bytecode dynamically. Go has no
// runtime code rewriting, so this implementation uses compile-time hooks: the
// instrumented system calls Tracepoint.Here at the locations a tracepoint
// identifies. Which advice runs — and whether anything at all happens — is
// fully dynamic. A tracepoint with no woven advice costs a single atomic
// pointer load (the paper's "zero overhead when disabled" property, modulo
// the conditional check discussed in its §8 for hard-coded tracepoints).
package tracepoint

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/tuple"
)

// DefaultExports are the variables every tracepoint exports in addition to
// its declared exports (§3 of the paper).
var DefaultExports = tuple.Schema{"host", "time", "procName", "procId", "tracepoint"}

// Advice is instrumentation woven at a tracepoint. Implementations live in
// package advice; the interface keeps this package dependency-free.
type Advice interface {
	// Invoke runs the advice for one tracepoint crossing. vals holds the
	// full exported tuple (defaults then declared exports) in the
	// tracepoint's schema order. vals is only valid for the duration of
	// the call — it is recycled by the tracepoint after every woven advice
	// has run — so implementations that retain values must copy them
	// (e.g. tuple.Tuple.Clone or Project).
	Invoke(ctx context.Context, vals tuple.Tuple)
}

// PanicSink is optionally implemented by advice that wants to observe its
// own panics recovered at the Here boundary — the advice circuit breaker
// uses it to count faults toward quarantine. The sink runs inside the
// recover path and must not panic itself.
type PanicSink interface {
	AdvicePanicked(tpName string, recovered any)
}

// SpanSink observes every Here crossing of a tracepoint, woven or not —
// the hook span capture attaches via Registry.SetSpanSink. While no sink
// is attached (the default), the disabled fast path pays one extra atomic
// nil-load; the sink itself derives everything (baggage, process identity,
// clock) from ctx, so nothing is computed when span capture is off.
type SpanSink interface {
	TracepointCrossed(ctx context.Context, tpName string)
}

// Tracepoint identifies one or more locations in the system code and the
// variables exported there. Tracepoint definitions are not part of system
// code; they are named entry points that queries refer to.
type Tracepoint struct {
	// Name is the query-visible identifier, e.g.
	// "DataNodeMetrics.incrBytesRead".
	Name string
	// Class and Method document the source location the tracepoint refers
	// to, mirroring the paper's tracepoint specifications.
	Class, Method string
	// Exports names the declared exported variables, in the order the
	// instrumented call site passes them to Here.
	Exports tuple.Schema

	schema      tuple.Schema // DefaultExports + Exports
	woven       atomic.Pointer[[]Advice]
	invocations atomic.Int64
	panics      atomic.Int64
	meters      atomic.Pointer[Meters]
	spanSink    atomic.Pointer[SpanSink]

	// pool recycles the schema-width tuple Here materializes per enabled
	// fire, so steady-state enabled crossings allocate nothing for it.
	// Safe because Advice.Invoke must not retain vals (see Advice).
	pool sync.Pool // *pooledTuple
}

// pooledTuple wraps the recycled fire tuple so the pool round-trips one
// stable pointer instead of allocating a fresh slice header per Put.
type pooledTuple struct{ t tuple.Tuple }

// Meters are a tracepoint's self-telemetry instruments, attached by
// Registry.SetTelemetry. While unattached (the default), the disabled
// Here fast path stays a single atomic load; attached, it costs one more.
type Meters struct {
	Hits   *telemetry.Counter // Here crossings, whether or not advice ran
	Weaves *telemetry.Counter // advice installations at this tracepoint
	Panics *telemetry.Counter // advice panics recovered at the Here boundary
}

// Schema returns the full exported schema: default exports then declared.
func (tp *Tracepoint) Schema() tuple.Schema { return tp.schema }

// Enabled reports whether any advice is currently woven.
func (tp *Tracepoint) Enabled() bool {
	list := tp.woven.Load()
	return list != nil && len(*list) > 0
}

// Invocations returns how many times Here has executed advice.
func (tp *Tracepoint) Invocations() int64 { return tp.invocations.Load() }

// Panics returns how many advice panics this tracepoint has recovered.
func (tp *Tracepoint) Panics() int64 { return tp.panics.Load() }

// Here is the hook the instrumented system calls when execution reaches the
// tracepoint. vals are the declared exports, in Exports order; missing
// trailing values are null. When no advice is woven the call returns
// immediately after one atomic load, without materializing a tuple.
func (tp *Tracepoint) Here(ctx context.Context, vals ...any) {
	list := tp.woven.Load()
	if list == nil || len(*list) == 0 {
		if m := tp.meters.Load(); m != nil {
			m.Hits.Inc()
		}
		if s := tp.spanSink.Load(); s != nil {
			(*s).TracepointCrossed(ctx, tp.Name)
		}
		return
	}
	if m := tp.meters.Load(); m != nil {
		m.Hits.Inc()
	}
	if s := tp.spanSink.Load(); s != nil {
		(*s).TracepointCrossed(ctx, tp.Name)
	}
	tp.invocations.Add(1)
	p, _ := tp.pool.Get().(*pooledTuple)
	if p == nil || len(p.t) != len(tp.schema) {
		p = &pooledTuple{t: make(tuple.Tuple, len(tp.schema))}
	}
	full := p.t
	info := ProcFromContext(ctx)
	full[0] = tuple.String(info.Host)
	full[1] = tuple.Int(int64(Now(ctx)))
	full[2] = tuple.String(info.ProcName)
	full[3] = tuple.Int(info.ProcID)
	full[4] = tuple.String(tp.Name)
	for i := range tp.Exports {
		if i < len(vals) {
			full[len(DefaultExports)+i] = tuple.Of(vals[i])
		}
	}
	for _, a := range *list {
		tp.invoke(ctx, a, full)
	}
	// Clear before pooling: stale values must not leak into the next fire
	// (positions past len(vals) are expected to read null) and pooled
	// string references must not pin application memory.
	clear(full)
	tp.pool.Put(p)
}

// invoke runs one advice behind a recover boundary: advice is the only
// untrusted code the tracer injects into the application's request path,
// and a panic there must never take the application down (the paper's
// §3.3 safety promise). Recovered panics are counted and handed to the
// advice's PanicSink, which is how the circuit breaker learns of faults.
func (tp *Tracepoint) invoke(ctx context.Context, a Advice, full tuple.Tuple) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		tp.panics.Add(1)
		if m := tp.meters.Load(); m != nil {
			m.Panics.Inc()
		}
		if s, ok := a.(PanicSink); ok {
			s.AdvicePanicked(tp.Name, r)
		}
	}()
	a.Invoke(ctx, full)
}

// Registry holds the tracepoints of one monitored deployment. Tracepoints
// can be defined at any time; queries are resolved against the registry.
type Registry struct {
	mu    sync.Mutex
	tps   map[string]*Tracepoint
	hooks []func(*Tracepoint)

	tel      *telemetry.Registry
	spanSink *SpanSink
	weaveNS  atomic.Pointer[telemetry.Histogram]
}

// SetSpanSink attaches a span sink to the registry: every tracepoint,
// existing and future, reports its Here crossings to s. Passing nil
// detaches the sink, restoring the single-load disabled fast path.
func (r *Registry) SetSpanSink(s SpanSink) {
	var p *SpanSink
	if s != nil {
		p = &s
	}
	r.mu.Lock()
	r.spanSink = p
	existing := make([]*Tracepoint, 0, len(r.tps))
	for _, tp := range r.tps {
		existing = append(existing, tp)
	}
	r.mu.Unlock()
	for _, tp := range existing {
		tp.spanSink.Store(p)
	}
}

// SetTelemetry attaches self-telemetry to the registry: every tracepoint,
// existing and future, gets hit/weave counters ("tracepoint.hits.<name>",
// "tracepoint.weaves.<name>"), and weave latency is recorded in the
// "tracepoint.weave.ns" histogram.
func (r *Registry) SetTelemetry(t *telemetry.Registry) {
	r.mu.Lock()
	r.tel = t
	existing := make([]*Tracepoint, 0, len(r.tps))
	for _, tp := range r.tps {
		existing = append(existing, tp)
	}
	r.mu.Unlock()
	r.weaveNS.Store(t.Histogram("tracepoint.weave.ns"))
	for _, tp := range existing {
		tp.meters.Store(metersFor(t, tp.Name))
	}
}

func metersFor(t *telemetry.Registry, name string) *Meters {
	return &Meters{
		Hits:   t.Counter("tracepoint.hits." + name),
		Weaves: t.Counter("tracepoint.weaves." + name),
		Panics: t.Counter("tracepoint.panics." + name),
	}
}

// OnDefine registers a callback invoked whenever a new tracepoint is
// defined (and immediately for all existing tracepoints). Pivot Tracing
// agents use it to weave standing queries into tracepoints that appear
// after query installation.
func (r *Registry) OnDefine(fn func(*Tracepoint)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	existing := make([]*Tracepoint, 0, len(r.tps))
	for _, tp := range r.tps {
		existing = append(existing, tp)
	}
	r.mu.Unlock()
	for _, tp := range existing {
		fn(tp)
	}
}

// NewRegistry returns an empty tracepoint registry.
func NewRegistry() *Registry {
	return &Registry{tps: make(map[string]*Tracepoint)}
}

// Define registers a tracepoint. Defining the same name twice returns the
// existing tracepoint if the exports match and panics otherwise (a
// conflicting definition is a programming error in the instrumented
// system).
func (r *Registry) Define(name string, exports ...string) *Tracepoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tp, ok := r.tps[name]; ok {
		if !tp.Exports.Equal(tuple.Schema(exports)) {
			panic(fmt.Sprintf("tracepoint: conflicting definition of %q", name))
		}
		return tp
	}
	for _, e := range exports {
		if DefaultExports.Index(e) >= 0 {
			panic(fmt.Sprintf("tracepoint: %q export %q shadows a default export", name, e))
		}
	}
	tp := &Tracepoint{
		Name:    name,
		Exports: tuple.Schema(exports),
		schema:  DefaultExports.Concat(tuple.Schema(exports)),
	}
	if r.tel != nil {
		tp.meters.Store(metersFor(r.tel, name))
	}
	if r.spanSink != nil {
		tp.spanSink.Store(r.spanSink)
	}
	r.tps[name] = tp
	var hooks []func(*Tracepoint)
	hooks = append(hooks, r.hooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn(tp)
	}
	r.mu.Lock()
	return tp
}

// Lookup returns the named tracepoint, or nil.
func (r *Registry) Lookup(name string) *Tracepoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tps[name]
}

// Names returns all defined tracepoint names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.tps))
	for name := range r.tps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Weave installs advice at the named tracepoint. It returns an error if the
// tracepoint is not defined.
func (r *Registry) Weave(name string, a Advice) error {
	tp := r.Lookup(name)
	if tp == nil {
		return fmt.Errorf("tracepoint: weave into undefined tracepoint %q", name)
	}
	h := r.weaveNS.Load()
	var start time.Time
	if h != nil {
		start = time.Now()
	}
	tp.weave(a)
	if h != nil {
		h.Observe(int64(time.Since(start)))
	}
	if m := tp.meters.Load(); m != nil {
		m.Weaves.Inc()
	}
	return nil
}

// Unweave removes previously woven advice from the named tracepoint.
func (r *Registry) Unweave(name string, a Advice) {
	if tp := r.Lookup(name); tp != nil {
		tp.unweave(a)
	}
}

func (tp *Tracepoint) weave(a Advice) {
	for {
		old := tp.woven.Load()
		var list []Advice
		if old != nil {
			list = append(list, *old...)
		}
		list = append(list, a)
		if tp.woven.CompareAndSwap(old, &list) {
			return
		}
	}
}

func (tp *Tracepoint) unweave(a Advice) {
	for {
		old := tp.woven.Load()
		if old == nil {
			return
		}
		list := make([]Advice, 0, len(*old))
		for _, x := range *old {
			if x != a {
				list = append(list, x)
			}
		}
		var next *[]Advice
		if len(list) > 0 {
			next = &list
		}
		if tp.woven.CompareAndSwap(old, next) {
			return
		}
	}
}

// ProcInfo identifies the simulated process an execution is running in,
// supplying the tracepoint default exports.
type ProcInfo struct {
	Host     string
	ProcName string
	ProcID   int64
}

type procKey struct{}

// WithProc attaches process identity to a context.
func WithProc(ctx context.Context, info ProcInfo) context.Context {
	return context.WithValue(ctx, procKey{}, info)
}

// ProcFromContext returns the process identity attached to ctx, or zero.
func ProcFromContext(ctx context.Context) ProcInfo {
	info, _ := ctx.Value(procKey{}).(ProcInfo)
	return info
}

// Clock abstracts the time source for the "time" default export, so
// simulated deployments report virtual time and real deployments report
// wall-clock time.
type Clock interface {
	Now() time.Duration
}

type clockKey struct{}

// WithClock attaches a clock to a context.
func WithClock(ctx context.Context, c Clock) context.Context {
	return context.WithValue(ctx, clockKey{}, c)
}

// Now reads the context's clock, falling back to wall-clock time since the
// Unix epoch.
func Now(ctx context.Context) time.Duration {
	if c, ok := ctx.Value(clockKey{}).(Clock); ok {
		return c.Now()
	}
	return time.Duration(time.Now().UnixNano())
}
