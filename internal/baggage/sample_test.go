package baggage

import (
	"testing"

	"repro/internal/tuple"
)

func TestSampleDecisionSurvivesSplitJoinTransfer(t *testing.T) {
	b := New()
	b.PackSampleDecision("q1", 0.25)
	b.PackSampleDecision("q2", 0) // suppressed

	l, r := b.Split()
	// A serialized process transfer on one branch.
	l = Deserialize(l.Serialize())
	j := Join(l, r)

	if rate, ok := j.SampleRate("q1"); !ok || rate != 0.25 {
		t.Fatalf("q1 decision after split/transfer/join = (%v, %v), want (0.25, true)", rate, ok)
	}
	if rate, ok := j.SampleRate("q2"); !ok || rate != 0 {
		t.Fatalf("q2 decision = (%v, %v), want (0, true)", rate, ok)
	}
	if _, ok := j.SampleRate("q3"); ok {
		t.Fatal("undeclared query has a decision")
	}
	var nilBag *Baggage
	if _, ok := nilBag.SampleRate("q1"); ok {
		t.Fatal("nil baggage has a decision")
	}
}

func TestSampleSlotExcludedFromBudget(t *testing.T) {
	b := New()
	b.PackSampleDecision("q", 0.5)
	spec := SetSpec{Kind: All, Fields: tuple.Schema{"v"}}
	// A budget of one tuple: the query's own data must be what gets
	// evicted/capped, never the sample decision.
	st := b.PackBudgeted("q.a", spec, Budget{MaxTuples: 1},
		tuple.Tuple{tuple.Int(1)}, tuple.Tuple{tuple.Int(2)})
	if st.Packed != 2 {
		t.Fatalf("packed %d, want 2", st.Packed)
	}
	if rate, ok := b.SampleRate("q"); !ok || rate != 0.5 {
		t.Fatalf("decision lost under budget pressure: (%v, %v)", rate, ok)
	}
	for _, d := range b.DropRecords("") {
		if d.Slot == SampleSlot {
			t.Fatalf("sample slot was evicted: %+v", d)
		}
	}
}
