package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/bus"
	"repro/internal/spans"
	"repro/internal/wire"
)

// TestRunDemoRendersTraces drives the -demo path end to end: two scripted
// requests must reconstruct as two trees (one Respond leaf each) plus the
// summary table.
func TestRunDemoRendersTraces(t *testing.T) {
	out, err := runDemo(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Demo.Request", "Demo.Read", "Demo.Respond", "TRACE"} {
		if !strings.Contains(out, want) {
			t.Errorf("demo output missing %q\n%s", want, out)
		}
	}
	if got := strings.Count(out, "trace "); got != 2 {
		t.Errorf("want 2 rendered trees, got %d\n%s", got, out)
	}
}

// TestRunDemoClampsRequests: a request count below one still executes one
// request rather than rendering an empty report.
func TestRunDemoClampsRequests(t *testing.T) {
	out, err := runDemo(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out, "trace "); got != 1 {
		t.Errorf("want exactly 1 trace, got %d\n%s", got, out)
	}
}

// TestCollectLiveReceivesSpans stands up a real pub/sub server, publishes
// span batches from a second bus while collectLive listens passively, and
// checks the reconstructed trace is rendered.
func TestCollectLiveReceivesSpans(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pub := bus.New()
	link, err := bus.Connect(pub, srv.Addr(), wire.BusCodec{},
		[]string{agent.TraceTopic}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()

	batch := agent.SpanBatch{Host: "h0", ProcName: "api", Spans: []spans.Span{
		{TraceID: 7, SpanID: 7, Tracepoint: "Live.Request",
			Host: "h0", ProcName: "api", Start: time.Millisecond},
		{TraceID: 7, SpanID: 8, Parents: []uint64{7}, Tracepoint: "Live.Respond",
			Host: "h0", ProcName: "api", Start: 2 * time.Millisecond, Duration: time.Millisecond},
	}}
	done := make(chan struct{})
	defer close(done)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				pub.Publish(agent.TraceTopic, batch)
			}
		}
	}()

	out, err := collectLive(srv.Addr(), 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Live.Request", "Live.Respond", "TRACE"} {
		if !strings.Contains(out, want) {
			t.Errorf("live output missing %q\n%s", want, out)
		}
	}
}

// TestCollectLiveEmptyWindow: a silent deployment yields a diagnostic
// error, not an empty report.
func TestCollectLiveEmptyWindow(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := collectLive(srv.Addr(), 50*time.Millisecond); err == nil {
		t.Fatal("want error when no spans arrive within the window")
	}
}
