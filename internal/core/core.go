// Package core implements the Pivot Tracing frontend: the component users
// submit queries to (§2.2 of the paper). The frontend parses and compiles
// queries to advice, distributes the advice to per-process agents over the
// message bus, and performs global aggregation of the partial results the
// agents report, exposing a streaming result dataset.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/spans"
	"repro/internal/telemetry"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// PivotTracing is the query frontend.
type PivotTracing struct {
	bus *bus.Bus
	reg *tracepoint.Registry

	mu        sync.Mutex
	installed map[string]*Installed
	named     map[string]*query.Query
	nextID    int
	agents    map[string]*agentHealth

	// tenant/share configure multi-tenant operation (see tenant.go);
	// framesIn counts inbound result frames — the per-frontend load meter.
	tenant   string
	share    int
	framesIn atomic.Int64

	tel           *telemetry.Registry
	reportsMerged *telemetry.Counter
	groupsMerged  *telemetry.Counter
	rawsMerged    *telemetry.Counter
	dropsMerged   *telemetry.Counter
	quarantinesC  *telemetry.Counter
	firstResultNS *telemetry.Histogram

	metaWeave *tracepoint.Tracepoint // "tracepoint.Weave", nil until enabled

	// spanBuilder collects SpanBatch frames into per-request DAGs; nil
	// until EnableTraceCollection. explain holds the latest per-process
	// ExplainStats snapshot keyed by (query, host, proc).
	spanBuilder *spans.Builder
	explainMu   sync.Mutex
	explain     map[explainKey]agent.ExplainStats

	resultsSub    bus.Subscription
	tenantSub     bus.Subscription
	healthSub     bus.Subscription
	statusSub     bus.Subscription
	quarantineSub bus.Subscription
	traceSub      bus.Subscription
}

// explainKey identifies one process's ExplainStats stream for one query.
type explainKey struct {
	query, host, proc string
}

// New creates a frontend bound to the bus and the master tracepoint
// registry (the shared vocabulary of tracepoint definitions).
func New(b *bus.Bus, reg *tracepoint.Registry) *PivotTracing {
	return NewWithOptions(b, reg, Options{})
}

// newFrontend builds the frontend state without any bus subscriptions;
// NewWithOptions wires the subscription set the tenancy options call for.
func newFrontend(b *bus.Bus, reg *tracepoint.Registry) *PivotTracing {
	tel := telemetry.NewRegistry()
	return &PivotTracing{
		bus:           b,
		reg:           reg,
		installed:     make(map[string]*Installed),
		named:         make(map[string]*query.Query),
		agents:        make(map[string]*agentHealth),
		tel:           tel,
		reportsMerged: tel.Counter("core.reports.merged"),
		groupsMerged:  tel.Counter("core.groups.merged"),
		rawsMerged:    tel.Counter("core.raws.merged"),
		dropsMerged:   tel.Counter("core.baggage.drops.merged"),
		quarantinesC:  tel.Counter("core.quarantines"),
		firstResultNS: tel.Histogram("core.install.to.first.ns"),
	}
}

// EnableTraceCollection starts collecting agent-shipped spans into
// per-request DAGs. Explain stats are always collected (they are tiny and
// only flow while agents have span capture enabled); span collection is
// opt-in because trace volume scales with request rate.
func (pt *PivotTracing) EnableTraceCollection() *spans.Builder {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.spanBuilder == nil {
		pt.spanBuilder = spans.NewBuilder()
	}
	return pt.spanBuilder
}

// Traces returns the frontend's span DAG builder, or nil if trace
// collection was never enabled.
func (pt *PivotTracing) Traces() *spans.Builder {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.spanBuilder
}

// onTrace handles TraceTopic frames: span batches feed the DAG builder
// (when enabled), explain snapshots replace the previous one from the same
// (query, host, proc) — counters are cumulative, so latest wins.
func (pt *PivotTracing) onTrace(msg any) {
	switch m := msg.(type) {
	case agent.SpanBatch:
		pt.mu.Lock()
		b := pt.spanBuilder
		pt.mu.Unlock()
		if b != nil {
			b.AddBatch(m.Spans)
		}
	case agent.ExplainStats:
		pt.explainMu.Lock()
		if pt.explain == nil {
			pt.explain = make(map[explainKey]agent.ExplainStats)
		}
		pt.explain[explainKey{m.QueryID, m.Host, m.ProcName}] = m
		pt.explainMu.Unlock()
	}
}

// Registry returns the master tracepoint registry.
func (pt *PivotTracing) Registry() *tracepoint.Registry { return pt.reg }

// Telemetry returns the frontend's metric registry. Callers may attach
// other layers' meters to it (see pivot.EnableSelfTelemetry).
func (pt *PivotTracing) Telemetry() *telemetry.Registry { return pt.tel }

// EnableMetaTracepoints defines the frontend-side meta-tracepoint
// "tracepoint.Weave" (exports: name, query) in the registry and arms it:
// every install crosses it once per woven tracepoint, after the weave
// instructions have been published. Queries over it observe the tracer
// reconfiguring itself.
func (pt *PivotTracing) EnableMetaTracepoints() {
	tp := pt.reg.Define("tracepoint.Weave", "name", "query")
	pt.mu.Lock()
	pt.metaWeave = tp
	pt.mu.Unlock()
}

// Installed is a handle to an installed query: a streaming dataset of
// results plus the compiled plan.
type Installed struct {
	pt   *PivotTracing
	Name string
	Plan *plan.Plan

	mu          sync.Mutex
	global      *advice.Accumulator
	listeners   []func(agent.Report)
	installedAt time.Time
	firstResult time.Duration // install→first-report latency; -1 until set
	reports     int64         // reports merged
	lease       time.Duration // install TTL agents enforce; 0 = immortal
	limits      advice.Limits
	drops       map[baggage.DropRecord]bool // union of reported eviction tombstones
	quarantines []agent.Quarantine
	mergeNS     int64 // cumulative wall-clock ns spent merging this query's reports
}

// Install parses, compiles, and installs a query with the Table 3
// optimizations enabled. The query is named automatically (Q1, Q2, ...)
// unless a name is assigned via InstallNamed.
func (pt *PivotTracing) Install(text string) (*Installed, error) {
	return pt.InstallNamed("", text, plan.Optimized)
}

// InstallNamed installs a query under an explicit name (which later
// queries can reference as a join source) and with explicit compile
// options.
func (pt *PivotTracing) InstallNamed(name, text string, opts plan.Options) (*Installed, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	pt.mu.Lock()
	if name == "" {
		pt.nextID++
		// Tenant frontends prefix their auto-names with the tenant ID so
		// concurrent frontends allocate from disjoint namespaces.
		if pt.tenant != "" {
			name = fmt.Sprintf("%s.Q%d", pt.tenant, pt.nextID)
		} else {
			name = fmt.Sprintf("Q%d", pt.nextID)
		}
	}
	if _, dup := pt.installed[name]; dup {
		pt.mu.Unlock()
		return nil, fmt.Errorf("core: query %q already installed", name)
	}
	q.Name = name
	named := make(map[string]*query.Query, len(pt.named))
	for k, v := range pt.named {
		named[k] = v
	}
	pt.mu.Unlock()

	// Fair-share the accumulator limits and baggage budget across the
	// declared tenant count before compiling (the budget is baked into the
	// compiled programs' safety envelope).
	pt.applyFairShare(&opts.Limits, &opts.Safety.Budget)

	p, err := plan.Compile(q, pt.reg, named, opts)
	if err != nil {
		return nil, err
	}
	// Leases default on: a frontend that dies stops renewing, and agents
	// shed its queries. Negative opts.Lease opts out (TTL 0 = immortal).
	lease := opts.Lease
	if lease == 0 {
		lease = agent.DefaultLease
	} else if lease < 0 {
		lease = 0
	}
	h := &Installed{
		pt:          pt,
		Name:        name,
		Plan:        p,
		global:      advice.NewAccumulator(p.Emit.Emit),
		installedAt: time.Now(),
		firstResult: -1,
		lease:       lease,
		limits:      opts.Limits,
		drops:       make(map[baggage.DropRecord]bool),
	}
	h.global.SetLimits(opts.Limits)
	pt.mu.Lock()
	pt.installed[name] = h
	pt.named[name] = q
	metaWeave := pt.metaWeave
	pt.mu.Unlock()

	pt.bus.Publish(agent.ControlTopic, agent.Install{
		QueryID:  name,
		Programs: p.Programs,
		TTL:      lease,
		Limits:   opts.Limits,
		Tenant:   pt.tenant,
		Share:    pt.share,
	})
	// Cross the tracepoint.Weave meta-tracepoint after the weave
	// instructions are out and with no frontend locks held: woven advice
	// re-enters an agent, which may call straight back into this frontend.
	if metaWeave != nil {
		ctx := tracepoint.WithProc(context.Background(), tracepoint.ProcInfo{Host: "frontend", ProcName: "core"})
		for _, prog := range p.Programs {
			metaWeave.Here(ctx, prog.Tracepoint, name)
		}
	}
	return h, nil
}

// Installs returns the install messages for all currently installed
// queries. Newly started processes replay these so that late-joining
// agents weave standing queries (the paper's always-on monitoring).
func (pt *PivotTracing) Installs() []agent.Install {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	names := make([]string, 0, len(pt.installed))
	for name := range pt.installed {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]agent.Install, 0, len(names))
	for _, name := range names {
		h := pt.installed[name]
		out = append(out, agent.Install{
			QueryID:  name,
			Programs: h.Plan.Programs,
			TTL:      h.lease,
			Limits:   h.limits,
			Tenant:   pt.tenant,
			Share:    pt.share,
		})
	}
	return out
}

// RenewLeases re-arms the lease of every installed query (TTL 0 on the
// wire keeps each query's current duration). The frontend's host calls
// this periodically — the cluster runtime and pivot.StartReporting do —
// so that only a dead or partitioned frontend lets leases lapse.
func (pt *PivotTracing) RenewLeases() {
	pt.mu.Lock()
	ids := make([]string, 0, len(pt.installed))
	for name, h := range pt.installed {
		if h.lease > 0 {
			ids = append(ids, name)
		}
	}
	pt.mu.Unlock()
	if len(ids) == 0 {
		return
	}
	sort.Strings(ids)
	pt.bus.Publish(agent.ControlTopic, agent.Renew{QueryIDs: ids})
}

// SetLease changes an installed query's lease TTL and renews it
// immediately. A TTL <= 0 is rejected (installs, not renewals, decide
// immortality).
func (pt *PivotTracing) SetLease(name string, ttl time.Duration) error {
	if ttl <= 0 {
		return fmt.Errorf("core: lease TTL must be positive, got %v", ttl)
	}
	pt.mu.Lock()
	h := pt.installed[name]
	if h != nil {
		h.lease = ttl
	}
	pt.mu.Unlock()
	if h == nil {
		return fmt.Errorf("core: query %q not installed", name)
	}
	pt.bus.Publish(agent.ControlTopic, agent.Renew{QueryIDs: []string{name}, TTL: ttl})
	return nil
}

// onReport merges an agent's partial results into the query's global
// accumulator and notifies listeners. Agents batch a flush interval's
// reports into one ReportBatch frame; each constituent report is merged —
// and delivered to listeners — individually, in batch order, so consumers
// observe exactly the stream they would have seen unbatched.
func (pt *PivotTracing) onReport(msg any) {
	pt.framesIn.Add(1)
	switch m := msg.(type) {
	case agent.Report:
		pt.mergeReport(m)
	case agent.ReportBatch:
		for _, r := range m.Reports {
			pt.mergeReport(r)
		}
	}
}

// mergeReport folds one report into its query's global state.
func (pt *PivotTracing) mergeReport(r agent.Report) {
	pt.mu.Lock()
	h := pt.installed[r.QueryID]
	pt.mu.Unlock()
	if h == nil {
		return
	}
	pt.reportsMerged.Inc()
	pt.groupsMerged.Add(int64(len(r.Groups)))
	pt.rawsMerged.Add(int64(len(r.Raws)))
	mergeStart := time.Now()
	h.mu.Lock()
	if h.firstResult < 0 {
		h.firstResult = time.Since(h.installedAt)
		pt.firstResultNS.Observe(int64(h.firstResult))
	}
	h.reports++
	for _, g := range r.Groups {
		h.global.MergeGroup(g)
	}
	for _, raw := range r.Raws {
		h.global.MergeRaw(raw)
	}
	for _, d := range r.Drops {
		if !h.drops[d] {
			h.drops[d] = true
			pt.dropsMerged.Inc()
		}
	}
	var listeners []func(agent.Report)
	listeners = append(listeners, h.listeners...)
	h.mergeNS += int64(time.Since(mergeStart))
	h.mu.Unlock()
	for _, fn := range listeners {
		fn(r)
	}
}

// onQuarantine records a circuit-breaker notice against its query so
// status output can flag results from a quarantined query.
func (pt *PivotTracing) onQuarantine(msg any) {
	qn, ok := msg.(agent.Quarantine)
	if !ok {
		return
	}
	pt.quarantinesC.Inc()
	pt.mu.Lock()
	h := pt.installed[qn.QueryID]
	pt.mu.Unlock()
	if h == nil {
		return
	}
	h.mu.Lock()
	h.quarantines = append(h.quarantines, qn)
	h.mu.Unlock()
}

// Lease returns the query's install TTL (0 = immortal).
func (h *Installed) Lease() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lease
}

// DroppedGroups returns how many distinct baggage groups the query's
// budget has evicted, as accounted by the in-baggage tombstones agents
// report. Results are exact on the reported subset: every group is either
// fully present in Rows or counted here, never partially merged.
func (h *Installed) DroppedGroups() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for d := range h.drops {
		if d.Key != "" || !h.wholeSlotShadowedLocked(d.Slot) {
			n++
		}
	}
	return n
}

// wholeSlotShadowedLocked reports whether a whole-slot tombstone for slot
// coexists with per-group tombstones for the same slot; the per-group
// records are then the precise count and the whole-slot record is not
// counted again. (Whole-slot evictions only happen for non-aggregated
// slots, where group records never appear, so this only suppresses
// genuine double counting.)
func (h *Installed) wholeSlotShadowedLocked(slot string) bool {
	for d := range h.drops {
		if d.Slot == slot && d.Key != "" {
			return true
		}
	}
	return false
}

// Drops returns the query's baggage eviction tombstones, sorted.
func (h *Installed) Drops() []baggage.DropRecord {
	h.mu.Lock()
	out := make([]baggage.DropRecord, 0, len(h.drops))
	for d := range h.drops {
		out = append(out, d)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Quarantines returns the circuit-breaker notices received for this
// query, in arrival order. A non-empty result means some processes are no
// longer evaluating the query's advice and results are partial.
func (h *Installed) Quarantines() []agent.Quarantine {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]agent.Quarantine(nil), h.quarantines...)
}

// Partial reports whether the query's results are known-incomplete:
// baggage budgets evicted groups or a circuit breaker quarantined advice.
func (h *Installed) Partial() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.drops) > 0 || len(h.quarantines) > 0
}

// OnReport registers a callback invoked for every per-interval report the
// query receives — the streaming interface.
func (h *Installed) OnReport(fn func(agent.Report)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.listeners = append(h.listeners, fn)
}

// Rows returns the globally aggregated results accumulated so far, sorted
// by group key for stable output.
func (h *Installed) Rows() []tuple.Tuple {
	h.mu.Lock()
	defer h.mu.Unlock()
	rows := h.global.Rows()
	if !h.global.Op.Raw {
		sort.Slice(rows, func(i, j int) bool {
			return rowLess(rows[i], rows[j])
		})
	}
	return rows
}

func rowLess(a, b tuple.Tuple) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// Groups snapshots the globally merged partial groups (cloned, in
// first-seen order), exposing the aggregate-state metadata that Rows
// materializes away: raw fold counts, sampling weights, and the Exact
// flag. Callers that must distinguish an exact COUNT from a weighted
// estimate read it here.
func (h *Installed) Groups() []*advice.Group {
	h.mu.Lock()
	defer h.mu.Unlock()
	gs := h.global.Groups()
	out := make([]*advice.Group, 0, len(gs))
	for _, g := range gs {
		out = append(out, g.Clone())
	}
	return out
}

// Schema returns the output schema of the query.
func (h *Installed) Schema() tuple.Schema { return h.Plan.Schema }

// Explain renders the compiled advice in the paper's notation.
func (h *Installed) Explain() string { return h.Plan.Explain() }

// CostReport renders the query's live execution counters — the paper's §4
// "explain"-style cost analysis: how many tuples the query observes, packs
// into baggage, emits, and drops at join misses, per tracepoint. Within a
// single OS process (including the whole simulated cluster) woven advice
// shares these counters; in a TCP-distributed deployment each worker keeps
// its own (see agent.Agent.CostReport).
func (h *Installed) CostReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost of %s:\n", h.Name)
	fmt.Fprintf(&b, "  %-36s %12s %9s %9s %9s %9s\n",
		"tracepoint", "invocations", "sampled", "dropped", "packed", "emitted")
	for _, prog := range h.Plan.Programs {
		c := &prog.Cost
		fmt.Fprintf(&b, "  %-36s %12d %9d %9d %9d %9d\n",
			prog.Tracepoint,
			c.Invocations.Load(), c.Sampled.Load(), c.DroppedByJoin.Load(),
			c.TuplesPacked.Load(), c.TuplesEmitted.Load())
	}
	return b.String()
}

// ExplainAnalyze renders the compiled plan with live per-operator
// execution counters, followed by the frontend's merge accounting and —
// when agents ship ExplainStats (span capture enabled) — a per-process
// flush breakdown. The operator counters come from the in-process
// advice.Cost atomics, which are globally exact within one OS process
// (including the whole simulated cluster, whose bus passes Program
// pointers); the per-process rows are each worker's own view and are
// rendered as a breakdown, never summed into the operator lines. In a
// shared-pointer deployment that breakdown degenerates: every process
// reports the same global counters (only the flush timings are truly
// per-process); over a TCP bus each worker decodes its own Program copy
// and the rows are genuinely per-process.
func (h *Installed) ExplainAnalyze() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE %s:\n\n", h.Name)
	b.WriteString(h.Plan.ExplainAnalyze())
	h.mu.Lock()
	reports, mergeNS := h.reports, h.mergeNS
	rows := int64(len(h.global.Rows()))
	dropped := 0
	for d := range h.drops {
		if d.Key != "" || !h.wholeSlotShadowedLocked(d.Slot) {
			dropped++
		}
	}
	h.mu.Unlock()
	fmt.Fprintf(&b, "\n\nMERGE at frontend  [reports=%d rows=%d dropped-groups=%d merge=%s]",
		reports, rows, dropped, time.Duration(mergeNS))

	h.pt.explainMu.Lock()
	var procs []agent.ExplainStats
	for k, es := range h.pt.explain {
		if k.query == h.Name {
			procs = append(procs, es)
		}
	}
	h.pt.explainMu.Unlock()
	if len(procs) > 0 {
		sort.Slice(procs, func(i, j int) bool {
			if procs[i].Host != procs[j].Host {
				return procs[i].Host < procs[j].Host
			}
			return procs[i].ProcName < procs[j].ProcName
		})
		fmt.Fprintf(&b, "\n\nper-process agent breakdown:\n")
		fmt.Fprintf(&b, "  %-24s %-36s %10s %9s %9s %9s %9s\n",
			"host/proc", "tracepoint", "fires", "filtered", "packed", "emitted", "flush")
		for _, es := range procs {
			loc := es.Host + "/" + es.ProcName
			for i, op := range es.Ops {
				flush := ""
				if i == 0 {
					flush = time.Duration(es.FlushNS).String()
				}
				fmt.Fprintf(&b, "  %-24s %-36s %10d %9d %9d %9d %9s\n",
					loc, op.Tracepoint, op.Invocations, op.TuplesFiltered,
					op.TuplesPacked, op.TuplesEmitted, flush)
				loc = ""
			}
		}
	}
	return b.String()
}

// Uninstall removes the query's advice from all agents. The handle's
// accumulated results remain readable.
func (h *Installed) Uninstall() {
	h.pt.mu.Lock()
	delete(h.pt.installed, h.Name)
	delete(h.pt.named, h.Name)
	h.pt.mu.Unlock()
	h.pt.bus.Publish(agent.ControlTopic, agent.Uninstall{QueryID: h.Name})
}

// Close unsubscribes the frontend from the bus. (Unsubscribing a zero
// Subscription is a no-op, so the tenant/primary split needs no cases.)
func (pt *PivotTracing) Close() {
	pt.bus.Unsubscribe(pt.resultsSub)
	pt.bus.Unsubscribe(pt.tenantSub)
	pt.bus.Unsubscribe(pt.healthSub)
	pt.bus.Unsubscribe(pt.statusSub)
	pt.bus.Unsubscribe(pt.quarantineSub)
	pt.bus.Unsubscribe(pt.traceSub)
}
