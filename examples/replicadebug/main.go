// Replicadebug: a scripted version of the §6.1 diagnosis session. It walks
// the reader through the queries Q3-Q7 one at a time on the simulated
// cluster with HDFS-6268 active, narrating what each result reveals —
// ending at the paper's conclusion that the NameNode returns rack-local
// replicas in a static order and clients always take the first.
//
//	go run ./examples/replicadebug
package main

import (
	"fmt"
	"time"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Symptom: stress test clients on some hosts have consistently")
	fmt.Println("lower request throughput despite identical hardware (Fig 8a).")
	fmt.Println()
	fmt.Println("Running the diagnosis queries on the simulated cluster with the")
	fmt.Println("HDFS-6268 bug active...")
	fmt.Println()

	cfg := experiments.DefaultFig8Config()
	cfg.Duration = 15 * time.Second
	res, err := experiments.RunFig8(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Print(res.Render())

	fmt.Println()
	fmt.Println("Reading the results like the paper does:")
	fmt.Println(" - 8c: DataNode load is heavily skewed, although...")
	fmt.Println(" - 8d: ...clients pick files uniformly at random, and")
	fmt.Println(" - 8e: ...replicas are placed near-uniformly.")
	fmt.Println(" - 8f: clients clearly favour particular DataNodes.")
	fmt.Println(" - 8g: whenever the top-priority host holds a replica it is")
	fmt.Println("       *always* selected: replica order is static, and clients")
	fmt.Println("       always take the first location -> HDFS-6268.")
	fmt.Println()
	fmt.Println("Re-run with the fixes (NameNode shuffling + client random")
	fmt.Println("selection): `go run ./cmd/replicabug -fixed` — selection")
	fmt.Println("becomes uniform and client throughput evens out.")
}
