GO ?= go
FUZZTIME ?= 5s

.PHONY: check fmt vet build test race bench bench-gate stress fuzz-smoke coverage differential combiner safety sampling scenarios scenarios-short

check: fmt vet build race fuzz-smoke sampling

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 0.5s -run xxx .

# Benchmark-regression gate: run the key hot-path benchmarks (count=4
# best-of, pinned -cpu 1,4,8) and compare against the committed
# BENCH_5.json — fail on >20% ns/op or any allocs/op regression. Seeds
# the baseline when it is absent; re-record intentional changes with
#   go run ./cmd/benchgate -write
bench-gate:
	$(GO) run ./cmd/benchgate

# Concurrency-stress suite: N emitting goroutines racing install/
# uninstall/flush with exact tuple accounting, plus the sharded
# accumulator's exactness/ordering/drop-accounting suite — under the
# race detector, twice, to shake out interleavings.
stress:
	$(GO) test ./internal/agent ./internal/advice -race -count=2 -run 'TestStress|TestSharded'

# Replay the checked-in fuzz corpora, then give each target a short live
# fuzzing burst. FUZZTIME=2m fuzz-smoke for a deeper local run.
fuzz-smoke:
	$(GO) test ./internal/tuple ./internal/wire ./internal/baggage -run '^Fuzz'
	@set -e; for t in FuzzDecodeValue FuzzDecodeTuple FuzzValueRoundTrip; do \
		$(GO) test ./internal/tuple -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME); done
	@set -e; for t in FuzzUnmarshal FuzzDecodeExpr; do \
		$(GO) test ./internal/wire -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME); done
	@set -e; for t in FuzzDecodeBaggage; do \
		$(GO) test ./internal/baggage -run '^$$' -fuzz "^$$t$$" -fuzztime $(FUZZTIME); done

# Full-suite statement coverage, failing if the total drops below the
# floor recorded in coverage.baseline.
coverage:
	$(GO) test ./... -coverprofile=cover.out
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	floor=$$(cat coverage.baseline); \
	echo "total coverage: $$total% (floor: $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage dropped below the recorded baseline"; exit 1; }

# The ptbench scenario library at the reduced (<=64-host) sizing, under
# the race detector, plus the byte-identical same-seed report check.
# Replay a failure with the printed `go run ./cmd/ptbench ...` command.
scenarios-short:
	$(GO) test ./internal/scenario -race -run 'TestAllScenariosShort|TestReportDeterminism'

# The full scenario library on thousand-host topologies — the ptbench
# acceptance run (about half a minute of wall time).
scenarios:
	$(GO) run ./cmd/ptbench -all

# The differential query-correctness sweeps (plain and budgeted) under
# the race detector, in both topologies: flat agent→frontend merge and
# the 2-tier combiner tree, which must agree byte-for-byte.
differential:
	PT_DIFF_CASES=500 $(GO) test ./pivot -race -run 'TestDifferentialPipelineMatchesOracle|TestBudgetedDifferentialTruncationAccounted|TestDifferentialTreeMatchesFlat|TestBudgetedDifferentialTreeTruncationAccounted'

# The combiner-tier suite: partition/rendezvous unit tests, tree wiring,
# tenant fair-share control plane, combiner-kill chaos, and the tree
# differential sweeps at a reduced case count — all under -race.
combiner:
	$(GO) test ./internal/combiner ./internal/cluster ./internal/core -race
	$(GO) test ./pivot -race -count=2 -run 'TestCombinerKillRehomesAndConservesTuples'
	PT_DIFF_CASES=120 $(GO) test ./pivot -race -run 'TestDifferentialTreeMatchesFlat|TestBudgetedDifferentialTreeTruncationAccounted'

# The request-level sampling suite: the 300-case sampled differential
# sweep against the statistical oracle, rate-1.0 byte-identity with the
# exact path, the error-vs-rate estimator sweep, the happened-before
# join decision-atomicity property tests, and the rate-clamp/AIMD
# controller units — all under the race detector. Failures print the
# seed; replay with go test ./pivot -run <Test> -seed=<N>.
sampling:
	$(GO) test ./pivot -race -run 'TestSampledDifferentialWithinBounds|TestSampledRateOneMatchesExactBytes|TestSampledErrorVsRate|TestHBJoinSamplingAtomicityTable|TestHBJoinSamplingAtomicityQuick'
	$(GO) test ./internal/sampling -race

# The safety-valve chaos suite: advice quarantine, frontend-kill lease
# expiry, budget exhaustion accounting, and the governance unit tests —
# repeated under the race detector to shake out ordering assumptions.
safety:
	$(GO) test ./pivot -race -count=2 -run 'TestPanickingAdviceIsQuarantined|TestQuarantineNoticeCrossesBus|TestKilledFrontendLeaseExpiry|TestBudgetExhaustionAccounted|TestLeaseRenewalKeepsInProcessQueryAlive'
	$(GO) test ./internal/agent ./internal/advice ./internal/baggage ./internal/tracepoint -race -count=2
