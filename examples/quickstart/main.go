// Quickstart: instrument a toy in-process service with Pivot Tracing,
// install a query at runtime, and read the streaming results.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/pivot"
)

func main() {
	// One Pivot Tracing runtime for this process.
	pt := pivot.New("orders-service")

	// Tracepoints: named locations in the code, declared with the
	// variables they export. Declaring them costs nothing until a query
	// weaves advice into them.
	tpRequest := pt.Define("Orders.HandleRequest", "endpoint", "size")
	tpDB := pt.Define("Orders.DBQuery", "table", "rows")

	// The service: every request crosses HandleRequest and one or more
	// DBQuery tracepoints.
	rng := rand.New(rand.NewSource(1))
	serve := func(ctx context.Context, endpoint string) {
		tpRequest.Here(ctx, endpoint, 100+rng.Intn(900))
		for i := 0; i < 1+rng.Intn(3); i++ {
			tpDB.Here(ctx, "orders", rng.Intn(50))
		}
	}

	// Install a query at runtime: how many DB rows does each endpoint
	// touch? The happened-before join (->) relates DB events to the
	// request event that caused them.
	q, err := pt.Install(`
		From db In Orders.DBQuery
		Join req In First(Orders.HandleRequest) On req -> db
		GroupBy req.endpoint
		Select req.endpoint, COUNT, SUM(db.rows)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("installed query; compiled advice:")
	fmt.Println(q.Explain())
	fmt.Println()

	// Traffic.
	for i := 0; i < 1000; i++ {
		ctx := pt.NewRequest(context.Background())
		switch i % 3 {
		case 0:
			serve(ctx, "/checkout")
		case 1:
			serve(ctx, "/cart")
		default:
			serve(ctx, "/browse")
		}
	}

	// Agents normally report once per second; flush explicitly here.
	pt.Flush()
	fmt.Printf("%-12s %8s %10s\n", "endpoint", "queries", "rows")
	for _, row := range q.Rows() {
		fmt.Printf("%-12s %8s %10s\n", row[0], row[1], row[2])
	}

	// Live cost analysis (the paper's §4 "explain" with counts): what did
	// the query actually do at each tracepoint?
	fmt.Println()
	fmt.Print(q.CostReport())
}
