package hbase

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/hdfs"
	"repro/internal/simtime"
)

func testDeploy(env *simtime.Env, servers int) (*cluster.Cluster, *HBase, *Client) {
	cfg := cluster.DefaultConfig()
	cfg.RPCLatency = 0
	c := cluster.New(env, cfg)
	nn := hdfs.NewNameNode(c, "master", hdfs.DefaultConfig())
	for i := 0; i < servers; i++ {
		hdfs.NewDataNode(c, host(i), nn)
	}
	hb := New(c, "master", Config{Regions: 2 * servers})
	for i := 0; i < servers; i++ {
		hb.AddRegionServer(c, host(i), nn, hdfs.ClientConfig{})
	}
	adminProc := c.Start("master", "admin")
	admin := hdfs.NewClient(adminProc, nn, hdfs.ClientConfig{})
	if err := hb.InitStoreFiles(adminProc.NewRequest(), admin, 1e9); err != nil {
		panic(err)
	}
	clientProc := c.Start("client-host", "hbclient")
	return c, hb, NewClient(clientProc, hb)
}

func host(i int) string { return string(rune('a'+i)) + "-host" }

func TestGetAndScan(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, _, cl := testDeploy(env, 3)
		ctx := cl.Proc.NewRequest()
		if err := cl.Get(ctx, "row-1", 10e3); err != nil {
			t.Error(err)
		}
		if err := cl.Scan(ctx, "row-2", 4e6); err != nil {
			t.Error(err)
		}
	})
}

func TestRowsRouteDeterministically(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, hb, _ := testDeploy(env, 4)
		a := hb.serverFor("row-42")
		b := hb.serverFor("row-42")
		if a != b {
			t.Error("same row routed to different servers")
		}
		// Distinct rows spread over servers.
		seen := map[*RegionServer]bool{}
		for i := 0; i < 64; i++ {
			seen[hb.serverFor(rowName(i))] = true
		}
		if len(seen) < 3 {
			t.Errorf("only %d servers used for 64 rows", len(seen))
		}
	})
}

func rowName(i int) string { return "row-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestServiceTracepointsObserveOps(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, _, cl := testDeploy(env, 2)
		h, err := c.PT.Install(
			`From op In RS.ClientService
			 GroupBy op.op
			 Select op.op, COUNT, SUM(op.size)`)
		if err != nil {
			t.Fatal(err)
		}
		ctx := cl.Proc.NewRequest()
		cl.Get(ctx, "r1", 10e3)
		cl.Get(ctx, "r2", 10e3)
		cl.Scan(ctx, "r3", 4e6)
		c.FlushAgents()
		rows := h.Rows()
		byOp := map[string][2]int64{}
		for _, r := range rows {
			byOp[r[0].Str()] = [2]int64{r[1].Int(), int64(r[2].Float())}
		}
		if byOp["get"][0] != 2 || byOp["get"][1] != 20000 {
			t.Errorf("get = %v", byOp["get"])
		}
		if byOp["scan"][0] != 1 || byOp["scan"][1] != 4000000 {
			t.Errorf("scan = %v", byOp["scan"])
		}
	})
}

func TestRogueGCStallsHandlers(t *testing.T) {
	env := simtime.NewEnv()
	var normal, stalled time.Duration
	env.Run(func() {
		_, hb, cl := testDeploy(env, 2)
		// Baseline get latency.
		start := env.Now()
		cl.Get(cl.Proc.NewRequest(), "r1", 10e3)
		normal = env.Now() - start

		// Find the server for r1 and give it rogue GC; issue a get right
		// after a pause starts.
		rs := hb.serverFor("r1")
		rs.EnableRogueGC(time.Second, 500*time.Millisecond)
		env.Sleep(1050 * time.Millisecond) // inside the first pause
		start = env.Now()
		cl.Get(cl.Proc.NewRequest(), "r1", 10e3)
		stalled = env.Now() - start
	})
	if stalled < normal+300*time.Millisecond {
		t.Fatalf("get during GC took %v, baseline %v — no stall observed", stalled, normal)
	}
}

func TestGCPauseTracepoints(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, hb, _ := testDeploy(env, 2)
		h, err := c.PT.Install(
			`From g In RS.GCStart GroupBy g.host Select g.host, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		hb.servers[0].EnableRogueGC(time.Second, 100*time.Millisecond)
		env.Sleep(3500 * time.Millisecond)
		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 1 || rows[0][1].Int() < 3 {
			t.Fatalf("GC starts = %v, want >= 3 on one host", rows)
		}
	})
}

func TestClientWithNoServersErrors(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.RPCLatency = 0
		c := cluster.New(env, cfg)
		hb := New(c, "master", Config{})
		cl := NewClient(c.Start("h", "cli"), hb)
		if err := cl.Get(cl.Proc.NewRequest(), "r", 1); err == nil {
			t.Error("expected error with no region servers")
		}
	})
}
