package advice

import (
	"repro/internal/agg"
	"repro/internal/tuple"
)

// Group is one group-by bucket of partially aggregated results. Groups are
// the unit of transport between agents and the query frontend: partial
// aggregate states merge correctly across processes (unlike final values —
// an average of averages is not the average).
type Group struct {
	Key    string
	Rep    tuple.Tuple // representative working tuple for non-agg columns
	States []*agg.State
}

// Clone deep-copies the group.
func (g *Group) Clone() *Group {
	c := &Group{Key: g.Key, Rep: g.Rep.Clone()}
	for _, s := range g.States {
		c.States = append(c.States, s.Clone())
	}
	return c
}

// Accumulator aggregates emitted working tuples for one EmitOp. The same
// type serves process-local aggregation in agents (fed by Add) and global
// aggregation at the frontend (fed by MergeGroup/MergeRaw).
type Accumulator struct {
	Op     *EmitOp
	groups map[string]*Group
	order  []string
	raws   []tuple.Tuple
}

// NewAccumulator returns an empty accumulator for op.
func NewAccumulator(op *EmitOp) *Accumulator {
	return &Accumulator{Op: op, groups: make(map[string]*Group)}
}

// Add folds one emitted working tuple.
func (a *Accumulator) Add(w tuple.Tuple) {
	if a.Op.Raw {
		row := make(tuple.Tuple, len(a.Op.Cols))
		for i, col := range a.Op.Cols {
			row[i] = w[col.Pos]
		}
		a.raws = append(a.raws, row)
		return
	}
	key := w.Key(a.Op.GroupBy)
	g, ok := a.groups[key]
	if !ok {
		g = &Group{Key: key, Rep: w.Clone()}
		for _, col := range a.Op.Cols {
			if col.IsAgg {
				g.States = append(g.States, agg.New(col.Fn))
			}
		}
		a.groups[key] = g
		a.order = append(a.order, key)
	}
	k := 0
	for _, col := range a.Op.Cols {
		if !col.IsAgg {
			continue
		}
		if col.Pos >= 0 {
			g.States[k].Add(w[col.Pos])
		} else {
			g.States[k].Add(tuple.Null) // bare COUNT
		}
		k++
	}
}

// MergeGroup folds a partial group from another accumulator (e.g. an
// agent's report) into this one.
func (a *Accumulator) MergeGroup(g *Group) {
	mine, ok := a.groups[g.Key]
	if !ok {
		a.groups[g.Key] = g.Clone()
		a.order = append(a.order, g.Key)
		return
	}
	for i, s := range g.States {
		mine.States[i].Merge(s)
	}
}

// MergeRaw folds a raw row from another accumulator.
func (a *Accumulator) MergeRaw(row tuple.Tuple) {
	a.raws = append(a.raws, row.Clone())
}

// Groups snapshots the current partial groups, in first-seen order.
func (a *Accumulator) Groups() []*Group {
	out := make([]*Group, 0, len(a.order))
	for _, key := range a.order {
		out = append(out, a.groups[key])
	}
	return out
}

// Raws returns the accumulated raw rows.
func (a *Accumulator) Raws() []tuple.Tuple { return a.raws }

// Rows materializes the final result rows in Select-column order.
func (a *Accumulator) Rows() []tuple.Tuple {
	if a.Op.Raw {
		out := make([]tuple.Tuple, len(a.raws))
		copy(out, a.raws)
		return out
	}
	out := make([]tuple.Tuple, 0, len(a.order))
	for _, key := range a.order {
		g := a.groups[key]
		row := make(tuple.Tuple, len(a.Op.Cols))
		k := 0
		for i, col := range a.Op.Cols {
			if col.IsAgg {
				row[i] = g.States[k].Result()
				k++
			} else {
				row[i] = g.Rep[col.Pos]
			}
		}
		out = append(out, row)
	}
	return out
}

// Empty reports whether the accumulator holds no data.
func (a *Accumulator) Empty() bool {
	return len(a.order) == 0 && len(a.raws) == 0
}

// Reset clears the accumulator for the next reporting interval.
func (a *Accumulator) Reset() {
	a.groups = make(map[string]*Group)
	a.order = nil
	a.raws = nil
}
