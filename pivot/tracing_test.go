package pivot

// Acceptance tests for causal span capture: the fixed demo workload
// (querygen.DemoCase) has a known split/join shape, so the reconstructed
// DAG can be checked node by node, and its raw happened-before join query
// emits exactly one tuple per oracle row, so the EXPLAIN ANALYZE counters
// must reconcile exactly with the reference evaluator.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/oracle"
	"repro/internal/querygen"
	"repro/internal/simtime"
	"repro/internal/spans"
)

// runDemoTraced executes case c once on a simulated cluster with span
// capture enabled and hands the cluster to inspect before teardown.
func runDemoTraced(t *testing.T, c *querygen.Case, inspect func(cl *cluster.Cluster, builder *spans.Builder, h *Query)) {
	t.Helper()
	var runErr error
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := cluster.New(env, cfg)
		builder := cl.EnableSpans(0)
		x := cluster.NewScriptExec(cl, c)
		h, err := cl.PT.Install(c.QueryText)
		if err != nil {
			runErr = fmt.Errorf("install %q: %w", c.QueryText, err)
			return
		}
		if err := x.Run(); err != nil {
			runErr = err
			return
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		inspect(cl, builder, h)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
}

func TestDemoTraceDAGMatchesScript(t *testing.T) {
	runDemoTraced(t, querygen.DemoCase(), func(cl *cluster.Cluster, builder *spans.Builder, h *Query) {
		ids := builder.TraceIDs()
		if len(ids) != 1 {
			t.Fatalf("TraceIDs = %v, want exactly one trace", ids)
		}
		tr := builder.Trace(ids[0])
		if tr == nil {
			t.Fatal("Trace returned nil for a known id")
		}
		if tr.Synthetic || tr.Orphans != 0 {
			t.Fatalf("demo trace lost spans: synthetic=%v orphans=%d", tr.Synthetic, tr.Orphans)
		}
		if len(tr.Nodes) != 4 {
			t.Fatalf("got %d spans, want 4 (Request, 2×Read, Respond)", len(tr.Nodes))
		}

		root := tr.Root
		if root.Tracepoint != "Demo.Request" || root.Host != "h0" || root.ProcName != "api" {
			t.Fatalf("root = %s [%s@%s], want Demo.Request [api@h0]", root.Tracepoint, root.ProcName, root.Host)
		}
		if len(root.Children) != 2 {
			t.Fatalf("root fan-out = %d children, want 2", len(root.Children))
		}
		readHosts := map[string]*spans.Node{}
		for _, rd := range root.Children {
			if rd.Tracepoint != "Demo.Read" {
				t.Fatalf("root child = %s, want Demo.Read", rd.Tracepoint)
			}
			// Transitive reduction must leave exactly the true parent: the
			// frozen pre-split frontier also names Demo.Request, but only
			// one edge may survive.
			if len(rd.Parents) != 1 || rd.Parents[0] != root {
				t.Fatalf("Demo.Read@%s parents = %d, want exactly the root", rd.Host, len(rd.Parents))
			}
			readHosts[rd.Host] = rd
		}
		if readHosts["h1"] == nil || readHosts["h2"] == nil {
			t.Fatalf("reads on hosts %v, want h1 and h2", readHosts)
		}

		var respond *spans.Node
		for _, n := range tr.Nodes {
			if n.Tracepoint == "Demo.Respond" {
				respond = n
			}
		}
		if respond == nil {
			t.Fatal("no Demo.Respond span")
		}
		if respond.Host != "h0" || respond.ProcName != "api" {
			t.Fatalf("respond at %s@%s, want api@h0", respond.ProcName, respond.Host)
		}
		// The join must preserve BOTH incoming edges (and, by reduction,
		// nothing else: Demo.Request is an ancestor of both reads).
		if len(respond.Parents) != 2 {
			t.Fatalf("respond join has %d parents, want 2", len(respond.Parents))
		}
		seen := map[*spans.Node]bool{}
		for _, p := range respond.Parents {
			seen[p] = true
		}
		if !seen[readHosts["h1"]] || !seen[readHosts["h2"]] {
			t.Fatal("respond's parents are not the two reads")
		}

		// The slow read (h2, fired later) dominates: critical path is
		// Request → Read@h2 → Respond.
		cp := tr.CriticalPath()
		var gotPath []string
		for _, n := range cp {
			gotPath = append(gotPath, n.Tracepoint+"@"+n.Host)
		}
		wantPath := []string{"Demo.Request@h0", "Demo.Read@h2", "Demo.Respond@h0"}
		if strings.Join(gotPath, " ") != strings.Join(wantPath, " ") {
			t.Fatalf("critical path = %v, want %v", gotPath, wantPath)
		}

		// Tier attribution covers the critical path: api (the respond
		// segment) and dn2 (the slow read); dn1 is off-path.
		tl := tr.TierLatency()
		if tl["dn2"] <= 0 || tl["api"] <= 0 {
			t.Fatalf("tier latency = %v, want positive api and dn2 shares", tl)
		}
		if _, offPath := tl["dn1"]; offPath {
			t.Fatalf("tier latency charges off-path tier dn1: %v", tl)
		}

		out := tr.RenderTree()
		for _, want := range []string{"Demo.Request", "Demo.Read", "Demo.Respond", "4 spans", "(join"} {
			if !strings.Contains(out, want) {
				t.Fatalf("RenderTree missing %q:\n%s", want, out)
			}
		}
		if sum := builder.Summary(); !strings.Contains(sum, "TRACE") {
			t.Fatalf("Summary missing header:\n%s", sum)
		}
	})
}

func TestExplainAnalyzeReconcilesWithOracle(t *testing.T) {
	c := querygen.DemoCase()
	runDemoTraced(t, c, func(cl *cluster.Cluster, builder *spans.Builder, h *Query) {
		got := h.Rows()
		want, err := oracleRows(c)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(oracle.Canonical(want), oracle.Canonical(got)) {
			t.Fatalf("pipeline rows diverge from oracle\noracle:\n%s\npipeline:\n%s",
				oracle.Format(want), oracle.Format(got))
		}

		// The demo query is a raw projection: one EMIT per joined tuple,
		// no grouping, so the operator counter must equal the oracle row
		// count exactly — not approximately.
		var emitted int64
		for _, prog := range h.Plan.Programs {
			emitted += prog.Cost.TuplesEmitted.Load()
		}
		if emitted != int64(len(want)) {
			t.Fatalf("EMIT counted %d tuples, oracle has %d rows", emitted, len(want))
		}

		out := h.ExplainAnalyze()
		for _, wantStr := range []string{
			"EXPLAIN ANALYZE",
			fmt.Sprintf("emitted=%d", len(want)),
			fmt.Sprintf("rows=%d", len(want)),
			"MERGE at frontend",
			"per-process agent breakdown:",
			"h0/api",
		} {
			if !strings.Contains(out, wantStr) {
				t.Fatalf("ExplainAnalyze missing %q:\n%s", wantStr, out)
			}
		}
	})
}
