package experiments

import (
	"strings"
	"testing"
	"time"
)

// smallFig1 keeps the test fast while exercising the full pipeline.
func smallFig1() Fig1Config {
	return Fig1Config{
		Hosts:    4,
		Duration: 10 * time.Second,
		Sort10g:  512e6,
		Sort100g: 1e9,
		Files:    4,
	}
}

func TestFig1ShapeAndRendering(t *testing.T) {
	res, err := RunFig1(smallFig1())
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1a: every DataNode host shows read throughput.
	if len(res.HostSeries) == 0 {
		t.Fatal("no per-host series")
	}
	// Fig 1b: the bulk readers are attributed.
	for _, app := range []string{"FSREAD4M", "FSREAD64M"} {
		if _, ok := res.AppSeries[app]; !ok {
			t.Errorf("no series for %s: have %v", app, keys(res.AppSeries))
		}
	}
	out := res.Render()
	for _, want := range []string{"Fig 1a", "Fig 1b", "Fig 1c", "Σcluster"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
