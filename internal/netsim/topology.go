package netsim

import (
	"fmt"
	"strings"
	"time"
)

// TopologyConfig sizes a rack/pod datacenter topology. Hosts are grouped
// into racks behind a shared top-of-rack uplink; racks are grouped into
// pods behind a shared pod uplink. Either aggregation layer can be
// disabled by leaving its rate zero, in which case traffic that would
// cross it is point-to-point (the flat small-testbed model).
type TopologyConfig struct {
	// Racks and HostsPerRack size the topology (both required > 0).
	Racks        int
	HostsPerRack int
	// RacksPerPod groups racks into pods (default: all racks in one pod).
	RacksPerPod int

	// Per-host capacities; defaults are the testbed's 1 Gbit NIC and
	// commodity disk.
	NICRate  float64
	DiskRate float64

	// RackUplink is the per-direction capacity of each top-of-rack
	// uplink. Zero disables the rack layer entirely (flat network).
	RackUplink float64
	// PodUplink is the per-direction capacity of each pod uplink. Zero
	// disables the pod/core layer (single-pod routing).
	PodUplink float64

	// HostLatency is the fixed one-way message latency of every host.
	// Zero is allowed and means latency-free links (transfers still take
	// bandwidth time).
	HostLatency time.Duration

	// NamePrefix prefixes every generated host name (default "h"). Host
	// names are "<prefix>r<rack>n<idx>"; the prefix must not contain
	// '/', whitespace, or be empty after trimming, since cluster process
	// keys are "host/proc".
	NamePrefix string
}

// Topology is a built rack/pod fabric: the hosts in deterministic order
// plus their interned names and placement metadata, computed once at build
// time so scenario code never formats a host name on a hot path.
type Topology struct {
	Net *Network
	Cfg TopologyConfig

	hosts []*Host
	names []string
}

// BuildTopology registers cfg.Racks * cfg.HostsPerRack hosts (and the
// rack/pod aggregation links) on the network. It panics on invalid
// configuration or name collisions with already-registered links, making
// double registration of a topology loud.
func BuildTopology(n *Network, cfg TopologyConfig) *Topology {
	if cfg.Racks <= 0 || cfg.HostsPerRack <= 0 {
		panic(fmt.Sprintf("netsim: topology needs Racks > 0 and HostsPerRack > 0 (got %d, %d)",
			cfg.Racks, cfg.HostsPerRack))
	}
	if cfg.RacksPerPod < 0 {
		panic(fmt.Sprintf("netsim: negative RacksPerPod %d", cfg.RacksPerPod))
	}
	if cfg.HostLatency < 0 {
		panic(fmt.Sprintf("netsim: negative HostLatency %v", cfg.HostLatency))
	}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "h"
	}
	if strings.ContainsAny(cfg.NamePrefix, "/ \t\n") || strings.TrimSpace(cfg.NamePrefix) == "" {
		panic(fmt.Sprintf("netsim: bad host name prefix %q", cfg.NamePrefix))
	}
	if cfg.NICRate == 0 {
		cfg.NICRate = Gbit
	}
	if cfg.DiskRate == 0 {
		cfg.DiskRate = DiskRate
	}
	if cfg.RacksPerPod == 0 || cfg.RacksPerPod > cfg.Racks {
		cfg.RacksPerPod = cfg.Racks
	}

	t := &Topology{
		Net:   n,
		Cfg:   cfg,
		hosts: make([]*Host, 0, cfg.Racks*cfg.HostsPerRack),
		names: make([]string, 0, cfg.Racks*cfg.HostsPerRack),
	}
	pods := (cfg.Racks + cfg.RacksPerPod - 1) / cfg.RacksPerPod
	podUp := make([]*Link, pods)
	podDown := make([]*Link, pods)
	if cfg.PodUplink > 0 && pods > 1 {
		for p := 0; p < pods; p++ {
			podUp[p] = n.AddLink(fmt.Sprintf("%spod%02d.up", cfg.NamePrefix, p), cfg.PodUplink)
			podDown[p] = n.AddLink(fmt.Sprintf("%spod%02d.down", cfg.NamePrefix, p), cfg.PodUplink)
		}
	}
	for r := 0; r < cfg.Racks; r++ {
		pod := r / cfg.RacksPerPod
		var rackUp, rackDown *Link
		if cfg.RackUplink > 0 {
			rackUp = n.AddLink(fmt.Sprintf("%srack%03d.up", cfg.NamePrefix, r), cfg.RackUplink)
			rackDown = n.AddLink(fmt.Sprintf("%srack%03d.down", cfg.NamePrefix, r), cfg.RackUplink)
		}
		for i := 0; i < cfg.HostsPerRack; i++ {
			name := fmt.Sprintf("%sr%03dn%03d", cfg.NamePrefix, r, i)
			h := n.NewHost(name, cfg.NICRate, cfg.DiskRate)
			h.Latency = cfg.HostLatency
			h.rack = r
			h.pod = pod
			h.rackUp, h.rackDown = rackUp, rackDown
			h.podUp, h.podDown = podUp[pod], podDown[pod]
			t.hosts = append(t.hosts, h)
			t.names = append(t.names, name)
		}
	}
	return t
}

// Size returns the number of hosts.
func (t *Topology) Size() int { return len(t.hosts) }

// Host returns the i-th host in build order.
func (t *Topology) Host(i int) *Host { return t.hosts[i] }

// Hosts returns all hosts in build order (shared slice; do not mutate).
func (t *Topology) Hosts() []*Host { return t.hosts }

// Name returns the i-th host's interned name.
func (t *Topology) Name(i int) string { return t.names[i] }

// Names returns all host names in build order (shared slice; do not
// mutate).
func (t *Topology) Names() []string { return t.names }

// RackOf returns the global rack index of the i-th host.
func (t *Topology) RackOf(i int) int { return t.hosts[i].rack }

// PodOf returns the pod index of the i-th host.
func (t *Topology) PodOf(i int) int { return t.hosts[i].pod }
