package pivot

import (
	"context"
	"testing"
	"time"

	"repro/internal/bus"
)

// Full-stack chaos suite: a distributed deployment (frontend + worker over
// the TCP pub/sub server) survives the bus being killed and restarted
// mid-query. Agents reconnect within the backoff bound, reports flushed
// during the outage are replayed from the agent's ring buffer, query
// results converge, and the drop counters exactly account for any loss.
// Seeds are fixed; the suite is deterministic under -race -count=N.

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosBusOptions is the deterministic reconnect schedule for this suite.
func chaosBusOptions(seed int64, retention int) BusOptions {
	return BusOptions{
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        seed,
		Retention:   retention,
	}
}

// linkConnected reads the runtime's "bus.link.connected" gauge.
func linkConnected(pt *PT) bool {
	return pt.Frontend.Telemetry().Snapshot().Gauges["bus.link.connected"] == 1
}

// countRow returns the COUNT cell of the query's single group row, or -1.
func countRow(q *Query) int64 {
	rows := q.Rows()
	if len(rows) == 0 {
		return -1
	}
	return rows[0][1].Int()
}

func TestQueryConvergesAcrossBusOutageWithReplay(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(addr, chaosBusOptions(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	// No reconnect ordering is imposed: if the worker beats the frontend
	// back and replays first, the server parks the reports until the
	// frontend resubscribes.
	wkDisconnect, err := worker.ConnectBusWith(addr, chaosBusOptions(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	q, err := frontend.Install(`From w In Work.Do GroupBy w.host Select w.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", tp.Enabled)

	cross := func(n int) {
		for i := 0; i < n; i++ {
			tp.Here(worker.NewRequest(context.Background()), int64(i))
		}
	}

	// Phase 1: healthy. 10 crossings reach the frontend.
	cross(10)
	worker.Flush()
	waitFor(t, "pre-outage results", func() bool { return countRow(q) == 10 })

	// Phase 2: the bus dies mid-query. Both links notice, and the three
	// reports flushed during the outage are retained, not lost.
	srv.Close()
	waitFor(t, "links to notice the outage", func() bool {
		return !linkConnected(frontend) && !linkConnected(worker)
	})
	for i := 0; i < 3; i++ {
		cross(1)
		worker.Flush()
	}
	if n := worker.Agent.Buffered(); n != 3 {
		t.Fatalf("buffered reports = %d, want 3", n)
	}
	if st := worker.Agent.Stats(); st.ReportsRetained != 3 || st.ReportsDropped != 0 {
		t.Fatalf("outage stats = %+v", st)
	}

	// Phase 3: the bus comes back at the same address. Links reconnect
	// within the backoff bound, the buffer replays, and results converge
	// to all 13 crossings with zero loss.
	srv2, err := bus.Serve(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "links to reconnect", func() bool {
		return linkConnected(frontend) && linkConnected(worker)
	})
	waitFor(t, "retained reports to replay", func() bool { return worker.Agent.Buffered() == 0 })
	waitFor(t, "results to converge", func() bool { return countRow(q) == 13 })

	// One more healthy interval so a post-reconnect heartbeat reaches the
	// frontend with the resilience counters.
	cross(1)
	worker.Flush()
	waitFor(t, "results after recovery", func() bool { return countRow(q) == 14 })

	st := worker.Agent.Stats()
	if st.ReportsReplayed != 3 || st.ReportsDropped != 0 || st.Reconnects < 1 {
		t.Errorf("recovery stats = %+v", st)
	}
	// Exact accounting: every report the agent ever published was merged.
	waitFor(t, "all reports merged", func() bool {
		s := frontend.Status()
		return len(s.Queries) == 1 && s.Queries[0].Reports == st.Reports
	})
	waitFor(t, "heartbeat with reconnect count", func() bool {
		for _, a := range frontend.Status().Agents {
			if a.ProcName == "worker" && a.Stats.Reconnects >= 1 && a.Stats.ReportsReplayed == 3 {
				return true
			}
		}
		return false
	})
}

func TestBoundedLossIsExactlyAccounted(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(addr, chaosBusOptions(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	// Tiny ring: only 2 outage reports survive; older ones are evicted
	// and counted as dropped.
	wkDisconnect, err := worker.ConnectBusWith(addr, chaosBusOptions(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	q, err := frontend.Install(`From w In Work.Do GroupBy w.host Select w.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", tp.Enabled)

	tp.Here(worker.NewRequest(context.Background()), int64(0))
	worker.Flush()
	waitFor(t, "pre-outage results", func() bool { return countRow(q) == 1 })

	srv.Close()
	waitFor(t, "worker link down", func() bool { return !linkConnected(worker) })
	// Five one-crossing reports during the outage; the ring keeps the
	// newest two.
	for i := 0; i < 5; i++ {
		tp.Here(worker.NewRequest(context.Background()), int64(i))
		worker.Flush()
	}
	if st := worker.Agent.Stats(); st.ReportsRetained != 5 || st.ReportsDropped != 3 {
		t.Fatalf("outage stats = %+v", st)
	}

	srv2, err := bus.Serve(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "worker link reconnect", func() bool { return linkConnected(worker) })
	waitFor(t, "surviving reports to replay", func() bool { return worker.Agent.Buffered() == 0 })

	// Convergence with bounded, fully accounted loss: 6 crossings total,
	// 3 lost to the ring bound, so COUNT converges to exactly 3.
	waitFor(t, "results to converge", func() bool { return countRow(q) == 3 })
	st := worker.Agent.Stats()
	if st.ReportsReplayed != 2 || st.ReportsDropped != 3 {
		t.Errorf("recovery stats = %+v", st)
	}
	// The ledger balances: published = merged + dropped.
	waitFor(t, "report ledger to balance", func() bool {
		s := frontend.Status()
		return len(s.Queries) == 1 && s.Queries[0].Reports == st.Reports-st.ReportsDropped
	})
}
