package pivot

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bus"
)

// TestMetaTracepointQuery is the acceptance test for self-telemetry: a
// Pivot Tracing query installed over the tracer's own agent.Report
// meta-tracepoint must observe the reports the tracer sends for an
// ordinary application query.
func TestMetaTracepointQuery(t *testing.T) {
	pt := New("meta-test")
	pt.EnableSelfTelemetry()
	handle := pt.Define("Server.Handle", "bytes")

	// The meta query first, so it is woven before the app query reports.
	meta, err := pt.Install(`From r In agent.Report
		GroupBy r.host
		Select r.host, SUM(r.tuples)`)
	if err != nil {
		t.Fatal(err)
	}
	app, err := pt.Install(`From e In Server.Handle
		GroupBy e.procName
		Select e.procName, COUNT, SUM(e.bytes)`)
	if err != nil {
		t.Fatal(err)
	}

	const n = 25
	for i := 0; i < n; i++ {
		ctx := pt.NewRequest(context.Background())
		handle.Here(ctx, 10)
	}
	// Flush 1 publishes the app report and crosses agent.Report; flush 2
	// reports the meta query's own aggregation of that crossing.
	pt.Flush()
	pt.Flush()

	rows := app.Rows()
	if len(rows) != 1 || rows[0][1].Int() != n {
		t.Fatalf("app rows = %v", rows)
	}
	mrows := meta.Rows()
	// The app query emitted n tuples in flush 1. (The meta query itself
	// also reports, so later flushes would add more; after exactly two
	// flushes the sum is the app query's tuple count.)
	if len(mrows) != 1 {
		t.Fatalf("meta rows = %v", mrows)
	}
	if got := mrows[0][1].Int(); got != n {
		t.Errorf("SUM(r.tuples) = %d, want %d", got, n)
	}
}

// TestSelfTelemetryCounters checks that enabling self-telemetry populates
// hit counters, baggage serialization volume, and the status surface.
func TestSelfTelemetryCounters(t *testing.T) {
	pt := New("counters-test")
	tel := pt.EnableSelfTelemetry()
	handle := pt.Define("Server.Handle", "bytes")

	q, err := pt.Install(`From e In Server.Handle
		GroupBy e.host Select e.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	ctx := pt.NewRequest(context.Background())
	handle.Here(ctx, 1)
	handle.Here(ctx, 2)
	Inject(ctx) // empty baggage (no join packs tuples), but still counted
	pt.Flush()

	snap := tel.Snapshot()
	if got := snap.Counters["tracepoint.hits.Server.Handle"]; got != 2 {
		t.Errorf("tracepoint hits = %d, want 2", got)
	}
	if got := snap.Counters["tracepoint.weaves.Server.Handle"]; got != 1 {
		t.Errorf("tracepoint weaves = %d, want 1", got)
	}
	if got := snap.Counters["baggage.serializations"]; got < 1 {
		t.Errorf("baggage serializations = %d, want >= 1", got)
	}
	if got := snap.Counters["agent.reports"]; got < 1 {
		t.Errorf("agent reports = %d, want >= 1", got)
	}
	if got := snap.Counters["bus.published"]; got < 1 {
		t.Errorf("bus published = %d, want >= 1", got)
	}

	out := pt.StatusText()
	for _, want := range []string{"agents (1):", q.Name, "telemetry:", "tracepoint.hits.Server.Handle"} {
		if !strings.Contains(out, want) {
			t.Errorf("status missing %q:\n%s", want, out)
		}
	}
}

// TestBusServerStatusEndpoint exercises the TCP introspection surface:
// FetchServerStatus must return the server's own telemetry, and a status
// request relayed over the bus must come back with the frontend's status.
func TestBusServerStatusEndpoint(t *testing.T) {
	front := New("frontend")
	front.EnableSelfTelemetry()
	addr, shutdown, err := front.ServeBus("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	worker := New("worker")
	disconnect, err := worker.ConnectBus(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer disconnect()
	worker.Flush() // one heartbeat so the frontend sees the worker

	text, err := bus.FetchServerStatus(addr, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bus server", "bus.server.frames", "bus.server.conns"} {
		if !strings.Contains(text, want) {
			t.Errorf("server status missing %q:\n%s", want, text)
		}
	}

	// The worker's heartbeat travels the TCP relay asynchronously.
	deadline := time.Now().Add(3 * time.Second)
	for {
		s := front.Status()
		if len(s.Agents) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("frontend never saw the worker heartbeat")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
