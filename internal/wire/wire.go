// Package wire serializes Pivot Tracing's control-plane messages for
// transport between real OS processes: compiled advice programs (weave
// instructions) and per-interval reports. Queries in the paper compile to
// advice that agents install dynamically (§2.2 Â-Ã); shipping the advice —
// including filter and compute expressions — over the network is what
// makes that work across process boundaries.
//
// The format is the repository's usual varint style. Expressions are
// encoded structurally (the advice instruction set has no jumps or
// recursion, and expressions are finite trees, so decoding is safe).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/spans"
	"repro/internal/tuple"
)

var errTruncated = errors.New("wire: truncated message")

// --- primitives ---

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf)-k) < n {
		return "", nil, errTruncated
	}
	return string(buf[k : k+int(n)]), buf[k+int(n):], nil
}

func appendInts(buf []byte, xs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

// capHint bounds a decoded element count by what the remaining buffer
// could possibly hold (one byte per element minimum), so a corrupt count
// can't balloon a preallocation. Compared in uint64: a count above
// MaxInt64 would go negative through a plain int conversion.
func capHint(n uint64, buf []byte) int {
	if n < uint64(len(buf)) {
		return int(n)
	}
	return len(buf)
}

func decodeInts(buf []byte) ([]int, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	out := make([]int, 0, capHint(n, buf))
	for i := uint64(0); i < n; i++ {
		v, k := binary.Varint(buf)
		if k <= 0 {
			return nil, nil, errTruncated
		}
		buf = buf[k:]
		out = append(out, int(v))
	}
	return out, buf, nil
}

func appendStrings(buf []byte, xs []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(xs)))
	for _, x := range xs {
		buf = appendString(buf, x)
	}
	return buf
}

func decodeStrings(buf []byte) ([]string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	out := make([]string, 0, capHint(n, buf))
	for i := uint64(0); i < n; i++ {
		var s string
		var err error
		s, buf, err = decodeString(buf)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, s)
	}
	return out, buf, nil
}

// --- expressions ---

const (
	exprNil = iota
	exprField
	exprLiteral
	exprBinary
	exprUnary
)

// AppendExpr encodes a query expression tree.
func AppendExpr(buf []byte, e query.Expr) []byte {
	switch x := e.(type) {
	case nil:
		return append(buf, exprNil)
	case query.FieldRef:
		buf = append(buf, exprField)
		buf = appendString(buf, x.Alias)
		return appendString(buf, x.Field)
	case query.Literal:
		buf = append(buf, exprLiteral)
		return tuple.AppendValue(buf, x.Value)
	case query.Binary:
		buf = append(buf, exprBinary, byte(x.Op))
		buf = AppendExpr(buf, x.L)
		return AppendExpr(buf, x.R)
	case query.Unary:
		buf = append(buf, exprUnary, x.Op)
		return AppendExpr(buf, x.X)
	default:
		// Unknown expression kinds cannot cross the wire; encode null.
		buf = append(buf, exprLiteral)
		return tuple.AppendValue(buf, tuple.Null)
	}
}

// DecodeExpr decodes one expression tree.
func DecodeExpr(buf []byte) (query.Expr, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, errTruncated
	}
	tag, rest := buf[0], buf[1:]
	switch tag {
	case exprNil:
		return nil, rest, nil
	case exprField:
		alias, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		field, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		return query.FieldRef{Alias: alias, Field: field}, rest, nil
	case exprLiteral:
		v, rest, err := tuple.DecodeValue(rest)
		if err != nil {
			return nil, nil, err
		}
		return query.Literal{Value: v}, rest, nil
	case exprBinary:
		if len(rest) == 0 {
			return nil, nil, errTruncated
		}
		op := query.BinOp(rest[0])
		l, rest, err := DecodeExpr(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		r, rest, err := DecodeExpr(rest)
		if err != nil {
			return nil, nil, err
		}
		return query.Binary{Op: op, L: l, R: r}, rest, nil
	case exprUnary:
		if len(rest) == 0 {
			return nil, nil, errTruncated
		}
		op := rest[0]
		x, rest, err := DecodeExpr(rest[1:])
		if err != nil {
			return nil, nil, err
		}
		return query.Unary{Op: op, X: x}, rest, nil
	default:
		return nil, nil, fmt.Errorf("wire: bad expr tag %d", tag)
	}
}

func appendBindings(buf []byte, m map[query.FieldRef]int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(m)))
	// Deterministic order is unnecessary on the wire; iterate freely.
	for ref, pos := range m {
		buf = appendString(buf, ref.Alias)
		buf = appendString(buf, ref.Field)
		buf = binary.AppendVarint(buf, int64(pos))
	}
	return buf
}

func decodeBindings(buf []byte) (map[query.FieldRef]int, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	m := make(map[query.FieldRef]int, capHint(n, buf))
	for i := uint64(0); i < n; i++ {
		alias, rest, err := decodeString(buf)
		if err != nil {
			return nil, nil, err
		}
		field, rest, err := decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		pos, k := binary.Varint(rest)
		if k <= 0 {
			return nil, nil, errTruncated
		}
		buf = rest[k:]
		m[query.FieldRef{Alias: alias, Field: field}] = int(pos)
	}
	return m, buf, nil
}

// --- baggage set specs (re-encoded here to keep package APIs narrow) ---

func appendSpec(buf []byte, spec baggage.SetSpec) []byte {
	buf = append(buf, byte(spec.Kind))
	buf = binary.AppendVarint(buf, int64(spec.N))
	buf = appendStrings(buf, spec.Fields)
	buf = appendInts(buf, spec.GroupBy)
	buf = binary.AppendUvarint(buf, uint64(len(spec.Aggs)))
	for _, a := range spec.Aggs {
		buf = binary.AppendVarint(buf, int64(a.Pos))
		buf = append(buf, byte(a.Fn))
	}
	return buf
}

func decodeSpec(buf []byte) (baggage.SetSpec, []byte, error) {
	var spec baggage.SetSpec
	if len(buf) == 0 {
		return spec, nil, errTruncated
	}
	spec.Kind = baggage.SetKind(buf[0])
	n, k := binary.Varint(buf[1:])
	if k <= 0 {
		return spec, nil, errTruncated
	}
	spec.N = int(n)
	buf = buf[1+k:]
	fields, buf, err := decodeStrings(buf)
	if err != nil {
		return spec, nil, err
	}
	spec.Fields = fields
	gb, buf, err := decodeInts(buf)
	if err != nil {
		return spec, nil, err
	}
	spec.GroupBy = gb
	cnt, k := binary.Uvarint(buf)
	if k <= 0 {
		return spec, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < cnt; i++ {
		pos, k := binary.Varint(buf)
		if k <= 0 || len(buf) <= k {
			return spec, nil, errTruncated
		}
		spec.Aggs = append(spec.Aggs, baggage.AggField{Pos: int(pos), Fn: agg.Func(buf[k])})
		buf = buf[k+1:]
	}
	return spec, buf, nil
}

// --- advice programs ---

// AppendProgram encodes a compiled advice program.
func AppendProgram(buf []byte, p *advice.Program) []byte {
	buf = appendString(buf, p.QueryID)
	buf = appendString(buf, p.Tracepoint)
	buf = appendInts(buf, p.Observe)
	buf = appendStrings(buf, p.ObserveFields)
	buf = binary.AppendVarint(buf, p.SampleEvery)
	buf = binary.AppendUvarint(buf, math.Float64bits(p.SampleRate))
	buf = binary.AppendVarint(buf, int64(p.Safety.Budget.MaxBytes))
	buf = binary.AppendVarint(buf, int64(p.Safety.Budget.MaxTuples))
	buf = binary.AppendVarint(buf, p.Safety.FaultLimit)
	buf = binary.AppendVarint(buf, p.Safety.CostCeiling)

	buf = binary.AppendUvarint(buf, uint64(len(p.Unpacks)))
	for _, u := range p.Unpacks {
		buf = appendString(buf, u.Slot)
		buf = appendStrings(buf, u.Fields)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Filters)))
	for _, f := range p.Filters {
		buf = AppendExpr(buf, f.Expr)
		buf = appendBindings(buf, f.Bindings)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Computes)))
	for _, c := range p.Computes {
		buf = AppendExpr(buf, c.Expr)
		buf = appendBindings(buf, c.Bindings)
	}
	if p.Pack != nil {
		buf = append(buf, 1)
		buf = appendString(buf, p.Pack.Slot)
		buf = appendSpec(buf, p.Pack.Spec)
		buf = appendInts(buf, p.Pack.Source)
	} else {
		buf = append(buf, 0)
	}
	if p.Emit != nil {
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(p.Emit.Cols)))
		for _, c := range p.Emit.Cols {
			flag := byte(0)
			if c.IsAgg {
				flag = 1
			}
			buf = append(buf, flag, byte(c.Fn))
			buf = binary.AppendVarint(buf, int64(c.Pos))
		}
		buf = appendInts(buf, p.Emit.GroupBy)
		raw := byte(0)
		if p.Emit.Raw {
			raw = 1
		}
		buf = append(buf, raw)
		buf = appendStrings(buf, p.Emit.Schema)
	} else {
		buf = append(buf, 0)
	}
	return buf
}

// DecodeProgram decodes one advice program.
func DecodeProgram(buf []byte) (*advice.Program, []byte, error) {
	p := &advice.Program{}
	var err error
	if p.QueryID, buf, err = decodeString(buf); err != nil {
		return nil, nil, err
	}
	if p.Tracepoint, buf, err = decodeString(buf); err != nil {
		return nil, nil, err
	}
	if p.Observe, buf, err = decodeInts(buf); err != nil {
		return nil, nil, err
	}
	var fields []string
	if fields, buf, err = decodeStrings(buf); err != nil {
		return nil, nil, err
	}
	p.ObserveFields = fields
	se, k := binary.Varint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	p.SampleEvery = se
	buf = buf[k:]
	srBits, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	// Hostile rates (NaN, negative, zero, > 1, absurd weights) are clamped
	// to "unsampled" here so a corrupt frame can never inflate weights.
	p.SampleRate = sampling.ClampRate(math.Float64frombits(srBits))
	buf = buf[k:]
	var safety [4]int64
	for i := range safety {
		v, k := binary.Varint(buf)
		if k <= 0 {
			return nil, nil, errTruncated
		}
		safety[i] = v
		buf = buf[k:]
	}
	p.Safety = advice.Safety{
		Budget:      baggage.Budget{MaxBytes: int(safety[0]), MaxTuples: int(safety[1])},
		FaultLimit:  safety[2],
		CostCeiling: safety[3],
	}

	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < n; i++ {
		var u advice.UnpackOp
		if u.Slot, buf, err = decodeString(buf); err != nil {
			return nil, nil, err
		}
		var fs []string
		if fs, buf, err = decodeStrings(buf); err != nil {
			return nil, nil, err
		}
		u.Fields = fs
		p.Unpacks = append(p.Unpacks, u)
	}

	n, k = binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < n; i++ {
		var f advice.FilterOp
		if f.Expr, buf, err = DecodeExpr(buf); err != nil {
			return nil, nil, err
		}
		if f.Bindings, buf, err = decodeBindings(buf); err != nil {
			return nil, nil, err
		}
		p.Filters = append(p.Filters, f)
	}

	n, k = binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < n; i++ {
		var c advice.ComputeOp
		if c.Expr, buf, err = DecodeExpr(buf); err != nil {
			return nil, nil, err
		}
		if c.Bindings, buf, err = decodeBindings(buf); err != nil {
			return nil, nil, err
		}
		p.Computes = append(p.Computes, c)
	}

	if len(buf) == 0 {
		return nil, nil, errTruncated
	}
	hasPack := buf[0] == 1
	buf = buf[1:]
	if hasPack {
		pk := &advice.PackOp{}
		if pk.Slot, buf, err = decodeString(buf); err != nil {
			return nil, nil, err
		}
		if pk.Spec, buf, err = decodeSpec(buf); err != nil {
			return nil, nil, err
		}
		if pk.Source, buf, err = decodeInts(buf); err != nil {
			return nil, nil, err
		}
		p.Pack = pk
	}

	if len(buf) == 0 {
		return nil, nil, errTruncated
	}
	hasEmit := buf[0] == 1
	buf = buf[1:]
	if hasEmit {
		em := &advice.EmitOp{}
		n, k = binary.Uvarint(buf)
		if k <= 0 {
			return nil, nil, errTruncated
		}
		buf = buf[k:]
		for i := uint64(0); i < n; i++ {
			if len(buf) < 2 {
				return nil, nil, errTruncated
			}
			col := advice.EmitCol{IsAgg: buf[0] == 1, Fn: agg.Func(buf[1])}
			pos, k := binary.Varint(buf[2:])
			if k <= 0 {
				return nil, nil, errTruncated
			}
			col.Pos = int(pos)
			buf = buf[2+k:]
			em.Cols = append(em.Cols, col)
		}
		if em.GroupBy, buf, err = decodeInts(buf); err != nil {
			return nil, nil, err
		}
		if len(buf) == 0 {
			return nil, nil, errTruncated
		}
		em.Raw = buf[0] == 1
		buf = buf[1:]
		var schema []string
		if schema, buf, err = decodeStrings(buf); err != nil {
			return nil, nil, err
		}
		em.Schema = schema
		p.Emit = em
	}
	return p, buf, nil
}

// --- control and results messages ---

// Message type tags on the wire.
const (
	TagInstall        = 1
	TagUninstall      = 2
	TagReport         = 3
	TagHeartbeat      = 4
	TagStatusRequest  = 5
	TagStatusResponse = 6
	TagRenew          = 7
	TagQuarantine     = 8
	TagReportBatch    = 9
	TagSpanBatch      = 10
	TagExplainStats   = 11
	TagTenantUsage    = 12
)

// heartbeatInts is how many varints a Heartbeat carries after its two
// strings: Time, Interval, Queries, then every Stats field in order.
const heartbeatInts = 25

// opStatsInts is how many varints one OpStats carries after its tracepoint
// name: every counter field in declaration order.
const opStatsInts = 12

// appendSpan encodes one span record (no tag byte). Ids are raw uvarints
// (they are uniformly-mixed 64-bit values; zig-zag would only cost bytes).
func appendSpan(buf []byte, sp *spans.Span) []byte {
	buf = binary.AppendUvarint(buf, sp.TraceID)
	buf = binary.AppendUvarint(buf, sp.SpanID)
	buf = binary.AppendUvarint(buf, uint64(len(sp.Parents)))
	for _, p := range sp.Parents {
		buf = binary.AppendUvarint(buf, p)
	}
	buf = appendString(buf, sp.Tracepoint)
	buf = appendString(buf, sp.Host)
	buf = appendString(buf, sp.ProcName)
	buf = binary.AppendVarint(buf, int64(sp.Start))
	buf = binary.AppendVarint(buf, int64(sp.Duration))
	return buf
}

// decodeSpan decodes one span record (no tag byte).
func decodeSpan(buf []byte) (spans.Span, []byte, error) {
	var sp spans.Span
	var err error
	ids := [2]uint64{}
	for i := range ids {
		v, k := binary.Uvarint(buf)
		if k <= 0 {
			return sp, nil, errTruncated
		}
		ids[i] = v
		buf = buf[k:]
	}
	sp.TraceID, sp.SpanID = ids[0], ids[1]
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return sp, nil, errTruncated
	}
	buf = buf[k:]
	if n > 0 {
		sp.Parents = make([]uint64, 0, capHint(n, buf))
	}
	for i := uint64(0); i < n; i++ {
		v, k := binary.Uvarint(buf)
		if k <= 0 {
			return sp, nil, errTruncated
		}
		sp.Parents = append(sp.Parents, v)
		buf = buf[k:]
	}
	if sp.Tracepoint, buf, err = decodeString(buf); err != nil {
		return sp, nil, err
	}
	if sp.Host, buf, err = decodeString(buf); err != nil {
		return sp, nil, err
	}
	if sp.ProcName, buf, err = decodeString(buf); err != nil {
		return sp, nil, err
	}
	times := [2]int64{}
	for i := range times {
		v, k := binary.Varint(buf)
		if k <= 0 {
			return sp, nil, errTruncated
		}
		times[i] = v
		buf = buf[k:]
	}
	sp.Start, sp.Duration = time.Duration(times[0]), time.Duration(times[1])
	return sp, buf, nil
}

// appendReport encodes one report body (no tag byte); shared by the
// TagReport and TagReportBatch encodings.
func appendReport(buf []byte, m *agent.Report) []byte {
	buf = appendString(buf, m.QueryID)
	buf = appendString(buf, m.Host)
	buf = appendString(buf, m.ProcName)
	buf = binary.AppendVarint(buf, int64(m.Time))
	buf = binary.AppendUvarint(buf, uint64(len(m.Groups)))
	for _, g := range m.Groups {
		buf = appendString(buf, g.Key)
		buf = tuple.AppendTuple(buf, g.Rep)
		buf = binary.AppendUvarint(buf, uint64(len(g.States)))
		for _, st := range g.States {
			buf = st.Append(buf)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Raws)))
	for _, r := range m.Raws {
		buf = tuple.AppendTuple(buf, r)
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.Drops)))
	for _, d := range m.Drops {
		buf = appendString(buf, d.Slot)
		buf = appendString(buf, d.Key)
	}
	return buf
}

// decodeReport decodes one report body (no tag byte); shared by the
// TagReport and TagReportBatch decodings.
func decodeReport(buf []byte) (agent.Report, []byte, error) {
	var m agent.Report
	var err error
	if m.QueryID, buf, err = decodeString(buf); err != nil {
		return m, nil, err
	}
	if m.Host, buf, err = decodeString(buf); err != nil {
		return m, nil, err
	}
	if m.ProcName, buf, err = decodeString(buf); err != nil {
		return m, nil, err
	}
	tns, k := binary.Varint(buf)
	if k <= 0 {
		return m, nil, errTruncated
	}
	m.Time = time.Duration(tns)
	buf = buf[k:]
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return m, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < n; i++ {
		g := &advice.Group{}
		if g.Key, buf, err = decodeString(buf); err != nil {
			return m, nil, err
		}
		if g.Rep, buf, err = tuple.DecodeTuple(buf); err != nil {
			return m, nil, err
		}
		ns, k := binary.Uvarint(buf)
		if k <= 0 {
			return m, nil, errTruncated
		}
		buf = buf[k:]
		for s := uint64(0); s < ns; s++ {
			st, rest, err := agg.Decode(buf)
			if err != nil {
				return m, nil, err
			}
			g.States = append(g.States, st)
			buf = rest
		}
		m.Groups = append(m.Groups, g)
	}
	n, k = binary.Uvarint(buf)
	if k <= 0 {
		return m, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < n; i++ {
		var r tuple.Tuple
		if r, buf, err = tuple.DecodeTuple(buf); err != nil {
			return m, nil, err
		}
		m.Raws = append(m.Raws, r)
	}
	n, k = binary.Uvarint(buf)
	if k <= 0 {
		return m, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < n; i++ {
		var d baggage.DropRecord
		if d.Slot, buf, err = decodeString(buf); err != nil {
			return m, nil, err
		}
		if d.Key, buf, err = decodeString(buf); err != nil {
			return m, nil, err
		}
		m.Drops = append(m.Drops, d)
	}
	return m, buf, nil
}

// Marshal encodes a bus message (agent.Install, agent.Uninstall, or
// agent.Report). Unknown message types return an error.
func Marshal(msg any) ([]byte, error) {
	switch m := msg.(type) {
	case agent.Install:
		buf := []byte{TagInstall}
		buf = appendString(buf, m.QueryID)
		buf = binary.AppendVarint(buf, int64(m.TTL))
		buf = binary.AppendVarint(buf, int64(m.Limits.MaxGroups))
		buf = binary.AppendVarint(buf, int64(m.Limits.MaxRaws))
		buf = appendString(buf, m.Tenant)
		buf = binary.AppendVarint(buf, int64(m.Share))
		buf = binary.AppendUvarint(buf, uint64(len(m.Programs)))
		for _, p := range m.Programs {
			buf = AppendProgram(buf, p)
		}
		return buf, nil
	case agent.Renew:
		buf := []byte{TagRenew}
		buf = binary.AppendVarint(buf, int64(m.TTL))
		buf = appendStrings(buf, m.QueryIDs)
		return buf, nil
	case agent.Quarantine:
		buf := []byte{TagQuarantine}
		buf = appendString(buf, m.QueryID)
		buf = appendString(buf, m.Tracepoint)
		buf = appendString(buf, m.Host)
		buf = appendString(buf, m.ProcName)
		buf = appendString(buf, m.Reason)
		buf = binary.AppendVarint(buf, int64(m.Time))
		return buf, nil
	case agent.Uninstall:
		buf := []byte{TagUninstall}
		return appendString(buf, m.QueryID), nil
	case agent.Heartbeat:
		buf := []byte{TagHeartbeat}
		buf = appendString(buf, m.Host)
		buf = appendString(buf, m.ProcName)
		buf = binary.AppendVarint(buf, int64(m.Time))
		buf = binary.AppendVarint(buf, int64(m.Interval))
		buf = binary.AppendVarint(buf, int64(m.Queries))
		buf = binary.AppendVarint(buf, m.Stats.TuplesEmitted)
		buf = binary.AppendVarint(buf, m.Stats.RowsReported)
		buf = binary.AppendVarint(buf, m.Stats.Reports)
		buf = binary.AppendVarint(buf, m.Stats.Batches)
		buf = binary.AppendVarint(buf, m.Stats.ReportsRetained)
		buf = binary.AppendVarint(buf, m.Stats.ReportsReplayed)
		buf = binary.AppendVarint(buf, m.Stats.ReportsDropped)
		buf = binary.AppendVarint(buf, m.Stats.Reconnects)
		buf = binary.AppendVarint(buf, m.Stats.LeasesExpired)
		buf = binary.AppendVarint(buf, m.Stats.Quarantines)
		buf = binary.AppendVarint(buf, m.Stats.RawsDropped)
		buf = binary.AppendVarint(buf, m.Stats.GroupsOverflowed)
		buf = binary.AppendVarint(buf, m.Stats.BaggageGroupsDropped)
		buf = binary.AppendVarint(buf, m.Stats.BaggageTuplesDropped)
		buf = binary.AppendVarint(buf, m.Stats.BaggageBytesDropped)
		buf = binary.AppendVarint(buf, m.Stats.SpansCaptured)
		buf = binary.AppendVarint(buf, m.Stats.SpansDropped)
		buf = binary.AppendVarint(buf, m.Stats.SpanBatches)
		buf = binary.AppendVarint(buf, m.Stats.CombinerReportsMerged)
		buf = binary.AppendVarint(buf, m.Stats.CombinerFramesOut)
		buf = binary.AppendVarint(buf, m.Stats.SampledOut)
		buf = binary.AppendVarint(buf, m.Stats.SampleRateMilli)
		return buf, nil
	case agent.StatusRequest:
		buf := []byte{TagStatusRequest}
		return appendString(buf, m.ID), nil
	case agent.StatusResponse:
		buf := []byte{TagStatusResponse}
		buf = appendString(buf, m.ID)
		return appendString(buf, m.Text), nil
	case agent.Report:
		buf := []byte{TagReport}
		return appendReport(buf, &m), nil
	case agent.ReportBatch:
		buf := []byte{TagReportBatch}
		buf = appendString(buf, m.Host)
		buf = appendString(buf, m.ProcName)
		buf = binary.AppendVarint(buf, int64(m.Time))
		buf = binary.AppendUvarint(buf, uint64(len(m.Reports)))
		for i := range m.Reports {
			buf = appendReport(buf, &m.Reports[i])
		}
		return buf, nil
	case agent.SpanBatch:
		buf := []byte{TagSpanBatch}
		buf = appendString(buf, m.Host)
		buf = appendString(buf, m.ProcName)
		buf = binary.AppendVarint(buf, int64(m.Time))
		buf = binary.AppendUvarint(buf, uint64(len(m.Spans)))
		for i := range m.Spans {
			buf = appendSpan(buf, &m.Spans[i])
		}
		return buf, nil
	case agent.TenantUsage:
		buf := []byte{TagTenantUsage}
		buf = appendString(buf, m.Host)
		buf = appendString(buf, m.ProcName)
		buf = binary.AppendVarint(buf, int64(m.Time))
		buf = binary.AppendUvarint(buf, uint64(len(m.Usage)))
		for _, u := range m.Usage {
			buf = appendString(buf, u.Tenant)
			buf = binary.AppendVarint(buf, u.Queries)
			buf = binary.AppendVarint(buf, u.Tuples)
		}
		return buf, nil
	case agent.ExplainStats:
		buf := []byte{TagExplainStats}
		buf = appendString(buf, m.QueryID)
		buf = appendString(buf, m.Host)
		buf = appendString(buf, m.ProcName)
		buf = binary.AppendVarint(buf, int64(m.Time))
		buf = binary.AppendVarint(buf, m.FlushNS)
		buf = binary.AppendUvarint(buf, uint64(len(m.Ops)))
		for _, op := range m.Ops {
			buf = appendString(buf, op.Tracepoint)
			buf = binary.AppendVarint(buf, op.Invocations)
			buf = binary.AppendVarint(buf, op.Sampled)
			buf = binary.AppendVarint(buf, op.DroppedByJoin)
			buf = binary.AppendVarint(buf, op.TuplesFiltered)
			buf = binary.AppendVarint(buf, op.TuplesPacked)
			buf = binary.AppendVarint(buf, op.PackedBytes)
			buf = binary.AppendVarint(buf, op.PackRefused)
			buf = binary.AppendVarint(buf, op.EvictedGroups)
			buf = binary.AppendVarint(buf, op.EvictedTuples)
			buf = binary.AppendVarint(buf, op.EvictedBytes)
			buf = binary.AppendVarint(buf, op.TuplesEmitted)
			buf = binary.AppendVarint(buf, op.Panics)
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("wire: cannot marshal %T", msg)
	}
}

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(buf []byte) (any, error) {
	if len(buf) == 0 {
		return nil, errTruncated
	}
	tag, buf := buf[0], buf[1:]
	switch tag {
	case TagInstall:
		var m agent.Install
		var err error
		if m.QueryID, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		var hdr [3]int64
		for i := range hdr {
			v, k := binary.Varint(buf)
			if k <= 0 {
				return nil, errTruncated
			}
			hdr[i] = v
			buf = buf[k:]
		}
		m.TTL = time.Duration(hdr[0])
		m.Limits = advice.Limits{MaxGroups: int(hdr[1]), MaxRaws: int(hdr[2])}
		if m.Tenant, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		share, k := binary.Varint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		m.Share = int(share)
		buf = buf[k:]
		n, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		buf = buf[k:]
		for i := uint64(0); i < n; i++ {
			p, rest, err := DecodeProgram(buf)
			if err != nil {
				return nil, err
			}
			m.Programs = append(m.Programs, p)
			buf = rest
		}
		return m, nil
	case TagUninstall:
		var m agent.Uninstall
		var err error
		if m.QueryID, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		return m, nil
	case TagRenew:
		var m agent.Renew
		ttl, k := binary.Varint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		m.TTL = time.Duration(ttl)
		buf = buf[k:]
		ids, _, err := decodeStrings(buf)
		if err != nil {
			return nil, err
		}
		m.QueryIDs = ids
		return m, nil
	case TagQuarantine:
		var m agent.Quarantine
		var err error
		for _, dst := range []*string{&m.QueryID, &m.Tracepoint, &m.Host, &m.ProcName, &m.Reason} {
			if *dst, buf, err = decodeString(buf); err != nil {
				return nil, err
			}
		}
		tns, k := binary.Varint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		m.Time = time.Duration(tns)
		return m, nil
	case TagHeartbeat:
		var m agent.Heartbeat
		var err error
		if m.Host, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.ProcName, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		ints := [heartbeatInts]int64{}
		for i := range ints {
			v, k := binary.Varint(buf)
			if k <= 0 {
				return nil, errTruncated
			}
			ints[i] = v
			buf = buf[k:]
		}
		m.Time = time.Duration(ints[0])
		m.Interval = time.Duration(ints[1])
		m.Queries = int(ints[2])
		m.Stats = agent.Stats{
			TuplesEmitted: ints[3], RowsReported: ints[4], Reports: ints[5],
			Batches:         ints[6],
			ReportsRetained: ints[7], ReportsReplayed: ints[8],
			ReportsDropped: ints[9], Reconnects: ints[10],
			LeasesExpired: ints[11], Quarantines: ints[12],
			RawsDropped: ints[13], GroupsOverflowed: ints[14],
			BaggageGroupsDropped: ints[15], BaggageTuplesDropped: ints[16],
			BaggageBytesDropped: ints[17],
			SpansCaptured:       ints[18], SpansDropped: ints[19], SpanBatches: ints[20],
			CombinerReportsMerged: ints[21], CombinerFramesOut: ints[22],
			SampledOut: ints[23], SampleRateMilli: ints[24],
		}
		return m, nil
	case TagStatusRequest:
		var m agent.StatusRequest
		var err error
		if m.ID, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		return m, nil
	case TagStatusResponse:
		var m agent.StatusResponse
		var err error
		if m.ID, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.Text, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		return m, nil
	case TagReport:
		m, _, err := decodeReport(buf)
		if err != nil {
			return nil, err
		}
		return m, nil
	case TagReportBatch:
		var m agent.ReportBatch
		var err error
		if m.Host, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.ProcName, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		tns, k := binary.Varint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		m.Time = time.Duration(tns)
		buf = buf[k:]
		n, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		buf = buf[k:]
		m.Reports = make([]agent.Report, 0, capHint(n, buf))
		for i := uint64(0); i < n; i++ {
			var r agent.Report
			if r, buf, err = decodeReport(buf); err != nil {
				return nil, err
			}
			m.Reports = append(m.Reports, r)
		}
		return m, nil
	case TagSpanBatch:
		var m agent.SpanBatch
		var err error
		if m.Host, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.ProcName, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		tns, k := binary.Varint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		m.Time = time.Duration(tns)
		buf = buf[k:]
		n, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		buf = buf[k:]
		m.Spans = make([]spans.Span, 0, capHint(n, buf))
		for i := uint64(0); i < n; i++ {
			var sp spans.Span
			if sp, buf, err = decodeSpan(buf); err != nil {
				return nil, err
			}
			m.Spans = append(m.Spans, sp)
		}
		return m, nil
	case TagTenantUsage:
		var m agent.TenantUsage
		var err error
		if m.Host, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.ProcName, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		tns, k := binary.Varint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		m.Time = time.Duration(tns)
		buf = buf[k:]
		n, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		buf = buf[k:]
		m.Usage = make([]agent.TenantQuota, 0, capHint(n, buf))
		for i := uint64(0); i < n; i++ {
			var u agent.TenantQuota
			if u.Tenant, buf, err = decodeString(buf); err != nil {
				return nil, err
			}
			var pair [2]int64
			for j := range pair {
				v, k := binary.Varint(buf)
				if k <= 0 {
					return nil, errTruncated
				}
				pair[j] = v
				buf = buf[k:]
			}
			u.Queries, u.Tuples = pair[0], pair[1]
			m.Usage = append(m.Usage, u)
		}
		return m, nil
	case TagExplainStats:
		var m agent.ExplainStats
		var err error
		if m.QueryID, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.Host, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		if m.ProcName, buf, err = decodeString(buf); err != nil {
			return nil, err
		}
		var hdr [2]int64
		for i := range hdr {
			v, k := binary.Varint(buf)
			if k <= 0 {
				return nil, errTruncated
			}
			hdr[i] = v
			buf = buf[k:]
		}
		m.Time = time.Duration(hdr[0])
		m.FlushNS = hdr[1]
		n, k := binary.Uvarint(buf)
		if k <= 0 {
			return nil, errTruncated
		}
		buf = buf[k:]
		m.Ops = make([]agent.OpStats, 0, capHint(n, buf))
		for i := uint64(0); i < n; i++ {
			var op agent.OpStats
			if op.Tracepoint, buf, err = decodeString(buf); err != nil {
				return nil, err
			}
			ints := [opStatsInts]int64{}
			for j := range ints {
				v, k := binary.Varint(buf)
				if k <= 0 {
					return nil, errTruncated
				}
				ints[j] = v
				buf = buf[k:]
			}
			op.Invocations, op.Sampled, op.DroppedByJoin = ints[0], ints[1], ints[2]
			op.TuplesFiltered, op.TuplesPacked, op.PackedBytes = ints[3], ints[4], ints[5]
			op.PackRefused, op.EvictedGroups, op.EvictedTuples = ints[6], ints[7], ints[8]
			op.EvictedBytes, op.TuplesEmitted, op.Panics = ints[9], ints[10], ints[11]
			m.Ops = append(m.Ops, op)
		}
		return m, nil
	default:
		return nil, fmt.Errorf("wire: bad message tag %d", tag)
	}
}

// BusCodec adapts this package to the bus.Codec interface.
type BusCodec struct{}

// Marshal implements bus.Codec.
func (BusCodec) Marshal(msg any) ([]byte, error) { return Marshal(msg) }

// Unmarshal implements bus.Codec.
func (BusCodec) Unmarshal(data []byte) (any, error) { return Unmarshal(data) }
