// Package itc implements Interval Tree Clocks (Almeida, Baquero, Fonte —
// OPODIS 2008), the causality-tracking mechanism Pivot Tracing uses to
// version baggage across branching and rejoining executions.
//
// A Stamp pairs an ID tree (which interval of the identifier space this
// replica owns) with an Event tree (a variable-resolution counter map).
// Fork splits a stamp into two with disjoint IDs; Join merges two stamps;
// Event advances the clock in the stamp's own interval. Pivot Tracing's
// baggage uses the ID half to tag baggage instances on each side of a
// branch with globally unique, non-overlapping identifiers (§5 of the
// paper), and joins them when branches rejoin.
package itc

import (
	"fmt"
	"strings"
)

// ID is a node of an interval tree identifier: a leaf owning all (1) or none
// (0) of its interval, or an interior node splitting the interval in two.
type ID struct {
	// Leaf is true for leaf nodes; Val is then 0 or 1.
	Leaf bool
	Val  int
	L, R *ID
}

func leafID(v int) *ID     { return &ID{Leaf: true, Val: v} }
func nodeID(l, r *ID) *ID  { return &ID{L: l, R: r} }
func (i *ID) isZero() bool { return i.Leaf && i.Val == 0 }
func (i *ID) isOne() bool  { return i.Leaf && i.Val == 1 }

// normID collapses (0,0) -> 0 and (1,1) -> 1.
func normID(i *ID) *ID {
	if i.Leaf {
		return i
	}
	l, r := normID(i.L), normID(i.R)
	if l.isZero() && r.isZero() {
		return leafID(0)
	}
	if l.isOne() && r.isOne() {
		return leafID(1)
	}
	return nodeID(l, r)
}

// split divides an ID into two disjoint IDs whose sum is the original.
func split(i *ID) (*ID, *ID) {
	switch {
	case i.isZero():
		return leafID(0), leafID(0)
	case i.isOne():
		return nodeID(leafID(1), leafID(0)), nodeID(leafID(0), leafID(1))
	case i.L.isZero():
		r1, r2 := split(i.R)
		return nodeID(leafID(0), r1), nodeID(leafID(0), r2)
	case i.R.isZero():
		l1, l2 := split(i.L)
		return nodeID(l1, leafID(0)), nodeID(l2, leafID(0))
	default:
		return nodeID(i.L, leafID(0)), nodeID(leafID(0), i.R)
	}
}

// sumID merges two disjoint IDs. It panics on overlapping IDs, which can
// only arise from misuse (joining a stamp with itself).
func sumID(a, b *ID) *ID {
	switch {
	case a.isZero():
		return b
	case b.isZero():
		return a
	case a.Leaf || b.Leaf:
		panic("itc: sum of overlapping IDs")
	default:
		return normID(nodeID(sumID(a.L, b.L), sumID(a.R, b.R)))
	}
}

func (i *ID) clone() *ID {
	if i.Leaf {
		return leafID(i.Val)
	}
	return nodeID(i.L.clone(), i.R.clone())
}

// Equal reports structural equality of two IDs.
func (i *ID) Equal(o *ID) bool {
	if i.Leaf != o.Leaf {
		return false
	}
	if i.Leaf {
		return i.Val == o.Val
	}
	return i.L.Equal(o.L) && i.R.Equal(o.R)
}

func (i *ID) String() string {
	if i.Leaf {
		return fmt.Sprintf("%d", i.Val)
	}
	return fmt.Sprintf("(%s,%s)", i.L, i.R)
}

// Event is a node of an event tree: a leaf counter, or an interior node with
// a base counter and two children holding increments.
type Event struct {
	Leaf bool
	N    uint64
	L, R *Event
}

func leafEv(n uint64) *Event              { return &Event{Leaf: true, N: n} }
func nodeEv(n uint64, l, r *Event) *Event { return &Event{N: n, L: l, R: r} }

// lift adds m to the base of e, returning a new tree.
func lift(m uint64, e *Event) *Event {
	if e.Leaf {
		return leafEv(e.N + m)
	}
	return nodeEv(e.N+m, e.L, e.R)
}

// sink subtracts m from the base of e (m must not exceed the base).
func sink(m uint64, e *Event) *Event {
	if e.Leaf {
		return leafEv(e.N - m)
	}
	return nodeEv(e.N-m, e.L, e.R)
}

func evMin(e *Event) uint64 {
	if e.Leaf {
		return e.N
	}
	l, r := evMin(e.L), evMin(e.R)
	if r < l {
		l = r
	}
	return e.N + l
}

func evMax(e *Event) uint64 {
	if e.Leaf {
		return e.N
	}
	l, r := evMax(e.L), evMax(e.R)
	if r > l {
		l = r
	}
	return e.N + l
}

// normEv canonicalizes an event tree: equal leaf children fold into the
// parent; otherwise the minimum of the children lifts into the base.
func normEv(e *Event) *Event {
	if e.Leaf {
		return e
	}
	l, r := normEv(e.L), normEv(e.R)
	if l.Leaf && r.Leaf && l.N == r.N {
		return leafEv(e.N + l.N)
	}
	m := evMin(l)
	if rm := evMin(r); rm < m {
		m = rm
	}
	return nodeEv(e.N+m, sink(m, l), sink(m, r))
}

// leqEv reports whether event tree a ≤ b pointwise.
func leqEv(a, b *Event) bool {
	switch {
	case a.Leaf && b.Leaf:
		return a.N <= b.N
	case a.Leaf:
		return a.N <= b.N
	case b.Leaf:
		return a.N <= b.N &&
			leqEv(lift(a.N, a.L), b) &&
			leqEv(lift(a.N, a.R), b)
	default:
		return a.N <= b.N &&
			leqEv(lift(a.N, a.L), lift(b.N, b.L)) &&
			leqEv(lift(a.N, a.R), lift(b.N, b.R))
	}
}

// joinEv merges two event trees, taking the pointwise maximum.
func joinEv(a, b *Event) *Event {
	switch {
	case a.Leaf && b.Leaf:
		if a.N >= b.N {
			return leafEv(a.N)
		}
		return leafEv(b.N)
	case a.Leaf:
		return joinEv(nodeEv(a.N, leafEv(0), leafEv(0)), b)
	case b.Leaf:
		return joinEv(a, nodeEv(b.N, leafEv(0), leafEv(0)))
	case a.N > b.N:
		return joinEv(b, a)
	default:
		d := b.N - a.N
		return normEv(nodeEv(a.N,
			joinEv(a.L, lift(d, b.L)),
			joinEv(a.R, lift(d, b.R))))
	}
}

func (e *Event) clone() *Event {
	if e.Leaf {
		return leafEv(e.N)
	}
	return nodeEv(e.N, e.L.clone(), e.R.clone())
}

// Equal reports structural equality of two event trees.
func (e *Event) Equal(o *Event) bool {
	if e.Leaf != o.Leaf {
		return false
	}
	if e.Leaf {
		return e.N == o.N
	}
	return e.N == o.N && e.L.Equal(o.L) && e.R.Equal(o.R)
}

func (e *Event) String() string {
	if e.Leaf {
		return fmt.Sprintf("%d", e.N)
	}
	return fmt.Sprintf("(%d,%s,%s)", e.N, e.L, e.R)
}

// fill inflates e in the interval owned by i (cheap event, no growth).
func fill(i *ID, e *Event) *Event {
	switch {
	case i.isZero():
		return e
	case i.isOne():
		return leafEv(evMax(e))
	case e.Leaf:
		return e
	case i.L.isOne():
		er := fill(i.R, e.R)
		m := evMax(e.L)
		if em := evMin(er); em > m {
			m = em
		}
		return normEv(nodeEv(e.N, leafEv(m), er))
	case i.R.isOne():
		el := fill(i.L, e.L)
		m := evMax(e.R)
		if em := evMin(el); em > m {
			m = em
		}
		return normEv(nodeEv(e.N, el, leafEv(m)))
	default:
		return normEv(nodeEv(e.N, fill(i.L, e.L), fill(i.R, e.R)))
	}
}

// grow inflates e in the interval owned by i by growing the tree, returning
// the new event and a cost used to choose the cheapest growth point.
func grow(i *ID, e *Event) (*Event, uint64) {
	const bigCost = 1 << 32
	if e.Leaf {
		if i.isOne() {
			return leafEv(e.N + 1), 0
		}
		ev, c := grow(i, nodeEv(e.N, leafEv(0), leafEv(0)))
		return ev, c + bigCost
	}
	switch {
	case i.Leaf && i.isOne():
		// Owning the whole subtree: fill would have applied; grow left.
		ev, c := grow(leafID(1), e.L)
		return nodeEv(e.N, ev, e.R), c + 1
	case i.Leaf:
		panic("itc: grow with zero ID")
	case i.L.isZero():
		er, c := grow(i.R, e.R)
		return nodeEv(e.N, e.L, er), c + 1
	case i.R.isZero():
		el, c := grow(i.L, e.L)
		return nodeEv(e.N, el, e.R), c + 1
	default:
		el, cl := grow(i.L, e.L)
		er, cr := grow(i.R, e.R)
		if cl <= cr {
			return nodeEv(e.N, el, e.R), cl + 1
		}
		return nodeEv(e.N, e.L, er), cr + 1
	}
}

// Stamp is an interval tree clock: an identity and an event history.
type Stamp struct {
	id *ID
	ev *Event
}

// Seed returns the initial stamp owning the entire ID space.
func Seed() *Stamp {
	return &Stamp{id: leafID(1), ev: leafEv(0)}
}

// Fork splits s into two stamps with disjoint IDs and the same history.
// The receiver is not modified.
func (s *Stamp) Fork() (*Stamp, *Stamp) {
	l, r := split(s.id)
	return &Stamp{id: l, ev: s.ev.clone()}, &Stamp{id: r, ev: s.ev.clone()}
}

// Join merges two stamps: IDs are summed, histories are joined pointwise.
func Join(a, b *Stamp) *Stamp {
	return &Stamp{id: sumID(a.id, b.id), ev: joinEv(a.ev, b.ev)}
}

// Event returns a new stamp whose history records one new event in s's
// interval (s itself is unchanged).
func (s *Stamp) Event() *Stamp {
	if s.id.isZero() {
		panic("itc: event on anonymous stamp")
	}
	filled := fill(s.id, s.ev)
	if !filled.Equal(s.ev) {
		return &Stamp{id: s.id.clone(), ev: filled}
	}
	grown, _ := grow(s.id, s.ev)
	return &Stamp{id: s.id.clone(), ev: normEv(grown)}
}

// Leq reports whether s's history is causally dominated by o's.
func (s *Stamp) Leq(o *Stamp) bool { return leqEv(s.ev, o.ev) }

// Peek returns an anonymous stamp (zero ID) carrying s's history, used for
// message timestamps.
func (s *Stamp) Peek() *Stamp {
	return &Stamp{id: leafID(0), ev: s.ev.clone()}
}

// ID returns the stamp's identifier tree.
func (s *Stamp) ID() *ID { return s.id }

// Clone deep-copies the stamp.
func (s *Stamp) Clone() *Stamp {
	return &Stamp{id: s.id.clone(), ev: s.ev.clone()}
}

// Equal reports structural equality of two stamps.
func (s *Stamp) Equal(o *Stamp) bool {
	return s.id.Equal(o.id) && s.ev.Equal(o.ev)
}

func (s *Stamp) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(s.id.String())
	b.WriteString(", ")
	b.WriteString(s.ev.String())
	b.WriteByte(')')
	return b.String()
}
