// Package query implements Pivot Tracing's LINQ-like query language (§3,
// Table 1 of the paper): parsing, the AST, and semantic analysis against a
// tracepoint registry. Queries are relational queries over the streaming
// datasets of tuples generated at tracepoints, with the happened-before
// join (->) as the distinguishing operator.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// TempFilter is a temporal filter applied to a joined source (§3): take the
// first/most recent 1 or N tuples of the joined query per execution.
type TempFilter uint8

// Temporal filters.
const (
	NoFilter TempFilter = iota
	FilterFirst
	FilterFirstN
	FilterMostRecent
	FilterMostRecentN
)

func (f TempFilter) String() string {
	switch f {
	case NoFilter:
		return ""
	case FilterFirst:
		return "First"
	case FilterFirstN:
		return "FirstN"
	case FilterMostRecent:
		return "MostRecent"
	case FilterMostRecentN:
		return "MostRecentN"
	default:
		return fmt.Sprintf("filter(%d)", uint8(f))
	}
}

// Source is the input of a From or Join clause: either a tracepoint name or
// a reference to another named query, optionally wrapped in a temporal
// filter.
type Source struct {
	Tracepoint string // dotted tracepoint name, if a tracepoint source
	Subquery   string // named query reference, if a query source
	Filter     TempFilter
	N          int // for FirstN / MostRecentN
}

// IsSubquery reports whether the source references a named query.
func (s Source) IsSubquery() bool { return s.Subquery != "" }

func (s Source) String() string {
	name := s.Tracepoint
	if s.IsSubquery() {
		name = s.Subquery
	}
	switch s.Filter {
	case NoFilter:
		return name
	case FilterFirstN, FilterMostRecentN:
		return fmt.Sprintf("%s(%d, %s)", s.Filter, s.N, name)
	default:
		return fmt.Sprintf("%s(%s)", s.Filter, name)
	}
}

// From is the query's primary input: one alias bound to one or more
// sources (multiple sources express the Union operation of Table 1).
type From struct {
	Alias   string
	Sources []Source
}

// Join is a happened-before join clause: Join Alias In Source On Left ->
// Right, joining tuples of Source to the query when they causally precede.
type Join struct {
	Alias  string
	Source Source
	// Left and Right are the aliases related by ->; Left must causally
	// precede Right.
	Left, Right string
}

// SelectItem is one output column: a plain expression or an aggregation of
// an expression.
type SelectItem struct {
	Agg    agg.Func
	HasAgg bool
	Expr   Expr // nil for a bare COUNT
}

func (si SelectItem) String() string {
	if !si.HasAgg {
		return si.Expr.String()
	}
	if si.Expr == nil {
		return si.Agg.String()
	}
	return fmt.Sprintf("%s(%s)", si.Agg, si.Expr)
}

// Query is a parsed Pivot Tracing query.
type Query struct {
	// Name is the query's identifier, assigned at installation; other
	// queries can reference it as a source.
	Name    string
	From    From
	Joins   []Join
	Where   []Expr // conjunction of predicates
	GroupBy []FieldRef
	Select  []SelectItem
	// Sample is the query's request-level sampling rate from a Sample
	// clause: in (0, 1), one keep/suppress decision is minted per request
	// and kept tuples are weighted by 1/Sample. Zero means unsampled
	// (exact). Rates outside (0, 1] are rejected at parse time.
	Sample float64
}

// Aliases returns the alias names bound by the query, From first.
func (q *Query) Aliases() []string {
	out := []string{q.From.Alias}
	for _, j := range q.Joins {
		out = append(out, j.Alias)
	}
	return out
}

// String renders the query in the surface syntax; parsing the result
// yields an equal AST (round-trip property).
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("From ")
	b.WriteString(q.From.Alias)
	b.WriteString(" In ")
	for i, s := range q.From.Sources {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.String())
	}
	for _, j := range q.Joins {
		fmt.Fprintf(&b, " Join %s In %s On %s -> %s", j.Alias, j.Source, j.Left, j.Right)
	}
	for _, w := range q.Where {
		fmt.Fprintf(&b, " Where %s", w)
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GroupBy ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(q.Select) > 0 {
		b.WriteString(" Select ")
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
	}
	if q.Sample != 0 {
		b.WriteString(" Sample ")
		b.WriteString(strconv.FormatFloat(q.Sample, 'g', -1, 64))
	}
	return b.String()
}

// Expr is an expression over tracepoint-exported variables.
type Expr interface {
	fmt.Stringer
	// Eval evaluates the expression; resolve maps a field reference to a
	// value.
	Eval(resolve func(FieldRef) tuple.Value) tuple.Value
}

// FieldRef references an exported variable of an aliased source, e.g.
// incr.delta. A bare alias reference (Field == "") resolves to the single
// output column of a joined subquery.
type FieldRef struct {
	Alias string
	Field string
}

func (f FieldRef) String() string {
	if f.Field == "" {
		return f.Alias
	}
	return f.Alias + "." + f.Field
}

// Eval implements Expr.
func (f FieldRef) Eval(resolve func(FieldRef) tuple.Value) tuple.Value {
	return resolve(f)
}

// Literal is a constant expression.
type Literal struct {
	Value tuple.Value
}

func (l Literal) String() string {
	if l.Value.Kind() == tuple.KindString {
		return fmt.Sprintf("%q", l.Value.Str())
	}
	return l.Value.String()
}

// Eval implements Expr.
func (l Literal) Eval(func(FieldRef) tuple.Value) tuple.Value { return l.Value }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpAnd: "&&", OpOr: "||",
}

func (op BinOp) String() string { return binOpNames[op] }

// Binary is a binary expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// Eval implements Expr. Numeric operators promote to float when either
// operand is a float; comparisons use tuple.Value.Compare.
func (b Binary) Eval(resolve func(FieldRef) tuple.Value) tuple.Value {
	l := b.L.Eval(resolve)
	r := b.R.Eval(resolve)
	switch b.Op {
	case OpEq:
		return tuple.Bool(l.Equal(r))
	case OpNe:
		return tuple.Bool(!l.Equal(r))
	case OpLt:
		return tuple.Bool(l.Compare(r) < 0)
	case OpLe:
		return tuple.Bool(l.Compare(r) <= 0)
	case OpGt:
		return tuple.Bool(l.Compare(r) > 0)
	case OpGe:
		return tuple.Bool(l.Compare(r) >= 0)
	case OpAnd:
		return tuple.Bool(l.Bool() && r.Bool())
	case OpOr:
		return tuple.Bool(l.Bool() || r.Bool())
	case OpAdd, OpSub, OpMul, OpDiv:
		return arith(b.Op, l, r)
	default:
		return tuple.Null
	}
}

func arith(op BinOp, l, r tuple.Value) tuple.Value {
	useFloat := l.Kind() == tuple.KindFloat || r.Kind() == tuple.KindFloat
	if op == OpDiv {
		if r.Float() == 0 {
			return tuple.Null
		}
		if !useFloat && l.Int()%r.Int() != 0 {
			useFloat = true
		}
	}
	if useFloat {
		a, b := l.Float(), r.Float()
		switch op {
		case OpAdd:
			return tuple.Float(a + b)
		case OpSub:
			return tuple.Float(a - b)
		case OpMul:
			return tuple.Float(a * b)
		case OpDiv:
			return tuple.Float(a / b)
		}
	}
	a, b := l.Int(), r.Int()
	switch op {
	case OpAdd:
		return tuple.Int(a + b)
	case OpSub:
		return tuple.Int(a - b)
	case OpMul:
		return tuple.Int(a * b)
	case OpDiv:
		return tuple.Int(a / b)
	}
	return tuple.Null
}

// Unary is a unary expression (logical not, numeric negation).
type Unary struct {
	Op byte // '!' or '-'
	X  Expr
}

func (u Unary) String() string { return fmt.Sprintf("%c%s", u.Op, u.X) }

// Eval implements Expr.
func (u Unary) Eval(resolve func(FieldRef) tuple.Value) tuple.Value {
	v := u.X.Eval(resolve)
	switch u.Op {
	case '!':
		return tuple.Bool(!v.Bool())
	case '-':
		if v.Kind() == tuple.KindFloat {
			return tuple.Float(-v.Float())
		}
		return tuple.Int(-v.Int())
	default:
		return tuple.Null
	}
}

// Walk visits every sub-expression of e, including e itself.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case Binary:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case Unary:
		Walk(x.X, visit)
	}
}

// FieldRefs collects the distinct field references in an expression.
func FieldRefs(e Expr) []FieldRef {
	var out []FieldRef
	seen := map[FieldRef]bool{}
	Walk(e, func(x Expr) {
		if f, ok := x.(FieldRef); ok && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	})
	return out
}
