package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/baggage"
)

// rpcStats counts cluster-wide RPC activity and the bytes of baggage that
// rode along (the paper's propagation-overhead metric).
type rpcStats struct {
	calls        atomic.Int64
	baggageBytes atomic.Int64
}

var stats rpcStats

// RPCCalls returns the total number of RPCs issued across all clusters in
// this process (benchmarks use single clusters, so this is effectively
// per-cluster).
func RPCCalls() int64 { return stats.calls.Load() }

// BaggageBytes returns the total serialized baggage bytes carried on RPCs.
func BaggageBytes() int64 { return stats.baggageBytes.Load() }

// Handle registers an RPC handler under "Service.Method".
func (p *Process) Handle(method string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.handlers[method]; dup {
		panic(fmt.Sprintf("cluster: duplicate handler %s on %s/%s",
			method, p.Info.Host, p.Info.ProcName))
	}
	p.handlers[method] = h
}

// Sizes gives the simulated payload sizes of an RPC, in bytes (baggage
// bytes are added automatically).
type Sizes struct {
	Request  float64
	Response float64
}

// Call issues a synchronous RPC from the process owning ctx to the target
// process. Baggage is serialized into the request message, deserialized at
// the callee (lazily), propagated through the handler, and carried back in
// the response; the caller's baggage is replaced by the response baggage —
// the paper's execution-path propagation across process boundaries.
//
// The transfer contends for the caller's transmit link and the callee's
// receive link (and the reverse for the response).
func (p *Process) Call(ctx context.Context, target *Process, method string, req any, sz Sizes) (any, error) {
	target.mu.Lock()
	h, ok := target.handlers[method]
	target.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rpc: no handler %s on %s/%s",
			method, target.Info.Host, target.Info.ProcName)
	}
	stats.calls.Add(1)

	callerBag := baggage.FromContext(ctx)
	var wire []byte
	if callerBag != nil {
		wire = callerBag.Serialize()
	}
	stats.baggageBytes.Add(int64(len(wire)))
	p.chargeBaggageCost(len(wire))

	// Request transfer (payload + baggage on the wire).
	p.Host.Send(target.Host, sz.Request+float64(len(wire)))

	// The callee sees its own deserialized copy — process isolation.
	calleeBag := baggage.Deserialize(wire)
	calleeCtx := target.reenter(ctx, calleeBag)
	target.rpcRecv.Here(calleeCtx, method)
	resp, err := h(calleeCtx, req)
	target.rpcResp.Here(calleeCtx, method)

	respWire := calleeBag.Serialize()
	stats.baggageBytes.Add(int64(len(respWire)))
	target.chargeBaggageCost(len(respWire))

	// Response transfer.
	target.Host.Send(p.Host, sz.Response+float64(len(respWire)))

	// Propagate the response baggage back into the caller's context.
	if callerBag != nil {
		callerBag.Adopt(baggage.Deserialize(respWire))
	}
	return resp, err
}

// chargeBaggageCost burns virtual CPU time for serializing non-empty
// baggage at a process boundary (the Table 5 overhead model).
func (p *Process) chargeBaggageCost(wireBytes int) {
	if wireBytes == 0 {
		return
	}
	cfg := p.C.cfg
	cost := cfg.BaggageFixedCost + time.Duration(wireBytes)*cfg.BaggageByteCost
	if cost > 0 {
		p.C.Env.Sleep(cost)
	}
}

// Go runs fn as a new thread of this process with its own branch of the
// request's baggage; it returns a join function that blocks until fn
// completes and merges the branch back (the paper's split/join for
// branching executions). The pattern:
//
//	join := p.Go(ctx, func(ctx context.Context) { ... })
//	...
//	join()
func (p *Process) Go(ctx context.Context, fn func(ctx context.Context)) (join func()) {
	parent := baggage.FromContext(ctx)
	var mine, theirs *baggage.Baggage
	if parent != nil {
		mine, theirs = parent.Split()
		parent.Adopt(mine)
	}
	done := p.C.Env.NewWaitGroup()
	done.Add(1)
	p.C.Env.Go(func() {
		defer done.Done()
		branchCtx := ctx
		if theirs != nil {
			branchCtx = baggage.NewContext(ctx, theirs)
		}
		fn(branchCtx)
	})
	return func() {
		done.Wait()
		if parent != nil {
			merged := baggage.Join(parent.Clone(), theirs)
			parent.Adopt(merged)
		}
	}
}
