package hdfs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cluster"
	"repro/internal/tracepoint"
)

// ClientConfig controls client-side replica selection.
type ClientConfig struct {
	// RandomReplicaSelection, when false, reproduces the client half of
	// HDFS-6268: the client always reads the first location returned by
	// the NameNode. When true (the fix), it prefers a local replica and
	// otherwise selects uniformly at random.
	RandomReplicaSelection bool
	// Seed drives random selection.
	Seed int64
}

// Client is the HDFS client library, embedded in an application process.
type Client struct {
	Proc *cluster.Process
	nn   *NameNode
	cfg  ClientConfig

	mu  sync.Mutex
	rng *rand.Rand

	tpClientProto *tracepoint.Tracepoint
}

// rpcOverhead is the payload size of small control RPCs.
const rpcOverhead = 200

// NewClient creates an HDFS client inside proc.
func NewClient(proc *cluster.Process, nn *NameNode, cfg ClientConfig) *Client {
	c := &Client{
		Proc: proc,
		nn:   nn,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed ^ proc.Info.ProcID)),
	}
	// The paper's Q2 instruments the client protocols of HDFS, HBase, and
	// MapReduce under one tracepoint vocabulary.
	c.tpClientProto = proc.Define("ClientProtocols")
	return c
}

// GetBlockLocations asks the NameNode for the replica map of a byte range.
func (c *Client) GetBlockLocations(ctx context.Context, src string, offset, length float64) ([]BlockLocation, error) {
	resp, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.GetBlockLocations",
		GetBlockLocationsReq{Src: src, ClientHost: c.Proc.Info.Host, Offset: offset, Length: length},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	if err != nil {
		return nil, err
	}
	locs, _ := resp.([]BlockLocation)
	return locs, nil
}

// chooseReplica applies the client half of the replica selection logic.
func (c *Client) chooseReplica(replicas []string) string {
	if len(replicas) == 0 {
		return ""
	}
	if !c.cfg.RandomReplicaSelection {
		// HDFS-6268: always take the first location.
		return replicas[0]
	}
	// Fixed behaviour: local replica if present, else uniform random.
	for _, h := range replicas {
		if h == c.Proc.Info.Host {
			return h
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return replicas[c.rng.Intn(len(replicas))]
}

// Read reads length bytes of src starting at offset, selecting a replica
// per block and streaming the data from its DataNode.
func (c *Client) Read(ctx context.Context, src string, offset, length float64) error {
	c.tpClientProto.Here(ctx)
	locs, err := c.GetBlockLocations(ctx, src, offset, length)
	if err != nil {
		return err
	}
	remaining := length
	for _, bl := range locs {
		n := bl.Size
		if n > remaining {
			n = remaining
		}
		if err := c.readBlock(ctx, bl, n); err != nil {
			return err
		}
		remaining -= n
	}
	return nil
}

// readBlock streams one block from its chosen replica, falling back to
// the remaining replicas in location order when a DataNode fails (the
// real client's dead-node retry). The error of the last attempt is
// returned if every replica fails.
func (c *Client) readBlock(ctx context.Context, bl BlockLocation, n float64) error {
	chosen := c.chooseReplica(bl.Replicas)
	if chosen == "" {
		return fmt.Errorf("hdfs: block %q has no replicas", bl.Block)
	}
	var lastErr error
	tried := 0
	for i := -1; i < len(bl.Replicas); i++ {
		host := chosen
		if i >= 0 {
			if bl.Replicas[i] == chosen {
				continue // already tried as the primary choice
			}
			host = bl.Replicas[i]
		}
		tried++
		dnProc := c.Proc.C.Proc(host, "DataNode")
		if dnProc == nil {
			return fmt.Errorf("hdfs: no DataNode on %q", host)
		}
		_, err := c.Proc.Call(ctx, dnProc, "DataTransferProtocol.ReadBlock",
			ReadBlockReq{Block: bl.Block, Length: n, DestHost: c.Proc.Info.Host},
			cluster.Sizes{Request: rpcOverhead, Response: 64})
		if err == nil {
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("hdfs: all %d replicas of %q failed: %w", tried, bl.Block, lastErr)
}

// Create creates src with the given size and writes its blocks through the
// replication pipelines.
func (c *Client) Create(ctx context.Context, src string, size float64) error {
	c.tpClientProto.Here(ctx)
	resp, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Create",
		CreateReq{Src: src, Size: size},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	if err != nil {
		return err
	}
	locs, _ := resp.([]BlockLocation)
	for _, bl := range locs {
		if err := c.writeBlock(ctx, bl); err != nil {
			return err
		}
	}
	_, err = c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Complete", src,
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}

// writeBlock streams one block into its replication pipeline, skipping
// offline heads (pipeline recovery's client half: when the first replica
// is down, the next one leads the pipeline).
func (c *Client) writeBlock(ctx context.Context, bl BlockLocation) error {
	if len(bl.Replicas) == 0 {
		return nil
	}
	var lastErr error
	for i := range bl.Replicas {
		head := c.Proc.C.Proc(bl.Replicas[i], "DataNode")
		if head == nil {
			return fmt.Errorf("hdfs: no DataNode on %q", bl.Replicas[i])
		}
		_, err := c.Proc.Call(ctx, head, "DataTransferProtocol.WriteBlock",
			WriteBlockReq{
				Block: bl.Block, Length: bl.Size,
				SrcHost: c.Proc.Info.Host, Pipeline: bl.Replicas[i+1:],
			},
			cluster.Sizes{Request: bl.Size, Response: 64})
		if err == nil || !errors.Is(err, ErrDataNodeOffline) {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("hdfs: all %d pipeline replicas of %q offline: %w", len(bl.Replicas), bl.Block, lastErr)
}

// CreateMetadataOnly registers src in the namespace without transferring
// block data — used to pre-populate large datasets instantly.
func (c *Client) CreateMetadataOnly(ctx context.Context, src string, size float64) error {
	_, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Create",
		CreateReq{Src: src, Size: size},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}

// Open checks that src exists (a NameNode read operation).
func (c *Client) Open(ctx context.Context, src string) error {
	c.tpClientProto.Here(ctx)
	_, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Open", src,
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}

// Rename renames src to dst (a NameNode write operation).
func (c *Client) Rename(ctx context.Context, src, dst string) error {
	c.tpClientProto.Here(ctx)
	_, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Rename",
		RenameReq{Src: src, Dst: dst},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}
