package pivot

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	pt := New("test-service")
	requests := pt.Define("Server.HandleRequest", "size")

	q, err := pt.Install(`From r In Server.HandleRequest
		GroupBy r.procName
		Select r.procName, COUNT, SUM(r.size)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ctx := pt.NewRequest(context.Background())
		requests.Here(ctx, 100*(i+1))
	}
	pt.Flush()
	rows := q.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "test-service" || rows[0][1].Int() != 5 || rows[0][2].Int() != 1500 {
		t.Fatalf("row = %v", rows[0])
	}
}

func TestCrossServiceJoinViaInjectExtract(t *testing.T) {
	// Two logical services in one test: frontend packs its name, backend
	// observes bytes; baggage crosses the "wire" via Inject/Extract.
	pt := New("node")
	fe := pt.Define("Frontend.Receive")
	be := pt.Define("Backend.Read", "bytes")

	q, err := pt.Install(`From b In Backend.Read
		Join f In First(Frontend.Receive) On f -> b
		GroupBy f.procName
		Select f.procName, SUM(b.bytes)`)
	if err != nil {
		t.Fatal(err)
	}

	ctx := WithProcess(pt.NewRequest(context.Background()), "fe-host", "frontend")
	fe.Here(ctx)
	wire := Inject(ctx)
	if len(wire) == 0 {
		t.Fatal("baggage should be non-empty after pack")
	}
	backendCtx := Extract(WithProcess(context.Background(), "be-host", "backend"), wire)
	be.Here(backendCtx, 4096)

	pt.Flush()
	rows := q.Rows()
	if len(rows) != 1 || rows[0][0].Str() != "frontend" || rows[0][1].Int() != 4096 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSplitJoinBranches(t *testing.T) {
	pt := New("svc")
	evt := pt.Define("Work.Item", "n")
	end := pt.Define("Work.Done")

	q, err := pt.Install(`From e In Work.Done
		Join w In Work.Item On w -> e
		GroupBy e.procName
		Select e.procName, COUNT`)
	if err != nil {
		t.Fatal(err)
	}

	ctx := pt.NewRequest(context.Background())
	l, r := Split(ctx)
	evt.Here(l, 1)
	evt.Here(r, 2)
	ctx = Join(ctx, l, r)
	end.Here(ctx)

	pt.Flush()
	rows := q.Rows()
	if len(rows) != 1 || rows[0][1].Int() != 2 {
		t.Fatalf("rows = %v, want both branch items counted", rows)
	}
}

func TestNamedQueryJoin(t *testing.T) {
	pt := New("svc")
	pt.Define("Recv")
	pt.Define("Send")
	pt.Define("Done", "id")

	if _, err := pt.InstallNamed("LAT", `From s In Send
		Join r In MostRecent(Recv) On r -> s
		Select s.time - r.time`); err != nil {
		t.Fatal(err)
	}
	q, err := pt.Install(`From d In Done
		Join m In LAT On m -> end
		GroupBy d.id
		Select d.id, AVERAGE(m)`)
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	if !strings.Contains(q.Explain(), "UNPACK") {
		t.Errorf("Explain = %q", q.Explain())
	}
}

func TestStartReportingTicker(t *testing.T) {
	pt := New("svc")
	tp := pt.Define("Evt")
	q, err := pt.Install(`From e In Evt GroupBy e.procName Select e.procName, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	stop := pt.StartReporting(10 * time.Millisecond)
	defer stop()
	tp.Here(pt.NewRequest(context.Background()))
	deadline := time.After(2 * time.Second)
	for {
		if rows := q.Rows(); len(rows) == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no report within 2s")
		case <-time.After(5 * time.Millisecond):
		}
	}
	stop() // idempotent
}

func TestUninstallFromFacade(t *testing.T) {
	pt := New("svc")
	tp := pt.Define("Evt")
	q, err := pt.Install(`From e In Evt GroupBy e.procName Select e.procName, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	q.Uninstall()
	tp.Here(pt.NewRequest(context.Background()))
	pt.Flush()
	if rows := q.Rows(); len(rows) != 0 {
		t.Fatalf("rows after uninstall = %v", rows)
	}
	if tp.Enabled() {
		t.Error("tracepoint still enabled after uninstall")
	}
}

func TestInjectEmptyBaggageIsZeroBytes(t *testing.T) {
	ctx := NewRequest(context.Background())
	if wire := Inject(ctx); len(wire) != 0 {
		t.Fatalf("empty baggage = %d bytes, want 0", len(wire))
	}
	// Extract of nil wire still yields a usable context.
	ctx2 := Extract(context.Background(), nil)
	if ctx2 == nil {
		t.Fatal("Extract(nil) returned nil context")
	}
}
