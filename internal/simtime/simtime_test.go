package simtime

import (
	"sync"
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var at time.Duration
	start := time.Now()
	e.Run(func() {
		e.Sleep(10 * time.Minute)
		at = e.Now()
	})
	if at != 10*time.Minute {
		t.Fatalf("virtual time = %v, want 10m", at)
	}
	if real := time.Since(start); real > 2*time.Second {
		t.Fatalf("took %v of real time for virtual sleep", real)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		e.Sleep(0)
		e.Sleep(-5 * time.Second)
		if e.Now() != 0 {
			t.Errorf("now = %v, want 0", e.Now())
		}
	})
}

func TestConcurrentSleepOrdering(t *testing.T) {
	e := NewEnv()
	var mu sync.Mutex
	var order []int
	e.Run(func() {
		wg := e.NewWaitGroup()
		for i, d := range []time.Duration{30, 10, 20} {
			i, d := i, d
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				e.Sleep(d * time.Millisecond)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNestedGo(t *testing.T) {
	e := NewEnv()
	var total time.Duration
	e.Run(func() {
		wg := e.NewWaitGroup()
		wg.Add(1)
		e.Go(func() {
			defer wg.Done()
			e.Sleep(time.Second)
			inner := e.NewWaitGroup()
			inner.Add(1)
			e.Go(func() {
				defer inner.Done()
				e.Sleep(2 * time.Second)
			})
			inner.Wait()
		})
		wg.Wait()
		total = e.Now()
	})
	if total != 3*time.Second {
		t.Fatalf("total = %v, want 3s", total)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	e := NewEnv()
	var mu sync.Mutex
	var woke []int
	e.Run(func() {
		cond := e.NewCond(&mu)
		ready := e.NewWaitGroup()
		done := e.NewWaitGroup()
		for i := 0; i < 3; i++ {
			i := i
			ready.Add(1)
			done.Add(1)
			e.Go(func() {
				defer done.Done()
				mu.Lock()
				ready.Done()
				cond.Wait()
				woke = append(woke, i)
				mu.Unlock()
			})
			// Serialize arrival order so FIFO expectation is deterministic.
			e.Sleep(time.Millisecond)
		}
		ready.Wait()
		for i := 0; i < 3; i++ {
			cond.Signal()
			e.Sleep(time.Millisecond)
		}
		done.Wait()
	})
	for i, v := range woke {
		if v != i {
			t.Fatalf("wake order = %v, want FIFO", woke)
		}
	}
}

func TestCondWaitTimeout(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		var mu sync.Mutex
		cond := e.NewCond(&mu)
		mu.Lock()
		timedOut := cond.WaitTimeout(5 * time.Second)
		mu.Unlock()
		if !timedOut {
			t.Error("expected timeout")
		}
		if e.Now() != 5*time.Second {
			t.Errorf("now = %v, want 5s", e.Now())
		}
	})
}

func TestCondWaitTimeoutSignaledFirst(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		var mu sync.Mutex
		cond := e.NewCond(&mu)
		e.Go(func() {
			e.Sleep(time.Second)
			cond.Signal()
		})
		mu.Lock()
		timedOut := cond.WaitTimeout(time.Minute)
		mu.Unlock()
		if timedOut {
			t.Error("expected signal, got timeout")
		}
		if e.Now() != time.Second {
			t.Errorf("now = %v, want 1s", e.Now())
		}
	})
}

func TestQueueFIFO(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		q := NewQueue[int](e)
		for i := 0; i < 5; i++ {
			q.Push(i)
		}
		for i := 0; i < 5; i++ {
			if got := q.Pop(); got != i {
				t.Fatalf("Pop = %d, want %d", got, i)
			}
		}
	})
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	e := NewEnv()
	var popped int
	var at time.Duration
	e.Run(func() {
		q := NewQueue[int](e)
		e.Go(func() {
			e.Sleep(3 * time.Second)
			q.Push(42)
		})
		popped = q.Pop()
		at = e.Now()
	})
	if popped != 42 || at != 3*time.Second {
		t.Fatalf("popped %d at %v, want 42 at 3s", popped, at)
	}
}

func TestQueuePopTimeout(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		q := NewQueue[int](e)
		if _, ok := q.PopTimeout(time.Second); ok {
			t.Error("expected timeout")
		}
		if e.Now() != time.Second {
			t.Errorf("now = %v, want 1s", e.Now())
		}
		q.Push(7)
		v, ok := q.PopTimeout(time.Second)
		if !ok || v != 7 {
			t.Errorf("got (%d, %v), want (7, true)", v, ok)
		}
	})
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEnv()
	var end time.Duration
	e.Run(func() {
		sem := e.NewSemaphore(2)
		wg := e.NewWaitGroup()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				sem.Acquire()
				defer sem.Release()
				e.Sleep(time.Second)
			})
		}
		wg.Wait()
		end = e.Now()
	})
	// 4 tasks of 1s with 2 permits => 2s total.
	if end != 2*time.Second {
		t.Fatalf("end = %v, want 2s", end)
	}
}

func TestRunForStopsOpenEndedWork(t *testing.T) {
	e := NewEnv()
	count := 0
	e.RunFor(10*time.Second, func() {
		for {
			e.Sleep(time.Second)
			count++
			if e.Done() {
				return
			}
		}
	})
	if count < 9 || count > 11 {
		t.Fatalf("count = %d, want ~10", count)
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on deadlock")
		}
	}()
	e := NewEnv()
	e.Run(func() {
		var mu sync.Mutex
		cond := e.NewCond(&mu)
		mu.Lock()
		cond.Wait() // nobody will ever signal
	})
}

func TestManyGoroutinesScale(t *testing.T) {
	e := NewEnv()
	var mu sync.Mutex
	total := 0
	e.Run(func() {
		wg := e.NewWaitGroup()
		for i := 0; i < 1000; i++ {
			i := i
			wg.Add(1)
			e.Go(func() {
				defer wg.Done()
				e.Sleep(time.Duration(i%97) * time.Millisecond)
				mu.Lock()
				total++
				mu.Unlock()
			})
		}
		wg.Wait()
	})
	if total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
}

func TestWaitGroupZeroWaitReturnsImmediately(t *testing.T) {
	e := NewEnv()
	e.Run(func() {
		wg := e.NewWaitGroup()
		wg.Wait() // counter is zero; must not block
	})
}
