// Package simtime provides a virtual-time discrete-event scheduler for
// simulating distributed systems deterministically and quickly.
//
// Code under simulation runs in "managed" goroutines spawned with Env.Go or
// Env.Run. Managed goroutines must block only through the primitives in this
// package (Sleep, Cond, Queue, Semaphore, WaitGroup). When every managed
// goroutine is blocked, the environment advances virtual time to the next
// pending timer — so a simulated experiment spanning minutes of virtual time
// completes in milliseconds of real time.
//
// The clock never advances while any managed goroutine is runnable, which
// makes timing exact: a Sleep(d) wakes at precisely now+d in virtual time.
package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Env is a simulation environment: a virtual clock plus the accounting needed
// to know when all managed goroutines are blocked.
type Env struct {
	mu        sync.Mutex
	now       time.Duration
	seq       int64
	timers    timerHeap
	runnable  int
	done      bool
	rootDone  chan struct{}
	closeOnce sync.Once
	panicVal  any
}

// NewEnv returns a fresh environment with the clock at zero.
func NewEnv() *Env {
	return &Env{rootDone: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Done reports whether the environment has finished (the root function of Run
// has returned). Long-lived background loops can poll Done to exit cleanly.
func (e *Env) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.done
}

// waiter represents one parked managed goroutine.
type waiter struct {
	ch       chan struct{}
	wakeAt   time.Duration
	seq      int64
	heapIdx  int // index in the timer heap, -1 if not scheduled
	fired    bool
	timedOut bool
}

// timerHeap is a min-heap of waiters ordered by (wakeAt, seq).
type timerHeap []*waiter

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].wakeAt != h[j].wakeAt {
		return h[i].wakeAt < h[j].wakeAt
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *timerHeap) Push(x any) {
	w := x.(*waiter)
	w.heapIdx = len(*h)
	*h = append(*h, w)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.heapIdx = -1
	*h = old[:n-1]
	return w
}

func (e *Env) newWaiter() *waiter {
	e.seq++
	return &waiter{ch: make(chan struct{}), seq: e.seq, heapIdx: -1}
}

// fire marks w runnable and unparks it. Caller holds e.mu.
func (e *Env) fire(w *waiter) {
	if w.fired {
		return
	}
	w.fired = true
	if w.heapIdx >= 0 {
		heap.Remove(&e.timers, w.heapIdx)
	}
	e.runnable++
	close(w.ch)
}

// block parks the calling goroutine on w. Caller holds e.mu; block unlocks it.
func (e *Env) block(w *waiter) {
	e.runnable--
	if e.runnable == 0 {
		e.advance()
	}
	e.mu.Unlock()
	<-w.ch
}

// advance moves virtual time forward to the next timer and fires it.
// Caller holds e.mu and has observed runnable == 0.
func (e *Env) advance() {
	if e.done {
		return
	}
	if e.timers.Len() == 0 {
		// Deadlock: every managed goroutine is blocked and no timer is
		// pending. Route the panic to the goroutine that called Run.
		e.done = true
		if e.panicVal == nil {
			e.panicVal = "simtime: deadlock — all managed goroutines blocked with no pending timers"
		}
		e.closeOnce.Do(func() { close(e.rootDone) })
		return
	}
	w := heap.Pop(&e.timers).(*waiter)
	if w.wakeAt > e.now {
		e.now = w.wakeAt
	}
	w.timedOut = true
	w.fired = true
	e.runnable++
	close(w.ch)
}

// Sleep blocks the calling managed goroutine for d of virtual time.
// Non-positive durations yield (sleep for zero time) to preserve event
// ordering fairness.
func (e *Env) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e.mu.Lock()
	w := e.newWaiter()
	w.wakeAt = e.now + d
	heap.Push(&e.timers, w)
	e.block(w)
}

// Go spawns fn as a managed goroutine.
func (e *Env) Go(fn func()) {
	e.mu.Lock()
	e.runnable++
	e.mu.Unlock()
	go func() {
		defer e.exit()
		fn()
	}()
}

func (e *Env) exit() {
	e.mu.Lock()
	e.runnable--
	if e.runnable == 0 && !e.done {
		e.advance()
	}
	e.mu.Unlock()
}

// Run executes fn as the root managed goroutine and returns when fn returns.
// Other managed goroutines still blocked at that point are abandoned: the
// clock stops and they never wake. Run must be called from an unmanaged
// goroutine (typically the test or main goroutine), and at most once per Env.
func (e *Env) Run(fn func()) {
	e.mu.Lock()
	e.runnable++
	e.mu.Unlock()
	go func() {
		defer func() {
			e.mu.Lock()
			e.done = true
			e.runnable--
			e.mu.Unlock()
			e.closeOnce.Do(func() { close(e.rootDone) })
		}()
		fn()
	}()
	<-e.rootDone
	e.mu.Lock()
	pv := e.panicVal
	e.mu.Unlock()
	if pv != nil {
		panic(pv)
	}
}

// RunFor executes fn as the root goroutine but returns after d of virtual
// time even if fn has not finished. Convenient for open-ended workloads.
func (e *Env) RunFor(d time.Duration, fn func()) {
	e.Run(func() {
		e.Go(fn)
		e.Sleep(d)
	})
}

// String describes the environment state, for debugging.
func (e *Env) String() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fmt.Sprintf("simtime.Env{now=%v runnable=%d timers=%d done=%v}",
		e.now, e.runnable, e.timers.Len(), e.done)
}
