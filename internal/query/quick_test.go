package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/randtest"
)

// TestQuickParserNeverPanics throws random byte soup at the parser: it may
// reject the input, but it must never panic.
func TestQuickParserNeverPanics(t *testing.T) {
	randtest.Check(t, 500, 500, func(seed int64) (err error) {
		rng := rand.New(rand.NewSource(seed))
		raw := make([]byte, rng.Intn(64))
		for i := range raw {
			raw[i] = byte(rng.Intn(256))
		}
		input := string(raw)
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("parser panicked on %q: %v", input, r)
			}
		}()
		Parse(input)
		return nil
	})
}

// TestQuickTokenSoupNeverPanics does the same with strings built from the
// language's own tokens — more likely to reach deep parser states.
func TestQuickTokenSoupNeverPanics(t *testing.T) {
	tokens := []string{
		"From", "In", "Join", "On", "Where", "GroupBy", "Select",
		"First", "MostRecent", "FirstN", "MostRecentN",
		"COUNT", "SUM", "MIN", "MAX", "AVERAGE",
		"e", "incr", "cl", "a.b", "->", ",", "(", ")", "=", "!=",
		"<", "<=", ">", ">=", "+", "-", "*", "/", "&&", "||", "!",
		"42", "3.5", `"str"`, "true", "false", ".",
	}
	randtest.Check(t, 1000, 600, func(seed int64) (err error) {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < rng.Intn(30); i++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		input := b.String()
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("parser panicked on %q: %v", input, r)
			}
		}()
		Parse(input)
		return nil
	})
}

// randomQuery generates a random well-formed query AST as surface text.
func randomQuery(rng *rand.Rand) string {
	var b strings.Builder
	alias := func(i int) string { return fmt.Sprintf("a%d", i) }
	fmt.Fprintf(&b, "From %s In Tp%d", alias(0), rng.Intn(4))
	nJoins := rng.Intn(3)
	for j := 1; j <= nJoins; j++ {
		src := fmt.Sprintf("Tp%d", 4+j)
		switch rng.Intn(4) {
		case 0:
			src = "First(" + src + ")"
		case 1:
			src = "MostRecent(" + src + ")"
		case 2:
			src = fmt.Sprintf("FirstN(%d, %s)", 1+rng.Intn(5), src)
		}
		fmt.Fprintf(&b, " Join %s In %s On %s -> %s", alias(j), src, alias(j), alias(rng.Intn(j)))
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, " Where %s.x < %d", alias(rng.Intn(nJoins+1)), rng.Intn(100))
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, " GroupBy %s.host", alias(0))
		fmt.Fprintf(&b, " Select %s.host, COUNT", alias(0))
	} else {
		fmt.Fprintf(&b, " Select SUM(%s.x)", alias(rng.Intn(nJoins+1)))
	}
	return b.String()
}

// TestQuickPrintParseFixpoint: parse(print(parse(q))) == parse(q) for
// random well-formed queries.
func TestQuickPrintParseFixpoint(t *testing.T) {
	randtest.Check(t, 300, 700, func(seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		text := randomQuery(rng)
		q1, err := Parse(text)
		if err != nil {
			return fmt.Errorf("generator produced invalid query %q: %w", text, err)
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			return fmt.Errorf("reparse of %q failed: %w", printed, err)
		}
		if q2.String() != printed {
			return fmt.Errorf("print/parse fixpoint broken:\nfirst:  %s\nsecond: %s", printed, q2.String())
		}
		return nil
	})
}
