// Command pttrace renders causal request traces captured by Pivot
// Tracing's span layer: per-request DAGs reconstructed from the spans
// agents ship on the pt.trace topic, drawn as an indented tree with
// per-span timing, plus a summary table with end-to-end latency,
// critical-path time, and the dominant process tier of every trace.
//
// Usage:
//
//	pttrace -demo                    scripted demo workload (no deployment needed)
//	pttrace -demo -requests 3        several requests, one trace each
//	pttrace -addr 127.0.0.1:7000     collect live spans from a deployment's bus
//	pttrace -addr ... -collect 5s    how long to listen before rendering
//
// With -addr, pttrace joins the deployment's pub/sub server as a passive
// trace listener; the deployment must have span capture enabled
// (PT.EnableSpans / Cluster.EnableSpans). With -demo it executes the
// fixed split/join storage workload (querygen.DemoCase) on a simulated
// cluster — a request fans out to two datanode reads and joins back — and
// renders the resulting traces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/bus"
	"repro/internal/cluster"
	"repro/internal/querygen"
	"repro/internal/simtime"
	"repro/internal/spans"
	"repro/internal/wire"
)

func main() {
	demo := flag.Bool("demo", false, "run the scripted demo workload instead of connecting")
	requests := flag.Int("requests", 1, "demo requests to execute (one trace each)")
	addr := flag.String("addr", "", "pub/sub server address of the deployment")
	collect := flag.Duration("collect", 3*time.Second, "how long to listen for live spans")
	flag.Parse()

	switch {
	case *demo:
		out, err := runDemo(*requests)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pttrace:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	case *addr != "":
		out, err := collectLive(*addr, *collect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pttrace:", err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		fmt.Fprintln(os.Stderr, "pttrace: -demo or -addr required; see -help")
		os.Exit(2)
	}
}

// runDemo executes the fixed demo case on a simulated cluster with span
// capture enabled and renders every reconstructed trace.
func runDemo(requests int) (string, error) {
	if requests < 1 {
		requests = 1
	}
	c := querygen.DemoCase()
	var runErr error
	var out strings.Builder
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.ReportInterval = 5 * time.Millisecond
		cl := cluster.New(env, cfg)
		builder := cl.EnableSpans(0)
		x := cluster.NewScriptExec(cl, c)
		for i := 0; i < requests; i++ {
			if err := x.Run(); err != nil {
				runErr = err
				return
			}
			env.Sleep(time.Millisecond)
		}
		env.Sleep(3 * cfg.ReportInterval)
		cl.FlushAgents()
		writeTraces(&out, builder)
	})
	return out.String(), runErr
}

// collectLive joins the deployment's bus as a passive trace listener,
// accumulates span batches for the collection window, and renders what
// arrived.
func collectLive(addr string, window time.Duration) (string, error) {
	b := bus.New()
	builder := spans.NewBuilder()
	sub := b.Subscribe(agent.TraceTopic, func(msg any) {
		if sb, ok := msg.(agent.SpanBatch); ok {
			builder.AddBatch(sb.Spans)
		}
	})
	defer b.Unsubscribe(sub)

	link, err := bus.Connect(b, addr, wire.BusCodec{},
		nil, []string{agent.TraceTopic})
	if err != nil {
		return "", err
	}
	defer link.Close()

	time.Sleep(window)
	if builder.Len() == 0 {
		return "", fmt.Errorf("no spans within %s (is span capture enabled in the deployment?)", window)
	}
	var out strings.Builder
	writeTraces(&out, builder)
	return out.String(), nil
}

// writeTraces renders every trace's tree followed by the summary table.
func writeTraces(out *strings.Builder, builder *spans.Builder) {
	for _, id := range builder.TraceIDs() {
		out.WriteString(builder.Trace(id).RenderTree())
		out.WriteString("\n")
	}
	out.WriteString(builder.Summary())
}
