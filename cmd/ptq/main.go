// Command ptq parses, analyzes, and explains Pivot Tracing queries: it
// prints the canonicalized query, the output schema, and the compiled
// advice for each tracepoint in the paper's notation (§3).
//
// Usage:
//
//	ptq [-unoptimized] 'From incr In DataNodeMetrics.incrBytesRead ...'
//	echo 'From dnop In DN.DataTransferProtocol ...' | ptq
//
// Queries are resolved against the simulated Hadoop stack's tracepoint
// vocabulary (the same definitions the experiment harnesses use).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/tracepoint"
)

// vocabulary returns the tracepoint definitions of the simulated stack.
func vocabulary() *tracepoint.Registry {
	reg := tracepoint.NewRegistry()
	reg.Define("ClientProtocols")
	reg.Define("DataNodeMetrics.incrBytesRead", "delta")
	reg.Define("DataNodeMetrics.incrBytesWritten", "delta")
	reg.Define("DN.DataTransferProtocol", "op", "size")
	reg.Define("DN.OpQueued", "op")
	reg.Define("DN.OpStart", "op")
	reg.Define("DN.TransferStart", "size", "dest")
	reg.Define("DN.TransferEnd", "size", "dest")
	reg.Define("NN.GetBlockLocations", "src", "replicas")
	reg.Define("NN.Create", "src")
	reg.Define("NN.Open", "src")
	reg.Define("NN.Rename", "src", "dst")
	reg.Define("NN.Complete", "src")
	reg.Define("RS.ClientService", "op", "row", "size")
	reg.Define("RS.Enqueue", "op")
	reg.Define("RS.Dequeue", "op")
	reg.Define("RS.ProcessEnd", "op")
	reg.Define("RS.GCStart")
	reg.Define("RS.GCEnd")
	reg.Define("StressTest.DoNextOp", "op")
	reg.Define("FileInputStream.read", "length")
	reg.Define("FileOutputStream.write", "length")
	reg.Define("RPC.Receive", "method")
	reg.Define("RPC.Respond", "method")
	reg.Define("JobComplete", "id")
	reg.Define("AM.JobStart", "id")
	reg.Define("SendResponse")
	reg.Define("ReceiveRequest")
	return reg
}

func main() {
	unopt := flag.Bool("unoptimized", false, "disable the Table 3 query rewrites")
	listTPs := flag.Bool("tracepoints", false, "list the known tracepoint vocabulary and exit")
	flag.Parse()

	reg := vocabulary()
	if *listTPs {
		for _, name := range reg.Names() {
			tp := reg.Lookup(name)
			fmt.Printf("%-36s exports: %s\n", name, tp.Schema())
		}
		return
	}

	text := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(text) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptq:", err)
			os.Exit(1)
		}
		text = string(data)
	}
	if strings.TrimSpace(text) == "" {
		fmt.Fprintln(os.Stderr, "ptq: no query given (pass as argument or on stdin)")
		os.Exit(2)
	}

	q, err := query.Parse(text)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptq:", err)
		os.Exit(1)
	}
	q.Name = "Q"
	opts := plan.Optimized
	opts.Optimize = !*unopt
	p, err := plan.Compile(q, reg, nil, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ptq:", err)
		os.Exit(1)
	}
	fmt.Println("query:  ", q)
	fmt.Println("outputs:", p.Schema)
	fmt.Println()
	fmt.Println(p.Explain())
}
