// Package netsim models shared resources — network links and disks — as a
// flow-level simulation with max-min fair bandwidth sharing.
//
// A Network holds named Links, each with a capacity in bytes per second. A
// transfer is a Flow over one or more links; at any instant every active flow
// receives its max-min fair share across the links it traverses (computed by
// water-filling). Flow blocks in virtual time until its bytes have been
// served. Link capacities can be changed at runtime, which is how faults such
// as a limping NIC (1Gbit -> 100Mbit) are injected.
//
// Disks are modeled the same way: a disk is a single-link resource, so
// concurrent reads and writes share its bandwidth processor-style.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/simtime"
)

// Link is a capacity-constrained resource (a NIC direction, a disk, ...).
type Link struct {
	Name string

	rate   float64 // bytes per second
	served float64 // cumulative bytes served through this link
	active int     // flows currently crossing this link

	// scratch state for the water-filling computation
	remCap   float64
	unfrozen int
	touched  bool
}

// Network simulates a set of links and the flows crossing them.
type Network struct {
	env  *simtime.Env
	mu   sync.Mutex
	wake *simtime.Cond // engine wakeup: new flow or rate change
	done *simtime.Cond // broadcast on flow completions

	links map[string]*Link
	flows map[*flow]struct{}

	lastUpdate time.Duration
	running    bool

	// smallCutoff, when > 0, routes flows of at most that many bytes
	// through a closed-form service-time model instead of the shared
	// water-filling machinery. See SetSmallFlowCutoff.
	smallCutoff float64

	// scratchLinks is reused across reshare rounds so steady-state
	// resharing allocates nothing.
	scratchLinks []*Link

	// Stats counts completed flows and served bytes, for tests and tools.
	completedFlows int64
	servedBytes    float64
}

type flow struct {
	remaining float64
	rate      float64
	links     []*Link
	finished  bool
}

// New creates an empty network bound to the simulation environment.
func New(env *simtime.Env) *Network {
	n := &Network{
		env:   env,
		links: make(map[string]*Link),
		flows: make(map[*flow]struct{}),
	}
	n.wake = env.NewCond(&n.mu)
	n.done = env.NewCond(&n.mu)
	return n
}

// AddLink registers a link with capacity rate bytes/second and returns it.
func (n *Network) AddLink(name string, rate float64) *Link {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v for link %q", rate, name))
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.links[name]; ok {
		panic(fmt.Sprintf("netsim: duplicate link %q", name))
	}
	l := &Link{Name: name, rate: rate}
	n.links[name] = l
	return l
}

// Link returns the named link, or nil.
func (n *Network) Link(name string) *Link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[name]
}

// SetRate changes a link's capacity at runtime (fault injection). Active
// flows immediately see the new fair-share rates.
func (n *Network) SetRate(name string, rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v for link %q", rate, name))
	}
	n.mu.Lock()
	l, ok := n.links[name]
	if !ok {
		n.mu.Unlock()
		panic(fmt.Sprintf("netsim: unknown link %q", name))
	}
	n.settleLocked()
	l.rate = rate
	n.reshareLocked()
	n.mu.Unlock()
	n.wake.Signal()
}

// Rate returns a link's current capacity in bytes/second.
func (n *Network) Rate(name string) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[name]; ok {
		return l.rate
	}
	return 0
}

// LinkServed returns the cumulative bytes served through the named link
// (settling in-flight progress first), for per-host throughput plots.
func (n *Network) LinkServed(name string) float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.settleLocked()
	if l, ok := n.links[name]; ok {
		return l.served
	}
	return 0
}

// Stats returns the number of completed flows and total bytes served.
func (n *Network) Stats() (flows int64, bytes float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.completedFlows, n.servedBytes
}

// SetSmallFlowCutoff makes flows of at most cutoff bytes bypass the shared
// water-filling machinery: the caller sleeps size divided by the slowest
// link's full capacity, and the bytes are accounted to the links instantly.
// Small control messages (RPC headers, heartbeats) are latency-dominated,
// so the approximation is tight while removing the per-flow reshare that
// otherwise makes thousands of tiny metadata RPCs against one host
// quadratic. Zero (the default) disables the cutoff; large data transfers
// always take the exact path.
func (n *Network) SetSmallFlowCutoff(cutoff float64) {
	n.mu.Lock()
	n.smallCutoff = cutoff
	n.mu.Unlock()
}

// Flow transfers size bytes across the given links, blocking in virtual time
// until complete. A flow over zero links (or zero bytes) completes instantly.
// Must be called from a managed goroutine.
func (n *Network) Flow(size float64, links ...*Link) {
	if size <= 0 || len(links) == 0 {
		return
	}
	n.mu.Lock()
	if n.smallCutoff > 0 && size <= n.smallCutoff {
		rate := math.MaxFloat64
		for _, l := range links {
			if l.rate < rate {
				rate = l.rate
			}
			l.served += size
		}
		n.completedFlows++
		n.servedBytes += size
		n.mu.Unlock()
		n.env.Sleep(time.Duration(size / rate * float64(time.Second)))
		return
	}
	f := &flow{remaining: size, links: links}
	n.ensureEngineLocked()
	n.settleLocked()
	n.flows[f] = struct{}{}
	// A flow whose links carry no other traffic gets the bottleneck
	// capacity outright; the fair shares of every other flow are
	// unaffected, so the global reshare can be skipped. On a large
	// topology most transfers are isolated, which turns the O(flows x
	// links) water-filling into the rare case instead of the common one.
	isolated := true
	for _, l := range f.links {
		l.active++
		if l.active > 1 {
			isolated = false
		}
	}
	if isolated {
		rate := math.MaxFloat64
		for _, l := range f.links {
			if l.rate < rate {
				rate = l.rate
			}
		}
		f.rate = rate
	} else {
		n.reshareLocked()
	}
	n.wake.Signal()
	for !f.finished {
		n.done.Wait()
	}
	n.servedBytes += size
	n.mu.Unlock()
}

// ensureEngineLocked starts the completion engine on first use.
func (n *Network) ensureEngineLocked() {
	if n.running {
		return
	}
	n.running = true
	n.lastUpdate = n.env.Now()
	n.env.Go(n.engine)
}

// engine advances flow progress and completes flows at their finish times.
func (n *Network) engine() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for !n.env.Done() {
		n.settleLocked()
		completed, needReshare := n.completeLocked()
		if completed > 0 {
			if needReshare {
				n.reshareLocked()
			}
			n.done.Broadcast()
		}
		if len(n.flows) == 0 {
			n.wake.Wait()
			n.lastUpdate = n.env.Now()
			continue
		}
		next := n.nextCompletionLocked()
		n.wake.WaitTimeout(next)
	}
}

// settleLocked accrues progress for all active flows since lastUpdate.
func (n *Network) settleLocked() {
	now := n.env.Now()
	elapsed := (now - n.lastUpdate).Seconds()
	n.lastUpdate = now
	if elapsed <= 0 {
		return
	}
	for f := range n.flows {
		progressed := f.rate * elapsed
		f.remaining -= progressed
		for _, l := range f.links {
			l.served += progressed
		}
	}
}

// completeLocked finishes flows whose bytes are fully served. It reports
// whether any completed flow shared a link with still-active flows — only
// then do the survivors' fair shares change and a reshare is needed.
func (n *Network) completeLocked() (count int, needReshare bool) {
	const eps = 1e-6
	for f := range n.flows {
		if f.remaining <= eps {
			f.finished = true
			delete(n.flows, f)
			n.completedFlows++
			count++
			for _, l := range f.links {
				l.active--
				if l.active > 0 {
					needReshare = true
				}
			}
		}
	}
	return count, needReshare
}

// nextCompletionLocked returns the time until the earliest flow finish.
func (n *Network) nextCompletionLocked() time.Duration {
	min := math.MaxFloat64
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < min {
			min = t
		}
	}
	if min == math.MaxFloat64 {
		// No flow is receiving service; wait for a topology change.
		return time.Hour
	}
	d := time.Duration(min * float64(time.Second))
	if d < time.Nanosecond {
		d = time.Nanosecond
	}
	return d
}

// reshareLocked recomputes max-min fair rates for all active flows by
// water-filling: repeatedly find the most-constrained link, freeze its flows
// at the fair share, subtract their demand, and recurse. Only links that
// active flows actually cross participate — on a 1000-host topology with a
// handful of concurrent transfers the thousands of idle host links cost
// nothing.
func (n *Network) reshareLocked() {
	links := n.scratchLinks[:0]
	unfrozen := make(map[*flow]struct{}, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		unfrozen[f] = struct{}{}
		for _, l := range f.links {
			if !l.touched {
				l.touched = true
				l.remCap = l.rate
				l.unfrozen = 0
				links = append(links, l)
			}
			l.unfrozen++
		}
	}
	for len(unfrozen) > 0 {
		// Find the bottleneck link: minimum fair share among links with
		// unfrozen flows.
		var bottleneck *Link
		share := math.MaxFloat64
		for _, l := range links {
			if l.unfrozen == 0 {
				continue
			}
			s := l.remCap / float64(l.unfrozen)
			if s < share {
				share = s
				bottleneck = l
			}
		}
		if bottleneck == nil {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share.
		for f := range unfrozen {
			crosses := false
			for _, l := range f.links {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = share
			delete(unfrozen, f)
			for _, l := range f.links {
				l.remCap -= share
				if l.remCap < 0 {
					l.remCap = 0
				}
				l.unfrozen--
			}
		}
	}
	for _, l := range links {
		l.touched = false
	}
	n.scratchLinks = links
}
