package yarn

import (
	"context"
	"testing"
	"time"

	"repro/internal/baggage"
	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

func testSetup(env *simtime.Env, nodes, capacity int) (*cluster.Cluster, *ResourceManager, *cluster.Process) {
	cfg := cluster.DefaultConfig()
	cfg.RPCLatency = 0
	c := cluster.New(env, cfg)
	rm := NewResourceManager(c, "master")
	for i := 0; i < nodes; i++ {
		NewNodeManager(c, hostName(i), rm, capacity)
	}
	client := c.Start("client-host", "client")
	return c, rm, client
}

func hostName(i int) string { return string(rune('a'+i)) + "-node" }

func TestAllocatePrefersRequestedHost(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, rm, client := testSetup(env, 3, 2)
		ctn, err := Allocate(client.NewRequest(), client, rm, "app", hostName(1))
		if err != nil {
			t.Fatal(err)
		}
		if ctn.Host != hostName(1) {
			t.Errorf("granted %s, want preferred %s", ctn.Host, hostName(1))
		}
		ctn.Release()
	})
}

func TestAllocateFallsBackWhenPreferredFull(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, rm, client := testSetup(env, 2, 1)
		ctx := client.NewRequest()
		c1, err := Allocate(ctx, client, rm, "app", hostName(0))
		if err != nil {
			t.Fatal(err)
		}
		c2, err := Allocate(ctx, client, rm, "app", hostName(0))
		if err != nil {
			t.Fatal(err)
		}
		if c2.Host == hostName(0) {
			t.Error("second allocation should spill to another node")
		}
		c1.Release()
		c2.Release()
	})
}

func TestAllocateBlocksUntilCapacityFrees(t *testing.T) {
	env := simtime.NewEnv()
	var waited time.Duration
	env.Run(func() {
		_, rm, client := testSetup(env, 1, 1)
		ctx := client.NewRequest()
		c1, err := Allocate(ctx, client, rm, "app", "")
		if err != nil {
			t.Fatal(err)
		}
		env.Go(func() {
			env.Sleep(2 * time.Second)
			c1.Release()
		})
		start := env.Now()
		c2, err := Allocate(ctx, client, rm, "app", "")
		if err != nil {
			t.Fatal(err)
		}
		waited = env.Now() - start
		c2.Release()
	})
	if waited < 1900*time.Millisecond {
		t.Fatalf("allocation waited %v, want ~2s", waited)
	}
}

func TestContainerRunCarriesBaggageBranch(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, rm, client := testSetup(env, 2, 2)
		taskProc := c.Start(hostName(0), "task")
		spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"v"}}

		ctx := client.NewRequest()
		baggage.FromContext(ctx).Pack("pre", spec, tuple.Tuple{tuple.Int(1)})
		ctn, err := Allocate(ctx, client, rm, "app", hostName(0))
		if err != nil {
			t.Fatal(err)
		}
		join := ctn.Run(ctx, taskProc, func(taskCtx context.Context) {
			bag := baggage.FromContext(taskCtx)
			if got := bag.Unpack("pre"); len(got) != 1 {
				t.Errorf("task lost pre-branch baggage: %v", got)
			}
			bag.Pack("task", spec, tuple.Tuple{tuple.Int(2)})
		})
		join()
		ctn.Release()
		if got := baggage.FromContext(ctx).Unpack("task"); len(got) != 1 {
			t.Errorf("task baggage not merged back: %v", got)
		}
	})
}

func TestAllocationTracepointFires(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, rm, client := testSetup(env, 2, 2)
		h, err := c.PT.Install(
			`From a In RM.AllocateContainer
			 GroupBy a.grantedHost
			 Select a.grantedHost, COUNT`)
		if err != nil {
			t.Fatal(err)
		}
		ctx := client.NewRequest()
		for i := 0; i < 3; i++ {
			ctn, err := Allocate(ctx, client, rm, "app", hostName(0))
			if err != nil {
				t.Fatal(err)
			}
			defer ctn.Release()
		}
		c.FlushAgents()
		total := int64(0)
		for _, r := range h.Rows() {
			total += r[1].Int()
		}
		if total != 3 {
			t.Fatalf("allocation count = %d, want 3", total)
		}
	})
}
