// Package bus provides the pub/sub message bus connecting Pivot Tracing
// agents to the query frontend (§5 of the paper: agents await instruction
// via a central pub/sub server and publish partial query results).
//
// The bus is in-process and synchronous: Publish invokes every subscriber
// before returning, which keeps simulated experiments deterministic. The
// asynchrony of a real deployment lives in the simulated network of the
// cluster layer, not here.
package bus

import (
	"sync"

	"repro/internal/telemetry"
)

// Handler consumes messages published to a topic.
type Handler func(msg any)

// Subscription identifies an active subscription for cancellation.
type Subscription struct {
	topic string
	id    int
}

// Bus is a topic-based publish/subscribe hub.
type Bus struct {
	mu     sync.Mutex
	nextID int
	topics map[string]map[int]Handler

	published int64

	tel       *telemetry.Registry
	msgs      *telemetry.Counter
	subs      *telemetry.Gauge
	topicMsgs map[string]*telemetry.Counter
}

// SetTelemetry attaches self-telemetry to the bus: "bus.published" and
// per-topic "bus.published.<topic>" counters, and a "bus.subscribers"
// gauge.
func (b *Bus) SetTelemetry(t *telemetry.Registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tel = t
	b.msgs = t.Counter("bus.published")
	b.subs = t.Gauge("bus.subscribers")
	b.topicMsgs = make(map[string]*telemetry.Counter)
	n := 0
	for _, m := range b.topics {
		n += len(m)
	}
	b.subs.Set(int64(n))
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{topics: make(map[string]map[int]Handler)}
}

// Subscribe registers a handler for a topic and returns its subscription.
func (b *Bus) Subscribe(topic string, h Handler) Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	m, ok := b.topics[topic]
	if !ok {
		m = make(map[int]Handler)
		b.topics[topic] = m
	}
	m[b.nextID] = h
	if b.subs != nil {
		b.subs.Add(1)
	}
	return Subscription{topic: topic, id: b.nextID}
}

// Unsubscribe cancels a subscription; it is safe to call twice.
func (b *Bus) Unsubscribe(s Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if m, ok := b.topics[s.topic]; ok {
		if _, had := m[s.id]; had && b.subs != nil {
			b.subs.Add(-1)
		}
		delete(m, s.id)
	}
}

// Publish delivers msg to every subscriber of the topic, synchronously, in
// subscription order.
func (b *Bus) Publish(topic string, msg any) {
	b.mu.Lock()
	b.published++
	if b.tel != nil {
		b.msgs.Inc()
		c, ok := b.topicMsgs[topic]
		if !ok {
			c = b.tel.Counter("bus.published." + topic)
			b.topicMsgs[topic] = c
		}
		c.Inc()
	}
	m := b.topics[topic]
	hs := make([]struct {
		id int
		h  Handler
	}, 0, len(m))
	for id, h := range m {
		hs = append(hs, struct {
			id int
			h  Handler
		}{id, h})
	}
	b.mu.Unlock()
	// Deliver in subscription order for determinism.
	for i := 1; i < len(hs); i++ {
		for k := i; k > 0 && hs[k].id < hs[k-1].id; k-- {
			hs[k], hs[k-1] = hs[k-1], hs[k]
		}
	}
	for _, s := range hs {
		s.h(msg)
	}
}

// Published returns the total number of messages published.
func (b *Bus) Published() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published
}
