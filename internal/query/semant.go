package query

import (
	"fmt"

	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Analysis is the result of semantically checking a query: every alias is
// resolved to a source schema, subquery references are identified, and the
// query is known to be well-formed.
type Analysis struct {
	Query *Query
	// Schemas maps each alias to the schema its field references resolve
	// against: the tracepoint's exported schema, or a subquery's output
	// schema.
	Schemas map[string]tuple.Schema
	// Subqueries maps a join alias to the named query it references.
	Subqueries map[string]*Query
}

// OutputSchema returns the field names of a query's result tuples. Plain
// field references keep their field name; aggregates and computed
// expressions get positional names that include the aggregator where
// applicable (e.g. "SUM(delta)").
func OutputSchema(q *Query) tuple.Schema {
	out := make(tuple.Schema, len(q.Select))
	for i, si := range q.Select {
		switch {
		case !si.HasAgg:
			if f, ok := si.Expr.(FieldRef); ok && f.Field != "" {
				out[i] = f.Field
			} else {
				out[i] = fmt.Sprintf("_%d", i+1)
			}
		case si.Expr == nil:
			out[i] = si.Agg.String()
		default:
			if f, ok := si.Expr.(FieldRef); ok && f.Field != "" {
				out[i] = fmt.Sprintf("%s(%s)", si.Agg, f.Field)
			} else {
				out[i] = fmt.Sprintf("%s(_%d)", si.Agg, i+1)
			}
		}
	}
	return out
}

// Analyze checks q against the tracepoint registry and the set of
// installed named queries, resolving sources and validating every field
// reference. On success the query's sources are updated in place (names
// matching installed queries become subquery references).
func Analyze(q *Query, reg *tracepoint.Registry, named map[string]*Query) (*Analysis, error) {
	a := &Analysis{
		Query:      q,
		Schemas:    make(map[string]tuple.Schema),
		Subqueries: make(map[string]*Query),
	}

	// Resolve the From sources: tracepoints only, and for unions the
	// aliased schema is the intersection ordering of the first source
	// (all sources must export identical schemas for simplicity).
	if len(q.From.Sources) == 0 {
		return nil, fmt.Errorf("query: From clause has no sources")
	}
	aliases := map[string]bool{}
	var fromSchema tuple.Schema
	for i := range q.From.Sources {
		src := &q.From.Sources[i]
		if src.Filter != NoFilter {
			return nil, fmt.Errorf("query: temporal filter %s is only valid on joined sources", src.Filter)
		}
		if _, ok := named[src.Tracepoint]; ok {
			return nil, fmt.Errorf("query: From source %q is a query; only tracepoints can be primary sources", src.Tracepoint)
		}
		tp := reg.Lookup(src.Tracepoint)
		if tp == nil {
			return nil, fmt.Errorf("query: unknown tracepoint %q", src.Tracepoint)
		}
		if fromSchema == nil {
			fromSchema = tp.Schema()
		} else if !fromSchema.Equal(tp.Schema()) {
			return nil, fmt.Errorf("query: union sources %q and %q export different variables",
				q.From.Sources[0].Tracepoint, src.Tracepoint)
		}
	}
	aliases[q.From.Alias] = true
	a.Schemas[q.From.Alias] = fromSchema

	// Resolve join sources and the happened-before relation endpoints.
	for i := range q.Joins {
		j := &q.Joins[i]
		if aliases[j.Alias] {
			return nil, fmt.Errorf("query: duplicate alias %q", j.Alias)
		}
		src := &j.Source
		if src.Subquery != "" {
			// Already resolved by a prior analysis of the same AST.
			sub, ok := named[src.Subquery]
			if !ok {
				return nil, fmt.Errorf("query: unknown query %q", src.Subquery)
			}
			a.Subqueries[j.Alias] = sub
			a.Schemas[j.Alias] = OutputSchema(sub)
		} else if sub, ok := named[src.Tracepoint]; ok && src.Tracepoint != "" {
			src.Subquery = src.Tracepoint
			src.Tracepoint = ""
			a.Subqueries[j.Alias] = sub
			a.Schemas[j.Alias] = OutputSchema(sub)
		} else {
			tp := reg.Lookup(src.Tracepoint)
			if tp == nil {
				return nil, fmt.Errorf("query: unknown tracepoint %q", src.Tracepoint)
			}
			a.Schemas[j.Alias] = tp.Schema()
		}

		// The joined source must causally precede: Left is the new alias.
		if j.Left != j.Alias {
			if j.Right == j.Alias {
				return nil, fmt.Errorf(
					"query: join %q must causally precede the joined-to event; write On %s -> %s",
					j.Alias, j.Alias, j.Left)
			}
			return nil, fmt.Errorf("query: join condition does not mention alias %q", j.Alias)
		}
		// Right must be an already-bound alias; "end" refers to the
		// query's primary (From) event, as in the paper's Q9.
		if !aliases[j.Right] {
			if j.Right == "end" {
				j.Right = q.From.Alias
			} else {
				return nil, fmt.Errorf("query: join references unknown alias %q", j.Right)
			}
		}
		aliases[j.Alias] = true
	}

	// Validate all field references.
	check := func(e Expr) error {
		for _, f := range FieldRefs(e) {
			if err := a.checkRef(f); err != nil {
				return err
			}
		}
		return nil
	}
	for _, w := range q.Where {
		if err := check(w); err != nil {
			return nil, err
		}
	}
	for _, g := range q.GroupBy {
		if err := a.checkRef(g); err != nil {
			return nil, err
		}
	}
	hasAgg := false
	for _, si := range q.Select {
		if si.HasAgg {
			hasAgg = true
		}
		if si.Expr != nil {
			if err := check(si.Expr); err != nil {
				return nil, err
			}
		}
	}

	// With aggregation (or grouping), every non-aggregated output must be
	// a grouping field.
	if hasAgg || len(q.GroupBy) > 0 {
		inGroup := map[FieldRef]bool{}
		for _, g := range q.GroupBy {
			inGroup[g] = true
		}
		for _, si := range q.Select {
			if si.HasAgg {
				continue
			}
			f, ok := si.Expr.(FieldRef)
			if !ok || !inGroup[f] {
				return nil, fmt.Errorf("query: non-aggregated output %s must be a GroupBy field", si)
			}
		}
	}
	return a, nil
}

// checkRef validates one field reference against the resolved schemas.
func (a *Analysis) checkRef(f FieldRef) error {
	schema, ok := a.Schemas[f.Alias]
	if !ok {
		return fmt.Errorf("query: reference to unknown alias %q", f.Alias)
	}
	if f.Field == "" {
		// Bare alias: only valid for single-column subquery outputs.
		if _, isSub := a.Subqueries[f.Alias]; isSub && len(schema) == 1 {
			return nil
		}
		return fmt.Errorf("query: bare reference %q requires a single-column subquery source", f.Alias)
	}
	if schema.Index(f.Field) < 0 {
		return fmt.Errorf("query: %s does not export %q (exports: %s)", f.Alias, f.Field, schema)
	}
	return nil
}

// ResolveRef maps a field reference to its position within the alias's
// schema; bare subquery references resolve to column 0.
func (a *Analysis) ResolveRef(f FieldRef) int {
	if f.Field == "" {
		return 0
	}
	return a.Schemas[f.Alias].Index(f.Field)
}
