package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestTable5OverheadShape(t *testing.T) {
	cfg := Table5Config{Hosts: 2, Duration: 5 * time.Second, RPCLatency: 20 * time.Microsecond, Think: time.Millisecond}
	res, err := RunTable5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, config := range Configs {
		for _, op := range Ops {
			if res.OpsRun[config][op] < 50 {
				t.Errorf("%s/%s: only %d ops", config, op, res.OpsRun[config][op])
			}
		}
	}
	// Shape: 60 packed tuples must cost clearly more than 1 packed tuple
	// on the short CPU-bound Open operation.
	open60 := res.Overhead[CfgBaggage60][workload.OpOpen]
	open1 := res.Overhead[CfgBaggage1][workload.OpOpen]
	if open60 <= open1 {
		t.Errorf("Open overhead: 60 tuples (%+.2f%%) should exceed 1 tuple (%+.2f%%)", open60, open1)
	}
	// PT enabled with no queries is effectively free.
	for _, op := range Ops {
		if v := res.Overhead[CfgPTEnabled][op]; v > 1.0 || v < -1.0 {
			t.Errorf("PT enabled overhead for %s = %+.2f%%, want ~0", op, v)
		}
	}
	// Installed queries cost something on ops they observe.
	if res.Overhead[CfgQueries61][workload.OpRead8k] <= 0 {
		t.Errorf("§6.1 queries show no overhead on Read8k: %+v", res.Overhead[CfgQueries61])
	}
	out := res.Render()
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "Read8k") {
		t.Errorf("render = %q", out)
	}
}
