package combiner

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/tuple"
)

// TestPartitionPinned pins the hash so a refactor cannot silently remap
// every agent onto new partitions (which would split in-flight query state
// across combiners mid-deployment).
func TestPartitionPinned(t *testing.T) {
	cases := []struct {
		host, proc string
		parts      int
		want       int
	}{
		{"h0", "worker", 16, 13},
		{"h1", "worker", 16, 14},
		{"rack3-host7", "svc", 16, 1},
		{"h0", "worker", 4, 1},
		{"h0worker", "", 16, 5}, // separator: ("h0","worker") != ("h0worker","")
		{"any", "proc", 1, 0},
		{"any", "proc", 0, 0},
	}
	for _, c := range cases {
		if got := Partition(c.host, c.proc, c.parts); got != c.want {
			t.Errorf("Partition(%q,%q,%d) = %d, want %d", c.host, c.proc, c.parts, got, c.want)
		}
	}
}

// TestPartitionStableAndInRange checks determinism and range over many
// identities and partition counts.
func TestPartitionStableAndInRange(t *testing.T) {
	for _, parts := range []int{1, 2, 7, 16, 64} {
		for i := 0; i < 200; i++ {
			host := fmt.Sprintf("rack%d-host%d", i/16, i%16)
			p := Partition(host, "worker", parts)
			if p < 0 || p >= parts {
				t.Fatalf("Partition(%q) = %d out of range [0,%d)", host, p, parts)
			}
			if again := Partition(host, "worker", parts); again != p {
				t.Fatalf("Partition(%q) unstable: %d then %d", host, p, again)
			}
		}
	}
}

// TestPartitionSpread: 1024 synthetic hosts over 16 partitions should leave
// no partition empty and none grossly overloaded.
func TestPartitionSpread(t *testing.T) {
	const parts = 16
	counts := make([]int, parts)
	for i := 0; i < 1024; i++ {
		counts[Partition(fmt.Sprintf("rack%d-host%d", i/16, i%16), "worker", parts)]++
	}
	mean := 1024 / parts
	for p, n := range counts {
		if n == 0 {
			t.Errorf("partition %d empty", p)
		}
		if n > 3*mean {
			t.Errorf("partition %d overloaded: %d agents (mean %d)", p, n, mean)
		}
	}
}

// TestPartitionTopicNames: unique names, and the total is baked in so
// different sharding widths can never cross-subscribe.
func TestPartitionTopicNames(t *testing.T) {
	if got := PartitionTopic(3, 16); got != "pt.report.p3of16" {
		t.Fatalf("PartitionTopic(3,16) = %q", got)
	}
	seen := map[string]bool{}
	for _, parts := range []int{1, 4, 16} {
		topics := PartitionTopics(parts)
		if len(topics) != parts {
			t.Fatalf("PartitionTopics(%d) returned %d topics", parts, len(topics))
		}
		for _, topic := range topics {
			if seen[topic] {
				t.Fatalf("duplicate topic %q across widths", topic)
			}
			seen[topic] = true
		}
	}
}

// TestAssignPinned pins rendezvous ownership for a fixed membership.
func TestAssignPinned(t *testing.T) {
	members := []string{"mid0", "mid1", "mid2"}
	want := map[string]string{
		"pt.report.p0of4": "mid0",
		"pt.report.p1of4": "mid1",
		"pt.report.p2of4": "mid2",
		"pt.report.p3of4": "mid1",
	}
	for topic, m := range want {
		if got := Assign(topic, members); got != m {
			t.Errorf("Assign(%q) = %q, want %q", topic, got, m)
		}
	}
	if got := Assign("pt.report.p0of4", nil); got != "" {
		t.Errorf("Assign with empty membership = %q, want \"\"", got)
	}
}

// TestAssignRebalance: removing a member moves only its partitions; adding
// one steals only the partitions it now wins. Everything else stays put.
func TestAssignRebalance(t *testing.T) {
	topics := PartitionTopics(64)
	before := map[string]string{}
	members := []string{"mid0", "mid1", "mid2", "mid3"}
	for _, topic := range topics {
		before[topic] = Assign(topic, members)
	}

	// mid2 leaves: every partition not owned by mid2 keeps its owner.
	after := []string{"mid0", "mid1", "mid3"}
	moved := 0
	for _, topic := range topics {
		got := Assign(topic, after)
		if before[topic] != "mid2" {
			if got != before[topic] {
				t.Errorf("leave: %q moved %q -> %q though its owner stayed", topic, before[topic], got)
			}
		} else {
			moved++
			if got == "mid2" {
				t.Errorf("leave: %q still assigned to departed member", topic)
			}
		}
	}
	if moved == 0 {
		t.Fatal("leave: mid2 owned no partitions; test is vacuous")
	}

	// mid4 joins: partitions mid4 doesn't win keep their prior owner.
	joined := append(append([]string{}, members...), "mid4")
	stolen := 0
	for _, topic := range topics {
		got := Assign(topic, joined)
		if got == "mid4" {
			stolen++
		} else if got != before[topic] {
			t.Errorf("join: %q moved %q -> %q though mid4 didn't win it", topic, before[topic], got)
		}
	}
	if stolen == 0 {
		t.Fatal("join: mid4 stole no partitions; test is vacuous")
	}
}

// TestOwnedPartition: Owned splits the topic set disjointly and completely
// across the membership.
func TestOwnedPartition(t *testing.T) {
	topics := PartitionTopics(32)
	members := []string{"a", "b", "c"}
	var union []string
	for _, m := range members {
		union = append(union, Owned(topics, members, m)...)
	}
	sort.Strings(union)
	want := append([]string(nil), topics...)
	sort.Strings(want)
	if !reflect.DeepEqual(union, want) {
		t.Fatalf("Owned sets are not a partition of the topics:\n got %v\nwant %v", union, want)
	}
}

func countGroup(key string, n int64) *advice.Group {
	st := agg.New(agg.Count)
	for i := int64(0); i < n; i++ {
		st.Add(tuple.Int(1))
	}
	return &advice.Group{Key: key, Rep: tuple.Tuple{tuple.String(key)}, States: []*agg.State{st}}
}

// TestCombinerMergesAndForwards: reports from two partition topics merge
// per query/group and forward upstream as one batch, with exact merge and
// frame accounting.
func TestCombinerMergesAndForwards(t *testing.T) {
	b := bus.New()
	var got []agent.ReportBatch
	b.Subscribe(agent.ResultsTopic, func(msg any) {
		if rb, ok := msg.(agent.ReportBatch); ok {
			got = append(got, rb)
		}
	})
	var beats []agent.Heartbeat
	b.Subscribe(agent.HealthTopic, func(msg any) {
		if hb, ok := msg.(agent.Heartbeat); ok {
			beats = append(beats, hb)
		}
	})

	c := New(nil, "rack0", "combiner-0", b, Config{
		Interval:  time.Millisecond,
		Subscribe: PartitionTopics(2),
	})
	defer c.Close()

	b.Publish(PartitionTopic(0, 2), agent.Report{
		QueryID: "Q1", Host: "h0", ProcName: "w",
		Groups: []*advice.Group{countGroup("k", 3)},
	})
	b.Publish(PartitionTopic(1, 2), agent.ReportBatch{
		Host: "h1", ProcName: "w",
		Reports: []agent.Report{
			{QueryID: "Q1", Host: "h1", ProcName: "w", Groups: []*advice.Group{countGroup("k", 4)}},
			{QueryID: "Q2", Host: "h1", ProcName: "w", Raws: []tuple.Tuple{{tuple.Int(7)}},
				Drops: []baggage.DropRecord{{Slot: "Q2", Key: "h1.w.1"}}},
		},
	})
	if c.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", c.Pending())
	}
	c.Flush()

	if len(got) != 1 {
		t.Fatalf("upstream frames = %d, want 1", len(got))
	}
	rs := got[0].Reports
	if len(rs) != 2 || rs[0].QueryID != "Q1" || rs[1].QueryID != "Q2" {
		t.Fatalf("unexpected forwarded reports: %+v", rs)
	}
	if rs[0].Host != "rack0" || rs[0].ProcName != "combiner-0" {
		t.Fatalf("forwarded report not stamped with combiner identity: %+v", rs[0])
	}
	if len(rs[0].Groups) != 1 || rs[0].Groups[0].States[0].Count() != 7 {
		t.Fatalf("Q1 groups did not merge to count 7: %+v", rs[0].Groups)
	}
	if len(rs[1].Raws) != 1 || len(rs[1].Drops) != 1 || rs[1].Drops[0].Key != "h1.w.1" {
		t.Fatalf("Q2 raws/drops not forwarded: %+v", rs[1])
	}

	st := c.Stats()
	if st.CombinerReportsMerged != 3 {
		t.Errorf("CombinerReportsMerged = %d, want 3", st.CombinerReportsMerged)
	}
	if st.CombinerFramesOut != 1 || st.Batches != 1 {
		t.Errorf("frames out = %d/%d, want 1/1", st.CombinerFramesOut, st.Batches)
	}
	if st.Reports != 2 || st.RowsReported != 2 {
		t.Errorf("Reports/RowsReported = %d/%d, want 2/2", st.Reports, st.RowsReported)
	}
	if len(beats) != 1 || beats[0].Stats.CombinerReportsMerged != 3 {
		t.Errorf("heartbeat missing combiner accounting: %+v", beats)
	}
	if c.Pending() != 0 {
		t.Errorf("Pending() = %d after flush, want 0", c.Pending())
	}
}

// TestCombinerDoesNotMutateSource: the in-process bus shares pointers, so
// the combiner must clone a group before merging into it.
func TestCombinerDoesNotMutateSource(t *testing.T) {
	b := bus.New()
	c := New(nil, "r", "c", b, Config{Subscribe: []string{PartitionTopic(0, 1)}})
	defer c.Close()

	src := countGroup("k", 3)
	b.Publish(PartitionTopic(0, 1), agent.Report{QueryID: "Q1", Groups: []*advice.Group{src}})
	b.Publish(PartitionTopic(0, 1), agent.Report{QueryID: "Q1", Groups: []*advice.Group{countGroup("k", 5)}})
	if src.States[0].Count() != 3 {
		t.Fatalf("combiner mutated the published group: count %d, want 3", src.States[0].Count())
	}
	c.Flush()
	if src.States[0].Count() != 3 {
		t.Fatalf("flush mutated the published group: count %d, want 3", src.States[0].Count())
	}
}

// TestCombinerBatchSplitting: a tiny BatchBytes cap splits the flush into
// several frames, all counted.
func TestCombinerBatchSplitting(t *testing.T) {
	b := bus.New()
	var frames int
	b.Subscribe(agent.ResultsTopic, func(msg any) {
		if _, ok := msg.(agent.ReportBatch); ok {
			frames++
		}
	})
	c := New(nil, "r", "c", b, Config{Subscribe: []string{PartitionTopic(0, 1)}, BatchBytes: 1})
	defer c.Close()
	for q := 0; q < 5; q++ {
		b.Publish(PartitionTopic(0, 1), agent.Report{
			QueryID: fmt.Sprintf("Q%d", q), Groups: []*advice.Group{countGroup("k", 1)},
		})
	}
	c.Flush()
	if frames != 5 {
		t.Fatalf("frames = %d, want 5 (one per report at BatchBytes=1)", frames)
	}
	if got := c.Stats().CombinerFramesOut; got != 5 {
		t.Fatalf("CombinerFramesOut = %d, want 5", got)
	}
}

// TestCombinerTenantRouting: a tenant-routing combiner learns ownership
// from control traffic and fans each tenant's queries out on that tenant's
// own results topic; unowned queries still go upstream.
func TestCombinerTenantRouting(t *testing.T) {
	b := bus.New()
	byTopic := map[string][]string{} // topic -> query IDs seen
	collect := func(topic string) {
		b.Subscribe(topic, func(msg any) {
			if rb, ok := msg.(agent.ReportBatch); ok {
				for _, r := range rb.Reports {
					byTopic[topic] = append(byTopic[topic], r.QueryID)
				}
			}
		})
	}
	collect(agent.ResultsTopic)
	collect(agent.TenantResultsTopic("alice"))
	collect(agent.TenantResultsTopic("bob"))

	c := New(nil, "root", "combiner-root", b, Config{
		Subscribe:     []string{RootTopic},
		TenantRouting: true,
	})
	defer c.Close()

	b.Publish(agent.ControlTopic, agent.Install{QueryID: "alice.Q1", Tenant: "alice"})
	b.Publish(agent.ControlTopic, agent.Install{QueryID: "bob.Q1", Tenant: "bob"})
	for _, q := range []string{"alice.Q1", "bob.Q1", "Q9"} {
		b.Publish(RootTopic, agent.Report{QueryID: q, Groups: []*advice.Group{countGroup("k", 1)}})
	}
	c.Flush()

	want := map[string][]string{
		agent.TenantResultsTopic("alice"): {"alice.Q1"},
		agent.TenantResultsTopic("bob"):   {"bob.Q1"},
		agent.ResultsTopic:                {"Q9"},
	}
	if !reflect.DeepEqual(byTopic, want) {
		t.Fatalf("routing mismatch:\n got %v\nwant %v", byTopic, want)
	}

	// Uninstall clears the route: alice's next frames fall back upstream.
	b.Publish(agent.ControlTopic, agent.Uninstall{QueryID: "alice.Q1"})
	b.Publish(RootTopic, agent.Report{QueryID: "alice.Q1", Groups: []*advice.Group{countGroup("k", 1)}})
	c.Flush()
	if got := byTopic[agent.ResultsTopic]; len(got) != 2 || got[1] != "alice.Q1" {
		t.Fatalf("post-uninstall frames not rerouted upstream: %v", byTopic)
	}
}

// TestDrainPendingAccounting: DrainPending returns the unforwarded state
// exactly once, without publishing.
func TestDrainPendingAccounting(t *testing.T) {
	b := bus.New()
	var frames int
	b.Subscribe(agent.ResultsTopic, func(any) { frames++ })
	c := New(nil, "r", "c", b, Config{Subscribe: []string{PartitionTopic(0, 1)}})
	b.Publish(PartitionTopic(0, 1), agent.Report{QueryID: "Q1", Groups: []*advice.Group{countGroup("k", 6)}})
	c.Close()

	drained := c.DrainPending()
	if len(drained) != 1 || drained[0].Groups[0].States[0].Count() != 6 {
		t.Fatalf("DrainPending = %+v, want one Q1 report with count 6", drained)
	}
	if again := c.DrainPending(); len(again) != 0 {
		t.Fatalf("second DrainPending returned %d reports, want 0", len(again))
	}
	if frames != 0 {
		t.Fatalf("DrainPending published %d frames, want 0", frames)
	}
}

// TestCloseStopsIntake: after Close, published reports are no longer
// folded in.
func TestCloseStopsIntake(t *testing.T) {
	b := bus.New()
	c := New(nil, "r", "c", b, Config{Subscribe: []string{PartitionTopic(0, 1)}, TenantRouting: true})
	c.Close()
	b.Publish(PartitionTopic(0, 1), agent.Report{QueryID: "Q1"})
	if c.Pending() != 0 {
		t.Fatalf("closed combiner accepted a report")
	}
	c.Close() // idempotent
}
