package bus

import (
	"sync"
	"testing"
)

func TestPublishReachesSubscribers(t *testing.T) {
	b := New()
	var got []any
	b.Subscribe("t", func(msg any) { got = append(got, msg) })
	b.Publish("t", 1)
	b.Publish("t", 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got = %v", got)
	}
	if b.Published() != 2 {
		t.Fatalf("published = %d", b.Published())
	}
}

func TestTopicsAreIsolated(t *testing.T) {
	b := New()
	var a, c int
	b.Subscribe("a", func(any) { a++ })
	b.Subscribe("c", func(any) { c++ })
	b.Publish("a", nil)
	if a != 1 || c != 0 {
		t.Fatalf("a=%d c=%d", a, c)
	}
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	b := New()
	n := 0
	sub := b.Subscribe("t", func(any) { n++ })
	b.Publish("t", nil)
	b.Unsubscribe(sub)
	b.Unsubscribe(sub) // idempotent
	b.Publish("t", nil)
	if n != 1 {
		t.Fatalf("n = %d", n)
	}
}

func TestDeliveryInSubscriptionOrder(t *testing.T) {
	b := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		b.Subscribe("t", func(any) { order = append(order, i) })
	}
	b.Publish("t", nil)
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestPublishToEmptyTopic(t *testing.T) {
	b := New()
	b.Publish("nobody", "msg") // must not panic
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New()
	var mu sync.Mutex
	count := 0
	b.Subscribe("t", func(any) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				b.Publish("t", k)
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Fatalf("count = %d", count)
	}
}
