package hdfs

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// testDeploy builds a NameNode + n DataNodes + one client process.
func testDeploy(env *simtime.Env, n int, nnCfg Config, clCfg ClientConfig) (*cluster.Cluster, *NameNode, *Client) {
	cfg := cluster.DefaultConfig()
	cfg.RPCLatency = 0
	c := cluster.New(env, cfg)
	nn := NewNameNode(c, "namenode", nnCfg)
	for i := 0; i < n; i++ {
		NewDataNode(c, dnHost(i), nn)
	}
	clientProc := c.Start("client-0", "FSclient")
	cl := NewClient(clientProc, nn, clCfg)
	return c, nn, cl
}

func dnHost(i int) string { return string(rune('A'+i)) + "-dn" }

func TestCreateAndReadRoundtrip(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, nn, cl := testDeploy(env, 4, DefaultConfig(), ClientConfig{})
		ctx := cl.Proc.NewRequest()
		if err := cl.Create(ctx, "/f1", 64e6); err != nil {
			t.Error(err)
			return
		}
		if size, ok := nn.FileSize("/f1"); !ok || size != 64e6 {
			t.Errorf("file size = %v, %v", size, ok)
		}
		if err := cl.Read(ctx, "/f1", 0, 64e6); err != nil {
			t.Error(err)
		}
	})
}

func TestReadMissingFileErrors(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, _, cl := testDeploy(env, 3, DefaultConfig(), ClientConfig{})
		if err := cl.Read(cl.Proc.NewRequest(), "/missing", 0, 100); err == nil {
			t.Error("expected error for missing file")
		}
	})
}

func TestMultiBlockFile(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		_, _, cl := testDeploy(env, 4, DefaultConfig(), ClientConfig{})
		ctx := cl.Proc.NewRequest()
		// 300 MB = 3 blocks (128 + 128 + 44).
		if err := cl.CreateMetadataOnly(ctx, "/big", 300e6); err != nil {
			t.Error(err)
			return
		}
		locs, err := cl.GetBlockLocations(ctx, "/big", 0, 300e6)
		if err != nil {
			t.Error(err)
			return
		}
		if len(locs) != 3 {
			t.Errorf("blocks = %d, want 3", len(locs))
		}
		if locs[2].Size != 300e6-2*BlockSize {
			t.Errorf("last block size = %v", locs[2].Size)
		}
		for _, bl := range locs {
			if len(bl.Replicas) != 3 {
				t.Errorf("replicas = %v, want 3", bl.Replicas)
			}
		}
	})
}

func TestBuggyOrderingIsStatic(t *testing.T) {
	// With the HDFS-6268 bug, non-local replicas always appear in the same
	// relative order for every client.
	env := simtime.NewEnv()
	env.Run(func() {
		_, _, cl := testDeploy(env, 6, DefaultConfig(), ClientConfig{})
		ctx := cl.Proc.NewRequest()
		// Create many single-block files and record the pairwise order of
		// hosts in the returned replica lists. With the bug, the relation
		// must be antisymmetric: if a ever precedes b, b never precedes a.
		before := map[[2]string]bool{}
		for i := 0; i < 40; i++ {
			src := "/f" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			if err := cl.CreateMetadataOnly(ctx, src, 1e6); err != nil {
				t.Error(err)
				return
			}
			locs, err := cl.GetBlockLocations(ctx, src, 0, 1e6)
			if err != nil {
				t.Error(err)
				return
			}
			replicas := locs[0].Replicas
			for x := 0; x < len(replicas); x++ {
				for y := x + 1; y < len(replicas); y++ {
					a, b := replicas[x], replicas[y]
					if before[[2]string{b, a}] {
						t.Errorf("order violated: saw both %s<%s and %s<%s", a, b, b, a)
						return
					}
					before[[2]string{a, b}] = true
				}
			}
		}
	})
}

func TestFixedOrderingIsRandomized(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := DefaultConfig()
		cfg.RandomizeReplicaOrder = true
		_, _, cl := testDeploy(env, 6, cfg, ClientConfig{RandomReplicaSelection: true})
		ctx := cl.Proc.NewRequest()
		firsts := map[string]int{}
		for i := 0; i < 60; i++ {
			src := "/r" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			cl.CreateMetadataOnly(ctx, src, 1e6)
			locs, err := cl.GetBlockLocations(ctx, src, 0, 1e6)
			if err != nil {
				t.Error(err)
				return
			}
			firsts[locs[0].Replicas[0]]++
		}
		// With random ordering and placement, no single host should
		// dominate the first position.
		for h, n := range firsts {
			if n > 30 {
				t.Errorf("host %s first %d/60 times despite randomization", h, n)
			}
		}
	})
}

func TestClientPrefersLocalReplicaWhenFixed(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.RPCLatency = 0
		c := cluster.New(env, cfg)
		nn := NewNameNode(c, "namenode", DefaultConfig())
		for i := 0; i < 3; i++ {
			NewDataNode(c, dnHost(i), nn)
		}
		// Client co-located with DataNode B-dn.
		clientProc := c.Start(dnHost(1), "FSclient")
		cl := NewClient(clientProc, nn, ClientConfig{RandomReplicaSelection: true})
		if got := cl.chooseReplica([]string{dnHost(0), dnHost(1), dnHost(2)}); got != dnHost(1) {
			t.Errorf("chooseReplica = %s, want local %s", got, dnHost(1))
		}
	})
}

func TestReadTimeMatchesDiskAndNetworkModel(t *testing.T) {
	env := simtime.NewEnv()
	var elapsed time.Duration
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.RPCLatency = 0
		cfg.NICRate = 100e6  // 100 MB/s network
		cfg.DiskRate = 200e6 // 200 MB/s disk
		c := cluster.New(env, cfg)
		nnCfg := DefaultConfig()
		nnCfg.Replication = 1
		nn := NewNameNode(c, "namenode", nnCfg)
		NewDataNode(c, "dn-a", nn)
		clientProc := c.Start("client-0", "FSclient")
		cl := NewClient(clientProc, nn, ClientConfig{})

		ctx := cl.Proc.NewRequest()
		cl.CreateMetadataOnly(ctx, "/f", 100e6)
		start := env.Now()
		if err := cl.Read(ctx, "/f", 0, 100e6); err != nil {
			t.Error(err)
		}
		elapsed = env.Now() - start
	})
	// 100 MB: 0.5s disk + 1.0s network (plus negligible RPC costs).
	want := 1500 * time.Millisecond
	if elapsed < want || elapsed > want+50*time.Millisecond {
		t.Fatalf("read took %v, want ~%v", elapsed, want)
	}
}

func TestWritePipelineReplicatesToAllDataNodes(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.RPCLatency = 0
		c := cluster.New(env, cfg)
		nn := NewNameNode(c, "namenode", DefaultConfig())
		var dns []*DataNode
		for i := 0; i < 3; i++ {
			dns = append(dns, NewDataNode(c, dnHost(i), nn))
		}
		clientProc := c.Start("client-0", "FSclient")
		cl := NewClient(clientProc, nn, ClientConfig{})

		// Install a query counting WRITE_BLOCK ops per DataNode host.
		h, err := c.PT.Install(
			`From dnop In DN.DataTransferProtocol
			 Where dnop.op = "WRITE_BLOCK"
			 GroupBy dnop.host
			 Select dnop.host, COUNT`)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := cl.Proc.NewRequest()
		if err := cl.Create(ctx, "/f", 10e6); err != nil {
			t.Error(err)
			return
		}
		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 3 {
			t.Fatalf("rows = %v, want one per replica", rows)
		}
		for _, r := range rows {
			if r[1].Int() != 1 {
				t.Errorf("row %v: want 1 write per DataNode", r)
			}
		}
	})
}

func TestExclusiveLockingSerializesReads(t *testing.T) {
	env := simtime.NewEnv()
	run := func(exclusive bool) time.Duration {
		e := simtime.NewEnv()
		var elapsed time.Duration
		e.Run(func() {
			cfg := cluster.DefaultConfig()
			cfg.RPCLatency = 0
			c := cluster.New(e, cfg)
			nnCfg := DefaultConfig()
			nnCfg.ExclusiveLocking = exclusive
			nnCfg.OpDelay = time.Millisecond
			nn := NewNameNode(c, "namenode", nnCfg)
			NewDataNode(c, "dn-a", nn)
			clientProc := c.Start("client-0", "FSclient")
			cl := NewClient(clientProc, nn, ClientConfig{})
			ctx := cl.Proc.NewRequest()
			cl.CreateMetadataOnly(ctx, "/f", 1e6)

			start := e.Now()
			wg := e.NewWaitGroup()
			for i := 0; i < 10; i++ {
				wg.Add(1)
				e.Go(func() {
					defer wg.Done()
					cl.Open(cl.Proc.NewRequest(), "/f")
				})
			}
			wg.Wait()
			elapsed = e.Now() - start
		})
		return elapsed
	}
	_ = env
	shared := run(false)
	exclusive := run(true)
	if exclusive < 5*shared {
		t.Fatalf("exclusive locking (%v) should be much slower than shared (%v)", exclusive, shared)
	}
}

func TestIncrBytesReadTracepointFires(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c, _, cl := testDeploy(env, 3, DefaultConfig(), ClientConfig{})
		h, err := c.PT.Install(
			`From incr In DataNodeMetrics.incrBytesRead
			 GroupBy incr.host
			 Select incr.host, SUM(incr.delta)`)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := cl.Proc.NewRequest()
		cl.CreateMetadataOnly(ctx, "/f", 8e6)
		if err := cl.Read(ctx, "/f", 0, 8e6); err != nil {
			t.Error(err)
			return
		}
		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 1 || rows[0][1].Float() != 8e6 {
			t.Fatalf("rows = %v, want one host with 8e6 bytes", rows)
		}
	})
}

func TestQ2CrossTierAttribution(t *testing.T) {
	// The headline Pivot Tracing capability: DataNode disk metrics grouped
	// by the top-level client application name.
	env := simtime.NewEnv()
	env.Run(func() {
		cfg := cluster.DefaultConfig()
		cfg.RPCLatency = 0
		c := cluster.New(env, cfg)
		nn := NewNameNode(c, "namenode", DefaultConfig())
		for i := 0; i < 4; i++ {
			NewDataNode(c, dnHost(i), nn)
		}
		mk := func(host, name string) *Client {
			return NewClient(c.Start(host, name), nn, ClientConfig{})
		}
		c1 := mk("client-1", "FSREAD4M")
		c2 := mk("client-2", "FSREAD64M")

		h, err := c.PT.Install(
			`From incr In DataNodeMetrics.incrBytesRead
			 Join cl In First(ClientProtocols) On cl -> incr
			 GroupBy cl.procName
			 Select cl.procName, SUM(incr.delta)`)
		if err != nil {
			t.Error(err)
			return
		}
		ctx := c1.Proc.NewRequest()
		c1.CreateMetadataOnly(ctx, "/a", 4e6)
		c1.Read(ctx, "/a", 0, 4e6)
		ctx = c2.Proc.NewRequest()
		c2.CreateMetadataOnly(ctx, "/b", 64e6)
		c2.Read(ctx, "/b", 0, 64e6)

		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 2 {
			t.Fatalf("rows = %v", rows)
		}
		byName := map[string]tuple.Value{}
		for _, r := range rows {
			byName[r[0].Str()] = r[1]
		}
		if byName["FSREAD4M"].Float() != 4e6 || byName["FSREAD64M"].Float() != 64e6 {
			t.Fatalf("rows = %v", rows)
		}
	})
}
