// Package combiner implements hierarchical aggregation tiers for Pivot
// Tracing: aggregator processes that subscribe to a partition of the agent
// report topics, merge agg.State/ReportBatch frames per query in virtual
// time, and forward the merged frames upstream. Tiers compose into
// rack→pod→frontend trees, so trace export cost scales with the topology
// rather than with cluster size — the agents' partial-aggregation argument
// (§4 of the paper) applied once more above the agents.
//
// Correctness rests on the merge-on-flush invariant: agg.State merging is
// associative and commutative, raw rows and drop tombstones are unioned,
// so any reassociation of the merge tree yields byte-identical final
// results. The differential suite (pivot/differential_tree_test.go) proves
// this against the flat topology on every generated case.
package combiner

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

// RootTopic is the conventional upstream topic of the mid tier: mid
// combiners forward merged frames here, and the root combiner subscribes.
const RootTopic = "pt.results.root"

// Config wires one combiner tier.
type Config struct {
	// Interval is the merge/forward cadence (virtual time when an Env is
	// attached); <= 0 selects agent.DefaultInterval.
	Interval time.Duration
	// Subscribe is the disjoint set of downstream topics this combiner
	// owns (partition topics for a mid tier, RootTopic for the root).
	Subscribe []string
	// Upstream is the topic merged frames forward to; "" selects
	// agent.ResultsTopic (the frontend's subscription).
	Upstream string
	// TenantRouting makes the combiner learn each query's owning tenant
	// from Install frames on the control topic and route that query's
	// merged frames to the tenant's own results topic
	// (agent.TenantResultsTopic) instead of Upstream. Enabled on the root
	// tier of a multi-tenant deployment, so each tenant frontend receives
	// exactly its own queries' frames.
	TenantRouting bool
	// BatchBytes caps one forwarded ReportBatch frame's approximate
	// payload; <= 0 selects agent.DefaultBatchBytes.
	BatchBytes int
}

// queryAgg is one query's merged-but-unforwarded state.
type queryAgg struct {
	groups map[string]*advice.Group
	raws   []tuple.Tuple
	drops  map[baggage.DropRecord]bool
}

// Combiner is one aggregation-tier process. It merges every Report and
// ReportBatch arriving on its subscribed topics into per-query state and
// forwards the merged reports upstream at each flush. Nothing is dropped
// in-process: every report merged in is either already forwarded or still
// pending, and both sides are counted (CombinerReportsMerged /
// CombinerFramesOut in its heartbeats).
type Combiner struct {
	env        *simtime.Env
	host, proc string
	b          *bus.Bus
	cfg        Config

	mu      sync.Mutex
	pending map[string]*queryAgg
	tenants map[string]string // queryID → owning tenant (TenantRouting)
	closed  bool

	reportsMerged atomic.Int64 // downstream reports folded in
	reportsOut    atomic.Int64 // merged reports forwarded
	framesOut     atomic.Int64 // upstream ReportBatch frames published
	rowsOut       atomic.Int64 // group+raw rows forwarded

	subs    []bus.Subscription
	ctrlSub bus.Subscription
	hasCtrl bool
}

// New starts a combiner on b subscribing to cfg.Subscribe. host/proc name
// the tier in heartbeats and forwarded reports. With a simulation
// environment the combiner flushes on a virtual-time loop; with env == nil
// (a real process, or chaos tests driving time by hand) the embedder calls
// Flush.
func New(env *simtime.Env, host, proc string, b *bus.Bus, cfg Config) *Combiner {
	if cfg.Interval <= 0 {
		cfg.Interval = agent.DefaultInterval
	}
	c := &Combiner{
		env: env, host: host, proc: proc, b: b, cfg: cfg,
		pending: make(map[string]*queryAgg),
	}
	for _, topic := range cfg.Subscribe {
		c.subs = append(c.subs, b.Subscribe(topic, c.onReport))
	}
	if cfg.TenantRouting {
		c.tenants = make(map[string]string)
		c.ctrlSub = b.Subscribe(agent.ControlTopic, c.onControl)
		c.hasCtrl = true
	}
	if env != nil {
		env.Go(c.flushLoop)
	}
	return c
}

// Topics returns the combiner's subscribed downstream topics.
func (c *Combiner) Topics() []string { return append([]string(nil), c.cfg.Subscribe...) }

func (c *Combiner) flushLoop() {
	for !c.env.Done() {
		c.env.Sleep(c.cfg.Interval)
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		c.Flush()
	}
}

// onControl learns query→tenant ownership from install traffic.
func (c *Combiner) onControl(msg any) {
	switch m := msg.(type) {
	case agent.Install:
		c.mu.Lock()
		if m.Tenant != "" {
			c.tenants[m.QueryID] = m.Tenant
		}
		c.mu.Unlock()
	case agent.Uninstall:
		c.mu.Lock()
		delete(c.tenants, m.QueryID)
		c.mu.Unlock()
	}
}

// onReport folds downstream result frames into per-query pending state.
func (c *Combiner) onReport(msg any) {
	switch m := msg.(type) {
	case agent.Report:
		c.merge(&m)
	case agent.ReportBatch:
		for i := range m.Reports {
			c.merge(&m.Reports[i])
		}
	}
}

// merge folds one report. Groups merge by key with the frontend's
// clone-on-first-insert discipline (the in-process bus shares pointers, so
// a group is never mutated in place on first sight); raw rows append; drop
// tombstones union (they are globally unique, so the dedup set keeps the
// forwarded Drops exact even when several downstream reports carry the
// same tombstone).
func (c *Combiner) merge(r *agent.Report) {
	c.reportsMerged.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	qa := c.pending[r.QueryID]
	if qa == nil {
		qa = &queryAgg{groups: make(map[string]*advice.Group)}
		c.pending[r.QueryID] = qa
	}
	for _, g := range r.Groups {
		if mine, ok := qa.groups[g.Key]; ok {
			for i, st := range g.States {
				if i < len(mine.States) {
					mine.States[i].Merge(st)
				}
			}
		} else {
			qa.groups[g.Key] = g.Clone()
		}
	}
	qa.raws = append(qa.raws, r.Raws...)
	if len(r.Drops) > 0 {
		if qa.drops == nil {
			qa.drops = make(map[baggage.DropRecord]bool)
		}
		for _, d := range r.Drops {
			qa.drops[d] = true
		}
	}
}

// now returns the combiner's report timestamp (virtual under simulation).
func (c *Combiner) now() time.Duration {
	if c.env != nil {
		return c.env.Now()
	}
	return time.Duration(time.Now().UnixNano())
}

// drainLocked steals the pending state and renders it as reports stamped
// with the combiner's identity, sorted by query then group key. Caller
// holds c.mu.
func (c *Combiner) drainLocked(now time.Duration) []agent.Report {
	if len(c.pending) == 0 {
		return nil
	}
	ids := make([]string, 0, len(c.pending))
	for id := range c.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]agent.Report, 0, len(ids))
	for _, id := range ids {
		qa := c.pending[id]
		r := agent.Report{QueryID: id, Host: c.host, ProcName: c.proc, Time: now, Raws: qa.raws}
		keys := make([]string, 0, len(qa.groups))
		for k := range qa.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			r.Groups = append(r.Groups, qa.groups[k])
		}
		if len(qa.drops) > 0 {
			for d := range qa.drops {
				r.Drops = append(r.Drops, d)
			}
			sort.Slice(r.Drops, func(i, j int) bool {
				if r.Drops[i].Slot != r.Drops[j].Slot {
					return r.Drops[i].Slot < r.Drops[j].Slot
				}
				return r.Drops[i].Key < r.Drops[j].Key
			})
		}
		out = append(out, r)
	}
	c.pending = make(map[string]*queryAgg)
	return out
}

// route returns the upstream topic for one query's merged frames.
func (c *Combiner) route(queryID string) string {
	if c.cfg.TenantRouting {
		c.mu.Lock()
		tenant := c.tenants[queryID]
		c.mu.Unlock()
		if tenant != "" {
			return agent.TenantResultsTopic(tenant)
		}
	}
	if c.cfg.Upstream != "" {
		return c.cfg.Upstream
	}
	return agent.ResultsTopic
}

// Flush forwards the merged pending state upstream as size-capped
// ReportBatch frames — one batch run per route topic, so a tenant-routing
// root emits each tenant's queries on that tenant's own topic — then
// heartbeats the tier's merge/forward accounting on the health topic.
func (c *Combiner) Flush() {
	now := c.now()
	c.mu.Lock()
	reports := c.drainLocked(now)
	c.mu.Unlock()

	limit := c.cfg.BatchBytes
	if limit <= 0 {
		limit = agent.DefaultBatchBytes
	}
	// Partition the (query-sorted) reports into per-topic runs, preserving
	// order within each topic.
	topics := make([]string, 0, 1)
	byTopic := make(map[string][]agent.Report)
	for _, r := range reports {
		t := c.route(r.QueryID)
		if _, ok := byTopic[t]; !ok {
			topics = append(topics, t)
		}
		byTopic[t] = append(byTopic[t], r)
		c.reportsOut.Add(1)
		c.rowsOut.Add(int64(len(r.Groups) + len(r.Raws)))
	}
	for _, topic := range topics {
		run := byTopic[topic]
		var batch []agent.Report
		size := 0
		flush := func() {
			if len(batch) == 0 {
				return
			}
			c.framesOut.Add(1)
			c.b.Publish(topic, agent.ReportBatch{
				Host: c.host, ProcName: c.proc, Time: now, Reports: batch,
			})
			batch, size = nil, 0
		}
		for i := range run {
			sz := agent.ReportSize(&run[i])
			if len(batch) > 0 && size+sz > limit {
				flush()
			}
			batch = append(batch, run[i])
			size += sz
		}
		flush()
	}

	c.b.Publish(agent.HealthTopic, agent.Heartbeat{
		Host:     c.host,
		ProcName: c.proc,
		Time:     c.now(),
		Interval: c.cfg.Interval,
		Queries:  len(reports),
		Stats:    c.Stats(),
	})
}

// Stats returns the tier's accounting in the agents' Stats shape, as
// heartbeated: reports/rows/frames forwarded upstream plus the combiner
// counters. Everything merged in is either forwarded or still pending —
// Pending() closes the ledger.
func (c *Combiner) Stats() agent.Stats {
	return agent.Stats{
		RowsReported:          c.rowsOut.Load(),
		Reports:               c.reportsOut.Load(),
		Batches:               c.framesOut.Load(),
		CombinerReportsMerged: c.reportsMerged.Load(),
		CombinerFramesOut:     c.framesOut.Load(),
	}
}

// Pending returns how many queries currently hold merged-but-unforwarded
// state.
func (c *Combiner) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// DrainPending removes and returns the merged-but-unforwarded state as
// reports without publishing them. Chaos tests use it to account a killed
// tier's in-flight state exactly: rows that were merged into this combiner
// but never forwarded are the deployment's only loss, and this is their
// ledger.
func (c *Combiner) DrainPending() []agent.Report {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainLocked(now)
}

// Close unsubscribes the combiner and stops its flush loop. Pending state
// remains drainable (DrainPending) for accounting.
func (c *Combiner) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, s := range c.subs {
		c.b.Unsubscribe(s)
	}
	if c.hasCtrl {
		c.b.Unsubscribe(c.ctrlSub)
	}
}
