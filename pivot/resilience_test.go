package pivot

import (
	"context"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/bus"
	"repro/internal/combiner"
	"repro/internal/wire"
)

// Full-stack chaos suite: a distributed deployment (frontend + worker over
// the TCP pub/sub server) survives the bus being killed and restarted
// mid-query. Agents reconnect within the backoff bound, reports flushed
// during the outage are replayed from the agent's ring buffer, query
// results converge, and the drop counters exactly account for any loss.
// Seeds are fixed; the suite is deterministic under -race -count=N.

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// chaosBusOptions is the deterministic reconnect schedule for this suite.
func chaosBusOptions(seed int64, retention int) BusOptions {
	return BusOptions{
		Reconnect:   true,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		Seed:        seed,
		Retention:   retention,
	}
}

// linkConnected reads the runtime's "bus.link.connected" gauge.
func linkConnected(pt *PT) bool {
	return pt.Frontend.Telemetry().Snapshot().Gauges["bus.link.connected"] == 1
}

// countRow returns the COUNT cell of the query's single group row, or -1.
func countRow(q *Query) int64 {
	rows := q.Rows()
	if len(rows) == 0 {
		return -1
	}
	return rows[0][1].Int()
}

func TestQueryConvergesAcrossBusOutageWithReplay(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(addr, chaosBusOptions(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	// No reconnect ordering is imposed: if the worker beats the frontend
	// back and replays first, the server parks the reports until the
	// frontend resubscribes.
	wkDisconnect, err := worker.ConnectBusWith(addr, chaosBusOptions(2, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	q, err := frontend.Install(`From w In Work.Do GroupBy w.host Select w.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", tp.Enabled)

	cross := func(n int) {
		for i := 0; i < n; i++ {
			tp.Here(worker.NewRequest(context.Background()), int64(i))
		}
	}

	// Phase 1: healthy. 10 crossings reach the frontend.
	cross(10)
	worker.Flush()
	waitFor(t, "pre-outage results", func() bool { return countRow(q) == 10 })

	// Phase 2: the bus dies mid-query. Both links notice, and the three
	// reports flushed during the outage are retained, not lost.
	srv.Close()
	waitFor(t, "links to notice the outage", func() bool {
		return !linkConnected(frontend) && !linkConnected(worker)
	})
	for i := 0; i < 3; i++ {
		cross(1)
		worker.Flush()
	}
	if n := worker.Agent.Buffered(); n != 3 {
		t.Fatalf("buffered reports = %d, want 3", n)
	}
	if st := worker.Agent.Stats(); st.ReportsRetained != 3 || st.ReportsDropped != 0 {
		t.Fatalf("outage stats = %+v", st)
	}

	// Phase 3: the bus comes back at the same address. Links reconnect
	// within the backoff bound, the buffer replays, and results converge
	// to all 13 crossings with zero loss.
	srv2, err := bus.Serve(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "links to reconnect", func() bool {
		return linkConnected(frontend) && linkConnected(worker)
	})
	waitFor(t, "retained reports to replay", func() bool { return worker.Agent.Buffered() == 0 })
	waitFor(t, "results to converge", func() bool { return countRow(q) == 13 })

	// One more healthy interval so a post-reconnect heartbeat reaches the
	// frontend with the resilience counters.
	cross(1)
	worker.Flush()
	waitFor(t, "results after recovery", func() bool { return countRow(q) == 14 })

	st := worker.Agent.Stats()
	if st.ReportsReplayed != 3 || st.ReportsDropped != 0 || st.Reconnects < 1 {
		t.Errorf("recovery stats = %+v", st)
	}
	// Exact accounting: every report the agent ever published was merged.
	waitFor(t, "all reports merged", func() bool {
		s := frontend.Status()
		return len(s.Queries) == 1 && s.Queries[0].Reports == st.Reports
	})
	waitFor(t, "heartbeat with reconnect count", func() bool {
		for _, a := range frontend.Status().Agents {
			if a.ProcName == "worker" && a.Stats.Reconnects >= 1 && a.Stats.ReportsReplayed == 3 {
				return true
			}
		}
		return false
	})
}

// tcpCombiner is a standalone combiner-tier process bridged onto the TCP
// bus: a private local bus whose link receives the tier's partition
// topics and sends the merged stream upstream on the shared results
// topic (plus heartbeats).
type tcpCombiner struct {
	comb *combiner.Combiner
	link *bus.Link
}

func startTCPCombiner(t *testing.T, addr, name string, topics []string) *tcpCombiner {
	t.Helper()
	b := bus.New()
	comb := combiner.New(nil, "ctier", name, b, combiner.Config{
		Interval:  time.Second, // flushed explicitly by the test
		Subscribe: topics,
	})
	link, err := bus.ConnectOptions(b, addr, wire.BusCodec{},
		[]string{agent.ResultsTopic, agent.HealthTopic}, topics,
		bus.LinkOptions{
			Reconnect:   true,
			BackoffBase: 5 * time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
			JitterSeed:  9,
		})
	if err != nil {
		t.Fatalf("combiner %s: %v", name, err)
	}
	return &tcpCombiner{comb: comb, link: link}
}

// TestCombinerKillRehomesAndConservesTuples kills a mid-tier combiner
// while it holds merged-but-unflushed state. The loss is bounded to
// exactly that pending window — drained and counted, never guessed —
// while reports published during the ownerless interval park at the bus
// server and re-home to the replacement combiner on its first subscribe.
// Conservation: crossings = rows delivered + tuples drained from the
// victim, exactly.
func TestCombinerKillRehomesAndConservesTuples(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	serverConns := func() int64 {
		return srv.Telemetry().Snapshot().Gauges["bus.server.conns"]
	}

	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(addr, chaosBusOptions(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	// The worker reports on a partition topic owned by the combiner tier,
	// not on the shared results topic: killing the combiner makes the
	// partition ownerless, which is the failure under test.
	partition := combiner.PartitionTopic(0, 1)
	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	wOpts := chaosBusOptions(6, 16)
	wOpts.ReportTopic = partition
	wkDisconnect, err := worker.ConnectBusWith(addr, wOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	midA := startTCPCombiner(t, addr, "mid-0", []string{partition})
	waitFor(t, "all three links registered", func() bool { return serverConns() == 3 })

	q, err := frontend.Install(`From w In Work.Do GroupBy w.host Select w.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", tp.Enabled)

	cross := func(n int) {
		for i := 0; i < n; i++ {
			tp.Here(worker.NewRequest(context.Background()), int64(i))
		}
	}

	// Phase 1: healthy tree. 10 crossings flow worker → partition topic →
	// combiner → results topic → frontend.
	cross(10)
	worker.Flush()
	waitFor(t, "combiner to merge the first report", func() bool {
		return midA.comb.Stats().CombinerReportsMerged == 1
	})
	midA.comb.Flush()
	waitFor(t, "pre-kill results via the tree", func() bool { return countRow(q) == 10 })

	// Phase 2: 4 crossings reach the combiner but it is killed before it
	// flushes them upstream. Wait for the server to deregister the dead
	// conn before publishing more — frames relayed to a half-dead conn
	// would be unaccounted loss, which is exactly what this test forbids.
	cross(4)
	worker.Flush()
	waitFor(t, "combiner to merge the doomed report", func() bool {
		return midA.comb.Stats().CombinerReportsMerged == 2
	})
	midA.link.Close()
	waitFor(t, "server to drop the dead combiner conn", func() bool { return serverConns() == 2 })
	victim := midA.comb.DrainPending()
	midA.comb.Close()
	var lost int64
	for i := range victim {
		for _, g := range victim[i].Groups {
			lost += g.States[0].Count()
		}
	}
	if lost != 4 {
		t.Fatalf("victim pending = %d tuples, want exactly the 4 unflushed crossings", lost)
	}

	// Phase 3: the partition is ownerless; 5 more single-crossing reports
	// park at the server (worker's own link never dropped, so its retry
	// ring stays out of the picture).
	for i := 0; i < 5; i++ {
		cross(1)
		worker.Flush()
	}
	waitFor(t, "ownerless reports to park at the server", func() bool {
		return srv.Telemetry().Snapshot().Gauges["bus.server.retained"] >= 5
	})
	if st := worker.Agent.Stats(); st.ReportsDropped != 0 || st.ReportsRetained != 0 {
		t.Fatalf("worker link should never have dropped: %+v", st)
	}

	// Re-home: a replacement combiner subscribes to the partition; the
	// server flushes the parked frames to it, it merges and forwards, and
	// the query converges with zero loss beyond the drained window.
	midB := startTCPCombiner(t, addr, "mid-1", []string{partition})
	defer midB.link.Close()
	defer midB.comb.Close()
	waitFor(t, "replacement combiner to replay parked reports", func() bool {
		return midB.comb.Stats().CombinerReportsMerged == 5
	})
	midB.comb.Flush()
	waitFor(t, "results after re-home", func() bool { return countRow(q) == 15 })

	// The conservation ledger: 19 crossings total, 15 delivered, 4
	// accounted in the victim's drained pending. Exact, not approximate.
	if got, want := countRow(q)+lost, int64(19); got != want {
		t.Fatalf("conservation violated: delivered %d + drained %d = %d, want %d",
			countRow(q), lost, got, want)
	}

	// The replacement's heartbeat carries the tier accounting to the
	// frontend's status view.
	waitFor(t, "combiner heartbeat in frontend status", func() bool {
		for _, a := range frontend.Status().Agents {
			if a.Host == "ctier" && a.ProcName == "mid-1" &&
				a.Stats.CombinerReportsMerged == 5 && a.Stats.CombinerFramesOut >= 1 {
				return true
			}
		}
		return false
	})
}

func TestBoundedLossIsExactlyAccounted(t *testing.T) {
	srv, err := bus.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	frontend := New("frontend")
	frontend.Define("Work.Do", "n")
	feDisconnect, err := frontend.ConnectFrontend(addr, chaosBusOptions(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer feDisconnect()

	worker := New("worker")
	tp := worker.Define("Work.Do", "n")
	// Tiny ring: only 2 outage reports survive; older ones are evicted
	// and counted as dropped.
	wkDisconnect, err := worker.ConnectBusWith(addr, chaosBusOptions(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer wkDisconnect()

	q, err := frontend.Install(`From w In Work.Do GroupBy w.host Select w.host, COUNT`)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "install to reach the worker", tp.Enabled)

	tp.Here(worker.NewRequest(context.Background()), int64(0))
	worker.Flush()
	waitFor(t, "pre-outage results", func() bool { return countRow(q) == 1 })

	srv.Close()
	waitFor(t, "worker link down", func() bool { return !linkConnected(worker) })
	// Five one-crossing reports during the outage; the ring keeps the
	// newest two.
	for i := 0; i < 5; i++ {
		tp.Here(worker.NewRequest(context.Background()), int64(i))
		worker.Flush()
	}
	if st := worker.Agent.Stats(); st.ReportsRetained != 5 || st.ReportsDropped != 3 {
		t.Fatalf("outage stats = %+v", st)
	}

	srv2, err := bus.Serve(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	waitFor(t, "worker link reconnect", func() bool { return linkConnected(worker) })
	waitFor(t, "surviving reports to replay", func() bool { return worker.Agent.Buffered() == 0 })

	// Convergence with bounded, fully accounted loss: 6 crossings total,
	// 3 lost to the ring bound, so COUNT converges to exactly 3.
	waitFor(t, "results to converge", func() bool { return countRow(q) == 3 })
	st := worker.Agent.Stats()
	if st.ReportsReplayed != 2 || st.ReportsDropped != 3 {
		t.Errorf("recovery stats = %+v", st)
	}
	// The ledger balances: published = merged + dropped.
	waitFor(t, "report ledger to balance", func() bool {
		s := frontend.Status()
		return len(s.Queries) == 1 && s.Queries[0].Reports == st.Reports-st.ReportsDropped
	})
}
