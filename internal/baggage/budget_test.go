package baggage

import (
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/tuple"
)

func aggSpec() SetSpec {
	return SetSpec{
		Kind:    Agg,
		Fields:  tuple.Schema{"key", "sum"},
		GroupBy: []int{0},
		Aggs:    []AggField{{Pos: 1, Fn: agg.Sum}},
	}
}

func kv(key string, val int64) tuple.Tuple {
	return tuple.Tuple{tuple.String(key), tuple.Int(val)}
}

// unlimited disables both caps so a test can isolate one behavior.
var unlimited = Budget{MaxBytes: -1, MaxTuples: -1}

func TestBudgetDefaultsAndResolution(t *testing.T) {
	var b Budget
	if b.maxBytes() != DefaultMaxBytes || b.maxTuples() != DefaultMaxTuples {
		t.Fatalf("zero budget = (%d, %d), want defaults", b.maxBytes(), b.maxTuples())
	}
	b = Budget{MaxBytes: -1, MaxTuples: -1}
	if b.maxBytes() != -1 || b.maxTuples() != -1 {
		t.Fatalf("negative budget must disable caps")
	}
	b = Budget{MaxBytes: 10, MaxTuples: 3}
	if b.maxBytes() != 10 || b.maxTuples() != 3 {
		t.Fatalf("explicit budget not honored")
	}
}

func TestPackBudgetedNoEvictionUnderBudget(t *testing.T) {
	b := New()
	var st PackStats
	for i := 0; i < 8; i++ {
		st.Add(b.PackBudgeted("q1.a", aggSpec(), Budget{}, kv(fmt.Sprintf("k%d", i), 1)))
	}
	if st.Packed != 8 || st.RefusedTuples != 0 || st.EvictedGroups != 0 {
		t.Fatalf("under-budget stats = %+v", st)
	}
	if b.HasDrops() {
		t.Fatalf("no drops expected under budget")
	}
	if got := b.Unpack("q1.a"); len(got) != 8 {
		t.Fatalf("Unpack = %d rows, want 8", len(got))
	}
}

func TestTupleCapEvictsOldestGroupsAndAccounts(t *testing.T) {
	b := New()
	budget := Budget{MaxBytes: -1, MaxTuples: 4}
	const total = 10
	var st PackStats
	for i := 0; i < total; i++ {
		st.Add(b.PackBudgeted("q1.a", aggSpec(), budget, kv(fmt.Sprintf("k%d", i), int64(i))))
	}
	got := b.Unpack("q1.a")
	drops := b.DropRecords("q1")
	if len(got)+len(drops) != total {
		t.Fatalf("reported %d + dropped %d != total %d", len(got), len(drops), total)
	}
	if len(got) != 4 {
		t.Fatalf("reported %d groups, want cap 4", len(got))
	}
	// Oldest groups evicted first: survivors are the newest keys.
	for _, row := range got {
		var k string
		if k = row[0].Str(); k < "k6" {
			t.Fatalf("old group %s survived; rows %v", k, got)
		}
	}
	if st.EvictedGroups != int64(len(drops)) {
		t.Fatalf("PackStats.EvictedGroups=%d, tombstones=%d", st.EvictedGroups, len(drops))
	}
	if st.Packed != total {
		t.Fatalf("Packed=%d, want %d (evicted groups were packed before eviction)", st.Packed, total)
	}
}

func TestTombstonedGroupRefusesRepack(t *testing.T) {
	b := New()
	budget := Budget{MaxBytes: -1, MaxTuples: 1}
	b.PackBudgeted("q1.a", aggSpec(), budget, kv("old", 1))
	b.PackBudgeted("q1.a", aggSpec(), budget, kv("new", 1)) // evicts "old"
	st := b.PackBudgeted("q1.a", aggSpec(), budget, kv("old", 99))
	if st.Packed != 0 || st.RefusedTuples != 1 {
		t.Fatalf("re-pack of evicted group: stats=%+v, want refusal", st)
	}
	got := b.Unpack("q1.a")
	if len(got) != 1 || got[0][0].Str() != "new" {
		t.Fatalf("Unpack = %v, want only 'new'", got)
	}
	if drops := b.DropRecords("q1"); len(drops) != 1 || drops[0].Slot != "q1.a" {
		t.Fatalf("DropRecords = %v", drops)
	}
}

func TestByteCapWholeSlotEvictionNonAgg(t *testing.T) {
	b := New()
	spec := allSpec("v")
	budget := Budget{MaxBytes: 32, MaxTuples: -1}
	var st PackStats
	for i := 0; i < 16; i++ {
		st.Add(b.PackBudgeted("q1.a", spec, budget, tuple.Tuple{tuple.String("0123456789")}))
	}
	// The slot exceeds 32 bytes quickly; a non-AGG victim is cleared whole.
	if st.EvictedGroups == 0 || st.EvictedTuples == 0 || st.EvictedBytes == 0 {
		t.Fatalf("expected whole-slot eviction, stats=%+v", st)
	}
	if got := b.Unpack("q1.a"); got != nil {
		t.Fatalf("tombstoned slot must unpack empty, got %v", got)
	}
	// Whole-slot tombstone refuses all future packs.
	st = b.PackBudgeted("q1.a", spec, budget, tuple.Tuple{tuple.String("x")})
	if st.Packed != 0 || st.RefusedTuples != 1 {
		t.Fatalf("pack into tombstoned slot: stats=%+v", st)
	}
	drops := b.DropRecords("")
	if len(drops) != 1 || drops[0].Key != "" {
		t.Fatalf("DropRecords = %v, want one whole-slot tombstone", drops)
	}
}

func TestBudgetScopedPerQuery(t *testing.T) {
	b := New()
	tight := Budget{MaxBytes: -1, MaxTuples: 1}
	b.PackBudgeted("q2.a", aggSpec(), unlimited, kv("other", 1))
	b.PackBudgeted("q1.a", aggSpec(), tight, kv("k1", 1))
	b.PackBudgeted("q1.a", aggSpec(), tight, kv("k2", 1)) // evicts k1 from q1 only
	if got := b.Unpack("q2.a"); len(got) != 1 {
		t.Fatalf("q2 must be untouched by q1's budget, got %v", got)
	}
	if drops := b.DropRecords("q2"); drops != nil {
		t.Fatalf("q2 has no drops, got %v", drops)
	}
	if drops := b.DropRecords("q1"); len(drops) != 1 {
		t.Fatalf("q1 drops = %v, want 1", drops)
	}
}

func TestEvictionSurvivesSplitJoin(t *testing.T) {
	// A group packed before the split lives on in frozen copies on both
	// branches. Evicting it inside one branch writes a tombstone that must
	// suppress the frozen copy after the join — otherwise the group is
	// both reported and counted dropped.
	b := New()
	b.PackBudgeted("q1.a", aggSpec(), unlimited, kv("pre", 1))
	left, right := b.Split()
	tight := Budget{MaxBytes: -1, MaxTuples: 1}
	// Left branch: packing two more groups under a 1-group cap evicts
	// until only one group remains in the active instance; "pre" (frozen)
	// still counts toward usage, so tombstones accumulate.
	left.PackBudgeted("q1.a", aggSpec(), tight, kv("l1", 1))
	left.PackBudgeted("q1.a", aggSpec(), tight, kv("l2", 1))
	right.PackBudgeted("q1.a", aggSpec(), unlimited, kv("r1", 1))
	joined := Join(left, right)
	got := joined.Unpack("q1.a")
	drops := joined.DropRecords("q1")
	seen := map[string]bool{}
	for _, row := range got {
		seen[row[0].Str()] = true
	}
	dropped := map[string]bool{}
	for _, d := range drops {
		dropped[d.Key] = true
	}
	// Every key is exclusively reported or tombstoned.
	for _, row := range got {
		key := tuple.Tuple{row[0]}.Key([]int{0})
		if dropped[key] {
			t.Fatalf("group %q both reported and dropped", row[0].Str())
		}
	}
	// All four distinct keys are accounted for.
	if len(got)+len(drops) != 4 {
		t.Fatalf("reported %d + dropped %d != 4 distinct keys (rows %v, drops %v)",
			len(got), len(drops), got, drops)
	}
}

func TestBudgetDecisionsSurviveSerialization(t *testing.T) {
	mk := func() *Baggage {
		b := New()
		for i := 0; i < 6; i++ {
			b.PackBudgeted("q1.a", aggSpec(), unlimited, kv(fmt.Sprintf("k%d", i), int64(i)))
		}
		return b
	}
	direct := mk()
	wire := Deserialize(mk().Serialize())
	budget := Budget{MaxBytes: -1, MaxTuples: 3}
	s1 := direct.PackBudgeted("q1.a", aggSpec(), budget, kv("k9", 9))
	s2 := wire.PackBudgeted("q1.a", aggSpec(), budget, kv("k9", 9))
	if s1 != s2 {
		t.Fatalf("budget decisions diverge across serialization: %+v vs %+v", s1, s2)
	}
	r1, r2 := direct.Unpack("q1.a"), wire.Unpack("q1.a")
	if len(r1) != len(r2) {
		t.Fatalf("row counts diverge: %d vs %d", len(r1), len(r2))
	}
	d1, d2 := direct.DropRecords("q1"), wire.DropRecords("q1")
	if len(d1) != len(d2) {
		t.Fatalf("drop records diverge: %v vs %v", d1, d2)
	}
}

func TestDropSlotExcludedFromUsageAndEviction(t *testing.T) {
	b := New()
	tight := Budget{MaxBytes: 1, MaxTuples: -1}
	// Everything real is evicted, filling the drop slot; the drop slot
	// itself must never be chosen as a victim (that would loop forever)
	// and must not count toward usage.
	for i := 0; i < 8; i++ {
		b.PackBudgeted("q1.a", aggSpec(), tight, kv(fmt.Sprintf("k%d", i), 1))
	}
	if !b.HasDrops() {
		t.Fatalf("expected drops")
	}
	bytes, tuples := b.usage("q1")
	if bytes > 1 || tuples > 1 {
		t.Fatalf("usage (%d bytes, %d tuples) should exclude the drop slot", bytes, tuples)
	}
}

func TestTraceSlotNeverEvictedNorDoubleCounted(t *testing.T) {
	// The reserved span-frontier slot rides in the same baggage as query
	// data. A query exhausting its budget must evict its own groups, never
	// the trace slot, and the query's reported+dropped reconciliation must
	// be unaffected by the trace slot's presence.
	b := New()
	frontier := func(bag *Baggage, trace, span int64) {
		bag.PackBudgeted(TraceSlot, TraceSpec, Budget{}, tuple.Tuple{tuple.Int(trace), tuple.Int(span), tuple.Int(span * 10)})
	}
	frontier(b, 7, 1)
	tight := Budget{MaxBytes: -1, MaxTuples: 3}
	const total = 9
	for i := 0; i < total; i++ {
		b.PackBudgeted("q1.a", aggSpec(), tight, kv(fmt.Sprintf("k%d", i), int64(i)))
		frontier(b, 7, int64(i+2)) // interleave span packs with query packs
	}
	// The trace slot survives with exactly one (FRONTIER) pair.
	tr := b.Unpack(TraceSlot)
	if len(tr) != 1 || tr[0][0].Int() != 7 || tr[0][1].Int() != int64(total+1) {
		t.Fatalf("trace slot = %v, want single frontier pair (7, %d)", tr, total+1)
	}
	// reported + dropped reconciles exactly; no tombstone names the trace slot.
	got := b.Unpack("q1.a")
	drops := b.DropRecords("q1")
	if len(got)+len(drops) != total {
		t.Fatalf("reported %d + dropped %d != total %d", len(got), len(drops), total)
	}
	for _, d := range b.DropRecords("") {
		if d.Slot == TraceSlot {
			t.Fatalf("trace slot appears in drop accounting: %v", d)
		}
	}
	// The trace slot contributes nothing to any query's usage.
	if bytes, tuples := b.usage("q1"); tuples > 3 {
		t.Fatalf("usage (%d bytes, %d tuples) should exclude the trace slot", bytes, tuples)
	}
	// Even a pack scoped to the trace slot's own prefix finds no victim
	// there: enforce must return without evicting or looping.
	st := b.PackBudgeted(TraceSlot, TraceSpec, Budget{MaxBytes: 1, MaxTuples: 1}, tuple.Tuple{tuple.Int(7), tuple.Int(99), tuple.Int(990)})
	if st.EvictedGroups != 0 || st.RefusedTuples != 0 || st.Packed != 1 {
		t.Fatalf("trace-slot pack under a tiny budget must not evict: %+v", st)
	}
}

func TestUnionSetSemantics(t *testing.T) {
	b := New()
	spec := SetSpec{Kind: Union, Fields: tuple.Schema{"v"}}
	b.Pack("u", spec, tuple.Tuple{tuple.Int(1)}, tuple.Tuple{tuple.Int(2)}, tuple.Tuple{tuple.Int(1)})
	if got := b.Unpack("u"); len(got) != 2 {
		t.Fatalf("UNION dedup failed: %v", got)
	}
	// Unlike Frontier, a later pack never replaces earlier tuples...
	b.Pack("u", spec, tuple.Tuple{tuple.Int(3)})
	if got := b.Unpack("u"); len(got) != 3 {
		t.Fatalf("UNION must accumulate: %v", got)
	}
	// ...and joins union both sides.
	l, r := b.Split()
	l.Pack("u", spec, tuple.Tuple{tuple.Int(4)})
	r.Pack("u", spec, tuple.Tuple{tuple.Int(4)}, tuple.Tuple{tuple.Int(5)})
	j := Join(l, r)
	if got := j.Unpack("u"); len(got) != 5 {
		t.Fatalf("UNION join = %v, want 5 distinct", got)
	}
}

func TestCostBytesMaintainedIncrementally(t *testing.T) {
	for _, kind := range []SetKind{All, First, FirstN, Recent, RecentN, Frontier, Union, Agg} {
		spec := SetSpec{Kind: kind, N: 2, Fields: tuple.Schema{"k", "v"}}
		if kind == Agg {
			spec.GroupBy = []int{0}
			spec.Aggs = []AggField{{Pos: 1, Fn: agg.Sum}}
		}
		s := NewSet(spec)
		for i := 0; i < 5; i++ {
			s.Pack(kv(fmt.Sprintf("k%d", i%3), int64(i)))
		}
		got := s.CostBytes()
		s.recomputeBytes()
		if got != s.CostBytes() {
			t.Errorf("%v: incremental cost %d != recomputed %d", kind, got, s.CostBytes())
		}
		c := s.Clone()
		if c.CostBytes() != s.CostBytes() {
			t.Errorf("%v: Clone cost %d != %d", kind, c.CostBytes(), s.CostBytes())
		}
		o := NewSet(spec)
		for i := 3; i < 8; i++ {
			o.Pack(kv(fmt.Sprintf("k%d", i%4), int64(i)))
		}
		c.Merge(o)
		got = c.CostBytes()
		c.recomputeBytes()
		if got != c.CostBytes() {
			t.Errorf("%v: merged incremental cost %d != recomputed %d", kind, got, c.CostBytes())
		}
	}
}
