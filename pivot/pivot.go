// Package pivot is the public API of this Pivot Tracing implementation:
// dynamic causal monitoring for distributed Go systems.
//
// Pivot Tracing (Mace, Roelke, Fonseca — SOSP 2015) lets operators install
// relational queries over tracepoint events at runtime, including queries
// that group and filter by events from other processes via the
// happened-before join (->). This package wires the pieces together for
// embedding in an application process:
//
//	pt := pivot.New("my-service")
//	requests := pt.Define("Server.HandleRequest", "size")
//	...
//	func handle(ctx context.Context, req Request) {
//	    requests.Here(ctx, len(req.Body))
//	    ...
//	}
//	...
//	q, _ := pt.Install(`From r In Server.HandleRequest
//	                    GroupBy r.host Select r.host, COUNT, SUM(r.size)`)
//	stop := pt.StartReporting(time.Second)
//	defer stop()
//	... q.Rows() ...
//
// Requests carry baggage in their context: call NewRequest at the request
// entry point, Inject/Extract at process boundaries, and Split/Join around
// parallel branches. The simulated Hadoop stack used by the paper's
// evaluation lives under internal/ and is driven by the cmd/ tools.
package pivot

import (
	"context"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/spans"
	"repro/internal/telemetry"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
	"repro/internal/wire"
)

// Tracepoint is a named instrumentation site; call Here at the location it
// identifies.
type Tracepoint = tracepoint.Tracepoint

// Query is a handle to an installed query.
type Query = core.Installed

// Group is one globally merged group-by bucket with its partial aggregate
// states (see Query.Groups); callers use it to inspect aggregate-state
// metadata such as sampling exactness.
type Group = advice.Group

// Report is one interval's partial results from one process.
type Report = agent.Report

// Tuple is one result row; Value is one field of a row.
type (
	Tuple = tuple.Tuple
	Value = tuple.Value
)

// PT is an in-process Pivot Tracing runtime: tracepoint registry, agent,
// and query frontend sharing an in-process message bus. In a multi-process
// deployment each process runs an agent connected to a shared bus; this
// single-process form is the embeddable core.
type PT struct {
	Registry *tracepoint.Registry
	Bus      *bus.Bus
	Frontend *core.PivotTracing
	Agent    *agent.Agent

	info tracepoint.ProcInfo
}

// New creates a Pivot Tracing runtime for this process. procName appears
// as the procName default export of every tracepoint crossing.
func New(procName string) *PT {
	reg := tracepoint.NewRegistry()
	b := bus.New()
	host, _ := os.Hostname()
	info := tracepoint.ProcInfo{
		Host:     host,
		ProcName: procName,
		ProcID:   int64(os.Getpid()),
	}
	return &PT{
		Registry: reg,
		Bus:      b,
		Frontend: core.New(b, reg),
		Agent:    agent.New(nil, info, reg, b, 0),
		info:     info,
	}
}

// Context attaches this process's identity to ctx so tracepoint crossings
// export the right host and procName defaults.
func (pt *PT) Context(ctx context.Context) context.Context {
	return tracepoint.WithProc(ctx, pt.info)
}

// NewRequest returns a context for a fresh request entering this process:
// process identity plus new baggage carrying the request's sampling
// decision (when any installed query samples), minted once here so every
// downstream tracepoint — across splits, joins, and process transfers —
// agrees whether this request is kept.
func (pt *PT) NewRequest(ctx context.Context) context.Context {
	bag := baggage.New()
	if pt.Agent != nil {
		pt.Agent.MintSampleDecision(bag)
	}
	return baggage.NewContext(pt.Context(ctx), bag)
}

// Define declares a tracepoint exporting the named variables (in addition
// to the defaults: host, time, procName, procId, tracepoint).
func (pt *PT) Define(name string, exports ...string) *Tracepoint {
	return pt.Registry.Define(name, exports...)
}

// Install parses, compiles, optimizes, and installs a query.
func (pt *PT) Install(text string) (*Query, error) {
	return pt.Frontend.Install(text)
}

// InstallNamed installs a query under a name that later queries can join
// (as in the paper's Q9 joining Q8).
func (pt *PT) InstallNamed(name, text string) (*Query, error) {
	return pt.Frontend.InstallNamed(name, text, plan.Optimized)
}

// Flush publishes the current partial results to installed query handles.
func (pt *PT) Flush() { pt.Agent.Flush() }

// serializeTP is the "baggage.Serialize" meta-tracepoint, armed by
// EnableSelfTelemetry. It is package-global because Inject is a package
// function; in the (test-only) case of several runtimes per OS process,
// the last runtime to enable self-telemetry owns it.
var serializeTP atomic.Pointer[tracepoint.Tracepoint]

// EnableSelfTelemetry turns the tracer's instruments on itself:
//
//   - attaches the frontend's telemetry registry to the tracepoint
//     registry, the bus, the agent, and the process's baggage layer, so
//     Status() includes hit/weave counters, per-topic message counts,
//     report totals, and baggage serialization volume;
//
//   - defines and arms the meta-tracepoints "agent.Report" (query, rows,
//     tuples), "tracepoint.Weave" (name, query), and "baggage.Serialize"
//     (bytes), so Pivot Tracing queries can run over Pivot Tracing
//     itself — e.g.
//
//     From r In agent.Report GroupBy r.host Select r.host, SUM(r.tuples)
//
// It returns the telemetry registry for direct snapshotting.
func (pt *PT) EnableSelfTelemetry() *telemetry.Registry {
	tel := pt.Frontend.Telemetry()
	pt.Registry.SetTelemetry(tel)
	pt.Bus.SetTelemetry(tel)
	pt.Agent.SetTelemetry(tel)
	baggage.SetTelemetry(tel)
	pt.Agent.EnableMetaTracepoint()
	pt.Frontend.EnableMetaTracepoints()
	serializeTP.Store(pt.Registry.Define("baggage.Serialize", "bytes"))
	return tel
}

// spanSeedSeq disambiguates span-ID seeds when several runtimes share one
// OS process (tests, simulated clusters): same PID, distinct streams.
var spanSeedSeq atomic.Uint64

// EnableSpans turns on causal span capture for this runtime: every
// tracepoint crossing on a baggage-carrying context records a span (in a
// bounded ring of the given capacity; <= 0 selects the default), batches
// ship on the trace topic at each flush, and the frontend reconstructs
// per-request DAGs, exposed via Traces(). Enabling spans also makes the
// agent publish per-query EXPLAIN ANALYZE statistics at each flush (see
// Query.ExplainAnalyze). The disabled path costs nothing: until this is
// called, crossings never touch the span machinery.
func (pt *PT) EnableSpans(capacity int) *spans.Builder {
	seed := uint64(pt.info.ProcID)<<32 | spanSeedSeq.Add(1)
	pt.Agent.EnableSpans(seed, capacity)
	return pt.Frontend.EnableTraceCollection()
}

// Traces returns the frontend's request-DAG builder, or nil if EnableSpans
// was never called.
func (pt *PT) Traces() *spans.Builder { return pt.Frontend.Traces() }

// Status reports the tracer's own health: per-agent heartbeat ages,
// per-query progress and cost, and (after EnableSelfTelemetry) the full
// telemetry snapshot.
func (pt *PT) Status() core.Status { return pt.Frontend.Status() }

// StatusText renders Status as aligned text tables.
func (pt *PT) StatusText() string { return pt.Frontend.StatusText() }

// RenewLeases re-arms every installed query's lease. StartReporting does
// this on each tick; frontends with their own schedulers call it directly
// (at least a few times per agent.DefaultLease).
func (pt *PT) RenewLeases() { pt.Frontend.RenewLeases() }

// StartReporting flushes on a wall-clock interval until the returned stop
// function is called. Each tick also renews the frontend's query leases,
// so a process that stops ticking (or is partitioned from the bus) lets
// its queries lapse from every agent.
func (pt *PT) StartReporting(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				pt.RenewLeases()
				pt.Flush()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// NewRequest attaches fresh, empty baggage to ctx: call at the entry point
// of each request.
func NewRequest(ctx context.Context) context.Context {
	return baggage.NewContext(ctx, baggage.New())
}

// Inject serializes the request's baggage for transport in an RPC header.
// Empty baggage serializes to zero bytes.
func Inject(ctx context.Context) []byte {
	out := baggage.FromContext(ctx).Serialize()
	if tp := serializeTP.Load(); tp != nil {
		tp.Here(ctx, int64(len(out)))
	}
	return out
}

// Extract attaches baggage received from the wire to ctx (lazily decoded).
func Extract(ctx context.Context, wire []byte) context.Context {
	return baggage.NewContext(ctx, baggage.Deserialize(wire))
}

// Split divides the request's baggage for a branching execution, returning
// contexts for the two branches. Tuples packed by one branch are invisible
// to the other until Join.
func Split(ctx context.Context) (context.Context, context.Context) {
	bag := baggage.FromContext(ctx)
	if bag == nil {
		return ctx, ctx
	}
	a, b := bag.Split()
	return baggage.NewContext(ctx, a), baggage.NewContext(ctx, b)
}

// Join merges the baggage of two rejoining branches and returns a context
// carrying the merged baggage.
func Join(ctx context.Context, a, b context.Context) context.Context {
	merged := baggage.Join(baggage.FromContext(a), baggage.FromContext(b))
	return baggage.NewContext(ctx, merged)
}

// BusOptions configures a runtime's connection to the pub/sub server: the
// reconnection schedule of the underlying bus.Link and the report
// retention buffer used to replay reports published during an outage.
type BusOptions struct {
	// Reconnect keeps the link alive across bus outages: redial with
	// exponential backoff + jitter, then resume bridging and replay
	// retained reports. DefaultBusOptions enables it.
	Reconnect bool

	// BackoffBase/BackoffMax bound the redial schedule (zero values take
	// the bus package defaults).
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// Seed fixes the backoff jitter RNG (deterministic chaos tests).
	Seed int64

	// Retention is the agent's outage ring-buffer capacity in reports;
	// <= 0 selects agent.DefaultRetention.
	Retention int

	// Dial overrides the link's dialer (fault injection in tests).
	Dial func(addr string) (net.Conn, error)

	// ReportTopic routes this worker's result reports to the given topic
	// instead of the shared results topic — normally a partition topic
	// owned by a combiner tier (see internal/combiner). "" keeps the
	// default. Outage retention and replay follow the configured topic.
	ReportTopic string
}

// DefaultBusOptions is the production posture: reconnect with the default
// backoff schedule and retention.
func DefaultBusOptions() BusOptions { return BusOptions{Reconnect: true} }

// linkOptions translates BusOptions to the bus layer.
func (o BusOptions) linkOptions(tel *telemetry.Registry) bus.LinkOptions {
	return bus.LinkOptions{
		Reconnect:   o.Reconnect,
		BackoffBase: o.BackoffBase,
		BackoffMax:  o.BackoffMax,
		JitterSeed:  o.Seed,
		Dial:        o.Dial,
		Telemetry:   tel,
	}
}

// ServeBus starts the central pub/sub server of a distributed deployment
// (§5 of the paper) on addr ("host:port", or ":0" for an ephemeral port)
// and connects this runtime to it as the query frontend: installed queries
// are shipped to every connected worker, whose reports flow back here.
// It returns the server's address and a shutdown function.
func (pt *PT) ServeBus(addr string) (busAddr string, shutdown func(), err error) {
	srv, err := bus.Serve(addr)
	if err != nil {
		return "", nil, err
	}
	disconnect, err := pt.ConnectFrontend(srv.Addr(), DefaultBusOptions())
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	return srv.Addr(), func() { disconnect(); srv.Close() }, nil
}

// ConnectFrontend joins this runtime to an existing pub/sub server as the
// query frontend (the serving half of ServeBus without owning the server —
// for deployments where the bus runs elsewhere, and for chaos tests that
// kill and restart it). On every reconnect the frontend rebroadcasts its
// standing installs, so workers that joined — or rejoined — during the
// outage still weave every active query.
func (pt *PT) ConnectFrontend(busAddr string, opts BusOptions) (disconnect func(), err error) {
	lopts := opts.linkOptions(pt.Frontend.Telemetry())
	var link *bus.Link
	lopts.OnUp = func(int64) {
		for _, inst := range pt.Frontend.Installs() {
			link.Send(agent.ControlTopic, inst)
		}
	}
	link, err = bus.ConnectOptions(pt.Bus, busAddr, wire.BusCodec{},
		[]string{agent.ControlTopic, agent.StatusResponseTopic},
		[]string{agent.ResultsTopic, agent.HealthTopic, agent.QuarantineTopic,
			agent.StatusRequestTopic, agent.TraceTopic},
		lopts)
	if err != nil {
		return nil, err
	}
	return link.Close, nil
}

// ConnectBus joins this runtime to a distributed deployment as a monitored
// worker: queries installed at the frontend weave into this process's
// tracepoints, and this process's reports stream back. The connection is
// resilient (DefaultBusOptions): during a bus outage flushed reports are
// retained in the agent's bounded ring buffer and replayed on reconnect,
// with losses counted in the agent's stats. It returns a disconnect
// function.
func (pt *PT) ConnectBus(busAddr string) (disconnect func(), err error) {
	return pt.ConnectBusWith(busAddr, DefaultBusOptions())
}

// ConnectBusWith is ConnectBus with explicit resilience options.
func (pt *PT) ConnectBusWith(busAddr string, opts BusOptions) (disconnect func(), err error) {
	pt.Agent.SetRetention(opts.Retention)
	reportTopic := agent.ResultsTopic
	if opts.ReportTopic != "" {
		reportTopic = opts.ReportTopic
		pt.Agent.SetReportTopic(reportTopic)
	}
	lopts := opts.linkOptions(pt.Frontend.Telemetry())
	var link *bus.Link
	lopts.OnDrop = func(topic string, msg any) {
		// Reports survive the outage in the agent's ring buffer;
		// heartbeats are liveness beacons and not worth replaying. A
		// dropped batch retains its constituent reports individually, so
		// replay granularity (and ring accounting) stays per-report.
		if topic == reportTopic {
			switch m := msg.(type) {
			case agent.Report:
				pt.Agent.Retain(m)
			case agent.ReportBatch:
				for _, r := range m.Reports {
					pt.Agent.Retain(r)
				}
			}
		}
	}
	lopts.OnUp = func(int64) {
		pt.Agent.NoteReconnect()
		pt.Agent.ReplayRetained(func(r agent.Report) error {
			return link.Send(reportTopic, r)
		})
	}
	// TraceTopic is outbound but deliberately absent from OnDrop below:
	// spans are best-effort observability and are never retained or
	// replayed across an outage (the recorder's drop counter still tells
	// the story).
	link, err = bus.ConnectOptions(pt.Bus, busAddr, wire.BusCodec{},
		[]string{reportTopic, agent.HealthTopic, agent.QuarantineTopic,
			agent.TraceTopic},
		[]string{agent.ControlTopic},
		lopts)
	if err != nil {
		return nil, err
	}
	return link.Close, nil
}

// Clock abstracts the time source of the tracepoint "time" default export.
type Clock = tracepoint.Clock

// WithClock overrides the tracepoint time source for crossings made with
// the returned context (tests and simulations use virtual clocks).
func WithClock(ctx context.Context, c Clock) context.Context {
	return tracepoint.WithClock(ctx, c)
}

// WithProcess overrides the process identity for tracepoint crossings made
// with the returned context (useful when one OS process hosts several
// logical services).
func WithProcess(ctx context.Context, host, procName string) context.Context {
	return tracepoint.WithProc(ctx, tracepoint.ProcInfo{
		Host: host, ProcName: procName, ProcID: int64(os.Getpid()),
	})
}
