// Package sampling implements consistent request-level sampling for
// Pivot Tracing queries. A sampling decision is minted exactly once per
// request — by the agent of the process that creates the request — and
// travels in a reserved baggage slot, so every tracepoint on the
// request's causal path sees the same verdict: a happened-before join
// never pairs a sampled tuple with an unsampled ancestor.
//
// The package owns the two pure pieces of the mechanism: rate
// validation (ClampRate — the only gate through which wire- or
// user-supplied rates reach the advice path) and the adaptive
// per-query rate controller that backs the effective rate off under
// baggage-budget pressure and restores it when the pressure clears.
package sampling

import (
	"math"
	"sync"
)

// ClampRate validates a sampling rate from an untrusted source (wire
// decode, user options, query text). A rate is usable iff it is a real
// number in (0, 1] whose inverse — the tuple weight — is still a finite
// float64; anything else — zero, negative, above one, NaN, ±Inf, or a
// subnormal so small that 1/r overflows to +Inf — returns 0, which means
// "sampling disabled" (the exact path). NaN fails the r > 0 comparison,
// so no special case is needed.
func ClampRate(r float64) float64 {
	if r > 0 && r <= 1 && !math.IsInf(1/r, 1) {
		return r
	}
	return 0
}

// backoffFloor divides the base rate to give the lowest effective rate
// adaptive control may reach: pressure can shed up to ~98% of a query's
// sampled requests, but never silences the query entirely.
const backoffFloor = 64

// Controller tracks the adaptive effective sampling rate of each
// installed query on one agent. Rates halve (toward base/backoffFloor)
// on every pressure tick and double (toward base) on every idle tick —
// classic AIMD-style multiplicative backoff, driven by the agent's
// baggage-budget meters.
type Controller struct {
	mu      sync.Mutex
	queries map[string]*ctlState
}

type ctlState struct {
	base float64 // installed rate, the ceiling
	eff  float64 // current effective rate
}

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{queries: make(map[string]*ctlState)}
}

// SetBase registers (or re-registers) a query's installed rate. The
// effective rate starts at the base; a rate outside (0, 1] removes the
// query. Re-installing with the same base preserves any backoff in
// progress.
func (c *Controller) SetBase(query string, rate float64) {
	rate = ClampRate(rate)
	c.mu.Lock()
	defer c.mu.Unlock()
	if rate == 0 {
		delete(c.queries, query)
		return
	}
	if st, ok := c.queries[query]; ok && st.base == rate {
		return
	}
	c.queries[query] = &ctlState{base: rate, eff: rate}
}

// Remove forgets a query (uninstall).
func (c *Controller) Remove(query string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.queries, query)
}

// Effective returns the query's current effective rate, or 0 if the
// query is not under sampling control.
func (c *Controller) Effective(query string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.queries[query]; ok {
		return st.eff
	}
	return 0
}

// Tick advances the controller one reporting interval. Under pressure
// every effective rate halves, floored at base/backoffFloor; when idle
// every rate doubles, capped at its base.
func (c *Controller) Tick(pressure bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, st := range c.queries {
		if pressure {
			st.eff = math.Max(st.base/backoffFloor, st.eff/2)
		} else {
			st.eff = math.Min(st.base, st.eff*2)
		}
	}
}

// MinEffectiveMilli returns the lowest effective rate across all
// controlled queries, in thousandths (a rate of 0.05 reports 50). With
// no sampled queries it returns 1000: everything runs exact. This is
// the single gauge the agent ships in heartbeats.
func (c *Controller) MinEffectiveMilli() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	min := 1.0
	for _, st := range c.queries {
		if st.eff < min {
			min = st.eff
		}
	}
	return int64(math.Round(min * 1000))
}
