package agent

import (
	"context"
	"testing"
	"time"

	"repro/internal/advice"
	"repro/internal/agg"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/simtime"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// q1Program compiles by hand a Q1-style program over tracepoint "Tp".
func q1Program() *advice.Program {
	return &advice.Program{
		QueryID:       "Q",
		Tracepoint:    "Tp",
		Observe:       []int{0, 5},
		ObserveFields: tuple.Schema{"e.host", "e.v"},
		Emit: &advice.EmitOp{
			Cols:    []advice.EmitCol{{Pos: 0}, {IsAgg: true, Pos: 1, Fn: agg.Sum}},
			GroupBy: []int{0},
			Schema:  tuple.Schema{"host", "SUM(v)"},
		},
	}
}

func info(host string) tracepoint.ProcInfo {
	return tracepoint.ProcInfo{Host: host, ProcName: "p", ProcID: 1}
}

func request(host string) context.Context {
	ctx := tracepoint.WithProc(context.Background(), info(host))
	return baggage.NewContext(ctx, baggage.New())
}

// resultReports flattens a ResultsTopic message — a bare Report or a
// ReportBatch — into its constituent reports.
func resultReports(msg any) []Report {
	switch m := msg.(type) {
	case Report:
		return []Report{m}
	case ReportBatch:
		return m.Reports
	}
	return nil
}

func TestAgentWeavesOnInstallAndReports(t *testing.T) {
	env := simtime.NewEnv()
	var reports []Report
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		New(env, info("h1"), reg, b, time.Second)
		b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, resultReports(msg)...) })

		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		if !tp.Enabled() {
			t.Error("tracepoint not woven")
		}
		tp.Here(request("h1"), 10)
		tp.Here(request("h1"), 5)
		env.Sleep(1500 * time.Millisecond) // one reporting interval
	})
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	r := reports[0]
	if r.QueryID != "Q" || r.Host != "h1" || len(r.Groups) != 1 {
		t.Fatalf("report = %+v", r)
	}
	if got := r.Groups[0].States[0].Result(); got.Int() != 15 {
		t.Fatalf("partial sum = %v", got)
	}
}

func TestAgentSkipsUnknownTracepoints(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry() // no "Tp" here
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		a.Flush() // nothing to report, no panic
	})
}

func TestAgentWeavesWhenTracepointDefinedLater(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		tp := reg.Define("Tp", "v") // defined after installation
		if !tp.Enabled() {
			t.Error("standing query not woven into late-defined tracepoint")
		}
	})
}

func TestAgentUninstallUnweaves(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		b.Publish(ControlTopic, Uninstall{QueryID: "Q"})
		if tp.Enabled() {
			t.Error("tracepoint still woven after uninstall")
		}
	})
}

func TestAgentEmptyIntervalsProduceNoReports(t *testing.T) {
	env := simtime.NewEnv()
	reports := 0
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		reg.Define("Tp", "v")
		New(env, info("h1"), reg, b, time.Second)
		b.Subscribe(ResultsTopic, func(any) { reports++ })
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		env.Sleep(5 * time.Second)
	})
	if reports != 0 {
		t.Fatalf("reports = %d, want 0 for idle query", reports)
	}
}

func TestAgentStatsCountEmissions(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		for i := 0; i < 50; i++ {
			tp.Here(request("h1"), 1)
		}
		a.Flush()
		st := a.Stats()
		if st.TuplesEmitted != 50 {
			t.Errorf("TuplesEmitted = %d", st.TuplesEmitted)
		}
		if st.RowsReported != 1 {
			t.Errorf("RowsReported = %d (aggregation should collapse to one group)", st.RowsReported)
		}
		if st.Reports != 1 {
			t.Errorf("Reports = %d", st.Reports)
		}
	})
}

func TestAgentCloseUnweavesEverything(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		a.Close()
		if tp.Enabled() {
			t.Error("tracepoint still woven after Close")
		}
		// Control messages after Close are ignored.
		b.Publish(ControlTopic, Install{QueryID: "Q2", Programs: []*advice.Program{q1Program()}})
		if tp.Enabled() {
			t.Error("closed agent still handling control messages")
		}
	})
}

func TestAgentDuplicateInstallIgnored(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		msg := Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}}
		b.Publish(ControlTopic, msg)
		b.Publish(ControlTopic, msg)
		tp.Here(request("h1"), 1)
		a.Flush()
		if st := a.Stats(); st.TuplesEmitted != 1 {
			t.Errorf("duplicate install double-weaved: %d emissions", st.TuplesEmitted)
		}
	})
}

func TestNilEnvAgentManualFlush(t *testing.T) {
	b := bus.New()
	reg := tracepoint.NewRegistry()
	tp := reg.Define("Tp", "v")
	a := New(nil, info("h1"), reg, b, 0)
	var reports []Report
	b.Subscribe(ResultsTopic, func(msg any) { reports = append(reports, resultReports(msg)...) })
	b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
	tp.Here(request("h1"), 3)
	a.Flush()
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Time <= 0 {
		t.Error("wall-clock report time expected")
	}
}

// --- outage retention ring buffer ---

func report(id string, at time.Duration) Report {
	return Report{QueryID: id, Host: "h1", ProcName: "p", Time: at}
}

func newIdleAgent() *Agent {
	return New(nil, info("h1"), tracepoint.NewRegistry(), bus.New(), 0)
}

func TestRetainReplaysInFIFOOrder(t *testing.T) {
	a := newIdleAgent()
	defer a.Close()
	a.SetRetention(8)
	for i := 0; i < 3; i++ {
		a.Retain(report("Q", time.Duration(i)))
	}
	if a.Buffered() != 3 {
		t.Fatalf("buffered = %d, want 3", a.Buffered())
	}
	var sent []Report
	n := a.ReplayRetained(func(r Report) error { sent = append(sent, r); return nil })
	if n != 3 || a.Buffered() != 0 {
		t.Fatalf("replayed = %d (buffered %d), want 3 (0)", n, a.Buffered())
	}
	for i, r := range sent {
		if r.Time != time.Duration(i) {
			t.Errorf("replay[%d].Time = %d, want %d (FIFO)", i, r.Time, i)
		}
	}
	st := a.Stats()
	if st.ReportsRetained != 3 || st.ReportsReplayed != 3 || st.ReportsDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRetainEvictsOldestWhenFull(t *testing.T) {
	a := newIdleAgent()
	defer a.Close()
	a.SetRetention(2)
	for i := 0; i < 5; i++ {
		a.Retain(report("Q", time.Duration(i)))
	}
	if a.Buffered() != 2 {
		t.Fatalf("buffered = %d, want 2", a.Buffered())
	}
	var sent []Report
	a.ReplayRetained(func(r Report) error { sent = append(sent, r); return nil })
	if len(sent) != 2 || sent[0].Time != 3 || sent[1].Time != 4 {
		t.Fatalf("replayed %v, want times 3,4 (newest retained)", sent)
	}
	st := a.Stats()
	// Every retained report is accounted: 5 retained = 2 replayed + 3 dropped.
	if st.ReportsRetained != 5 || st.ReportsDropped != 3 || st.ReportsReplayed != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReplayStopsAtFirstFailureAndKeepsReport(t *testing.T) {
	a := newIdleAgent()
	defer a.Close()
	a.SetRetention(8)
	for i := 0; i < 3; i++ {
		a.Retain(report("Q", time.Duration(i)))
	}
	calls := 0
	n := a.ReplayRetained(func(r Report) error {
		calls++
		if calls == 2 {
			return bus.ErrLinkDown
		}
		return nil
	})
	if n != 1 {
		t.Fatalf("replayed = %d, want 1", n)
	}
	// The failed report (Time=1) and its successor are still buffered, in
	// order, for the next reconnect.
	var sent []Report
	a.ReplayRetained(func(r Report) error { sent = append(sent, r); return nil })
	if len(sent) != 2 || sent[0].Time != 1 || sent[1].Time != 2 {
		t.Fatalf("second replay %v, want times 1,2", sent)
	}
}

func TestRetentionDefaultsWhenUnset(t *testing.T) {
	a := newIdleAgent()
	defer a.Close()
	for i := 0; i < DefaultRetention+5; i++ {
		a.Retain(report("Q", time.Duration(i)))
	}
	if a.Buffered() != DefaultRetention {
		t.Fatalf("buffered = %d, want DefaultRetention (%d)", a.Buffered(), DefaultRetention)
	}
	if st := a.Stats(); st.ReportsDropped != 5 {
		t.Errorf("dropped = %d, want 5", st.ReportsDropped)
	}
}

func TestNoteReconnectCountsIntoStatsAndHeartbeat(t *testing.T) {
	b := bus.New()
	a := New(nil, info("h1"), tracepoint.NewRegistry(), b, 0)
	defer a.Close()
	var hb Heartbeat
	b.Subscribe(HealthTopic, func(msg any) { hb = msg.(Heartbeat) })
	a.NoteReconnect()
	a.NoteReconnect()
	a.Flush()
	if hb.Stats.Reconnects != 2 {
		t.Errorf("heartbeat reconnects = %d, want 2", hb.Stats.Reconnects)
	}
}

// TestAgentSpanCaptureShipsBatchesAndExplain: with span capture enabled,
// each flush drains the ring into SpanBatch frames on TraceTopic and
// snapshots every installed query's operator counters as ExplainStats.
// The ring is bounded — crossings beyond capacity overwrite the oldest
// spans and are accounted as drops, never blocking the hot path.
func TestAgentSpanCaptureShipsBatchesAndExplain(t *testing.T) {
	env := simtime.NewEnv()
	var (
		batches  []SpanBatch
		explains []ExplainStats
		st       Stats
	)
	env.Run(func() {
		b := bus.New()
		reg := tracepoint.NewRegistry()
		tp := reg.Define("Tp", "v")
		a := New(env, info("h1"), reg, b, time.Second)
		a.EnableSpans(1<<32, 4)
		b.Subscribe(TraceTopic, func(msg any) {
			switch m := msg.(type) {
			case SpanBatch:
				batches = append(batches, m)
			case ExplainStats:
				explains = append(explains, m)
			}
		})
		b.Publish(ControlTopic, Install{QueryID: "Q", Programs: []*advice.Program{q1Program()}})
		ctx := request("h1")
		for i := 0; i < 6; i++ { // 6 crossings into a 4-slot ring
			tp.Here(ctx, 1)
		}
		env.Sleep(1500 * time.Millisecond) // one reporting interval
		st = a.Stats()
	})
	var shipped int
	for _, sb := range batches {
		if sb.Host != "h1" || sb.ProcName != "p" {
			t.Fatalf("batch identity = %s/%s", sb.Host, sb.ProcName)
		}
		shipped += len(sb.Spans)
	}
	if shipped != 4 {
		t.Errorf("shipped spans = %d, want 4 (ring capacity)", shipped)
	}
	if st.SpansCaptured != 6 || st.SpansDropped != 2 {
		t.Errorf("captured/dropped = %d/%d, want 6/2", st.SpansCaptured, st.SpansDropped)
	}
	if len(explains) == 0 {
		t.Fatal("no ExplainStats published")
	}
	es := explains[0]
	if es.QueryID != "Q" || len(es.Ops) != 1 || es.Ops[0].Invocations != 6 {
		t.Errorf("explain snapshot = %+v", es)
	}
}
