package baggage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/agg"
	"repro/internal/itc"
	"repro/internal/tuple"
)

// Wire format (all integers are varints unless noted):
//
//	baggage  := count:uvarint instance*
//	instance := stamp:itc count:uvarint slot*
//	slot     := name:str spec content
//	spec     := kind:byte n:varint fields:[uvarint str*]
//	            groupby:[uvarint varint*] aggs:[uvarint (varint byte)*]
//	content  := tuples:[uvarint tuple*]                 (non-AGG)
//	          | groups:[uvarint (keyTuple states)*]     (AGG)
//
// Empty baggage serializes to zero bytes, matching the paper's default.

var errTruncated = errors.New("baggage: truncated encoding")

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf)-k) < n {
		return "", nil, errTruncated
	}
	return string(buf[k : k+int(n)]), buf[k+int(n):], nil
}

func appendSpec(buf []byte, spec SetSpec) []byte {
	buf = append(buf, byte(spec.Kind))
	buf = binary.AppendVarint(buf, int64(spec.N))
	buf = binary.AppendUvarint(buf, uint64(len(spec.Fields)))
	for _, f := range spec.Fields {
		buf = appendString(buf, f)
	}
	buf = binary.AppendUvarint(buf, uint64(len(spec.GroupBy)))
	for _, g := range spec.GroupBy {
		buf = binary.AppendVarint(buf, int64(g))
	}
	buf = binary.AppendUvarint(buf, uint64(len(spec.Aggs)))
	for _, a := range spec.Aggs {
		buf = binary.AppendVarint(buf, int64(a.Pos))
		buf = append(buf, byte(a.Fn))
	}
	return buf
}

func decodeSpec(buf []byte) (SetSpec, []byte, error) {
	var spec SetSpec
	if len(buf) == 0 {
		return spec, nil, errTruncated
	}
	spec.Kind = SetKind(buf[0])
	buf = buf[1:]
	n, k := binary.Varint(buf)
	if k <= 0 {
		return spec, nil, errTruncated
	}
	spec.N = int(n)
	buf = buf[k:]

	cnt, k := binary.Uvarint(buf)
	if k <= 0 {
		return spec, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < cnt; i++ {
		var f string
		var err error
		f, buf, err = decodeString(buf)
		if err != nil {
			return spec, nil, err
		}
		spec.Fields = append(spec.Fields, f)
	}

	cnt, k = binary.Uvarint(buf)
	if k <= 0 {
		return spec, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < cnt; i++ {
		g, k := binary.Varint(buf)
		if k <= 0 {
			return spec, nil, errTruncated
		}
		buf = buf[k:]
		spec.GroupBy = append(spec.GroupBy, int(g))
	}

	cnt, k = binary.Uvarint(buf)
	if k <= 0 {
		return spec, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < cnt; i++ {
		pos, k := binary.Varint(buf)
		if k <= 0 || len(buf) <= k {
			return spec, nil, errTruncated
		}
		fn := agg.Func(buf[k])
		buf = buf[k+1:]
		spec.Aggs = append(spec.Aggs, AggField{Pos: int(pos), Fn: fn})
	}
	// Baggage arrives from peer processes: reject specs whose positions
	// fall outside the field layout, so every decoded set satisfies the
	// invariants Pack would have established and Unpack never indexes out
	// of range on hostile bytes.
	for _, g := range spec.GroupBy {
		if g < 0 || g >= len(spec.Fields) {
			return spec, nil, fmt.Errorf("baggage: group-by position %d outside %d fields", g, len(spec.Fields))
		}
	}
	for _, a := range spec.Aggs {
		if a.Pos < 0 || a.Pos >= len(spec.Fields) {
			return spec, nil, fmt.Errorf("baggage: agg position %d outside %d fields", a.Pos, len(spec.Fields))
		}
	}
	return spec, buf, nil
}

func appendSet(buf []byte, s *Set) []byte {
	buf = appendSpec(buf, s.Spec)
	if s.Spec.Kind != Agg {
		buf = binary.AppendUvarint(buf, uint64(len(s.tuples)))
		for _, t := range s.tuples {
			buf = tuple.AppendTuple(buf, t)
		}
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(s.order)))
	for _, key := range s.order {
		g := s.groups[key]
		buf = tuple.AppendTuple(buf, g.keyVals)
		for _, st := range g.states {
			buf = st.Append(buf)
		}
	}
	return buf
}

func decodeSet(buf []byte) (*Set, []byte, error) {
	spec, buf, err := decodeSpec(buf)
	if err != nil {
		return nil, nil, err
	}
	s := NewSet(spec)
	cnt, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	if spec.Kind != Agg {
		for i := uint64(0); i < cnt; i++ {
			var t tuple.Tuple
			t, buf, err = tuple.DecodeTuple(buf)
			if err != nil {
				return nil, nil, err
			}
			s.tuples = append(s.tuples, t)
		}
		return s, buf, nil
	}
	for i := uint64(0); i < cnt; i++ {
		var keyVals tuple.Tuple
		keyVals, buf, err = tuple.DecodeTuple(buf)
		if err != nil {
			return nil, nil, err
		}
		if len(keyVals) != len(spec.GroupBy) {
			return nil, nil, fmt.Errorf("baggage: group key has %d values for %d group-by fields",
				len(keyVals), len(spec.GroupBy))
		}
		g := &group{keyVals: keyVals}
		for range spec.Aggs {
			var st *agg.State
			st, buf, err = agg.Decode(buf)
			if err != nil {
				return nil, nil, err
			}
			g.states = append(g.states, st)
		}
		key := keyVals.Key(identity(len(keyVals)))
		s.groups[key] = g
		s.order = append(s.order, key)
	}
	s.recomputeBytes()
	return s, buf, nil
}

// identity returns [0, 1, ..., n-1].
func identity(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func encodeInstance(buf []byte, in *instance) []byte {
	buf = itc.AppendStamp(buf, in.stamp)
	buf = binary.AppendUvarint(buf, in.nonce)
	buf = binary.AppendUvarint(buf, uint64(len(in.order)))
	for _, slot := range in.order {
		buf = appendString(buf, slot)
		buf = appendSet(buf, in.slots[slot])
	}
	return buf
}

func decodeInstance(buf []byte) (*instance, []byte, error) {
	stamp, buf, err := itc.DecodeStamp(buf)
	if err != nil {
		return nil, nil, err
	}
	in := newInstance(stamp)
	nonce, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	in.nonce = nonce
	buf = buf[k:]
	cnt, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, nil, errTruncated
	}
	buf = buf[k:]
	for i := uint64(0); i < cnt; i++ {
		var slot string
		slot, buf, err = decodeString(buf)
		if err != nil {
			return nil, nil, err
		}
		var set *Set
		set, buf, err = decodeSet(buf)
		if err != nil {
			return nil, nil, err
		}
		in.slots[slot] = set
		in.order = append(in.order, slot)
	}
	return in, buf, nil
}

func decodeInstances(buf []byte) ([]*instance, error) {
	if len(buf) == 0 {
		return nil, nil
	}
	cnt, k := binary.Uvarint(buf)
	if k <= 0 {
		return nil, errTruncated
	}
	buf = buf[k:]
	// Bound the preallocation by what the buffer could possibly hold (one
	// byte per instance minimum): baggage arrives from peer processes, and
	// a corrupt count must not balloon an allocation before the per-
	// instance decode loop hits errTruncated.
	hint := cnt
	if hint > uint64(len(buf)) {
		hint = uint64(len(buf))
	}
	insts := make([]*instance, 0, hint)
	for i := uint64(0); i < cnt; i++ {
		in, rest, err := decodeInstance(buf)
		if err != nil {
			return nil, err
		}
		insts = append(insts, in)
		buf = rest
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("baggage: %d trailing bytes", len(buf))
	}
	return insts, nil
}

// Serialize renders the baggage to bytes. Empty baggage serializes to nil
// (zero bytes). Baggage that was deserialized and never modified returns
// the original bytes without re-encoding (lazy round-trip).
func (b *Baggage) Serialize() []byte {
	if b == nil {
		return nil
	}
	var out []byte
	switch {
	case !b.decoded:
		out = make([]byte, len(b.raw))
		copy(out, b.raw)
	case len(b.insts) == 0:
	default:
		// Encode into a pooled staging buffer, then copy to an exact-size
		// result: one allocation per call (the escaping result itself)
		// instead of the log-many growth reallocations of a cold append.
		s := getScratch()
		buf := s.buf[:0]
		buf = binary.AppendUvarint(buf, uint64(len(b.insts)))
		for _, in := range b.insts {
			buf = encodeInstance(buf, in)
		}
		out = make([]byte, len(buf))
		copy(out, buf)
		s.buf = buf
		putScratch(s)
	}
	if m := meters.Load(); m != nil {
		m.Serializations.Inc()
		m.SerializedBytes.Add(int64(len(out)))
		m.Bytes.Observe(int64(len(out)))
	}
	return out
}

// Deserialize constructs baggage from bytes produced by Serialize. The
// contents are decoded lazily on first access. A nil/empty buffer yields
// empty baggage.
func Deserialize(buf []byte) *Baggage {
	if len(buf) == 0 {
		return New()
	}
	raw := make([]byte, len(buf))
	copy(raw, buf)
	return &Baggage{raw: raw}
}

// ByteSize returns the serialized size of the baggage in bytes. Decoded
// baggage is measured by encoding into a pooled scratch buffer — the
// length is read and the bytes discarded — so sizing does not allocate a
// serialization and does not count as one in the telemetry.
func (b *Baggage) ByteSize() int {
	if b == nil {
		return 0
	}
	if !b.decoded {
		return len(b.raw)
	}
	if len(b.insts) == 0 {
		return 0
	}
	s := getScratch()
	buf := s.buf[:0]
	buf = binary.AppendUvarint(buf, uint64(len(b.insts)))
	for _, in := range b.insts {
		buf = encodeInstance(buf, in)
	}
	n := len(buf)
	s.buf = buf
	putScratch(s)
	return n
}
