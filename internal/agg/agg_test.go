package agg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tuple"
)

func TestFromName(t *testing.T) {
	for name, fn := range map[string]Func{
		"COUNT": Count, "SUM": Sum, "MIN": Min, "MAX": Max,
		"AVERAGE": Average, "AVG": Average,
	} {
		got, ok := FromName(name)
		if !ok || got != fn {
			t.Errorf("FromName(%q) = (%v, %v)", name, got, ok)
		}
	}
	if _, ok := FromName("MEDIAN"); ok {
		t.Error("MEDIAN should not parse")
	}
}

func TestCount(t *testing.T) {
	s := New(Count)
	for i := 0; i < 5; i++ {
		s.Add(tuple.Int(int64(i)))
	}
	if !s.Result().Equal(tuple.Int(5)) {
		t.Errorf("COUNT = %v, want 5", s.Result())
	}
}

func TestSumIntsStaysInt(t *testing.T) {
	s := New(Sum)
	s.Add(tuple.Int(3))
	s.Add(tuple.Int(4))
	r := s.Result()
	if r.Kind() != tuple.KindInt || r.Int() != 7 {
		t.Errorf("SUM = %v (%v), want int 7", r, r.Kind())
	}
}

func TestSumWithFloatPromotes(t *testing.T) {
	s := New(Sum)
	s.Add(tuple.Int(3))
	s.Add(tuple.Float(0.5))
	r := s.Result()
	if r.Kind() != tuple.KindFloat || r.Float() != 3.5 {
		t.Errorf("SUM = %v (%v), want float 3.5", r, r.Kind())
	}
}

func TestMinMax(t *testing.T) {
	mn, mx := New(Min), New(Max)
	for _, v := range []int64{5, 2, 9, 2} {
		mn.Add(tuple.Int(v))
		mx.Add(tuple.Int(v))
	}
	if mn.Result().Int() != 2 || mx.Result().Int() != 9 {
		t.Errorf("MIN/MAX = %v/%v", mn.Result(), mx.Result())
	}
}

func TestAverage(t *testing.T) {
	s := New(Average)
	s.Add(tuple.Int(1))
	s.Add(tuple.Int(2))
	s.Add(tuple.Int(6))
	if s.Result().Float() != 3.0 {
		t.Errorf("AVG = %v, want 3", s.Result())
	}
}

func TestEmptyStates(t *testing.T) {
	if !New(Count).Result().Equal(tuple.Int(0)) {
		t.Error("empty COUNT should be 0")
	}
	if !New(Sum).Result().Equal(tuple.Int(0)) {
		t.Error("empty SUM should be 0")
	}
	if !New(Average).Result().IsNull() {
		t.Error("empty AVG should be null")
	}
	if !New(Min).Result().IsNull() || !New(Max).Result().IsNull() {
		t.Error("empty MIN/MAX should be null")
	}
}

func TestMergeEmptyIsIdentity(t *testing.T) {
	for _, fn := range []Func{Count, Sum, Min, Max, Average} {
		s := New(fn)
		s.Add(tuple.Int(5))
		before := s.Result()
		s.Merge(New(fn))
		if !s.Result().Equal(before) {
			t.Errorf("%v: merge with empty changed %v to %v", fn, before, s.Result())
		}
	}
}

func TestMergeMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Sum).Merge(New(Count))
}

func TestCombiner(t *testing.T) {
	if Count.Combiner() != Sum {
		t.Error("COUNT combiner should be SUM")
	}
	for _, fn := range []Func{Sum, Min, Max, Average} {
		if fn.Combiner() != fn {
			t.Errorf("%v combiner should be itself", fn)
		}
	}
}

// TestQuickMergeEqualsSequential: splitting a value stream into chunks,
// aggregating each, and merging must equal aggregating the whole stream.
func TestQuickMergeEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		vals := make([]tuple.Value, n)
		for i := range vals {
			if rng.Intn(2) == 0 {
				vals[i] = tuple.Int(int64(rng.Intn(1000) - 500))
			} else {
				vals[i] = tuple.Float(float64(rng.Intn(1000)) / 4)
			}
		}
		for _, fn := range []Func{Count, Sum, Min, Max, Average} {
			whole := New(fn)
			for _, v := range vals {
				whole.Add(v)
			}
			merged := New(fn)
			i := 0
			for i < n {
				chunk := New(fn)
				end := i + 1 + rng.Intn(n-i)
				for ; i < end; i++ {
					chunk.Add(vals[i])
				}
				merged.Merge(chunk)
			}
			a, b := whole.Result(), merged.Result()
			if a.Kind() == tuple.KindFloat {
				if diff := a.Float() - b.Float(); diff > 1e-9 || diff < -1e-9 {
					return false
				}
			} else if !a.Equal(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCodecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := []Func{Count, Sum, Min, Max, Average}[rng.Intn(5)]
		s := New(fn)
		for i := rng.Intn(10); i > 0; i-- {
			s.Add(tuple.Int(int64(rng.Intn(100))))
		}
		buf := s.Append(nil)
		got, rest, err := Decode(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Result().Equal(s.Result()) && got.Count() == s.Count() && got.Fn() == s.Fn()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := New(Sum)
	s.Add(tuple.Int(5))
	buf := s.Append(nil)
	for i := 0; i < len(buf); i++ {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("Decode of %d-byte prefix should fail", i)
		}
	}
}
