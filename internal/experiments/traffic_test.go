package experiments

import (
	"strings"
	"testing"
)

func TestTrafficComparison(t *testing.T) {
	cfg := TrafficConfig{Hosts: 4, Readers: 3, OpsPerReader: 100, Files: 8}
	res, err := RunTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ResultsMatch {
		t.Errorf("strategies disagree:\n  optimized: %v\n  baseline:  %v", res.OptRows, res.BaseRows)
	}
	// The §4 shape: per-interval aggregation collapses emitted tuples by a
	// large factor.
	if res.OptEmittedPerDNPerSec < 5*res.OptReportedPerDNPerSec {
		t.Errorf("aggregation reduction too small: %v emitted vs %v reported",
			res.OptEmittedPerDNPerSec, res.OptReportedPerDNPerSec)
	}
	// Fig 6 shape: the baseline ships far more tuples than the optimized
	// strategy reports.
	if res.BaseEmittedPerDNPerSec < 5*res.OptReportedPerDNPerSec {
		t.Errorf("baseline traffic (%v/s) not clearly above optimized (%v/s)",
			res.BaseEmittedPerDNPerSec, res.OptReportedPerDNPerSec)
	}
	// Baseline causal metadata stays small (constant-size baggage).
	if res.BaselineBaggageAvg <= 0 || res.BaselineBaggageAvg > 100 {
		t.Errorf("baseline baggage avg = %v bytes", res.BaselineBaggageAvg)
	}
	if out := res.Render(); !strings.Contains(out, "Fig 6") {
		t.Errorf("render = %q", out)
	}
}
