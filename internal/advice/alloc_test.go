//go:build !race

package advice

// Allocation-regression tests. Excluded under -race: the race detector's
// instrumentation adds bookkeeping allocations that would fail these
// assertions for reasons unrelated to the code under test.

import (
	"testing"

	"repro/internal/tuple"
)

func TestAllocAccumulatorAddSteadyStateIsAllocationFree(t *testing.T) {
	acc := NewAccumulator(aggOp())
	w := tuple.Tuple{tuple.String("host-1"), tuple.Int(1)}
	acc.Add(w) // create the group (cold)
	if n := testing.AllocsPerRun(1000, func() {
		acc.Add(w)
	}); n != 0 {
		t.Errorf("steady-state Accumulator.Add into an existing group allocates "+
			"%.1f objects/op, want 0 (regression in the scratch-key lookup path)", n)
	}
}

func TestAllocShardedAddSteadyStateIsAllocationFree(t *testing.T) {
	s := NewShardedAccumulator(aggOp(), 0)
	w := tuple.Tuple{tuple.String("host-1"), tuple.Int(1)}
	s.Add(w) // create this shard's group and hint (cold)
	if n := testing.AllocsPerRun(1000, func() {
		s.Add(w)
	}); n != 0 {
		t.Errorf("steady-state ShardedAccumulator.Add allocates %.1f objects/op, "+
			"want 0 (regression in the shard-affinity or scratch-key path)", n)
	}
}
