// Command ptstat prints a cluster health view of Pivot Tracing itself:
// per-agent heartbeat age and activity, per-query progress and cost
// counters, frontend telemetry, and the pub/sub server's per-topic queue
// depth. It is the operator's answer to "is the tracer healthy and
// cheap?" (the §4 'explain' idea turned on the tracer's own runtime).
//
// The agents table includes each agent's resilience counters — bus
// reconnects ("reconn"), reports replayed from the retention buffer after
// an outage ("replay"), and reports evicted from that buffer ("drops") —
// so bounded loss during bus outages is visible and attributable rather
// than silent.
//
// The governance (safety-valve) columns make resource protection equally
// attributable: per agent, leases shed after a frontend died ("expired"),
// advice programs quarantined by the panic/cost breaker ("quarant"), and
// baggage bytes evicted by per-request budgets ("bagdrop"); per query,
// the lease TTL the frontend keeps renewing ("lease"), groups lost to
// budget truncation ("dropped"), and quarantine notices ("quarant"). A
// query with nonzero dropped/quarant is partial — exact on the groups it
// reports, explicit about what it lost.
//
// Usage:
//
//	ptstat -addr 127.0.0.1:7000            one-shot cluster view
//	ptstat -addr 127.0.0.1:7000 -watch 2s  refresh every 2s
//	ptstat -demo                           self-contained demo runtime
//
// With -addr, ptstat talks to a running deployment's pub/sub server: it
// fetches the server's own status over the reserved status topic, and
// asks the query frontend for its status via the pt.status.req/resp
// topics. With -demo it spins up an in-process runtime with
// self-telemetry enabled, runs a meta-query over agent.Report, and
// prints the resulting status — a quick way to see the output format.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/advice"
	"repro/internal/agent"
	"repro/internal/baggage"
	"repro/internal/bus"
	"repro/internal/plan"
	"repro/internal/wire"
	"repro/pivot"
)

func main() {
	addr := flag.String("addr", "", "pub/sub server address of the deployment")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once and exit)")
	timeout := flag.Duration("timeout", 3*time.Second, "per-request timeout")
	demo := flag.Bool("demo", false, "run a self-contained demo runtime instead of connecting")
	flag.Parse()

	if *demo {
		runDemo()
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "ptstat: -addr required (or -demo); see -help")
		os.Exit(2)
	}

	for {
		text, err := fetch(*addr, *timeout)
		if *watch > 0 {
			fmt.Print("\x1b[2J\x1b[H") // clear screen between refreshes
		}
		fmt.Printf("ptstat %s @ %s\n\n", *addr, time.Now().Format(time.TimeOnly))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ptstat:", err)
			if *watch == 0 {
				os.Exit(1)
			}
		} else {
			fmt.Print(text)
		}
		if *watch == 0 {
			return
		}
		time.Sleep(*watch)
	}
}

// fetch gathers the frontend status (over the status topics) and the bus
// server's own status (over the reserved status endpoint).
func fetch(addr string, timeout time.Duration) (string, error) {
	frontend, ferr := fetchFrontendStatus(addr, timeout)
	server, serr := bus.FetchServerStatus(addr, timeout)
	if ferr != nil && serr != nil {
		return "", fmt.Errorf("frontend: %v; server: %v", ferr, serr)
	}
	out := ""
	if ferr != nil {
		out += fmt.Sprintf("frontend status unavailable: %v\n", ferr)
	} else {
		out += frontend
	}
	out += "\n"
	if serr != nil {
		out += fmt.Sprintf("bus server status unavailable: %v\n", serr)
	} else {
		out += server
	}
	return out, nil
}

// fetchFrontendStatus asks the deployment's query frontend for its
// rendered status by publishing a StatusRequest through the pub/sub
// server and awaiting the matching response.
func fetchFrontendStatus(addr string, timeout time.Duration) (string, error) {
	b := bus.New()
	id := fmt.Sprintf("ptstat-%d", time.Now().UnixNano())
	got := make(chan string, 1)
	sub := b.Subscribe(agent.StatusResponseTopic, func(msg any) {
		if resp, ok := msg.(agent.StatusResponse); ok && resp.ID == id {
			select {
			case got <- resp.Text:
			default:
			}
		}
	})
	defer b.Unsubscribe(sub)

	link, err := bus.Connect(b, addr, wire.BusCodec{},
		[]string{agent.StatusRequestTopic}, []string{agent.StatusResponseTopic})
	if err != nil {
		return "", err
	}
	defer link.Close()

	b.Publish(agent.StatusRequestTopic, agent.StatusRequest{ID: id})
	select {
	case text := <-got:
		return text, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("no status response within %s (is a frontend connected?)", timeout)
	}
}

// runDemo spins up an in-process runtime with self-telemetry, runs an
// application query plus a meta-query over the tracer's own reports, and
// prints the status view.
func runDemo() {
	pt := pivot.New("ptstat-demo")
	pt.EnableSelfTelemetry()
	handle := pt.Define("Server.Handle", "route", "bytes")

	if _, err := pt.Install(`From h In Server.Handle
		GroupBy h.route Select h.route, COUNT, SUM(h.bytes)`); err != nil {
		panic(err)
	}
	meta, err := pt.Install(`From r In agent.Report
		GroupBy r.host Select r.host, SUM(r.tuples)`)
	if err != nil {
		panic(err)
	}
	// A deliberately tiny baggage budget demonstrates the governance
	// accounting: the happened-before join can keep only one route group
	// per request, tombstones the rest, and the status tables attribute
	// the loss ("dropped", "bagdrop") instead of hiding it.
	reply := pt.Define("Server.Reply", "status")
	budgeted, err := pt.Frontend.InstallNamed("budget-demo",
		`From r In Server.Reply Join h In Server.Handle On h -> r
		GroupBy h.route Select h.route, SUM(h.bytes)`,
		plan.Options{Optimize: true, Safety: advice.Safety{
			Budget: baggage.Budget{MaxTuples: 1},
		}})
	if err != nil {
		panic(err)
	}

	routes := []string{"/api/users", "/api/orders", "/healthz"}
	for i := 0; i < 300; i++ {
		ctx := pt.NewRequest(context.Background())
		handle.Here(ctx, routes[i%len(routes)], 128+i)
		handle.Here(ctx, routes[(i+1)%len(routes)], 64+i)
		reply.Here(ctx, 200)
		pivot.Inject(ctx) // exercise the baggage.Serialize meta-tracepoint
	}
	pt.Flush() // report app results; crosses agent.Report
	pt.Flush() // report the meta-query's observation of that report

	fmt.Print(pt.StatusText())
	fmt.Println("\nmeta-query rows (tuples reported per host):")
	for _, row := range meta.Rows() {
		fmt.Printf("  %v\n", row)
	}
	fmt.Printf("\nbudgeted join (MaxTuples=1): %d rows, %d groups dropped, partial=%v\n",
		len(budgeted.Rows()), budgeted.DroppedGroups(), budgeted.Partial())
}
