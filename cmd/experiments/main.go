// Command experiments regenerates the paper's entire evaluation — every
// figure and table DESIGN.md indexes — and prints the results, optionally
// writing them to a file for EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("out", "", "also write the report to this file")
	quick := flag.Bool("quick", false, "scaled-down configurations (faster)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	type step struct {
		name string
		run  func() (interface{ Render() string }, error)
	}
	steps := []step{
		{"Fig 3", func() (interface{ Render() string }, error) { return experiments.RunFig3() }},
		{"Fig 1", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultFig1Config()
			if *quick {
				cfg.Hosts, cfg.Duration = 4, 20*time.Second
				cfg.Sort10g, cfg.Sort100g = 1e9, 2e9
			}
			return experiments.RunFig1(cfg)
		}},
		{"Fig 6 / tuple traffic", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultTrafficConfig()
			if *quick {
				cfg.Hosts, cfg.OpsPerReader = 4, 150
			}
			return experiments.RunTraffic(cfg)
		}},
		{"Fig 8 (buggy)", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultFig8Config()
			if *quick {
				cfg.Hosts, cfg.Duration, cfg.Files = 4, 10*time.Second, 100
			}
			return experiments.RunFig8(cfg)
		}},
		{"Fig 8 (fixed)", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultFig8Config()
			cfg.Fixed = true
			if *quick {
				cfg.Hosts, cfg.Duration, cfg.Files = 4, 10*time.Second, 100
			}
			return experiments.RunFig8(cfg)
		}},
		{"Fig 9", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultFig9Config()
			if *quick {
				cfg.Hosts, cfg.Duration, cfg.FaultAt = 4, 30*time.Second, 10*time.Second
			}
			return experiments.RunFig9(cfg)
		}},
		{"§6.2 rogue GC", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultGCConfig()
			if *quick {
				cfg.Hosts, cfg.Duration = 4, 15*time.Second
			}
			return experiments.RunGC(cfg)
		}},
		{"§6.2 NameNode locking", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultNNLockConfig()
			if *quick {
				cfg.Duration = 5 * time.Second
			}
			return experiments.RunNNLock(cfg)
		}},
		{"Table 5", func() (interface{ Render() string }, error) {
			cfg := experiments.DefaultTable5Config()
			if *quick {
				cfg.Hosts, cfg.Duration = 4, 8*time.Second
			}
			return experiments.RunTable5(cfg)
		}},
	}

	for _, s := range steps {
		start := time.Now()
		res, err := s.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", s.name, err)
			os.Exit(1)
		}
		fmt.Fprintln(w, res.Render())
		fmt.Fprintf(w, "[%s completed in %v]\n\n", s.name, time.Since(start).Round(time.Millisecond))
	}
}
