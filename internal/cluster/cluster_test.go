package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/baggage"
	"repro/internal/simtime"
	"repro/internal/tuple"
)

func testCluster(env *simtime.Env) *Cluster {
	cfg := DefaultConfig()
	cfg.RPCLatency = 0
	return New(env, cfg)
}

func TestEndToEndQ2StyleQuery(t *testing.T) {
	env := simtime.NewEnv()
	var rows []tuple.Tuple
	env.Run(func() {
		c := testCluster(env)
		clientProc := c.Start("host-1", "HGET")
		dnProc := c.Start("host-2", "DataNode")

		clTp := clientProc.Define("ClientProtocols")
		incrTp := dnProc.Define("DataNodeMetrics.incrBytesRead", "delta")
		// The frontend's master registry needs both definitions; mirror
		// the client tracepoint into the DataNode process's vocabulary
		// too (it is simply never invoked there).
		dnProc.Define("ClientProtocols")
		clientProc.Define("DataNodeMetrics.incrBytesRead", "delta")

		dnProc.Handle("DataNode.read", func(ctx context.Context, req any) (any, error) {
			incrTp.Here(ctx, req.(int))
			return nil, nil
		})

		h, err := c.PT.Install(
			`From incr In DataNodeMetrics.incrBytesRead
			 Join cl In First(ClientProtocols) On cl -> incr
			 GroupBy cl.procName
			 Select cl.procName, SUM(incr.delta)`)
		if err != nil {
			t.Error(err)
			return
		}

		for i := 0; i < 5; i++ {
			ctx := clientProc.NewRequest()
			clTp.Here(ctx)
			if _, err := clientProc.Call(ctx, dnProc, "DataNode.read", 1000, Sizes{Request: 100, Response: 4096}); err != nil {
				t.Error(err)
				return
			}
		}
		env.Sleep(2 * time.Second) // let agents report
		c.FlushAgents()
		rows = h.Rows()
	})
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Str() != "HGET" || rows[0][1].Int() != 5000 {
		t.Fatalf("row = %v, want (HGET, 5000)", rows[0])
	}
}

func TestRPCPropagatesBaggageBothWays(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		a := c.Start("h1", "client")
		b := c.Start("h2", "server")
		spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"v"}}

		b.Handle("S.m", func(ctx context.Context, req any) (any, error) {
			bag := baggage.FromContext(ctx)
			// The callee sees tuples packed by the caller...
			if got := bag.Unpack("fromCaller"); len(got) != 1 {
				t.Errorf("callee sees %v, want 1 tuple", got)
			}
			// ...and can pack tuples the caller will see on return.
			bag.Pack("fromCallee", spec, tuple.Tuple{tuple.Int(7)})
			return "ok", nil
		})

		ctx := a.NewRequest()
		baggage.FromContext(ctx).Pack("fromCaller", spec, tuple.Tuple{tuple.Int(1)})
		resp, err := a.Call(ctx, b, "S.m", nil, Sizes{Request: 10, Response: 10})
		if err != nil || resp != "ok" {
			t.Errorf("resp = %v, %v", resp, err)
		}
		got := baggage.FromContext(ctx).Unpack("fromCallee")
		if len(got) != 1 || got[0][0].Int() != 7 {
			t.Errorf("caller sees %v after return, want [(7)]", got)
		}
	})
}

func TestRPCToMissingHandlerErrors(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		a := c.Start("h1", "client")
		b := c.Start("h2", "server")
		if _, err := a.Call(a.NewRequest(), b, "No.method", nil, Sizes{}); err == nil {
			t.Error("expected error for missing handler")
		}
	})
}

func TestRPCTransfersConsumeBandwidth(t *testing.T) {
	env := simtime.NewEnv()
	var elapsed time.Duration
	env.Run(func() {
		cfg := DefaultConfig()
		cfg.NICRate = 1000 // 1000 B/s
		cfg.RPCLatency = 0
		c := New(env, cfg)
		a := c.Start("h1", "client")
		b := c.Start("h2", "server")
		b.Handle("S.m", func(ctx context.Context, req any) (any, error) { return nil, nil })
		start := env.Now()
		a.Call(a.NewRequest(), b, "S.m", nil, Sizes{Request: 1000, Response: 2000})
		elapsed = env.Now() - start
	})
	// 1000 B at 1000 B/s + 2000 B at 1000 B/s = 3s.
	if elapsed < 2900*time.Millisecond || elapsed > 3100*time.Millisecond {
		t.Fatalf("RPC took %v, want ~3s", elapsed)
	}
}

func TestProcessGoSplitsAndJoinsBaggage(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		p := c.Start("h1", "worker")
		spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"v"}}

		ctx := p.NewRequest()
		baggage.FromContext(ctx).Pack("s", spec, tuple.Tuple{tuple.Int(1)})

		join := p.Go(ctx, func(branchCtx context.Context) {
			env.Sleep(time.Millisecond)
			bag := baggage.FromContext(branchCtx)
			// Branch sees pre-branch tuples.
			if got := bag.Unpack("s"); len(got) != 1 {
				t.Errorf("branch sees %v", got)
			}
			bag.Pack("s", spec, tuple.Tuple{tuple.Int(2)})
		})
		baggage.FromContext(ctx).Pack("s", spec, tuple.Tuple{tuple.Int(3)})
		join()

		got := baggage.FromContext(ctx).Unpack("s")
		if len(got) != 3 {
			t.Fatalf("after join: %v, want 3 tuples", got)
		}
	})
}

func TestUnmonitoredProcessStillPropagates(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		a := c.Start("h1", "client")
		mid := c.StartUnmonitored("h2", "proxy")
		b := c.Start("h3", "server")
		spec := baggage.SetSpec{Kind: baggage.All, Fields: tuple.Schema{"v"}}

		b.Handle("S.m", func(ctx context.Context, req any) (any, error) {
			got := baggage.FromContext(ctx).Unpack("s")
			if len(got) != 1 {
				t.Errorf("server sees %v through proxy", got)
			}
			return nil, nil
		})
		mid.Handle("P.fwd", func(ctx context.Context, req any) (any, error) {
			return mid.Call(ctx, b, "S.m", req, Sizes{})
		})
		if mid.Agent != nil {
			t.Error("unmonitored process should have no agent")
		}

		ctx := a.NewRequest()
		baggage.FromContext(ctx).Pack("s", spec, tuple.Tuple{tuple.Int(1)})
		if _, err := a.Call(ctx, mid, "P.fwd", nil, Sizes{}); err != nil {
			t.Error(err)
		}
	})
}

func TestDuplicateProcessPanics(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c := testCluster(env)
		c.Start("h1", "p")
		c.Start("h1", "p")
	})
}

func TestUninstallStopsCollection(t *testing.T) {
	env := simtime.NewEnv()
	env.Run(func() {
		c := testCluster(env)
		p := c.Start("h1", "proc")
		tp := p.Define("Tp", "v")

		h, err := c.PT.Install(`From e In Tp GroupBy e.host Select e.host, COUNT`)
		if err != nil {
			t.Error(err)
			return
		}
		tp.Here(p.NewRequest(), 1)
		c.FlushAgents() // report the partial before uninstalling
		h.Uninstall()
		tp.Here(p.NewRequest(), 1) // after uninstall: not counted
		c.FlushAgents()
		rows := h.Rows()
		if len(rows) != 1 || rows[0][1].Int() != 1 {
			t.Errorf("rows = %v, want count 1", rows)
		}
		if tp.Enabled() {
			t.Error("tracepoint should be disabled after uninstall")
		}
	})
}
