package baggage

import "sync"

// scratch is a pooled byte buffer for transient encodings on the pack and
// serialize hot paths: group-key building in Set.Pack / PackBudgeted and
// the staging buffer in Serialize / ByteSize. Pooling the buffer (and
// returning the same *scratch object to the pool, never a fresh header)
// makes steady-state packing allocation-free.
type scratch struct{ buf []byte }

// maxScratchCap bounds what the pool retains: a pathological one-off
// serialization must not pin a huge buffer for the process lifetime.
const maxScratchCap = 1 << 16

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a scratch buffer; its buf may be nil (first use on
// this P) or hold stale bytes — callers always write via s.buf[:0].
func getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	if m := meters.Load(); m != nil && s.buf != nil {
		m.PoolReuses.Inc()
	}
	return s
}

// putScratch returns the scratch to the pool, dropping oversized buffers.
func putScratch(s *scratch) {
	if cap(s.buf) > maxScratchCap {
		s.buf = nil
	}
	scratchPool.Put(s)
}
