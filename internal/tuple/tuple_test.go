package tuple

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Int(-42), KindInt, "-42"},
		{Float(2.5), KindFloat, "2.5"},
		{String("hi"), KindString, "hi"},
		{Bool(true), KindBool, "true"},
		{Null, KindNull, "null"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v String = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if Int(-42).Int() != -42 {
		t.Error("Int accessor")
	}
	if Float(2.5).Float() != 2.5 {
		t.Error("Float accessor")
	}
	if String("hi").Str() != "hi" {
		t.Error("Str accessor")
	}
	if !Bool(true).Bool() || Bool(false).Bool() {
		t.Error("Bool accessor")
	}
}

func TestOfConvertsNativeTypes(t *testing.T) {
	if Of(7).Int() != 7 || Of(int64(8)).Int() != 8 || Of(uint(9)).Int() != 9 {
		t.Error("Of ints")
	}
	if Of(1.5).Float() != 1.5 || Of(float32(0.5)).Float() != 0.5 {
		t.Error("Of floats")
	}
	if Of("x").Str() != "x" || !Of(true).Bool() {
		t.Error("Of string/bool")
	}
	if !Of(nil).IsNull() {
		t.Error("Of nil")
	}
	if Of(struct{ X int }{3}).Kind() != KindString {
		t.Error("Of fallback should stringify")
	}
}

func TestNumericCrossComparison(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("3 == 3.0")
	}
	if Int(3).Compare(Float(3.5)) != -1 {
		t.Error("3 < 3.5")
	}
	if Float(4.0).Compare(Int(3)) != 1 {
		t.Error("4.0 > 3")
	}
}

func TestStringAndBoolComparison(t *testing.T) {
	if String("a").Compare(String("b")) != -1 {
		t.Error("a < b")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Error("false < true")
	}
	if String("a").Equal(Int(1)) {
		t.Error("string != int")
	}
}

func TestSchemaIndexAndConcat(t *testing.T) {
	s := Schema{"host", "delta"}
	if s.Index("delta") != 1 || s.Index("missing") != -1 {
		t.Error("Index")
	}
	s2 := s.Concat(Schema{"procName"})
	if !s2.Equal(Schema{"host", "delta", "procName"}) {
		t.Errorf("Concat = %v", s2)
	}
	if !s.Equal(Schema{"host", "delta"}) {
		t.Error("Concat must not mutate receiver")
	}
}

func TestTupleConcatProjectClone(t *testing.T) {
	a := Tuple{Int(1), String("x")}
	b := Tuple{Float(2.5)}
	j := a.Concat(b)
	if len(j) != 3 || !j[2].Equal(Float(2.5)) {
		t.Errorf("Concat = %v", j)
	}
	p := j.Project([]int{2, 0})
	if !p.Equal(Tuple{Float(2.5), Int(1)}) {
		t.Errorf("Project = %v", p)
	}
	c := a.Clone()
	c[0] = Int(99)
	if a[0].Int() != 1 {
		t.Error("Clone must not alias")
	}
}

func TestGroupKeyInjective(t *testing.T) {
	// Pathological pairs that naive string-concat keys would collide on.
	a := Tuple{String("ab"), String("c")}
	b := Tuple{String("a"), String("bc")}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("group keys collide for (ab,c) vs (a,bc)")
	}
	if !reflect.DeepEqual(a.Key([]int{0}), Tuple{String("ab")}.Key([]int{0})) {
		t.Error("same values must share a key")
	}
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Int(rng.Int63() - (1 << 62))
	case 1:
		return Float(rng.NormFloat64() * 1e6)
	case 2:
		buf := make([]byte, rng.Intn(20))
		rng.Read(buf)
		return String(string(buf))
	case 3:
		return Bool(rng.Intn(2) == 0)
	default:
		return Null
	}
}

func TestQuickValueCodecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 20; i++ {
			v := randomValue(rng)
			buf := AppendValue(nil, v)
			got, rest, err := DecodeValue(buf)
			if err != nil || len(rest) != 0 || !got.Equal(v) {
				return false
			}
			if len(buf) != EncodedSize(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTupleCodecRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tup := make(Tuple, rng.Intn(8))
		for i := range tup {
			tup[i] = randomValue(rng)
		}
		buf := AppendTuple(nil, tup)
		got, rest, err := DecodeTuple(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return got.Equal(tup)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickKeyConsistentWithEquality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Tuple{randomValue(rng), randomValue(rng)}
		b := Tuple{randomValue(rng), randomValue(rng)}
		idx := []int{0, 1}
		if a.Equal(b) != (a.Key(idx) == b.Key(idx)) {
			// NaN breaks Equal reflexivity; skip those.
			if a[0].Kind() == KindFloat && math.IsNaN(a[0].Float()) {
				return true
			}
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrorPaths(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 10, 'a'}); err == nil {
		t.Error("short string should fail")
	}
	if _, _, err := DecodeValue([]byte{200}); err == nil {
		t.Error("bad tag should fail")
	}
	if _, _, err := DecodeTuple([]byte{2, byte(KindNull)}); err == nil {
		t.Error("truncated tuple should fail")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindInt: "int", KindFloat: "float",
		KindString: "string", KindBool: "bool", Kind(77): "kind(77)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
