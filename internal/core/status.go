package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/telemetry"
)

// This file is the frontend's introspection surface: the answer to "is
// Pivot Tracing itself healthy and cheap?". The frontend tracks every
// agent's heartbeats (published on agent.HealthTopic at each flush) and
// judges staleness against the agent's own reporting interval; per-query
// progress and cost come from the install handles; everything else is the
// telemetry registry. Status is served in-process via Status/StatusText
// and over the bus via agent.StatusRequestTopic (see cmd/ptstat).

// StaleAfterIntervals is how many missed reporting intervals mark an
// agent unhealthy.
const StaleAfterIntervals = 3

// agentHealth is the frontend's record of one agent, keyed by host/proc.
type agentHealth struct {
	hb    agent.Heartbeat
	usage []agent.TenantQuota // latest per-tenant quota usage, if any
}

// AgentHealth is one agent's health as judged by the frontend.
type AgentHealth struct {
	Host     string
	ProcName string
	Interval time.Duration
	Age      time.Duration // now - last heartbeat time
	Healthy  bool          // Age <= StaleAfterIntervals * Interval
	Queries  int
	Stats    agent.Stats
}

// QueryStatus is one installed query's progress and cost.
type QueryStatus struct {
	Name          string
	Rows          int           // globally aggregated rows so far
	Reports       int64         // agent reports merged
	FirstResult   time.Duration // install→first-report latency; -1 if none yet
	Invocations   int64         // summed over the query's advice programs
	TuplesEmitted int64
	Lease         time.Duration // install TTL agents enforce; 0 = immortal
	DroppedGroups int           // baggage groups evicted by the query's budget
	Quarantines   int           // circuit-breaker notices received
}

// Status is a point-in-time view of the tracer's own health.
type Status struct {
	Now       time.Duration
	Agents    []AgentHealth
	Queries   []QueryStatus
	Tenants   []TenantStatus // fleet-wide per-tenant quota usage
	Telemetry telemetry.Snapshot
}

// onHeartbeat records an agent's liveness beacon; TenantUsage frames ride
// the same topic and update the agent's per-tenant quota snapshot.
func (pt *PivotTracing) onHeartbeat(msg any) {
	switch m := msg.(type) {
	case agent.Heartbeat:
		pt.mu.Lock()
		pt.agentRecLocked(m.Host, m.ProcName).hb = m
		pt.mu.Unlock()
	case agent.TenantUsage:
		pt.mu.Lock()
		pt.agentRecLocked(m.Host, m.ProcName).usage = m.Usage
		pt.mu.Unlock()
	}
}

func (pt *PivotTracing) agentRecLocked(host, proc string) *agentHealth {
	key := host + "/" + proc
	rec, ok := pt.agents[key]
	if !ok {
		rec = &agentHealth{}
		pt.agents[key] = rec
	}
	return rec
}

// onStatusRequest answers a bus status query with the rendered status.
func (pt *PivotTracing) onStatusRequest(msg any) {
	req, ok := msg.(agent.StatusRequest)
	if !ok {
		return
	}
	pt.bus.Publish(agent.StatusResponseTopic, agent.StatusResponse{
		ID:   req.ID,
		Text: pt.StatusText(),
	})
}

// Status reports health against wall-clock time. Deployments on a
// virtual clock (simulated clusters) use StatusAt with their own now.
func (pt *PivotTracing) Status() Status {
	return pt.StatusAt(time.Duration(time.Now().UnixNano()))
}

// StatusAt reports health as of the given instant, which must be on the
// same clock the agents stamp their heartbeats with.
func (pt *PivotTracing) StatusAt(now time.Duration) Status {
	pt.mu.Lock()
	agents := make([]AgentHealth, 0, len(pt.agents))
	byTenant := make(map[string]*TenantStatus)
	var tenantNames []string
	for _, rec := range pt.agents {
		hb := rec.hb
		age := now - hb.Time
		agents = append(agents, AgentHealth{
			Host:     hb.Host,
			ProcName: hb.ProcName,
			Interval: hb.Interval,
			Age:      age,
			Healthy:  age >= 0 && age <= StaleAfterIntervals*hb.Interval,
			Queries:  hb.Queries,
			Stats:    hb.Stats,
		})
		for _, u := range rec.usage {
			ts := byTenant[u.Tenant]
			if ts == nil {
				ts = &TenantStatus{Tenant: u.Tenant}
				byTenant[u.Tenant] = ts
				tenantNames = append(tenantNames, u.Tenant)
			}
			ts.Agents++
			// Max across agents = the tenant's distinct installed query
			// set (every agent weaves every install); tuples sum.
			if q := int(u.Queries); q > ts.Queries {
				ts.Queries = q
			}
			ts.Tuples += u.Tuples
		}
	}
	handles := make([]*Installed, 0, len(pt.installed))
	for _, h := range pt.installed {
		handles = append(handles, h)
	}
	pt.mu.Unlock()

	sort.Slice(agents, func(i, j int) bool {
		if agents[i].Host != agents[j].Host {
			return agents[i].Host < agents[j].Host
		}
		return agents[i].ProcName < agents[j].ProcName
	})

	queries := make([]QueryStatus, 0, len(handles))
	for _, h := range handles {
		dropped := h.DroppedGroups()
		h.mu.Lock()
		qs := QueryStatus{
			Name:          h.Name,
			Rows:          len(h.global.Rows()),
			Reports:       h.reports,
			FirstResult:   h.firstResult,
			Lease:         h.lease,
			DroppedGroups: dropped,
			Quarantines:   len(h.quarantines),
		}
		h.mu.Unlock()
		for _, prog := range h.Plan.Programs {
			qs.Invocations += prog.Cost.Invocations.Load()
			qs.TuplesEmitted += prog.Cost.TuplesEmitted.Load()
		}
		queries = append(queries, qs)
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i].Name < queries[j].Name })

	sort.Strings(tenantNames)
	tenants := make([]TenantStatus, 0, len(tenantNames))
	for _, name := range tenantNames {
		tenants = append(tenants, *byTenant[name])
	}

	return Status{
		Now:       now,
		Agents:    agents,
		Queries:   queries,
		Tenants:   tenants,
		Telemetry: pt.tel.Snapshot(),
	}
}

// StatusText renders the wall-clock status (see RenderStatus).
func (pt *PivotTracing) StatusText() string { return RenderStatus(pt.Status()) }

// statColumns is the audit trail from agent.Stats field to the ptstat
// agent-table column that surfaces it. An empty column is a deliberate
// "no column" decision and must carry a reason. The companion test
// reflects over agent.Stats and fails when the heartbeat grows a counter
// with no entry here, so every new field forces an explicit render
// decision instead of silently never reaching operators.
var statColumns = map[string]string{
	"TuplesEmitted": "tuples",
	"RowsReported":  "rows",
	"Reports":       "reports",
	"Batches":       "batches",

	"ReportsRetained": "", // transient buffer occupancy; replay/drops columns show the outcome
	"ReportsReplayed": "replay",
	"ReportsDropped":  "drops",
	"Reconnects":      "reconn",

	"LeasesExpired":        "expired",
	"Quarantines":          "quarant",
	"RawsDropped":          "rawdrop",
	"GroupsOverflowed":     "ovflow",
	"BaggageGroupsDropped": "", // bagdrop (bytes) is the representative eviction figure
	"BaggageTuplesDropped": "", // bagdrop (bytes) is the representative eviction figure
	"BaggageBytesDropped":  "bagdrop",

	"SpansCaptured": "spans",
	"SpansDropped":  "spandrop",
	"SpanBatches":   "", // framing detail; spans/spandrop carry the signal

	"CombinerReportsMerged": "cmerged",
	"CombinerFramesOut":     "cfwd",

	"SampledOut":      "smplout",
	"SampleRateMilli": "srate",
}

// RenderStatus formats a Status as the aligned tables cmd/ptstat prints:
// agents (with heartbeat age and health), queries (with cost counters),
// then the frontend telemetry snapshot.
func RenderStatus(s Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "agents (%d):\n", len(s.Agents))
	fmt.Fprintf(&b, "  %-24s %-12s %10s %10s %-9s %7s %9s %7s %9s %9s %7s %7s %7s %7s %7s %7s %7s %8s %8s %8s %8s %7s %7s %5s\n",
		"host", "proc", "age", "interval", "health", "queries", "reports", "batches",
		"rows", "tuples", "reconn", "replay", "drops", "expired", "quarant",
		"rawdrop", "ovflow", "bagdrop", "spans", "spandrop", "cmerged", "cfwd",
		"smplout", "srate")
	for _, a := range s.Agents {
		health := "ok"
		if !a.Healthy {
			health = "UNHEALTHY"
		}
		fmt.Fprintf(&b, "  %-24s %-12s %10s %10s %-9s %7d %9d %7d %9d %9d %7d %7d %7d %7d %7d %7d %7d %8d %8d %8d %8d %7d %7d %5d\n",
			a.Host, a.ProcName,
			a.Age.Round(time.Millisecond), a.Interval, health, a.Queries,
			a.Stats.Reports, a.Stats.Batches, a.Stats.RowsReported, a.Stats.TuplesEmitted,
			a.Stats.Reconnects, a.Stats.ReportsReplayed, a.Stats.ReportsDropped,
			a.Stats.LeasesExpired, a.Stats.Quarantines,
			a.Stats.RawsDropped, a.Stats.GroupsOverflowed, a.Stats.BaggageBytesDropped,
			a.Stats.SpansCaptured, a.Stats.SpansDropped,
			a.Stats.CombinerReportsMerged, a.Stats.CombinerFramesOut,
			a.Stats.SampledOut, a.Stats.SampleRateMilli)
	}
	fmt.Fprintf(&b, "\nqueries (%d):\n", len(s.Queries))
	fmt.Fprintf(&b, "  %-16s %8s %9s %14s %12s %9s %9s %8s %8s\n",
		"query", "rows", "reports", "first-result", "invocations", "emitted",
		"lease", "dropped", "quarant")
	for _, q := range s.Queries {
		first := "-"
		if q.FirstResult >= 0 {
			first = q.FirstResult.Round(time.Microsecond).String()
		}
		lease := "-"
		if q.Lease > 0 {
			lease = q.Lease.String()
		}
		fmt.Fprintf(&b, "  %-16s %8d %9d %14s %12d %9d %9s %8d %8d\n",
			q.Name, q.Rows, q.Reports, first, q.Invocations, q.TuplesEmitted,
			lease, q.DroppedGroups, q.Quarantines)
	}
	if len(s.Tenants) > 0 {
		fmt.Fprintf(&b, "\ntenants (%d):\n", len(s.Tenants))
		fmt.Fprintf(&b, "  %-16s %7s %8s %12s\n", "tenant", "agents", "queries", "tuples")
		for _, ten := range s.Tenants {
			fmt.Fprintf(&b, "  %-16s %7d %8d %12d\n", ten.Tenant, ten.Agents, ten.Queries, ten.Tuples)
		}
	}
	if !s.Telemetry.Empty() {
		b.WriteString("\ntelemetry:\n")
		b.WriteString(s.Telemetry.Render())
	}
	return b.String()
}
