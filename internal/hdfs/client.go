package hdfs

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/cluster"
	"repro/internal/tracepoint"
)

// ClientConfig controls client-side replica selection.
type ClientConfig struct {
	// RandomReplicaSelection, when false, reproduces the client half of
	// HDFS-6268: the client always reads the first location returned by
	// the NameNode. When true (the fix), it prefers a local replica and
	// otherwise selects uniformly at random.
	RandomReplicaSelection bool
	// Seed drives random selection.
	Seed int64
}

// Client is the HDFS client library, embedded in an application process.
type Client struct {
	Proc *cluster.Process
	nn   *NameNode
	cfg  ClientConfig

	mu  sync.Mutex
	rng *rand.Rand

	tpClientProto *tracepoint.Tracepoint
}

// rpcOverhead is the payload size of small control RPCs.
const rpcOverhead = 200

// NewClient creates an HDFS client inside proc.
func NewClient(proc *cluster.Process, nn *NameNode, cfg ClientConfig) *Client {
	c := &Client{
		Proc: proc,
		nn:   nn,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed ^ proc.Info.ProcID)),
	}
	// The paper's Q2 instruments the client protocols of HDFS, HBase, and
	// MapReduce under one tracepoint vocabulary.
	c.tpClientProto = proc.Define("ClientProtocols")
	return c
}

// GetBlockLocations asks the NameNode for the replica map of a byte range.
func (c *Client) GetBlockLocations(ctx context.Context, src string, offset, length float64) ([]BlockLocation, error) {
	resp, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.GetBlockLocations",
		GetBlockLocationsReq{Src: src, ClientHost: c.Proc.Info.Host, Offset: offset, Length: length},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	if err != nil {
		return nil, err
	}
	locs, _ := resp.([]BlockLocation)
	return locs, nil
}

// chooseReplica applies the client half of the replica selection logic.
func (c *Client) chooseReplica(replicas []string) string {
	if len(replicas) == 0 {
		return ""
	}
	if !c.cfg.RandomReplicaSelection {
		// HDFS-6268: always take the first location.
		return replicas[0]
	}
	// Fixed behaviour: local replica if present, else uniform random.
	for _, h := range replicas {
		if h == c.Proc.Info.Host {
			return h
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return replicas[c.rng.Intn(len(replicas))]
}

// Read reads length bytes of src starting at offset, selecting a replica
// per block and streaming the data from its DataNode.
func (c *Client) Read(ctx context.Context, src string, offset, length float64) error {
	c.tpClientProto.Here(ctx)
	locs, err := c.GetBlockLocations(ctx, src, offset, length)
	if err != nil {
		return err
	}
	remaining := length
	for _, bl := range locs {
		n := bl.Size
		if n > remaining {
			n = remaining
		}
		host := c.chooseReplica(bl.Replicas)
		dnProc := c.Proc.C.Proc(host, "DataNode")
		if dnProc == nil {
			return fmt.Errorf("hdfs: no DataNode on %q", host)
		}
		_, err := c.Proc.Call(ctx, dnProc, "DataTransferProtocol.ReadBlock",
			ReadBlockReq{Block: bl.Block, Length: n, DestHost: c.Proc.Info.Host},
			cluster.Sizes{Request: rpcOverhead, Response: 64})
		if err != nil {
			return err
		}
		remaining -= n
	}
	return nil
}

// Create creates src with the given size and writes its blocks through the
// replication pipelines.
func (c *Client) Create(ctx context.Context, src string, size float64) error {
	c.tpClientProto.Here(ctx)
	resp, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Create",
		CreateReq{Src: src, Size: size},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	if err != nil {
		return err
	}
	locs, _ := resp.([]BlockLocation)
	for _, bl := range locs {
		if len(bl.Replicas) == 0 {
			continue
		}
		first := c.Proc.C.Proc(bl.Replicas[0], "DataNode")
		if first == nil {
			return fmt.Errorf("hdfs: no DataNode on %q", bl.Replicas[0])
		}
		_, err := c.Proc.Call(ctx, first, "DataTransferProtocol.WriteBlock",
			WriteBlockReq{
				Block: bl.Block, Length: bl.Size,
				SrcHost: c.Proc.Info.Host, Pipeline: bl.Replicas[1:],
			},
			cluster.Sizes{Request: bl.Size, Response: 64})
		if err != nil {
			return err
		}
	}
	_, err = c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Complete", src,
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}

// CreateMetadataOnly registers src in the namespace without transferring
// block data — used to pre-populate large datasets instantly.
func (c *Client) CreateMetadataOnly(ctx context.Context, src string, size float64) error {
	_, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Create",
		CreateReq{Src: src, Size: size},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}

// Open checks that src exists (a NameNode read operation).
func (c *Client) Open(ctx context.Context, src string) error {
	c.tpClientProto.Here(ctx)
	_, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Open", src,
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}

// Rename renames src to dst (a NameNode write operation).
func (c *Client) Rename(ctx context.Context, src, dst string) error {
	c.tpClientProto.Here(ctx)
	_, err := c.Proc.Call(ctx, c.nn.Proc, "ClientProtocol.Rename",
		RenameReq{Src: src, Dst: dst},
		cluster.Sizes{Request: rpcOverhead, Response: rpcOverhead})
	return err
}
