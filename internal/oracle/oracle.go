// Package oracle is a reference evaluator for Pivot Tracing queries. It
// takes a parsed query plus a fully materialized causal trace — every
// tracepoint firing with its captured variables and its happened-before
// set — and computes the exact expected result set in one process, with
// no baggage, no agents, and no bus. It is deliberately small and direct
// so that it is obviously correct; the differential harness in
// pivot/differential_test.go runs the same cases through the real
// distributed pipeline and asserts byte-equal results.
//
// Evaluation model. Each query event (a firing of a From-source
// tracepoint) contributes the cross product of its own observed fields
// with the "stream" of every directly joined alias. The stream of alias
// j at event e is the concatenation, in firing order, of the rows
// produced at every j-source firing that happened strictly before e —
// where each such firing in turn crosses its own observation with the
// streams of ITS upstream aliases (nested happened-before joins), and an
// empty upstream stream suppresses the firing entirely (inner-join
// semantics, matching advice's DroppedByJoin). A temporal filter on a
// joined source retains a prefix (First/FirstN) or suffix
// (MostRecent/MostRecentN) of the stream; firing order is only
// meaningful on linear traces, so the case generator emits temporal
// filters only there. Where predicates are evaluated as one conjunction
// over the fully joined rows — equivalent to the planner's push-down
// placement for every query the generator emits (predicate push-down
// only changes results when a predicate lands below a temporal filter,
// which the generator rules out). Aggregation replicates the documented
// numeric semantics of internal/agg independently: SUM promotes to float
// iff any input was a float, AVERAGE is always the float sum over the
// count, MIN/MAX order by tuple.Value.Compare, and an empty input
// produces no rows at all.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/agg"
	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Event is one tracepoint firing in a materialized trace.
type Event struct {
	// Tracepoint is the dotted name of the tracepoint that fired.
	Tracepoint string
	// Values holds the full observed tuple by field name: the default
	// exports (host, time, procName, procId, tracepoint) plus every
	// declared export.
	Values map[string]tuple.Value
	// Before is the happened-before set: indexes (into Trace.Events) of
	// the events that causally precede this one, transitively closed.
	Before map[int]bool
}

// Trace is a fully materialized causal trace. Events are listed in
// firing order; an event's index is its identity.
type Trace struct {
	Events []Event
}

// node is one query alias resolved against its sources.
type node struct {
	alias     string
	tps       map[string]bool // source tracepoint names (unions have several)
	filter    query.TempFilter
	n         int
	upstreams []*node // aliases happened-before-joined to this one, in join order
}

// row binds field references to values for one joined result row.
type row map[query.FieldRef]tuple.Value

type evaluator struct {
	tr   *Trace
	memo map[string][]row // "alias\x00eventIndex" → stream
}

// Evaluate computes the expected result set of q over tr. The registry
// supplies tracepoint schemas for semantic analysis only. Grouped and
// raw results alike are returned in evaluation order; compare result
// sets with Canonical, which is order-insensitive.
func Evaluate(q *query.Query, reg *tracepoint.Registry, tr *Trace) ([]tuple.Tuple, error) {
	a, err := query.Analyze(q, reg, nil)
	if err != nil {
		return nil, err
	}
	if len(a.Subqueries) > 0 {
		return nil, fmt.Errorf("oracle: subquery sources are not supported")
	}

	nodes := map[string]*node{}
	from := &node{alias: q.From.Alias, tps: map[string]bool{}}
	for _, s := range q.From.Sources {
		from.tps[s.Tracepoint] = true
	}
	nodes[from.alias] = from
	for i := range q.Joins {
		j := &q.Joins[i]
		nodes[j.Alias] = &node{
			alias:  j.Alias,
			tps:    map[string]bool{j.Source.Tracepoint: true},
			filter: j.Source.Filter,
			n:      j.Source.N,
		}
	}
	for i := range q.Joins {
		j := &q.Joins[i]
		nodes[j.Right].upstreams = append(nodes[j.Right].upstreams, nodes[j.Alias])
	}

	ev := &evaluator{tr: tr, memo: map[string][]row{}}

	// Assemble the working rows: one batch per From-source firing, with
	// the Where conjunction applied over the fully joined rows.
	var work []row
	for i := range tr.Events {
		if !from.tps[tr.Events[i].Tracepoint] {
			continue
		}
		for _, r := range ev.contrib(from, i) {
			if passes(q.Where, r) {
				work = append(work, r)
			}
		}
	}

	grouped := len(q.GroupBy) > 0
	for _, si := range q.Select {
		if si.HasAgg {
			grouped = true
		}
	}
	if !grouped {
		out := make([]tuple.Tuple, 0, len(work))
		for _, r := range work {
			t := make(tuple.Tuple, len(q.Select))
			for i, si := range q.Select {
				t[i] = si.Expr.Eval(r.resolve)
			}
			out = append(out, t)
		}
		return out, nil
	}

	// Grouped / aggregated output: group rows by the encoded GroupBy
	// values, fold every aggregate, then emit one row per group. No
	// input rows means no output rows (there is no COUNT=0 row).
	type group struct {
		rep    row
		states []*aggState
	}
	groups := map[string]*group{}
	var order []string
	for _, r := range work {
		kt := make(tuple.Tuple, len(q.GroupBy))
		for i, gref := range q.GroupBy {
			kt[i] = r[gref]
		}
		key := string(tuple.AppendTuple(nil, kt))
		g, ok := groups[key]
		if !ok {
			g = &group{rep: r, states: make([]*aggState, len(q.Select))}
			for i, si := range q.Select {
				if si.HasAgg {
					g.states[i] = &aggState{fn: si.Agg}
				}
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, si := range q.Select {
			if !si.HasAgg {
				continue
			}
			if si.Expr == nil { // bare COUNT
				g.states[i].add(tuple.Null)
			} else {
				g.states[i].add(si.Expr.Eval(r.resolve))
			}
		}
	}
	out := make([]tuple.Tuple, 0, len(order))
	for _, key := range order {
		g := groups[key]
		t := make(tuple.Tuple, len(q.Select))
		for i, si := range q.Select {
			if si.HasAgg {
				t[i] = g.states[i].result()
			} else {
				t[i] = si.Expr.Eval(g.rep.resolve)
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// contrib returns the rows produced when event i crosses node n: the
// event's own fields crossed with the stream of every upstream alias.
// Any empty upstream stream suppresses the crossing (inner join).
func (ev *evaluator) contrib(n *node, i int) []row {
	base := row{}
	for f, v := range ev.tr.Events[i].Values {
		base[query.FieldRef{Alias: n.alias, Field: f}] = v
	}
	out := []row{base}
	for _, up := range n.upstreams {
		s := ev.stream(up, i)
		if len(s) == 0 {
			return nil
		}
		next := make([]row, 0, len(out)*len(s))
		for _, r := range out {
			for _, ur := range s {
				next = append(next, merged(r, ur))
			}
		}
		out = next
	}
	return out
}

// stream returns the rows of alias n visible at event `at`: the
// concatenation, in firing order, of the contributions of every
// n-source firing that happened strictly before `at`, with n's temporal
// retention applied to the whole stream.
func (ev *evaluator) stream(n *node, at int) []row {
	key := fmt.Sprintf("%s\x00%d", n.alias, at)
	if s, ok := ev.memo[key]; ok {
		return s
	}
	var all []row
	for j := range ev.tr.Events {
		if !n.tps[ev.tr.Events[j].Tracepoint] || !ev.tr.Events[at].Before[j] {
			continue
		}
		all = append(all, ev.contrib(n, j)...)
	}
	all = retain(n, all)
	ev.memo[key] = all
	return all
}

func retain(n *node, rows []row) []row {
	switch n.filter {
	case query.FilterFirst:
		if len(rows) > 1 {
			rows = rows[:1]
		}
	case query.FilterFirstN:
		if len(rows) > n.n {
			rows = rows[:n.n]
		}
	case query.FilterMostRecent:
		if len(rows) > 1 {
			rows = rows[len(rows)-1:]
		}
	case query.FilterMostRecentN:
		if len(rows) > n.n {
			rows = rows[len(rows)-n.n:]
		}
	}
	return rows
}

func merged(a, b row) row {
	m := make(row, len(a)+len(b))
	for k, v := range a {
		m[k] = v
	}
	for k, v := range b {
		m[k] = v
	}
	return m
}

func passes(where []query.Expr, r row) bool {
	for _, w := range where {
		if !w.Eval(r.resolve).Bool() {
			return false
		}
	}
	return true
}

func (r row) resolve(f query.FieldRef) tuple.Value { return r[f] }

// aggState independently replicates the numeric semantics of
// internal/agg (a differential target, so deliberately not reused).
type aggState struct {
	fn       agg.Func
	count    int64
	sumI     int64
	sumF     float64
	anyFloat bool
	best     tuple.Value
	seen     bool
}

func (s *aggState) add(v tuple.Value) {
	s.count++
	switch s.fn {
	case agg.Sum, agg.Average:
		if v.Kind() == tuple.KindFloat {
			s.anyFloat = true
		}
		s.sumI += v.Int()
		s.sumF += v.Float()
	case agg.Min:
		if !s.seen || v.Compare(s.best) < 0 {
			s.best = v
		}
	case agg.Max:
		if !s.seen || v.Compare(s.best) > 0 {
			s.best = v
		}
	}
	s.seen = true
}

func (s *aggState) result() tuple.Value {
	switch s.fn {
	case agg.Count:
		return tuple.Int(s.count)
	case agg.Sum:
		if s.anyFloat {
			return tuple.Float(s.sumF)
		}
		return tuple.Int(s.sumI)
	case agg.Average:
		if s.count == 0 {
			return tuple.Null
		}
		return tuple.Float(s.sumF / float64(s.count))
	case agg.Min, agg.Max:
		if !s.seen {
			return tuple.Null
		}
		return s.best
	default:
		return tuple.Null
	}
}

// Canonical returns a canonical encoding of a result set: each row
// tuple-encoded, the encodings sorted and concatenated. Two result sets
// are equal as multisets iff their canonical encodings are byte-equal.
func Canonical(rows []tuple.Tuple) []byte {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = string(tuple.AppendTuple(nil, r))
	}
	sort.Strings(keys)
	return []byte(strings.Join(keys, ""))
}

// Format renders a result set one row per line in canonical order, for
// failure diagnostics.
func Format(rows []tuple.Tuple) string {
	type pair struct{ key, text string }
	pairs := make([]pair, len(rows))
	for i, r := range rows {
		pairs[i] = pair{string(tuple.AppendTuple(nil, r)), r.String()}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	if len(pairs) == 0 {
		return "  (no rows)"
	}
	var b strings.Builder
	for _, p := range pairs {
		b.WriteString("  ")
		b.WriteString(p.text)
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}
