package oracle

import (
	"testing"

	"repro/internal/query"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// reg builds a registry with the test vocabulary.
func reg() *tracepoint.Registry {
	r := tracepoint.NewRegistry()
	r.Define("A", "x")
	r.Define("A2", "x")
	r.Define("B", "y")
	r.Define("C", "z")
	return r
}

// ev builds one trace event with the default exports filled in.
func ev(tp string, t int64, before []int, kv ...any) Event {
	vals := map[string]tuple.Value{
		"host":       tuple.String("h0"),
		"time":       tuple.Int(t),
		"procName":   tuple.String("p0"),
		"procId":     tuple.Int(1),
		"tracepoint": tuple.String(tp),
	}
	for i := 0; i+1 < len(kv); i += 2 {
		vals[kv[i].(string)] = tuple.Of(kv[i+1])
	}
	b := map[int]bool{}
	for _, i := range before {
		b[i] = true
	}
	return Event{Tracepoint: tp, Values: vals, Before: b}
}

func mustEval(t *testing.T, text string, tr *Trace) []tuple.Tuple {
	t.Helper()
	q, err := query.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rows, err := Evaluate(q, reg(), tr)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	return rows
}

func wantRows(t *testing.T, got []tuple.Tuple, want ...tuple.Tuple) {
	t.Helper()
	if string(Canonical(got)) != string(Canonical(want)) {
		t.Fatalf("result mismatch\ngot:\n%s\nwant:\n%s", Format(got), Format(want))
	}
}

func TestGroupedCountAndSum(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev("A", 1, nil, "x", 2),
		ev("A", 2, []int{0}, "x", 3),
		ev("B", 3, []int{0, 1}, "y", 7), // not a From source; ignored
	}}
	got := mustEval(t, "From a In A GroupBy a.host Select a.host, COUNT, SUM(a.x)", tr)
	wantRows(t, got, tuple.Tuple{tuple.String("h0"), tuple.Int(2), tuple.Int(5)})
}

func TestHappenedBeforeJoinRespectsConcurrency(t *testing.T) {
	// b0 precedes a2; b1 is concurrent with a2 (fired on a branch that
	// never joined back), so only b0's tuple joins.
	tr := &Trace{Events: []Event{
		ev("B", 1, nil, "y", 10),        // 0: b0
		ev("B", 2, nil, "y", 20),        // 1: b1, concurrent branch
		ev("A", 3, []int{0}, "x", 1),    // 2: sees only b0
		ev("A", 4, []int{0, 1}, "x", 1), // 3: after both
	}}
	got := mustEval(t, "From a In A Join b In B On b -> a Select SUM(b.y)", tr)
	wantRows(t, got, tuple.Tuple{tuple.Int(10 + 10 + 20)})
}

func TestInnerJoinDropsEventsWithNoPredecessor(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev("A", 1, nil, "x", 5), // no B before it: dropped entirely
		ev("B", 2, []int{0}, "y", 1),
		ev("A", 3, []int{0, 1}, "x", 7),
	}}
	got := mustEval(t, "From a In A Join b In B On b -> a Select a.x, b.y", tr)
	wantRows(t, got, tuple.Tuple{tuple.Int(7), tuple.Int(1)})
}

func TestTemporalFirstOnLinearTrace(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev("B", 1, nil, "y", 1),
		ev("B", 2, []int{0}, "y", 2),
		ev("B", 3, []int{0, 1}, "y", 3),
		ev("A", 4, []int{0, 1, 2}, "x", 0),
	}}
	got := mustEval(t, "From a In A Join b In First(B) On b -> a Select b.y", tr)
	wantRows(t, got, tuple.Tuple{tuple.Int(1)})

	got = mustEval(t, "From a In A Join b In MostRecentN(2, B) On b -> a Select b.y", tr)
	wantRows(t, got, tuple.Tuple{tuple.Int(2)}, tuple.Tuple{tuple.Int(3)})
}

func TestNestedJoinAndWhere(t *testing.T) {
	// c -> b -> a chain; the Where predicate on c prunes one chain.
	tr := &Trace{Events: []Event{
		ev("C", 1, nil, "z", 1),            // 0
		ev("C", 2, []int{0}, "z", 9),       // 1
		ev("B", 3, []int{0, 1}, "y", 4),    // 2: sees both c
		ev("A", 4, []int{0, 1, 2}, "x", 8), // 3
	}}
	got := mustEval(t,
		"From a In A Join b In B On b -> a Join c In C On c -> b Where c.z < 5 Select a.x, b.y, c.z", tr)
	wantRows(t, got, tuple.Tuple{tuple.Int(8), tuple.Int(4), tuple.Int(1)})
}

func TestUnionFromSources(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev("A", 1, nil, "x", 1),
		ev("A2", 2, []int{0}, "x", 2),
	}}
	got := mustEval(t, "From a In A, A2 GroupBy a.tracepoint Select a.tracepoint, COUNT", tr)
	wantRows(t, got,
		tuple.Tuple{tuple.String("A"), tuple.Int(1)},
		tuple.Tuple{tuple.String("A2"), tuple.Int(1)})
}

func TestAverageAndFloatPromotion(t *testing.T) {
	tr := &Trace{Events: []Event{
		ev("A", 1, nil, "x", 1.5),
		ev("A", 2, []int{0}, "x", 2),
	}}
	got := mustEval(t, "From a In A Select AVERAGE(a.x), SUM(a.x), MIN(a.x), MAX(a.x)", tr)
	wantRows(t, got, tuple.Tuple{
		tuple.Float(1.75), tuple.Float(3.5), tuple.Float(1.5), tuple.Int(2)})
}

func TestEmptyInputProducesNoRows(t *testing.T) {
	got := mustEval(t, "From a In A Select COUNT", &Trace{})
	if len(got) != 0 {
		t.Fatalf("want no rows for an empty trace, got %v", got)
	}
}

func TestRawProjectionKeepsMultiplicity(t *testing.T) {
	// Two From events after the same b: b's tuple appears once per From
	// event (raw mode preserves multiplicity, no dedup).
	tr := &Trace{Events: []Event{
		ev("B", 1, nil, "y", 6),
		ev("A", 2, []int{0}, "x", 1),
		ev("A", 3, []int{0, 1}, "x", 2),
	}}
	got := mustEval(t, "From a In A Join b In B On b -> a Select a.x, b.y", tr)
	wantRows(t, got,
		tuple.Tuple{tuple.Int(1), tuple.Int(6)},
		tuple.Tuple{tuple.Int(2), tuple.Int(6)})
}
