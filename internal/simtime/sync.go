package simtime

import (
	"container/heap"
	"sync"
	"time"
)

// Cond is a condition variable whose Wait parks the goroutine in virtual
// time, like sync.Cond but scheduler-aware. L must be held when calling Wait
// and is re-acquired before Wait returns. Signal and Broadcast must be called
// from managed goroutines.
type Cond struct {
	L       sync.Locker
	env     *Env
	waiters []*waiter
}

// NewCond returns a condition variable bound to l.
func (e *Env) NewCond(l sync.Locker) *Cond {
	return &Cond{L: l, env: e}
}

// Wait atomically releases c.L, parks until Signal/Broadcast, then
// re-acquires c.L.
func (c *Cond) Wait() {
	c.env.mu.Lock()
	c.purgeLocked()
	w := c.env.newWaiter()
	c.waiters = append(c.waiters, w)
	c.L.Unlock()
	c.env.block(w) // unlocks env.mu
	c.L.Lock()
}

// WaitTimeout is Wait with a virtual-time timeout. It reports true if the
// wait timed out (rather than being signaled).
func (c *Cond) WaitTimeout(d time.Duration) bool {
	if d < 0 {
		d = 0
	}
	c.env.mu.Lock()
	c.purgeLocked()
	w := c.env.newWaiter()
	w.wakeAt = c.env.now + d
	heap.Push(&c.env.timers, w)
	c.waiters = append(c.waiters, w)
	c.L.Unlock()
	c.env.block(w)
	c.L.Lock()
	return w.timedOut
}

// Signal unparks one waiting goroutine, in FIFO order.
func (c *Cond) Signal() {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	for len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		if !w.fired {
			c.env.fire(w)
			return
		}
	}
}

// Broadcast unparks all waiting goroutines.
func (c *Cond) Broadcast() {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	for _, w := range c.waiters {
		if !w.fired {
			c.env.fire(w)
		}
	}
	c.waiters = c.waiters[:0]
}

// compact drops fired waiters so repeated timeouts don't grow the slice.
func (c *Cond) compact() {
	c.env.mu.Lock()
	defer c.env.mu.Unlock()
	c.purgeLocked()
}

// purgeLocked drops fired waiters. Caller holds env.mu.
func (c *Cond) purgeLocked() {
	live := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.fired {
			live = append(live, w)
		}
	}
	c.waiters = live
}

// Queue is an unbounded FIFO queue of items; Pop blocks in virtual time
// until an item is available.
type Queue[T any] struct {
	mu    sync.Mutex
	cond  *Cond
	items []T
	env   *Env
}

// NewQueue returns an empty queue.
func NewQueue[T any](e *Env) *Queue[T] {
	q := &Queue[T]{env: e}
	q.cond = e.NewCond(&q.mu)
	return q
}

// Push appends an item; it never blocks.
func (q *Queue[T]) Push(item T) {
	q.mu.Lock()
	q.items = append(q.items, item)
	q.mu.Unlock()
	q.cond.Signal()
}

// Pop removes and returns the oldest item, blocking until one exists.
func (q *Queue[T]) Pop() T {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		q.cond.Wait()
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item
}

// PopTimeout is Pop with a virtual-time timeout; ok is false on timeout.
func (q *Queue[T]) PopTimeout(d time.Duration) (item T, ok bool) {
	deadline := q.env.Now() + d
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 {
		remaining := deadline - q.env.Now()
		if remaining <= 0 {
			return item, false
		}
		if q.cond.WaitTimeout(remaining) && len(q.items) == 0 {
			q.cond.compact()
			return item, false
		}
	}
	item = q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Len returns the current number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Semaphore is a counting semaphore with FIFO wakeup, used to model
// bounded resources such as RPC handler pools.
type Semaphore struct {
	mu    sync.Mutex
	cond  *Cond
	avail int
}

// NewSemaphore returns a semaphore with n initial permits.
func (e *Env) NewSemaphore(n int) *Semaphore {
	s := &Semaphore{avail: n}
	s.cond = e.NewCond(&s.mu)
	return s
}

// Acquire takes one permit, blocking in virtual time until available.
func (s *Semaphore) Acquire() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.avail <= 0 {
		s.cond.Wait()
	}
	s.avail--
}

// TryAcquire takes one permit only if immediately available.
func (s *Semaphore) TryAcquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.avail <= 0 {
		return false
	}
	s.avail--
	return true
}

// Release returns one permit.
func (s *Semaphore) Release() {
	s.mu.Lock()
	s.avail++
	s.mu.Unlock()
	s.cond.Signal()
}

// WaitGroup is a scheduler-aware sync.WaitGroup analog.
type WaitGroup struct {
	mu   sync.Mutex
	cond *Cond
	n    int
}

// NewWaitGroup returns a WaitGroup bound to e.
func (e *Env) NewWaitGroup() *WaitGroup {
	wg := &WaitGroup{}
	wg.cond = e.NewCond(&wg.mu)
	return wg
}

// Add adds delta to the counter.
func (wg *WaitGroup) Add(delta int) {
	wg.mu.Lock()
	wg.n += delta
	if wg.n < 0 {
		wg.mu.Unlock()
		panic("simtime: negative WaitGroup counter")
	}
	done := wg.n == 0
	wg.mu.Unlock()
	if done {
		wg.cond.Broadcast()
	}
}

// Done decrements the counter by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait blocks until the counter reaches zero.
func (wg *WaitGroup) Wait() {
	wg.mu.Lock()
	defer wg.mu.Unlock()
	for wg.n > 0 {
		wg.cond.Wait()
	}
}
