// Package baggage implements Pivot Tracing's baggage abstraction (§5 of the
// paper): a per-request container for tuples that is propagated alongside a
// request as it traverses thread, application, and machine boundaries.
// Pack and Unpack store and retrieve tuples; because tuples follow the
// request's execution path they explicitly capture the happened-before
// relation, enabling inline evaluation of the happened-before join.
//
// Baggage handles branching executions with a versioning scheme based on
// interval tree clocks: each branch packs into its own uniquely-identified
// active instance, frozen pre-branch instances are read-only, and rejoining
// merges actives and deduplicates the frozen copies.
package baggage

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/tuple"
)

// SetKind selects the retention semantics of a packed tuple set, matching
// the paper's Pack special cases (§3): ALL, FIRST, RECENT, FIRSTN, RECENTN,
// plus AGG for pack-time aggregation (the Table 3 rewrites).
type SetKind uint8

// Set kinds.
const (
	All SetKind = iota
	First
	FirstN
	Recent
	RecentN
	Agg
	// Frontier tracks the causal frontier of an execution: Pack replaces
	// the branch's tuple (like Recent), but merging at a branch join keeps
	// the tuples of both branches (deduplicated). Used by the baseline
	// global-evaluation strategy to carry X-Trace-style event identifiers.
	Frontier
	// Union accumulates distinct tuples: Pack appends unless an equal
	// tuple is already present, and merging at a branch join unions the
	// two sides (deduplicated). Unlike Frontier, a later Pack never
	// replaces earlier tuples, so facts recorded on any branch survive
	// every join. The budget layer stores eviction tombstones in a Union
	// set (see DropSlot) precisely because of this monotonicity.
	Union
)

func (k SetKind) String() string {
	switch k {
	case All:
		return "ALL"
	case First:
		return "FIRST"
	case FirstN:
		return "FIRSTN"
	case Recent:
		return "RECENT"
	case RecentN:
		return "RECENTN"
	case Agg:
		return "AGG"
	case Frontier:
		return "FRONTIER"
	case Union:
		return "UNION"
	default:
		return fmt.Sprintf("setkind(%d)", uint8(k))
	}
}

// AggField names one aggregated position of a packed tuple.
type AggField struct {
	Pos int      // position in the packed tuple
	Fn  agg.Func // aggregation function
}

// SetSpec configures a packed tuple set: its retention kind, capacity (for
// FIRSTN/RECENTN), field names, and — for AGG sets — which positions are
// group-by keys and which are aggregated.
type SetSpec struct {
	Kind    SetKind
	N       int
	Fields  tuple.Schema
	GroupBy []int
	Aggs    []AggField
}

// Equal reports whether two specs are identical.
func (s SetSpec) Equal(o SetSpec) bool {
	if s.Kind != o.Kind || s.N != o.N || !s.Fields.Equal(o.Fields) {
		return false
	}
	if len(s.GroupBy) != len(o.GroupBy) || len(s.Aggs) != len(o.Aggs) {
		return false
	}
	for i := range s.GroupBy {
		if s.GroupBy[i] != o.GroupBy[i] {
			return false
		}
	}
	for i := range s.Aggs {
		if s.Aggs[i] != o.Aggs[i] {
			return false
		}
	}
	return true
}

// group is one group-by bucket of an AGG set.
type group struct {
	keyVals tuple.Tuple // values at GroupBy positions, in GroupBy order
	states  []*agg.State
	cost    int // cached encoded size (see Set.CostBytes)
}

// recomputeCost refreshes the group's cached encoded size. The sizes are
// computed arithmetically (no scratch encoding), so cost maintenance on
// the pack hot path never allocates.
func (g *group) recomputeCost() {
	c := tuple.SizeTuple(g.keyVals)
	for _, st := range g.states {
		c += st.EncodedSize()
	}
	g.cost = c
}

// encSize is the budget cost model for one stored tuple: its encoded wire
// size. It upper-bounds the tuple's contribution to the serialized baggage
// (slot names, specs, and stamps are bounded per-slot overhead on top).
func encSize(t tuple.Tuple) int { return tuple.SizeTuple(t) }

// Set is a tuple set stored in a baggage instance under one slot.
type Set struct {
	Spec   SetSpec
	tuples []tuple.Tuple     // non-AGG kinds
	groups map[string]*group // AGG kind
	order  []string          // deterministic group iteration order
	bytes  int               // cached content cost, maintained by Pack/Merge
}

// CostBytes returns the set's content cost in encoded bytes — the budget
// layer's O(1) usage model. It is maintained incrementally by Pack and
// Merge and recomputed after decode, so budget decisions are identical
// whether or not the baggage crossed a process boundary.
func (s *Set) CostBytes() int { return s.bytes }

// recomputeBytes rebuilds the cached cost from scratch (used after decode
// and after internal evictions in bounded kinds).
func (s *Set) recomputeBytes() {
	total := 0
	if s.Spec.Kind == Agg {
		for _, key := range s.order {
			g := s.groups[key]
			g.recomputeCost()
			total += g.cost
		}
	} else {
		for _, t := range s.tuples {
			total += encSize(t)
		}
	}
	s.bytes = total
}

// removeGroup evicts one AGG group (a no-op for other kinds or unknown
// keys) and returns its cached cost.
func (s *Set) removeGroup(key string) int {
	g, ok := s.groups[key]
	if !ok {
		return 0
	}
	delete(s.groups, key)
	for i, k := range s.order {
		if k == key {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.bytes -= g.cost
	return g.cost
}

// clear empties the set, returning the evicted content cost and tuple
// count.
func (s *Set) clear() (bytes, tuples int) {
	bytes, tuples = s.bytes, s.Len()
	s.tuples = nil
	if s.Spec.Kind == Agg {
		s.groups = make(map[string]*group)
		s.order = nil
	}
	s.bytes = 0
	return bytes, tuples
}

// NewSet returns an empty set with the given spec.
func NewSet(spec SetSpec) *Set {
	s := &Set{Spec: spec}
	if spec.Kind == Agg {
		s.groups = make(map[string]*group)
	}
	return s
}

// Pack folds one tuple into the set according to its retention semantics.
func (s *Set) Pack(t tuple.Tuple) {
	switch s.Spec.Kind {
	case All:
		s.tuples = append(s.tuples, t)
		s.bytes += encSize(t)
	case First:
		if len(s.tuples) == 0 {
			s.tuples = append(s.tuples, t)
			s.bytes += encSize(t)
		}
	case FirstN:
		if len(s.tuples) < s.Spec.N {
			s.tuples = append(s.tuples, t)
			s.bytes += encSize(t)
		}
	case Recent, Frontier:
		s.tuples = append(s.tuples[:0], t)
		s.bytes = encSize(t)
	case RecentN:
		s.tuples = append(s.tuples, t)
		if excess := len(s.tuples) - s.Spec.N; excess > 0 {
			s.tuples = append(s.tuples[:0:0], s.tuples[excess:]...)
			s.recomputeBytes()
		} else {
			s.bytes += encSize(t)
		}
	case Union:
		for _, mine := range s.tuples {
			if mine.Equal(t) {
				return
			}
		}
		s.tuples = append(s.tuples, t)
		s.bytes += encSize(t)
	case Agg:
		// Build the group key in a pooled scratch buffer; the map lookup
		// via string(ks.buf) does not allocate, so folding into an
		// existing group — the steady state of the paper's fixed-size AGG
		// rewrites — is allocation-free.
		ks := getScratch()
		ks.buf = t.AppendKey(ks.buf[:0], s.Spec.GroupBy)
		g, ok := s.groups[string(ks.buf)]
		if !ok {
			key := string(ks.buf)
			g = &group{keyVals: t.Project(s.Spec.GroupBy)}
			for _, af := range s.Spec.Aggs {
				g.states = append(g.states, agg.New(af.Fn))
			}
			s.groups[key] = g
			s.order = append(s.order, key)
		}
		putScratch(ks)
		for i, af := range s.Spec.Aggs {
			g.states[i].Add(t[af.Pos])
		}
		old := g.cost
		g.recomputeCost()
		s.bytes += g.cost - old
	}
}

// Merge folds another set with the same spec into s. Used when rejoining
// branched baggage and when combining instances at unpack. A spec
// mismatch drops o rather than panicking: merge sites are where
// independently-produced baggage payloads meet, and bytes from a corrupt
// or hostile peer must never panic the traced application. Dropped
// merges are counted in the MergeConflicts meter.
func (s *Set) Merge(o *Set) {
	if !s.Spec.Equal(o.Spec) {
		if m := meters.Load(); m != nil {
			m.MergeConflicts.Inc()
		}
		return
	}
	switch s.Spec.Kind {
	case All:
		s.tuples = append(s.tuples, o.tuples...)
		s.bytes += o.bytes
	case First:
		if len(s.tuples) == 0 && len(o.tuples) > 0 {
			s.tuples = append(s.tuples, o.tuples[0])
			s.bytes += encSize(o.tuples[0])
		}
	case FirstN:
		for _, t := range o.tuples {
			if len(s.tuples) >= s.Spec.N {
				break
			}
			s.tuples = append(s.tuples, t)
			s.bytes += encSize(t)
		}
	case Recent:
		// Deterministic tie-break across branches: the left (receiver)
		// branch wins if it has a tuple.
		if len(s.tuples) == 0 && len(o.tuples) > 0 {
			s.tuples = append(s.tuples, o.tuples[0])
			s.bytes += encSize(o.tuples[0])
		}
	case RecentN:
		s.tuples = append(s.tuples, o.tuples...)
		if excess := len(s.tuples) - s.Spec.N; excess > 0 {
			s.tuples = append(s.tuples[:0:0], s.tuples[excess:]...)
		}
		s.recomputeBytes()
	case Frontier, Union:
		// Union the branch contributions, dropping exact duplicates.
		for _, t := range o.tuples {
			dup := false
			for _, mine := range s.tuples {
				if mine.Equal(t) {
					dup = true
					break
				}
			}
			if !dup {
				s.tuples = append(s.tuples, t)
				s.bytes += encSize(t)
			}
		}
	case Agg:
		for _, key := range o.order {
			og := o.groups[key]
			g, ok := s.groups[key]
			if !ok {
				g = &group{keyVals: og.keyVals.Clone(), cost: og.cost}
				for _, st := range og.states {
					g.states = append(g.states, st.Clone())
				}
				if g.cost == 0 {
					g.recomputeCost()
				}
				s.groups[key] = g
				s.order = append(s.order, key)
				s.bytes += g.cost
				continue
			}
			for i, st := range og.states {
				g.states[i].Merge(st)
			}
			old := g.cost
			g.recomputeCost()
			s.bytes += g.cost - old
		}
	}
}

// Unpack materializes the set's contents as tuples in the packed field
// layout. AGG sets yield one tuple per group, with group-by positions
// holding the key values and aggregated positions holding partial results;
// positions covered by neither hold null.
func (s *Set) Unpack() []tuple.Tuple {
	if s.Spec.Kind != Agg {
		out := make([]tuple.Tuple, len(s.tuples))
		for i, t := range s.tuples {
			out[i] = t.Clone()
		}
		return out
	}
	out := make([]tuple.Tuple, 0, len(s.order))
	for _, key := range s.order {
		g := s.groups[key]
		t := make(tuple.Tuple, len(s.Spec.Fields))
		for i, pos := range s.Spec.GroupBy {
			t[pos] = g.keyVals[i]
		}
		for i, af := range s.Spec.Aggs {
			t[af.Pos] = g.states[i].Result()
		}
		out = append(out, t)
	}
	return out
}

// Len returns the number of stored tuples (groups for AGG sets).
func (s *Set) Len() int {
	if s.Spec.Kind == Agg {
		return len(s.groups)
	}
	return len(s.tuples)
}

// Clone deep-copies the set.
func (s *Set) Clone() *Set {
	c := NewSet(s.Spec)
	c.bytes = s.bytes
	for _, t := range s.tuples {
		c.tuples = append(c.tuples, t.Clone())
	}
	if s.Spec.Kind == Agg {
		for _, key := range s.order {
			g := s.groups[key]
			ng := &group{keyVals: g.keyVals.Clone(), cost: g.cost}
			for _, st := range g.states {
				ng.states = append(ng.states, st.Clone())
			}
			c.groups[key] = ng
			c.order = append(c.order, key)
		}
	}
	return c
}
