// Package plan compiles Pivot Tracing queries to advice programs and
// implements the paper's query optimizations (§4, Table 3): projection,
// selection, and aggregation are pushed as close as possible to source
// tracepoints, minimizing the number of tuples packed into baggage and
// emitted for global aggregation.
//
// Compilation follows §3: one advice program is instantiated per source;
// joined sources get a Pack of exactly the variables later advice unpacks;
// Where clauses become Filter operations at the deepest tracepoint where
// all referenced variables are available (selection push-down); and
// aggregations whose argument originates at a joined source are evaluated
// at pack time as an AGG set, with the final Emit applying the
// aggregator's combiner (the Combine rewrite of Table 3).
package plan

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/advice"
	"repro/internal/agg"
	"repro/internal/query"
	"repro/internal/sampling"
	"repro/internal/tracepoint"
	"repro/internal/tuple"
)

// Options controls compilation.
type Options struct {
	// Optimize enables the Table 3 rewrites. When false, advice observes
	// and packs every exported variable and evaluates all predicates at
	// the final tracepoint — the paper's unoptimized (but still in-baggage)
	// evaluation strategy, kept for ablation benchmarks.
	Optimize bool
	// SampleEvery, when > 1, samples the query's primary (emitting)
	// tracepoint: only one in every SampleEvery crossings is processed
	// (§8's advice-level sampling). Joined sources still pack on every
	// crossing so the happened-before join stays exact for the sampled
	// observations; COUNT/SUM results are 1/SampleEvery-scaled estimates.
	SampleEvery int64
	// SampleRate, when in (0, 1), samples the query at request
	// granularity: the originating agent mints one keep/suppress decision
	// per request (carried in the reserved !pt.sample baggage slot), so a
	// happened-before join never pairs a sampled tuple with an unsampled
	// ancestor. Kept tuples carry weight 1/SampleRate; COUNT and SUM
	// become unbiased Horvitz-Thompson estimates and results are flagged
	// approximate. Out of range (including 1 from a query's own SAMPLE 1
	// clause, NaN, ≤ 0, > 1) is clamped at decode; a query-level SAMPLE
	// clause supplies the rate when this field is zero.
	SampleRate float64
	// Safety bounds the compiled programs' runtime behavior: baggage
	// budget, panic circuit breaker, and per-fire cost ceiling. The zero
	// value enables every default limit (see advice.Safety).
	Safety advice.Safety
	// Limits bounds agent-side accumulator memory for the query (group
	// cardinality and raw-row count; zero value = defaults, see
	// advice.Limits).
	Limits advice.Limits
	// Lease is the query's install TTL: agents uninstall the query if the
	// frontend stops renewing for this long. Zero selects the default
	// lease; negative installs the query without a lease (immortal).
	Lease time.Duration
}

// Optimized is the default compilation mode.
var Optimized = Options{Optimize: true}

// Plan is a compiled query: one advice program per (alias, tracepoint).
type Plan struct {
	Query    *query.Query
	Analysis *query.Analysis
	Programs []*advice.Program
	// Emit is the program holding the query's Emit operation (one of
	// Programs; for union From clauses, the program of the first source).
	Emit *advice.Program
	// Schema is the output schema of the query's result rows.
	Schema tuple.Schema
}

// Explain renders the plan in the paper's advice notation: one block per
// woven tracepoint, upstream advice first.
func (p *Plan) Explain() string {
	var b strings.Builder
	for i, prog := range p.Programs {
		if i > 0 {
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "A%d at %s:\n%s", i+1, prog.Tracepoint, prog.String())
	}
	return b.String()
}

// ExplainAnalyze renders the compiled advice like Explain, but with each
// operator annotated by its live execution counters (advice.Cost) — the
// per-operator half of EXPLAIN ANALYZE. Counters are shared by every woven
// copy of a program within this OS process; in a TCP-distributed deployment
// the agent-shipped ExplainStats carry each worker's counters instead.
func (p *Plan) ExplainAnalyze() string {
	var b strings.Builder
	for i, prog := range p.Programs {
		if i > 0 {
			b.WriteString("\n\n")
		}
		fmt.Fprintf(&b, "A%d at %s:\n%s", i+1, prog.Tracepoint, prog.AnnotatedString())
	}
	return b.String()
}

// Compile resolves q against the registry and named queries and produces
// the advice plan.
func Compile(q *query.Query, reg *tracepoint.Registry, named map[string]*query.Query, opts Options) (*Plan, error) {
	a, err := query.Analyze(q, reg, named)
	if err != nil {
		return nil, err
	}
	rootID := q.Name
	if rootID == "" {
		rootID = "q"
	}
	p := &Plan{Query: q, Analysis: a, Schema: query.OutputSchema(q)}
	c := &compiler{reg: reg, named: named, opts: opts, rootID: rootID}
	if err := c.compileQuery(p, a, rootID, nil); err != nil {
		return nil, err
	}
	// Request-level sampling applies to every program of the query — joined
	// sources included — so the per-request decision suppresses or keeps
	// the whole causal slice atomically.
	rate := sampling.ClampRate(opts.SampleRate)
	if rate == 0 {
		rate = sampling.ClampRate(q.Sample)
	}
	if rate > 0 {
		for _, prog := range p.Programs {
			prog.SampleRate = rate
		}
	}
	return p, nil
}

type compiler struct {
	reg    *tracepoint.Registry
	named  map[string]*query.Query
	opts   Options
	rootID string
}

// packField describes one column of a packed tuple.
type packField struct {
	name      string         // qualified name, e.g. "st.host" or "d.SUM(bytes)"
	ref       query.FieldRef // originating reference (raw fields)
	isPartial bool           // pushed-down partial aggregate
	selIdx    int            // owning Select index, when isPartial
	fn        agg.Func       // aggregator, when isPartial
}

// aliasNode is per-alias compilation state.
type aliasNode struct {
	name        string
	tracepoints []string     // tracepoint names (>1 for a union From)
	sub         *query.Query // non-nil for subquery sources
	filter      query.TempFilter
	n           int
	downstream  string // alias whose advice unpacks this alias's slot ("" = From)
	upstreams   []string
	depth       int

	slot       string
	packFields []packField
}

// packTarget describes where a subquery's output goes instead of an Emit.
type packTarget struct {
	slot   string
	filter query.TempFilter
	n      int
	prefix string // qualified-name prefix for the output columns (the outer alias)
}

// queryCompiler carries the state for compiling one (sub)query.
type queryCompiler struct {
	c         *compiler
	p         *Plan
	a         *query.Analysis
	q         *query.Query
	qid       string
	nodes     map[string]*aliasNode
	order     []string // aliases sorted by depth ascending (From first)
	filtersAt map[string][]query.Expr
	pushed    map[int]string // Select index -> alias with pack-time aggregation
	refList   []query.FieldRef
	sinkDepth map[query.FieldRef]int
}

// compileQuery compiles the analyzed query a into p. If target is non-nil
// the query is a join source: its From advice packs the query's output
// columns to target.slot instead of emitting.
func (c *compiler) compileQuery(p *Plan, a *query.Analysis, qid string, target *packTarget) error {
	qc := &queryCompiler{
		c: c, p: p, a: a, q: a.Query, qid: qid,
		filtersAt: map[string][]query.Expr{},
		pushed:    map[int]string{},
		sinkDepth: map[query.FieldRef]int{},
	}
	if err := qc.buildNodes(); err != nil {
		return err
	}
	qc.placeFilters()
	if target == nil {
		qc.decidePushdown()
	}
	qc.collectRefs()

	// Compile upstream-first (deepest aliases first).
	for i := len(qc.order) - 1; i > 0; i-- {
		node := qc.nodes[qc.order[i]]
		if node.sub != nil {
			if err := qc.compileSubquery(node); err != nil {
				return err
			}
			continue
		}
		if err := qc.compileJoinAlias(node); err != nil {
			return err
		}
	}
	return qc.compileFrom(target)
}

// buildNodes constructs alias nodes and the depth ordering.
func (qc *queryCompiler) buildNodes() error {
	q := qc.q
	qc.nodes = make(map[string]*aliasNode)
	from := &aliasNode{name: q.From.Alias}
	for _, src := range q.From.Sources {
		from.tracepoints = append(from.tracepoints, src.Tracepoint)
	}
	qc.nodes[q.From.Alias] = from

	for _, j := range q.Joins {
		node := &aliasNode{
			name:       j.Alias,
			filter:     j.Source.Filter,
			n:          j.Source.N,
			downstream: j.Right,
			slot:       qc.qid + "." + j.Alias,
		}
		if j.Source.IsSubquery() {
			node.sub = qc.a.Subqueries[j.Alias]
		} else {
			node.tracepoints = []string{j.Source.Tracepoint}
		}
		qc.nodes[j.Alias] = node
	}
	var depthOf func(name string, hops int) (int, error)
	depthOf = func(name string, hops int) (int, error) {
		if hops > len(qc.nodes)+1 {
			return 0, fmt.Errorf("plan: join cycle involving %q", name)
		}
		node := qc.nodes[name]
		if node.downstream == "" {
			return 0, nil
		}
		d, err := depthOf(node.downstream, hops+1)
		if err != nil {
			return 0, err
		}
		return d + 1, nil
	}
	qc.order = []string{q.From.Alias}
	for _, j := range q.Joins {
		d, err := depthOf(j.Alias, 0)
		if err != nil {
			return err
		}
		qc.nodes[j.Alias].depth = d
		qc.nodes[j.Right].upstreams = append(qc.nodes[j.Right].upstreams, j.Alias)
		qc.order = append(qc.order, j.Alias)
	}
	// Insertion sort by depth ascending, stable on join order.
	for i := 2; i < len(qc.order); i++ {
		for k := i; k > 1 && qc.nodes[qc.order[k]].depth < qc.nodes[qc.order[k-1]].depth; k-- {
			qc.order[k], qc.order[k-1] = qc.order[k-1], qc.order[k]
		}
	}
	return nil
}

// avail returns the aliases whose fields are present in the working tuple
// at the given alias: itself plus transitively unpacked upstreams.
func (qc *queryCompiler) avail(name string) map[string]bool {
	out := map[string]bool{name: true}
	var walk func(n string)
	walk = func(n string) {
		for _, u := range qc.nodes[n].upstreams {
			out[u] = true
			walk(u)
		}
	}
	walk(name)
	return out
}

// placeFilters assigns each Where predicate to the deepest alias at which
// all its references are available (σ push-down of Table 3).
func (qc *queryCompiler) placeFilters() {
	for _, w := range qc.q.Where {
		target := qc.q.From.Alias
		if qc.c.opts.Optimize {
			refs := query.FieldRefs(w)
			bestDepth := -1
			for _, name := range qc.order {
				av := qc.avail(name)
				ok := true
				for _, r := range refs {
					if !av[r.Alias] {
						ok = false
						break
					}
				}
				if ok && qc.nodes[name].depth > bestDepth {
					target = name
					bestDepth = qc.nodes[name].depth
				}
			}
		}
		qc.filtersAt[target] = append(qc.filtersAt[target], w)
	}
}

// decidePushdown marks Select aggregates that can be evaluated at pack time
// (A/GA push-down of Table 3): plain field arguments originating at a
// tracepoint alias joined directly to the From alias with no temporal
// filter. AVERAGE is excluded — its partials do not merge by value.
func (qc *queryCompiler) decidePushdown() {
	if !qc.c.opts.Optimize {
		return
	}
	for i, si := range qc.q.Select {
		if !si.HasAgg || si.Expr == nil || si.Agg == agg.Average {
			continue
		}
		f, ok := si.Expr.(query.FieldRef)
		if !ok || f.Field == "" {
			continue
		}
		node, ok := qc.nodes[f.Alias]
		if !ok || node.sub != nil || node.downstream != qc.q.From.Alias || node.filter != query.NoFilter {
			continue
		}
		qc.pushed[i] = f.Alias
	}
	// Pushing an aggregate replaces the alias's packed tuples with merged
	// partials, collapsing the alias's tuple multiplicity at the emit
	// point. That is only sound if the whole aggregation moves together:
	// any aggregate left behind (bare COUNT, AVERAGE, computed arguments,
	// From-alias arguments) would see the collapsed multiplicity, and two
	// aggregates pushed onto different aliases would each collapse the
	// other's cartesian multiplier. Unless every aggregated output pushes
	// onto one and the same alias, push nothing.
	alias := ""
	for i, si := range qc.q.Select {
		if !si.HasAgg {
			continue
		}
		a, ok := qc.pushed[i]
		if !ok || (alias != "" && a != alias) {
			clear(qc.pushed)
			return
		}
		alias = a
	}
}

// canon canonicalizes a bare subquery reference to its single output column.
func (qc *queryCompiler) canon(f query.FieldRef) query.FieldRef {
	if f.Field != "" {
		return f
	}
	if sub, ok := qc.a.Subqueries[f.Alias]; ok {
		return query.FieldRef{Alias: f.Alias, Field: query.OutputSchema(sub)[0]}
	}
	return f
}

// addRef records one usage of a field reference with the given sink depth.
func (qc *queryCompiler) addRef(f query.FieldRef, depth int) {
	f = qc.canon(f)
	d, ok := qc.sinkDepth[f]
	if !ok {
		qc.refList = append(qc.refList, f)
		qc.sinkDepth[f] = depth
		return
	}
	if depth < d {
		qc.sinkDepth[f] = depth
	}
}

// collectRefs builds the deterministic reference list with minimum sink
// depths. A reference must be packed at every alias strictly deeper than
// its shallowest sink (projection push-down: everything else is dropped).
func (qc *queryCompiler) collectRefs() {
	if !qc.c.opts.Optimize {
		// Unoptimized: every exported variable of every alias is "needed
		// at the From alias" (sink depth 0), so everything is observed
		// and packed all the way down the chain.
		for _, name := range qc.order {
			node := qc.nodes[name]
			if node.sub != nil {
				for _, col := range query.OutputSchema(node.sub) {
					qc.addRef(query.FieldRef{Alias: name, Field: col}, 0)
				}
				continue
			}
			if tp := qc.c.reg.Lookup(node.tracepoints[0]); tp != nil {
				for _, f := range tp.Schema() {
					qc.addRef(query.FieldRef{Alias: name, Field: f}, 0)
				}
			}
		}
		return
	}
	for _, g := range qc.q.GroupBy {
		qc.addRef(g, 0)
	}
	for i, si := range qc.q.Select {
		if si.Expr == nil {
			continue
		}
		if _, isPushed := qc.pushed[i]; isPushed {
			continue
		}
		for _, f := range query.FieldRefs(si.Expr) {
			qc.addRef(f, 0)
		}
	}
	for target, ws := range qc.filtersAt {
		depth := qc.nodes[target].depth
		for _, w := range ws {
			for _, f := range query.FieldRefs(w) {
				qc.addRef(f, depth)
			}
		}
	}
}
