package bus

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// Table-driven error-path tests for the frame codec: every malformed input
// must surface a clean error, never a hang, panic, or silent misparse.

func TestReadFrameErrorPaths(t *testing.T) {
	frame := func(topic string, payload []byte) []byte {
		var b bytes.Buffer
		w := bufio.NewWriter(&b)
		if err := writeFrame(w, topic, payload); err != nil {
			t.Fatalf("writeFrame(%q): %v", topic, err)
		}
		return b.Bytes()
	}
	uvarint := func(v uint64) []byte {
		var buf [binary.MaxVarintLen64]byte
		return buf[:binary.PutUvarint(buf[:], v)]
	}

	full := frame("topic", []byte("payload"))
	cases := []struct {
		name  string
		input []byte
		want  error // nil = assert only that err != nil
	}{
		{"empty input", nil, io.EOF},
		{"truncated header varint", []byte{0x80}, nil},
		{"zero-length topic", uvarint(0), errEmptyTopic},
		{"oversized topic", uvarint(maxFrame + 1), errOversizedTopic},
		{"topic cut mid-way", full[:3], io.ErrUnexpectedEOF},
		{"missing payload length", frame("topic", nil)[:6], io.EOF},
		{"oversized payload", append(append([]byte{}, uvarint(1)...), append([]byte("t"), uvarint(maxFrame+1)...)...), errOversizedPayload},
		{"mid-frame EOF in payload", full[:len(full)-3], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := readFrame(bufio.NewReader(bytes.NewReader(tc.input)))
			if err == nil {
				t.Fatalf("readFrame(%v) succeeded, want error", tc.input)
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("readFrame error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestWriteFrameRejectsEmptyTopic(t *testing.T) {
	var b bytes.Buffer
	if err := writeFrame(bufio.NewWriter(&b), "", []byte("x")); !errors.Is(err, errEmptyTopic) {
		t.Fatalf("writeFrame err = %v, want %v", err, errEmptyTopic)
	}
	if b.Len() != 0 {
		t.Errorf("rejected frame leaked %d bytes onto the wire", b.Len())
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		topic   string
		payload []byte
	}{
		{"t", nil},
		{"pt.results", []byte("hello")},
		{strings.Repeat("k", 300), bytes.Repeat([]byte{0xAB}, 5000)},
	}
	var b bytes.Buffer
	w := bufio.NewWriter(&b)
	for _, tc := range cases {
		if err := writeFrame(w, tc.topic, tc.payload); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&b)
	for _, tc := range cases {
		topic, payload, err := readFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		if topic != tc.topic || !bytes.Equal(payload, tc.payload) {
			t.Errorf("round trip = (%q, %d bytes), want (%q, %d bytes)",
				topic, len(payload), tc.topic, len(tc.payload))
		}
	}
}
